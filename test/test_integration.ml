(* End-to-end integration tests across the whole stack: MiniC programs
   compiled and run under every scheme, servers surviving diagnosed
   child crashes, long-lived pool mitigation in a running server, and
   cross-cutting invariants between the layers. *)

open Vmm

let check_int = Alcotest.check Alcotest.int
let check_bool = Alcotest.check Alcotest.bool

(* A MiniC workload with pools, data-structure churn, and output. *)
let list_workload =
  {|
struct node { int v; struct node *next; }

struct node *build(int n) {
  struct node *head = null;
  int i = 0;
  while (i < n) {
    struct node *fresh = malloc(struct node);
    fresh->v = i;
    fresh->next = head;
    head = fresh;
    i = i + 1;
  }
  return head;
}

int total(struct node *head) {
  int acc = 0;
  struct node *cur = head;
  while (cur != null) {
    acc = acc + cur->v;
    cur = cur->next;
  }
  return acc;
}

void release(struct node *head) {
  struct node *cur = head;
  while (cur != null) {
    struct node *nxt = cur->next;
    free(cur);
    cur = nxt;
  }
}

void main() {
  int round = 0;
  while (round < 3) {
    struct node *head = build(20);
    print(total(head));
    release(head);
    round = round + 1;
  }
}
|}

let expected_prints = [ 190; 190; 190 ]

let schemes : (string * (Machine.t -> Runtime.Scheme.t)) list =
  [
    ("native", Runtime.Schemes.native);
    ("pa", fun m -> Runtime.Schemes.pa m);
    ("pa+dummy", Runtime.Schemes.pa ~config:{ Runtime.Schemes.dummy_syscalls = true });
    ("shadow-basic", Runtime.Schemes.shadow_basic);
    ("shadow-pool", fun m -> Runtime.Schemes.shadow_pool m);
    ("efence", fun m -> Baseline.Efence.scheme m);
    ("valgrind", fun m -> Baseline.Valgrind_sim.scheme m);
    ("capability", fun m -> Baseline.Capability_check.scheme m);
  ]

let test_minic_under_every_scheme () =
  let program = Minic.Parser.parse list_workload in
  let transformed, _ = Minic.Pool_transform.transform program in
  List.iter
    (fun (name, make) ->
      let run p =
        (Minic.Interp.run p (make (Machine.create ()))).Minic.Interp.prints
      in
      check_bool (name ^ ": plain program output") true
        (run program = expected_prints);
      check_bool (name ^ ": transformed program output") true
        (run transformed = expected_prints))
    schemes

let test_transformed_program_bounded_va () =
  (* Each main-loop round creates and destroys pools: under the full
     scheme the rounds reuse each other's virtual pages. *)
  let program = Minic.Parser.parse list_workload in
  let transformed, _ = Minic.Pool_transform.transform program in
  (* Run the same program repeatedly on one machine: each run is three
     more build/release rounds against the same scheme. *)
  let run rounds =
    let m = Machine.create () in
    let scheme = Runtime.Schemes.shadow_pool m in
    for _ = 1 to rounds do
      ignore (Minic.Interp.run transformed scheme)
    done;
    Machine.va_bytes_used m
  in
  let va2 = run 2 in
  let va6 = run 6 in
  check_bool
    (Printf.sprintf "VA does not scale with rounds (%d vs %d)" va2 va6)
    true
    (va6 < va2 * 2)

let test_server_survives_buggy_connection () =
  (* A production-server scenario: connection 3 triggers a double free;
     the trap diagnoses it, that child dies, service continues. *)
  let handler i (scheme : Runtime.Scheme.t) =
    let session = scheme.Runtime.Scheme.malloc ~site:"session" 128 in
    Runtime.Workload_api.fill_words scheme session ~words:8 ~value:i;
    scheme.Runtime.Scheme.free ~site:"teardown" session;
    if i = 3 then scheme.Runtime.Scheme.free ~site:"buggy-teardown" session
  in
  let result =
    Runtime.Process.serve
      ~make_scheme:(fun () -> Runtime.Schemes.shadow_pool (Machine.create ()))
      ~handler ~connections:6
  in
  check_int "exactly the buggy child diagnosed" 1
    result.Runtime.Process.detections;
  check_int "service completed" 6 result.Runtime.Process.connections

let test_long_lived_pool_mitigation_in_server () =
  (* §3.4 in vivo: a long-running single-process server whose global
     pool would exhaust address space is kept flat by interval reuse. *)
  let m = Machine.create () in
  let scheme = Runtime.Schemes.shadow_pool m in
  let pool =
    match Runtime.Schemes.introspect scheme with
    | Runtime.Schemes.Shadow_pool { global; _ } -> global
    | _ -> Alcotest.fail "no global pool"
  in
  let policy =
    Shadow.Reuse_policy.create
      (Shadow.Reuse_policy.Interval_reuse { trigger_pages = 32 })
      pool
  in
  for i = 1 to 400 do
    let a = scheme.Runtime.Scheme.malloc ~site:"request" 64 in
    Runtime.Workload_api.store_field scheme a 0 i;
    scheme.Runtime.Scheme.free ~site:"request-done" a;
    Shadow.Reuse_policy.after_free policy
  done;
  check_bool "policy reclaimed repeatedly" true
    (Shadow.Reuse_policy.reclaimed_pages policy >= 300);
  (* 400 allocations, but VA consumption stays near the trigger bound. *)
  check_bool "VA stays bounded" true
    (Machine.va_bytes_used m < 150 * Addr.page_size)

let test_detection_diagnostics_cross_stack () =
  (* The report surfaced by a MiniC-level bug carries the MiniC-level
     allocation/free sites. *)
  let src =
    "struct s { int v; }\n\
     void main() {\n\
    \  struct s *p = malloc(struct s);\n\
    \  p->v = 1;\n\
    \  free(p);\n\
    \  print(p->v);\n\
     }"
  in
  let transformed, _ = Minic.Pool_transform.transform (Minic.Parser.parse src) in
  (match
     Minic.Interp.run transformed
       (Runtime.Schemes.shadow_pool (Machine.create ()))
   with
   | _ -> Alcotest.fail "bug not detected"
   | exception Shadow.Report.Violation r ->
     (match r.Shadow.Report.object_info with
      | Some info ->
        check_bool "alloc site names main's poolalloc" true
          (String.length info.Shadow.Report.alloc_site > 0
           && String.sub info.Shadow.Report.alloc_site 0 4 = "main");
        check_bool "free site recorded" true
          (info.Shadow.Report.free_site <> None)
      | None -> Alcotest.fail "no object info"))

let test_efence_vs_ours_memory_on_same_workload () =
  let b =
    match Workload.Catalog.find_batch "enscript" with
    | Some b -> b
    | None -> Alcotest.fail "enscript missing"
  in
  let frames config =
    (Harness.Experiment.run_batch ~scale:60 b config).Harness.Experiment.peak_frames
  in
  let ours = frames Harness.Experiment.ours in
  let efence = frames Harness.Experiment.efence in
  let native = frames Harness.Experiment.native in
  check_bool
    (Printf.sprintf "ours ~ native physical memory (%d vs %d)" ours native)
    true
    (ours <= 2 * native + 8);
  check_bool
    (Printf.sprintf "efence blows up (%d vs %d)" efence ours)
    true
    (efence > 3 * ours)

(* The shipped sample programs stay working: parse, transform, run. *)
let sample_program name =
  let path = Filename.concat "../../../examples/programs" name in
  let path =
    if Sys.file_exists path then path
    else Filename.concat "examples/programs" name
  in
  In_channel.with_open_text path In_channel.input_all

let test_sample_matrix () =
  let transformed, _ =
    Minic.Pool_transform.transform (Minic.Parser.parse (sample_program "matrix.mc"))
  in
  let out =
    (Minic.Interp.run transformed
       (Runtime.Schemes.shadow_pool (Machine.create ())))
      .Minic.Interp.prints
  in
  check_bool "matrix output" true (out = [ 2124 ])

let test_sample_server_session () =
  let transformed, summary =
    Minic.Pool_transform.transform
      (Minic.Parser.parse (sample_program "server_session.mc"))
  in
  check_bool "session pool owned by main" true
    (List.exists
       (fun d -> d.Minic.Pool_transform.owner = "main")
       summary.Minic.Pool_transform.pools);
  let out =
    (Minic.Interp.run transformed
       (Runtime.Schemes.shadow_pool (Machine.create ())))
      .Minic.Interp.prints
  in
  check_bool "session output" true (out = [ 100; 101; 102; 44 ])

let test_sample_figure1 () =
  let transformed, _ =
    Minic.Pool_transform.transform
      (Minic.Parser.parse (sample_program "figure1.mc"))
  in
  match
    Minic.Interp.run transformed (Runtime.Schemes.shadow_pool (Machine.create ()))
  with
  | _ -> Alcotest.fail "figure1's bug must be detected"
  | exception Shadow.Report.Violation _ -> ()

let test_stats_monotonic_across_stack () =
  let m = Machine.create () in
  let scheme = Runtime.Schemes.shadow_pool m in
  let before = Stats.snapshot m.Machine.stats in
  (match Workload.Catalog.find_batch "treeadd" with
   | Some b -> b.Workload.Spec.run scheme ~scale:6
   | None -> Alcotest.fail "treeadd missing");
  let after = Stats.snapshot m.Machine.stats in
  let d = Stats.diff after before in
  check_bool "loads happened" true (d.Stats.loads > 0);
  check_bool "stores happened" true (d.Stats.stores > 0);
  check_bool "syscalls happened" true (Stats.total_syscalls d > 0);
  check_bool "no faults in a correct program" true (d.Stats.faults = 0)

let () =
  Alcotest.run "integration"
    [
      ( "cross-stack",
        [
          Alcotest.test_case "minic under every scheme" `Slow
            test_minic_under_every_scheme;
          Alcotest.test_case "bounded VA across runs" `Quick
            test_transformed_program_bounded_va;
          Alcotest.test_case "diagnostics cross stack" `Quick
            test_detection_diagnostics_cross_stack;
          Alcotest.test_case "stats monotonic" `Quick
            test_stats_monotonic_across_stack;
        ] );
      ( "production-server",
        [
          Alcotest.test_case "survives buggy connection" `Quick
            test_server_survives_buggy_connection;
          Alcotest.test_case "long-lived pool mitigation" `Quick
            test_long_lived_pool_mitigation_in_server;
        ] );
      ( "sample-programs",
        [
          Alcotest.test_case "matrix.mc" `Quick test_sample_matrix;
          Alcotest.test_case "server_session.mc" `Quick
            test_sample_server_session;
          Alcotest.test_case "figure1.mc" `Quick test_sample_figure1;
        ] );
      ( "memory",
        [
          Alcotest.test_case "efence vs ours" `Quick
            test_efence_vs_ours_memory_on_same_workload;
        ] );
    ]
