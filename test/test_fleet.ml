(* The fleet crash pipeline: violation-kind labels round-trip, stack
   signatures are stable and identity-blind to everything but the bug
   site, sink merge is deterministic under any partition of the report
   multiset, and the recoverable scheme wrapper reports violations
   while letting the workload finish. *)

module Crash = Fleet.Crash

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ---- kind labels ---- *)

let test_kind_labels_round_trip () =
  List.iter
    (fun k ->
      let label = Shadow.Report.kind_label k in
      match Shadow.Report.kind_of_label label with
      | Some k' ->
        check_bool ("round-trip " ^ label) true (k = k')
      | None -> Alcotest.fail ("label does not round-trip: " ^ label))
    Shadow.Report.all_kinds;
  let labels = List.map Shadow.Report.kind_label Shadow.Report.all_kinds in
  check_int "labels are distinct" (List.length labels)
    (List.length (List.sort_uniq compare labels));
  check_bool "unknown label rejected" true
    (Shadow.Report.kind_of_label "totally-not-a-kind" = None)

let test_event_kind_matches_label () =
  (* The single-source contract: the event's kind string IS kind_label. *)
  List.iter
    (fun k ->
      let r =
        { Shadow.Report.kind = k; fault_addr = 0x1000; object_info = None }
      in
      match Shadow.Report.to_event r with
      | Telemetry.Event.Violation { kind; addr } ->
        check_string "event kind" (Shadow.Report.kind_label k) kind;
        check_int "event addr" 0x1000 addr
      | _ -> Alcotest.fail "to_event did not build a Violation event")
    Shadow.Report.all_kinds

(* ---- signatures ---- *)

let report ?(kind = "use-after-free (read)") ?(alloc_site = "a.c:1")
    ?(free_site = "a.c:2") ?(fault_addr = 0x1000) ?(shard = 0)
    ?(at_cycles = 100) () =
  {
    Crash.kind;
    fault_addr;
    offset = Some 0;
    object_size = Some 64;
    alloc_site;
    free_site;
    scheme = "shadow-pool";
    shard;
    at_cycles;
  }

let test_signature_identity () =
  let base = Crash.signature (report ()) in
  (* blind to where/when the trap happened *)
  check_bool "same bug, same signature" true
    (base
    = Crash.signature (report ~fault_addr:0xdead ~shard:7 ~at_cycles:999 ()));
  (* sensitive to each identity component *)
  check_bool "kind changes it" true
    (base <> Crash.signature (report ~kind:"double free" ()));
  check_bool "alloc site changes it" true
    (base <> Crash.signature (report ~alloc_site:"b.c:9" ()));
  check_bool "free site changes it" true
    (base <> Crash.signature (report ~free_site:"b.c:9" ()));
  (* FNV-1a is a pinned algorithm: this hex value must never drift,
     because stored fleet reports dedup on it across versions. *)
  check_string "stable across runs" "872374d0aeb10132"
    (Crash.signature_hex base);
  check_int "hex is 16 digits" 16 (String.length (Crash.signature_hex base))

(* ---- sinks and merge ---- *)

let seeded_reports =
  (* 3 bugs: site A seen 3x on two shards, B 2x, C once *)
  [
    report ~alloc_site:"A" ~shard:0 ~at_cycles:10 ();
    report ~alloc_site:"A" ~shard:1 ~at_cycles:30 ();
    report ~alloc_site:"A" ~shard:1 ~at_cycles:20 ();
    report ~alloc_site:"B" ~kind:"double free" ~shard:0 ~at_cycles:15 ();
    report ~alloc_site:"B" ~kind:"double free" ~shard:0 ~at_cycles:25 ();
    report ~alloc_site:"C" ~kind:"use-after-free (write)" ~shard:1
      ~at_cycles:5 ();
  ]

let merge_partition partition =
  let sinks =
    List.map
      (fun rs ->
        let s = Crash.create_sink () in
        List.iter (Crash.record s) rs;
        s)
      partition
  in
  Crash.merge sinks

let test_merge_ranking () =
  let fr = merge_partition [ seeded_reports ] in
  check_int "total reports" 6 fr.Crash.total_reports;
  check_int "three signatures" 3 (List.length fr.Crash.entries);
  (match fr.Crash.entries with
   | [ a; b; c ] ->
     check_string "rank 1 is the hottest bug" "A" a.Crash.e_alloc_site;
     check_int "rank 1 count" 3 a.Crash.count;
     check_int "rank 1 first seen" 10 a.Crash.first_seen;
     check_int "rank 1 last seen" 30 a.Crash.last_seen;
     check_bool "rank 1 shard set" true (a.Crash.shards = [ 0; 1 ]);
     check_int "rank 1 impact" 6 (Crash.impact a);
     check_string "rank 2" "B" b.Crash.e_alloc_site;
     check_string "rank 3" "C" c.Crash.e_alloc_site;
     check_int "rank 3 count" 1 c.Crash.count
   | _ -> Alcotest.fail "wrong entry count");
  (* ties rank by bug identity, not insertion order *)
  let tied =
    merge_partition
      [ [ report ~alloc_site:"Z" (); report ~alloc_site:"Y" () ] ]
  in
  match List.map (fun e -> e.Crash.e_alloc_site) tied.Crash.entries with
  | [ "Y"; "Z" ] -> ()
  | sites -> Alcotest.fail ("tie not broken by site: " ^ String.concat "," sites)

let test_merge_partition_invariant () =
  (* However the same report multiset is split across sinks — one sink,
     one per shard, one per report, reversed — the fleet report's
     canonical string is byte-identical. *)
  let canonical partition = Crash.canonical_string (merge_partition partition) in
  let whole = canonical [ seeded_reports ] in
  check_string "split in two" whole
    (canonical
       [
         List.filteri (fun i _ -> i < 3) seeded_reports;
         List.filteri (fun i _ -> i >= 3) seeded_reports;
       ]);
  check_string "one sink per report" whole
    (canonical (List.map (fun r -> [ r ]) seeded_reports));
  check_string "reversed" whole
    (canonical [ List.rev seeded_reports ]);
  check_bool "canonical string mentions every site" true
    (List.for_all
       (fun s ->
         List.exists
           (fun line ->
             List.mem s (String.split_on_char '|' line))
           (String.split_on_char '\n' whole))
       [ "A"; "B"; "C" ])

let test_json_and_metrics () =
  let fr = merge_partition [ seeded_reports ] in
  (match Telemetry.Json.of_string (Telemetry.Json.to_string (Crash.to_json fr)) with
   | Error e -> Alcotest.fail ("fleet report JSON does not parse: " ^ e)
   | Ok j ->
     (match Telemetry.Json.member "total_reports" j with
      | Some (Telemetry.Json.Int 6) -> ()
      | _ -> Alcotest.fail "total_reports wrong in JSON");
     (match Telemetry.Json.member "entries" j with
      | Some (Telemetry.Json.List l) -> check_int "entries in JSON" 3 (List.length l)
      | _ -> Alcotest.fail "entries missing in JSON"));
  let m = Telemetry.Metrics.create () in
  Crash.register_metrics m fr;
  Crash.register_metrics m fr;
  (* idempotent: set, not incremented *)
  check_int "reports counter" 6
    (Telemetry.Metrics.counter_value
       (Telemetry.Metrics.counter m "fleet.reports_total"));
  check_int "one labelled counter per signature + totals" (3 + 1)
    (List.length
       (List.filter
          (fun n ->
            String.length n >= 6 && String.sub n 0 6 = "fleet.")
          (Telemetry.Metrics.names m))
    - 1 (* the signatures gauge *))

(* ---- recoverable scheme ---- *)

let recovery_stats scheme =
  match Runtime.Schemes.introspect scheme with
  | Runtime.Schemes.Recoverable { recovery; _ } -> recovery ()
  | _ -> Alcotest.fail "recoverable scheme does not introspect"

let make_recoverable () =
  let reports = ref [] in
  let m = Vmm.Machine.create () in
  let scheme =
    Runtime.Schemes.recoverable
      ~on_report:(fun r -> reports := r :: !reports)
      (Runtime.Schemes.shadow_pool m)
  in
  (scheme, reports)

let test_recoverable_uaf_load () =
  let scheme, reports = make_recoverable () in
  let p = scheme.Runtime.Scheme.malloc ~site:"t.c:1" 64 in
  scheme.Runtime.Scheme.store p ~width:8 42;
  scheme.Runtime.Scheme.free ~site:"t.c:2" p;
  (* the dangling read is reported but the workload continues — and the
     unprotected shadow page still holds the stale bytes *)
  check_int "stale value readable after recovery" 42
    (scheme.Runtime.Scheme.load p ~width:8);
  check_int "one report" 1 (List.length !reports);
  (match !reports with
   | [ r ] ->
     check_bool "kind is a UAF read" true
       (r.Shadow.Report.kind = Shadow.Report.Use_after_free Vmm.Perm.Read)
   | _ -> ());
  let q = scheme.Runtime.Scheme.malloc ~site:"t.c:3" 32 in
  scheme.Runtime.Scheme.store q ~width:8 7;
  check_int "scheme still serves allocations" 7
    (scheme.Runtime.Scheme.load q ~width:8);
  let stats = recovery_stats scheme in
  check_int "one recovered load" 1 stats.Runtime.Schemes.recovered_loads;
  check_int "one page unprotected" 1 stats.Runtime.Schemes.pages_unprotected

let test_recoverable_double_free () =
  let scheme, reports = make_recoverable () in
  let p = scheme.Runtime.Scheme.malloc ~site:"t.c:1" 64 in
  scheme.Runtime.Scheme.free ~site:"t.c:2" p;
  scheme.Runtime.Scheme.free ~site:"t.c:3" p;
  check_int "double free reported" 1 (List.length !reports);
  (match !reports with
   | [ r ] ->
     check_bool "kind is double free" true
       (r.Shadow.Report.kind = Shadow.Report.Double_free)
   | _ -> ());
  let stats = recovery_stats scheme in
  check_int "one recovered free" 1 stats.Runtime.Schemes.recovered_frees;
  (* skipping the bad free leaves the heap consistent *)
  let q = scheme.Runtime.Scheme.malloc ~site:"t.c:4" 64 in
  scheme.Runtime.Scheme.store q ~width:8 9;
  check_int "heap still consistent" 9 (scheme.Runtime.Scheme.load q ~width:8)

let test_recoverable_uaf_store () =
  let scheme, reports = make_recoverable () in
  let p = scheme.Runtime.Scheme.malloc ~site:"t.c:1" 64 in
  scheme.Runtime.Scheme.free ~site:"t.c:2" p;
  scheme.Runtime.Scheme.store p ~width:8 13;
  check_int "dangling store reported" 1 (List.length !reports);
  check_int "retried store landed on the unprotected page" 13
    (scheme.Runtime.Scheme.load p ~width:8);
  let stats = recovery_stats scheme in
  check_int "one recovered store" 1 stats.Runtime.Schemes.recovered_stores

let test_of_violation () =
  let scheme, reports = make_recoverable () in
  let p = scheme.Runtime.Scheme.malloc ~site:"srv.c:10" 48 in
  scheme.Runtime.Scheme.free ~site:"srv.c:20" p;
  ignore (scheme.Runtime.Scheme.load p ~width:8);
  match !reports with
  | [ r ] ->
    let c = Crash.of_violation ~scheme:"test" ~shard:3 ~at_cycles:77 r in
    check_string "kind label" "use-after-free (read)" c.Crash.kind;
    check_string "alloc site" "srv.c:10" c.Crash.alloc_site;
    check_string "free site" "srv.c:20" c.Crash.free_site;
    check_int "shard" 3 c.Crash.shard;
    check_int "at_cycles" 77 c.Crash.at_cycles;
    check_bool "object size carried" true (c.Crash.object_size = Some 48)
  | _ -> Alcotest.fail "expected exactly one report"

let () =
  Alcotest.run "fleet"
    [
      ( "kinds",
        [
          Alcotest.test_case "labels round-trip" `Quick
            test_kind_labels_round_trip;
          Alcotest.test_case "event kind = kind_label" `Quick
            test_event_kind_matches_label;
        ] );
      ( "signature",
        [ Alcotest.test_case "identity and stability" `Quick
            test_signature_identity ] );
      ( "merge",
        [
          Alcotest.test_case "ranking" `Quick test_merge_ranking;
          Alcotest.test_case "partition-invariant" `Quick
            test_merge_partition_invariant;
          Alcotest.test_case "json and metrics" `Quick test_json_and_metrics;
        ] );
      ( "recoverable",
        [
          Alcotest.test_case "uaf load continues" `Quick
            test_recoverable_uaf_load;
          Alcotest.test_case "double free skipped" `Quick
            test_recoverable_double_free;
          Alcotest.test_case "uaf store continues" `Quick
            test_recoverable_uaf_store;
          Alcotest.test_case "violation -> crash report" `Quick
            test_of_violation;
        ] );
    ]
