(* Tests for the runtime layer: the scheme interface, the workload API
   helpers, the concrete scheme constructors, and the fork-per-connection
   process model. *)

open Vmm

let check_int = Alcotest.check Alcotest.int
let check_bool = Alcotest.check Alcotest.bool

(* ---- schemes ---- *)

let test_native_pool_passthrough () =
  let m = Machine.create () in
  let s = Runtime.Schemes.native m in
  let pool = s.Runtime.Scheme.pool_create () in
  let a = pool.Runtime.Scheme.pool_alloc 32 in
  s.Runtime.Scheme.store a ~width:8 5;
  check_int "pool alloc is plain malloc" 5 (s.Runtime.Scheme.load a ~width:8);
  pool.Runtime.Scheme.pool_destroy ();
  (* Passthrough destroy is a no-op: the object stays readable. *)
  check_int "still alive after destroy" 5 (s.Runtime.Scheme.load a ~width:8);
  check_bool "no guarantee" false s.Runtime.Scheme.guarantees_detection

let test_pa_dummy_syscalls () =
  let count_dummies dummy =
    let m = Machine.create () in
    let s = Runtime.Schemes.pa ~config:{ Runtime.Schemes.dummy_syscalls = dummy } m in
    let a = s.Runtime.Scheme.malloc 32 in
    s.Runtime.Scheme.free a;
    (Stats.snapshot m.Machine.stats).Stats.syscalls_dummy
  in
  check_int "no dummies by default" 0 (count_dummies false);
  check_int "one per alloc + one per free" 2 (count_dummies true)

let test_pa_pool_destroy_reuses_va () =
  let m = Machine.create () in
  let s = Runtime.Schemes.pa m in
  let round () =
    let pool = s.Runtime.Scheme.pool_create () in
    let a = pool.Runtime.Scheme.pool_alloc 64 in
    pool.Runtime.Scheme.pool_destroy ();
    a
  in
  let a1 = round () in
  let a2 = round () in
  check_int "second pool reuses the first pool's addresses" a1 a2

let test_shadow_pool_scheme_detects () =
  let m = Machine.create () in
  let s = Runtime.Schemes.shadow_pool m in
  let a = s.Runtime.Scheme.malloc 32 in
  s.Runtime.Scheme.free a;
  (match s.Runtime.Scheme.load a ~width:8 with
   | _ -> Alcotest.fail "expected violation"
   | exception Shadow.Report.Violation _ -> ());
  check_bool "guarantee flag" true s.Runtime.Scheme.guarantees_detection

let test_scheme_introspection () =
  let m = Machine.create () in
  let s = Runtime.Schemes.shadow_pool m in
  (match Runtime.Schemes.introspect s with
   | Runtime.Schemes.Shadow_pool _ -> ()
   | _ -> Alcotest.fail "shadow-pool should expose its pool and recycler");
  let st =
    Runtime.Schemes.shadow_pool_static
      ~config:{ Runtime.Schemes.elide = (fun _ -> false) }
      (Machine.create ())
  in
  (match Runtime.Schemes.introspect st with
   | Runtime.Schemes.Shadow_pool_static { elision; _ } ->
     let e = elision () in
     check_int "no allocs yet" 0 e.Runtime.Schemes.protected_allocs
   | _ -> Alcotest.fail "static scheme should expose elision stats");
  let native = Runtime.Schemes.native (Machine.create ()) in
  check_bool "native is opaque" true
    (Runtime.Schemes.introspect native = Runtime.Schemes.Opaque)

let test_compute_accounting () =
  let m = Machine.create () in
  let s = Runtime.Schemes.native m in
  s.Runtime.Scheme.compute 123;
  check_int "instructions counted" 123
    (Stats.snapshot m.Machine.stats).Stats.instructions

(* ---- workload API ---- *)

let test_workload_api_fields () =
  let s = Runtime.Schemes.native (Machine.create ()) in
  let a = s.Runtime.Scheme.malloc 64 in
  Runtime.Workload_api.store_field s a 3 99;
  check_int "field" 99 (Runtime.Workload_api.load_field s a 3);
  Runtime.Workload_api.store_byte s (a + 1) 7;
  check_int "byte" 7 (Runtime.Workload_api.load_byte s (a + 1))

let test_workload_api_bulk () =
  let s = Runtime.Schemes.native (Machine.create ()) in
  let a = s.Runtime.Scheme.malloc 256 in
  Runtime.Workload_api.fill_words s a ~words:10 ~value:3;
  check_int "sum" 30 (Runtime.Workload_api.sum_words s a ~words:10);
  Runtime.Workload_api.touch_bytes s a ~len:256 ~stride:16

let test_with_pool_destroys_on_exception () =
  let s = Runtime.Schemes.shadow_pool (Machine.create ()) in
  let seen = ref None in
  (try
     Runtime.Workload_api.with_pool s (fun pool ->
         let a = pool.Runtime.Scheme.pool_alloc 32 in
         seen := Some (pool, a);
         failwith "boom")
   with Failure _ -> ());
  match !seen with
  | Some (pool, _) ->
    (* The pool was destroyed by the bracket: further use must fail. *)
    (match pool.Runtime.Scheme.pool_alloc 8 with
     | _ -> Alcotest.fail "pool survived the exception"
     | exception Invalid_argument _ -> ())
  | None -> Alcotest.fail "body did not run"

(* ---- process model ---- *)

let test_process_isolation () =
  (* Each connection gets a fresh machine: VA consumed by one connection
     does not accumulate into the next. *)
  let result =
    Runtime.Process.serve
      ~make_scheme:(fun () -> Runtime.Schemes.shadow_pool (Machine.create ()))
      ~handler:(fun _ scheme ->
        for _ = 1 to 20 do
          ignore (scheme.Runtime.Scheme.malloc 64)
        done)
      ~connections:5
  in
  check_int "connections" 5 result.Runtime.Process.connections;
  check_bool "va bounded per connection" true
    (result.Runtime.Process.max_va_bytes_per_connection
     < 200 * Addr.page_size);
  check_int "no detections" 0 result.Runtime.Process.detections

let test_process_detection_recorded () =
  let result =
    Runtime.Process.serve
      ~make_scheme:(fun () -> Runtime.Schemes.shadow_pool (Machine.create ()))
      ~handler:(fun i scheme ->
        let a = scheme.Runtime.Scheme.malloc 32 in
        scheme.Runtime.Scheme.free a;
        (* Connection 2 commits a use-after-free; the server survives. *)
        if i = 2 then ignore (scheme.Runtime.Scheme.load a ~width:8))
      ~connections:5
  in
  check_int "one child died diagnosed" 1 result.Runtime.Process.detections;
  check_int "server completed all connections" 5
    result.Runtime.Process.connections

let test_process_fork_cost () =
  let r =
    Runtime.Process.run_connection
      ~make_scheme:(fun () -> Runtime.Schemes.native (Machine.create ()))
      ~handler:(fun _ -> ())
  in
  check_bool "fork cost charged" true
    (r.Runtime.Process.cycles
     >= float_of_int Runtime.Process.fork_cost_instructions)

let prop_scheme_uniformity =
  (* Every scheme executes the same little program with the same
     functional result. *)
  QCheck.Test.make ~name:"schemes: uniform functional behaviour" ~count:20
    QCheck.(int_range 1 50)
    (fun n ->
      let run make =
        let s = make (Machine.create ()) in
        let a = s.Runtime.Scheme.malloc (8 * (1 + (n mod 8))) in
        s.Runtime.Scheme.store a ~width:8 n;
        let v = s.Runtime.Scheme.load a ~width:8 in
        s.Runtime.Scheme.free a;
        v
      in
      let expected = n in
      run Runtime.Schemes.native = expected
      && run Runtime.Schemes.pa = expected
      && run Runtime.Schemes.shadow_basic = expected
      && run Runtime.Schemes.shadow_pool = expected
      && run Baseline.Efence.scheme = expected
      && run (fun m -> Baseline.Valgrind_sim.scheme m) = expected
      && run (fun m -> Baseline.Capability_check.scheme m) = expected)

let () =
  Alcotest.run "runtime"
    [
      ( "schemes",
        [
          Alcotest.test_case "native passthrough pools" `Quick
            test_native_pool_passthrough;
          Alcotest.test_case "pa dummy syscalls" `Quick test_pa_dummy_syscalls;
          Alcotest.test_case "pa VA reuse" `Quick test_pa_pool_destroy_reuses_va;
          Alcotest.test_case "shadow-pool detects" `Quick
            test_shadow_pool_scheme_detects;
          Alcotest.test_case "scheme introspection" `Quick
            test_scheme_introspection;
          Alcotest.test_case "compute accounting" `Quick
            test_compute_accounting;
        ]
        @ [ QCheck_alcotest.to_alcotest prop_scheme_uniformity ] );
      ( "workload-api",
        [
          Alcotest.test_case "fields" `Quick test_workload_api_fields;
          Alcotest.test_case "bulk" `Quick test_workload_api_bulk;
          Alcotest.test_case "with_pool bracket" `Quick
            test_with_pool_destroys_on_exception;
        ] );
      ( "process",
        [
          Alcotest.test_case "isolation" `Quick test_process_isolation;
          Alcotest.test_case "detection recorded" `Quick
            test_process_detection_recorded;
          Alcotest.test_case "fork cost" `Quick test_process_fork_cost;
        ] );
    ]
