(* The farm's determinism and merge contract: fixed (seed, shards) gives
   identical results; merged totals are identical across shard counts
   and policies; the scheduler partitions the connection set exactly. *)

module Scheduler = Danguard_farm.Scheduler
module Farm = Danguard_farm.Farm

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 0.0))

let run ?(policy = Scheduler.Round_robin) ?(seed = 0x5eed) ?(shards = 2)
    ?(connections = 24) ?(probe_every = 6) ?(config = Harness.Experiment.ours)
    () =
  Farm.run_server ~policy ~seed ~probe_every ~config ~shards ~connections
    Workload.Servers.ghttpd

(* ---- scheduler ---- *)

let test_scheduler_partition () =
  let sched =
    Scheduler.create ~policy:Scheduler.Round_robin ~seed:7 ~shards:3
      ~connections:17
  in
  let assignment = Scheduler.assignment sched in
  let served = Array.concat (Array.to_list assignment) in
  check_int "every connection dealt once" 17 (Array.length served);
  Array.sort compare served;
  Array.iteri (fun i conn -> check_int "exact set [0,n)" i conn) served;
  (* the deal is balanced to within one connection *)
  Array.iter
    (fun q ->
      let n = Array.length q in
      check_bool "balanced" true (n = 17 / 3 || n = (17 / 3) + 1))
    assignment

let test_scheduler_deterministic () =
  let deal () =
    Scheduler.assignment
      (Scheduler.create ~policy:Scheduler.Round_robin ~seed:42 ~shards:4
         ~connections:32)
  in
  check_bool "same seed, same deal" true (deal () = deal ());
  let other =
    Scheduler.assignment
      (Scheduler.create ~policy:Scheduler.Round_robin ~seed:43 ~shards:4
         ~connections:32)
  in
  check_bool "different seed shuffles differently" true (deal () <> other)

let test_scheduler_drains () =
  let sched =
    Scheduler.create ~policy:Scheduler.Work_steal ~seed:1 ~shards:2
      ~connections:9
  in
  let drained = ref [] in
  let rec drain shard =
    match Scheduler.next sched ~shard with
    | None -> ()
    | Some c ->
      drained := c :: !drained;
      drain shard
  in
  drain 0;
  drain 1;
  let served = List.sort compare !drained in
  check_bool "work-steal serves the exact set" true
    (served = List.init 9 Fun.id)

(* ---- farm determinism ---- *)

let totals_fingerprint (r : Farm.result) =
  ( r.Farm.totals.Farm.connections,
    r.Farm.totals.Farm.detections,
    r.Farm.totals.Farm.syscalls,
    Vmm.Stats.field_values r.Farm.totals.Farm.stats )

let test_farm_deterministic () =
  let a = run () and b = run () in
  check_bool "identical totals" true
    (totals_fingerprint a = totals_fingerprint b);
  check_float "identical makespan" a.Farm.makespan_cycles
    b.Farm.makespan_cycles;
  check_bool "identical per-shard reports" true
    (a.Farm.per_shard = b.Farm.per_shard)

let test_farm_totals_shard_invariant () =
  let base = run ~shards:1 () in
  List.iter
    (fun shards ->
      let r = run ~shards () in
      check_bool
        (Printf.sprintf "totals at %d shards equal single-shard" shards)
        true
        (totals_fingerprint r = totals_fingerprint base);
      check_float
        (Printf.sprintf "latency p99 at %d shards" shards)
        base.Farm.latency.Harness.Latency.q99 r.Farm.latency.Harness.Latency.q99)
    [ 2; 3; 4 ]

let test_farm_work_steal_totals () =
  let rr = run ~policy:Scheduler.Round_robin () in
  let ws = run ~policy:Scheduler.Work_steal () in
  check_bool "work-steal merged totals equal round-robin" true
    (totals_fingerprint rr = totals_fingerprint ws)

let test_farm_detections () =
  (* probe_every 6 over indices 0..23 probes 0,6,12,18 *)
  let r = run () in
  check_int "ours detects every probe" 4 r.Farm.totals.Farm.detections;
  let native = run ~config:Harness.Experiment.native () in
  check_int "native detects nothing" 0 native.Farm.totals.Farm.detections;
  check_int "same connections served" 24
    native.Farm.totals.Farm.connections

let test_farm_speedup () =
  let one = run ~shards:1 ~connections:32 () in
  let four = run ~shards:4 ~connections:32 () in
  check_bool "4 shards at least double throughput" true
    (four.Farm.throughput >= 2.0 *. one.Farm.throughput);
  check_bool "makespan shrinks" true
    (four.Farm.makespan_cycles < one.Farm.makespan_cycles)

let test_farm_merged_registry () =
  let r = run () in
  let reg = r.Farm.registry in
  check_int "farm.connections counter merged" 24
    (Telemetry.Metrics.counter_value
       (Telemetry.Metrics.counter reg "farm.connections"));
  let hist = Telemetry.Metrics.histogram reg "farm.latency_cycles" in
  check_int "one latency sample per connection" 24
    (Telemetry.Histogram.count hist);
  (* merged vmm counters match the snapshot view *)
  let stats = Vmm.Stats.snapshot (Vmm.Stats.create ~registry:reg ()) in
  check_int "registry syscalls = totals" r.Farm.totals.Farm.syscalls
    (Vmm.Stats.total_syscalls stats)

let () =
  Alcotest.run "farm"
    [
      ( "scheduler",
        [
          Alcotest.test_case "exact partition" `Quick test_scheduler_partition;
          Alcotest.test_case "deterministic deal" `Quick
            test_scheduler_deterministic;
          Alcotest.test_case "work-steal drains" `Quick test_scheduler_drains;
        ] );
      ( "farm",
        [
          Alcotest.test_case "deterministic run" `Quick test_farm_deterministic;
          Alcotest.test_case "totals shard-invariant" `Quick
            test_farm_totals_shard_invariant;
          Alcotest.test_case "work-steal totals" `Quick
            test_farm_work_steal_totals;
          Alcotest.test_case "probe detections" `Quick test_farm_detections;
          Alcotest.test_case "simulated speedup" `Quick test_farm_speedup;
          Alcotest.test_case "merged registry" `Quick test_farm_merged_registry;
        ] );
    ]
