(* Tests for the MiniC compiler substrate: lexer, parser, typechecker,
   points-to analysis, escape analysis, the Automatic Pool Allocation
   transform, and the interpreter — including semantic preservation of
   the transform and end-to-end detection of the paper's Figure 1 bug. *)

let check_int = Alcotest.check Alcotest.int
let check_bool = Alcotest.check Alcotest.bool
let check_string = Alcotest.check Alcotest.string

(* The paper's running example (Figures 1/2), completed into a runnable
   program.  [print(p->next->val)] reads the sublist head, which is NOT
   freed by free_all_but_head, so the program is correct as written. *)
let running_example =
  {|
struct s { int val; struct s *next; }

void create_list(struct s *p, int n) {
  struct s *cur = p;
  int i = 0;
  while (i < n) {
    cur->next = malloc(struct s);
    cur = cur->next;
    cur->val = i;
    cur->next = null;
    i = i + 1;
  }
}

void free_all_but_head(struct s *p) {
  struct s *cur = p->next;
  while (cur != null) {
    struct s *nxt = cur->next;
    free(cur);
    cur = nxt;
  }
  p->next = null;
}

void g(struct s *p) {
  p->next = malloc(struct s);
  p->next->val = 7;
  p->next->next = null;
  create_list(p->next, 10);
  free_all_but_head(p->next);
}

void f() {
  struct s *p = malloc(struct s);
  p->val = 1;
  p->next = null;
  g(p);
  print(p->next->val);
  free(p->next);
  free(p);
}

void main() {
  f();
  f();
}
|}

(* Figure 1's actual bug: the second node is freed, then dereferenced. *)
let buggy_example =
  {|
struct s { int val; struct s *next; }

void g(struct s *p) {
  struct s *a = malloc(struct s);
  struct s *b = malloc(struct s);
  p->next = a;
  a->val = 1;
  a->next = b;
  b->val = 2;
  b->next = null;
  free(b);
}

void f() {
  struct s *p = malloc(struct s);
  p->next = null;
  g(p);
  print(p->next->next->val);
}

void main() { f(); }
|}

(* ---- lexer ---- *)

let test_lexer_tokens () =
  let toks = List.map fst (Minic.Lexer.tokenize "x = a->b + 42; // c\n") in
  check_bool "token stream" true
    (toks
     = Minic.Lexer.
         [ IDENT "x"; ASSIGN; IDENT "a"; ARROW; IDENT "b"; PLUS; INT_LIT 42;
           SEMI; EOF ])

let test_lexer_comments_and_lines () =
  let toks = Minic.Lexer.tokenize "a\n/* multi\nline */ b" in
  (match toks with
   | [ (Minic.Lexer.IDENT "a", 1); (Minic.Lexer.IDENT "b", 3);
       (Minic.Lexer.EOF, 3) ] ->
     ()
   | _ -> Alcotest.fail "comment/line tracking broken")

let test_lexer_operators () =
  let toks = List.map fst (Minic.Lexer.tokenize "== != <= >= < > && || !") in
  check_bool "operators" true
    (toks
     = Minic.Lexer.[ EQ; NE; LE; GE; LT; GT; ANDAND; OROR; BANG; EOF ])

let test_lexer_error () =
  (match Minic.Lexer.tokenize "a @ b" with
   | _ -> Alcotest.fail "expected lex error"
   | exception Minic.Lexer.Lex_error { line = 1; _ } -> ())

(* ---- parser ---- *)

let test_parse_running_example () =
  let p = Minic.Parser.parse running_example in
  check_int "structs" 1 (List.length p.Minic.Ast.structs);
  check_int "functions" 5 (List.length p.Minic.Ast.funcs);
  match Minic.Ast.find_func p "f" with
  | Some f -> check_int "f params" 0 (List.length f.Minic.Ast.params)
  | None -> Alcotest.fail "f missing"

let test_parse_precedence () =
  let p = Minic.Parser.parse "void main() { int x = 1 + 2 * 3; print(x); }" in
  (match Minic.Ast.find_func p "main" with
   | Some { Minic.Ast.body = Minic.Ast.Decl (_, _, Some e) :: _; _ } ->
     (match e with
      | Minic.Ast.Binop (Minic.Ast.Add, Minic.Ast.Int 1,
                         Minic.Ast.Binop (Minic.Ast.Mul, Minic.Ast.Int 2,
                                          Minic.Ast.Int 3)) ->
        ()
      | _ -> Alcotest.fail "precedence wrong")
   | _ -> Alcotest.fail "unexpected shape")

let test_parse_error_reports_line () =
  (match Minic.Parser.parse "void main() {\n  int x = ;\n}" with
   | _ -> Alcotest.fail "expected parse error"
   | exception Minic.Parser.Parse_error { line; _ } -> check_int "line" 2 line)

let test_parse_globals () =
  let p = Minic.Parser.parse "struct s { int v; } struct s *g; int n; void main() { n = 3; }" in
  check_int "globals" 2 (List.length p.Minic.Ast.globals)

let test_pretty_roundtrip () =
  let p1 = Minic.Parser.parse running_example in
  let printed = Minic.Pretty.program_to_string p1 in
  let p2 = Minic.Parser.parse printed in
  check_int "same function count" (List.length p1.Minic.Ast.funcs)
    (List.length p2.Minic.Ast.funcs);
  check_string "fixpoint" printed (Minic.Pretty.program_to_string p2)

(* ---- typechecker ---- *)

let expect_type_error src =
  match Minic.Typecheck.check (Minic.Parser.parse src) with
  | () -> Alcotest.fail "expected type error"
  | exception Minic.Typecheck.Type_error _ -> ()

let test_typecheck_ok () = Minic.Typecheck.check (Minic.Parser.parse running_example)

let test_typecheck_unknown_field () =
  expect_type_error
    "struct s { int v; } void main() { struct s *p = malloc(struct s); p->w = 1; }"

let test_typecheck_unknown_var () = expect_type_error "void main() { x = 1; }"

let test_typecheck_bad_malloc () =
  expect_type_error "void main() { int x = malloc(struct nope); }"

let test_typecheck_arity () =
  expect_type_error "void f(int x) { } void main() { f(1, 2); }"

let test_typecheck_void_return () =
  expect_type_error "void f() { return 3; }  void main() { f(); }"

(* ---- points-to + escape ---- *)

let test_points_to_example () =
  let p = Minic.Parser.parse running_example in
  let pt = Minic.Points_to.analyze p in
  check_bool "has heap classes" true (Minic.Points_to.heap_classes pt <> []);
  (* All list-node malloc sites (sites 0 in create_list and 1 in g) land
     in one class; f's head allocation may be separate. *)
  let c_list = Minic.Points_to.site_class pt 0 in
  let c_g = Minic.Points_to.site_class pt 1 in
  check_int "list sites unified" c_list c_g;
  check_string "struct hint" "s"
    (Option.value ~default:"?" (Minic.Points_to.struct_hint pt c_list))

let test_escape_example () =
  let p = Minic.Parser.parse running_example in
  let pt = Minic.Points_to.analyze p in
  let q = Minic.Points_to.query pt in
  let c = Minic.Points_to.site_class pt 0 in
  let func name =
    match Minic.Ast.find_func p name with
    | Some f -> f
    | None -> Alcotest.fail ("no function " ^ name)
  in
  check_bool "escapes g (reachable from its param)" true
    (Minic.Escape.escapes q (func "g") c);
  check_bool "does not escape f" false (Minic.Escape.escapes q (func "f") c);
  check_bool "no globals -> nothing global" true
    (Minic.Escape.reachable_from_globals q p = [])

let test_escape_globals () =
  let src =
    "struct s { int v; struct s *next; } struct s *g;\n\
     void main() { g = malloc(struct s); g->v = 1; }"
  in
  let p = Minic.Parser.parse src in
  let pt = Minic.Points_to.analyze p in
  let q = Minic.Points_to.query pt in
  let c = Minic.Points_to.site_class pt 0 in
  check_bool "global-reachable" true
    (List.mem c (Minic.Escape.reachable_from_globals q p))

(* ---- pool transform ---- *)

let test_transform_running_example () =
  let p = Minic.Parser.parse running_example in
  let transformed, summary = Minic.Pool_transform.transform p in
  Minic.Typecheck.check transformed;
  check_int "all sites rewritten" 3 summary.Minic.Pool_transform.sites_rewritten;
  check_int "all frees rewritten" 3 summary.Minic.Pool_transform.frees_rewritten;
  check_bool "no global pools" true
    (List.for_all
       (fun d -> not d.Minic.Pool_transform.global)
       summary.Minic.Pool_transform.pools);
  List.iter
    (fun d -> check_string "owner is f" "f" d.Minic.Pool_transform.owner)
    summary.Minic.Pool_transform.pools;
  (* g must have received pool parameters; f must not. *)
  (match Minic.Ast.find_func transformed "g" with
   | Some g -> check_bool "g gets descriptors" true (g.Minic.Ast.pool_params <> [])
   | None -> Alcotest.fail "g missing");
  match Minic.Ast.find_func transformed "f" with
  | Some f ->
    check_bool "f owns, receives none" true (f.Minic.Ast.pool_params = []);
    let inits =
      List.filter
        (function Minic.Ast.Pool_init _ -> true | _ -> false)
        f.Minic.Ast.body
    in
    let destroys =
      List.filter
        (function Minic.Ast.Pool_destroy _ -> true | _ -> false)
        f.Minic.Ast.body
    in
    check_int "inits match destroys" (List.length inits) (List.length destroys)
  | None -> Alcotest.fail "f missing"

let test_transform_global_pool () =
  let src =
    "struct s { int v; struct s *next; } struct s *head;\n\
     void add() { struct s *n = malloc(struct s); n->next = head; head = n; }\n\
     void main() { add(); add(); }"
  in
  let transformed, summary = Minic.Pool_transform.transform (Minic.Parser.parse src) in
  Minic.Typecheck.check transformed;
  (match summary.Minic.Pool_transform.pools with
   | [ d ] ->
     check_bool "global" true d.Minic.Pool_transform.global;
     check_string "owned by main" "main" d.Minic.Pool_transform.owner
   | _ -> Alcotest.fail "expected one pool");
  match Minic.Ast.find_func transformed "add" with
  | Some add -> check_bool "descriptor threaded" true (add.Minic.Ast.pool_params <> [])
  | None -> Alcotest.fail "add missing"

let test_transform_requires_main () =
  let src = "struct s { int v; } void f() { struct s *p = malloc(struct s); free(p); }" in
  (match Minic.Pool_transform.transform (Minic.Parser.parse src) with
   | _ -> Alcotest.fail "expected Transform_error"
   | exception Minic.Pool_transform.Transform_error _ -> ())

let test_transform_early_returns () =
  let src =
    "struct s { int v; }\n\
     void main() {\n\
    \  struct s *p = malloc(struct s);\n\
    \  p->v = 1;\n\
    \  if (p->v > 0) { free(p); return; }\n\
    \  free(p);\n\
     }"
  in
  let transformed, _ = Minic.Pool_transform.transform (Minic.Parser.parse src) in
  Minic.Typecheck.check transformed;
  (* Run it: the pool must be destroyed exactly once on the early-return
     path (a double destroy would raise Invalid_argument). *)
  let m = Vmm.Machine.create () in
  ignore (Minic.Interp.run transformed (Runtime.Schemes.shadow_pool m))

let prints program scheme =
  (Minic.Interp.run program scheme).Minic.Interp.prints

let test_transform_preserves_semantics () =
  let p = Minic.Parser.parse running_example in
  let transformed, _ = Minic.Pool_transform.transform p in
  let plain = prints p (Runtime.Schemes.native (Vmm.Machine.create ())) in
  let pooled =
    prints transformed (Runtime.Schemes.shadow_pool (Vmm.Machine.create ()))
  in
  check_bool "same output" true (plain = pooled);
  check_bool "prints 7 twice" true (plain = [ 7; 7 ])

(* ---- interpreter ---- *)

let run_prints src =
  prints (Minic.Parser.parse src) (Runtime.Schemes.native (Vmm.Machine.create ()))

let test_interp_arith_and_control () =
  let out =
    run_prints
      "void main() { int i = 0; int acc = 0;\n\
       while (i < 5) { if (i % 2 == 0) { acc = acc + i; } i = i + 1; }\n\
       print(acc); print(-3); print(!0); print(10 / 3); }"
  in
  check_bool "values" true (out = [ 6; -3; 1; 3 ])

let test_interp_recursion () =
  let out =
    run_prints
      "int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }\n\
       void main() { print(fib(10)); }"
  in
  check_bool "fib" true (out = [ 55 ])

let test_interp_linked_structures () =
  let out =
    run_prints
      "struct s { int v; struct s *next; }\n\
       void main() {\n\
      \  struct s *a = malloc(struct s);\n\
      \  struct s *b = malloc(struct s);\n\
      \  a->v = 10; a->next = b; b->v = 32; b->next = null;\n\
      \  print(a->v + a->next->v);\n\
      \  free(b); free(a);\n\
       }"
  in
  check_bool "list sum" true (out = [ 42 ])

let test_interp_globals () =
  let out =
    run_prints
      "int counter;\n\
       void bump() { counter = counter + 1; }\n\
       void main() { bump(); bump(); bump(); print(counter); }"
  in
  check_bool "global state" true (out = [ 3 ])

let test_interp_null_deref () =
  (match run_prints "struct s { int v; } void main() { struct s *p = null; print(p->v); }" with
   | _ -> Alcotest.fail "expected null deref"
   | exception Minic.Interp.Null_dereference _ -> ())

let test_interp_division_by_zero () =
  (match run_prints "void main() { print(1 / 0); }" with
   | _ -> Alcotest.fail "expected runtime error"
   | exception Minic.Interp.Runtime_error _ -> ())

let test_interp_step_limit () =
  let p = Minic.Parser.parse "void main() { while (1) { } }" in
  (match
     Minic.Interp.run ~max_steps:10_000 p
       (Runtime.Schemes.native (Vmm.Machine.create ()))
   with
   | _ -> Alcotest.fail "expected step-limit error"
   | exception Minic.Interp.Runtime_error _ -> ())

let test_transform_recursion () =
  (* A recursive builder: the class escapes every level through the
     return value, so the pool lands in main; the program must still run
     identically. *)
  let src =
    "struct s { int v; struct s *next; }\n\
     struct s *build(int n) {\n\
    \  if (n == 0) { return null; }\n\
    \  struct s *x = malloc(struct s);\n\
    \  x->v = n;\n\
    \  x->next = build(n - 1);\n\
    \  return x;\n\
     }\n\
     int total(struct s *l) {\n\
    \  if (l == null) { return 0; }\n\
    \  return l->v + total(l->next);\n\
     }\n\
     void main() {\n\
    \  struct s *l = build(10);\n\
    \  print(total(l));\n\
     }"
  in
  let program = Minic.Parser.parse src in
  let transformed, summary = Minic.Pool_transform.transform program in
  Minic.Typecheck.check transformed;
  (match summary.Minic.Pool_transform.pools with
   | [ d ] -> check_string "recursive data owned by main" "main" d.Minic.Pool_transform.owner
   | _ -> Alcotest.fail "expected one pool");
  let out = prints transformed (Runtime.Schemes.shadow_pool (Vmm.Machine.create ())) in
  check_bool "sum 1..10" true (out = [ 55 ])

let test_transform_sibling_pools () =
  (* Two independent data structures in sibling functions get separate
     pools with separate owners. *)
  let src =
    "struct a { int v; }\n\
     struct b { int w; }\n\
     void left() { struct a *x = malloc(struct a); x->v = 1; print(x->v); free(x); }\n\
     void right() { struct b *y = malloc(struct b); y->w = 2; print(y->w); free(y); }\n\
     void main() { left(); right(); }"
  in
  let transformed, summary = Minic.Pool_transform.transform (Minic.Parser.parse src) in
  Minic.Typecheck.check transformed;
  let owners =
    List.sort compare
      (List.map (fun d -> d.Minic.Pool_transform.owner) summary.Minic.Pool_transform.pools)
  in
  check_bool "separate sibling owners" true (owners = [ "left"; "right" ]);
  let out = prints transformed (Runtime.Schemes.shadow_pool (Vmm.Machine.create ())) in
  check_bool "output" true (out = [ 1; 2 ])

let test_transform_descriptor_two_levels () =
  (* The descriptor flows through an intermediate function that neither
     allocates nor frees — only its callee does. *)
  let src =
    "struct s { int v; }\n\
     void do_free(struct s *p) { free(p); }\n\
     void middle(struct s *p) { do_free(p); }\n\
     void main() {\n\
    \  struct s *p = malloc(struct s);\n\
    \  p->v = 3;\n\
    \  print(p->v);\n\
    \  middle(p);\n\
     }"
  in
  let transformed, _ = Minic.Pool_transform.transform (Minic.Parser.parse src) in
  Minic.Typecheck.check transformed;
  (match Minic.Ast.find_func transformed "middle" with
   | Some middle ->
     check_bool "middle threads the descriptor" true
       (middle.Minic.Ast.pool_params <> [])
   | None -> Alcotest.fail "middle missing");
  let out = prints transformed (Runtime.Schemes.shadow_pool (Vmm.Machine.create ())) in
  check_bool "output" true (out = [ 3 ])

(* ---- arrays ---- *)

let array_example =
  {|
struct cell { int v; struct cell *link; }

int fill_and_sum(struct cell *arr, int n) {
  int i = 0;
  while (i < n) {
    arr[i]->v = i * 2;
    arr[i]->link = null;
    i = i + 1;
  }
  int acc = 0;
  i = 0;
  while (i < n) {
    acc = acc + arr[i]->v;
    i = i + 1;
  }
  return acc;
}

void main() {
  struct cell *arr = malloc(struct cell, 100);
  print(fill_and_sum(arr, 100));
  arr[7]->link = arr[3];
  print(arr[7]->link->v);
  free(arr);
}
|}

let test_array_parse_and_types () =
  let p = Minic.Parser.parse array_example in
  Minic.Typecheck.check p;
  (* Round-trips through the pretty printer. *)
  Minic.Typecheck.check (Minic.Parser.parse (Minic.Pretty.program_to_string p))

let test_array_semantics () =
  let out = run_prints array_example in
  check_bool "sum of 2i for i<100 and arr[3].v" true (out = [ 9900; 6 ])

let test_array_transform_preserved () =
  let p = Minic.Parser.parse array_example in
  let transformed, summary = Minic.Pool_transform.transform p in
  Minic.Typecheck.check transformed;
  check_int "array site rewritten" 1 summary.Minic.Pool_transform.sites_rewritten;
  let pooled =
    prints transformed (Runtime.Schemes.shadow_pool (Vmm.Machine.create ()))
  in
  check_bool "output preserved" true (pooled = [ 9900; 6 ])

let test_array_uaf_detected () =
  (* A 100-element array spans multiple pages; a stale access to a
     middle element must trap on its (multi-page) shadow range. *)
  let src =
    "struct cell { int v; struct cell *link; }\n\
     void main() {\n\
    \  struct cell *arr = malloc(struct cell, 400);\n\
    \  arr[250]->v = 1;\n\
    \  free(arr);\n\
    \  print(arr[250]->v);\n\
     }"
  in
  let transformed, _ = Minic.Pool_transform.transform (Minic.Parser.parse src) in
  (match
     Minic.Interp.run transformed
       (Runtime.Schemes.shadow_pool (Vmm.Machine.create ()))
   with
   | _ -> Alcotest.fail "stale array access not detected"
   | exception Shadow.Report.Violation r ->
     (match r.Shadow.Report.kind, r.Shadow.Report.object_info with
      | Shadow.Report.Use_after_free _, Some info ->
        check_int "interior offset diagnosed" (250 * 16)
          info.Shadow.Report.offset
      | _ -> Alcotest.fail "wrong diagnosis"))

let test_array_count_errors () =
  let p =
    Minic.Parser.parse
      "struct s { int v; } void main() { struct s *a = malloc(struct s, 0); a->v = 1; }"
  in
  (match Minic.Interp.run p (Runtime.Schemes.native (Vmm.Machine.create ())) with
   | _ -> Alcotest.fail "zero-count malloc should fail"
   | exception Minic.Interp.Runtime_error _ -> ());
  (match
     Minic.Typecheck.check
       (Minic.Parser.parse
          "struct s { int v; } void main() { struct s *a = malloc(struct s, null); free(a); }")
   with
   | _ -> Alcotest.fail "pointer count should be rejected"
   | exception Minic.Typecheck.Type_error _ -> ())

(* ---- differential property: random programs ---- *)

(* Generate small, correct MiniC programs from composable fragments
   (list builders, summers, pruners, releasers — optionally via a
   global), then check that the pool transform preserves the printed
   output exactly, running the original under the plain allocator and
   the transformed program under the full shadow-pool scheme.  This
   exercises descriptor threading, owner placement, global pools and
   destroy-on-return across a far larger program space than the
   hand-written cases. *)
let generate_program ~lists ~use_global ~prune ~seed =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  add "struct node { int v; struct node *next; }";
  if use_global then add "struct node *stash;";
  add "struct node *build(int n, int seed) {";
  add "  struct node *head = null;";
  add "  int i = 0;";
  add "  while (i < n) {";
  add "    struct node *fresh = malloc(struct node);";
  add "    fresh->v = seed + i;";
  add "    fresh->next = head;";
  add "    head = fresh;";
  add "    i = i + 1;";
  add "  }";
  add "  return head;";
  add "}";
  add "int total(struct node *head) {";
  add "  int acc = 0;";
  add "  struct node *cur = head;";
  add "  while (cur != null) { acc = acc + cur->v; cur = cur->next; }";
  add "  return acc;";
  add "}";
  add "struct node *prune(struct node *head) {";
  add "  struct node *cur = head;";
  add "  while (cur != null) {";
  add "    struct node *nxt = cur->next;";
  add "    if (nxt != null) {";
  add "      cur->next = nxt->next;";
  add "      free(nxt);";
  add "      cur = cur->next;";
  add "    } else { cur = null; }";
  add "  }";
  add "  return head;";
  add "}";
  add "void release(struct node *head) {";
  add "  struct node *cur = head;";
  add "  while (cur != null) {";
  add "    struct node *nxt = cur->next;";
  add "    free(cur);";
  add "    cur = nxt;";
  add "  }";
  add "}";
  add "void main() {";
  List.iteri
    (fun i n ->
      add "  struct node *l%d = build(%d, %d);" i n (seed + (i * 17));
      add "  print(total(l%d));" i;
      if prune && n > 1 then begin
        add "  l%d = prune(l%d);" i i;
        add "  print(total(l%d));" i
      end;
      if use_global && i = 0 then begin
        add "  stash = l%d;" i;
        add "  print(stash->v);"
      end;
      add "  release(l%d);" i;
      add "  l%d = null;" i;
      if use_global && i = 0 then add "  stash = null;")
    lists;
  add "}";
  Buffer.contents b

let prop_transform_differential =
  QCheck.Test.make ~name:"transform: output preserved on random programs"
    ~count:40
    QCheck.(
      quad
        (list_of_size (Gen.int_range 1 3) (int_range 1 10))
        bool bool small_int)
    (fun (lists, use_global, prune, seed) ->
      let source = generate_program ~lists ~use_global ~prune ~seed in
      let program = Minic.Parser.parse source in
      Minic.Typecheck.check program;
      let transformed, summary = Minic.Pool_transform.transform program in
      Minic.Typecheck.check transformed;
      let plain = prints program (Runtime.Schemes.native (Vmm.Machine.create ())) in
      let pooled =
        prints transformed (Runtime.Schemes.shadow_pool (Vmm.Machine.create ()))
      in
      plain = pooled && summary.Minic.Pool_transform.pools <> [])

let prop_transform_global_ownership =
  QCheck.Test.make ~name:"transform: global-reachable data gets a main pool"
    ~count:20
    QCheck.(pair (int_range 1 8) small_int)
    (fun (n, seed) ->
      let source =
        generate_program ~lists:[ n ] ~use_global:true ~prune:false ~seed
      in
      let _, summary = Minic.Pool_transform.transform (Minic.Parser.parse source) in
      (* The stashed list's class escapes to a global, so some pool must
         be global and owned by main. *)
      List.exists
        (fun (d : Minic.Pool_transform.pool_desc) ->
          d.Minic.Pool_transform.global
          && d.Minic.Pool_transform.owner = "main")
        summary.Minic.Pool_transform.pools)

(* ---- end to end: the Figure 1 bug ---- *)

let test_figure1_bug_detected_under_shadow () =
  let transformed, _ =
    Minic.Pool_transform.transform (Minic.Parser.parse buggy_example)
  in
  let m = Vmm.Machine.create () in
  (match Minic.Interp.run transformed (Runtime.Schemes.shadow_pool m) with
   | _ -> Alcotest.fail "dangling deref not detected"
   | exception Shadow.Report.Violation r ->
     check_bool "use-after-free" true
       (match r.Shadow.Report.kind with
        | Shadow.Report.Use_after_free _ -> true
        | _ -> false))

let test_figure1_bug_silent_under_native () =
  let p = Minic.Parser.parse buggy_example in
  let out = prints p (Runtime.Schemes.native (Vmm.Machine.create ())) in
  check_int "native reads stale memory silently" 1 (List.length out)

let test_figure1_bug_detected_without_pools () =
  (* Binary-only mode: no transform at all, shadow pages still catch it. *)
  let p = Minic.Parser.parse buggy_example in
  let m = Vmm.Machine.create () in
  (match Minic.Interp.run p (Runtime.Schemes.shadow_basic m) with
   | _ -> Alcotest.fail "dangling deref not detected"
   | exception Shadow.Report.Violation _ -> ())

let () =
  Alcotest.run "minic"
    [
      ( "lexer",
        [
          Alcotest.test_case "tokens" `Quick test_lexer_tokens;
          Alcotest.test_case "comments/lines" `Quick
            test_lexer_comments_and_lines;
          Alcotest.test_case "operators" `Quick test_lexer_operators;
          Alcotest.test_case "errors" `Quick test_lexer_error;
        ] );
      ( "parser",
        [
          Alcotest.test_case "running example" `Quick
            test_parse_running_example;
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "error line" `Quick test_parse_error_reports_line;
          Alcotest.test_case "globals" `Quick test_parse_globals;
          Alcotest.test_case "pretty roundtrip" `Quick test_pretty_roundtrip;
        ] );
      ( "typecheck",
        [
          Alcotest.test_case "accepts example" `Quick test_typecheck_ok;
          Alcotest.test_case "unknown field" `Quick test_typecheck_unknown_field;
          Alcotest.test_case "unknown var" `Quick test_typecheck_unknown_var;
          Alcotest.test_case "bad malloc" `Quick test_typecheck_bad_malloc;
          Alcotest.test_case "arity" `Quick test_typecheck_arity;
          Alcotest.test_case "void return" `Quick test_typecheck_void_return;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "points-to classes" `Quick test_points_to_example;
          Alcotest.test_case "escape" `Quick test_escape_example;
          Alcotest.test_case "globals escape" `Quick test_escape_globals;
        ] );
      ( "transform",
        [
          Alcotest.test_case "running example" `Quick
            test_transform_running_example;
          Alcotest.test_case "global pool" `Quick test_transform_global_pool;
          Alcotest.test_case "requires main" `Quick test_transform_requires_main;
          Alcotest.test_case "early returns" `Quick test_transform_early_returns;
          Alcotest.test_case "semantics preserved" `Quick
            test_transform_preserves_semantics;
          Alcotest.test_case "recursion -> main pool" `Quick
            test_transform_recursion;
          Alcotest.test_case "sibling pools" `Quick test_transform_sibling_pools;
          Alcotest.test_case "descriptor two levels" `Quick
            test_transform_descriptor_two_levels;
        ] );
      ( "interp",
        [
          Alcotest.test_case "arith/control" `Quick
            test_interp_arith_and_control;
          Alcotest.test_case "recursion" `Quick test_interp_recursion;
          Alcotest.test_case "linked structures" `Quick
            test_interp_linked_structures;
          Alcotest.test_case "globals" `Quick test_interp_globals;
          Alcotest.test_case "null deref" `Quick test_interp_null_deref;
          Alcotest.test_case "division by zero" `Quick
            test_interp_division_by_zero;
          Alcotest.test_case "step limit" `Quick test_interp_step_limit;
        ] );
      ( "arrays",
        [
          Alcotest.test_case "parse + types" `Quick test_array_parse_and_types;
          Alcotest.test_case "semantics" `Quick test_array_semantics;
          Alcotest.test_case "transform preserved" `Quick
            test_array_transform_preserved;
          Alcotest.test_case "stale array access" `Quick test_array_uaf_detected;
          Alcotest.test_case "count errors" `Quick test_array_count_errors;
        ] );
      ( "differential",
        List.map QCheck_alcotest.to_alcotest
          [ prop_transform_differential; prop_transform_global_ownership ] );
      ( "end-to-end",
        [
          Alcotest.test_case "figure 1 bug detected" `Quick
            test_figure1_bug_detected_under_shadow;
          Alcotest.test_case "figure 1 silent natively" `Quick
            test_figure1_bug_silent_under_native;
          Alcotest.test_case "figure 1 without pools" `Quick
            test_figure1_bug_detected_without_pools;
        ] );
    ]
