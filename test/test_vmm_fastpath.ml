(* The translation fast path: differential testing of the TLB-first MMU
   against a table-first oracle, TLB-coherence regression tests for
   remaps, structural proofs that the fast path skips the page table and
   does exactly one frame lookup, ranged-shootdown semantics, and the
   packed-entry encoding. *)

open Vmm

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

(* ---- Pte encoding ---- *)

let test_pte_roundtrip () =
  List.iter
    (fun perm ->
      List.iter
        (fun frame ->
          let pte = Pte.make ~frame ~perm in
          check_bool "present" true (Pte.is_present pte);
          check_int "frame" frame (Pte.frame pte);
          check_bool "perm" true (Perm.equal perm (Pte.perm pte));
          List.iter
            (fun access ->
              check_bool "allows agrees" (Perm.allows perm access)
                (Pte.allows pte access))
            [ Perm.Read; Perm.Write ])
        [ 0; 1; 42; 1_000_000 ])
    [ Perm.No_access; Perm.Read_only; Perm.Read_write ];
  check_bool "none absent" false (Pte.is_present Pte.none);
  let pte = Pte.make ~frame:9 ~perm:Perm.Read_write in
  let ro = Pte.with_perm pte Perm.Read_only in
  check_int "with_perm keeps frame" 9 (Pte.frame ro);
  check_bool "with_perm sets perm" true (Perm.equal Perm.Read_only (Pte.perm ro))

(* ---- TLB coherence under remap (the old [assert (f = frame)] bug):
   stale entries must be impossible by construction, so a remapped page
   must be re-read from the new frame even with asserts compiled out. *)

let test_remap_after_munmap_sees_new_frame () =
  let m = Machine.create () in
  let a = Kernel.mmap m ~pages:1 in
  Mmu.store m a ~width:8 111; (* warms the TLB for this page *)
  Kernel.munmap m ~addr:a ~pages:1;
  Kernel.mmap_fixed m ~addr:a ~pages:1;
  check_int "fresh frame is zeroed, not stale 111" 0 (Mmu.load m a ~width:8);
  Mmu.store m a ~width:8 222;
  check_int "writes land in the new frame" 222 (Mmu.load m a ~width:8)

let test_mmap_fixed_over_live_mapping_invalidates () =
  let m = Machine.create () in
  let a = Kernel.mmap m ~pages:2 in
  Mmu.store m a ~width:8 111;
  Mmu.store m (a + Addr.page_size) ~width:8 333;
  (* Replace both pages while their translations are hot in the TLB. *)
  Kernel.mmap_fixed m ~addr:a ~pages:2;
  check_int "page 0 re-reads through new mapping" 0 (Mmu.load m a ~width:8);
  check_int "page 1 re-reads through new mapping" 0
    (Mmu.load m (a + Addr.page_size) ~width:8)

let test_alias_at_over_warm_page () =
  let m = Machine.create () in
  let src = Kernel.mmap m ~pages:1 in
  Mmu.store m src ~width:8 42;
  let dst = Kernel.mmap m ~pages:1 in
  Mmu.store m dst ~width:8 7; (* dst translation now cached *)
  Kernel.mremap_alias_at m ~src ~dst ~pages:1;
  check_int "alias reads source frame, not stale dst frame" 42
    (Mmu.load m dst ~width:8)

let test_mprotect_visible_through_warm_tlb () =
  let m = Machine.create () in
  let a = Kernel.mmap m ~pages:1 in
  Mmu.store m a ~width:8 5; (* cache RW entry *)
  Kernel.mprotect m ~addr:a ~pages:1 Perm.Read_only;
  check_int "read still fine" 5 (Mmu.load m a ~width:8);
  (match Mmu.store m a ~width:8 6 with
   | () -> Alcotest.fail "write must trap after mprotect"
   | exception Fault.Trap (Fault.Protection _) -> ()
   | exception Fault.Trap _ -> Alcotest.fail "wrong fault");
  Kernel.mprotect m ~addr:a ~pages:1 Perm.Read_write;
  Mmu.store m a ~width:8 6;
  check_int "write after re-enable" 6 (Mmu.load m a ~width:8)

(* ---- Structural: the fast path's instruction budget ---- *)

let test_tlb_hit_skips_page_table () =
  let m = Machine.create () in
  let a = Kernel.mmap m ~pages:1 in
  ignore (Mmu.load m a ~width:8); (* warm the TLB *)
  let walks0 = Page_table.walk_count m.Machine.page_table in
  let frames0 = Frame_table.lookup_count m.Machine.frames in
  ignore (Mmu.load m a ~width:8);
  check_int "TLB-hit load: zero page-table walks" walks0
    (Page_table.walk_count m.Machine.page_table);
  check_int "8-byte load: exactly one frame lookup" (frames0 + 1)
    (Frame_table.lookup_count m.Machine.frames);
  let walks1 = Page_table.walk_count m.Machine.page_table in
  let frames1 = Frame_table.lookup_count m.Machine.frames in
  Mmu.store m a ~width:8 7;
  check_int "TLB-hit store: zero page-table walks" walks1
    (Page_table.walk_count m.Machine.page_table);
  check_int "8-byte store: exactly one frame lookup" (frames1 + 1)
    (Frame_table.lookup_count m.Machine.frames)

let test_tlb_miss_walks_once () =
  let m = Machine.create () in
  let a = Kernel.mmap m ~pages:1 in
  let walks0 = Page_table.walk_count m.Machine.page_table in
  ignore (Mmu.load m a ~width:8); (* cold: one walk, one refill *)
  check_int "TLB-miss load: exactly one walk" (walks0 + 1)
    (Page_table.walk_count m.Machine.page_table);
  let s = Stats.snapshot m.Machine.stats in
  check_int "one miss counted" 1 s.Stats.tlb_misses

let test_word_access_all_widths () =
  let m = Machine.create () in
  let a = Kernel.mmap m ~pages:2 in
  (* Bit-compatibility of word-wide and byte-wide paths, incl. the top
     byte of an 8-byte value (63-bit int truncation). *)
  List.iter
    (fun (width, v) ->
      Mmu.store m a ~width v;
      check_int (Printf.sprintf "width %d roundtrip" width) v
        (Mmu.load m a ~width);
      (* The same value must be visible byte-by-byte, little-endian. *)
      for i = 0 to width - 1 do
        check_int
          (Printf.sprintf "width %d byte %d" width i)
          ((v lsr (8 * i)) land 0xff)
          (Mmu.load m (a + i) ~width:1)
      done)
    [
      (1, 0xAB); (2, 0xBEEF); (4, 0xDEADBEEF); (8, 0x1234567890ABCDEF);
      (8, max_int); (8, 0);
    ];
  (* Exempt accessors share the word path. *)
  Mmu.store_exempt m a ~width:8 0x0102030405060708;
  check_int "exempt roundtrip" 0x0102030405060708 (Mmu.load_exempt m a ~width:8);
  check_int "exempt visible to user load" 0x0102030405060708
    (Mmu.load m a ~width:8);
  (* Cross-page accesses still work, via the byte path. *)
  let boundary = a + Addr.page_size - 3 in
  Mmu.store m boundary ~width:8 0x1122334455667788;
  check_int "cross-page roundtrip" 0x1122334455667788
    (Mmu.load m boundary ~width:8);
  Mmu.store_exempt m boundary ~width:8 0x55;
  check_int "exempt cross-page" 0x55 (Mmu.load_exempt m boundary ~width:8)

(* ---- Batched shootdowns ---- *)

let test_ranged_shootdown_counting () =
  let m = Machine.create () in
  let a = Kernel.mmap m ~pages:64 in
  let s0 = Stats.snapshot m.Machine.stats in
  Kernel.mprotect m ~addr:a ~pages:64 Perm.No_access;
  let s1 = Stats.snapshot m.Machine.stats in
  check_int "one shootdown op for 64-page mprotect" 1
    (s1.Stats.tlb_shootdowns - s0.Stats.tlb_shootdowns);
  check_int "64 pages shot down" 64
    (s1.Stats.tlb_shootdown_pages - s0.Stats.tlb_shootdown_pages);
  Kernel.munmap m ~addr:a ~pages:64;
  let s2 = Stats.snapshot m.Machine.stats in
  check_int "munmap adds one more op" 2 s2.Stats.tlb_shootdowns;
  check_int "and 64 more pages" 128 s2.Stats.tlb_shootdown_pages;
  (* The counters live directly in the machine's telemetry registry. *)
  let registry = Stats.registry m.Machine.stats in
  let live name =
    Telemetry.Metrics.counter_value (Telemetry.Metrics.counter registry name)
  in
  check_int "registry sees the ops" s2.Stats.tlb_shootdowns
    (live "vmm.tlb_shootdowns");
  check_int "registry sees the pages" s2.Stats.tlb_shootdown_pages
    (live "vmm.tlb_shootdown_pages")

let test_shootdown_traced_once () =
  let sink = Telemetry.Sink.create ~capacity:128 () in
  let m = Machine.create ~trace:sink () in
  let a = Kernel.mmap m ~pages:32 in
  Kernel.mprotect m ~addr:a ~pages:32 Perm.No_access;
  Kernel.munmap m ~addr:a ~pages:32;
  let flushes =
    List.filter_map
      (fun (e : Telemetry.Event.t) ->
        match e.Telemetry.Event.kind with
        | Telemetry.Event.Tlb_flush { pages } -> Some pages
        | _ -> None)
      (Telemetry.Sink.events sink)
  in
  check
    (Alcotest.list Alcotest.int)
    "one ranged event per bulk call, with page counts" [ 32; 32 ] flushes

let test_invalidate_range_narrow_and_wide () =
  let stats = Stats.create () in
  let narrow = Tlb.create ~entries:64 ~ways:4 () in
  (* 16 sets: a 4-page range takes the per-page path. *)
  for p = 100 to 115 do
    Tlb.insert narrow ~page:p ~frame:p ~perm:Perm.Read_write
  done;
  Tlb.invalidate_range narrow ~page:104 ~pages:4;
  for p = 100 to 115 do
    let hit = Tlb.lookup narrow stats ~page:p <> None in
    check_bool (Printf.sprintf "narrow page %d" p) (p < 104 || p >= 108) hit
  done;
  (* A range wider than the set count takes the sweep path. *)
  let wide = Tlb.create ~entries:64 ~ways:4 () in
  for p = 0 to 63 do
    Tlb.insert wide ~page:p ~frame:p ~perm:Perm.Read_write
  done;
  Tlb.invalidate_range wide ~page:8 ~pages:40;
  for p = 0 to 63 do
    let hit = Tlb.lookup wide stats ~page:p <> None in
    check_bool (Printf.sprintf "wide page %d" p) (p < 8 || p >= 48) hit
  done

(* ---- Differential suite: random access/mmap/mprotect/munmap sequences
   through a table-first oracle (the pre-TLB-first semantics: walk the
   model's page table for every byte, in address order) and the real
   TLB-first MMU, asserting identical values, faults and mapped-page
   counts. *)

module Model = struct
  type page = { mutable perm : Perm.t option; bytes : Bytes.t }

  type t = { base : Addr.t; pages : page array }

  let create base n =
    {
      base;
      pages =
        Array.init n (fun _ ->
            { perm = None; bytes = Bytes.make Addr.page_size '\000' });
    }

  let page_of t addr = (addr - t.base) / Addr.page_size
  let in_range t addr = addr >= t.base && addr < t.base + (Array.length t.pages * Addr.page_size)

  (* Table-first check of one byte: the oracle's page-table walk. *)
  let check_byte t addr access =
    if not (in_range t addr) then Some (Fault.Unmapped { addr; access })
    else
      match t.pages.(page_of t addr).perm with
      | None -> Some (Fault.Unmapped { addr; access })
      | Some perm ->
        if Perm.allows perm access then None
        else Some (Fault.Protection { addr; access; perm })

  (* Old-MMU semantics: a within-page access checks once at the access
     address; a page-crossing access checks byte by byte in address
     order and reports the first faulting byte. *)
  let check_access t addr width access =
    if Addr.offset addr + width <= Addr.page_size then check_byte t addr access
    else
      let rec go i =
        if i >= width then None
        else
          match check_byte t (addr + i) access with
          | Some f -> Some f
          | None -> go (i + 1)
      in
      go 0

  let read t addr width =
    let rec go i acc =
      if i >= width then acc
      else
        let a = addr + i in
        let b = Char.code (Bytes.get t.pages.(page_of t a).bytes (Addr.offset a)) in
        go (i + 1) (acc lor (b lsl (8 * i)))
    in
    go 0 0

  (* Mirror of the MMU's store: bytes before a faulting byte are written
     (both the old byte loop and the new slow path behave this way). *)
  let write t addr width v =
    let fault = check_access t addr width Perm.Write in
    let stop =
      match fault with Some f -> Fault.addr f - addr | None -> width
    in
    for i = 0 to stop - 1 do
      let a = addr + i in
      Bytes.set t.pages.(page_of t a).bytes (Addr.offset a)
        (Char.chr ((v lsr (8 * i)) land 0xff))
    done

  let mapped_count t =
    Array.fold_left
      (fun acc p -> if p.perm = None then acc else acc + 1)
      0 t.pages

  let all_mapped t lo n =
    let rec go i = i >= n || (t.pages.(lo + i).perm <> None && go (i + 1)) in
    go 0
end

let fault_eq a b =
  match a, b with
  | Fault.Unmapped { addr = a1; access = x1 }, Fault.Unmapped { addr = a2; access = x2 } ->
    a1 = a2 && x1 = x2
  | ( Fault.Protection { addr = a1; access = x1; perm = p1 },
      Fault.Protection { addr = a2; access = x2; perm = p2 } ) ->
    a1 = a2 && x1 = x2 && Perm.equal p1 p2
  | (Fault.Unmapped _ | Fault.Protection _), _ -> false

let pp_outcome = function
  | Ok v -> Printf.sprintf "Ok %d" v
  | Error f -> Fault.to_string f

(* One random differential run: [steps] operations over a [n_pages]
   arena, driven by a deterministic PRNG state. *)
let differential_run ~seed ~steps ~n_pages =
  let rng = Random.State.make [| seed |] in
  let m = Machine.create ~tlb_entries:16 () in
  let base = Kernel.mmap m ~pages:n_pages in
  let model = Model.create base n_pages in
  Array.iter (fun p -> p.Model.perm <- Some Perm.Read_write) model.Model.pages;
  let rand_range () =
    let lo = Random.State.int rng n_pages in
    let n = 1 + Random.State.int rng (n_pages - lo) in
    (lo, n)
  in
  let agree what expected actual =
    if
      (match expected, actual with
       | Ok v1, Ok v2 -> v1 = v2
       | Error f1, Error f2 -> fault_eq f1 f2
       | (Ok _ | Error _), _ -> false)
      = false
    then
      Alcotest.failf "seed %d, %s: oracle %s but mmu %s" seed what
        (pp_outcome expected) (pp_outcome actual)
  in
  for _step = 1 to steps do
    match Random.State.int rng 100 with
    | r when r < 70 ->
      (* Access: mostly within the arena, occasionally just outside. *)
      let width = List.nth [ 1; 2; 4; 8 ] (Random.State.int rng 4) in
      let addr =
        base
        + Random.State.int rng ((n_pages * Addr.page_size) - width + 1)
        + (if Random.State.int rng 20 = 0 then n_pages * Addr.page_size else 0)
      in
      if Random.State.bool rng then begin
        let expected =
          match Model.check_access model addr width Perm.Read with
          | Some f -> Error f
          | None -> Ok (Model.read model addr width)
        in
        let actual =
          match Mmu.load m addr ~width with
          | v -> Ok v
          | exception Fault.Trap f -> Error f
        in
        agree (Printf.sprintf "load %d @0x%x" width addr) expected actual
      end
      else begin
        let v = Random.State.full_int rng max_int in
        let expected =
          match Model.check_access model addr width Perm.Write with
          | Some f -> Error f
          | None -> Ok 0
        in
        let actual =
          match Mmu.store m addr ~width v with
          | () -> Ok 0
          | exception Fault.Trap f -> Error f
        in
        Model.write model addr width v;
        agree (Printf.sprintf "store %d @0x%x" width addr) expected actual
      end
    | r when r < 82 ->
      (* mprotect a random subrange; must fail atomically iff any page
         in it is unmapped. *)
      let lo, n = rand_range () in
      let perm =
        List.nth
          [ Perm.No_access; Perm.Read_only; Perm.Read_write ]
          (Random.State.int rng 3)
      in
      let addr = base + (lo * Addr.page_size) in
      let ok = Model.all_mapped model lo n in
      (match Kernel.mprotect m ~addr ~pages:n perm with
       | () ->
         if not ok then
           Alcotest.failf "seed %d: mprotect should have failed" seed;
         for i = lo to lo + n - 1 do
           model.Model.pages.(i).Model.perm <- Some perm
         done
       | exception Invalid_argument _ ->
         if ok then Alcotest.failf "seed %d: mprotect should have succeeded" seed)
    | r when r < 92 ->
      (* munmap a random subrange (same atomicity contract). *)
      let lo, n = rand_range () in
      let addr = base + (lo * Addr.page_size) in
      let ok = Model.all_mapped model lo n in
      (match Kernel.munmap m ~addr ~pages:n with
       | () ->
         if not ok then Alcotest.failf "seed %d: munmap should have failed" seed;
         for i = lo to lo + n - 1 do
           model.Model.pages.(i).Model.perm <- None
         done
       | exception Invalid_argument _ ->
         if ok then Alcotest.failf "seed %d: munmap should have succeeded" seed)
    | _ ->
      (* mmap_fixed: fresh zeroed RW frames, replacing whatever is there. *)
      let lo, n = rand_range () in
      Kernel.mmap_fixed m ~addr:(base + (lo * Addr.page_size)) ~pages:n;
      for i = lo to lo + n - 1 do
        let p = model.Model.pages.(i) in
        p.Model.perm <- Some Perm.Read_write;
        Bytes.fill p.Model.bytes 0 Addr.page_size '\000'
      done
  done;
  (* Mapped-page accounting must agree at the end of every run. *)
  check_int
    (Printf.sprintf "seed %d: mapped pages" seed)
    (Model.mapped_count model)
    (Page_table.mapped_pages m.Machine.page_table);
  (* Final sweep: every page's first word agrees (value or fault). *)
  for i = 0 to n_pages - 1 do
    let addr = base + (i * Addr.page_size) in
    let expected =
      match Model.check_access model addr 8 Perm.Read with
      | Some f -> Error f
      | None -> Ok (Model.read model addr 8)
    in
    let actual =
      match Mmu.load m addr ~width:8 with
      | v -> Ok v
      | exception Fault.Trap f -> Error f
    in
    agree (Printf.sprintf "final sweep page %d" i) expected actual
  done

let prop_differential =
  QCheck.Test.make ~name:"mmu: TLB-first = table-first oracle" ~count:60
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      differential_run ~seed ~steps:400 ~n_pages:24;
      true)

let test_differential_fixed_seeds () =
  (* A few long deterministic runs, heavier than the property batch. *)
  List.iter
    (fun seed -> differential_run ~seed ~steps:3_000 ~n_pages:48)
    [ 1; 7; 42; 1234 ]

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "vmm-fastpath"
    [
      ("pte", [ Alcotest.test_case "encoding" `Quick test_pte_roundtrip ]);
      ( "tlb-coherence",
        [
          Alcotest.test_case "remap after munmap" `Quick
            test_remap_after_munmap_sees_new_frame;
          Alcotest.test_case "mmap_fixed over live mapping" `Quick
            test_mmap_fixed_over_live_mapping_invalidates;
          Alcotest.test_case "alias at warm page" `Quick
            test_alias_at_over_warm_page;
          Alcotest.test_case "mprotect through warm TLB" `Quick
            test_mprotect_visible_through_warm_tlb;
        ] );
      ( "fast-path-structure",
        [
          Alcotest.test_case "TLB hit skips page table" `Quick
            test_tlb_hit_skips_page_table;
          Alcotest.test_case "TLB miss walks once" `Quick
            test_tlb_miss_walks_once;
          Alcotest.test_case "word widths" `Quick test_word_access_all_widths;
        ] );
      ( "shootdown",
        [
          Alcotest.test_case "ranged counting" `Quick
            test_ranged_shootdown_counting;
          Alcotest.test_case "one trace event per bulk call" `Quick
            test_shootdown_traced_once;
          Alcotest.test_case "invalidate_range narrow/wide" `Quick
            test_invalidate_range_narrow_and_wide;
        ] );
      ( "differential",
        Alcotest.test_case "fixed seeds" `Slow test_differential_fixed_seeds
        :: qcheck [ prop_differential ] );
    ]
