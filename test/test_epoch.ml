(* Quarantine-window semantics of the epoch-batched scheme: a dangling
   use inside the open epoch (software backstop), at the exact
   retirement boundary, and after retirement (both MMU) must all be
   detected, under the fatal policy and under the recoverable wrapper,
   with full diagnostics a fleet crash report can attribute.  Plus the
   building blocks: range coalescing, the slab alias cache, and the
   split-and-retry fallback when a coalesced mprotect fails. *)

open Vmm

let check_int = Alcotest.check Alcotest.int
let check_bool = Alcotest.check Alcotest.bool
let check_string = Alcotest.check Alcotest.string

let epoch_stats scheme =
  match Runtime.Schemes.introspect scheme with
  | Runtime.Schemes.Shadow_pool_epoch { epoch; _ } -> epoch ()
  | _ -> Alcotest.fail "epoch scheme does not introspect"

let drain scheme =
  match Runtime.Schemes.introspect scheme with
  | Runtime.Schemes.Shadow_pool_epoch { drain; _ } -> drain ()
  | _ -> Alcotest.fail "epoch scheme does not introspect"

let expect_violation name pred thunk =
  match thunk () with
  | _ -> Alcotest.failf "%s: no violation raised" name
  | exception Shadow.Report.Violation r ->
    Alcotest.check Alcotest.bool (name ^ ": report shape") true (pred r);
    r

let is_uaf access (r : Shadow.Report.t) =
  r.Shadow.Report.kind = Shadow.Report.Use_after_free access

(* ---- coalesce_ranges ---- *)

let test_coalesce () =
  let p = Addr.page_size in
  let c = Syscalls.coalesce_ranges in
  check_bool "empty" true (c [] = []);
  check_bool "singleton" true (c [ (0, 2) ] = [ (0, 2) ]);
  check_bool "adjacent runs fuse" true
    (c [ (0, 1); (p, 2) ] = [ (0, 3) ]);
  check_bool "order does not matter" true
    (c [ (p, 2); (0, 1) ] = [ (0, 3) ]);
  check_bool "overlap fuses without double-counting" true
    (c [ (0, 3); (p, 1) ] = [ (0, 3) ]);
  check_bool "gap keeps runs apart" true
    (c [ (0, 1); (3 * p, 1) ] = [ (0, 1); (3 * p, 1) ]);
  check_bool "zero-page ranges are dropped" true
    (c [ (0, 0); (p, 1) ] = [ (p, 1) ])

(* ---- slab cache ---- *)

let test_slab_cache () =
  let m = Machine.create () in
  let slab = Shadow.Slab.create ~copies:4 m in
  let src = Kernel.mmap m ~pages:1 in
  let take () =
    match Shadow.Slab.take slab ~src ~pages:1 with
    | Ok a -> a
    | Error _ -> Alcotest.fail "slab take failed"
  in
  let before = (Stats.snapshot m.Machine.stats).Stats.syscalls_mremap in
  let a0 = take () in
  check_int "first take is one vectored syscall" (before + 1)
    (Stats.snapshot m.Machine.stats).Stats.syscalls_mremap;
  check_int "three spares cached" 3 (Shadow.Slab.cached_aliases slab);
  let a1 = take () in
  check_int "second take is free" (before + 1)
    (Stats.snapshot m.Machine.stats).Stats.syscalls_mremap;
  check_bool "copies are contiguous" true (a1 = a0 + Addr.page_size);
  check_int "one hit" 1 (Shadow.Slab.hits slab);
  check_int "one miss" 1 (Shadow.Slab.misses slab);
  (* aliases really alias: a store through the canonical page is visible
     through both copies *)
  Mmu.store m src ~width:8 77;
  check_int "alias 0 sees canonical bytes" 77 (Mmu.load m a0 ~width:8);
  check_int "alias 1 sees canonical bytes" 77 (Mmu.load m a1 ~width:8);
  let released = Shadow.Slab.flush slab in
  check_int "flush releases the two remaining spares" 2 released;
  check_int "cache empty after flush" 0 (Shadow.Slab.cached_aliases slab)

(* ---- quarantine window, fatal policy ---- *)

let test_in_window_backstop () =
  let m = Machine.create () in
  let scheme = Runtime.Schemes.shadow_pool_epoch m in
  let p = scheme.Runtime.Scheme.malloc ~site:"q.c:1" 48 in
  scheme.Runtime.Scheme.store p ~width:8 42;
  let mprotects () = (Stats.snapshot m.Machine.stats).Stats.syscalls_mprotect in
  let before = mprotects () in
  scheme.Runtime.Scheme.free ~site:"q.c:2" p;
  check_int "free issued no protection syscall" before (mprotects ());
  let r =
    expect_violation "in-window read" (is_uaf Perm.Read) (fun () ->
        scheme.Runtime.Scheme.load p ~width:8)
  in
  (match r.Shadow.Report.object_info with
   | Some info ->
     check_string "alloc site survives" "q.c:1" info.Shadow.Report.alloc_site;
     check_bool "free site survives" true
       (info.Shadow.Report.free_site = Some "q.c:2");
     check_int "offset is within the object" 0 info.Shadow.Report.offset
   | None -> Alcotest.fail "backstop report carries no object info");
  let es = epoch_stats scheme in
  check_int "caught by the backstop" 1 es.Runtime.Schemes.backstop_hits;
  check_int "nothing retired yet" 0 es.Runtime.Schemes.epochs_retired;
  (* a write is a violation too *)
  ignore
    (expect_violation "in-window write" (is_uaf Perm.Write) (fun () ->
         scheme.Runtime.Scheme.store (p + 8) ~width:8 1))

let test_in_window_double_free () =
  let m = Machine.create () in
  let scheme = Runtime.Schemes.shadow_pool_epoch m in
  let p = scheme.Runtime.Scheme.malloc ~site:"q.c:1" 48 in
  scheme.Runtime.Scheme.free ~site:"q.c:2" p;
  ignore
    (expect_violation "double free in window"
       (fun r -> r.Shadow.Report.kind = Shadow.Report.Double_free)
       (fun () -> scheme.Runtime.Scheme.free ~site:"q.c:3" p))

let test_at_retirement_mmu () =
  let m = Machine.create () in
  let scheme = Runtime.Schemes.shadow_pool_epoch
      ~config:{ Runtime.Schemes.default_epoch_config with max_frees = 2 } m in
  let p = scheme.Runtime.Scheme.malloc ~site:"q.c:1" 48 in
  let q = scheme.Runtime.Scheme.malloc ~site:"q.c:1" 48 in
  scheme.Runtime.Scheme.free ~site:"q.c:2" p;
  scheme.Runtime.Scheme.free ~site:"q.c:2" q;
  (* the second free filled the epoch and retired it synchronously *)
  let es = epoch_stats scheme in
  check_int "one retirement" 1 es.Runtime.Schemes.epochs_retired;
  check_int "both frees retired" 2 es.Runtime.Schemes.epoch_retired_frees;
  check_int "nothing left pending" 0 es.Runtime.Schemes.epoch_pending_frees;
  ignore
    (expect_violation "use at the retirement boundary" (is_uaf Perm.Read)
       (fun () -> scheme.Runtime.Scheme.load q ~width:8));
  let es = epoch_stats scheme in
  check_int "MMU trapped it, not the backstop" 0
    es.Runtime.Schemes.backstop_hits

let test_post_retirement_mmu () =
  let m = Machine.create () in
  let scheme = Runtime.Schemes.shadow_pool_epoch m in
  let p = scheme.Runtime.Scheme.malloc ~site:"q.c:1" 48 in
  scheme.Runtime.Scheme.free ~site:"q.c:2" p;
  drain scheme;
  let r =
    expect_violation "use after drain" (is_uaf Perm.Read) (fun () ->
        scheme.Runtime.Scheme.load p ~width:8)
  in
  (match r.Shadow.Report.object_info with
   | Some info ->
     check_string "diagnostics identical to the eager scheme" "q.c:1"
       info.Shadow.Report.alloc_site
   | None -> Alcotest.fail "post-retirement report carries no object info");
  check_int "backstop never fired" 0 (epoch_stats scheme).Runtime.Schemes.backstop_hits

(* Coalescing actually batches: adjacent slab copies freed together must
   retire with a single ranged protect. *)
let test_retirement_coalesces () =
  let m = Machine.create () in
  let scheme = Runtime.Schemes.shadow_pool_epoch
      ~config:{ Runtime.Schemes.default_epoch_config with max_frees = 8 } m in
  let ptrs =
    List.init 8 (fun i ->
        let a = scheme.Runtime.Scheme.malloc ~site:"q.c:1" 48 in
        scheme.Runtime.Scheme.store a ~width:8 i;
        a)
  in
  let before = (Stats.snapshot m.Machine.stats).Stats.syscalls_mprotect in
  List.iter (fun a -> scheme.Runtime.Scheme.free ~site:"q.c:2" a) ptrs;
  let issued =
    (Stats.snapshot m.Machine.stats).Stats.syscalls_mprotect - before
  in
  let es = epoch_stats scheme in
  check_int "one retirement" 1 es.Runtime.Schemes.epochs_retired;
  check_bool "8 frees coalesced into at most 2 protects" true (issued <= 2);
  check_int "protect calls match the syscall count" issued
    es.Runtime.Schemes.coalesced_protects

(* ---- recoverable policy over the quarantine window ---- *)

let make_recoverable ?max_frees () =
  let m = Machine.create () in
  let reports = ref [] in
  let config =
    match max_frees with
    | None -> Runtime.Schemes.default_epoch_config
    | Some max_frees -> { Runtime.Schemes.default_epoch_config with max_frees }
  in
  let scheme =
    Runtime.Schemes.recoverable
      ~on_report:(fun r -> reports := r :: !reports)
      (Runtime.Schemes.shadow_pool_epoch ~config m)
  in
  (scheme, reports)

let test_recoverable_in_window () =
  let scheme, reports = make_recoverable () in
  let p = scheme.Runtime.Scheme.malloc ~site:"q.c:1" 48 in
  scheme.Runtime.Scheme.store p ~width:8 42;
  scheme.Runtime.Scheme.free ~site:"q.c:2" p;
  (* the backstop re-raises on the retried access (the page was never
     protected, so there is nothing to lift), so the recovered load
     yields 0 rather than the stale bytes — but the workload continues
     and the report is delivered exactly once *)
  check_int "recovered in-window load yields 0" 0
    (scheme.Runtime.Scheme.load p ~width:8);
  check_int "one report" 1 (List.length !reports);
  let q = scheme.Runtime.Scheme.malloc ~site:"q.c:3" 32 in
  scheme.Runtime.Scheme.store q ~width:8 7;
  check_int "scheme still serves allocations" 7
    (scheme.Runtime.Scheme.load q ~width:8)

let test_recoverable_post_retirement () =
  let scheme, reports = make_recoverable ~max_frees:1 () in
  let p = scheme.Runtime.Scheme.malloc ~site:"q.c:1" 48 in
  scheme.Runtime.Scheme.store p ~width:8 42;
  scheme.Runtime.Scheme.free ~site:"q.c:2" p;
  (* max_frees = 1: the free retired immediately, so this is the eager
     scheme's recovery path — protection lifted, stale bytes readable *)
  check_int "stale value readable after recovery" 42
    (scheme.Runtime.Scheme.load p ~width:8);
  check_int "one report" 1 (List.length !reports)

(* Fleet attribution: a backstop report must carry everything the crash
   pipeline needs — same signature inputs as a post-retirement trap. *)
let test_fleet_attribution () =
  let scheme, reports = make_recoverable () in
  let p = scheme.Runtime.Scheme.malloc ~site:"srv.c:10" 48 in
  scheme.Runtime.Scheme.free ~site:"srv.c:20" p;
  ignore (scheme.Runtime.Scheme.load p ~width:8);
  match !reports with
  | [ r ] ->
    let c = Fleet.Crash.of_violation ~scheme:"epoch" ~shard:3 ~at_cycles:77 r in
    check_string "kind label" "use-after-free (read)" c.Fleet.Crash.kind;
    check_string "alloc site" "srv.c:10" c.Fleet.Crash.alloc_site;
    check_string "free site" "srv.c:20" c.Fleet.Crash.free_site;
    check_bool "object size carried" true (c.Fleet.Crash.object_size = Some 48);
    (* the in-window report signs identically to the post-retirement
       report for the same bug: the window is invisible to dedup *)
    let scheme2, reports2 = make_recoverable ~max_frees:1 () in
    let p2 = scheme2.Runtime.Scheme.malloc ~site:"srv.c:10" 48 in
    scheme2.Runtime.Scheme.free ~site:"srv.c:20" p2;
    ignore (scheme2.Runtime.Scheme.load p2 ~width:8);
    (match !reports2 with
     | [ r2 ] ->
       let c2 =
         Fleet.Crash.of_violation ~scheme:"epoch" ~shard:5 ~at_cycles:99 r2
       in
       check_bool "same signature either side of retirement" true
         (Fleet.Crash.signature c = Fleet.Crash.signature c2)
     | _ -> Alcotest.fail "expected one post-retirement report")
  | _ -> Alcotest.fail "expected exactly one report"

(* ---- split-and-retry on a failed coalesced protect ---- *)

(* One fatal mprotect: the batched call fails, the split fallback
   protects each object individually, nothing stays unprotected. *)
let test_split_retry_recovers () =
  let plan =
    Fault_plan.create
      [
        {
          Fault_plan.calls = [ Fault_plan.Mprotect ];
          trigger = Fault_plan.Nth_call 1;
          error = Fault_plan.Fatal Fault_plan.Eacces;
        };
      ]
  in
  let m = Machine.create ~fault_plan:plan () in
  let scheme = Runtime.Schemes.shadow_pool_epoch
      ~config:{ Runtime.Schemes.default_epoch_config with max_frees = 2 } m in
  let p = scheme.Runtime.Scheme.malloc ~site:"q.c:1" 48 in
  let q = scheme.Runtime.Scheme.malloc ~site:"q.c:1" 48 in
  scheme.Runtime.Scheme.free ~site:"q.c:2" p;
  scheme.Runtime.Scheme.free ~site:"q.c:2" q;
  let es = epoch_stats scheme in
  check_bool "split fallback engaged" true
    (es.Runtime.Schemes.epoch_split_retries > 0);
  check_int "every object protected in the end" 0
    es.Runtime.Schemes.epoch_failed_protects;
  check_int "both frees retired" 2 es.Runtime.Schemes.epoch_retired_frees;
  ignore
    (expect_violation "protection held despite the fault" (is_uaf Perm.Read)
       (fun () -> scheme.Runtime.Scheme.load p ~width:8))

(* Persistent mprotect failure: even the split calls fail.  The objects
   must stay quarantined — still pending, still caught by the backstop —
   rather than being silently released unprotected. *)
let test_split_retry_keeps_quarantine () =
  let plan =
    Fault_plan.create
      [
        {
          Fault_plan.calls = [ Fault_plan.Mprotect ];
          trigger = Fault_plan.Burst { first = 1; length = 1_000 };
          error = Fault_plan.Fatal Fault_plan.Eacces;
        };
      ]
  in
  let m = Machine.create ~fault_plan:plan () in
  let scheme = Runtime.Schemes.shadow_pool_epoch
      ~config:{ Runtime.Schemes.default_epoch_config with max_frees = 2 } m in
  let p = scheme.Runtime.Scheme.malloc ~site:"q.c:1" 48 in
  let q = scheme.Runtime.Scheme.malloc ~site:"q.c:1" 48 in
  scheme.Runtime.Scheme.free ~site:"q.c:2" p;
  scheme.Runtime.Scheme.free ~site:"q.c:2" q;
  let es = epoch_stats scheme in
  check_bool "failures recorded" true
    (es.Runtime.Schemes.epoch_failed_protects > 0);
  check_int "nothing released unprotected" 0
    es.Runtime.Schemes.epoch_retired_frees;
  check_int "objects remain pending" 2 es.Runtime.Schemes.epoch_pending_frees;
  (* detection survives the total syscall outage via the backstop *)
  ignore
    (expect_violation "backstop still guards the quarantine"
       (is_uaf Perm.Read) (fun () -> scheme.Runtime.Scheme.load p ~width:8));
  let es = epoch_stats scheme in
  check_int "backstop hit" 1 es.Runtime.Schemes.backstop_hits

(* ---- pool destroy with an open epoch ---- *)

let test_destroy_retires_epoch () =
  let m = Machine.create () in
  let scheme = Runtime.Schemes.shadow_pool_epoch m in
  let h = scheme.Runtime.Scheme.pool_create () in
  let p = h.Runtime.Scheme.pool_alloc ~site:"q.c:1" 48 in
  h.Runtime.Scheme.pool_free ~site:"q.c:2" p;
  h.Runtime.Scheme.pool_destroy ();
  (* destroy retires the open epoch, so the in-window freed page is
     PROT_NONE afterwards exactly as under the eager scheme; with the
     registry record released by destroy the trap classifies as a wild
     access — the eager scheme's post-destroy answer, byte for byte *)
  ignore
    (expect_violation "use after pool destroy"
       (fun r ->
         match r.Shadow.Report.kind with
         | Shadow.Report.Wild_access _ | Shadow.Report.Use_after_free _ -> true
         | _ -> false)
       (fun () -> scheme.Runtime.Scheme.load p ~width:8))

let () =
  Alcotest.run "epoch"
    [
      ( "coalesce",
        [ Alcotest.test_case "range merging" `Quick test_coalesce ] );
      ( "slab",
        [ Alcotest.test_case "alias cache" `Quick test_slab_cache ] );
      ( "quarantine",
        [
          Alcotest.test_case "in-window backstop" `Quick test_in_window_backstop;
          Alcotest.test_case "in-window double free" `Quick
            test_in_window_double_free;
          Alcotest.test_case "at retirement" `Quick test_at_retirement_mmu;
          Alcotest.test_case "post retirement" `Quick test_post_retirement_mmu;
          Alcotest.test_case "retirement coalesces" `Quick
            test_retirement_coalesces;
          Alcotest.test_case "destroy retires epoch" `Quick
            test_destroy_retires_epoch;
        ] );
      ( "recoverable",
        [
          Alcotest.test_case "in-window" `Quick test_recoverable_in_window;
          Alcotest.test_case "post-retirement" `Quick
            test_recoverable_post_retirement;
          Alcotest.test_case "fleet attribution" `Quick test_fleet_attribution;
        ] );
      ( "split-retry",
        [
          Alcotest.test_case "recovers per object" `Quick
            test_split_retry_recovers;
          Alcotest.test_case "keeps quarantine on failure" `Quick
            test_split_retry_keeps_quarantine;
        ] );
    ]
