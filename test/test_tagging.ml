(* The pointer-tagging backend: generation bumps on free, tag-width
   wraparound accounting, interior-pointer tag handling, the tagged
   scheme end to end (including under the recoverable wrapper), the
   backend-stepping governor ladder, and the spec catalogue round-trips
   that tie the whole scheme vocabulary together. *)

open Vmm

let check_int = Alcotest.check Alcotest.int
let check_bool = Alcotest.check Alcotest.bool
let check_string = Alcotest.check Alcotest.string

let expect_violation name pred thunk =
  match thunk () with
  | _ -> Alcotest.failf "%s: no violation raised" name
  | exception Shadow.Report.Violation r ->
    Alcotest.check Alcotest.bool (name ^ ": report shape") true (pred r);
    r

let is_tag_mismatch access (r : Shadow.Report.t) =
  r.Shadow.Report.kind = Shadow.Report.Tag_mismatch access

module T = Tagging.Tag_table

(* ---- generation bump on free ---- *)

let test_generation_bump () =
  let m = Machine.create () in
  let t = T.create m in
  let base = Kernel.mmap m ~pages:4 in
  let p = T.register t ~base ~size:32 ~site:"a.c:1" in
  check_bool "pointer is tagged above the address bits" true
    (p <> T.untag p || T.tag_of p = 0);
  check_int "untag recovers the base" base (T.untag p);
  check_int "one live chunk" 1 (T.live_chunks t);
  (* a valid access consults the table and passes *)
  (match T.check_access t p ~access:Perm.Read with
  | Some raw -> check_int "check returns the untagged address" base raw
  | None -> Alcotest.fail "registered granule reported untracked");
  let raw = T.free t p ~site:"a.c:2" in
  check_int "free returns the untagged base" base raw;
  check_int "no live chunks after free" 0 (T.live_chunks t);
  (* the generation bumped, so the stale pointer's tag mismatches *)
  let r =
    expect_violation "stale load" (is_tag_mismatch Perm.Read) (fun () ->
        T.check_access t p ~access:Perm.Read)
  in
  (match r.Shadow.Report.object_info with
  | Some info ->
    check_string "alloc site survives" "a.c:1" info.Shadow.Report.alloc_site;
    check_bool "free site survives" true
      (info.Shadow.Report.free_site = Some "a.c:2")
  | None -> Alcotest.fail "tag fault carries no object info");
  let _ =
    expect_violation "stale store" (is_tag_mismatch Perm.Write) (fun () ->
        T.check_access t p ~access:Perm.Write)
  in
  (* double free of the stale pointer *)
  let _ =
    expect_violation "double free"
      (fun r -> r.Shadow.Report.kind = Shadow.Report.Double_free)
      (fun () -> T.free t p ~site:"a.c:3")
  in
  let s = T.stats t in
  check_bool "tag faults counted" true (s.T.tag_faults >= 2);
  check_bool "checks counted" true (s.T.tag_checks >= 4);
  check_int "no wraps at 8-bit tags" 0 s.T.generation_wraps;
  check_bool "table overhead modeled" true (s.T.table_bytes > 0)

(* ---- interior pointers ---- *)

let test_interior_pointers () =
  let m = Machine.create () in
  let t = T.create m in
  let base = Kernel.mmap m ~pages:1 in
  let p = T.register t ~base ~size:64 ~site:"b.c:1" in
  (* interior access in a later granule carries the same tag *)
  let interior = p + 48 in
  check_int "interior untag" (base + 48) (T.untag interior);
  check_int "interior tag equals base tag" (T.tag_of p) (T.tag_of interior);
  (match T.check_access t interior ~access:Perm.Write with
  | Some raw -> check_int "interior check translates" (base + 48) raw
  | None -> Alcotest.fail "interior granule reported untracked");
  (* freeing through an interior pointer is an invalid free *)
  let _ =
    expect_violation "interior free"
      (fun r -> r.Shadow.Report.kind = Shadow.Report.Invalid_free)
      (fun () -> T.free t interior ~site:"b.c:2")
  in
  (* after the real free, the stale interior pointer faults too *)
  let _ = T.free t p ~site:"b.c:3" in
  let r =
    expect_violation "stale interior load" (is_tag_mismatch Perm.Read)
      (fun () -> T.check_access t interior ~access:Perm.Read)
  in
  (match r.Shadow.Report.object_info with
  | Some info -> check_int "offset diagnosed" 48 info.Shadow.Report.offset
  | None -> Alcotest.fail "no object info on interior fault");
  (* an address that was never registered falls through untracked *)
  check_bool "unregistered address is untracked" true
    (T.check_access t (base + (8 * Addr.page_size)) ~access:Perm.Read = None)

(* ---- wraparound accounting ---- *)

let test_wraparound () =
  let m = Machine.create () in
  let t = T.create ~tag_bits:2 m in
  let base = Kernel.mmap m ~pages:1 in
  (* Cycle one granule through 2^2 generations: 4 frees bring the
     generation back to 0 mod 4, crossing exactly one wrap boundary. *)
  let p0 = T.register t ~base ~size:16 ~site:"w.c:1" in
  let stale_mid = ref 0 in
  for i = 1 to 4 do
    let p =
      if i = 1 then p0 else T.register t ~base ~size:16 ~site:"w.c:1"
    in
    if i = 2 then stale_mid := p;
    ignore (T.free t p ~site:"w.c:2")
  done;
  let p4 = T.register t ~base ~size:16 ~site:"w.c:3" in
  check_int "one generation wrap recorded" 1 (T.stats t).T.generation_wraps;
  check_bool "wide generations differ" true (T.tag_of p0 <> T.tag_of p4);
  (* p0 is 4 generations stale: masked tags collide, so the access
     passes exactly as it would on hardware — but is attributed. *)
  (match T.check_access t p0 ~access:Perm.Read with
  | Some _ -> ()
  | None -> Alcotest.fail "wrapped access should pass the masked check");
  check_int "wrap pass attributed" 1 (T.stats t).T.wrap_masked_passes;
  (* a 2-generations-stale pointer still faults: distance not 0 mod 4 *)
  let _ =
    expect_violation "non-multiple distance still faults"
      (is_tag_mismatch Perm.Read)
      (fun () -> T.check_access t !stale_mid ~access:Perm.Read)
  in
  check_int "no further wrap passes" 1 (T.stats t).T.wrap_masked_passes

(* ---- the tagged scheme end to end ---- *)

let test_tagged_scheme () =
  let m = Machine.create () in
  let s = Runtime.Schemes.tagged m in
  check_string "scheme name" "tagged" s.Runtime.Scheme.name;
  check_bool "guarantees detection" true s.Runtime.Scheme.guarantees_detection;
  let p = s.Runtime.Scheme.malloc ~site:"t.c:1" 48 in
  s.Runtime.Scheme.store p ~width:8 42;
  check_int "load after store" 42 (s.Runtime.Scheme.load p ~width:8);
  check_int "interior load" 0 (s.Runtime.Scheme.load (p + 16) ~width:8);
  let va_before = Machine.va_bytes_used m in
  s.Runtime.Scheme.free ~site:"t.c:2" p;
  let _ =
    expect_violation "UAF load" (is_tag_mismatch Perm.Read) (fun () ->
        s.Runtime.Scheme.load p ~width:8)
  in
  let _ =
    expect_violation "double free"
      (fun r -> r.Shadow.Report.kind = Shadow.Report.Double_free)
      (fun () -> s.Runtime.Scheme.free ~site:"t.c:3" p)
  in
  (* instant VA reuse: the next allocation re-tags the same block
     rather than consuming fresh address space *)
  let q = s.Runtime.Scheme.malloc ~site:"t.c:4" 48 in
  check_int "no new VA burned on realloc" va_before (Machine.va_bytes_used m);
  check_int "recycled block serves fresh data" 0
    (s.Runtime.Scheme.load q ~width:8);
  (* ... and the old pointer still faults after the reuse *)
  let _ =
    expect_violation "UAF after reuse" (is_tag_mismatch Perm.Read) (fun () ->
        s.Runtime.Scheme.load p ~width:8)
  in
  check_bool "modeled table overhead reported" true
    (s.Runtime.Scheme.extra_memory_bytes () > 0);
  (* pools: destroy retires live chunks, so pool-dangling uses fault *)
  let h = s.Runtime.Scheme.pool_create () in
  let a = h.Runtime.Scheme.pool_alloc ~site:"t.c:5" 32 in
  s.Runtime.Scheme.store a ~width:8 7;
  h.Runtime.Scheme.pool_destroy ();
  let r =
    expect_violation "use after pool destroy" (is_tag_mismatch Perm.Read)
      (fun () -> s.Runtime.Scheme.load a ~width:8)
  in
  (match r.Shadow.Report.object_info with
  | Some info ->
    check_bool "destroy stamped as the free site" true
      (info.Shadow.Report.free_site = Some "<pool-destroy>")
  | None -> Alcotest.fail "pool fault carries no object info");
  match Runtime.Schemes.introspect s with
  | Runtime.Schemes.Tagged { table; _ } ->
    let st = T.stats table in
    check_bool "scheme checks flowed through the table" true
      (st.T.tag_checks > 0)
  | _ -> Alcotest.fail "tagged scheme does not introspect"

(* ---- recoverable wrapper interop ---- *)

let test_recoverable_interop () =
  let m = Machine.create () in
  let reports = ref [] in
  let s =
    Runtime.Schemes.recoverable
      ~on_report:(fun r -> reports := r :: !reports)
      (Runtime.Schemes.tagged m)
  in
  let p = s.Runtime.Scheme.malloc ~site:"r.c:1" 32 in
  s.Runtime.Scheme.store p ~width:8 9;
  s.Runtime.Scheme.free ~site:"r.c:2" p;
  (* recovered UAF load yields 0, delivers one report, and the scheme
     keeps serving *)
  check_int "recovered load yields 0" 0 (s.Runtime.Scheme.load p ~width:8);
  check_int "one report" 1 (List.length !reports);
  (match !reports with
  | [ r ] ->
    check_bool "report is a tag mismatch" true
      (r.Shadow.Report.kind = Shadow.Report.Tag_mismatch Perm.Read)
  | _ -> Alcotest.fail "expected exactly one report");
  let q = s.Runtime.Scheme.malloc ~site:"r.c:3" 32 in
  s.Runtime.Scheme.store q ~width:8 5;
  check_int "scheme still serves allocations" 5
    (s.Runtime.Scheme.load q ~width:8)

(* ---- report kind labels round-trip ---- *)

let test_kind_round_trip () =
  check_int "all_kinds covers the catalogue" 10
    (List.length Shadow.Report.all_kinds);
  List.iter
    (fun kind ->
      let label = Shadow.Report.kind_label kind in
      match Shadow.Report.kind_of_label label with
      | Some k ->
        check_bool (Printf.sprintf "round-trip %s" label) true (k = kind)
      | None -> Alcotest.failf "kind label %s does not parse back" label)
    Shadow.Report.all_kinds;
  check_bool "unknown label rejected" true
    (Shadow.Report.kind_of_label "no-such-kind" = None)

(* ---- the spec catalogue round-trips and builds ---- *)

let test_spec_round_trip () =
  Baseline.Register.install ();
  let module Spec = Runtime.Scheme_spec in
  List.iter
    (fun spec ->
      let name = Spec.to_string spec in
      (match Spec.of_string name with
      | Some back ->
        check_bool (Printf.sprintf "of_string (to_string %s)" name) true
          (back = spec)
      | None -> Alcotest.failf "spec %s does not parse back" name);
      check_bool (name ^ " has a label") true (Spec.label spec <> "");
      check_bool (name ^ " has a description") true
        (Spec.description spec <> "");
      (* every catalogue entry constructs a working scheme *)
      let s = Spec.build spec (Machine.create ()) in
      let p = s.Runtime.Scheme.malloc ~site:"s.c:1" 32 in
      s.Runtime.Scheme.store p ~width:8 3;
      check_int
        (name ^ " serves a live load")
        3
        (s.Runtime.Scheme.load p ~width:8);
      s.Runtime.Scheme.free ~site:"s.c:2" p)
    Spec.all;
  check_int "names () matches the catalogue"
    (List.length Spec.all)
    (List.length (Spec.names ()));
  check_bool "unknown name rejected" true (Spec.of_string "no-such" = None);
  check_bool "recover wrapper parses recursively" true
    (Spec.of_string "tagged+recover"
    = Some (Spec.Recover (Spec.Tagged Runtime.Schemes.default_tagged_config)))

(* ---- the backend-stepping governor ladder ---- *)

let gov_config =
  {
    Runtime.Governor.default_config with
    Runtime.Governor.failure_threshold = 2;
    window = 4;
    recover_after = 2;
    probe_every = 4;
    cooldown = 2;
    ladder = Runtime.Governor.backend_ladder;
  }

let test_governor_backend_ladder () =
  let m = Machine.create () in
  let g = Runtime.Governor.create ~config:gov_config m in
  check_bool "starts on shadow" true (Runtime.Governor.backend g = `Shadow);
  check_bool "ladder resolved as configured" true
    (Runtime.Governor.ladder g = Runtime.Governor.backend_ladder);
  (* a failure burst steps down one rung: shadow -> tagged *)
  Runtime.Governor.on_alloc g;
  Runtime.Governor.record_failure g ~reason:"enomem";
  Runtime.Governor.record_failure g ~reason:"enomem";
  check_bool "stepped to the tagged backend" true
    (Runtime.Governor.backend g = `Tagged);
  check_bool "tagged rung is passive" true
    (Runtime.Governor.is_passive (Runtime.Governor.mode g));
  check_bool "tagged rung does not shadow-protect" false
    (Runtime.Governor.should_protect g);
  (* passive rungs recover by probe, not by success streaks *)
  for _ = 1 to 8 do
    Runtime.Governor.on_alloc g
  done;
  check_bool "probe stepped back up to shadow" true
    (Runtime.Governor.backend g = `Shadow);
  (* a second burst steps down again; a third reaches raw passthrough *)
  Runtime.Governor.record_failure g ~reason:"enomem";
  Runtime.Governor.record_failure g ~reason:"enomem";
  check_bool "back on tagged" true (Runtime.Governor.backend g = `Tagged);
  let degraded = Runtime.Governor.degraded_windows g in
  check_bool "tagged intervals count as degraded windows" true
    (List.length degraded >= 2)

(* ---- the governed backend ladder end to end ---- *)

let test_governed_backend_ladder () =
  let m = Machine.create () in
  let gov = Runtime.Governed.backend_ladder ~config:gov_config m in
  let s = Runtime.Governed.scheme gov in
  check_bool "exposes its tag table" true
    (Runtime.Governed.tag_table gov <> None);
  (* healthy: shadow backend detects by MMU trap *)
  let p = s.Runtime.Scheme.malloc ~site:"g.c:1" 32 in
  s.Runtime.Scheme.store p ~width:8 1;
  s.Runtime.Scheme.free ~site:"g.c:2" p;
  (match s.Runtime.Scheme.load p ~width:8 with
  | _ -> Alcotest.fail "shadow rung missed a UAF"
  | exception Shadow.Report.Violation _ -> ());
  (* force the ladder onto the tagged rung and exercise detection there *)
  Runtime.Governor.record_failure (Runtime.Governed.governor gov)
    ~reason:"enomem";
  Runtime.Governor.record_failure (Runtime.Governed.governor gov)
    ~reason:"enomem";
  check_bool "ladder now on tagged" true
    (Runtime.Governor.backend (Runtime.Governed.governor gov) = `Tagged);
  let q = s.Runtime.Scheme.malloc ~site:"g.c:3" 32 in
  s.Runtime.Scheme.store q ~width:8 2;
  check_int "tagged rung serves loads" 2 (s.Runtime.Scheme.load q ~width:8);
  s.Runtime.Scheme.free ~site:"g.c:4" q;
  let _ =
    expect_violation "tagged rung detects UAF" (is_tag_mismatch Perm.Read)
      (fun () -> s.Runtime.Scheme.load q ~width:8)
  in
  (* tagged-rung allocations are still guarded: not in the
     ever-unprotected record *)
  check_bool "tagged alloc was never unprotected" false
    (Runtime.Governed.was_unprotected gov q)

let () =
  Alcotest.run "tagging"
    [
      ( "tag-table",
        [
          Alcotest.test_case "generation bump on free" `Quick
            test_generation_bump;
          Alcotest.test_case "interior pointers" `Quick test_interior_pointers;
          Alcotest.test_case "wraparound accounting" `Quick test_wraparound;
        ] );
      ( "scheme",
        [
          Alcotest.test_case "tagged scheme end to end" `Quick
            test_tagged_scheme;
          Alcotest.test_case "recoverable interop" `Quick
            test_recoverable_interop;
        ] );
      ( "catalogue",
        [
          Alcotest.test_case "report kinds round-trip" `Quick
            test_kind_round_trip;
          Alcotest.test_case "spec round-trips and builds" `Quick
            test_spec_round_trip;
        ] );
      ( "ladder",
        [
          Alcotest.test_case "governor steps backends" `Quick
            test_governor_backend_ladder;
          Alcotest.test_case "governed backend ladder" `Quick
            test_governed_backend_ladder;
        ] );
    ]
