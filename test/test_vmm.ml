(* Unit and property tests for the virtual-memory substrate: address
   arithmetic, permissions, physical frames, page tables, the TLB model,
   the MMU access path, and the kernel's syscall layer. *)

open Vmm

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

(* ---- Addr ---- *)

let test_addr_arithmetic () =
  check_int "page size" 4096 Addr.page_size;
  check_int "page index of 0" 0 (Addr.page_index 0);
  check_int "page index of 4095" 0 (Addr.page_index 4095);
  check_int "page index of 4096" 1 (Addr.page_index 4096);
  check_int "page base" 8192 (Addr.page_base 8195);
  check_int "offset" 3 (Addr.offset 8195);
  check_int "of_page" 12288 (Addr.of_page 3);
  check_bool "aligned" true (Addr.is_page_aligned 8192);
  check_bool "unaligned" false (Addr.is_page_aligned 8193);
  check_int "align_up exact" 4096 (Addr.align_up 4096);
  check_int "align_up" 8192 (Addr.align_up 4097)

let test_pages_spanning () =
  check_int "within one page" 1 (Addr.pages_spanning 100 100);
  check_int "exactly one page" 1 (Addr.pages_spanning 0 4096);
  check_int "crossing boundary" 2 (Addr.pages_spanning 4000 200);
  check_int "two full pages" 2 (Addr.pages_spanning 0 8192);
  check_int "three pages" 3 (Addr.pages_spanning 4095 4098)

let prop_page_roundtrip =
  QCheck.Test.make ~name:"addr: page_base + offset = id"
    QCheck.(int_bound 1_000_000_000)
    (fun a -> Addr.page_base a + Addr.offset a = a)

let prop_pages_spanning_positive =
  QCheck.Test.make ~name:"addr: pages_spanning covers the range"
    QCheck.(pair (int_bound 1_000_000) (int_range 1 20_000))
    (fun (a, size) ->
      let pages = Addr.pages_spanning a size in
      let first = Addr.page_index a in
      let last = Addr.page_index (a + size - 1) in
      pages = last - first + 1 && pages >= 1)

(* ---- Perm ---- *)

let test_perm_allows () =
  check_bool "none/read" false (Perm.allows Perm.No_access Perm.Read);
  check_bool "none/write" false (Perm.allows Perm.No_access Perm.Write);
  check_bool "ro/read" true (Perm.allows Perm.Read_only Perm.Read);
  check_bool "ro/write" false (Perm.allows Perm.Read_only Perm.Write);
  check_bool "rw/read" true (Perm.allows Perm.Read_write Perm.Read);
  check_bool "rw/write" true (Perm.allows Perm.Read_write Perm.Write)

(* ---- Frame table ---- *)

let test_frame_refcounting () =
  let ft = Frame_table.create () in
  let stats = Stats.create () in
  let f = Frame_table.allocate ft stats in
  check_int "fresh refcount" 0 (Frame_table.ref_count ft f);
  Frame_table.incr_ref ft f;
  Frame_table.incr_ref ft f;
  check_int "two refs" 2 (Frame_table.ref_count ft f);
  Frame_table.decr_ref ft f;
  check_bool "still live" true (Frame_table.exists ft f);
  Frame_table.decr_ref ft f;
  check_bool "reclaimed at zero" false (Frame_table.exists ft f)

let test_frame_bytes () =
  let ft = Frame_table.create () in
  let stats = Stats.create () in
  let f = Frame_table.allocate ft stats in
  Frame_table.incr_ref ft f;
  Frame_table.write_byte ft f 17 0xAB;
  check_int "read back" 0xAB (Frame_table.read_byte ft f 17);
  check_int "zero initialised" 0 (Frame_table.read_byte ft f 18)

let test_frame_peak () =
  let ft = Frame_table.create () in
  let stats = Stats.create () in
  let fs = List.init 5 (fun _ -> Frame_table.allocate ft stats) in
  List.iter (Frame_table.incr_ref ft) fs;
  check_int "live" 5 (Frame_table.live_frames ft);
  List.iter (Frame_table.decr_ref ft) fs;
  check_int "live after free" 0 (Frame_table.live_frames ft);
  check_int "peak retained" 5 (Frame_table.peak_frames ft)

(* ---- Page table ---- *)

let test_page_table () =
  let pt = Page_table.create () in
  let stats = Stats.create () in
  Page_table.map pt stats ~page:7 ~frame:3 ~perm:Perm.Read_write;
  (match Page_table.lookup pt ~page:7 with
   | Some { Page_table.frame; perm } ->
     check_int "frame" 3 frame;
     check_bool "perm" true (Perm.equal perm Perm.Read_write)
   | None -> Alcotest.fail "mapping missing");
  Page_table.set_perm pt ~page:7 Perm.No_access;
  (match Page_table.lookup pt ~page:7 with
   | Some { Page_table.perm; _ } ->
     check_bool "protected" true (Perm.equal perm Perm.No_access)
   | None -> Alcotest.fail "mapping missing after mprotect");
  let entry = Page_table.unmap pt ~page:7 in
  check_int "unmapped frame" 3 entry.Page_table.frame;
  check_bool "gone" false (Page_table.is_mapped pt ~page:7)

let test_page_table_errors () =
  let pt = Page_table.create () in
  let stats = Stats.create () in
  Page_table.map pt stats ~page:1 ~frame:0 ~perm:Perm.Read_write;
  Alcotest.check_raises "double map"
    (Invalid_argument "Page_table.map: page 1 already mapped") (fun () ->
      Page_table.map pt stats ~page:1 ~frame:1 ~perm:Perm.Read_write);
  Alcotest.check_raises "unmap missing"
    (Invalid_argument "Page_table.unmap: page 9 not mapped") (fun () ->
      ignore (Page_table.unmap pt ~page:9))

(* ---- TLB ---- *)

let test_tlb_hit_miss () =
  let tlb = Tlb.create ~entries:8 ~ways:2 () in
  let stats = Stats.create () in
  check_bool "cold miss" true (Tlb.lookup tlb stats ~page:5 = None);
  Tlb.insert tlb ~page:5 ~frame:42 ~perm:Perm.Read_write;
  check_bool "hit" true
    (Tlb.lookup tlb stats ~page:5 = Some (42, Perm.Read_write));
  let s = Stats.snapshot stats in
  check_int "one miss" 1 s.Stats.tlb_misses;
  check_int "one hit" 1 s.Stats.tlb_hits

let test_tlb_eviction () =
  (* 2-way sets: filling three pages of the same set evicts the LRU. *)
  let tlb = Tlb.create ~entries:8 ~ways:2 () in
  let stats = Stats.create () in
  let n_sets = 4 in
  let p0 = 0 and p1 = n_sets and p2 = 2 * n_sets in
  Tlb.insert tlb ~page:p0 ~frame:0 ~perm:Perm.Read_write;
  Tlb.insert tlb ~page:p1 ~frame:1 ~perm:Perm.Read_write;
  ignore (Tlb.lookup tlb stats ~page:p0);
  Tlb.insert tlb ~page:p2 ~frame:2 ~perm:Perm.Read_write;
  check_bool "LRU evicted" true (Tlb.lookup tlb stats ~page:p1 = None);
  check_bool "MRU kept" true
    (Tlb.lookup tlb stats ~page:p0 = Some (0, Perm.Read_write))

let test_tlb_invalidate_and_flush () =
  let tlb = Tlb.create () in
  let stats = Stats.create () in
  Tlb.insert tlb ~page:3 ~frame:9 ~perm:Perm.Read_write;
  Tlb.invalidate_page tlb ~page:3;
  check_bool "invalidated" true (Tlb.lookup tlb stats ~page:3 = None);
  Tlb.insert tlb ~page:4 ~frame:1 ~perm:Perm.Read_write;
  Tlb.insert tlb ~page:5 ~frame:2 ~perm:Perm.Read_write;
  Tlb.flush tlb stats;
  check_bool "flushed 4" true (Tlb.lookup tlb stats ~page:4 = None);
  check_bool "flushed 5" true (Tlb.lookup tlb stats ~page:5 = None);
  check_int "flush counted" 1 (Stats.snapshot stats).Stats.tlb_flushes

let test_tlb_same_page_reinsert () =
  let tlb = Tlb.create ~entries:4 ~ways:2 () in
  let stats = Stats.create () in
  Tlb.insert tlb ~page:2 ~frame:1 ~perm:Perm.Read_write;
  Tlb.insert tlb ~page:2 ~frame:7 ~perm:Perm.Read_only;
  check_bool "latest translation" true
    (Tlb.lookup tlb stats ~page:2 = Some (7, Perm.Read_only))

(* ---- Kernel + MMU ---- *)

let test_mmap_and_access () =
  let m = Machine.create () in
  let a = Kernel.mmap m ~pages:2 in
  check_bool "page aligned" true (Addr.is_page_aligned a);
  Mmu.store m a ~width:8 0x1122334455;
  check_int "read back" 0x1122334455 (Mmu.load m a ~width:8);
  check_int "zero elsewhere" 0 (Mmu.load m (a + 8) ~width:8)

let test_access_widths () =
  let m = Machine.create () in
  let a = Kernel.mmap m ~pages:1 in
  Mmu.store m a ~width:8 0x0807060504030201;
  check_int "byte" 0x01 (Mmu.load m a ~width:1);
  check_int "half" 0x0201 (Mmu.load m a ~width:2);
  check_int "word" 0x04030201 (Mmu.load m a ~width:4);
  check_int "second byte" 0x02 (Mmu.load m (a + 1) ~width:1)

let test_cross_page_access () =
  let m = Machine.create () in
  let a = Kernel.mmap m ~pages:2 in
  let boundary = a + Addr.page_size - 4 in
  Mmu.store m boundary ~width:8 0x1234567890ABCDEF;
  check_int "cross-page roundtrip" 0x1234567890ABCDEF
    (Mmu.load m boundary ~width:8)

let test_unmapped_fault () =
  let m = Machine.create () in
  (match Mmu.load m 0x999 ~width:8 with
   | _ -> Alcotest.fail "expected trap"
   | exception Fault.Trap (Fault.Unmapped { addr; _ }) ->
     check_int "fault address" 0x999 addr
   | exception Fault.Trap _ -> Alcotest.fail "wrong fault kind")

let test_mprotect_fault () =
  let m = Machine.create () in
  let a = Kernel.mmap m ~pages:1 in
  Mmu.store m a ~width:8 7;
  Kernel.mprotect m ~addr:a ~pages:1 Perm.No_access;
  (match Mmu.load m a ~width:8 with
   | _ -> Alcotest.fail "expected protection trap"
   | exception Fault.Trap (Fault.Protection { perm; _ }) ->
     check_bool "perm none" true (Perm.equal perm Perm.No_access)
   | exception Fault.Trap _ -> Alcotest.fail "wrong fault kind");
  Kernel.mprotect m ~addr:a ~pages:1 Perm.Read_only;
  check_int "read-only read ok" 7 (Mmu.load m a ~width:8);
  (match Mmu.store m a ~width:8 9 with
   | () -> Alcotest.fail "expected write trap"
   | exception Fault.Trap (Fault.Protection { access; _ }) ->
     check_bool "write access" true (access = Perm.Write)
   | exception Fault.Trap _ -> Alcotest.fail "wrong fault kind")

let test_alias_shares_frames () =
  let m = Machine.create () in
  let a = Kernel.mmap m ~pages:1 in
  Mmu.store m a ~width:8 0xBEEF;
  let b = Kernel.mremap_alias m ~src:a ~pages:1 in
  check_bool "distinct virtual pages" true
    (Addr.page_index a <> Addr.page_index b);
  check_int "alias reads same data" 0xBEEF (Mmu.load m b ~width:8);
  Mmu.store m b ~width:8 0xCAFE;
  check_int "write through alias visible" 0xCAFE (Mmu.load m a ~width:8);
  (* Protecting the alias must not disturb the canonical mapping. *)
  Kernel.mprotect m ~addr:b ~pages:1 Perm.No_access;
  check_int "canonical unaffected" 0xCAFE (Mmu.load m a ~width:8)

let test_alias_refcount () =
  let m = Machine.create () in
  let a = Kernel.mmap m ~pages:1 in
  let live_before = Frame_table.live_frames m.Machine.frames in
  let b = Kernel.mremap_alias m ~src:a ~pages:1 in
  check_int "alias allocates no frame" live_before
    (Frame_table.live_frames m.Machine.frames);
  Kernel.munmap m ~addr:a ~pages:1;
  check_int "frame survives via alias" live_before
    (Frame_table.live_frames m.Machine.frames);
  Kernel.munmap m ~addr:b ~pages:1;
  check_int "frame freed with last mapping" (live_before - 1)
    (Frame_table.live_frames m.Machine.frames)

let test_mmap_fixed_replaces () =
  let m = Machine.create () in
  let a = Kernel.mmap m ~pages:1 in
  Mmu.store m a ~width:8 77;
  Kernel.mprotect m ~addr:a ~pages:1 Perm.No_access;
  Kernel.mmap_fixed m ~addr:a ~pages:1;
  check_int "fresh zero frame, writable again" 0 (Mmu.load m a ~width:8);
  Mmu.store m a ~width:8 88;
  check_int "writable" 88 (Mmu.load m a ~width:8)

let test_syscall_counting () =
  let m = Machine.create () in
  let a = Kernel.mmap m ~pages:1 in
  let b = Kernel.mremap_alias m ~src:a ~pages:1 in
  Kernel.mprotect m ~addr:b ~pages:1 Perm.No_access;
  Kernel.munmap m ~addr:b ~pages:1;
  Kernel.dummy_syscall m;
  let s = Stats.snapshot m.Machine.stats in
  check_int "mmap" 1 s.Stats.syscalls_mmap;
  check_int "mremap" 1 s.Stats.syscalls_mremap;
  check_int "mprotect" 1 s.Stats.syscalls_mprotect;
  check_int "munmap" 1 s.Stats.syscalls_munmap;
  check_int "dummy" 1 s.Stats.syscalls_dummy;
  check_int "total" 5 (Stats.total_syscalls s)

let test_kernel_argument_validation () =
  let m = Machine.create () in
  Alcotest.check_raises "unaligned mprotect"
    (Invalid_argument "Kernel.mprotect: unaligned address 0x11") (fun () ->
      Kernel.mprotect m ~addr:0x11 ~pages:1 Perm.No_access);
  Alcotest.check_raises "zero pages"
    (Invalid_argument "Kernel.mmap: pages <= 0") (fun () ->
      ignore (Kernel.mmap m ~pages:0))

let test_alias_at_recycled_location () =
  (* mremap_alias_at must atomically replace whatever mapping the
     destination held (recycled shadow placement). *)
  let m = Machine.create () in
  let a = Kernel.mmap m ~pages:1 in
  Mmu.store m a ~width:8 111;
  let stale = Kernel.mmap m ~pages:1 in
  Kernel.mprotect m ~addr:stale ~pages:1 Perm.No_access;
  Kernel.mremap_alias_at m ~src:a ~dst:stale ~pages:1;
  check_int "alias readable at recycled address" 111 (Mmu.load m stale ~width:8)

let test_alias_multi_page () =
  let m = Machine.create () in
  let a = Kernel.mmap m ~pages:3 in
  Mmu.store m (a + (2 * Addr.page_size)) ~width:8 77;
  let b = Kernel.mremap_alias m ~src:a ~pages:3 in
  check_int "third page aliased" 77
    (Mmu.load m (b + (2 * Addr.page_size)) ~width:8);
  (* Protect only the middle alias page: first and last stay usable. *)
  Kernel.mprotect m ~addr:(b + Addr.page_size) ~pages:1 Perm.No_access;
  Mmu.store m b ~width:8 1;
  check_int "first alias page fine" 1 (Mmu.load m b ~width:8);
  (match Mmu.load m (b + Addr.page_size) ~width:8 with
   | _ -> Alcotest.fail "middle page should trap"
   | exception Fault.Trap _ -> ())

let test_munmap_partial_range () =
  let m = Machine.create () in
  let a = Kernel.mmap m ~pages:3 in
  Mmu.store m a ~width:8 1;
  Mmu.store m (a + (2 * Addr.page_size)) ~width:8 3;
  Kernel.munmap m ~addr:(a + Addr.page_size) ~pages:1;
  check_int "first page intact" 1 (Mmu.load m a ~width:8);
  check_int "third page intact" 3 (Mmu.load m (a + (2 * Addr.page_size)) ~width:8);
  (match Mmu.load m (a + Addr.page_size) ~width:8 with
   | _ -> Alcotest.fail "middle page should be unmapped"
   | exception Fault.Trap (Fault.Unmapped _) -> ()
   | exception Fault.Trap _ -> Alcotest.fail "wrong fault")

let test_exempt_access_ignores_permissions () =
  let m = Machine.create () in
  let a = Kernel.mmap m ~pages:1 in
  Mmu.store m a ~width:8 9;
  Kernel.mprotect m ~addr:a ~pages:1 Perm.No_access;
  check_int "kernel-mode read bypasses protection" 9
    (Mmu.load_exempt m a ~width:8);
  Mmu.store_exempt m a ~width:8 10;
  Kernel.mprotect m ~addr:a ~pages:1 Perm.Read_write;
  check_int "kernel-mode write landed" 10 (Mmu.load m a ~width:8)

let test_probe () =
  let m = Machine.create () in
  let a = Kernel.mmap m ~pages:1 in
  check_bool "probe ok" true (Mmu.probe m a ~access:Perm.Write = Ok ());
  Kernel.mprotect m ~addr:a ~pages:1 Perm.Read_only;
  check_bool "probe write denied" true
    (match Mmu.probe m a ~access:Perm.Write with Error _ -> true | Ok () -> false);
  check_bool "probe read ok" true (Mmu.probe m a ~access:Perm.Read = Ok ())

(* ---- Cache ---- *)

let test_cache_hit_miss () =
  let c = Cache.create ~sets:4 ~ways:2 ~line_bytes:64 () in
  let stats = Stats.create () in
  Cache.access c stats ~phys_addr:0;
  Cache.access c stats ~phys_addr:8; (* same 64-byte line *)
  Cache.access c stats ~phys_addr:64; (* next line *)
  let s = Stats.snapshot stats in
  check_int "hits" 1 s.Stats.cache_hits;
  check_int "misses" 2 s.Stats.cache_misses

let test_cache_eviction_lru () =
  let c = Cache.create ~sets:2 ~ways:2 ~line_bytes:64 () in
  let stats = Stats.create () in
  (* Three lines mapping to set 0: 0, 128, 256 (line indices 0, 2, 4). *)
  Cache.access c stats ~phys_addr:0;
  Cache.access c stats ~phys_addr:128;
  Cache.access c stats ~phys_addr:0; (* refresh line 0 *)
  Cache.access c stats ~phys_addr:256; (* evicts line 2 (LRU) *)
  let before = (Stats.snapshot stats).Stats.cache_misses in
  Cache.access c stats ~phys_addr:0;
  check_int "line 0 kept" before (Stats.snapshot stats).Stats.cache_misses;
  Cache.access c stats ~phys_addr:128;
  check_int "line 2 evicted" (before + 1)
    (Stats.snapshot stats).Stats.cache_misses

let test_cache_physical_indexing_through_mmu () =
  (* Two virtual aliases of one physical page share cache lines: the
     shadow scheme preserves cache behaviour (paper §3.1). *)
  let m = Machine.create () in
  let a = Kernel.mmap m ~pages:1 in
  let b = Kernel.mremap_alias m ~src:a ~pages:1 in
  ignore (Mmu.load m a ~width:8); (* miss: fills the line *)
  let before = (Stats.snapshot m.Machine.stats).Stats.cache_misses in
  ignore (Mmu.load m b ~width:8); (* alias hit: same physical line *)
  check_int "alias hits the same line" before
    (Stats.snapshot m.Machine.stats).Stats.cache_misses

(* ---- Cost model ---- *)

let test_cost_model () =
  let s =
    { Stats.zero with Stats.instructions = 1000; loads = 100; stores = 50;
      tlb_misses = 10; syscalls_mremap = 2; faults = 1 }
  in
  let c = Cost_model.cycles Cost_model.native s in
  let expected = 1000. +. 150. +. 75. +. 300. +. 5000. +. 4000. in
  Alcotest.check (Alcotest.float 0.01) "native cycles" expected c;
  let llvm = Cost_model.cycles Cost_model.llvm_base s in
  check_bool "llvm slower on compiled work" true (llvm > c);
  let fast = Cost_model.with_code_quality Cost_model.llvm_base 0.9 in
  check_bool "quality gain" true (Cost_model.cycles fast s < c)

let test_machine_accounting () =
  let m = Machine.create () in
  let before = Stats.snapshot m.Machine.stats in
  let a = Kernel.mmap m ~pages:1 in
  Mmu.store m a ~width:8 1;
  check_bool "cycles positive" true (Machine.cycles m > 0.);
  check_bool "cycles_since smaller" true
    (Machine.cycles_since m before <= Machine.cycles m);
  check_int "va accounted" Addr.page_size (Machine.va_bytes_used m)

(* ---- MMU property tests ---- *)

let prop_mmu_roundtrip =
  QCheck.Test.make ~name:"mmu: store/load roundtrip at random offsets"
    QCheck.(pair (int_bound (2 * Addr.page_size - 9)) (int_bound 1_000_000))
    (fun (off, v) ->
      let m = Machine.create () in
      let a = Kernel.mmap m ~pages:2 in
      Mmu.store m (a + off) ~width:8 v;
      Mmu.load m (a + off) ~width:8 = v)

let prop_tlb_transparent =
  QCheck.Test.make ~name:"mmu: repeated loads agree (TLB is transparent)"
    QCheck.(int_bound 100)
    (fun n ->
      let m = Machine.create ~tlb_entries:8 () in
      let a = Kernel.mmap m ~pages:32 in
      (* Touch many pages to force evictions, then re-check all. *)
      for i = 0 to 31 do
        Mmu.store m (a + (i * Addr.page_size)) ~width:8 (i + n)
      done;
      let ok = ref true in
      for i = 0 to 31 do
        if Mmu.load m (a + (i * Addr.page_size)) ~width:8 <> i + n then
          ok := false
      done;
      !ok)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "vmm"
    [
      ( "addr",
        [
          Alcotest.test_case "arithmetic" `Quick test_addr_arithmetic;
          Alcotest.test_case "pages_spanning" `Quick test_pages_spanning;
        ]
        @ qcheck [ prop_page_roundtrip; prop_pages_spanning_positive ] );
      ("perm", [ Alcotest.test_case "allows" `Quick test_perm_allows ]);
      ( "frames",
        [
          Alcotest.test_case "refcounting" `Quick test_frame_refcounting;
          Alcotest.test_case "bytes" `Quick test_frame_bytes;
          Alcotest.test_case "peak" `Quick test_frame_peak;
        ] );
      ( "page-table",
        [
          Alcotest.test_case "map/unmap/protect" `Quick test_page_table;
          Alcotest.test_case "errors" `Quick test_page_table_errors;
        ] );
      ( "tlb",
        [
          Alcotest.test_case "hit/miss" `Quick test_tlb_hit_miss;
          Alcotest.test_case "eviction" `Quick test_tlb_eviction;
          Alcotest.test_case "invalidate/flush" `Quick
            test_tlb_invalidate_and_flush;
          Alcotest.test_case "reinsert" `Quick test_tlb_same_page_reinsert;
        ] );
      ( "kernel-mmu",
        [
          Alcotest.test_case "mmap + access" `Quick test_mmap_and_access;
          Alcotest.test_case "widths" `Quick test_access_widths;
          Alcotest.test_case "cross-page" `Quick test_cross_page_access;
          Alcotest.test_case "unmapped fault" `Quick test_unmapped_fault;
          Alcotest.test_case "mprotect fault" `Quick test_mprotect_fault;
          Alcotest.test_case "alias shares frames" `Quick
            test_alias_shares_frames;
          Alcotest.test_case "alias refcount" `Quick test_alias_refcount;
          Alcotest.test_case "mmap_fixed" `Quick test_mmap_fixed_replaces;
          Alcotest.test_case "syscall counting" `Quick test_syscall_counting;
          Alcotest.test_case "argument validation" `Quick
            test_kernel_argument_validation;
          Alcotest.test_case "alias at recycled VA" `Quick
            test_alias_at_recycled_location;
          Alcotest.test_case "multi-page alias" `Quick test_alias_multi_page;
          Alcotest.test_case "partial munmap" `Quick test_munmap_partial_range;
          Alcotest.test_case "kernel-mode access" `Quick
            test_exempt_access_ignores_permissions;
          Alcotest.test_case "probe" `Quick test_probe;
        ]
        @ qcheck [ prop_mmu_roundtrip; prop_tlb_transparent ] );
      ( "cache",
        [
          Alcotest.test_case "hit/miss" `Quick test_cache_hit_miss;
          Alcotest.test_case "LRU eviction" `Quick test_cache_eviction_lru;
          Alcotest.test_case "physical indexing via aliases" `Quick
            test_cache_physical_indexing_through_mmu;
        ] );
      ( "cost",
        [
          Alcotest.test_case "cost model" `Quick test_cost_model;
          Alcotest.test_case "machine accounting" `Quick
            test_machine_accounting;
        ] );
    ]
