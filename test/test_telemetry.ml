(* Tests for the telemetry subsystem: the ring buffer, log-bucketed
   histograms against a sorted-array oracle, histogram/registry merge
   semantics (associative, order-independent — the farm's join-time
   contract), the metrics registry backing Vmm.Stats, exporter
   well-formedness, and the event stream a traced machine produces. *)

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

(* ---- Ring ---- *)

let test_ring_basic () =
  let r = Telemetry.Ring.create ~capacity:4 in
  check_int "empty" 0 (Telemetry.Ring.length r);
  Telemetry.Ring.push r 1;
  Telemetry.Ring.push r 2;
  check (Alcotest.list Alcotest.int) "in order" [ 1; 2 ]
    (Telemetry.Ring.to_list r);
  check_int "no drops yet" 0 (Telemetry.Ring.dropped r)

let test_ring_wraparound () =
  let r = Telemetry.Ring.create ~capacity:4 in
  for i = 1 to 10 do
    Telemetry.Ring.push r i
  done;
  check_int "bounded" 4 (Telemetry.Ring.length r);
  check (Alcotest.list Alcotest.int) "keeps newest, oldest first"
    [ 7; 8; 9; 10 ]
    (Telemetry.Ring.to_list r);
  check_int "pushed" 10 (Telemetry.Ring.pushed r);
  check_int "dropped" 6 (Telemetry.Ring.dropped r);
  Telemetry.Ring.clear r;
  check_int "cleared" 0 (Telemetry.Ring.length r)

(* ---- Histogram vs. a sorted-array oracle ---- *)

let oracle_percentile values q =
  let sorted = List.sort compare values in
  let n = List.length sorted in
  let rank = max 1 (int_of_float (ceil (q *. float_of_int n))) in
  List.nth sorted (min (n - 1) (rank - 1))

let test_histogram_percentile_matches_oracle =
  QCheck.Test.make ~count:200 ~name:"histogram percentile ~= sorted array"
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 200) (float_range 0.001 1e9))
        (float_range 0.0 1.0))
    (fun (values, q) ->
      let h = Telemetry.Histogram.create () in
      List.iter (Telemetry.Histogram.observe h) values;
      let got = Telemetry.Histogram.percentile h q in
      let want = oracle_percentile values q in
      (* One bucket of quantization: representatives sit mid-bucket, so
         the answer is within one bucket ratio of the true order
         statistic (and clamped to the observed extrema). *)
      let ratio = Telemetry.Histogram.bucket_ratio h in
      got <= want *. ratio +. 1e-9 && got >= want /. ratio -. 1e-9)

let test_histogram_counts () =
  let h = Telemetry.Histogram.create () in
  check_int "empty count" 0 (Telemetry.Histogram.count h);
  List.iter (Telemetry.Histogram.observe h) [ 1.0; 10.0; 100.0; 0.0 ];
  check_int "count" 4 (Telemetry.Histogram.count h);
  check (Alcotest.float 1e-9) "sum" 111.0 (Telemetry.Histogram.sum h);
  check (Alcotest.float 1e-9) "min" 0.0 (Telemetry.Histogram.min_value h);
  check (Alcotest.float 1e-9) "max" 100.0 (Telemetry.Histogram.max_value h);
  check (Alcotest.float 1e-9) "p0 is min" 0.0
    (Telemetry.Histogram.percentile h 0.0);
  check (Alcotest.float 1e-9) "p100 is max" 100.0
    (Telemetry.Histogram.percentile h 1.0)

(* ---- Merge semantics ---- *)

let hist_of values =
  let h = Telemetry.Histogram.create () in
  List.iter (Telemetry.Histogram.observe h) values;
  h

let check_hist_equal label a b =
  check_int (label ^ ": count") (Telemetry.Histogram.count a)
    (Telemetry.Histogram.count b);
  check (Alcotest.float 1e-6) (label ^ ": sum") (Telemetry.Histogram.sum a)
    (Telemetry.Histogram.sum b);
  check (Alcotest.float 1e-9) (label ^ ": min")
    (Telemetry.Histogram.min_value a)
    (Telemetry.Histogram.min_value b);
  check (Alcotest.float 1e-9) (label ^ ": max")
    (Telemetry.Histogram.max_value a)
    (Telemetry.Histogram.max_value b);
  List.iter
    (fun q ->
      check (Alcotest.float 1e-9)
        (Printf.sprintf "%s: p%.0f" label (q *. 100.))
        (Telemetry.Histogram.percentile a q)
        (Telemetry.Histogram.percentile b q))
    [ 0.0; 0.25; 0.5; 0.9; 0.99; 1.0 ]

let test_histogram_merge_is_union =
  QCheck.Test.make ~count:100
    ~name:"histogram merge = histogram of concatenated samples"
    QCheck.(
      pair
        (list_of_size Gen.(0 -- 80) (float_range 0.0 1e6))
        (list_of_size Gen.(0 -- 80) (float_range 0.0 1e6)))
    (fun (xs, ys) ->
      let merged = Telemetry.Histogram.merge (hist_of xs) (hist_of ys) in
      let oracle = hist_of (xs @ ys) in
      check_hist_equal "merge" oracle merged;
      true)

let test_histogram_merge_order_independent =
  QCheck.Test.make ~count:100
    ~name:"histogram merge is associative and order-independent"
    QCheck.(
      triple
        (list_of_size Gen.(0 -- 50) (float_range 0.0 1e6))
        (list_of_size Gen.(0 -- 50) (float_range 0.0 1e6))
        (list_of_size Gen.(0 -- 50) (float_range 0.0 1e6)))
    (fun (xs, ys, zs) ->
      let h () = (hist_of xs, hist_of ys, hist_of zs) in
      let a, b, c = h () in
      let left = Telemetry.Histogram.merge (Telemetry.Histogram.merge a b) c in
      let a, b, c = h () in
      let right = Telemetry.Histogram.merge a (Telemetry.Histogram.merge b c) in
      let a, b, c = h () in
      let reversed =
        Telemetry.Histogram.merge c (Telemetry.Histogram.merge b a)
      in
      check_hist_equal "assoc" left right;
      check_hist_equal "reorder" left reversed;
      true)

let test_histogram_merge_bpo_mismatch () =
  let a = Telemetry.Histogram.create ~buckets_per_octave:16 () in
  let b = Telemetry.Histogram.create ~buckets_per_octave:8 () in
  match Telemetry.Histogram.merge a b with
  | _ -> Alcotest.fail "bpo mismatch should raise"
  | exception Invalid_argument _ -> ()

let test_histogram_merge_into_empty () =
  (* Merging an empty histogram is the identity, in both directions. *)
  let a = hist_of [ 3.0; 5.0; 0.0 ] in
  let empty = Telemetry.Histogram.create () in
  check_hist_equal "empty right" a (Telemetry.Histogram.merge a empty);
  check_hist_equal "empty left" a (Telemetry.Histogram.merge empty a)

let registry_a () =
  let m = Telemetry.Metrics.create () in
  Telemetry.Metrics.incr ~by:3 (Telemetry.Metrics.counter m "reqs");
  Telemetry.Metrics.set_gauge (Telemetry.Metrics.gauge m "depth") 2.0;
  List.iter
    (Telemetry.Histogram.observe (Telemetry.Metrics.histogram m "lat"))
    [ 1.0; 8.0 ];
  m

let registry_b () =
  let m = Telemetry.Metrics.create () in
  Telemetry.Metrics.incr ~by:4 (Telemetry.Metrics.counter m "reqs");
  Telemetry.Metrics.incr ~by:2 (Telemetry.Metrics.counter m "errors");
  Telemetry.Metrics.set_gauge (Telemetry.Metrics.gauge m "depth") 5.0;
  List.iter
    (Telemetry.Histogram.observe (Telemetry.Metrics.histogram m "lat"))
    [ 2.0; 64.0; 100.0 ];
  m

let test_metrics_merge () =
  let into = registry_a () in
  Telemetry.Metrics.merge ~into (registry_b ());
  check_int "counters add" 7
    (Telemetry.Metrics.counter_value (Telemetry.Metrics.counter into "reqs"));
  check_int "missing counters appear" 2
    (Telemetry.Metrics.counter_value (Telemetry.Metrics.counter into "errors"));
  check (Alcotest.float 1e-9) "gauges take the max" 5.0
    (Telemetry.Metrics.gauge_value (Telemetry.Metrics.gauge into "depth"));
  check_hist_equal "histograms merge"
    (hist_of [ 1.0; 8.0; 2.0; 64.0; 100.0 ])
    (Telemetry.Metrics.histogram into "lat")

let test_metrics_merge_order_independent () =
  (* a<-b and b<-a hold the same values under every shared name. *)
  let ab = registry_a () in
  Telemetry.Metrics.merge ~into:ab (registry_b ());
  let ba = registry_b () in
  Telemetry.Metrics.merge ~into:ba (registry_a ());
  List.iter
    (fun name ->
      check_int ("counter " ^ name)
        (Telemetry.Metrics.counter_value (Telemetry.Metrics.counter ab name))
        (Telemetry.Metrics.counter_value (Telemetry.Metrics.counter ba name)))
    [ "reqs"; "errors" ];
  check (Alcotest.float 1e-9) "gauge depth"
    (Telemetry.Metrics.gauge_value (Telemetry.Metrics.gauge ab "depth"))
    (Telemetry.Metrics.gauge_value (Telemetry.Metrics.gauge ba "depth"));
  check_hist_equal "hist lat"
    (Telemetry.Metrics.histogram ab "lat")
    (Telemetry.Metrics.histogram ba "lat")

let test_metrics_merge_kind_mismatch () =
  let into = Telemetry.Metrics.create () in
  ignore (Telemetry.Metrics.counter into "x");
  let src = Telemetry.Metrics.create () in
  Telemetry.Metrics.set_gauge (Telemetry.Metrics.gauge src "x") 1.0;
  match Telemetry.Metrics.merge ~into src with
  | () -> Alcotest.fail "kind mismatch should raise"
  | exception Invalid_argument _ -> ()

(* ---- Metrics registry ---- *)

let test_metrics_registry () =
  let m = Telemetry.Metrics.create () in
  let c = Telemetry.Metrics.counter m "requests" in
  Telemetry.Metrics.incr c;
  Telemetry.Metrics.incr c ~by:4;
  check_int "counter" 5 (Telemetry.Metrics.counter_value c);
  Telemetry.Metrics.set_gauge (Telemetry.Metrics.gauge m "depth") 3.5;
  check (Alcotest.float 1e-9) "gauge" 3.5
    (Telemetry.Metrics.gauge_value (Telemetry.Metrics.gauge m "depth"));
  (match Telemetry.Metrics.gauge m "requests" with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "kind mismatch should raise");
  check (Alcotest.list Alcotest.string) "names in registration order"
    [ "requests"; "depth" ]
    (Telemetry.Metrics.names m)

let test_metrics_json_parses () =
  let m = Telemetry.Metrics.create () in
  Telemetry.Metrics.incr (Telemetry.Metrics.counter m "n") ~by:7;
  Telemetry.Histogram.observe
    (Telemetry.Metrics.histogram m "lat")
    123.0;
  match Telemetry.Json.of_string
          (Telemetry.Json.to_string (Telemetry.Metrics.to_json m))
  with
  | Error e -> Alcotest.fail ("metrics JSON does not parse: " ^ e)
  | Ok j ->
    (match Telemetry.Json.member "counters" j with
     | Some (Telemetry.Json.Obj [ ("n", Telemetry.Json.Int 7) ]) -> ()
     | _ -> Alcotest.fail "counters object wrong")

(* ---- Vmm.Stats counts live in the telemetry registry ---- *)

let busy_machine () =
  let m = Vmm.Machine.create () in
  let a = Vmm.Kernel.mmap m ~pages:2 in
  for i = 0 to 63 do
    Vmm.Mmu.store m (a + (8 * i)) ~width:8 i
  done;
  for i = 0 to 63 do
    ignore (Vmm.Mmu.load m (a + (8 * i)) ~width:8)
  done;
  Vmm.Kernel.munmap m ~addr:a ~pages:2;
  m

let test_stats_count_into_registry () =
  let m = busy_machine () in
  let s = Vmm.Stats.snapshot m.Vmm.Machine.stats in
  check_bool "exercised" true (s.Vmm.Stats.loads > 0);
  (* No sync step: the machine's registry already holds every counter
     the snapshot reports, under the same names field_values uses. *)
  let registry = Vmm.Stats.registry m.Vmm.Machine.stats in
  List.iter
    (fun (name, v) ->
      check_int name v
        (Telemetry.Metrics.counter_value (Telemetry.Metrics.counter registry name)))
    (Vmm.Stats.field_values s);
  (* And the snapshot is a faithful read-only view: counting more shows
     up in the next snapshot but never mutates an old one. *)
  let loads_before = s.Vmm.Stats.loads in
  ignore (Vmm.Mmu.load m (Vmm.Kernel.mmap m ~pages:1) ~width:8);
  check_int "old snapshot unchanged" loads_before s.Vmm.Stats.loads;
  check_int "new snapshot sees the load" (loads_before + 1)
    (Vmm.Stats.snapshot m.Vmm.Machine.stats).Vmm.Stats.loads

let test_stats_accumulate () =
  (* Summing snapshots and accumulating into one registry agree — the
     farm's per-shard aggregation path. *)
  let s1 = Vmm.Stats.snapshot (busy_machine ()).Vmm.Machine.stats in
  let s2 = Vmm.Stats.snapshot (busy_machine ()).Vmm.Machine.stats in
  let acc = Telemetry.Metrics.create () in
  Vmm.Stats.accumulate acc s1;
  Vmm.Stats.accumulate acc s2;
  List.iter
    (fun (name, v) ->
      check_int name v
        (Telemetry.Metrics.counter_value (Telemetry.Metrics.counter acc name)))
    (Vmm.Stats.field_values (Vmm.Stats.sum s1 s2))

(* ---- Sink + instrumented machine ---- *)

let event_names sink =
  List.map
    (fun (e : Telemetry.Event.t) -> Telemetry.Event.name e.Telemetry.Event.kind)
    (Telemetry.Sink.events sink)

let test_disabled_sink_records_nothing () =
  let sink = Telemetry.Sink.disabled () in
  let m = Vmm.Machine.create ~trace:sink () in
  let scheme = Runtime.Schemes.shadow_pool m in
  let p = scheme.Runtime.Scheme.malloc 64 in
  scheme.Runtime.Scheme.free p;
  check_int "no events" 0 (List.length (Telemetry.Sink.events sink));
  check_int "nothing recorded" 0 (Telemetry.Sink.recorded sink)

let test_traced_alloc_free_fault_ordering () =
  let sink = Telemetry.Sink.create () in
  let m = Vmm.Machine.create ~trace:sink () in
  let scheme = Runtime.Schemes.shadow_pool m in
  let p = scheme.Runtime.Scheme.malloc ~site:"t.c:1" 64 in
  scheme.Runtime.Scheme.free ~site:"t.c:2" p;
  (match scheme.Runtime.Scheme.load p ~width:8 with
   | _ -> Alcotest.fail "dangling load not trapped"
   | exception Shadow.Report.Violation _ -> ());
  let names = event_names sink in
  let index prefix =
    match
      List.find_index (fun n -> String.starts_with ~prefix n) names
    with
    | Some i -> i
    | None -> Alcotest.fail (prefix ^ " event missing from " ^
                             String.concat "," names)
  in
  check_bool "malloc before free" true (index "malloc" < index "free");
  check_bool "free before fault" true (index "free" < index "page-fault");
  check_bool "fault before violation report" true
    (index "page-fault" < index "violation:use-after-free");
  let events = Telemetry.Sink.events sink in
  let seqs = List.map (fun (e : Telemetry.Event.t) -> e.Telemetry.Event.seq) events in
  check_bool "seq strictly increasing" true
    (List.for_all2 ( < ) seqs (List.tl seqs @ [ max_int ]));
  let stamps = List.map (fun (e : Telemetry.Event.t) -> e.Telemetry.Event.at) events in
  check_bool "timestamps non-decreasing" true
    (List.for_all2 ( <= ) stamps (List.tl stamps @ [ infinity ]))

let test_sampling () =
  let sink = Telemetry.Sink.create ~sample_every:3 () in
  let m = Vmm.Machine.create ~trace:sink () in
  let scheme = Runtime.Schemes.native m in
  for _ = 1 to 9 do
    let p = scheme.Runtime.Scheme.malloc 32 in
    scheme.Runtime.Scheme.free p
  done;
  (* The allocator's own mmap syscalls are samplable too, so pin the
     relationship rather than an exact count. *)
  let seen = Telemetry.Sink.seen sink in
  check_bool "saw at least the 18 heap events" true (seen >= 18);
  check_int "recorded every third" ((seen + 2) / 3)
    (Telemetry.Sink.recorded sink)

(* ---- Exporters ---- *)

let traced_events () =
  let sink = Telemetry.Sink.create () in
  let m = Vmm.Machine.create ~trace:sink () in
  let scheme = Runtime.Schemes.shadow_pool m in
  let p = scheme.Runtime.Scheme.malloc ~site:"x.c:9" 128 in
  scheme.Runtime.Scheme.store p ~width:8 1;
  scheme.Runtime.Scheme.free p;
  Telemetry.Sink.events sink

let test_jsonl_well_formed () =
  let events = traced_events () in
  check_bool "has events" true (events <> []);
  let lines =
    String.split_on_char '\n' (String.trim (Telemetry.Export.to_jsonl events))
  in
  check_int "one line per event" (List.length events) (List.length lines);
  List.iter
    (fun line ->
      match Telemetry.Json.of_string line with
      | Error e -> Alcotest.fail ("bad JSONL line: " ^ e ^ ": " ^ line)
      | Ok j ->
        check_bool "has type" true (Telemetry.Json.member "type" j <> None);
        check_bool "has cycles" true (Telemetry.Json.member "cycles" j <> None))
    lines

let test_chrome_trace_well_formed () =
  let events = traced_events () in
  match Telemetry.Json.of_string (Telemetry.Export.to_chrome_string events) with
  | Error e -> Alcotest.fail ("chrome trace does not parse: " ^ e)
  | Ok j ->
    (match Telemetry.Json.member "traceEvents" j with
     | Some (Telemetry.Json.List items) ->
       check_int "one trace event per event" (List.length events)
         (List.length items);
       List.iter
         (fun item ->
           check (Alcotest.option Alcotest.string) "instant phase"
             (Some "i")
             (match Telemetry.Json.member "ph" item with
              | Some (Telemetry.Json.String s) -> Some s
              | _ -> None);
           List.iter
             (fun k ->
               check_bool ("has " ^ k) true
                 (Telemetry.Json.member k item <> None))
             [ "name"; "cat"; "ts"; "pid"; "tid"; "args" ])
         items
     | _ -> Alcotest.fail "traceEvents missing")

let test_histogram_merge_single_bucket () =
  (* Identical samples occupy one bucket; merging must keep count, sum
     and quantiles exact (representative clamped to the extrema). *)
  let m = Telemetry.Histogram.merge (hist_of [ 5.0; 5.0; 5.0 ]) (hist_of [ 5.0 ]) in
  check_hist_equal "single bucket" (hist_of [ 5.0; 5.0; 5.0; 5.0 ]) m;
  check (Alcotest.float 1e-9) "p50 exact" 5.0
    (Telemetry.Histogram.percentile m 0.5);
  (* and the degenerate empty-into-empty merge stays empty *)
  let e =
    Telemetry.Histogram.merge
      (Telemetry.Histogram.create ())
      (Telemetry.Histogram.create ())
  in
  check_int "empty merge count" 0 (Telemetry.Histogram.count e);
  check (Alcotest.float 1e-9) "empty merge p99" 0.0
    (Telemetry.Histogram.percentile e 0.99)

let test_histogram_merge_into_self () =
  (* Self-merge is well-defined: it doubles the sample multiset. *)
  let h = hist_of [ 1.0; 2.0; 4.0; 0.0 ] in
  Telemetry.Histogram.merge_into ~into:h h;
  check_hist_equal "self-merge doubles"
    (hist_of [ 1.0; 2.0; 4.0; 0.0; 1.0; 2.0; 4.0; 0.0 ])
    h

(* The fleet pipeline publishes per-signature crash counters under
   label-bearing names; merging shard registries must treat them as
   ordinary counters keyed by the full name. *)
let crash_name =
  "fleet.crash_total{signature=\"00d1ab0l1c4l\",kind=\"use-after-free \
   (read)\",alloc_site=\"srv.c:10\"}"

let test_metrics_merge_crash_counters () =
  let a = Telemetry.Metrics.create () in
  Telemetry.Metrics.incr ~by:2 (Telemetry.Metrics.counter a crash_name);
  Telemetry.Metrics.set_gauge (Telemetry.Metrics.gauge a "fleet.signatures") 1.0;
  let b = Telemetry.Metrics.create () in
  Telemetry.Metrics.incr ~by:3 (Telemetry.Metrics.counter b crash_name);
  Telemetry.Metrics.incr ~by:5 (Telemetry.Metrics.counter b "fleet.reports_total");
  Telemetry.Metrics.set_gauge (Telemetry.Metrics.gauge b "fleet.signatures") 2.0;
  Telemetry.Metrics.merge ~into:a b;
  check_int "labelled counters add" 5
    (Telemetry.Metrics.counter_value (Telemetry.Metrics.counter a crash_name));
  check_int "missing counter appears" 5
    (Telemetry.Metrics.counter_value
       (Telemetry.Metrics.counter a "fleet.reports_total"));
  check (Alcotest.float 1e-9) "gauge takes max" 2.0
    (Telemetry.Metrics.gauge_value
       (Telemetry.Metrics.gauge a "fleet.signatures"));
  check_bool "value accessor sees the counter" true
    (match Telemetry.Metrics.value a crash_name with
     | Some (Telemetry.Metrics.Counter_v 5) -> true
     | _ -> false)

let test_prometheus_export () =
  let m = Telemetry.Metrics.create () in
  Telemetry.Metrics.incr ~by:7 (Telemetry.Metrics.counter m crash_name);
  Telemetry.Metrics.incr ~by:9 (Telemetry.Metrics.counter m "farm.connections");
  Telemetry.Metrics.set_gauge (Telemetry.Metrics.gauge m "farm.max_va_bytes") 4096.0;
  List.iter
    (Telemetry.Histogram.observe (Telemetry.Metrics.histogram m "farm.latency_cycles"))
    [ 10.0; 20.0; 30.0 ];
  let text = Telemetry.Export.to_prometheus m in
  let has needle =
    let nl = String.length needle and tl = String.length text in
    let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
    go 0
  in
  check_bool "labelled crash counter line" true
    (has
       "fleet_crash_total{signature=\"00d1ab0l1c4l\",kind=\"use-after-free \
        (read)\",alloc_site=\"srv.c:10\"} 7");
  check_bool "crash counter TYPE line" true
    (has "# TYPE fleet_crash_total counter");
  check_bool "counter gets _total suffix" true (has "farm_connections_total 9");
  check_bool "gauge line" true (has "farm_max_va_bytes 4096");
  check_bool "gauge TYPE line" true (has "# TYPE farm_max_va_bytes gauge");
  check_bool "summary TYPE line" true
    (has "# TYPE farm_latency_cycles summary");
  check_bool "summary quantile label" true
    (has "farm_latency_cycles{quantile=\"0.5\"}");
  check_bool "summary count" true (has "farm_latency_cycles_count 3");
  check_bool "summary sum" true (has "farm_latency_cycles_sum 60")

let test_chrome_trace_grouped () =
  let events = traced_events () in
  let groups = [ (1, 1, events); (2, 1, events) ] in
  match
    Telemetry.Json.of_string
      (Telemetry.Export.to_chrome_string_grouped groups)
  with
  | Error e -> Alcotest.fail ("grouped chrome trace does not parse: " ^ e)
  | Ok j ->
    (match Telemetry.Json.member "traceEvents" j with
     | Some (Telemetry.Json.List items) ->
       let phase item =
         match Telemetry.Json.member "ph" item with
         | Some (Telemetry.Json.String s) -> s
         | _ -> "?"
       in
       let pid item =
         match Telemetry.Json.member "pid" item with
         | Some (Telemetry.Json.Int p) -> p
         | _ -> -1
       in
       let meta, insts = List.partition (fun i -> phase i = "M") items in
       check_int "one process_name record per shard lane" 2 (List.length meta);
       check_bool "metadata names the lanes" true
         (List.sort compare (List.map pid meta) = [ 1; 2 ]);
       check_int "every event in some lane" (2 * List.length events)
         (List.length insts);
       check_int "lane 1 carries its events" (List.length events)
         (List.length (List.filter (fun i -> pid i = 1) insts));
       check_int "lane 2 carries its events" (List.length events)
         (List.length (List.filter (fun i -> pid i = 2) insts))
     | _ -> Alcotest.fail "traceEvents missing")

let test_json_roundtrip =
  QCheck.Test.make ~count:200 ~name:"json print/parse round-trip"
    QCheck.(
      list_of_size Gen.(0 -- 8)
        (pair (string_of_size Gen.(0 -- 6)) small_signed_int))
    (fun fields ->
      let j =
        Telemetry.Json.Obj
          (List.map (fun (k, v) -> (k, Telemetry.Json.Int v)) fields)
      in
      (* duplicate keys are legal JSON but not round-trippable *)
      QCheck.assume
        (List.length fields
         = List.length (List.sort_uniq compare (List.map fst fields)));
      match Telemetry.Json.of_string (Telemetry.Json.to_string j) with
      | Ok j' -> j = j'
      | Error _ -> false)

let () =
  Alcotest.run "telemetry"
    [
      ( "ring",
        [
          Alcotest.test_case "basic" `Quick test_ring_basic;
          Alcotest.test_case "wraparound" `Quick test_ring_wraparound;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "counts and extrema" `Quick test_histogram_counts;
          QCheck_alcotest.to_alcotest test_histogram_percentile_matches_oracle;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "registry" `Quick test_metrics_registry;
          Alcotest.test_case "json export parses" `Quick
            test_metrics_json_parses;
        ] );
      ( "merge",
        [
          QCheck_alcotest.to_alcotest test_histogram_merge_is_union;
          QCheck_alcotest.to_alcotest test_histogram_merge_order_independent;
          Alcotest.test_case "bpo mismatch raises" `Quick
            test_histogram_merge_bpo_mismatch;
          Alcotest.test_case "empty is identity" `Quick
            test_histogram_merge_into_empty;
          Alcotest.test_case "single bucket and empty edges" `Quick
            test_histogram_merge_single_bucket;
          Alcotest.test_case "merge into self doubles" `Quick
            test_histogram_merge_into_self;
          Alcotest.test_case "registry merge" `Quick test_metrics_merge;
          Alcotest.test_case "crash counters merge" `Quick
            test_metrics_merge_crash_counters;
          Alcotest.test_case "registry merge order-independent" `Quick
            test_metrics_merge_order_independent;
          Alcotest.test_case "registry kind mismatch raises" `Quick
            test_metrics_merge_kind_mismatch;
        ] );
      ( "stats",
        [
          Alcotest.test_case "counts land in the registry" `Quick
            test_stats_count_into_registry;
          Alcotest.test_case "accumulate = sum" `Quick test_stats_accumulate;
        ] );
      ( "sink",
        [
          Alcotest.test_case "disabled records nothing" `Quick
            test_disabled_sink_records_nothing;
          Alcotest.test_case "alloc/free/fault ordering" `Quick
            test_traced_alloc_free_fault_ordering;
          Alcotest.test_case "sampling" `Quick test_sampling;
        ] );
      ( "export",
        [
          Alcotest.test_case "jsonl" `Quick test_jsonl_well_formed;
          Alcotest.test_case "chrome trace" `Quick
            test_chrome_trace_well_formed;
          Alcotest.test_case "chrome trace shard lanes" `Quick
            test_chrome_trace_grouped;
          Alcotest.test_case "prometheus exposition" `Quick
            test_prometheus_export;
          QCheck_alcotest.to_alcotest test_json_roundtrip;
        ] );
    ]
