(* Tests for the telemetry subsystem: the ring buffer, log-bucketed
   histograms against a sorted-array oracle, the metrics registry and
   its Vmm.Stats shim, exporter well-formedness, and the event stream a
   traced machine actually produces. *)

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_string = check Alcotest.string

(* ---- Ring ---- *)

let test_ring_basic () =
  let r = Telemetry.Ring.create ~capacity:4 in
  check_int "empty" 0 (Telemetry.Ring.length r);
  Telemetry.Ring.push r 1;
  Telemetry.Ring.push r 2;
  check (Alcotest.list Alcotest.int) "in order" [ 1; 2 ]
    (Telemetry.Ring.to_list r);
  check_int "no drops yet" 0 (Telemetry.Ring.dropped r)

let test_ring_wraparound () =
  let r = Telemetry.Ring.create ~capacity:4 in
  for i = 1 to 10 do
    Telemetry.Ring.push r i
  done;
  check_int "bounded" 4 (Telemetry.Ring.length r);
  check (Alcotest.list Alcotest.int) "keeps newest, oldest first"
    [ 7; 8; 9; 10 ]
    (Telemetry.Ring.to_list r);
  check_int "pushed" 10 (Telemetry.Ring.pushed r);
  check_int "dropped" 6 (Telemetry.Ring.dropped r);
  Telemetry.Ring.clear r;
  check_int "cleared" 0 (Telemetry.Ring.length r)

(* ---- Histogram vs. a sorted-array oracle ---- *)

let oracle_percentile values q =
  let sorted = List.sort compare values in
  let n = List.length sorted in
  let rank = max 1 (int_of_float (ceil (q *. float_of_int n))) in
  List.nth sorted (min (n - 1) (rank - 1))

let test_histogram_percentile_matches_oracle =
  QCheck.Test.make ~count:200 ~name:"histogram percentile ~= sorted array"
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 200) (float_range 0.001 1e9))
        (float_range 0.0 1.0))
    (fun (values, q) ->
      let h = Telemetry.Histogram.create () in
      List.iter (Telemetry.Histogram.observe h) values;
      let got = Telemetry.Histogram.percentile h q in
      let want = oracle_percentile values q in
      (* One bucket of quantization: representatives sit mid-bucket, so
         the answer is within one bucket ratio of the true order
         statistic (and clamped to the observed extrema). *)
      let ratio = Telemetry.Histogram.bucket_ratio h in
      got <= want *. ratio +. 1e-9 && got >= want /. ratio -. 1e-9)

let test_histogram_counts () =
  let h = Telemetry.Histogram.create () in
  check_int "empty count" 0 (Telemetry.Histogram.count h);
  List.iter (Telemetry.Histogram.observe h) [ 1.0; 10.0; 100.0; 0.0 ];
  check_int "count" 4 (Telemetry.Histogram.count h);
  check (Alcotest.float 1e-9) "sum" 111.0 (Telemetry.Histogram.sum h);
  check (Alcotest.float 1e-9) "min" 0.0 (Telemetry.Histogram.min_value h);
  check (Alcotest.float 1e-9) "max" 100.0 (Telemetry.Histogram.max_value h);
  check (Alcotest.float 1e-9) "p0 is min" 0.0
    (Telemetry.Histogram.percentile h 0.0);
  check (Alcotest.float 1e-9) "p100 is max" 100.0
    (Telemetry.Histogram.percentile h 1.0)

(* ---- Metrics registry ---- *)

let test_metrics_registry () =
  let m = Telemetry.Metrics.create () in
  let c = Telemetry.Metrics.counter m "requests" in
  Telemetry.Metrics.incr c;
  Telemetry.Metrics.incr c ~by:4;
  check_int "counter" 5 (Telemetry.Metrics.counter_value c);
  Telemetry.Metrics.set_gauge (Telemetry.Metrics.gauge m "depth") 3.5;
  check (Alcotest.float 1e-9) "gauge" 3.5
    (Telemetry.Metrics.gauge_value (Telemetry.Metrics.gauge m "depth"));
  (match Telemetry.Metrics.gauge m "requests" with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "kind mismatch should raise");
  check (Alcotest.list Alcotest.string) "names in registration order"
    [ "requests"; "depth" ]
    (Telemetry.Metrics.names m)

let test_metrics_json_parses () =
  let m = Telemetry.Metrics.create () in
  Telemetry.Metrics.incr (Telemetry.Metrics.counter m "n") ~by:7;
  Telemetry.Histogram.observe
    (Telemetry.Metrics.histogram m "lat")
    123.0;
  match Telemetry.Json.of_string
          (Telemetry.Json.to_string (Telemetry.Metrics.to_json m))
  with
  | Error e -> Alcotest.fail ("metrics JSON does not parse: " ^ e)
  | Ok j ->
    (match Telemetry.Json.member "counters" j with
     | Some (Telemetry.Json.Obj [ ("n", Telemetry.Json.Int 7) ]) -> ()
     | _ -> Alcotest.fail "counters object wrong")

(* ---- Vmm.Stats shim ---- *)

let busy_snapshot () =
  let m = Vmm.Machine.create () in
  let a = Vmm.Kernel.mmap m ~pages:2 in
  for i = 0 to 63 do
    Vmm.Mmu.store m (a + (8 * i)) ~width:8 i
  done;
  for i = 0 to 63 do
    ignore (Vmm.Mmu.load m (a + (8 * i)) ~width:8)
  done;
  Vmm.Kernel.munmap m ~addr:a ~pages:2;
  Vmm.Stats.snapshot m.Vmm.Machine.stats

let test_stats_roundtrip () =
  let s = busy_snapshot () in
  check_bool "exercised" true (s.Vmm.Stats.loads > 0);
  let back = Vmm.Stats.of_metrics (Vmm.Stats.to_metrics s) in
  check_bool "of_metrics (to_metrics s) = s" true (back = s);
  (* diff and pp compose with the shim: a diff pushed through the
     registry prints the same as the diff itself. *)
  let d = Vmm.Stats.diff s Vmm.Stats.zero in
  let via_shim = Vmm.Stats.of_metrics (Vmm.Stats.to_metrics d) in
  check_string "pp round-trip"
    (Format.asprintf "%a" Vmm.Stats.pp d)
    (Format.asprintf "%a" Vmm.Stats.pp via_shim);
  check_bool "empty registry reads as zero" true
    (Vmm.Stats.of_metrics (Telemetry.Metrics.create ()) = Vmm.Stats.zero)

(* ---- Sink + instrumented machine ---- *)

let event_names sink =
  List.map
    (fun (e : Telemetry.Event.t) -> Telemetry.Event.name e.Telemetry.Event.kind)
    (Telemetry.Sink.events sink)

let test_disabled_sink_records_nothing () =
  let sink = Telemetry.Sink.disabled () in
  let m = Vmm.Machine.create ~trace:sink () in
  let scheme = Runtime.Schemes.shadow_pool m in
  let p = scheme.Runtime.Scheme.malloc 64 in
  scheme.Runtime.Scheme.free p;
  check_int "no events" 0 (List.length (Telemetry.Sink.events sink));
  check_int "nothing recorded" 0 (Telemetry.Sink.recorded sink)

let test_traced_alloc_free_fault_ordering () =
  let sink = Telemetry.Sink.create () in
  let m = Vmm.Machine.create ~trace:sink () in
  let scheme = Runtime.Schemes.shadow_pool m in
  let p = scheme.Runtime.Scheme.malloc ~site:"t.c:1" 64 in
  scheme.Runtime.Scheme.free ~site:"t.c:2" p;
  (match scheme.Runtime.Scheme.load p ~width:8 with
   | _ -> Alcotest.fail "dangling load not trapped"
   | exception Shadow.Report.Violation _ -> ());
  let names = event_names sink in
  let index prefix =
    match
      List.find_index (fun n -> String.starts_with ~prefix n) names
    with
    | Some i -> i
    | None -> Alcotest.fail (prefix ^ " event missing from " ^
                             String.concat "," names)
  in
  check_bool "malloc before free" true (index "malloc" < index "free");
  check_bool "free before fault" true (index "free" < index "page-fault");
  check_bool "fault before violation report" true
    (index "page-fault" < index "violation:use-after-free");
  let events = Telemetry.Sink.events sink in
  let seqs = List.map (fun (e : Telemetry.Event.t) -> e.Telemetry.Event.seq) events in
  check_bool "seq strictly increasing" true
    (List.for_all2 ( < ) seqs (List.tl seqs @ [ max_int ]));
  let stamps = List.map (fun (e : Telemetry.Event.t) -> e.Telemetry.Event.at) events in
  check_bool "timestamps non-decreasing" true
    (List.for_all2 ( <= ) stamps (List.tl stamps @ [ infinity ]))

let test_sampling () =
  let sink = Telemetry.Sink.create ~sample_every:3 () in
  let m = Vmm.Machine.create ~trace:sink () in
  let scheme = Runtime.Schemes.native m in
  for _ = 1 to 9 do
    let p = scheme.Runtime.Scheme.malloc 32 in
    scheme.Runtime.Scheme.free p
  done;
  (* The allocator's own mmap syscalls are samplable too, so pin the
     relationship rather than an exact count. *)
  let seen = Telemetry.Sink.seen sink in
  check_bool "saw at least the 18 heap events" true (seen >= 18);
  check_int "recorded every third" ((seen + 2) / 3)
    (Telemetry.Sink.recorded sink)

(* ---- Exporters ---- *)

let traced_events () =
  let sink = Telemetry.Sink.create () in
  let m = Vmm.Machine.create ~trace:sink () in
  let scheme = Runtime.Schemes.shadow_pool m in
  let p = scheme.Runtime.Scheme.malloc ~site:"x.c:9" 128 in
  scheme.Runtime.Scheme.store p ~width:8 1;
  scheme.Runtime.Scheme.free p;
  Telemetry.Sink.events sink

let test_jsonl_well_formed () =
  let events = traced_events () in
  check_bool "has events" true (events <> []);
  let lines =
    String.split_on_char '\n' (String.trim (Telemetry.Export.to_jsonl events))
  in
  check_int "one line per event" (List.length events) (List.length lines);
  List.iter
    (fun line ->
      match Telemetry.Json.of_string line with
      | Error e -> Alcotest.fail ("bad JSONL line: " ^ e ^ ": " ^ line)
      | Ok j ->
        check_bool "has type" true (Telemetry.Json.member "type" j <> None);
        check_bool "has cycles" true (Telemetry.Json.member "cycles" j <> None))
    lines

let test_chrome_trace_well_formed () =
  let events = traced_events () in
  match Telemetry.Json.of_string (Telemetry.Export.to_chrome_string events) with
  | Error e -> Alcotest.fail ("chrome trace does not parse: " ^ e)
  | Ok j ->
    (match Telemetry.Json.member "traceEvents" j with
     | Some (Telemetry.Json.List items) ->
       check_int "one trace event per event" (List.length events)
         (List.length items);
       List.iter
         (fun item ->
           check (Alcotest.option Alcotest.string) "instant phase"
             (Some "i")
             (match Telemetry.Json.member "ph" item with
              | Some (Telemetry.Json.String s) -> Some s
              | _ -> None);
           List.iter
             (fun k ->
               check_bool ("has " ^ k) true
                 (Telemetry.Json.member k item <> None))
             [ "name"; "cat"; "ts"; "pid"; "tid"; "args" ])
         items
     | _ -> Alcotest.fail "traceEvents missing")

let test_json_roundtrip =
  QCheck.Test.make ~count:200 ~name:"json print/parse round-trip"
    QCheck.(
      list_of_size Gen.(0 -- 8)
        (pair (string_of_size Gen.(0 -- 6)) small_signed_int))
    (fun fields ->
      let j =
        Telemetry.Json.Obj
          (List.map (fun (k, v) -> (k, Telemetry.Json.Int v)) fields)
      in
      (* duplicate keys are legal JSON but not round-trippable *)
      QCheck.assume
        (List.length fields
         = List.length (List.sort_uniq compare (List.map fst fields)));
      match Telemetry.Json.of_string (Telemetry.Json.to_string j) with
      | Ok j' -> j = j'
      | Error _ -> false)

let () =
  Alcotest.run "telemetry"
    [
      ( "ring",
        [
          Alcotest.test_case "basic" `Quick test_ring_basic;
          Alcotest.test_case "wraparound" `Quick test_ring_wraparound;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "counts and extrema" `Quick test_histogram_counts;
          QCheck_alcotest.to_alcotest test_histogram_percentile_matches_oracle;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "registry" `Quick test_metrics_registry;
          Alcotest.test_case "json export parses" `Quick
            test_metrics_json_parses;
        ] );
      ( "stats-shim",
        [ Alcotest.test_case "round-trip" `Quick test_stats_roundtrip ] );
      ( "sink",
        [
          Alcotest.test_case "disabled records nothing" `Quick
            test_disabled_sink_records_nothing;
          Alcotest.test_case "alloc/free/fault ordering" `Quick
            test_traced_alloc_free_fault_ordering;
          Alcotest.test_case "sampling" `Quick test_sampling;
        ] );
      ( "export",
        [
          Alcotest.test_case "jsonl" `Quick test_jsonl_well_formed;
          Alcotest.test_case "chrome trace" `Quick
            test_chrome_trace_well_formed;
          QCheck_alcotest.to_alcotest test_json_roundtrip;
        ] );
    ]
