(* The conservative GC over freed shadow ranges and its endurance
   plumbing: mark-phase witnesses (root, interior pointer, stale heap
   word) must pin, unreferenced ranges must be reclaimed with coalesced
   batched munmaps and forgotten by the registry, pinned ranges must be
   re-scanned and released once their witness dies, Va_budget must
   classify pressure levels and project exhaustion, and the reuse
   policy's after-free hook must fire on the eager AND the epoch
   retirement free path. *)

open Vmm

let check_int = Alcotest.check Alcotest.int
let check_bool = Alcotest.check Alcotest.bool

let snapshot m = Stats.snapshot m.Machine.stats

(* A pool with no recycler: reclaims go through the (counted) munmap
   syscall path. *)
let make_pool ?unmap ?recycler () =
  let m = Machine.create () in
  let registry = Shadow.Object_registry.create () in
  let pool = Shadow.Shadow_pool.create ?unmap ?recycler ~registry m in
  (m, registry, pool)

let guarded_load registry m addr =
  Shadow.Detector.guard registry ~in_free:false (fun () ->
      Mmu.load m addr ~width:8)

let expect_trap name registry m addr =
  match guarded_load registry m addr with
  | v -> Alcotest.failf "%s: dangling load returned %d" name v
  | exception Shadow.Report.Violation _ -> ()

(* ---- mark-phase witnesses ---- *)

let test_register_root_pins () =
  let m, registry, pool = make_pool () in
  let roots = Roots.create () in
  let gc = Shadow.Gc.create ~roots pool in
  let a = Shadow.Shadow_pool.alloc pool ~site:"gc.c:1" 48 in
  Mmu.store m a ~width:8 7;
  Shadow.Shadow_pool.free pool ~site:"gc.c:2" a;
  Roots.set_register roots 3 a;
  let r = Shadow.Gc.run gc in
  check_int "no reclaim with a live register root" 0 r.Shadow.Gc.reclaimed_pages;
  check_int "one pinned range" 1 (List.length r.Shadow.Gc.pinned);
  (match r.Shadow.Gc.pinned with
   | [ p ] ->
     check_bool "witness names the register" true
       (p.Shadow.Gc.p_witness.Shadow.Gc.w_source = "register[3]")
   | _ -> Alcotest.fail "expected exactly one pinned range");
  (* the pinned range still traps: the guarantee survived the GC *)
  expect_trap "pinned probe" registry m a;
  check_bool "range still in the freed set" true
    (Shadow.Shadow_pool.freed_ranges pool <> [])

let test_interior_pointer_pins () =
  let m, _registry, pool = make_pool () in
  let roots = Roots.create () in
  let gc = Shadow.Gc.create ~roots pool in
  let a = Shadow.Shadow_pool.alloc pool ~site:"gc.c:3" 64 in
  Mmu.store m a ~width:8 7;
  Shadow.Shadow_pool.free pool ~site:"gc.c:4" a;
  (* an interior pointer — past the base, inside the object *)
  Roots.push_stack roots (a + 24);
  let r = Shadow.Gc.run gc in
  check_int "interior pointer pins" 1 (List.length r.Shadow.Gc.pinned);
  check_int "nothing reclaimed" 0 r.Shadow.Gc.reclaimed_pages

let test_stale_heap_word_pins () =
  let m, _registry, pool = make_pool () in
  let roots = Roots.create () in
  let gc = Shadow.Gc.create ~roots pool in
  let keeper = Shadow.Shadow_pool.alloc pool ~site:"gc.c:5" 64 in
  let victim = Shadow.Shadow_pool.alloc pool ~site:"gc.c:6" 48 in
  (* a live object's heap word holds the dying pointer *)
  Mmu.store m (keeper + 16) ~width:8 victim;
  Shadow.Shadow_pool.free pool ~site:"gc.c:7" victim;
  let r = Shadow.Gc.run gc in
  check_int "stale heap word pins" 1 (List.length r.Shadow.Gc.pinned);
  (match r.Shadow.Gc.pinned with
   | [ p ] ->
     check_bool "witness is a heap word" true
       (String.length p.Shadow.Gc.p_witness.Shadow.Gc.w_source >= 5
        && String.sub p.Shadow.Gc.p_witness.Shadow.Gc.w_source 0 5 = "heap:");
     check_bool "witness records the word address" true
       (p.Shadow.Gc.p_witness.Shadow.Gc.w_word_addr = Some (keeper + 16))
   | _ -> Alcotest.fail "expected exactly one pinned range");
  (* clear the heap word: the next run reclaims *)
  Mmu.store m (keeper + 16) ~width:8 0;
  let r2 = Shadow.Gc.run gc in
  check_int "unpinned after the word is cleared" 0
    (List.length r2.Shadow.Gc.pinned);
  check_bool "now reclaimed" true (r2.Shadow.Gc.reclaimed_pages > 0)

let test_no_witness_reclaims () =
  let m, registry, pool = make_pool () in
  let roots = Roots.create () in
  let gc = Shadow.Gc.create ~roots pool in
  let a = Shadow.Shadow_pool.alloc pool ~site:"gc.c:8" 48 in
  Mmu.store m a ~width:8 7;
  Shadow.Shadow_pool.free pool ~site:"gc.c:9" a;
  let freed_before = Shadow.Shadow_pool.freed_shadow_pages pool in
  check_bool "pages retained before the run" true (freed_before > 0);
  let r = Shadow.Gc.run gc in
  check_int "no pins" 0 (List.length r.Shadow.Gc.pinned);
  check_int "all freed pages reclaimed" freed_before r.Shadow.Gc.reclaimed_pages;
  check_int "freed set drained" 0 (Shadow.Shadow_pool.freed_shadow_pages pool);
  (* the diagnostic record is gone with the range *)
  check_bool "registry forgot the object" true
    (Shadow.Object_registry.find_by_addr registry a = None)

let test_pinned_rescan_then_reclaim () =
  let m, _registry, pool = make_pool () in
  let roots = Roots.create () in
  let gc = Shadow.Gc.create ~roots pool in
  let a = Shadow.Shadow_pool.alloc pool ~site:"gc.c:10" 48 in
  Mmu.store m a ~width:8 7;
  Shadow.Shadow_pool.free pool ~site:"gc.c:11" a;
  Roots.set_global roots ~slot:0 a;
  let r1 = Shadow.Gc.run gc in
  check_int "pinned while rooted" 1 (List.length r1.Shadow.Gc.pinned);
  let r2 = Shadow.Gc.run gc in
  check_int "still pinned on re-scan" 1 (List.length r2.Shadow.Gc.pinned);
  check_int "still nothing reclaimed" 0 r2.Shadow.Gc.reclaimed_pages;
  Roots.clear_global roots ~slot:0;
  let r3 = Shadow.Gc.run gc in
  check_int "released once the root died" 0 (List.length r3.Shadow.Gc.pinned);
  check_bool "pages reclaimed" true (r3.Shadow.Gc.reclaimed_pages > 0);
  check_int "nothing pinned anymore" 0 (List.length (Shadow.Gc.last_pinned gc))

(* ---- batched munmap on the reclaim path ---- *)

let test_reclaim_coalesces_munmap () =
  let m, _registry, pool = make_pool () in
  let roots = Roots.create () in
  let gc = Shadow.Gc.create ~roots pool in
  (* adjacent single-page shadow ranges: elem_size-default pool places
     consecutive allocations on consecutive shadow pages *)
  let objs =
    List.init 4 (fun i -> Shadow.Shadow_pool.alloc pool ~site:"gc.c:12" (40 + i))
  in
  List.iter (fun a -> Mmu.store m a ~width:8 1) objs;
  List.iter (fun a -> Shadow.Shadow_pool.free pool ~site:"gc.c:13" a) objs;
  let ranges = Shadow.Shadow_pool.freed_ranges pool in
  check_int "four candidate ranges" 4 (List.length ranges);
  let runs = Syscalls.coalesce_ranges ranges in
  let before = (snapshot m).Stats.syscalls_munmap in
  let r = Shadow.Gc.run gc in
  let after = (snapshot m).Stats.syscalls_munmap in
  check_bool "reclaimed all four" true (r.Shadow.Gc.reclaimed_pages >= 4);
  check_int "one munmap per merged run, not per range" (List.length runs)
    (after - before);
  check_bool "fewer syscalls than ranges" true (after - before < 4)

let test_reclaim_recycler_no_syscall () =
  let recycler = Apa.Page_recycler.create () in
  let m, _registry, pool = make_pool ~recycler () in
  let roots = Roots.create () in
  let gc = Shadow.Gc.create ~roots pool in
  let a = Shadow.Shadow_pool.alloc pool ~site:"gc.c:14" 48 in
  Mmu.store m a ~width:8 1;
  Shadow.Shadow_pool.free pool ~site:"gc.c:15" a;
  let before = (snapshot m).Stats.syscalls_munmap in
  let r = Shadow.Gc.run gc in
  check_bool "reclaimed through the recycler" true
    (r.Shadow.Gc.reclaimed_pages > 0);
  check_int "no munmap when pages go to the free list" before
    (snapshot m).Stats.syscalls_munmap

(* ---- Va_budget ---- *)

let test_va_budget_levels () =
  let m = Machine.create () in
  let b = Shadow.Va_budget.create ~budget_pages:100 m in
  check_bool "fresh machine is ok" true
    (Shadow.Va_budget.poll b = Shadow.Va_budget.L_ok);
  (* burn VA through the kernel: watermarks are 50/75/90 *)
  let burn pages = ignore (Kernel.mmap m ~pages : Addr.t) in
  let expect_level name want =
    Alcotest.check Alcotest.string name
      (Shadow.Va_budget.level_label want)
      (Shadow.Va_budget.level_label (Shadow.Va_budget.poll b))
  in
  burn 50;
  expect_level "50% advises gc" Shadow.Va_budget.L_gc;
  burn 25;
  expect_level "75% tightens" Shadow.Va_budget.L_tighten;
  burn 15;
  expect_level "90% degrades" Shadow.Va_budget.L_degrade;
  check_int "remaining" 10 (Shadow.Va_budget.remaining_pages b);
  (* one transition per crossing, in order *)
  let levels =
    List.map
      (fun (tr : Shadow.Va_budget.transition) ->
        Shadow.Va_budget.level_label tr.Shadow.Va_budget.to_level)
      (Shadow.Va_budget.transitions b)
  in
  check_bool "ordered transitions" true (levels = [ "gc"; "tighten"; "degrade" ]);
  burn 10;
  check_int "used never exceeds accounting" 100 (Shadow.Va_budget.used_pages b);
  check_int "remaining floors at zero" 0 (Shadow.Va_budget.remaining_pages b)

let test_va_budget_projection () =
  let m = Machine.create () in
  let b = Shadow.Va_budget.create ~budget_pages:1000 m in
  ignore (Kernel.mmap m ~pages:100 : Addr.t);
  (* 900 pages left at 9 pages/s = 100 s *)
  (match Shadow.Va_budget.seconds_until_exhaustion b ~pages_per_second:9.0 with
   | Some s -> Alcotest.check (Alcotest.float 1e-6) "projection" 100.0 s
   | None -> Alcotest.fail "finite rate must project");
  check_bool "zero rate never exhausts" true
    (Shadow.Va_budget.seconds_until_exhaustion b ~pages_per_second:0.0 = None);
  check_bool "negative rate rejected" true
    (match Shadow.Va_budget.seconds_until_exhaustion b ~pages_per_second:(-1.0) with
     | exception Invalid_argument _ -> true
     | _ -> false);
  ignore (Kernel.mmap m ~pages:900 : Addr.t);
  check_bool "already exhausted projects zero" true
    (Shadow.Va_budget.seconds_until_exhaustion b ~pages_per_second:5.0 = Some 0.);
  check_bool "invalid watermarks rejected" true
    (match
       Shadow.Va_budget.create
         ~config:
           {
             Shadow.Va_budget.budget_pages = 10;
             gc_watermark = 0.9;
             tighten_watermark = 0.5;
             degrade_watermark = 0.95;
           }
         ~budget_pages:10 m
     with
     | exception Invalid_argument _ -> true
     | _ -> false)

(* ---- the after-free hook: eager and epoch paths ---- *)

let test_hook_fires_on_eager_free () =
  let m = Machine.create () in
  let scheme = Runtime.Schemes.shadow_pool m in
  let pool =
    match Runtime.Schemes.introspect scheme with
    | Runtime.Schemes.Shadow_pool { global; _ } -> global
    | _ -> Alcotest.fail "no introspection"
  in
  let policy =
    Shadow.Reuse_policy.create
      (Shadow.Reuse_policy.Interval_reuse { trigger_pages = 1 })
      pool
  in
  Shadow.Reuse_policy.attach policy;
  let a = scheme.Runtime.Scheme.malloc ~site:"hook.c:1" 48 in
  scheme.Runtime.Scheme.store a ~width:8 1;
  scheme.Runtime.Scheme.free ~site:"hook.c:2" a;
  (* trigger 1: the hook must have fired and reclaimed on this free *)
  check_bool "eager free ran the policy" true
    (Shadow.Reuse_policy.reclaimed_pages policy > 0)

let test_hook_fires_on_epoch_retirement () =
  let m = Machine.create () in
  let scheme = Runtime.Schemes.shadow_pool_epoch
      ~config:{ Runtime.Schemes.default_epoch_config with max_frees = 4 } m in
  let pool =
    match Runtime.Schemes.introspect scheme with
    | Runtime.Schemes.Shadow_pool_epoch { global; _ } -> global
    | _ -> Alcotest.fail "no introspection"
  in
  let policy =
    Shadow.Reuse_policy.create
      (Shadow.Reuse_policy.Interval_reuse { trigger_pages = 1 })
      pool
  in
  Shadow.Reuse_policy.attach policy;
  let objs =
    List.init 3 (fun i ->
        let a = scheme.Runtime.Scheme.malloc ~site:"hook.c:3" (40 + i) in
        scheme.Runtime.Scheme.store a ~width:8 i;
        a)
  in
  List.iter (fun a -> scheme.Runtime.Scheme.free ~site:"hook.c:4" a) objs;
  (* quarantined, not yet retired: the deferred frees must NOT have run
     the reclamation hook *)
  check_int "no reclamation while quarantined" 0
    (Shadow.Reuse_policy.reclaimed_pages policy);
  (* the 4th free fills the epoch and retires it *)
  let last = scheme.Runtime.Scheme.malloc ~site:"hook.c:5" 48 in
  scheme.Runtime.Scheme.store last ~width:8 9;
  scheme.Runtime.Scheme.free ~site:"hook.c:6" last;
  check_bool "epoch retirement ran the policy" true
    (Shadow.Reuse_policy.reclaimed_pages policy > 0)

let test_trigger_tightening_caps () =
  let _, _, pool = make_pool () in
  let policy =
    Shadow.Reuse_policy.create
      (Shadow.Reuse_policy.Interval_reuse { trigger_pages = 64 })
      pool
  in
  check_bool "configured trigger" true
    (Shadow.Reuse_policy.trigger_pages policy = Some 64);
  Shadow.Reuse_policy.set_trigger_pages policy 16;
  check_bool "tightened" true
    (Shadow.Reuse_policy.trigger_pages policy = Some 16);
  Shadow.Reuse_policy.set_trigger_pages policy 256;
  check_bool "cannot loosen past the configured trigger" true
    (Shadow.Reuse_policy.trigger_pages policy = Some 64);
  check_bool "non-positive rejected" true
    (match Shadow.Reuse_policy.set_trigger_pages policy 0 with
     | exception Invalid_argument _ -> true
     | _ -> false);
  let manual = Shadow.Reuse_policy.create Shadow.Reuse_policy.Manual pool in
  Shadow.Reuse_policy.set_trigger_pages manual 8;
  check_bool "manual has no trigger" true
    (Shadow.Reuse_policy.trigger_pages manual = None)

(* ---- gc metrics ---- *)

let test_gc_metrics_and_event () =
  let m, _registry, pool = make_pool () in
  let roots = Roots.create () in
  let gc = Shadow.Gc.create ~roots pool in
  let a = Shadow.Shadow_pool.alloc pool ~site:"gc.c:16" 48 in
  Mmu.store m a ~width:8 1;
  Shadow.Shadow_pool.free pool ~site:"gc.c:17" a;
  let b = Shadow.Shadow_pool.alloc pool ~site:"gc.c:18" 48 in
  Mmu.store m b ~width:8 1;
  Shadow.Shadow_pool.free pool ~site:"gc.c:19" b;
  Roots.set_register roots 0 b;
  ignore (Shadow.Gc.run gc : Shadow.Gc.report);
  let registry = Stats.registry m.Machine.stats in
  let gauge name =
    int_of_float
      (Telemetry.Metrics.gauge_value (Telemetry.Metrics.gauge registry name))
  in
  check_bool "va_pages_reclaimed gauge moved" true
    (gauge "shadow.va_pages_reclaimed" > 0);
  check_int "gc_pinned_ranges gauge" 1 (gauge "shadow.gc_pinned_ranges");
  check_bool "scan cost charged" true (Shadow.Gc.total_scanned_words gc > 0);
  check_int "runs counted" 1 (Shadow.Gc.runs gc)

let () =
  Alcotest.run "gc"
    [
      ( "mark-phase",
        [
          Alcotest.test_case "register root pins" `Quick test_register_root_pins;
          Alcotest.test_case "interior pointer pins" `Quick
            test_interior_pointer_pins;
          Alcotest.test_case "stale heap word pins" `Quick
            test_stale_heap_word_pins;
          Alcotest.test_case "no witness reclaims" `Quick test_no_witness_reclaims;
          Alcotest.test_case "pinned re-scan then reclaim" `Quick
            test_pinned_rescan_then_reclaim;
        ] );
      ( "reclaim-batching",
        [
          Alcotest.test_case "coalesced munmap" `Quick
            test_reclaim_coalesces_munmap;
          Alcotest.test_case "recycler path has no syscall" `Quick
            test_reclaim_recycler_no_syscall;
        ] );
      ( "va-budget",
        [
          Alcotest.test_case "watermark levels" `Quick test_va_budget_levels;
          Alcotest.test_case "exhaustion projection" `Quick
            test_va_budget_projection;
        ] );
      ( "after-free-hook",
        [
          Alcotest.test_case "eager free fires" `Quick test_hook_fires_on_eager_free;
          Alcotest.test_case "epoch retirement fires" `Quick
            test_hook_fires_on_epoch_retirement;
          Alcotest.test_case "tightening caps at config" `Quick
            test_trigger_tightening_caps;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "gauges and counters" `Quick
            test_gc_metrics_and_event;
        ] );
    ]
