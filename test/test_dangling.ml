(* Tests for the static dangling-pointer analysis stack: CFG
   construction, verdict unit tests, the pretty-printer round trip, the
   pinned JSON goldens behind `danguard lint --json`, and the
   differential soundness oracle — generated MiniC programs with seeded
   temporal bugs, run under the shadow schemes with the violation hook,
   checking that every dynamic violation lands on a May/Must site and
   that protection elision never loses a detection. *)

let check_int = Alcotest.check Alcotest.int
let check_bool = Alcotest.check Alcotest.bool
let check_string = Alcotest.check Alcotest.string
let parse = Minic.Parser.parse

let sample_file dir name =
  let path = Filename.concat (Filename.concat "../../.." dir) name in
  let path = if Sys.file_exists path then path else Filename.concat dir name in
  In_channel.with_open_text path In_channel.input_all

let find_func (p : Minic.Ast.program) fname =
  List.find (fun (f : Minic.Ast.func) -> f.Minic.Ast.name = fname)
    p.Minic.Ast.funcs

(* ---- CFG construction ---- *)

(* succ/pred symmetry: s is a successor of b iff b is a predecessor of
   s — for every block, reachable or not. *)
let check_cfg_consistent (cfg : Minic.Cfg.t) =
  Array.iter
    (fun (b : Minic.Cfg.block) ->
      List.iter
        (fun s ->
          check_bool
            (Printf.sprintf "pred of succ %d->%d" b.Minic.Cfg.id s)
            true
            (List.mem b.Minic.Cfg.id cfg.Minic.Cfg.blocks.(s).Minic.Cfg.preds))
        b.Minic.Cfg.succs;
      List.iter
        (fun pr ->
          check_bool
            (Printf.sprintf "succ of pred %d->%d" pr b.Minic.Cfg.id)
            true
            (List.mem b.Minic.Cfg.id cfg.Minic.Cfg.blocks.(pr).Minic.Cfg.succs))
        b.Minic.Cfg.preds)
    cfg.Minic.Cfg.blocks

let has_cycle (cfg : Minic.Cfg.t) =
  let n = Array.length cfg.Minic.Cfg.blocks in
  let visited = Array.make n false in
  let on_stack = Array.make n false in
  let rec dfs b =
    visited.(b) <- true;
    on_stack.(b) <- true;
    let cyc =
      List.exists
        (fun s -> on_stack.(s) || ((not visited.(s)) && dfs s))
        cfg.Minic.Cfg.blocks.(b).Minic.Cfg.succs
    in
    on_stack.(b) <- false;
    cyc
  in
  dfs cfg.Minic.Cfg.entry

let cfg_of src fname = Minic.Cfg.build (find_func (parse src) fname)

let test_cfg_linear () =
  let cfg = cfg_of "void main() { int x = 1; print(x); }" "main" in
  check_cfg_consistent cfg;
  let rpo = Minic.Cfg.rpo cfg in
  check_bool "entry first in rpo" true (List.hd rpo = cfg.Minic.Cfg.entry);
  check_bool "linear code is acyclic" false (has_cycle cfg);
  Array.iter
    (fun (b : Minic.Cfg.block) ->
      List.iter
        (fun i ->
          match i with
          | Minic.Cfg.Simple (Minic.Ast.If _ | Minic.Ast.While _) ->
            Alcotest.fail "structured statement survived flattening"
          | _ -> ())
        b.Minic.Cfg.instrs)
    cfg.Minic.Cfg.blocks

let test_cfg_if () =
  let cfg =
    cfg_of
      "void main() { int x = 1; if (x > 0) { print(1); } else { print(2); } \
       print(3); }"
      "main"
  in
  check_cfg_consistent cfg;
  check_bool "if is acyclic" false (has_cycle cfg);
  let branches =
    Array.to_list cfg.Minic.Cfg.blocks
    |> List.filter (fun (b : Minic.Cfg.block) ->
           List.length b.Minic.Cfg.succs = 2)
  in
  check_int "one two-way branch" 1 (List.length branches);
  let joins =
    Array.to_list cfg.Minic.Cfg.blocks
    |> List.filter (fun (b : Minic.Cfg.block) ->
           List.length b.Minic.Cfg.preds = 2)
  in
  check_int "one join block" 1 (List.length joins)

let test_cfg_while () =
  let cfg =
    cfg_of
      "void main() { int i = 0; while (i < 3) { i = i + 1; } print(i); }"
      "main"
  in
  check_cfg_consistent cfg;
  check_bool "loop has a back edge" true (has_cycle cfg);
  let rpo = Minic.Cfg.rpo cfg in
  check_bool "rpo covers the loop" true (List.length rpo >= 3)

let test_cfg_return_cuts () =
  let cfg =
    cfg_of "int f() { return 1; print(2); }" "f"
  in
  check_cfg_consistent cfg;
  let reachable = Minic.Cfg.rpo cfg in
  (* the return block ends the reachable region; the print after it is
     in an unreachable block that rpo omits *)
  check_bool "unreachable tail omitted" true
    (List.length reachable < Array.length cfg.Minic.Cfg.blocks);
  List.iter
    (fun b ->
      let blk = cfg.Minic.Cfg.blocks.(b) in
      let is_ret =
        List.exists
          (function
            | Minic.Cfg.Simple (Minic.Ast.Return _) -> true
            | _ -> false)
          blk.Minic.Cfg.instrs
      in
      if is_ret then check_int "return block has no succs" 0
          (List.length blk.Minic.Cfg.succs))
    reachable

(* ---- verdict unit tests ---- *)

let analyze src = Minic.Dangling.analyze (parse src)

let counts r = Minic.Dangling.count_findings r

let site_verdicts (r : Minic.Dangling.result) =
  List.map (fun (s : Minic.Dangling.site) -> s.Minic.Dangling.verdict)
    r.Minic.Dangling.sites

let test_verdict_straightline_safe () =
  let r = analyze (sample_file "examples/lint" "safe.mc") in
  let _, may, must = counts r in
  check_int "no may" 0 may;
  check_int "no must" 0 must;
  check_bool "all sites elidable" true
    (List.for_all (( = ) Minic.Dangling.Safe) (site_verdicts r))

let test_verdict_must_uaf () =
  let r = analyze (sample_file "examples/lint" "must_uaf.mc") in
  let _, _, must = counts r in
  check_int "one must" 1 must;
  check_bool "has_must" true (Minic.Dangling.has_must r);
  check_bool "site not elidable" true
    (site_verdicts r = [ Minic.Dangling.Must_uaf ])

let test_verdict_alias_may () =
  let r = analyze (sample_file "examples/lint" "may_alias.mc") in
  let _, may, must = counts r in
  check_int "one may via alias" 1 may;
  check_int "no must" 0 must;
  check_bool "site keeps protection" true
    (site_verdicts r = [ Minic.Dangling.May_uaf ])

let test_verdict_double_free () =
  let r = analyze (sample_file "examples/lint" "double_free.mc") in
  let must_frees =
    List.filter
      (fun (fd : Minic.Dangling.finding) ->
        fd.Minic.Dangling.kind = Minic.Dangling.Free_op
        && fd.Minic.Dangling.verdict = Minic.Dangling.Must_uaf)
      r.Minic.Dangling.findings
  in
  check_int "double free is a must free-op" 1 (List.length must_frees)

(* Reallocation in a loop: the variable is rebound to a fresh object of
   the same site each iteration, so its uses stay Safe even though the
   class has seen frees — the freshness escape hatch. *)
let test_verdict_loop_fresh () =
  let r =
    analyze
      {|
struct s { int v; }
void main() {
  int i = 0;
  int acc = 0;
  while (i < 4) {
    struct s *tmp = malloc(struct s);
    tmp->v = i;
    acc = acc + tmp->v;
    free(tmp);
    i = i + 1;
  }
  print(acc);
}
|}
  in
  let _, may, must = counts r in
  check_int "no may" 0 may;
  check_int "no must" 0 must;
  check_bool "loop site elidable" true
    (site_verdicts r = [ Minic.Dangling.Safe ])

(* A callee that frees its argument poisons the caller's pointer: the
   interprocedural may-free summary makes the later deref a May. *)
let test_verdict_interproc_free () =
  let r =
    analyze
      {|
struct s { int v; }
void kill(struct s *p) { free(p); }
void main() {
  struct s *x = malloc(struct s);
  x->v = 1;
  kill(x);
  print(x->v);
}
|}
  in
  let _, may, must = counts r in
  check_bool "deref after callee free flagged" true (may + must >= 1);
  check_bool "site not elidable" true
    (site_verdicts r <> [ Minic.Dangling.Safe ])

(* The free two call levels below the use (main -> kill2 -> kill ->
   free): the may-free summary must propagate transitively through the
   chain, not just one level (regression for a summary-union bug that
   made these uses look Safe and the site elidable). *)
let test_verdict_transitive_free () =
  let r =
    analyze
      {|
struct s { int v; }
void kill(struct s *p) { free(p); }
void kill2(struct s *p) { kill(p); }
void kill3(struct s *p) { kill2(p); }
void main() {
  struct s *x = malloc(struct s);
  x->v = 1;
  kill3(x);
  print(x->v);
}
|}
  in
  let _, may, must = counts r in
  check_bool "deref after deep callee free flagged" true (may + must >= 1);
  check_bool "site not elidable" true
    (site_verdicts r <> [ Minic.Dangling.Safe ])

(* Branch-dependent free: freed on one path only, so the use after the
   join is May, not Must. *)
let test_verdict_branch_may () =
  let r =
    analyze
      {|
struct s { int v; }
void main() {
  struct s *p = malloc(struct s);
  p->v = 1;
  if (p->v > 0) { free(p); } else { p->v = 2; }
  print(p->v);
}
|}
  in
  let may_derefs =
    List.filter
      (fun (fd : Minic.Dangling.finding) ->
        fd.Minic.Dangling.kind = Minic.Dangling.Deref
        && fd.Minic.Dangling.verdict = Minic.Dangling.May_uaf)
      r.Minic.Dangling.findings
  in
  let _, _, must = counts r in
  check_bool "join makes it may" true (List.length may_derefs >= 1);
  check_int "not must" 0 must

(* The paper's Figure 1: the seeded bug (deref of the freed second node
   in f) must be flagged, while f's own head allocation stays Safe. *)
let test_verdict_figure1 () =
  let r = analyze (sample_file "examples/programs" "figure1.mc") in
  let _, may, must = counts r in
  check_bool "figure1 bug flagged" true (may + must >= 1);
  check_bool "some site still elidable" true
    (List.exists (( = ) Minic.Dangling.Safe) (site_verdicts r));
  check_bool "the list class is not elidable" true
    (List.exists (( <> ) Minic.Dangling.Safe) (site_verdicts r))

(* Field sensitivity: freeing the object behind s->a must not poison
   the read through s->b.  The collapsed-field Steensgaard engine
   merges the two fields and reports a spurious May; the default DSA
   engine keeps them separate and everything is Safe — the regression
   fixture for the field-insensitivity false positive. *)
let test_verdict_field_disjoint () =
  let src = sample_file "examples/lint" "field_disjoint.mc" in
  let dsa = Minic.Dangling.analyze ~engine:`Dsa (parse src) in
  let _, may, must = counts dsa in
  check_int "dsa: no may" 0 may;
  check_int "dsa: no must" 0 must;
  check_bool "dsa: all sites elidable" true
    (List.for_all (( = ) Minic.Dangling.Safe) (site_verdicts dsa));
  let steens = Minic.Dangling.analyze ~engine:`Steensgaard (parse src) in
  let _, smay, smust = counts steens in
  check_bool "steensgaard: collapsed fields raise a spurious may" true
    (smay + smust >= 1)

(* ---- satellite 6: typed layout errors ---- *)

let test_layout_errors_typed () =
  (match Minic.Ast.struct_size { structs = []; globals = []; funcs = [] } "nope"
   with
   | _ -> Alcotest.fail "unknown struct should raise"
   | exception Minic.Ast.Semantic_error _ -> ());
  match
    Minic.Ast.field_index
      { structs = [ ("s", [ (Minic.Ast.Tint, "v") ]) ]; globals = []; funcs = [] }
      "s" "missing"
  with
  | _ -> Alcotest.fail "unknown field should raise"
  | exception Minic.Ast.Semantic_error _ -> ()

(* ---- satellite 2: pretty-printer round trip ---- *)

let roundtrip_ok src =
  let p = parse src in
  let reparsed = parse (Minic.Pretty.program_to_string p) in
  Minic.Ast.strip_positions reparsed = Minic.Ast.strip_positions p

let test_roundtrip_examples () =
  List.iter
    (fun (dir, name) ->
      check_bool (name ^ " round-trips") true
        (roundtrip_ok (sample_file dir name)))
    [
      ("examples/programs", "figure1.mc");
      ("examples/programs", "matrix.mc");
      ("examples/programs", "server_session.mc");
      ("examples/lint", "safe.mc");
      ("examples/lint", "must_uaf.mc");
      ("examples/lint", "may_alias.mc");
      ("examples/lint", "double_free.mc");
      ("examples/lint", "deep_free.mc");
      ("examples/lint", "field_disjoint.mc");
    ]

(* ---- golden files for `danguard lint --json` ---- *)

let test_lint_goldens () =
  List.iter
    (fun name ->
      let src = sample_file "examples/lint" (name ^ ".mc") in
      let expected = sample_file "examples/lint" (name ^ ".expected.json") in
      let d =
        Minic.Diagnostics.make
          ~file:(Filename.concat "examples/lint" (name ^ ".mc"))
          (Minic.Dangling.analyze (parse src))
      in
      check_string (name ^ " golden json")
        expected
        (Telemetry.Json.to_string_pretty (Minic.Diagnostics.to_json d) ^ "\n"))
    [
      "safe"; "must_uaf"; "may_alias"; "double_free"; "deep_free";
      "field_disjoint";
    ]

(* SARIF output is interchange format: its shape is a contract with
   external consumers, so it gets its own golden. *)
let test_lint_sarif_golden () =
  let src = sample_file "examples/lint" "must_uaf.mc" in
  let expected = sample_file "examples/lint" "must_uaf.expected.sarif" in
  let d =
    Minic.Diagnostics.make
      ~file:(Filename.concat "examples/lint" "must_uaf.mc")
      (Minic.Dangling.analyze (parse src))
  in
  check_string "must_uaf golden sarif" expected
    (Telemetry.Json.to_string_pretty (Minic.Diagnostics.to_sarif d) ^ "\n")

let test_lint_exit_codes () =
  let code name =
    let src = sample_file "examples/lint" (name ^ ".mc") in
    Minic.Diagnostics.exit_code
      (Minic.Diagnostics.make ~file:name (Minic.Dangling.analyze (parse src)))
  in
  check_int "safe exits 0" 0 (code "safe");
  check_int "field disjoint exits 0" 0 (code "field_disjoint");
  check_int "may exits 0" 0 (code "may_alias");
  check_int "deep free exits 0" 0 (code "deep_free");
  check_int "must exits 3" 3 (code "must_uaf");
  check_int "double free exits 3" 3 (code "double_free")

(* ---- the differential soundness oracle ---- *)

type seeded_bug = No_bug | Use_after_release | Must_uaf_bug | Double_free_bug

let bug_label = function
  | No_bug -> "none"
  | Use_after_release -> "use-after-release"
  | Must_uaf_bug -> "must-uaf"
  | Double_free_bug -> "double-free"

let victim_tail b bug =
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  match bug with
  | No_bug | Use_after_release -> ()
  | Must_uaf_bug ->
    add "  struct node *victim = malloc(struct node);";
    add "  victim->v = 7;";
    add "  free(victim);";
    add "  print(victim->v);"
  | Double_free_bug ->
    add "  struct node *victim = malloc(struct node);";
    add "  victim->v = 7;";
    add "  free(victim);";
    add "  free(victim);"

(* List-shaped program: heap-carried pointers and a release loop, which
   the analysis conservatively marks May (nothing elided). *)
let gen_list_program ~n ~seed ~bug =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  add "struct node { int v; struct node *next; }";
  add "struct node *build(int n, int seed) {";
  add "  struct node *head = null;";
  add "  int i = 0;";
  add "  while (i < n) {";
  add "    struct node *fresh = malloc(struct node);";
  add "    fresh->v = seed + i;";
  add "    fresh->next = head;";
  add "    head = fresh;";
  add "    i = i + 1;";
  add "  }";
  add "  return head;";
  add "}";
  add "int total(struct node *head) {";
  add "  int acc = 0;";
  add "  struct node *cur = head;";
  add "  while (cur != null) { acc = acc + cur->v; cur = cur->next; }";
  add "  return acc;";
  add "}";
  add "void release(struct node *head) {";
  add "  struct node *cur = head;";
  add "  while (cur != null) {";
  add "    struct node *nxt = cur->next;";
  add "    free(cur);";
  add "    cur = nxt;";
  add "  }";
  add "}";
  add "void main() {";
  add "  struct node *l0 = build(%d, %d);" n seed;
  add "  print(total(l0));";
  add "  release(l0);";
  if bug = Use_after_release then add "  print(total(l0));";
  victim_tail b bug;
  add "}";
  Buffer.contents b

(* Scalar-shaped program: one object per iteration, freed before the
   next allocation — every use Safe, so the whole class is elidable. *)
let gen_scalar_program ~iters ~seed ~bug =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  add "struct node { int v; struct node *next; }";
  add "void main() {";
  add "  int acc = 0;";
  add "  int i = 0;";
  add "  while (i < %d) {" iters;
  add "    struct node *tmp = malloc(struct node);";
  add "    tmp->v = i + %d;" seed;
  add "    acc = acc + tmp->v;";
  add "    free(tmp);";
  add "    i = i + 1;";
  add "  }";
  add "  print(acc);";
  victim_tail b bug;
  add "}";
  Buffer.contents b

(* Deep-release variant of the list program: the frees happen two call
   levels below main (main -> release_outer -> release_inner -> free),
   so only transitive may-free summaries can keep main's later uses
   flagged.  Use_after_release is exactly the repro for the
   one-level-only propagation bug. *)
let gen_deep_free_program ~n ~seed ~bug =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  add "struct node { int v; struct node *next; }";
  add "struct node *build(int n, int seed) {";
  add "  struct node *head = null;";
  add "  int i = 0;";
  add "  while (i < n) {";
  add "    struct node *fresh = malloc(struct node);";
  add "    fresh->v = seed + i;";
  add "    fresh->next = head;";
  add "    head = fresh;";
  add "    i = i + 1;";
  add "  }";
  add "  return head;";
  add "}";
  add "int total(struct node *head) {";
  add "  int acc = 0;";
  add "  struct node *cur = head;";
  add "  while (cur != null) { acc = acc + cur->v; cur = cur->next; }";
  add "  return acc;";
  add "}";
  add "void release_inner(struct node *head) {";
  add "  struct node *cur = head;";
  add "  while (cur != null) {";
  add "    struct node *nxt = cur->next;";
  add "    free(cur);";
  add "    cur = nxt;";
  add "  }";
  add "}";
  add "void release_outer(struct node *head) { release_inner(head); }";
  add "void main() {";
  add "  struct node *l0 = build(%d, %d);" n seed;
  add "  print(total(l0));";
  add "  release_outer(l0);";
  if bug = Use_after_release then add "  print(total(l0));";
  victim_tail b bug;
  add "}";
  Buffer.contents b

(* Cross-function escape: the callee's allocation outlives its frame by
   escaping into a caller-owned struct, and the free happens in a second
   callee.  Exercises the DSA store/load field edges and the owner
   inference (the node pool must be hoisted to main, not fill). *)
let gen_escape_program ~n ~seed ~bug =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  add "struct node { int v; struct node *next; }";
  add "struct box { struct node *item; }";
  add "void fill(struct box *b, int v) {";
  add "  struct node *fresh = malloc(struct node);";
  add "  fresh->v = v;";
  add "  b->item = fresh;";
  add "}";
  add "int drain(struct box *b) {";
  add "  int v = b->item->v;";
  add "  free(b->item);";
  add "  return v;";
  add "}";
  add "void main() {";
  add "  struct box *holder = malloc(struct box);";
  add "  int acc = 0;";
  add "  int i = 0;";
  add "  while (i < %d) {" n;
  add "    fill(holder, %d + i);" seed;
  add "    acc = acc + drain(holder);";
  add "    i = i + 1;";
  add "  }";
  add "  print(acc);";
  if bug = Use_after_release then add "  print(holder->item->v);";
  add "  free(holder);";
  victim_tail b bug;
  add "}";
  Buffer.contents b

(* Conditional frees: every free sits under a branch, so the analysis
   can never prove Must at the free itself and the joins produce May
   states.  The [Use_after_release] variant reads after a conditional
   free whose guard is dynamically always true. *)
let gen_cond_free_program ~iters ~seed ~bug =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  add "struct node { int v; struct node *next; }";
  add "void main() {";
  add "  int acc = 0;";
  add "  int i = 0;";
  add "  while (i < %d) {" iters;
  add "    struct node *tmp = malloc(struct node);";
  add "    tmp->v = i + %d;" seed;
  add "    if (tmp->v %% 2 == 0) {";
  add "      free(tmp);";
  add "    } else {";
  add "      acc = acc + tmp->v;";
  add "      free(tmp);";
  add "    }";
  add "    i = i + 1;";
  add "  }";
  add "  struct node *keep = malloc(struct node);";
  add "  keep->v = %d;" seed;
  add "  if (keep->v < 1000) {";
  add "    free(keep);";
  add "  }";
  if bug = Use_after_release then add "  print(keep->v);";
  add "  print(acc);";
  victim_tail b bug;
  add "}";
  Buffer.contents b

(* Recursive structure: a binary tree built, summed and released by
   recursive functions.  The self-recursive calls cycle the callee
   graph, so owner-depth inference and transitive may-free summaries
   both have to converge on a cycle. *)
let gen_tree_program ~depth ~seed ~bug =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  add "struct node { int v; struct node *next; }";
  add "struct tree { int v; struct tree *left; struct tree *right; }";
  add "struct tree *build(int depth, int seed) {";
  add "  if (depth < 1) {";
  add "    return null;";
  add "  }";
  add "  struct tree *t = malloc(struct tree);";
  add "  t->v = seed + depth;";
  add "  t->left = build(depth - 1, seed);";
  add "  t->right = build(depth - 1, seed + depth);";
  add "  return t;";
  add "}";
  add "int total(struct tree *t) {";
  add "  if (t == null) {";
  add "    return 0;";
  add "  }";
  add "  return t->v + total(t->left) + total(t->right);";
  add "}";
  add "void release(struct tree *t) {";
  add "  if (t == null) {";
  add "    return;";
  add "  }";
  add "  release(t->left);";
  add "  release(t->right);";
  add "  free(t);";
  add "}";
  add "void main() {";
  add "  struct tree *t0 = build(%d, %d);" depth seed;
  add "  print(total(t0));";
  add "  release(t0);";
  if bug = Use_after_release then add "  print(total(t0));";
  victim_tail b bug;
  add "}";
  Buffer.contents b

let run_with_hook program scheme =
  let violations = ref [] in
  let hook ~fname ~pos (_ : Shadow.Report.t) =
    violations := (fname, pos) :: !violations
  in
  let outcome =
    match Minic.Interp.run ~on_violation:hook program scheme with
    | o -> Some o
    | exception Shadow.Report.Violation _ -> None
  in
  (outcome, List.rev !violations)

(* The soundness contract: a dynamic temporal violation may only happen
   at a use the analysis marked May or Must.  A violation at a
   Safe-marked use is a hole in the lattice and fails the suite. *)
let check_violations_covered ~ctx (r : Minic.Dangling.result) violations =
  List.iter
    (fun (fname, pos) ->
      let covered =
        List.exists
          (fun (fd : Minic.Dangling.finding) ->
            fd.Minic.Dangling.fname = fname
            && fd.Minic.Dangling.pos = pos
            && fd.Minic.Dangling.verdict <> Minic.Dangling.Safe)
          r.Minic.Dangling.findings
      in
      if not covered then
        Alcotest.failf
          "%s: dynamic violation at %s:%s hit a site the analysis marked Safe"
          ctx fname (Minic.Ast.pos_label pos))
    violations

let oracle_one ~ctx ~expect_elision source bug =
  let program = parse source in
  let r = Minic.Dangling.analyze program in
  let transformed, _ = Minic.Pool_transform.transform program in
  (* full scheme: every violation must be at a flagged use *)
  let _, viol_full =
    run_with_hook transformed
      (Runtime.Schemes.shadow_pool (Vmm.Machine.create ()))
  in
  check_violations_covered ~ctx:(ctx ^ "/full") r viol_full;
  (* epoch-batched scheme: deferred protection must not change what is
     detected or where — the violation list (site and order) must be
     exactly the eager scheme's, whether the use trapped in the MMU
     after retirement or hit the in-window software backstop *)
  let out_epoch, viol_epoch =
    run_with_hook transformed
      (Runtime.Schemes.shadow_pool_epoch (Vmm.Machine.create ()))
  in
  check_bool (ctx ^ ": epoch detections identical to eager scheme") true
    (viol_epoch = viol_full);
  (* static-elision scheme: same contract, plus detection must survive *)
  let static_scheme =
    Runtime.Schemes.shadow_pool_static
      ~config:{ Runtime.Schemes.elide = Minic.Dangling.elide_policy r }
      (Vmm.Machine.create ())
  in
  let stats () =
    match Runtime.Schemes.introspect static_scheme with
    | Runtime.Schemes.Shadow_pool_static { elision; _ } -> elision ()
    | _ -> assert false
  in
  let out_static, viol_static = run_with_hook transformed static_scheme in
  check_violations_covered ~ctx:(ctx ^ "/static") r viol_static;
  (* inferred-pool scheme over the DSA-driven transform: each inferred
     pool is a separate shadow pool whose destroy bulk-unmaps its VA, so
     a violation in a correct program here would mean an access after an
     inferred pool_destroy — the pool-lifetime soundness contract *)
  let inferred_transformed, _ = Minic.Poolify.transform program in
  let out_inferred, viol_inferred =
    run_with_hook inferred_transformed
      (Runtime.Schemes.shadow_pool_inferred (Vmm.Machine.create ()))
  in
  check_violations_covered ~ctx:(ctx ^ "/inferred") r viol_inferred;
  (* tagged backend: the pure-software generation check must detect
     exactly what the MMU-trap scheme detects, at the same sites in the
     same order.  The only permitted asymmetry is a tag-width
     wraparound, which the wide generation attributes exactly — any
     divergence must be covered by the recorded wrap passes. *)
  let tagged_scheme = Runtime.Schemes.tagged (Vmm.Machine.create ()) in
  let out_tagged, viol_tagged = run_with_hook transformed tagged_scheme in
  check_violations_covered ~ctx:(ctx ^ "/tagged") r viol_tagged;
  (if viol_tagged <> viol_full then
     let ts =
       match Runtime.Schemes.introspect tagged_scheme with
       | Runtime.Schemes.Tagged { table; _ } -> Tagging.Tag_table.stats table
       | _ -> assert false
     in
     let missing = List.length viol_full - List.length viol_tagged in
     if
       missing <= 0 || ts.Tagging.Tag_table.wrap_masked_passes < missing
       || not
            (List.for_all (fun v -> List.mem v viol_full) viol_tagged)
     then
       Alcotest.failf
         "%s: tagged detections differ from shadow without an attributing \
          wraparound (%d tagged vs %d shadow, %d wrap passes)"
         ctx (List.length viol_tagged) (List.length viol_full)
         ts.Tagging.Tag_table.wrap_masked_passes);
  (match bug with
   | No_bug ->
     if viol_full <> [] || viol_static <> [] then
       Alcotest.failf "%s: correct program raised a violation" ctx;
     if viol_inferred <> [] then
       Alcotest.failf
         "%s: correct program violated under inferred pools (access after \
          inferred pool destroy)"
         ctx;
     (match out_inferred with
      | Some _ -> ()
      | None -> Alcotest.failf "%s: correct program failed under inferred pools" ctx);
     let out_native, _ =
       run_with_hook transformed
         (Runtime.Schemes.native (Vmm.Machine.create ()))
     in
     (match (out_native, out_static) with
      | Some a, Some b ->
        check_bool (ctx ^ ": native/static outputs equal") true
          (a.Minic.Interp.prints = b.Minic.Interp.prints)
      | _ -> Alcotest.failf "%s: correct program failed to run" ctx);
     (match (out_native, out_epoch) with
      | Some a, Some b ->
        check_bool (ctx ^ ": native/epoch outputs equal") true
          (a.Minic.Interp.prints = b.Minic.Interp.prints)
      | _ -> Alcotest.failf "%s: correct program failed under epoch" ctx);
     (match (out_native, out_inferred) with
      | Some a, Some b ->
        check_bool (ctx ^ ": native/inferred outputs equal") true
          (a.Minic.Interp.prints = b.Minic.Interp.prints)
      | _ ->
        Alcotest.failf "%s: correct program failed under inferred pools" ctx);
     if viol_tagged <> [] then
       Alcotest.failf "%s: correct program violated under tagged backend" ctx;
     (match (out_native, out_tagged) with
      | Some a, Some b ->
        check_bool (ctx ^ ": native/tagged outputs equal") true
          (a.Minic.Interp.prints = b.Minic.Interp.prints)
      | _ ->
        Alcotest.failf "%s: correct program failed under tagged backend" ctx)
   | Use_after_release | Must_uaf_bug | Double_free_bug ->
     if viol_full = [] then
       Alcotest.failf "%s: seeded bug not detected under full scheme" ctx;
     if viol_static = [] then
       Alcotest.failf "%s: seeded bug not detected under static elision" ctx;
     if viol_inferred = [] then
       Alcotest.failf "%s: seeded bug not detected under inferred pools" ctx;
     if viol_tagged = [] then
       Alcotest.failf "%s: seeded bug not detected under tagged backend" ctx);
  (match bug with
   | Must_uaf_bug | Double_free_bug ->
     check_bool (ctx ^ ": lint reports the seeded must bug") true
       (Minic.Dangling.has_must r)
   | No_bug | Use_after_release -> ());
  let s = stats () in
  if expect_elision then
    check_bool (ctx ^ ": safe class elided") true
      (s.Runtime.Schemes.elided_allocs > 0);
  ignore out_static

let test_oracle () =
  let cases = ref 0 in
  for seed = 0 to 24 do
    List.iter
      (fun bug ->
        let n = 1 + (seed mod 7) in
        let ctx =
          Printf.sprintf "list n=%d seed=%d bug=%s" n seed (bug_label bug)
        in
        incr cases;
        oracle_one ~ctx ~expect_elision:false
          (gen_list_program ~n ~seed ~bug)
          bug)
      [ No_bug; Use_after_release; Must_uaf_bug; Double_free_bug ]
  done;
  for seed = 0 to 9 do
    List.iter
      (fun bug ->
        let n = 1 + (seed mod 5) in
        let ctx =
          Printf.sprintf "deep n=%d seed=%d bug=%s" n seed (bug_label bug)
        in
        incr cases;
        oracle_one ~ctx ~expect_elision:false
          (gen_deep_free_program ~n ~seed ~bug)
          bug)
      [ No_bug; Use_after_release; Must_uaf_bug; Double_free_bug ]
  done;
  for seed = 0 to 33 do
    List.iter
      (fun bug ->
        let iters = 1 + (seed mod 9) in
        let ctx =
          Printf.sprintf "scalar iters=%d seed=%d bug=%s" iters seed
            (bug_label bug)
        in
        incr cases;
        (* the per-iteration class is provably Safe, so elision must
           actually kick in — including alongside a detected bug *)
        oracle_one ~ctx ~expect_elision:true
          (gen_scalar_program ~iters ~seed ~bug)
          bug)
      [ No_bug; Must_uaf_bug; Double_free_bug ]
  done;
  for seed = 0 to 9 do
    List.iter
      (fun bug ->
        let n = 1 + (seed mod 4) in
        let ctx =
          Printf.sprintf "escape n=%d seed=%d bug=%s" n seed (bug_label bug)
        in
        incr cases;
        oracle_one ~ctx ~expect_elision:false
          (gen_escape_program ~n ~seed ~bug)
          bug)
      [ No_bug; Use_after_release; Must_uaf_bug; Double_free_bug ]
  done;
  for seed = 0 to 9 do
    List.iter
      (fun bug ->
        let iters = 1 + (seed mod 6) in
        let ctx =
          Printf.sprintf "cond iters=%d seed=%d bug=%s" iters seed
            (bug_label bug)
        in
        incr cases;
        oracle_one ~ctx ~expect_elision:false
          (gen_cond_free_program ~iters ~seed ~bug)
          bug)
      [ No_bug; Use_after_release; Must_uaf_bug; Double_free_bug ]
  done;
  for seed = 0 to 7 do
    List.iter
      (fun bug ->
        let depth = 1 + (seed mod 3) in
        let ctx =
          Printf.sprintf "tree depth=%d seed=%d bug=%s" depth seed
            (bug_label bug)
        in
        incr cases;
        oracle_one ~ctx ~expect_elision:false
          (gen_tree_program ~depth ~seed ~bug)
          bug)
      [ No_bug; Use_after_release; Must_uaf_bug; Double_free_bug ]
  done;
  check_bool "oracle covers at least 340 programs" true (!cases >= 340)

(* Round-trip over the oracle's generated space too. *)
let test_roundtrip_generated () =
  for seed = 0 to 9 do
    List.iter
      (fun bug ->
        check_bool "generated list program round-trips" true
          (roundtrip_ok (gen_list_program ~n:(1 + seed) ~seed ~bug));
        check_bool "generated scalar program round-trips" true
          (roundtrip_ok (gen_scalar_program ~iters:(1 + seed) ~seed ~bug));
        check_bool "generated deep-free program round-trips" true
          (roundtrip_ok (gen_deep_free_program ~n:(1 + seed) ~seed ~bug));
        check_bool "generated escape program round-trips" true
          (roundtrip_ok (gen_escape_program ~n:(1 + seed) ~seed ~bug));
        check_bool "generated cond-free program round-trips" true
          (roundtrip_ok (gen_cond_free_program ~iters:(1 + seed) ~seed ~bug));
        check_bool "generated tree program round-trips" true
          (roundtrip_ok (gen_tree_program ~depth:(1 + (seed mod 3)) ~seed ~bug)))
      [ No_bug; Use_after_release; Must_uaf_bug; Double_free_bug ]
  done

(* ---- pool inference ---- *)

let feq a b = Float.abs (a -. b) < 1e-9

let test_poolify_risk_formula () =
  let risk = Minic.Poolify.risk_score in
  (* a Safe, non-escaping site alone in its pool carries zero risk *)
  check_bool "safe lone site risk 0" true
    (feq 0.0
       (risk ~verdict:Minic.Dangling.Safe ~density:0.0 ~escape_depth:0
          ~pool_sites:1));
  (* Must at full density, one escape level, two-site pool:
     0.55*1*(0.5+0.5) + 0.30*(1/2) + 0.15*(1/2) *)
  check_bool "must risk 0.775" true
    (feq 0.775
       (risk ~verdict:Minic.Dangling.Must_uaf ~density:1.0 ~escape_depth:1
          ~pool_sites:2));
  (* May with no flagged density, no escape, lone site: 0.55*0.5*0.5 *)
  check_bool "may risk 0.1375" true
    (feq 0.1375
       (risk ~verdict:Minic.Dangling.May_uaf ~density:0.0 ~escape_depth:0
          ~pool_sites:1));
  (* risk is monotone in escape depth and bounded by 1 *)
  let r d =
    risk ~verdict:Minic.Dangling.Must_uaf ~density:1.0 ~escape_depth:d
      ~pool_sites:100
  in
  check_bool "risk monotone in escape depth" true (r 4 > r 1);
  check_bool "risk bounded by 1" true (r 1000 <= 1.0)

let test_poolify_deterministic () =
  let src = sample_file "examples/programs" "figure1.mc" in
  let dump () =
    Telemetry.Json.to_string_pretty
      (Minic.Poolify.to_json ~file:"figure1.mc"
         (Minic.Poolify.analyze (parse src)))
  in
  check_string "pool map byte-identical across runs" (dump ()) (dump ());
  let r = Minic.Poolify.analyze (parse src) in
  check_bool "pools sorted by id" true
    (List.sort compare (List.map (fun (p : Minic.Poolify.pool) -> p.id) r.pools)
     = List.map (fun (p : Minic.Poolify.pool) -> p.id) r.pools);
  check_bool "sites sorted by ordinal" true
    (List.sort compare
       (List.map (fun (s : Minic.Poolify.site_score) -> s.ordinal) r.sites)
     = List.map (fun (s : Minic.Poolify.site_score) -> s.ordinal) r.sites)

(* The escape generator's node class is allocated in [fill] but escapes
   into a main-owned box, so its pool must be hoisted to main and its
   site must carry positive escape pressure. *)
let test_poolify_escape_owner () =
  let program = parse (gen_escape_program ~n:3 ~seed:1 ~bug:No_bug) in
  let r = Minic.Poolify.analyze program in
  let node_site =
    List.find
      (fun (s : Minic.Poolify.site_score) -> s.struct_name = "node")
      r.sites
  in
  let node_pool =
    List.find
      (fun (p : Minic.Poolify.pool) -> p.id = node_site.pool_id)
      r.pools
  in
  check_string "escaping node pool owned by main" "main" node_pool.owner;
  check_bool "escaping site has positive escape depth" true
    (node_site.escape_depth > 0);
  List.iter
    (fun (p : Minic.Poolify.pool) ->
      check_bool "typed MiniC pools are homogeneous" true p.homogeneous;
      check_int "homogeneous pool has one struct type" 1
        (List.length p.struct_names))
    r.pools

let () =
  Alcotest.run "dangling"
    [
      ( "cfg",
        [
          Alcotest.test_case "linear" `Quick test_cfg_linear;
          Alcotest.test_case "if/else" `Quick test_cfg_if;
          Alcotest.test_case "while back edge" `Quick test_cfg_while;
          Alcotest.test_case "return cuts flow" `Quick test_cfg_return_cuts;
        ] );
      ( "verdicts",
        [
          Alcotest.test_case "straight-line safe" `Quick
            test_verdict_straightline_safe;
          Alcotest.test_case "must uaf" `Quick test_verdict_must_uaf;
          Alcotest.test_case "alias may" `Quick test_verdict_alias_may;
          Alcotest.test_case "double free" `Quick test_verdict_double_free;
          Alcotest.test_case "loop freshness" `Quick test_verdict_loop_fresh;
          Alcotest.test_case "interprocedural free" `Quick
            test_verdict_interproc_free;
          Alcotest.test_case "transitive free" `Quick
            test_verdict_transitive_free;
          Alcotest.test_case "branch join may" `Quick test_verdict_branch_may;
          Alcotest.test_case "field disjoint" `Quick
            test_verdict_field_disjoint;
          Alcotest.test_case "figure 1" `Quick test_verdict_figure1;
          Alcotest.test_case "typed layout errors" `Quick
            test_layout_errors_typed;
        ] );
      ( "pretty",
        [
          Alcotest.test_case "examples round-trip" `Quick
            test_roundtrip_examples;
          Alcotest.test_case "generated round-trip" `Quick
            test_roundtrip_generated;
        ] );
      ( "lint",
        [
          Alcotest.test_case "golden json" `Quick test_lint_goldens;
          Alcotest.test_case "golden sarif" `Quick test_lint_sarif_golden;
          Alcotest.test_case "exit codes" `Quick test_lint_exit_codes;
        ] );
      ( "poolify",
        [
          Alcotest.test_case "risk formula" `Quick test_poolify_risk_formula;
          Alcotest.test_case "deterministic pool map" `Quick
            test_poolify_deterministic;
          Alcotest.test_case "escape owner and homogeneity" `Quick
            test_poolify_escape_owner;
        ] );
      ( "oracle",
        [ Alcotest.test_case "differential soundness" `Quick test_oracle ] );
    ]
