(* The robustness suite: deterministic syscall fault injection
   (Fault_plan / Syscalls), bounded retry, the degradation governor's
   ladder, the governed schemes end-to-end, and the §3.4 exhaustion
   guards and reuse-policy edge cases that ride along. *)

open Vmm

let check_int = Alcotest.check Alcotest.int
let check_bool = Alcotest.check Alcotest.bool
let check_string = Alcotest.check Alcotest.string

let rule ?(calls = []) trigger error = { Fault_plan.calls; trigger; error }
let eagain = Fault_plan.Transient Fault_plan.Eagain
let enomem_fatal = Fault_plan.Fatal Fault_plan.Enomem

(* ---- Fault_plan ---- *)

let decisions plan ~calls =
  List.map (fun c -> Fault_plan.decide plan c ~va_bytes:0 <> None) calls

let test_plan_deterministic () =
  let mk () =
    Fault_plan.create ~seed:42 [ rule (Fault_plan.Rate 0.5) eagain ]
  in
  let calls = List.init 200 (fun _ -> Fault_plan.Mremap) in
  check_bool "same seed, same timeline" true
    (decisions (mk ()) ~calls = decisions (mk ()) ~calls);
  let other =
    Fault_plan.create ~seed:43 [ rule (Fault_plan.Rate 0.5) eagain ]
  in
  check_bool "different seed, different timeline" false
    (decisions (mk ()) ~calls = decisions other ~calls)

let test_plan_rate_bounds () =
  Alcotest.check_raises "rate > 1 rejected"
    (Invalid_argument "Fault_plan.create: Rate probability outside [0, 1]")
    (fun () -> ignore (Fault_plan.create [ rule (Fault_plan.Rate 1.5) eagain ]));
  let zero = Fault_plan.create [ rule (Fault_plan.Rate 0.) eagain ] in
  for _ = 1 to 100 do
    assert (Fault_plan.decide zero Fault_plan.Mmap ~va_bytes:0 = None)
  done;
  let one = Fault_plan.create [ rule (Fault_plan.Rate 1.) eagain ] in
  check_bool "rate 1 always fires" true
    (Fault_plan.decide one Fault_plan.Mmap ~va_bytes:0 <> None)

let test_plan_nth_and_burst () =
  let plan =
    Fault_plan.create
      [ rule ~calls:[ Fault_plan.Mremap ] (Fault_plan.Nth_call 3) eagain ]
  in
  let fired =
    List.init 5 (fun _ ->
        Fault_plan.decide plan Fault_plan.Mremap ~va_bytes:0 <> None)
  in
  Alcotest.(check (list bool)) "exactly the 3rd call"
    [ false; false; true; false; false ]
    fired;
  check_int "other calls don't advance the mremap counter" 0
    (Fault_plan.attempts plan Fault_plan.Mprotect);
  let burst =
    Fault_plan.create
      [ rule (Fault_plan.Burst { first = 2; length = 2 }) eagain ]
  in
  let fired =
    List.init 5 (fun _ ->
        Fault_plan.decide burst Fault_plan.Mprotect ~va_bytes:0 <> None)
  in
  Alcotest.(check (list bool)) "calls 2 and 3" [ false; true; true; false; false ]
    fired

let test_plan_va_budget () =
  let plan =
    Fault_plan.create [ rule (Fault_plan.Va_budget 4096) enomem_fatal ]
  in
  check_bool "under budget: no fault" true
    (Fault_plan.decide plan Fault_plan.Mmap ~va_bytes:4096 = None);
  check_bool "over budget: fires" true
    (Fault_plan.decide plan Fault_plan.Mmap ~va_bytes:4097 <> None)

let test_plan_none () =
  let plan = Fault_plan.none () in
  check_bool "has no rules" false (Fault_plan.has_rules plan);
  for _ = 1 to 50 do
    assert (Fault_plan.decide plan Fault_plan.Mprotect ~va_bytes:max_int = None)
  done;
  check_int "nothing injected" 0 (Fault_plan.injected plan)

(* ---- Syscalls boundary ---- *)

let test_syscalls_inject_and_count () =
  let fault_plan =
    Fault_plan.create
      [ rule ~calls:[ Fault_plan.Mremap ] (Fault_plan.Rate 1.) eagain ]
  in
  let m = Machine.create ~fault_plan () in
  let src = Kernel.mmap m ~pages:1 in
  (match Syscalls.mremap_alias m ~src ~pages:1 with
  | Error (Fault_plan.Transient Fault_plan.Eagain) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected injected EAGAIN");
  let s = Stats.snapshot m.Machine.stats in
  check_int "failure counted" 1 s.Stats.syscalls_failed;
  (* mmap is not covered by the rule *)
  (match Syscalls.mmap m ~pages:1 with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "uncovered call must succeed")

let test_syscalls_einval_typed () =
  let m = Machine.create () in
  let before = Machine.va_bytes_used m in
  (match Syscalls.mmap m ~pages:0 with
  | Error (Fault_plan.Fatal Fault_plan.Einval) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected Fatal Einval for pages=0");
  check_int "machine unchanged by rejected call" before
    (Machine.va_bytes_used m)

let test_ok_or_raise () =
  Alcotest.check_raises "raises Syscall_failure"
    (Fault_plan.Syscall_failure { name = "x"; error = eagain })
    (fun () -> Syscalls.ok_or_raise ~name:"x" (Error eagain));
  check_int "passes Ok through" 7 (Syscalls.ok_or_raise ~name:"x" (Ok 7))

(* ---- Retry ---- *)

let counting_op ~fail_first error =
  let calls = ref 0 in
  let op () =
    incr calls;
    if !calls <= fail_first then Error error else Ok !calls
  in
  (calls, op)

let test_retry_transient_then_ok () =
  let m = Machine.create () in
  let calls, op = counting_op ~fail_first:2 eagain in
  (match Runtime.Retry.attempt m op with
  | Ok 3 -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected success on 3rd attempt");
  check_int "three attempts" 3 !calls;
  let s = Stats.snapshot m.Machine.stats in
  check_int "two retries counted" 2 s.Stats.syscall_retries;
  check_bool "backoff charged as instructions" true (s.Stats.instructions > 0)

let test_retry_fatal_immediate () =
  let m = Machine.create () in
  let calls, op = counting_op ~fail_first:5 enomem_fatal in
  (match Runtime.Retry.attempt m op with
  | Error (Fault_plan.Fatal Fault_plan.Enomem) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected the fatal error back");
  check_int "no retry on fatal" 1 !calls;
  check_int "no retries counted" 0
    (Stats.snapshot m.Machine.stats).Stats.syscall_retries

let test_retry_attempt_cap () =
  let m = Machine.create () in
  let calls, op = counting_op ~fail_first:max_int eagain in
  (match Runtime.Retry.attempt m op with
  | Error (Fault_plan.Transient Fault_plan.Eagain) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected exhaustion");
  check_int "default cap: 4 attempts" 4 !calls

let test_retry_backoff_capped () =
  let m = Machine.create () in
  let policy =
    {
      Runtime.Retry.max_attempts = 10;
      backoff_instructions = 100;
      backoff_multiplier = 10;
      max_backoff_instructions = 300;
    }
  in
  let _, op = counting_op ~fail_first:max_int eagain in
  ignore (Runtime.Retry.attempt ~policy m op);
  (* charges: 100, then min(300, 1000)=300 seven more times *)
  check_int "backoff ceiling respected" (100 + (300 * 8))
    (Stats.snapshot m.Machine.stats).Stats.instructions

(* ---- Governor ---- *)

let gov_config =
  {
    Runtime.Governor.sample_period = 4;
    failure_threshold = 3;
    window = 8;
    recover_after = 5;
    probe_every = 10;
    cooldown = 6;
    va_soft_budget = max_int;
    ladder = [];
  }

let tick g = Runtime.Governor.on_alloc g

let test_governor_down_shift () =
  let m = Machine.create () in
  let g = Runtime.Governor.create ~config:gov_config m in
  check_bool "starts in Full" true
    (Runtime.Governor.mode g = Runtime.Governor.Full);
  for _ = 1 to 3 do
    tick g;
    Runtime.Governor.record_failure g ~reason:"test"
  done;
  (match Runtime.Governor.mode g with
  | Runtime.Governor.Sampled 4 -> ()
  | _ -> Alcotest.fail "expected Sampled 4 after 3 failures");
  check_int "one transition" 1
    (List.length (Runtime.Governor.transitions g));
  (* three more failures: down to Passthrough *)
  for _ = 1 to 3 do
    tick g;
    Runtime.Governor.record_failure g ~reason:"test"
  done;
  check_bool "then Passthrough" true
    (Runtime.Governor.mode g = Runtime.Governor.Passthrough)

let test_governor_recovery () =
  let m = Machine.create () in
  let g = Runtime.Governor.create ~config:gov_config m in
  for _ = 1 to 3 do
    tick g;
    Runtime.Governor.record_failure g ~reason:"test"
  done;
  (* successes under cooldown do not shift *)
  for _ = 1 to 5 do
    tick g;
    Runtime.Governor.record_success g
  done;
  check_bool "cooldown holds the ladder" true
    (Runtime.Governor.mode g <> Runtime.Governor.Full);
  for _ = 1 to 5 do
    tick g;
    Runtime.Governor.record_success g
  done;
  check_bool "recovers to Full" true
    (Runtime.Governor.mode g = Runtime.Governor.Full);
  let windows = Runtime.Governor.degraded_windows g in
  check_int "one closed degradation window" 1 (List.length windows);
  check_bool "window is closed" true
    (match windows with [ (_, Some _) ] -> true | _ -> false)

let test_governor_no_oscillation_under_burst () =
  let m = Machine.create () in
  let g = Runtime.Governor.create ~config:gov_config m in
  (* alternating failure bursts and short success runs: the cooldown and
     the exponential probe backoff must keep the ladder from flapping at
     a fixed frequency.  200 swinging ops with probe_every=10 would give
     ~40 transitions if every probe were retried immediately; backoff
     makes the count logarithmic. *)
  for _ = 1 to 34 do
    for _ = 1 to 3 do
      tick g;
      Runtime.Governor.record_failure g ~reason:"burst"
    done;
    for _ = 1 to 3 do
      tick g;
      Runtime.Governor.record_success g
    done
  done;
  check_bool "log-bounded transitions under 204 swinging ops" true
    (List.length (Runtime.Governor.transitions g) <= 10)

let test_governor_sampling_period () =
  let m = Machine.create () in
  let g = Runtime.Governor.create ~config:gov_config m in
  for _ = 1 to 3 do
    tick g;
    Runtime.Governor.record_failure g ~reason:"test"
  done;
  let protected_count = ref 0 in
  for _ = 1 to 40 do
    tick g;
    if Runtime.Governor.should_protect g then incr protected_count
  done;
  check_int "Sampled 4 protects 1 in 4" 10 !protected_count

let test_governor_passthrough_probe () =
  let m = Machine.create () in
  let g = Runtime.Governor.create ~config:gov_config m in
  for _ = 1 to 6 do
    tick g;
    Runtime.Governor.record_failure g ~reason:"test"
  done;
  check_bool "in Passthrough" true
    (Runtime.Governor.mode g = Runtime.Governor.Passthrough);
  for _ = 1 to gov_config.Runtime.Governor.probe_every do
    tick g
  done;
  (match Runtime.Governor.mode g with
  | Runtime.Governor.Sampled _ -> ()
  | _ -> Alcotest.fail "probe should step Passthrough up to Sampled")

let test_governor_va_clamp () =
  let config = { gov_config with Runtime.Governor.va_soft_budget = 0 } in
  let m = Machine.create () in
  ignore (Kernel.mmap m ~pages:1);
  let g = Runtime.Governor.create ~config m in
  tick g;
  (match Runtime.Governor.mode g with
  | Runtime.Governor.Sampled _ -> ()
  | _ -> Alcotest.fail "VA budget crossing must leave Full");
  (* enough successes to recover, past cooldown — but Full stays off *)
  for _ = 1 to 20 do
    tick g;
    Runtime.Governor.record_success g
  done;
  check_bool "clamped below Full forever" true
    (Runtime.Governor.mode g <> Runtime.Governor.Full)

let test_governor_mode_change_telemetry () =
  let sink = Telemetry.Sink.create ~capacity:64 () in
  let m = Machine.create ~trace:sink () in
  let g = Runtime.Governor.create ~config:gov_config m in
  for _ = 1 to 3 do
    tick g;
    Runtime.Governor.record_failure g ~reason:"test"
  done;
  let mode_changes =
    List.filter
      (fun (e : Telemetry.Event.t) ->
        match e.Telemetry.Event.kind with
        | Telemetry.Event.Mode_change _ -> true
        | _ -> false)
      (Telemetry.Sink.events sink)
  in
  check_int "shift emitted exactly once" 1 (List.length mode_changes)

(* ---- governed schemes end-to-end ---- *)

let test_governed_no_faults_detects () =
  let m = Machine.create () in
  let g = Runtime.Governed.shadow_pool m in
  let scheme = Runtime.Governed.scheme g in
  let p = scheme.Runtime.Scheme.malloc ~site:"t" 48 in
  scheme.Runtime.Scheme.store p ~width:8 1;
  scheme.Runtime.Scheme.free ~site:"t" p;
  (match scheme.Runtime.Scheme.load p ~width:8 with
  | _ -> Alcotest.fail "UAF must be detected with no faults"
  | exception Shadow.Report.Violation _ -> ());
  check_string "still in full mode" "full"
    (Runtime.Governor.mode_label
       (Runtime.Governor.mode (Runtime.Governed.governor g)))

let test_governed_survives_total_mremap_failure () =
  let fault_plan =
    Fault_plan.create
      [ rule ~calls:[ Fault_plan.Mremap ] (Fault_plan.Rate 1.) eagain ]
  in
  let m = Machine.create ~fault_plan () in
  let g = Runtime.Governed.shadow_pool m in
  let scheme = Runtime.Governed.scheme g in
  (* allocate, use, free a few hundred objects: must not raise *)
  for i = 1 to 300 do
    let p = scheme.Runtime.Scheme.malloc ~site:"t" 32 in
    scheme.Runtime.Scheme.store p ~width:8 i;
    check_int "data intact" i (scheme.Runtime.Scheme.load p ~width:8);
    scheme.Runtime.Scheme.free ~site:"t" p
  done;
  check_bool "ladder stepped down" true
    (Runtime.Governor.mode (Runtime.Governed.governor g)
    <> Runtime.Governor.Full);
  check_bool "unprotected allocs recorded" true
    (Runtime.Governed.unprotected_allocs g > 0)

let test_governed_miss_is_attributed () =
  let fault_plan =
    Fault_plan.create
      [ rule ~calls:[ Fault_plan.Mprotect ] (Fault_plan.Rate 1.) eagain ]
  in
  let m = Machine.create ~fault_plan () in
  let g = Runtime.Governed.shadow_pool m in
  let scheme = Runtime.Governed.scheme g in
  let p = scheme.Runtime.Scheme.malloc ~site:"t" 48 in
  scheme.Runtime.Scheme.store p ~width:8 1234;
  scheme.Runtime.Scheme.free ~site:"t" p;
  (* every mprotect failed, so the free could not protect: the UAF read
     goes through silently — but it must be attributable *)
  (match scheme.Runtime.Scheme.load p ~width:8 with
  | _ -> ()
  | exception Shadow.Report.Violation _ ->
    Alcotest.fail "free cannot have protected anything");
  check_bool "miss attributed to the unprotected free" true
    (Runtime.Governed.was_unprotected g p);
  check_int "unprotected free counted" 1 (Runtime.Governed.unprotected_frees g)

let test_governed_double_free_backstop () =
  let fault_plan =
    Fault_plan.create
      [ rule ~calls:[ Fault_plan.Mprotect ] (Fault_plan.Rate 1.) eagain ]
  in
  let m = Machine.create ~fault_plan () in
  let g = Runtime.Governed.shadow_pool m in
  let scheme = Runtime.Governed.scheme g in
  let p = scheme.Runtime.Scheme.malloc ~site:"t" 48 in
  scheme.Runtime.Scheme.free ~site:"t" p;
  (* pages never got protected, so the MMU cannot catch the second
     free; the registry-state software backstop must *)
  (match scheme.Runtime.Scheme.free ~site:"t" p with
  | () -> Alcotest.fail "double free after unprotected free missed"
  | exception
      Shadow.Report.Violation { Shadow.Report.kind = Shadow.Report.Double_free; _ }
    -> ()
  | exception Shadow.Report.Violation _ ->
    Alcotest.fail "wrong violation kind")

let test_governed_basic_variant () =
  let fault_plan =
    Fault_plan.create [ rule (Fault_plan.Rate 0.3) eagain ]
  in
  let m = Machine.create ~fault_plan () in
  let g = Runtime.Governed.shadow_basic m in
  let scheme = Runtime.Governed.scheme g in
  for i = 1 to 200 do
    let p = scheme.Runtime.Scheme.malloc ~site:"t" 24 in
    scheme.Runtime.Scheme.store p ~width:8 i;
    scheme.Runtime.Scheme.free ~site:"t" p
  done;
  check_bool "ran to completion" true true

(* ---- ungoverned schemes under faults raise, typed ---- *)

let test_plain_scheme_raises_typed () =
  let fault_plan =
    Fault_plan.create
      [ rule ~calls:[ Fault_plan.Mremap ] (Fault_plan.Rate 1.) eagain ]
  in
  let m = Machine.create ~fault_plan () in
  let scheme = Runtime.Schemes.shadow_pool m in
  match scheme.Runtime.Scheme.malloc ~site:"t" 48 with
  | _ -> Alcotest.fail "plain scheme has no fallback; must raise"
  | exception Fault_plan.Syscall_failure _ -> ()

(* ---- resilience campaign (one workload, smoke) ---- *)

let test_campaign_invariants () =
  let workloads =
    List.filter
      (fun (b : Workload.Spec.batch) -> b.Workload.Spec.name = "health")
      Workload.Catalog.olden
  in
  let rows = Harness.Resilience.campaign ~scale_divisor:8 ~workloads () in
  check_bool "has rows" true (rows <> []);
  check_bool "no undiagnosed crashes, all misses attributed" true
    (Harness.Resilience.ok rows);
  (* the no-fault plan must show full detection *)
  List.iter
    (fun (r : Harness.Resilience.row) ->
      if r.Harness.Resilience.plan = "none" then begin
        check_int "all probes detected under no faults" 3
          r.Harness.Resilience.probes_detected;
        check_string "ends in full mode" "full" r.Harness.Resilience.final_mode
      end)
    rows

(* ---- exhaustion guards (satellite) ---- *)

let test_exhaustion_guards () =
  let ok =
    Shadow.Exhaustion.seconds_until_exhaustion ~va_bytes:(2. ** 47.)
      ~page_bytes:4096 ~pages_per_second:1e6
  in
  check_bool "paper example still computes" true (ok > 0.);
  let expect_invalid name thunk =
    match thunk () with
    | (_ : float) -> Alcotest.fail (name ^ ": expected Invalid_argument")
    | exception Invalid_argument _ -> ()
  in
  expect_invalid "zero rate" (fun () ->
      Shadow.Exhaustion.seconds_until_exhaustion ~va_bytes:1e6 ~page_bytes:4096
        ~pages_per_second:0.);
  expect_invalid "negative rate" (fun () ->
      Shadow.Exhaustion.seconds_until_exhaustion ~va_bytes:1e6 ~page_bytes:4096
        ~pages_per_second:(-1.));
  expect_invalid "nan rate" (fun () ->
      Shadow.Exhaustion.seconds_until_exhaustion ~va_bytes:1e6 ~page_bytes:4096
        ~pages_per_second:Float.nan);
  expect_invalid "negative va" (fun () ->
      Shadow.Exhaustion.seconds_until_exhaustion ~va_bytes:(-1.)
        ~page_bytes:4096 ~pages_per_second:1e6);
  expect_invalid "zero page size" (fun () ->
      Shadow.Exhaustion.hours_until_exhaustion ~va_bytes:1e6 ~page_bytes:0
        ~pages_per_second:1e6)

(* ---- reuse-policy edge cases (satellite) ---- *)

let make_pool_with_recycler () =
  let m = Machine.create () in
  let registry = Shadow.Object_registry.create () in
  let recycler = Apa.Page_recycler.create () in
  let pool = Shadow.Shadow_pool.create ~recycler ~registry m in
  (m, pool)

let test_reuse_policy_zero_trigger () =
  let _, pool = make_pool_with_recycler () in
  let policy =
    Shadow.Reuse_policy.create
      (Shadow.Reuse_policy.Interval_reuse { trigger_pages = 0 })
      pool
  in
  (* trigger 0 means: reclaim on every free — even the first *)
  let p = Shadow.Shadow_pool.alloc pool ~site:"t" 48 in
  Shadow.Shadow_pool.free pool ~site:"t" p;
  Shadow.Reuse_policy.after_free policy;
  check_bool "reclaimed immediately" true
    (Shadow.Reuse_policy.reclaimed_pages policy > 0);
  check_int "no freed shadow pages retained" 0
    (Shadow.Shadow_pool.freed_shadow_pages pool)

let test_reuse_policy_gc_zero_live () =
  let m, pool = make_pool_with_recycler () in
  let policy =
    Shadow.Reuse_policy.create
      (Shadow.Reuse_policy.Conservative_gc
         { trigger_pages = 0; scan_cost_per_object = 1000 })
      pool
  in
  let p = Shadow.Shadow_pool.alloc pool ~site:"t" 48 in
  Shadow.Shadow_pool.free pool ~site:"t" p;
  let before = (Stats.snapshot m.Machine.stats).Stats.instructions in
  Shadow.Reuse_policy.after_free policy;
  check_int "gc ran" 1 (Shadow.Reuse_policy.gc_runs policy);
  check_int "zero live objects: zero scan cost" before
    (Stats.snapshot m.Machine.stats).Stats.instructions

let test_reuse_policy_after_destroy () =
  let _, pool = make_pool_with_recycler () in
  let policy =
    Shadow.Reuse_policy.create
      (Shadow.Reuse_policy.Interval_reuse { trigger_pages = 0 })
      pool
  in
  let p = Shadow.Shadow_pool.alloc pool ~site:"t" 48 in
  Shadow.Shadow_pool.free pool ~site:"t" p;
  Shadow.Shadow_pool.destroy pool;
  (* the hook racing pooldestroy must be a no-op, not an error *)
  Shadow.Reuse_policy.after_free policy;
  check_int "nothing reclaimed post-destroy" 0
    (Shadow.Reuse_policy.reclaimed_pages policy)

let () =
  Alcotest.run "resilience"
    [
      ( "fault-plan",
        [
          Alcotest.test_case "deterministic" `Quick test_plan_deterministic;
          Alcotest.test_case "rate bounds" `Quick test_plan_rate_bounds;
          Alcotest.test_case "nth + burst" `Quick test_plan_nth_and_burst;
          Alcotest.test_case "va budget" `Quick test_plan_va_budget;
          Alcotest.test_case "none" `Quick test_plan_none;
        ] );
      ( "syscalls",
        [
          Alcotest.test_case "inject + count" `Quick
            test_syscalls_inject_and_count;
          Alcotest.test_case "EINVAL typed" `Quick test_syscalls_einval_typed;
          Alcotest.test_case "ok_or_raise" `Quick test_ok_or_raise;
        ] );
      ( "retry",
        [
          Alcotest.test_case "transient then ok" `Quick
            test_retry_transient_then_ok;
          Alcotest.test_case "fatal immediate" `Quick test_retry_fatal_immediate;
          Alcotest.test_case "attempt cap" `Quick test_retry_attempt_cap;
          Alcotest.test_case "backoff ceiling" `Quick test_retry_backoff_capped;
        ] );
      ( "governor",
        [
          Alcotest.test_case "down-shift" `Quick test_governor_down_shift;
          Alcotest.test_case "recovery" `Quick test_governor_recovery;
          Alcotest.test_case "no oscillation" `Quick
            test_governor_no_oscillation_under_burst;
          Alcotest.test_case "sampling period" `Quick
            test_governor_sampling_period;
          Alcotest.test_case "passthrough probe" `Quick
            test_governor_passthrough_probe;
          Alcotest.test_case "va clamp" `Quick test_governor_va_clamp;
          Alcotest.test_case "mode-change telemetry" `Quick
            test_governor_mode_change_telemetry;
        ] );
      ( "governed",
        [
          Alcotest.test_case "no faults: detects" `Quick
            test_governed_no_faults_detects;
          Alcotest.test_case "survives 100% mremap failure" `Quick
            test_governed_survives_total_mremap_failure;
          Alcotest.test_case "miss attributed" `Quick
            test_governed_miss_is_attributed;
          Alcotest.test_case "double-free backstop" `Quick
            test_governed_double_free_backstop;
          Alcotest.test_case "basic variant" `Quick test_governed_basic_variant;
          Alcotest.test_case "plain scheme raises typed" `Quick
            test_plain_scheme_raises_typed;
          Alcotest.test_case "campaign invariants" `Slow
            test_campaign_invariants;
        ] );
      ( "exhaustion-guards",
        [ Alcotest.test_case "invalid inputs" `Quick test_exhaustion_guards ] );
      ( "reuse-policy-edges",
        [
          Alcotest.test_case "zero trigger" `Quick test_reuse_policy_zero_trigger;
          Alcotest.test_case "gc with zero live" `Quick
            test_reuse_policy_gc_zero_live;
          Alcotest.test_case "after destroy" `Quick
            test_reuse_policy_after_destroy;
        ] );
    ]
