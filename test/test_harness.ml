(* Tests for the experiment harness: table generation, ratio sanity, the
   §4.3 address-space study, and the detection matrix — checking the
   *shape* of the paper's results at reduced scale. *)

let check_int = Alcotest.check Alcotest.int
let check_bool = Alcotest.check Alcotest.bool

let contains haystack needle =
  let lh = String.length haystack and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub haystack i ln = needle || go (i + 1)) in
  ln = 0 || go 0

(* ---- experiment runner ---- *)

let test_run_batch_result_fields () =
  let b =
    match Workload.Catalog.find_batch "gzip" with
    | Some b -> b
    | None -> Alcotest.fail "gzip missing"
  in
  let r = Harness.Experiment.run_batch ~scale:30 b Harness.Experiment.ours in
  check_bool "cycles" true (r.Harness.Experiment.cycles > 0.);
  check_bool "frames" true (r.Harness.Experiment.peak_frames > 0);
  check_bool "va" true (r.Harness.Experiment.va_bytes > 0)

let test_config_labels_unique () =
  let labels =
    List.map Harness.Experiment.config_label Harness.Experiment.all_configs
  in
  check_int "distinct labels" (List.length labels)
    (List.length (List.sort_uniq compare labels))

(* ---- table 1 ---- *)

let test_table1_shape () =
  let rows = Harness.Table1.rows ~scale_divisor:8 () in
  check_int "9 rows (4 utilities + 5 servers)" 9 (List.length rows);
  List.iter
    (fun (r : Harness.Table1.row) ->
      check_bool (r.Harness.Table1.name ^ ": ratio1 sane") true
        (r.Harness.Table1.ratio1 > 0.85 && r.Harness.Table1.ratio1 < 3.0);
      check_bool (r.Harness.Table1.name ^ ": ours >= pa+dummy - slack") true
        (r.Harness.Table1.ours >= r.Harness.Table1.pa_dummy *. 0.95))
    rows;
  let rendered = Harness.Table1.render rows in
  check_bool "render mentions enscript" true (contains rendered "enscript");
  check_bool "render mentions ftpd" true (contains rendered "ftpd")

let test_table1_servers_low_overhead () =
  let server =
    match Workload.Catalog.find_server "fingerd" with
    | Some s -> s
    | None -> Alcotest.fail "fingerd missing"
  in
  let row = Harness.Table1.server_row ~connections:5 server in
  check_bool
    (Printf.sprintf "server overhead < 6%% (got %.2f)" row.Harness.Table1.ratio1)
    true
    (row.Harness.Table1.ratio1 < 1.06)

(* ---- table 2 ---- *)

let test_table2_valgrind_worse () =
  let rows = Harness.Table2.rows ~scale_divisor:8 () in
  check_int "4 utilities" 4 (List.length rows);
  List.iter
    (fun (r : Harness.Table2.row) ->
      check_bool (r.Harness.Table2.name ^ ": valgrind ≫ ours") true
        (r.Harness.Table2.valgrind_slowdown > 3. *. r.Harness.Table2.ours_slowdown))
    rows;
  ignore (Harness.Table2.render rows)

(* ---- table 3 ---- *)

let test_table3_shape () =
  let rows = Harness.Table3.rows ~scale_divisor:4 () in
  check_int "9 olden rows" 9 (List.length rows);
  let find name =
    List.find (fun (r : Harness.Table3.row) -> r.Harness.Table3.name = name) rows
  in
  (* The qualitative ordering the paper reports: health is the worst
     case; em3d and power are the mildest. *)
  check_bool "health worse than em3d" true
    ((find "health").Harness.Table3.ratio3 > (find "em3d").Harness.Table3.ratio3);
  check_bool "health worse than power" true
    ((find "health").Harness.Table3.ratio3
     > (find "power").Harness.Table3.ratio3);
  check_bool "health is heavy (>= 3x at reduced scale)" true
    ((find "health").Harness.Table3.ratio3 >= 3.0);
  List.iter
    (fun (r : Harness.Table3.row) ->
      check_bool (r.Harness.Table3.name ^ " slowdown >= ~1") true
        (r.Harness.Table3.ratio3 >= 0.9))
    rows;
  ignore (Harness.Table3.render rows)

(* ---- §4.3 ---- *)

let test_addr_space_study () =
  let row srv_name =
    match Workload.Catalog.find_server srv_name with
    | Some s -> Harness.Addr_space.measure ~connections:3 s
    | None -> Alcotest.fail (srv_name ^ " missing")
  in
  let ghttpd = row "ghttpd" in
  check_bool "ghttpd wastage ~1 page" true
    (ghttpd.Harness.Addr_space.wasted_pages_per_connection <= 1.5);
  let ftpd = row "ftpd" in
  let per_command =
    ftpd.Harness.Addr_space.wasted_pages_per_connection
    /. float_of_int Workload.Servers.ftpd_commands_per_connection
  in
  check_bool
    (Printf.sprintf "ftpd 5-6 pages/command (%.1f)" per_command)
    true
    (per_command >= 4.5 && per_command <= 6.5);
  check_bool "ftpd realpath pool recycles" true
    (ftpd.Harness.Addr_space.recycled_pages_per_connection > 0.);
  let telnetd = row "telnetd" in
  check_bool
    (Printf.sprintf "telnetd ~45 pages/session (%.1f)"
       telnetd.Harness.Addr_space.wasted_pages_per_connection)
    true
    (telnetd.Harness.Addr_space.wasted_pages_per_connection >= 44.
     && telnetd.Harness.Addr_space.wasted_pages_per_connection <= 47.);
  ignore (Harness.Addr_space.render [ ghttpd; ftpd; telnetd ])

(* ---- latency distribution ---- *)

let test_latency_distribution () =
  let dists = Harness.Latency.study ~connections:40 () in
  check_int "three configs" 3 (List.length dists);
  let find config =
    List.find (fun d -> d.Harness.Latency.config = config) dists
  in
  let base = find Harness.Experiment.llvm_base in
  let ours = find Harness.Experiment.ours in
  check_bool "percentiles ordered" true
    (base.Harness.Latency.p50 <= base.Harness.Latency.p95
     && base.Harness.Latency.p95 <= base.Harness.Latency.p99);
  let p50_ratio = ours.Harness.Latency.p50 /. base.Harness.Latency.p50 in
  let p99_ratio = ours.Harness.Latency.p99 /. base.Harness.Latency.p99 in
  check_bool
    (Printf.sprintf "overhead small at p50 (%.2f)" p50_ratio)
    true (p50_ratio < 1.10);
  check_bool
    (Printf.sprintf "overhead shrinks toward the tail (%.2f <= %.2f + eps)"
       p99_ratio p50_ratio)
    true
    (p99_ratio <= p50_ratio +. 0.01);
  ignore (Harness.Latency.render dists)

(* ---- detection matrix ---- *)

let test_detection_matrix () =
  let cells = Harness.Detection_matrix.run () in
  check_int "all cells present"
    (List.length Harness.Detection_matrix.configs
     * List.length Workload.Fault_injection.all)
    (List.length cells);
  let guaranteed = Harness.Detection_matrix.guaranteed_configs cells in
  check_bool "ours guaranteed" true
    (List.mem Harness.Experiment.ours guaranteed);
  check_bool "ours (no pools) guaranteed" true
    (List.mem Harness.Experiment.ours_basic guaranteed);
  check_bool "efence guaranteed" true
    (List.mem Harness.Experiment.efence guaranteed);
  check_bool "capability guaranteed" true
    (List.mem Harness.Experiment.capability guaranteed);
  check_bool "native not guaranteed" false
    (List.mem Harness.Experiment.native guaranteed);
  check_bool "valgrind heuristic not guaranteed" false
    (List.mem Harness.Experiment.valgrind guaranteed);
  let rendered = Harness.Detection_matrix.render cells in
  check_bool "rendered" true (contains rendered "valgrind")

(* ---- table renderer ---- *)

let test_spatial_matrix () =
  let cells = Harness.Detection_matrix.run_spatial () in
  let outcome config scenario =
    match
      List.find_opt
        (fun (c : Harness.Detection_matrix.cell) ->
          c.Harness.Detection_matrix.config = config
          && c.Harness.Detection_matrix.scenario = scenario)
        cells
    with
    | Some c -> c.Harness.Detection_matrix.outcome
    | None -> Alcotest.fail "missing cell"
  in
  let detected = function
    | Workload.Fault_injection.Detected _ -> true
    | Workload.Fault_injection.Silent _
    | Workload.Fault_injection.Crashed _
    | Workload.Fault_injection.Crashed_degraded _ ->
      false
  in
  List.iter
    (fun scenario ->
      check_bool "ours+bounds catches spatial" true
        (detected (outcome Harness.Experiment.ours_bounds scenario));
      check_bool "base scheme is temporal-only" false
        (detected (outcome Harness.Experiment.ours scenario));
      check_bool "native misses" false
        (detected (outcome Harness.Experiment.native scenario)))
    [ "overflow-read"; "overflow-write" ]

let test_table_render () =
  let out =
    Harness.Table.render ~headers:[ "a"; "bb" ] [ [ "x"; "1" ]; [ "yy"; "22" ] ]
  in
  check_bool "has rule" true (contains out "--");
  check_bool "aligned" true (contains out "22");
  Alcotest.check Alcotest.string "cycles fmt" "1.50"
    (Harness.Table.fmt_cycles 1_500_000.);
  Alcotest.check Alcotest.string "bytes fmt" "4.0 KiB"
    (Harness.Table.fmt_bytes 4096)

let () =
  Alcotest.run "harness"
    [
      ( "experiment",
        [
          Alcotest.test_case "result fields" `Quick test_run_batch_result_fields;
          Alcotest.test_case "config labels" `Quick test_config_labels_unique;
        ] );
      ( "tables",
        [
          Alcotest.test_case "table1 shape" `Slow test_table1_shape;
          Alcotest.test_case "table1 servers" `Quick
            test_table1_servers_low_overhead;
          Alcotest.test_case "table2 valgrind worse" `Slow
            test_table2_valgrind_worse;
          Alcotest.test_case "table3 shape" `Slow test_table3_shape;
          Alcotest.test_case "renderer" `Quick test_table_render;
        ] );
      ( "addr-space",
        [ Alcotest.test_case "§4.3 study" `Quick test_addr_space_study ] );
      ( "latency",
        [ Alcotest.test_case "distribution" `Quick test_latency_distribution ] );
      ( "detection",
        [
          Alcotest.test_case "matrix" `Quick test_detection_matrix;
          Alcotest.test_case "spatial matrix" `Quick test_spatial_matrix;
        ] );
    ]
