examples/compiler_pools.mli:
