examples/olden_demo.mli:
