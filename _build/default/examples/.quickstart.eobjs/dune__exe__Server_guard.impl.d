examples/server_guard.ml: Harness List Printf Runtime Shadow Vmm
