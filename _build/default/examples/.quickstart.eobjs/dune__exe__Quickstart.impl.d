examples/quickstart.ml: Format Printf Runtime Shadow Vmm
