examples/olden_demo.ml: Array Harness List Printf Sys Vmm Workload
