examples/quickstart.mli:
