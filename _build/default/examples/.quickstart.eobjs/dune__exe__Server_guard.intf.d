examples/server_guard.mli:
