examples/debug_session.ml: Array Harness Option Printf Runtime Shadow Vmm
