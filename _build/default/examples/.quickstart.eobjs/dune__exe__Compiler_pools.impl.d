examples/compiler_pools.ml: Harness List Minic Printf Runtime Shadow String Vmm
