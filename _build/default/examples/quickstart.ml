(* Quickstart: the public API in five minutes.

     dune exec examples/quickstart.exe

   Builds a simulated machine, wraps an ordinary allocator with the
   shadow-page scheme, and walks through the lifecycle the paper
   describes: allocation on a fresh virtual page aliased to a shared
   physical page, protection at free, and an MMU trap — with full
   diagnostics — on every later use. *)

let () =
  (* A machine: physical frames, a page table, a 64-entry TLB, and a
     cycle cost model (LLVM-baseline code quality by default). *)
  let machine = Vmm.Machine.create () in

  (* The full scheme from the paper: shadow pages over pool allocation.
     [Runtime.Schemes] also offers [native], [pa], [shadow_basic], and
     the [Baseline] library has Electric Fence, a Valgrind-style checker
     and a capability checker behind the same interface. *)
  let scheme = Runtime.Schemes.shadow_pool machine in

  (* malloc: one word bigger under the hood, placed by the ordinary
     allocator, then remapped so the caller sees a fresh virtual page. *)
  let p = scheme.Runtime.Scheme.malloc ~site:"quickstart.ml:alloc" 64 in
  Printf.printf "allocated 64 bytes at %s\n" (Format.asprintf "%a" Vmm.Addr.pp p);

  (* Ordinary loads and stores go through the simulated MMU. *)
  scheme.Runtime.Scheme.store p ~width:8 42;
  scheme.Runtime.Scheme.store (p + 8) ~width:8 43;
  Printf.printf "p[0] + p[1] = %d\n"
    (scheme.Runtime.Scheme.load p ~width:8
     + scheme.Runtime.Scheme.load (p + 8) ~width:8);

  (* Two live objects share a physical page but not a virtual one. *)
  let q = scheme.Runtime.Scheme.malloc ~site:"quickstart.ml:second" 64 in
  Printf.printf "second object at %s (same physical page, different virtual)\n"
    (Format.asprintf "%a" Vmm.Addr.pp q);

  (* free: the shadow page is mprotect'ed, the canonical block returns to
     the allocator — physical memory is reused, addresses are not. *)
  scheme.Runtime.Scheme.free ~site:"quickstart.ml:free" p;

  (* Any use of the stale pointer now traps, with diagnosis. *)
  (match scheme.Runtime.Scheme.load p ~width:8 with
   | v -> Printf.printf "unexpected: read %d\n" v
   | exception Shadow.Report.Violation report ->
     Printf.printf "caught: %s\n" (Shadow.Report.to_string report));

  (* The sibling object is untouched by the protection flip. *)
  scheme.Runtime.Scheme.store q ~width:8 7;
  Printf.printf "sibling object still fine: %d\n"
    (scheme.Runtime.Scheme.load q ~width:8);

  (* Pools bound address-space growth: everything allocated from this
     pool becomes reusable address space at destroy. *)
  Runtime.Workload_api.with_pool scheme (fun pool ->
      let r = pool.Runtime.Scheme.pool_alloc ~site:"quickstart.ml:pool" 256 in
      scheme.Runtime.Scheme.store r ~width:8 1);
  Printf.printf "pool destroyed; %d virtual bytes used so far\n"
    (Vmm.Machine.va_bytes_used machine);

  (* Costs are explicit: cycles, syscalls, TLB behaviour, footprint. *)
  let stats = Vmm.Stats.snapshot machine.Vmm.Machine.stats in
  Printf.printf
    "cost: %.0f cycles | %d syscalls | %d/%d TLB hits/misses | %d frames\n"
    (Vmm.Machine.cycles machine)
    (Vmm.Stats.total_syscalls stats)
    stats.Vmm.Stats.tlb_hits stats.Vmm.Stats.tlb_misses
    (Vmm.Frame_table.live_frames machine.Vmm.Machine.frames)
