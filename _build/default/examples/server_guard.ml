(* server_guard: the paper's motivating scenario — a production server
   protected in deployment.

     dune exec examples/server_guard.exe

   A fork-per-connection server (the structure all five of the paper's
   daemons share) handles a stream of requests.  A rare bug path
   double-frees a session buffer, the kind of defect behind the CVS /
   Kerberos / MySQL advisories the paper opens with.  Under the shadow
   scheme the faulty child traps with a precise diagnosis; the service
   keeps running; per-connection address-space wastage is bounded and
   dies with each child. *)

let handle_request conn (scheme : Runtime.Scheme.t) =
  (* Session setup: a few allocations, like ftpd's 5-6 per command. *)
  let session = scheme.Runtime.Scheme.malloc ~site:"server.c:accept" 256 in
  let reply = scheme.Runtime.Scheme.malloc ~site:"server.c:reply" 512 in
  Runtime.Workload_api.fill_words scheme session ~words:16 ~value:conn;

  (* Path resolution in a short-lived pool (ftpd's fb_realpath). *)
  Runtime.Workload_api.with_pool scheme (fun pool ->
      let path = pool.Runtime.Scheme.pool_alloc ~site:"server.c:realpath" 1024 in
      Runtime.Workload_api.fill_words scheme path ~words:64 ~value:conn;
      ignore (Runtime.Workload_api.sum_words scheme path ~words:64));

  (* Do the work. *)
  scheme.Runtime.Scheme.compute 400_000;
  for i = 0 to 31 do
    Runtime.Workload_api.store_field scheme reply i (conn + i)
  done;

  (* Teardown — with a latent bug on an error path. *)
  scheme.Runtime.Scheme.free ~site:"server.c:teardown" reply;
  scheme.Runtime.Scheme.free ~site:"server.c:teardown" session;
  if conn mod 7 = 3 then
    (* The bug: error handling frees the session a second time. *)
    scheme.Runtime.Scheme.free ~site:"server.c:error_path" session

let () =
  print_endline "serving 20 connections (every 7th request with conn%7=3 is buggy)...";
  let detections = ref [] in
  let total_cycles = ref 0. in
  let max_va = ref 0 in
  for conn = 0 to 19 do
    let result =
      Runtime.Process.run_connection
        ~make_scheme:(fun () ->
          Runtime.Schemes.shadow_pool (Vmm.Machine.create ()))
        ~handler:(handle_request conn)
    in
    total_cycles := !total_cycles +. result.Runtime.Process.cycles;
    if result.Runtime.Process.va_bytes > !max_va then
      max_va := result.Runtime.Process.va_bytes;
    match result.Runtime.Process.detection with
    | Some report ->
      Printf.printf "conn %2d: CHILD KILLED -> %s\n" conn
        (Shadow.Report.to_string report);
      detections := conn :: !detections
    | None -> Printf.printf "conn %2d: ok\n" conn
  done;
  Printf.printf
    "\nservice survived: %d/20 connections served, %d buggy children diagnosed\n"
    (20 - List.length !detections)
    (List.length !detections);
  Printf.printf "mean response: %.2fM cycles; max address space per child: %s\n"
    (!total_cycles /. 20. /. 1e6)
    (Harness.Table.fmt_bytes !max_va);
  print_endline
    "(under the plain allocator the double free would silently corrupt the\n\
     heap — exactly the class of exploitable bug in the CVS/Kerberos/MySQL\n\
     advisories cited by the paper)"
