(* compiler_pools: the paper's Figures 1 and 2, live.

     dune exec examples/compiler_pools.exe

   Parses the running example, prints the program before and after the
   Automatic Pool Allocation transform (showing poolinit/pooldestroy
   placement and descriptor threading), then runs the buggy variant of
   Figure 1 under the full scheme to show the dangling dereference
   caught by the MMU — and the address-space reuse across calls to f()
   that pool allocation enables. *)

let figure1 =
  {|
struct s { int val; struct s *next; }

// g builds a list hanging off p, then frees all of it except the head --
// leaving p->next->next dangling in the caller.
void g(struct s *p) {
  struct s *head = malloc(struct s);
  p->next = head;
  head->val = 7;
  head->next = null;
  struct s *cur = head;
  int i = 0;
  while (i < 10) {
    cur->next = malloc(struct s);
    cur = cur->next;
    cur->val = i;
    cur->next = null;
    i = i + 1;
  }
  // free_all_but_head
  cur = head->next;
  while (cur != null) {
    struct s *nxt = cur->next;
    free(cur);
    cur = nxt;
  }
}

void f() {
  struct s *p = malloc(struct s);
  p->val = 0;
  p->next = null;
  g(p);
  print(p->next->val);        // ok: the head survives
  print(p->next->next->val);  // BUG: freed inside g (Figure 1's error)
}

void main() { f(); }
|}

let rule title =
  Printf.printf "\n---------------- %s ----------------\n" title

let () =
  let program = Minic.Parser.parse figure1 in
  Minic.Typecheck.check program;

  rule "Figure 1: the original program";
  print_endline (Minic.Pretty.program_to_string program);

  let transformed, summary = Minic.Pool_transform.transform program in
  rule "Figure 2: after Automatic Pool Allocation";
  Printf.printf "pools: %s\n\n"
    (String.concat ", "
       (List.map
          (fun (d : Minic.Pool_transform.pool_desc) ->
            Printf.sprintf "%s (owner %s%s)" d.Minic.Pool_transform.pool_var
              d.Minic.Pool_transform.owner
              (if d.Minic.Pool_transform.global then ", global" else ""))
          summary.Minic.Pool_transform.pools));
  print_endline (Minic.Pretty.program_to_string transformed);

  rule "Running under the plain allocator";
  let native = Runtime.Schemes.native (Vmm.Machine.create ()) in
  (match Minic.Interp.run program native with
   | outcome ->
     List.iter (Printf.printf "print: %d\n") outcome.Minic.Interp.prints;
     print_endline "(the dangling read silently returned stale/reused memory)"
   | exception Shadow.Report.Violation _ -> assert false);

  rule "Running under the shadow-page + pool scheme";
  let machine = Vmm.Machine.create () in
  let scheme = Runtime.Schemes.shadow_pool machine in
  (match Minic.Interp.run transformed scheme with
   | outcome ->
     List.iter (Printf.printf "print: %d\n") outcome.Minic.Interp.prints;
     print_endline "unexpected: the bug was not detected"
   | exception Shadow.Report.Violation report ->
     Printf.printf "DETECTED: %s\n" (Shadow.Report.to_string report));

  rule "Address-space reuse across invocations of f()";
  (* Remove the buggy second print and call f() repeatedly: pooldestroy
     at f's exit releases every page for reuse, so address space is flat
     no matter how many times f runs. *)
  let correct_source =
    String.concat "\n"
      (List.filter
         (fun line ->
           not (String.length line > 0
                && String.trim line = "print(p->next->next->val);  // BUG: freed inside g (Figure 1's error)"))
         (String.split_on_char '\n' figure1))
  in
  let correct, _ =
    Minic.Pool_transform.transform (Minic.Parser.parse correct_source)
  in
  let m = Vmm.Machine.create () in
  let s = Runtime.Schemes.shadow_pool m in
  let va_after n =
    for _ = 1 to n do
      ignore (Minic.Interp.run correct s)
    done;
    Vmm.Machine.va_bytes_used m
  in
  let va1 = va_after 1 in
  let va10 = va_after 9 in
  Printf.printf "after 1 run of main: %s; after 10 runs: %s (flat = reused)\n"
    (Harness.Table.fmt_bytes va1)
    (Harness.Table.fmt_bytes va10)
