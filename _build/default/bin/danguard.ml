(* danguard: command-line front end to the reproduction.

   Subcommands:
     table <1|2|3>   regenerate a paper table
     addr-space      the §4.3 per-connection address-space study
     detect          the detection-guarantee matrix
     exhaustion      the §3.4 analytic model
     run             run one workload under one scheme and print stats
     compile         run the MiniC pipeline on a source file
     demo            a 30-second tour of the detector *)

open Cmdliner

let scheme_names =
  [
    ("native", Harness.Experiment.Native);
    ("llvm", Harness.Experiment.Llvm_base);
    ("pa", Harness.Experiment.Pa);
    ("pa-dummy", Harness.Experiment.Pa_dummy);
    ("ours", Harness.Experiment.Ours);
    ("ours-basic", Harness.Experiment.Ours_basic);
    ("ours-bounds", Harness.Experiment.Ours_spatial);
    ("efence", Harness.Experiment.Efence);
    ("valgrind", Harness.Experiment.Valgrind);
    ("capability", Harness.Experiment.Capability);
  ]

let config_arg =
  let doc =
    Printf.sprintf "Protection scheme: %s."
      (String.concat ", " (List.map fst scheme_names))
  in
  Arg.(
    value
    & opt (enum scheme_names) Harness.Experiment.Ours
    & info [ "s"; "scheme" ] ~docv:"SCHEME" ~doc)

let scale_divisor_arg =
  let doc = "Divide workload sizes by this factor (quick runs)." in
  Arg.(value & opt int 1 & info [ "d"; "scale-divisor" ] ~docv:"N" ~doc)

(* ---- table ---- *)

let table_cmd =
  let which =
    Arg.(required & pos 0 (some int) None & info [] ~docv:"TABLE"
           ~doc:"Table number (1, 2 or 3).")
  in
  let run which divisor =
    match which with
    | 1 ->
      print_endline
        (Harness.Table1.render (Harness.Table1.rows ~scale_divisor:divisor ()));
      `Ok ()
    | 2 ->
      print_endline
        (Harness.Table2.render (Harness.Table2.rows ~scale_divisor:divisor ()));
      `Ok ()
    | 3 ->
      print_endline
        (Harness.Table3.render (Harness.Table3.rows ~scale_divisor:divisor ()));
      `Ok ()
    | n -> `Error (false, Printf.sprintf "no table %d (expected 1, 2 or 3)" n)
  in
  Cmd.v
    (Cmd.info "table" ~doc:"Regenerate a table from the paper's evaluation.")
    Term.(ret (const run $ which $ scale_divisor_arg))

(* ---- addr-space ---- *)

let addr_space_cmd =
  let connections =
    Arg.(value & opt (some int) None
         & info [ "c"; "connections" ] ~docv:"N" ~doc:"Connections per server.")
  in
  let run connections =
    print_endline (Harness.Addr_space.render (Harness.Addr_space.rows ?connections ()))
  in
  Cmd.v
    (Cmd.info "addr-space"
       ~doc:"Per-connection virtual-address usage of the five servers (§4.3).")
    Term.(const run $ connections)

(* ---- detect ---- *)

let detect_cmd =
  let run () =
    let cells = Harness.Detection_matrix.run () in
    print_endline (Harness.Detection_matrix.render cells);
    print_endline "";
    List.iter
      (fun (c : Harness.Detection_matrix.cell) ->
        match c.Harness.Detection_matrix.outcome with
        | Workload.Fault_injection.Detected r ->
          Printf.printf "%-24s %-22s %s\n"
            (Harness.Experiment.config_label c.Harness.Detection_matrix.config)
            c.Harness.Detection_matrix.scenario
            (Shadow.Report.to_string r)
        | Workload.Fault_injection.Silent _ | Workload.Fault_injection.Crashed _
          ->
          ())
      cells
  in
  Cmd.v
    (Cmd.info "detect"
       ~doc:"Run every injected temporal-error scenario under every scheme.")
    Term.(const run $ const ())

(* ---- exhaustion ---- *)

let exhaustion_cmd =
  let allocs_per_sec =
    Arg.(value & opt float 1e6
         & info [ "allocs-per-sec" ] ~docv:"R" ~doc:"Allocation rate.")
  in
  let va_bits =
    Arg.(value & opt int 47 & info [ "va-bits" ] ~docv:"B"
           ~doc:"User address-space bits.")
  in
  let run rate bits =
    Printf.printf
      "with 2^%d bytes of address space, 4K pages and %.0f allocations/s:\n\
       %.2f hours until virtual addresses run out with no reuse at all\n"
      bits rate
      (Shadow.Exhaustion.hours_until_exhaustion
         ~va_bytes:(2. ** float_of_int bits)
         ~page_bytes:4096 ~pages_per_second:rate)
  in
  Cmd.v
    (Cmd.info "exhaustion" ~doc:"The §3.4 address-space exhaustion model.")
    Term.(const run $ allocs_per_sec $ va_bits)

(* ---- run ---- *)

let run_cmd =
  let workload_name =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"WORKLOAD"
             ~doc:"Workload name (see $(b,danguard list)).")
  in
  let scale =
    Arg.(value & opt (some int) None
         & info [ "scale" ] ~docv:"N" ~doc:"Override the workload scale.")
  in
  let run name config scale =
    match Workload.Catalog.find_batch name with
    | Some batch ->
      let r = Harness.Experiment.run_batch ?scale batch config in
      Printf.printf "%s under %s:\n  cycles: %sM\n  peak frames: %d\n  VA: %s\n  checker memory: %s\n"
        name
        (Harness.Experiment.config_label config)
        (Harness.Table.fmt_cycles r.Harness.Experiment.cycles)
        r.Harness.Experiment.peak_frames
        (Harness.Table.fmt_bytes r.Harness.Experiment.va_bytes)
        (Harness.Table.fmt_bytes r.Harness.Experiment.extra_memory_bytes);
      Printf.printf "  %s\n"
        (Format.asprintf "%a" Vmm.Stats.pp r.Harness.Experiment.stats);
      `Ok ()
    | None ->
      (match Workload.Catalog.find_server name with
       | Some server ->
         let r = Harness.Experiment.run_server server config in
         Printf.printf
           "%s under %s: %d connections, mean %sM cycles/connection, max VA %s\n"
           name
           (Harness.Experiment.config_label config)
           r.Runtime.Process.connections
           (Harness.Table.fmt_cycles r.Runtime.Process.mean_cycles_per_connection)
           (Harness.Table.fmt_bytes r.Runtime.Process.max_va_bytes_per_connection);
         `Ok ()
       | None -> `Error (false, "unknown workload " ^ name))
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one workload under one scheme and print stats.")
    Term.(ret (const run $ workload_name $ config_arg $ scale))

(* ---- list ---- *)

let list_cmd =
  let run () =
    print_endline "utilities:";
    List.iter
      (fun (b : Workload.Spec.batch) ->
        Printf.printf "  %-10s %s\n" b.Workload.Spec.name
          b.Workload.Spec.description)
      Workload.Catalog.utilities;
    print_endline "olden:";
    List.iter
      (fun (b : Workload.Spec.batch) ->
        Printf.printf "  %-10s %s\n" b.Workload.Spec.name
          b.Workload.Spec.description)
      Workload.Catalog.olden;
    print_endline "servers:";
    List.iter
      (fun (s : Workload.Spec.server) ->
        Printf.printf "  %-10s %s\n" s.Workload.Spec.s_name
          s.Workload.Spec.s_description)
      Workload.Catalog.servers
  in
  Cmd.v (Cmd.info "list" ~doc:"List all workloads.") Term.(const run $ const ())

(* ---- compile ---- *)

let compile_cmd =
  let file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FILE.mc" ~doc:"MiniC source file.")
  in
  let emit =
    Arg.(value & flag
         & info [ "emit" ] ~doc:"Print the pool-transformed program.")
  in
  let execute =
    Arg.(value & flag & info [ "run" ] ~doc:"Run the transformed program.")
  in
  let run file emit execute config =
    let source = In_channel.with_open_text file In_channel.input_all in
    match Minic.Parser.parse source with
    | exception Minic.Parser.Parse_error { line; message } ->
      `Error (false, Printf.sprintf "%s:%d: %s" file line message)
    | exception Minic.Lexer.Lex_error { line; message } ->
      `Error (false, Printf.sprintf "%s:%d: %s" file line message)
    | program ->
      (match Minic.Pool_transform.transform program with
       | exception Minic.Typecheck.Type_error msg -> `Error (false, msg)
       | exception Minic.Pool_transform.Transform_error msg ->
         `Error (false, msg)
       | transformed, summary ->
         Printf.printf "pools inferred (%d sites, %d frees rewritten):\n"
           summary.Minic.Pool_transform.sites_rewritten
           summary.Minic.Pool_transform.frees_rewritten;
         List.iter
           (fun (d : Minic.Pool_transform.pool_desc) ->
             Printf.printf "  %-10s owner=%-12s struct=%-8s %s\n"
               d.Minic.Pool_transform.pool_var d.Minic.Pool_transform.owner
               (Option.value ~default:"?" d.Minic.Pool_transform.struct_name)
               (if d.Minic.Pool_transform.global then "(global, long-lived)"
                else ""))
           summary.Minic.Pool_transform.pools;
         if emit then begin
           print_endline "";
           print_endline (Minic.Pretty.program_to_string transformed)
         end;
         if execute then begin
           let scheme = Harness.Experiment.make_scheme config () in
           match Minic.Interp.run transformed scheme with
           | outcome ->
             List.iter (Printf.printf "print: %d\n") outcome.Minic.Interp.prints;
             Printf.printf "steps: %d, cycles: %sM\n" outcome.Minic.Interp.steps
               (Harness.Table.fmt_cycles
                  (Runtime.Scheme.cycles scheme))
           | exception Shadow.Report.Violation r ->
             Printf.printf "TEMPORAL ERROR DETECTED: %s\n"
               (Shadow.Report.to_string r)
         end;
         `Ok ())
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:"Parse, pool-transform and optionally run a MiniC program.")
    Term.(ret (const run $ file $ emit $ execute $ config_arg))

(* ---- trace ---- *)

let trace_cmd =
  let record_workload =
    Arg.(value & opt (some string) None
         & info [ "record" ] ~docv:"WORKLOAD"
             ~doc:"Record the named workload's heap trace to stdout.")
  in
  let record_scale =
    Arg.(value & opt (some int) None
         & info [ "record-scale" ] ~docv:"N"
             ~doc:"Scale for --record (default: the workload's).")
  in
  let gen_length =
    Arg.(value & opt (some int) None
         & info [ "generate" ] ~docv:"N"
             ~doc:"Generate a random N-event trace to stdout instead of \
                   replaying one.")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S" ~doc:"Generator seed.")
  in
  let file =
    Arg.(value & pos 0 (some file) None
         & info [] ~docv:"TRACE" ~doc:"Trace file to replay.")
  in
  let run record_workload record_scale gen_length seed file config =
    match record_workload, gen_length, file with
    | Some name, _, _ ->
      (match Workload.Catalog.find_batch name with
       | None -> `Error (false, "unknown workload " ^ name)
       | Some batch ->
         let wrapper, get_trace =
           Workload.Trace.record
             (Runtime.Schemes.native (Vmm.Machine.create ()))
         in
         let scale =
           Option.value record_scale
             ~default:batch.Workload.Spec.default_scale
         in
         batch.Workload.Spec.run wrapper ~scale;
         print_string (Workload.Trace.to_string (get_trace ()));
         `Ok ())
    | None, Some length, _ ->
      print_string
        (Workload.Trace.to_string (Workload.Trace.generate ~seed ~length ()));
      `Ok ()
    | None, None, Some path ->
      let text = In_channel.with_open_text path In_channel.input_all in
      (match Workload.Trace.of_string text with
       | Error e -> `Error (false, e)
       | Ok trace ->
         let scheme = Harness.Experiment.make_scheme config () in
         let result = Workload.Trace.replay trace scheme in
         Printf.printf
           "replayed %d events under %s: %d reads, %d violations, %sM cycles\n"
           (Workload.Trace.length trace)
           (Harness.Experiment.config_label config)
           (List.length result.Workload.Trace.reads)
           result.Workload.Trace.violations
           (Harness.Table.fmt_cycles (Runtime.Scheme.cycles scheme));
         `Ok ())
    | None, None, None ->
      `Error (true, "provide a trace file to replay, --generate N, or --record W")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Generate, record or replay scheme-independent allocation traces.")
    Term.(
      ret
        (const run $ record_workload $ record_scale $ gen_length $ seed $ file
         $ config_arg))

(* ---- demo ---- *)

let demo_cmd =
  let run () =
    print_endline "1. allocate and use an object under the full scheme:";
    let m = Vmm.Machine.create () in
    let scheme = Runtime.Schemes.shadow_pool m in
    let p = scheme.Runtime.Scheme.malloc ~site:"demo.c:12" 48 in
    scheme.Runtime.Scheme.store p ~width:8 42;
    Printf.printf "   p = %s, *p = %d\n"
      (Format.asprintf "%a" Vmm.Addr.pp p)
      (scheme.Runtime.Scheme.load p ~width:8);
    print_endline "2. free it:";
    scheme.Runtime.Scheme.free ~site:"demo.c:19" p;
    print_endline "   freed; physical page already reusable by the allocator";
    print_endline "3. use the dangling pointer:";
    (match scheme.Runtime.Scheme.load p ~width:8 with
     | v -> Printf.printf "   BUG: read %d\n" v
     | exception Shadow.Report.Violation r ->
       Printf.printf "   trapped by the MMU -> %s\n" (Shadow.Report.to_string r));
    print_endline "4. double-free it:";
    (match scheme.Runtime.Scheme.free ~site:"demo.c:31" p with
     | () -> print_endline "   BUG: not detected"
     | exception Shadow.Report.Violation r ->
       Printf.printf "   trapped by the MMU -> %s\n" (Shadow.Report.to_string r));
    Printf.printf
      "5. cost so far: %.0f simulated cycles, %d syscalls, %d physical pages\n"
      (Vmm.Machine.cycles m)
      (Vmm.Stats.total_syscalls (Vmm.Stats.snapshot m.Vmm.Machine.stats))
      (Vmm.Frame_table.live_frames m.Vmm.Machine.frames)
  in
  Cmd.v
    (Cmd.info "demo" ~doc:"A 30-second tour of the dangling-pointer detector.")
    Term.(const run $ const ())

let main_cmd =
  let doc =
    "MMU-based detection of all dangling pointer uses (Dhurjati & Adve, \
     DSN 2006) on a simulated machine"
  in
  Cmd.group
    (Cmd.info "danguard" ~version:"1.0.0" ~doc)
    [
      table_cmd; addr_space_cmd; detect_cmd; exhaustion_cmd; run_cmd; list_cmd;
      compile_cmd; trace_cmd; demo_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
