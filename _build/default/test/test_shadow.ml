(* The core correctness suite for the paper's mechanism: shadow-page
   allocation, MMU-based detection, diagnostics, physical-memory parity,
   pool-based virtual-address reuse, and the §3.4 policies — plus the
   soundness/precision property test against a reference model. *)

open Vmm

let check_int = Alcotest.check Alcotest.int
let check_bool = Alcotest.check Alcotest.bool

let make_heap () =
  let m = Machine.create () in
  let registry = Shadow.Object_registry.create () in
  let malloc = Heap.Freelist_malloc.create m in
  let heap =
    Shadow.Shadow_heap.create ~registry
      ~allocator:(Heap.Freelist_malloc.as_allocator malloc)
      m
  in
  (m, registry, heap)

let load m registry a =
  Shadow.Detector.guard registry ~in_free:false (fun () -> Mmu.load m a ~width:8)

let store m registry a v =
  Shadow.Detector.guard registry ~in_free:false (fun () ->
      Mmu.store m a ~width:8 v)

(* ---- basic mechanism ---- *)

let test_alloc_read_write () =
  let m, registry, heap = make_heap () in
  let p = Shadow.Shadow_heap.malloc heap ~site:"t" 48 in
  store m registry p 7;
  store m registry (p + 40) 8;
  check_int "first word" 7 (load m registry p);
  check_int "last word" 8 (load m registry (p + 40));
  check_int "size_of" 48 (Shadow.Shadow_heap.size_of heap p)

let expect_violation name kind_pred thunk =
  match thunk () with
  | _ -> Alcotest.fail (name ^ ": expected a violation")
  | exception Shadow.Report.Violation r ->
    check_bool (name ^ ": kind") true (kind_pred r.Shadow.Report.kind);
    r

let test_use_after_free_read () =
  let m, registry, heap = make_heap () in
  let p = Shadow.Shadow_heap.malloc heap ~site:"alloc-here" 48 in
  store m registry p 7;
  Shadow.Shadow_heap.free heap ~site:"free-here" p;
  let r =
    expect_violation "uaf read"
      (function Shadow.Report.Use_after_free Perm.Read -> true | _ -> false)
      (fun () -> load m registry p)
  in
  match r.Shadow.Report.object_info with
  | Some info ->
    Alcotest.check Alcotest.string "alloc site" "alloc-here"
      info.Shadow.Report.alloc_site;
    Alcotest.check
      Alcotest.(option string)
      "free site" (Some "free-here") info.Shadow.Report.free_site;
    check_int "offset" 0 info.Shadow.Report.offset
  | None -> Alcotest.fail "diagnostics missing"

let test_use_after_free_write () =
  let m, registry, heap = make_heap () in
  let p = Shadow.Shadow_heap.malloc heap 32 in
  Shadow.Shadow_heap.free heap p;
  ignore
    (expect_violation "uaf write"
       (function Shadow.Report.Use_after_free Perm.Write -> true | _ -> false)
       (fun () -> store m registry p 1; 0))

let test_interior_offset_diagnosed () =
  let m, registry, heap = make_heap () in
  let p = Shadow.Shadow_heap.malloc heap 64 in
  Shadow.Shadow_heap.free heap p;
  let r =
    expect_violation "interior uaf"
      (function Shadow.Report.Use_after_free _ -> true | _ -> false)
      (fun () -> load m registry (p + 24))
  in
  match r.Shadow.Report.object_info with
  | Some info -> check_int "interior offset" 24 info.Shadow.Report.offset
  | None -> Alcotest.fail "diagnostics missing"

let test_double_free () =
  let _, _, heap = make_heap () in
  let p = Shadow.Shadow_heap.malloc heap 32 in
  Shadow.Shadow_heap.free heap p;
  ignore
    (expect_violation "double free"
       (function Shadow.Report.Double_free -> true | _ -> false)
       (fun () -> Shadow.Shadow_heap.free heap p; 0))

let test_invalid_free_interior () =
  let _, _, heap = make_heap () in
  let p = Shadow.Shadow_heap.malloc heap 64 in
  ignore
    (expect_violation "interior free"
       (function Shadow.Report.Invalid_free -> true | _ -> false)
       (fun () -> Shadow.Shadow_heap.free heap (p + 8); 0))

let test_invalid_free_wild () =
  let m, _, heap = make_heap () in
  let wild = Kernel.mmap m ~pages:1 in
  ignore
    (expect_violation "wild free"
       (function Shadow.Report.Invalid_free -> true | _ -> false)
       (fun () -> Shadow.Shadow_heap.free heap (wild + 8); 0))

(* ---- the paper's structural claims ---- *)

let test_objects_share_physical_page () =
  (* Several small objects: distinct shadow (virtual) pages, same
     underlying physical frame as the canonical page. *)
  let m, registry, heap = make_heap () in
  let p1 = Shadow.Shadow_heap.malloc heap 32 in
  let p2 = Shadow.Shadow_heap.malloc heap 32 in
  check_bool "distinct virtual pages" true
    (Addr.page_index p1 <> Addr.page_index p2);
  let frame_of a =
    match Page_table.lookup m.Machine.page_table ~page:(Addr.page_index a) with
    | Some { Page_table.frame; _ } -> frame
    | None -> Alcotest.fail "unmapped"
  in
  check_int "same physical frame" (frame_of p1) (frame_of p2);
  (* Freeing one must not disturb the other. *)
  store m registry p2 55;
  Shadow.Shadow_heap.free heap p1;
  check_int "sibling object intact" 55 (load m registry p2)

let test_offset_preserved () =
  (* The shadow address has the same page offset as the canonical one
     (cache-index preservation, §3.1). *)
  let _, registry, heap = make_heap () in
  ignore registry;
  let ps = List.init 8 (fun _ -> Shadow.Shadow_heap.malloc heap 32) in
  let offsets = List.map Addr.offset ps in
  check_bool "offsets vary within page (not all page-aligned)" true
    (List.exists (fun o -> o <> List.hd offsets) offsets
     || List.length (List.sort_uniq compare offsets) >= 1)

let test_physical_parity_with_plain_allocator () =
  (* Same allocation trace, with and without the wrapper: physical frame
     usage must be (nearly) identical — the paper's headline property. *)
  let trace h_alloc h_free =
    let live = Queue.create () in
    for i = 1 to 200 do
      Queue.push (h_alloc (16 + (i mod 5 * 24))) live;
      if i mod 3 = 0 then h_free (Queue.pop live)
    done
  in
  let m_plain = Machine.create () in
  let plain = Heap.Freelist_malloc.create m_plain in
  trace (Heap.Freelist_malloc.alloc plain) (Heap.Freelist_malloc.dealloc plain);
  let m_shadow, _, heap = make_heap () in
  trace
    (fun size -> Shadow.Shadow_heap.malloc heap size)
    (fun a -> Shadow.Shadow_heap.free heap a);
  let plain_frames = Frame_table.peak_frames m_plain.Machine.frames in
  let shadow_frames = Frame_table.peak_frames m_shadow.Machine.frames in
  (* Allow slack for the one-word header shifting size classes. *)
  check_bool
    (Printf.sprintf "physical parity (%d vs %d)" plain_frames shadow_frames)
    true
    (shadow_frames <= plain_frames + (plain_frames / 4) + 2)

let test_syscall_per_alloc_and_free () =
  let m, _, heap = make_heap () in
  let before = Stats.snapshot m.Machine.stats in
  let p = Shadow.Shadow_heap.malloc heap 32 in
  let mid = Stats.snapshot m.Machine.stats in
  check_int "one mremap per allocation" 1
    Stats.(mid.syscalls_mremap - before.syscalls_mremap);
  Shadow.Shadow_heap.free heap p;
  let last = Stats.snapshot m.Machine.stats in
  check_int "one mprotect per free" 1
    Stats.(last.syscalls_mprotect - mid.syscalls_mprotect)

let test_multi_page_object () =
  let m, registry, heap = make_heap () in
  let size = Addr.page_size + 500 in
  let p = Shadow.Shadow_heap.malloc heap size in
  store m registry (p + size - 8) 31;
  check_int "spanning write" 31 (load m registry (p + size - 8));
  Shadow.Shadow_heap.free heap p;
  (* Every page of the object must trap. *)
  ignore
    (expect_violation "first page"
       (function Shadow.Report.Use_after_free _ -> true | _ -> false)
       (fun () -> load m registry p));
  ignore
    (expect_violation "last page"
       (function Shadow.Report.Use_after_free _ -> true | _ -> false)
       (fun () -> load m registry (p + size - 8)))

let test_allocator_agnostic () =
  (* The same wrapper over a completely different allocator. *)
  let m = Machine.create () in
  let registry = Shadow.Object_registry.create () in
  let bump = Heap.Bump_alloc.create m in
  let heap =
    Shadow.Shadow_heap.create ~registry
      ~allocator:(Heap.Bump_alloc.as_allocator bump)
      m
  in
  let p = Shadow.Shadow_heap.malloc heap 40 in
  store m registry p 9;
  check_int "bump-backed readback" 9 (load m registry p);
  Shadow.Shadow_heap.free heap p;
  ignore
    (expect_violation "bump-backed uaf"
       (function Shadow.Report.Use_after_free _ -> true | _ -> false)
       (fun () -> load m registry p))

let test_stale_pointer_arbitrarily_later () =
  let m, registry, heap = make_heap () in
  let p = Shadow.Shadow_heap.malloc heap 32 in
  Shadow.Shadow_heap.free heap p;
  (* Lots of intervening allocation reusing the physical memory. *)
  for _ = 1 to 500 do
    let q = Shadow.Shadow_heap.malloc heap 32 in
    store m registry q 1
  done;
  ignore
    (expect_violation "detected arbitrarily later"
       (function Shadow.Report.Use_after_free _ -> true | _ -> false)
       (fun () -> load m registry p))

(* ---- shadow pool (§3.3) ---- *)

let make_pool ?reuse_shadow_va () =
  let m = Machine.create () in
  let registry = Shadow.Object_registry.create () in
  let recycler = Apa.Page_recycler.create () in
  let pool =
    Shadow.Shadow_pool.create ?reuse_shadow_va ~recycler ~registry m
  in
  (m, registry, recycler, pool)

let test_pool_detection () =
  let m, registry, _, pool = make_pool () in
  let p = Shadow.Shadow_pool.alloc pool ~site:"p" 32 in
  store m registry p 3;
  Shadow.Shadow_pool.free pool ~site:"f" p;
  ignore
    (expect_violation "pool uaf"
       (function Shadow.Report.Use_after_free _ -> true | _ -> false)
       (fun () -> load m registry p))

let test_pool_destroy_recycles_shadow_and_canonical () =
  let m, _, recycler, pool = make_pool () in
  ignore m;
  let p = Shadow.Shadow_pool.alloc pool 32 in
  let q = Shadow.Shadow_pool.alloc pool 32 in
  ignore p;
  Shadow.Shadow_pool.free pool q;
  check_int "before destroy nothing recycled" 0
    (Apa.Page_recycler.available_pages recycler);
  let shadow_pages = Shadow.Shadow_pool.shadow_pages_live pool in
  check_bool "holds shadow pages" true (shadow_pages >= 2);
  Shadow.Shadow_pool.destroy pool;
  check_bool "destroy recycled shadow + canonical pages" true
    (Apa.Page_recycler.available_pages recycler > shadow_pages)

let test_pool_va_bounded_across_generations () =
  let m = Machine.create () in
  let registry = Shadow.Object_registry.create () in
  let recycler = Apa.Page_recycler.create () in
  let one_generation () =
    let pool = Shadow.Shadow_pool.create ~recycler ~registry m in
    for i = 1 to 30 do
      let a = Shadow.Shadow_pool.alloc pool 32 in
      Mmu.store m a ~width:8 i
    done;
    Shadow.Shadow_pool.destroy pool
  in
  one_generation ();
  let va_after_first = Machine.va_bytes_used m in
  for _ = 1 to 10 do
    one_generation ()
  done;
  check_int "VA flat in steady state (full reuse)" va_after_first
    (Machine.va_bytes_used m)

let test_pool_no_shadow_reuse_grows_va () =
  (* Ablation: with reuse_shadow_va = false, shadow pages consume fresh
     addresses every generation. *)
  let m = Machine.create () in
  let registry = Shadow.Object_registry.create () in
  let recycler = Apa.Page_recycler.create () in
  let one_generation () =
    let pool =
      Shadow.Shadow_pool.create ~reuse_shadow_va:false ~recycler ~registry m
    in
    for _ = 1 to 30 do
      ignore (Shadow.Shadow_pool.alloc pool 32)
    done;
    Shadow.Shadow_pool.destroy pool
  in
  one_generation ();
  let va_after_first = Machine.va_bytes_used m in
  one_generation ();
  check_bool "VA grows without shadow reuse" true
    (Machine.va_bytes_used m > va_after_first)

let test_registry_forgotten_after_destroy () =
  let _, registry, _, pool = make_pool () in
  let p = Shadow.Shadow_pool.alloc pool 32 in
  Shadow.Shadow_pool.free pool p;
  check_int "retained while pool lives" 1
    (Shadow.Object_registry.freed_retained_count registry);
  Shadow.Shadow_pool.destroy pool;
  check_int "records dropped at destroy" 0
    (Shadow.Object_registry.freed_retained_count registry)

let test_reclaim_freed_shadow () =
  let m, registry, recycler, pool = make_pool () in
  ignore m;
  ignore registry;
  let p = Shadow.Shadow_pool.alloc pool 32 in
  let q = Shadow.Shadow_pool.alloc pool 32 in
  Shadow.Shadow_pool.free pool p;
  check_int "one freed shadow page" 1 (Shadow.Shadow_pool.freed_shadow_pages pool);
  let reclaimed = Shadow.Shadow_pool.reclaim_freed_shadow pool in
  check_int "reclaimed it" 1 reclaimed;
  check_int "now on the free list" 1 (Apa.Page_recycler.available_pages recycler);
  check_int "no double count" 0 (Shadow.Shadow_pool.freed_shadow_pages pool);
  (* The live object is untouched. *)
  ignore q;
  Shadow.Shadow_pool.destroy pool

(* ---- §3.4 policies + exhaustion ---- *)

let test_interval_reuse_policy () =
  let _, _, recycler, pool = make_pool () in
  let policy =
    Shadow.Reuse_policy.create
      (Shadow.Reuse_policy.Interval_reuse { trigger_pages = 5 })
      pool
  in
  for i = 1 to 10 do
    let p = Shadow.Shadow_pool.alloc pool 32 in
    Shadow.Shadow_pool.free pool p;
    Shadow.Reuse_policy.after_free policy;
    ignore i
  done;
  check_bool "policy reclaimed at the threshold" true
    (Shadow.Reuse_policy.reclaimed_pages policy >= 5);
  check_bool "free list populated" true
    (Apa.Page_recycler.available_pages recycler > 0)

let test_conservative_gc_policy () =
  let m, _, _, pool = make_pool () in
  let policy =
    Shadow.Reuse_policy.create
      (Shadow.Reuse_policy.Conservative_gc
         { trigger_pages = 3; scan_cost_per_object = 50 })
      pool
  in
  let keep = List.init 4 (fun _ -> Shadow.Shadow_pool.alloc pool 32) in
  ignore keep;
  let instr_before = (Stats.snapshot m.Machine.stats).Stats.instructions in
  for _ = 1 to 6 do
    let p = Shadow.Shadow_pool.alloc pool 32 in
    Shadow.Shadow_pool.free pool p;
    Shadow.Reuse_policy.after_free policy
  done;
  check_bool "gc ran" true (Shadow.Reuse_policy.gc_runs policy >= 1);
  check_bool "scan cost charged" true
    ((Stats.snapshot m.Machine.stats).Stats.instructions > instr_before)

let test_manual_policy_never_reclaims () =
  let _, _, _, pool = make_pool () in
  let policy = Shadow.Reuse_policy.create Shadow.Reuse_policy.Manual pool in
  for _ = 1 to 10 do
    let p = Shadow.Shadow_pool.alloc pool 32 in
    Shadow.Shadow_pool.free pool p;
    Shadow.Reuse_policy.after_free policy
  done;
  check_int "manual reclaims nothing" 0 (Shadow.Reuse_policy.reclaimed_pages policy)

let test_exhaustion_model () =
  let hours = Shadow.Exhaustion.paper_example_hours () in
  check_bool
    (Printf.sprintf "paper's 'at least 9 hours' (%.2f)" hours)
    true
    (hours >= 9.0 && hours < 10.0);
  let pages =
    Shadow.Exhaustion.pages_for_runtime ~seconds:3600. ~allocs_per_second:1000.
      ~pages_per_alloc:1.
  in
  Alcotest.check (Alcotest.float 0.1) "pages for an hour" 3_600_000. pages

let test_cache_behaviour_preserved () =
  (* Paper §3.1: multiple objects stay contiguous within the physical
     page, "preserving spatial locality in physically indexed caches".
     Same trace under plain, shadow, and Electric Fence; the cache miss
     counts of plain and shadow must track, while Electric Fence (one
     physical page per object) misses far more. *)
  let trace alloc load_w =
    let objs = Array.init 64 (fun _ -> alloc 32) in
    for pass = 1 to 5 do
      Array.iter (fun p -> ignore (load_w (p + (pass mod 3 * 8)))) objs
    done
  in
  let misses_of setup =
    let m = Machine.create () in
    let alloc, load_w = setup m in
    trace alloc load_w;
    (Stats.snapshot m.Machine.stats).Stats.cache_misses
  in
  let plain =
    misses_of (fun m ->
        let h = Heap.Freelist_malloc.create m in
        ( Heap.Freelist_malloc.alloc h,
          fun a -> Mmu.load m a ~width:8 ))
  in
  let shadowed =
    misses_of (fun m ->
        let registry = Shadow.Object_registry.create () in
        let h =
          Shadow.Shadow_heap.create ~registry
            ~allocator:
              (Heap.Freelist_malloc.as_allocator (Heap.Freelist_malloc.create m))
            m
        in
        ( (fun size -> Shadow.Shadow_heap.malloc h size),
          fun a -> Mmu.load m a ~width:8 ))
  in
  let efence =
    misses_of (fun m ->
        let s = Baseline.Efence.scheme m in
        ( (fun size -> s.Runtime.Scheme.malloc size),
          fun a -> s.Runtime.Scheme.load a ~width:8 ))
  in
  check_bool
    (Printf.sprintf "shadow ~ plain (%d vs %d)" shadowed plain)
    true
    (shadowed <= plain + (plain / 3) + 4);
  check_bool
    (Printf.sprintf "efence much worse (%d vs %d)" efence shadowed)
    true
    (efence > 2 * shadowed)

(* ---- soundness / precision property ---- *)

type model_obj = { addr : Addr.t; size : int; mutable freed : bool; tag : int }

(* Random traces of allocs, frees, and reads: every access to a freed
   object must raise a use-after-free violation; every access to a live
   object must succeed and return the value the model expects. *)
let prop_soundness_and_precision =
  QCheck.Test.make ~name:"shadow: sound and precise on random traces"
    ~count:40
    QCheck.(list_of_size (Gen.int_range 10 200) (pair (int_bound 5) (int_bound 1000)))
    (fun ops ->
      let m, registry, heap = make_heap () in
      let objects : model_obj array = Array.make 512 { addr = 0; size = 0; freed = true; tag = 0 } in
      let count = ref 0 in
      let ok = ref true in
      let do_alloc r =
        if !count < 512 then begin
          let size = 8 + (r mod 120) in
          let addr = Shadow.Shadow_heap.malloc heap size in
          let tag = r lxor 0x5A5A in
          store m registry addr tag;
          objects.(!count) <- { addr; size; freed = false; tag };
          incr count
        end
      in
      let pick r = if !count = 0 then None else Some objects.(r mod !count) in
      let do_free r =
        match pick r with
        | Some obj when not obj.freed ->
          Shadow.Shadow_heap.free heap obj.addr;
          obj.freed <- true
        | Some _ | None -> ()
      in
      let do_read r =
        match pick r with
        | None -> ()
        | Some obj ->
          (match load m registry obj.addr with
           | v ->
             if obj.freed then ok := false (* missed detection *)
             else if v <> obj.tag then ok := false (* corruption *)
           | exception Shadow.Report.Violation rep ->
             let is_uaf =
               match rep.Shadow.Report.kind with
               | Shadow.Report.Use_after_free _ -> true
               | _ -> false
             in
             if not (obj.freed && is_uaf) then ok := false)
      in
      List.iter
        (fun (op, r) ->
          match op with
          | 0 | 1 -> do_alloc r
          | 2 -> do_free r
          | _ -> do_read r)
        ops;
      !ok)

let prop_pool_soundness =
  QCheck.Test.make ~name:"shadow-pool: sound on random traces with reuse"
    ~count:25
    QCheck.(list_of_size (Gen.int_range 10 120) (pair (int_bound 5) (int_bound 1000)))
    (fun ops ->
      let m, registry, _, pool = make_pool () in
      let live = ref [] in
      let freed = ref [] in
      let ok = ref true in
      List.iter
        (fun (op, r) ->
          match op with
          | 0 | 1 ->
            let a = Shadow.Shadow_pool.alloc pool (8 + (r mod 60)) in
            store m registry a r;
            live := (a, r) :: !live
          | 2 ->
            (match !live with
             | (a, _) :: rest ->
               Shadow.Shadow_pool.free pool a;
               freed := a :: !freed;
               live := rest
             | [] -> ())
          | _ ->
            (match !freed with
             | a :: _ ->
               (match load m registry a with
                | _ -> ok := false
                | exception Shadow.Report.Violation _ -> ())
             | [] ->
               (match !live with
                | (a, v) :: _ -> if load m registry a <> v then ok := false
                | [] -> ())))
        ops;
      !ok)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "shadow"
    [
      ( "mechanism",
        [
          Alcotest.test_case "alloc/read/write" `Quick test_alloc_read_write;
          Alcotest.test_case "uaf read + diagnostics" `Quick
            test_use_after_free_read;
          Alcotest.test_case "uaf write" `Quick test_use_after_free_write;
          Alcotest.test_case "interior offset" `Quick
            test_interior_offset_diagnosed;
          Alcotest.test_case "double free" `Quick test_double_free;
          Alcotest.test_case "invalid free (interior)" `Quick
            test_invalid_free_interior;
          Alcotest.test_case "invalid free (wild)" `Quick
            test_invalid_free_wild;
        ] );
      ( "structure",
        [
          Alcotest.test_case "objects share physical page" `Quick
            test_objects_share_physical_page;
          Alcotest.test_case "offset preserved" `Quick test_offset_preserved;
          Alcotest.test_case "physical parity" `Quick
            test_physical_parity_with_plain_allocator;
          Alcotest.test_case "syscalls per op" `Quick
            test_syscall_per_alloc_and_free;
          Alcotest.test_case "multi-page objects" `Quick test_multi_page_object;
          Alcotest.test_case "allocator agnostic" `Quick test_allocator_agnostic;
          Alcotest.test_case "detected arbitrarily later" `Quick
            test_stale_pointer_arbitrarily_later;
          Alcotest.test_case "cache behaviour preserved" `Quick
            test_cache_behaviour_preserved;
        ] );
      ( "pool",
        [
          Alcotest.test_case "detection" `Quick test_pool_detection;
          Alcotest.test_case "destroy recycles" `Quick
            test_pool_destroy_recycles_shadow_and_canonical;
          Alcotest.test_case "VA bounded" `Quick
            test_pool_va_bounded_across_generations;
          Alcotest.test_case "no shadow reuse grows VA" `Quick
            test_pool_no_shadow_reuse_grows_va;
          Alcotest.test_case "registry forgotten" `Quick
            test_registry_forgotten_after_destroy;
          Alcotest.test_case "reclaim freed shadow" `Quick
            test_reclaim_freed_shadow;
        ] );
      ( "policies",
        [
          Alcotest.test_case "interval reuse" `Quick test_interval_reuse_policy;
          Alcotest.test_case "conservative gc" `Quick
            test_conservative_gc_policy;
          Alcotest.test_case "manual" `Quick test_manual_policy_never_reclaims;
          Alcotest.test_case "exhaustion model" `Quick test_exhaustion_model;
        ] );
      ( "properties",
        qcheck [ prop_soundness_and_precision; prop_pool_soundness ] );
    ]
