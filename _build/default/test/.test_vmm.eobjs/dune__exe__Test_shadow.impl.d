test/test_shadow.ml: Addr Alcotest Apa Array Baseline Frame_table Gen Heap Kernel List Machine Mmu Page_table Perm Printf QCheck QCheck_alcotest Queue Runtime Shadow Stats Vmm
