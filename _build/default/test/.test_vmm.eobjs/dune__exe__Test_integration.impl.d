test/test_integration.ml: Addr Alcotest Baseline Filename Harness In_channel List Machine Minic Printf Runtime Shadow Stats String Sys Vmm Workload
