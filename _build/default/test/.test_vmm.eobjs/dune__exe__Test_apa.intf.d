test/test_apa.mli:
