test/test_workload.ml: Alcotest Baseline List Machine Printf QCheck QCheck_alcotest Runtime Stats Vmm Workload
