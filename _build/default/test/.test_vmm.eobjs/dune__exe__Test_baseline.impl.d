test/test_baseline.ml: Addr Alcotest Baseline Frame_table Machine Perm Printf QCheck QCheck_alcotest Runtime Shadow Stats Vmm
