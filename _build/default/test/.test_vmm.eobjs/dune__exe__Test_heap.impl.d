test/test_heap.ml: Addr Alcotest Gen Heap Kernel List Machine Mmu QCheck QCheck_alcotest Vmm
