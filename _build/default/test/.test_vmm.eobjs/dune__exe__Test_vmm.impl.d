test/test_vmm.ml: Addr Alcotest Cache Cost_model Fault Frame_table Kernel List Machine Mmu Page_table Perm QCheck QCheck_alcotest Stats Tlb Vmm
