test/test_runtime.ml: Addr Alcotest Baseline Machine QCheck QCheck_alcotest Runtime Shadow Stats Vmm
