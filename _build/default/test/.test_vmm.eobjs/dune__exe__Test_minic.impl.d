test/test_minic.ml: Alcotest Buffer Gen List Minic Option Printf QCheck QCheck_alcotest Runtime Shadow Vmm
