test/test_apa.ml: Addr Alcotest Apa Fault Frame_table Machine Mmu QCheck QCheck_alcotest Vmm
