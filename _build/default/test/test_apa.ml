(* Tests for the pool-allocation runtime: the shared page recycler and
   the poolinit/poolalloc/poolfree/pooldestroy lifecycle with its three
   reclamation policies. *)

open Vmm

let check_int = Alcotest.check Alcotest.int
let check_bool = Alcotest.check Alcotest.bool

(* ---- Page recycler ---- *)

let test_recycler_roundtrip () =
  let r = Apa.Page_recycler.create () in
  check_bool "empty take" true (Apa.Page_recycler.take r ~pages:1 = None);
  Apa.Page_recycler.put r ~base:(Addr.of_page 10) ~pages:4;
  check_int "available" 4 (Apa.Page_recycler.available_pages r);
  (match Apa.Page_recycler.take r ~pages:4 with
   | Some base -> check_int "exact range back" (Addr.of_page 10) base
   | None -> Alcotest.fail "take failed");
  check_int "drained" 0 (Apa.Page_recycler.available_pages r)

let test_recycler_split () =
  let r = Apa.Page_recycler.create () in
  Apa.Page_recycler.put r ~base:(Addr.of_page 20) ~pages:6;
  (match Apa.Page_recycler.take r ~pages:2 with
   | Some base -> check_int "head of range" (Addr.of_page 20) base
   | None -> Alcotest.fail "take failed");
  check_int "leftover stored" 4 (Apa.Page_recycler.available_pages r);
  (match Apa.Page_recycler.take r ~pages:4 with
   | Some base -> check_int "tail reused" (Addr.of_page 22) base
   | None -> Alcotest.fail "tail take failed")

let test_recycler_too_small () =
  let r = Apa.Page_recycler.create () in
  Apa.Page_recycler.put r ~base:(Addr.of_page 1) ~pages:2;
  check_bool "no big-enough range" true (Apa.Page_recycler.take r ~pages:3 = None);
  check_int "counters" 2 (Apa.Page_recycler.total_recycled_pages r);
  check_int "nothing reused" 0 (Apa.Page_recycler.total_reused_pages r)

(* ---- Pool lifecycle ---- *)

let test_pool_alloc_free () =
  let m = Machine.create () in
  let pool = Apa.Pool.create ~reclaim:Apa.Pool.Leak m in
  let a = Apa.Pool.alloc pool 64 in
  Mmu.store m a ~width:8 11;
  check_int "readback" 11 (Mmu.load m a ~width:8);
  check_int "live" 1 (Apa.Pool.live_blocks pool);
  Apa.Pool.dealloc pool a;
  check_int "freed" 0 (Apa.Pool.live_blocks pool);
  let b = Apa.Pool.alloc pool 64 in
  check_int "pool-internal reuse" a b

let test_pool_destroy_recycles () =
  let m = Machine.create () in
  let r = Apa.Page_recycler.create () in
  let pool = Apa.Pool.create ~arena_pages:4 ~reclaim:(Apa.Pool.Recycle r) m in
  ignore (Apa.Pool.alloc pool 64);
  let owned = Apa.Pool.owned_pages pool in
  check_bool "owns pages" true (owned > 0);
  Apa.Pool.destroy pool;
  check_int "all pages recycled" owned (Apa.Page_recycler.available_pages r);
  check_bool "destroyed" true (Apa.Pool.is_destroyed pool)

let test_pool_va_reuse_across_pools () =
  let m = Machine.create () in
  let r = Apa.Page_recycler.create () in
  let make () = Apa.Pool.create ~arena_pages:4 ~reclaim:(Apa.Pool.Recycle r) m in
  let p1 = make () in
  let a1 = Apa.Pool.alloc p1 64 in
  Apa.Pool.destroy p1;
  let p2 = make () in
  let a2 = Apa.Pool.alloc p2 64 in
  check_int "second pool reuses the same virtual page" a1 a2;
  (* Reuse must come with fresh contents (new physical backing). *)
  check_int "fresh backing" 0 (Mmu.load m (a2 + 8) ~width:8)

let test_pool_unmap_policy () =
  let m = Machine.create () in
  let pool = Apa.Pool.create ~arena_pages:2 ~reclaim:Apa.Pool.Unmap m in
  let a = Apa.Pool.alloc pool 64 in
  Apa.Pool.destroy pool;
  (match Mmu.load m a ~width:8 with
   | _ -> Alcotest.fail "expected unmapped fault"
   | exception Fault.Trap (Fault.Unmapped _) -> ()
   | exception Fault.Trap _ -> Alcotest.fail "wrong fault")

let test_pool_frames_released_on_reuse () =
  let m = Machine.create () in
  let r = Apa.Page_recycler.create () in
  let p1 = Apa.Pool.create ~arena_pages:4 ~reclaim:(Apa.Pool.Recycle r) m in
  ignore (Apa.Pool.alloc p1 64);
  Apa.Pool.destroy p1;
  let frames_idle = Frame_table.live_frames m.Machine.frames in
  let p2 = Apa.Pool.create ~arena_pages:4 ~reclaim:(Apa.Pool.Recycle r) m in
  ignore (Apa.Pool.alloc p2 64);
  (* Reusing the recycled range rebinds it to fresh frames and releases
     the old ones: steady state, not growth. *)
  check_int "frames stable across pool generations" frames_idle
    (Frame_table.live_frames m.Machine.frames)

let test_destroyed_pool_rejects_use () =
  let m = Machine.create () in
  let pool = Apa.Pool.create ~reclaim:Apa.Pool.Leak m in
  Apa.Pool.destroy pool;
  Alcotest.check_raises "alloc after destroy"
    (Invalid_argument "Pool.alloc: pool already destroyed") (fun () ->
      ignore (Apa.Pool.alloc pool 8));
  Alcotest.check_raises "double destroy"
    (Invalid_argument "Pool.destroy: pool already destroyed") (fun () ->
      Apa.Pool.destroy pool)

let test_elem_size_hint () =
  let m = Machine.create () in
  let pool = Apa.Pool.create ~elem_size:24 ~reclaim:Apa.Pool.Leak m in
  check_bool "hint recorded" true (Apa.Pool.elem_size pool = Some 24);
  (* The hint does not restrict sizes. *)
  ignore (Apa.Pool.alloc pool 100)

let prop_pool_generations =
  QCheck.Test.make ~name:"pool: repeated create/use/destroy bounds VA"
    ~count:20
    QCheck.(int_range 2 12)
    (fun generations ->
      let m = Machine.create () in
      let r = Apa.Page_recycler.create () in
      for _ = 1 to generations do
        let p = Apa.Pool.create ~arena_pages:2 ~reclaim:(Apa.Pool.Recycle r) m in
        for i = 1 to 20 do
          let a = Apa.Pool.alloc p (16 + (i mod 4 * 16)) in
          Mmu.store m a ~width:8 i
        done;
        Apa.Pool.destroy p
      done;
      (* VA consumption must not scale with the generation count: every
         generation after the first reuses recycled ranges. *)
      Machine.va_bytes_used m <= 8 * Addr.page_size * 4)

let () =
  Alcotest.run "apa"
    [
      ( "recycler",
        [
          Alcotest.test_case "roundtrip" `Quick test_recycler_roundtrip;
          Alcotest.test_case "split" `Quick test_recycler_split;
          Alcotest.test_case "too small" `Quick test_recycler_too_small;
        ] );
      ( "pool",
        [
          Alcotest.test_case "alloc/free" `Quick test_pool_alloc_free;
          Alcotest.test_case "destroy recycles" `Quick
            test_pool_destroy_recycles;
          Alcotest.test_case "VA reuse across pools" `Quick
            test_pool_va_reuse_across_pools;
          Alcotest.test_case "unmap policy" `Quick test_pool_unmap_policy;
          Alcotest.test_case "frames steady" `Quick
            test_pool_frames_released_on_reuse;
          Alcotest.test_case "destroyed rejects use" `Quick
            test_destroyed_pool_rejects_use;
          Alcotest.test_case "elem size hint" `Quick test_elem_size_hint;
        ]
        @ [ QCheck_alcotest.to_alcotest prop_pool_generations ] );
    ]
