(* Tests for the related-work baselines: Electric Fence, the
   Valgrind-style quarantine checker, and the capability-store checker —
   in particular the detection-guarantee differences the paper's §5
   argues about. *)

open Vmm

let check_int = Alcotest.check Alcotest.int
let check_bool = Alcotest.check Alcotest.bool

let expect_violation name kind_pred thunk =
  match thunk () with
  | _ -> Alcotest.fail (name ^ ": expected a violation")
  | exception Shadow.Report.Violation r ->
    check_bool (name ^ ": kind") true (kind_pred r.Shadow.Report.kind)

let is_uaf = function Shadow.Report.Use_after_free _ -> true | _ -> false
let is_double = function Shadow.Report.Double_free -> true | _ -> false

(* ---- Electric Fence ---- *)

let efence () = Baseline.Efence.scheme (Machine.create ())

let test_efence_roundtrip () =
  let s = efence () in
  let p = s.Runtime.Scheme.malloc 40 in
  s.Runtime.Scheme.store p ~width:8 5;
  check_int "readback" 5 (s.Runtime.Scheme.load p ~width:8)

let test_efence_detects_uaf () =
  let s = efence () in
  let p = s.Runtime.Scheme.malloc 40 in
  s.Runtime.Scheme.free p;
  expect_violation "efence uaf" is_uaf (fun () ->
      s.Runtime.Scheme.load p ~width:8)

let test_efence_detects_double_free () =
  let s = efence () in
  let p = s.Runtime.Scheme.malloc 40 in
  s.Runtime.Scheme.free p;
  expect_violation "efence double free" is_double (fun () ->
      s.Runtime.Scheme.free p;
      0)

let test_efence_guard_page_catches_overflow () =
  let s = efence () in
  let p = s.Runtime.Scheme.malloc 40 in
  (* Past the object's last page lies the protected guard page. *)
  let guard = Addr.page_base p + Addr.page_size in
  expect_violation "guard page"
    (function Shadow.Report.Wild_access _ -> true | _ -> false)
    (fun () -> s.Runtime.Scheme.load guard ~width:8)

let test_efence_physical_blowup () =
  (* The flaw the paper fixes: one physical frame per object. *)
  let s_ef = efence () in
  for _ = 1 to 400 do
    ignore (s_ef.Runtime.Scheme.malloc 16)
  done;
  let ef_frames =
    Frame_table.peak_frames s_ef.Runtime.Scheme.machine.Machine.frames
  in
  let m = Machine.create () in
  let s_ours = Runtime.Schemes.shadow_basic m in
  for _ = 1 to 400 do
    ignore (s_ours.Runtime.Scheme.malloc 16)
  done;
  let our_frames = Frame_table.peak_frames m.Machine.frames in
  check_bool
    (Printf.sprintf "efence frames (%d) far exceed ours (%d)" ef_frames
       our_frames)
    true
    (ef_frames > 5 * our_frames)

let test_efence_one_byte_overrun () =
  (* End-of-page placement: even +1 past the object hits the guard. *)
  let s = efence () in
  let p = s.Runtime.Scheme.malloc 40 in
  expect_violation "one-byte overrun"
    (function Shadow.Report.Wild_access _ -> true | _ -> false)
    (fun () -> s.Runtime.Scheme.load (p + 40) ~width:1)

(* ---- combined spatial+temporal scheme ---- *)

let spatial () = Runtime.Schemes.shadow_pool_spatial (Machine.create ())

let test_spatial_in_bounds_ok () =
  let s = spatial () in
  let p = s.Runtime.Scheme.malloc 48 in
  s.Runtime.Scheme.store p ~width:8 5;
  s.Runtime.Scheme.store (p + 40) ~width:8 6;
  check_int "first" 5 (s.Runtime.Scheme.load p ~width:8);
  check_int "last" 6 (s.Runtime.Scheme.load (p + 40) ~width:8)

let test_spatial_overflow_detected () =
  let s = spatial () in
  let p = s.Runtime.Scheme.malloc 48 in
  (match s.Runtime.Scheme.load (p + 48) ~width:8 with
   | _ -> Alcotest.fail "overflow read not detected"
   | exception Shadow.Report.Violation r ->
     (match r.Shadow.Report.kind, r.Shadow.Report.object_info with
      | Shadow.Report.Out_of_bounds Perm.Read, Some info ->
        check_int "offset diagnosed" 48 info.Shadow.Report.offset
      | _ -> Alcotest.fail "wrong kind or missing info"));
  match s.Runtime.Scheme.store (p + 56) ~width:8 1 with
  | () -> Alcotest.fail "overflow write not detected"
  | exception Shadow.Report.Violation { Shadow.Report.kind = Shadow.Report.Out_of_bounds Perm.Write; _ } ->
    ()
  | exception Shadow.Report.Violation _ -> Alcotest.fail "wrong kind"

let test_spatial_straddling_access_detected () =
  (* A wide access that begins in bounds but ends past the object. *)
  let s = spatial () in
  let p = s.Runtime.Scheme.malloc 48 in
  match s.Runtime.Scheme.load (p + 44) ~width:8 with
  | _ -> Alcotest.fail "straddling access not detected"
  | exception Shadow.Report.Violation { Shadow.Report.kind = Shadow.Report.Out_of_bounds _; _ } ->
    ()
  | exception Shadow.Report.Violation _ -> Alcotest.fail "wrong kind"

let test_spatial_still_catches_temporal () =
  let s = spatial () in
  let p = s.Runtime.Scheme.malloc 48 in
  s.Runtime.Scheme.free p;
  expect_violation "uaf still caught" is_uaf (fun () ->
      s.Runtime.Scheme.load p ~width:8);
  expect_violation "double free still caught" is_double (fun () ->
      s.Runtime.Scheme.free p;
      0)

let test_spatial_check_cost_charged () =
  let s = spatial () in
  let machine = s.Runtime.Scheme.machine in
  let p = s.Runtime.Scheme.malloc 48 in
  let before = (Stats.snapshot machine.Machine.stats).Stats.instructions in
  ignore (s.Runtime.Scheme.load p ~width:8);
  check_bool "bounds check instructions" true
    ((Stats.snapshot machine.Machine.stats).Stats.instructions - before >= 6)

(* ---- Valgrind model ---- *)

let valgrind ?config () =
  Baseline.Valgrind_sim.scheme ?config (Machine.create ())

let test_valgrind_roundtrip () =
  let s = valgrind () in
  let p = s.Runtime.Scheme.malloc 48 in
  s.Runtime.Scheme.store p ~width:8 21;
  check_int "readback" 21 (s.Runtime.Scheme.load p ~width:8)

let test_valgrind_detects_immediate_uaf () =
  let s = valgrind () in
  let p = s.Runtime.Scheme.malloc 48 in
  s.Runtime.Scheme.free p;
  expect_violation "valgrind uaf in quarantine" is_uaf (fun () ->
      s.Runtime.Scheme.load p ~width:8)

let test_valgrind_misses_after_reuse () =
  (* The heuristic gap: a tiny quarantine, enough churn to recycle the
     block, and the stale read goes through silently. *)
  let config =
    { Baseline.Valgrind_sim.default_config with
      Baseline.Valgrind_sim.quarantine_blocks = 2 }
  in
  let s = valgrind ~config () in
  let p = s.Runtime.Scheme.malloc 48 in
  s.Runtime.Scheme.store p ~width:8 1234;
  s.Runtime.Scheme.free p;
  (* Overflow the quarantine with a different size class, then
     re-occupy the released block with a live allocation. *)
  for i = 1 to 10 do
    let q = s.Runtime.Scheme.malloc 96 in
    s.Runtime.Scheme.store q ~width:8 (9000 + i);
    s.Runtime.Scheme.free q
  done;
  for i = 1 to 4 do
    let q = s.Runtime.Scheme.malloc 48 in
    s.Runtime.Scheme.store q ~width:8 (9500 + i)
  done;
  (match s.Runtime.Scheme.load p ~width:8 with
   | v -> check_bool "silently read reused memory" true (v <> 1234)
   | exception Shadow.Report.Violation _ ->
     Alcotest.fail "expected the heuristic to miss after reuse")

let test_valgrind_detects_double_free () =
  let s = valgrind () in
  let p = s.Runtime.Scheme.malloc 32 in
  s.Runtime.Scheme.free p;
  expect_violation "valgrind double free" is_double (fun () ->
      s.Runtime.Scheme.free p;
      0)

let test_valgrind_overhead_charged () =
  let s = valgrind () in
  let machine = s.Runtime.Scheme.machine in
  let p = s.Runtime.Scheme.malloc 32 in
  let before = (Stats.snapshot machine.Machine.stats).Stats.instructions in
  ignore (s.Runtime.Scheme.load p ~width:8);
  s.Runtime.Scheme.compute 100;
  let after = (Stats.snapshot machine.Machine.stats).Stats.instructions in
  (* One checked access (60) plus 100 instructions under 12x DBT. *)
  check_bool "instrumentation cost" true (after - before >= 60 + 1200)

let test_valgrind_extra_memory () =
  let s = valgrind () in
  let p = s.Runtime.Scheme.malloc 4096 in
  s.Runtime.Scheme.free p;
  check_bool "quarantine + shadow memory accounted" true
    (s.Runtime.Scheme.extra_memory_bytes () >= 4096)

(* ---- Capability checker ---- *)

let capability () = Baseline.Capability_check.scheme (Machine.create ())

let test_capability_roundtrip () =
  let s = capability () in
  let p = s.Runtime.Scheme.malloc 48 in
  s.Runtime.Scheme.store p ~width:8 77;
  check_int "readback" 77 (s.Runtime.Scheme.load p ~width:8);
  (* Pointer arithmetic preserves the capability tag. *)
  s.Runtime.Scheme.store (p + 16) ~width:8 78;
  check_int "offset readback" 78 (s.Runtime.Scheme.load (p + 16) ~width:8)

let test_capability_detects_uaf_even_after_reuse () =
  let s = capability () in
  let p = s.Runtime.Scheme.malloc 48 in
  s.Runtime.Scheme.free p;
  for _ = 1 to 50 do
    let q = s.Runtime.Scheme.malloc 48 in
    s.Runtime.Scheme.store q ~width:8 1
  done;
  expect_violation "capability uaf survives reuse" is_uaf (fun () ->
      s.Runtime.Scheme.load p ~width:8)

let test_capability_double_free () =
  let s = capability () in
  let p = s.Runtime.Scheme.malloc 32 in
  s.Runtime.Scheme.free p;
  expect_violation "capability double free" is_double (fun () ->
      s.Runtime.Scheme.free p;
      0)

let test_capability_memory_overhead () =
  let s = capability () in
  for _ = 1 to 100 do
    ignore (s.Runtime.Scheme.malloc 16)
  done;
  check_bool "capability store grows" true
    (s.Runtime.Scheme.extra_memory_bytes () >= 100 * 48)

let test_capability_invalid_free () =
  let s = capability () in
  let p = s.Runtime.Scheme.malloc 64 in
  expect_violation "interior free"
    (function Shadow.Report.Invalid_free -> true | _ -> false)
    (fun () ->
      s.Runtime.Scheme.free (p + 8);
      0)

(* All guaranteed-detection schemes agree on random traces. *)
let prop_guaranteed_schemes_agree =
  QCheck.Test.make ~name:"baselines: guaranteed schemes all catch random UAFs"
    ~count:25
    QCheck.(pair (int_range 1 30) (int_range 0 40))
    (fun (n_allocs, churn) ->
      let run make =
        let s = make () in
        let victim = ref 0 in
        for i = 1 to n_allocs do
          let p = s.Runtime.Scheme.malloc (16 + (i mod 3 * 16)) in
          if i = 1 then victim := p
        done;
        s.Runtime.Scheme.free !victim;
        for _ = 1 to churn do
          ignore (s.Runtime.Scheme.malloc 16)
        done;
        match s.Runtime.Scheme.load !victim ~width:8 with
        | _ -> false
        | exception Shadow.Report.Violation _ -> true
      in
      run efence && run capability
      && run (fun () -> Runtime.Schemes.shadow_basic (Machine.create ())))

let () =
  Alcotest.run "baseline"
    [
      ( "efence",
        [
          Alcotest.test_case "roundtrip" `Quick test_efence_roundtrip;
          Alcotest.test_case "uaf" `Quick test_efence_detects_uaf;
          Alcotest.test_case "double free" `Quick
            test_efence_detects_double_free;
          Alcotest.test_case "guard page" `Quick
            test_efence_guard_page_catches_overflow;
          Alcotest.test_case "physical blowup" `Quick
            test_efence_physical_blowup;
          Alcotest.test_case "one-byte overrun" `Quick
            test_efence_one_byte_overrun;
        ] );
      ( "spatial+temporal",
        [
          Alcotest.test_case "in bounds ok" `Quick test_spatial_in_bounds_ok;
          Alcotest.test_case "overflow detected" `Quick
            test_spatial_overflow_detected;
          Alcotest.test_case "straddling access" `Quick
            test_spatial_straddling_access_detected;
          Alcotest.test_case "temporal still caught" `Quick
            test_spatial_still_catches_temporal;
          Alcotest.test_case "check cost" `Quick test_spatial_check_cost_charged;
        ] );
      ( "valgrind",
        [
          Alcotest.test_case "roundtrip" `Quick test_valgrind_roundtrip;
          Alcotest.test_case "immediate uaf" `Quick
            test_valgrind_detects_immediate_uaf;
          Alcotest.test_case "misses after reuse" `Quick
            test_valgrind_misses_after_reuse;
          Alcotest.test_case "double free" `Quick
            test_valgrind_detects_double_free;
          Alcotest.test_case "overhead" `Quick test_valgrind_overhead_charged;
          Alcotest.test_case "extra memory" `Quick test_valgrind_extra_memory;
        ] );
      ( "capability",
        [
          Alcotest.test_case "roundtrip" `Quick test_capability_roundtrip;
          Alcotest.test_case "uaf after reuse" `Quick
            test_capability_detects_uaf_even_after_reuse;
          Alcotest.test_case "double free" `Quick test_capability_double_free;
          Alcotest.test_case "memory overhead" `Quick
            test_capability_memory_overhead;
          Alcotest.test_case "invalid free" `Quick test_capability_invalid_free;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_guaranteed_schemes_agree ] );
    ]
