(* Tests for the workload catalogue: every benchmark and server model
   runs to completion under both the plain allocator and the full
   scheme, deterministically, and the fault-injection scenarios behave
   per scheme as the paper's taxonomy says they should. *)

open Vmm

let check_int = Alcotest.check Alcotest.int
let check_bool = Alcotest.check Alcotest.bool

let small_scale (b : Workload.Spec.batch) =
  max 2 (b.Workload.Spec.default_scale / 8)

let run_batch_under b make =
  let scheme = make (Machine.create ()) in
  b.Workload.Spec.run scheme ~scale:(small_scale b);
  scheme

let test_batch_runs_native (b : Workload.Spec.batch) () =
  ignore (run_batch_under b Runtime.Schemes.native)

let test_batch_runs_shadow (b : Workload.Spec.batch) () =
  let scheme = run_batch_under b Runtime.Schemes.shadow_pool in
  (* Allocation-bearing workloads must have paid the per-alloc syscall. *)
  let s = Stats.snapshot scheme.Runtime.Scheme.machine.Machine.stats in
  check_bool "used shadow pages" true (s.Stats.syscalls_mremap > 0)

let test_batch_no_false_positives (b : Workload.Spec.batch) () =
  (* Correct programs must run violation-free under the strictest
     checkers too: the bounds-checking combination and the capability
     scheme (whose tagged pointers must survive the workload's pointer
     handling). *)
  List.iter
    (fun make -> ignore (run_batch_under b make))
    [
      (fun m -> Runtime.Schemes.shadow_pool_spatial m);
      (fun m -> Baseline.Capability_check.scheme m);
    ]

let test_batch_deterministic (b : Workload.Spec.batch) () =
  let cycles () =
    let scheme = run_batch_under b Runtime.Schemes.shadow_pool in
    Machine.cycles scheme.Runtime.Scheme.machine
  in
  Alcotest.check (Alcotest.float 0.0) "same cycles twice" (cycles ()) (cycles ())

let test_server_runs (srv : Workload.Spec.server) () =
  let result =
    Runtime.Process.serve
      ~make_scheme:(fun () -> Runtime.Schemes.shadow_pool (Machine.create ()))
      ~handler:srv.Workload.Spec.handler ~connections:3
  in
  check_int "no violations in correct servers" 0
    result.Runtime.Process.detections;
  check_bool "did work" true (result.Runtime.Process.total_cycles > 0.)

let test_servers_fixed_alloc_counts () =
  (* The §4.3 claims are structural: count mremaps per connection. *)
  let allocs_per_connection (srv : Workload.Spec.server) =
    let scheme = Runtime.Schemes.shadow_pool (Machine.create ()) in
    srv.Workload.Spec.handler 0 scheme;
    (Stats.snapshot scheme.Runtime.Scheme.machine.Machine.stats)
      .Stats.syscalls_mremap
  in
  check_int "ghttpd: one allocation per connection" 1
    (allocs_per_connection Workload.Servers.ghttpd);
  let ftpd = allocs_per_connection Workload.Servers.ftpd in
  let per_command = ftpd / Workload.Servers.ftpd_commands_per_connection in
  check_bool
    (Printf.sprintf "ftpd: 5-6 allocs per command (%d)" per_command)
    true
    (per_command >= 5 && per_command <= 7);
  check_int "telnetd: 45 setup allocations"
    Workload.Servers.telnetd_setup_allocations
    (allocs_per_connection Workload.Servers.telnetd)

let test_prng_determinism () =
  let a = Workload.Prng.create ~seed:5 in
  let b = Workload.Prng.create ~seed:5 in
  for _ = 1 to 100 do
    check_int "same stream" (Workload.Prng.next a) (Workload.Prng.next b)
  done;
  let c = Workload.Prng.create ~seed:6 in
  check_bool "different seed differs" true
    (Workload.Prng.next a <> Workload.Prng.next c)

let prop_prng_below_in_range =
  QCheck.Test.make ~name:"prng: below stays in range"
    QCheck.(pair (int_range 1 1_000_000) small_int)
    (fun (bound, seed) ->
      let rng = Workload.Prng.create ~seed in
      let v = Workload.Prng.below rng bound in
      v >= 0 && v < bound)

let test_catalog_lookup () =
  check_bool "finds gzip" true (Workload.Catalog.find_batch "gzip" <> None);
  check_bool "finds ftpd" true (Workload.Catalog.find_server "ftpd" <> None);
  check_bool "rejects junk" true (Workload.Catalog.find_batch "nope" = None);
  check_int "4 utilities" 4 (List.length Workload.Catalog.utilities);
  check_int "9 olden" 9 (List.length Workload.Catalog.olden);
  check_int "5 servers" 5 (List.length Workload.Catalog.servers)

let test_fault_injection_under_ours () =
  List.iter
    (fun (sc : Workload.Fault_injection.scenario) ->
      let scheme = Runtime.Schemes.shadow_pool (Machine.create ()) in
      match sc.Workload.Fault_injection.inject scheme with
      | Workload.Fault_injection.Detected _ -> ()
      | outcome ->
        Alcotest.fail
          (Printf.sprintf "%s under ours: %s"
             sc.Workload.Fault_injection.sc_name
             (Workload.Fault_injection.outcome_label outcome)))
    Workload.Fault_injection.all

let test_fault_injection_under_native () =
  let outcome_of (sc : Workload.Fault_injection.scenario) =
    sc.Workload.Fault_injection.inject
      (Runtime.Schemes.native (Machine.create ()))
  in
  (match outcome_of Workload.Fault_injection.read_after_free with
   | Workload.Fault_injection.Silent _ -> ()
   | o ->
     Alcotest.fail
       ("native read-after-free: " ^ Workload.Fault_injection.outcome_label o));
  match outcome_of Workload.Fault_injection.double_free with
  | Workload.Fault_injection.Crashed _ -> ()
  | o ->
    Alcotest.fail
      ("native double-free: " ^ Workload.Fault_injection.outcome_label o)

let test_fault_injection_valgrind_gap () =
  let scheme () = Baseline.Valgrind_sim.scheme (Machine.create ()) in
  (match
     Workload.Fault_injection.read_after_free.Workload.Fault_injection.inject
       (scheme ())
   with
   | Workload.Fault_injection.Detected _ -> ()
   | o ->
     Alcotest.fail
       ("valgrind immediate: " ^ Workload.Fault_injection.outcome_label o));
  match
    (Workload.Fault_injection.dangling_after_many_allocations 1500)
      .Workload.Fault_injection.inject (scheme ())
  with
  | Workload.Fault_injection.Silent _ -> ()
  | o ->
    Alcotest.fail
      ("valgrind after churn should miss: "
       ^ Workload.Fault_injection.outcome_label o)

(* ---- traces ---- *)

let test_trace_roundtrip () =
  let t = Workload.Trace.generate ~seed:9 ~length:120 () in
  let text = Workload.Trace.to_string t in
  (match Workload.Trace.of_string text with
   | Ok t2 ->
     check_int "roundtrip length" (Workload.Trace.length t)
       (Workload.Trace.length t2);
     check_bool "roundtrip equal" true (t = t2)
   | Error e -> Alcotest.fail e)

let test_trace_parse_errors () =
  (match Workload.Trace.of_string "alloc 0 48\nbogus line\n" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "expected parse error");
  match Workload.Trace.of_string "# comment\n\nalloc 0 16 -\nfree 0\n" with
  | Ok t -> check_int "comments skipped" 2 (Workload.Trace.length t)
  | Error e -> Alcotest.fail e

let test_trace_replay_no_violations () =
  let t = Workload.Trace.generate ~seed:4 ~length:300 () in
  let r =
    Workload.Trace.replay t (Runtime.Schemes.shadow_pool (Machine.create ()))
  in
  check_int "correct trace has no violations" 0 r.Workload.Trace.violations

let prop_trace_schemes_agree =
  (* The heart of differential testing: identical traces must read
     identical values under every scheme, with zero violations. *)
  QCheck.Test.make ~name:"trace: all schemes agree on correct traces"
    ~count:15
    QCheck.(pair small_int (int_range 30 200))
    (fun (seed, length) ->
      let t = Workload.Trace.generate ~seed ~length () in
      let run make =
        let r = Workload.Trace.replay t (make (Machine.create ())) in
        (r.Workload.Trace.reads, r.Workload.Trace.violations)
      in
      let reference, v0 = run Runtime.Schemes.native in
      v0 = 0
      && List.for_all
           (fun make ->
             let reads, violations = run make in
             violations = 0 && reads = reference)
           [
             (fun m -> Runtime.Schemes.pa m);
             Runtime.Schemes.shadow_basic;
             (fun m -> Runtime.Schemes.shadow_pool m);
             (fun m -> Baseline.Efence.scheme m);
             (fun m -> Baseline.Valgrind_sim.scheme m);
             (fun m -> Baseline.Capability_check.scheme m);
           ])

let test_trace_recording_roundtrip () =
  (* Record a real workload's heap behaviour on one scheme, then replay
     the trace under others: the recorded program must replay cleanly and
     deterministically everywhere. *)
  let batch =
    match Workload.Catalog.find_batch "enscript" with
    | Some b -> b
    | None -> Alcotest.fail "enscript missing"
  in
  let wrapper, get_trace =
    Workload.Trace.record (Runtime.Schemes.native (Machine.create ()))
  in
  batch.Workload.Spec.run wrapper ~scale:25;
  let trace = get_trace () in
  check_bool "captured events" true (Workload.Trace.length trace > 100);
  (* Text roundtrip of a real recorded trace. *)
  (match Workload.Trace.of_string (Workload.Trace.to_string trace) with
   | Ok t2 -> check_bool "text roundtrip" true (t2 = trace)
   | Error e -> Alcotest.fail e);
  let replay make =
    Workload.Trace.replay trace (make (Machine.create ()))
  in
  let native = replay Runtime.Schemes.native in
  let ours = replay (fun m -> Runtime.Schemes.shadow_pool m) in
  check_int "no violations (native)" 0 native.Workload.Trace.violations;
  check_int "no violations (ours)" 0 ours.Workload.Trace.violations;
  check_bool "reads agree across schemes" true
    (native.Workload.Trace.reads = ours.Workload.Trace.reads)

let test_trace_recorder_attribution () =
  (* Pool allocations are attributed to their pool, top-level ones are
     not, and frees resolve interior bookkeeping correctly. *)
  let wrapper, get_trace =
    Workload.Trace.record (Runtime.Schemes.shadow_pool (Machine.create ()))
  in
  let a = wrapper.Runtime.Scheme.malloc 32 in
  Runtime.Workload_api.with_pool wrapper (fun pool ->
      let b = pool.Runtime.Scheme.pool_alloc 64 in
      wrapper.Runtime.Scheme.store (b + 8) ~width:8 5;
      ignore (wrapper.Runtime.Scheme.load (b + 8) ~width:8));
  wrapper.Runtime.Scheme.free a;
  let trace = get_trace () in
  let has p = List.exists p trace in
  check_bool "top-level alloc" true
    (has (function Workload.Trace.Alloc { pool = None; _ } -> true | _ -> false));
  check_bool "pooled alloc" true
    (has (function Workload.Trace.Alloc { pool = Some _; _ } -> true | _ -> false));
  check_bool "interior write recorded with offset" true
    (has (function
       | Workload.Trace.Write { offset = 8; _ } -> true
       | _ -> false));
  check_bool "free recorded" true
    (has (function Workload.Trace.Free _ -> true | _ -> false));
  check_bool "pool bracket recorded" true
    (has (function Workload.Trace.Pool_end _ -> true | _ -> false))

let test_trace_live_accounting () =
  let t =
    [
      Workload.Trace.Pool_begin { pool = 0 };
      Workload.Trace.Alloc { obj = 0; size = 16; pool = Some 0 };
      Workload.Trace.Pool_end { pool = 0 };
      Workload.Trace.Alloc { obj = 1; size = 16; pool = None };
      Workload.Trace.Alloc { obj = 2; size = 16; pool = None };
      Workload.Trace.Free { obj = 1 };
    ]
  in
  check_int "pool + free accounted" 1 (Workload.Trace.live_objects_at_end t)

let batch_cases =
  List.concat_map
    (fun (b : Workload.Spec.batch) ->
      let name = b.Workload.Spec.name in
      [
        Alcotest.test_case (name ^ " under native") `Quick
          (test_batch_runs_native b);
        Alcotest.test_case (name ^ " under ours") `Quick
          (test_batch_runs_shadow b);
        Alcotest.test_case (name ^ " deterministic") `Quick
          (test_batch_deterministic b);
        Alcotest.test_case (name ^ " strict checkers clean") `Quick
          (test_batch_no_false_positives b);
      ])
    Workload.Catalog.batches

let server_cases =
  List.map
    (fun (s : Workload.Spec.server) ->
      Alcotest.test_case (s.Workload.Spec.s_name ^ " serves") `Quick
        (test_server_runs s))
    Workload.Catalog.servers

let () =
  Alcotest.run "workload"
    [
      ("batches", batch_cases);
      ( "servers",
        server_cases
        @ [
            Alcotest.test_case "paper alloc counts" `Quick
              test_servers_fixed_alloc_counts;
          ] );
      ( "infra",
        [
          Alcotest.test_case "prng determinism" `Quick test_prng_determinism;
          Alcotest.test_case "catalog" `Quick test_catalog_lookup;
          QCheck_alcotest.to_alcotest prop_prng_below_in_range;
        ] );
      ( "traces",
        [
          Alcotest.test_case "text roundtrip" `Quick test_trace_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_trace_parse_errors;
          Alcotest.test_case "replay clean" `Quick
            test_trace_replay_no_violations;
          Alcotest.test_case "live accounting" `Quick
            test_trace_live_accounting;
          Alcotest.test_case "recording roundtrip" `Quick
            test_trace_recording_roundtrip;
          Alcotest.test_case "recorder attribution" `Quick
            test_trace_recorder_attribution;
          QCheck_alcotest.to_alcotest prop_trace_schemes_agree;
        ] );
      ( "fault-injection",
        [
          Alcotest.test_case "ours detects all" `Quick
            test_fault_injection_under_ours;
          Alcotest.test_case "native misses/crashes" `Quick
            test_fault_injection_under_native;
          Alcotest.test_case "valgrind heuristic gap" `Quick
            test_fault_injection_valgrind_gap;
        ] );
    ]
