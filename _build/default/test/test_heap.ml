(* Tests for the heap allocators: the segregated-fit malloc and the bump
   allocator, including the random-trace heap invariants the shadow
   layer relies on. *)

open Vmm

let check_int = Alcotest.check Alcotest.int
let check_bool = Alcotest.check Alcotest.bool

let fresh () =
  let m = Machine.create () in
  (m, Heap.Freelist_malloc.create m)

let test_alloc_roundtrip () =
  let m, h = fresh () in
  let a = Heap.Freelist_malloc.alloc h 40 in
  Mmu.store m a ~width:8 123;
  Mmu.store m (a + 32) ~width:8 456;
  check_int "first word" 123 (Mmu.load m a ~width:8);
  check_int "last word" 456 (Mmu.load m (a + 32) ~width:8)

let test_size_class_rounding () =
  let _, h = fresh () in
  let a = Heap.Freelist_malloc.alloc h 17 in
  check_int "rounded to class" 32 (Heap.Freelist_malloc.size_of h a);
  let b = Heap.Freelist_malloc.alloc h 16 in
  check_int "exact class" 16 (Heap.Freelist_malloc.size_of h b)

let test_reuse_after_free () =
  let _, h = fresh () in
  let a = Heap.Freelist_malloc.alloc h 64 in
  Heap.Freelist_malloc.dealloc h a;
  let b = Heap.Freelist_malloc.alloc h 64 in
  check_int "free list reuses the block" a b

let test_no_overlap () =
  let _, h = fresh () in
  let blocks = List.init 50 (fun i -> (Heap.Freelist_malloc.alloc h (16 + (i mod 7 * 32)), 16 + (i mod 7 * 32))) in
  let rec pairs = function
    | [] -> ()
    | (a, sa) :: rest ->
      List.iter
        (fun (b, sb) ->
          let disjoint = a + sa <= b || b + sb <= a in
          check_bool "blocks disjoint" true disjoint)
        rest;
      pairs rest
  in
  pairs blocks

let test_live_accounting () =
  let _, h = fresh () in
  let a = Heap.Freelist_malloc.alloc h 100 in
  let _b = Heap.Freelist_malloc.alloc h 200 in
  check_int "two live" 2 (Heap.Freelist_malloc.live_blocks h);
  Heap.Freelist_malloc.dealloc h a;
  check_int "one live" 1 (Heap.Freelist_malloc.live_blocks h);
  check_bool "bytes positive" true (Heap.Freelist_malloc.live_bytes h > 0)

let test_double_free_detected_by_allocator () =
  let _, h = fresh () in
  let a = Heap.Freelist_malloc.alloc h 48 in
  Heap.Freelist_malloc.dealloc h a;
  (match Heap.Freelist_malloc.dealloc h a with
   | () -> Alcotest.fail "expected Heap_corruption"
   | exception Heap.Freelist_malloc.Heap_corruption _ -> ())

let test_large_alloc () =
  let m, h = fresh () in
  let size = 3 * Addr.page_size in
  let a = Heap.Freelist_malloc.alloc h size in
  Mmu.store m (a + size - 8) ~width:8 99;
  check_int "end of large block" 99 (Mmu.load m (a + size - 8) ~width:8);
  check_bool "large size_of" true (Heap.Freelist_malloc.size_of h a >= size);
  Heap.Freelist_malloc.dealloc h a;
  let b = Heap.Freelist_malloc.alloc h size in
  check_int "large region reused" a b

let test_is_live () =
  let _, h = fresh () in
  let a = Heap.Freelist_malloc.alloc h 32 in
  check_bool "live" true (Heap.Freelist_malloc.is_live h a);
  Heap.Freelist_malloc.dealloc h a;
  check_bool "not live" false (Heap.Freelist_malloc.is_live h a)

let test_heap_check () =
  let _, h = fresh () in
  let blocks = List.init 30 (fun i -> Heap.Freelist_malloc.alloc h (8 + (i mod 5 * 24))) in
  List.iteri (fun i a -> if i mod 2 = 0 then Heap.Freelist_malloc.dealloc h a) blocks;
  (match Heap.Freelist_malloc.check h with
   | Ok () -> ()
   | Error e -> Alcotest.fail e)

let test_header_corruption_detected () =
  let m, h = fresh () in
  let a = Heap.Freelist_malloc.alloc h 32 in
  (* Trample the status word, as a buffer underflow would. *)
  Mmu.store m (a - 8) ~width:8 0xDEAD;
  (match Heap.Freelist_malloc.size_of h a with
   | _ -> Alcotest.fail "expected Heap_corruption"
   | exception Heap.Freelist_malloc.Heap_corruption _ -> ());
  check_bool "check flags it" true (Heap.Freelist_malloc.check h <> Ok ())

let test_page_source_plumbing () =
  let m = Machine.create () in
  let granted = ref 0 in
  let page_source pages =
    granted := !granted + pages;
    Kernel.mmap m ~pages
  in
  let h = Heap.Freelist_malloc.create ~arena_pages:4 ~page_source m in
  ignore (Heap.Freelist_malloc.alloc h 128);
  check_int "arena came from the source" 4 !granted

let test_invalid_requests () =
  let _, h = fresh () in
  Alcotest.check_raises "zero size"
    (Invalid_argument "Freelist_malloc.alloc: size <= 0") (fun () ->
      ignore (Heap.Freelist_malloc.alloc h 0))

(* Random alloc/free traces keep the heap walkable and blocks disjoint. *)
let prop_random_trace =
  QCheck.Test.make ~name:"freelist: random traces preserve invariants"
    ~count:60
    QCheck.(list_of_size (Gen.int_range 1 120) (int_range 1 5000))
    (fun sizes ->
      let _, h = fresh () in
      let live = ref [] in
      let step i size =
        if i mod 3 = 2 && !live <> [] then begin
          match !live with
          | a :: rest ->
            Heap.Freelist_malloc.dealloc h a;
            live := rest
          | [] -> ()
        end
        else live := Heap.Freelist_malloc.alloc h size :: !live
      in
      List.iteri step sizes;
      let disjoint =
        let rec go = function
          | [] -> true
          | a :: rest ->
            let sa = Heap.Freelist_malloc.size_of h a in
            List.for_all
              (fun b ->
                let sb = Heap.Freelist_malloc.size_of h b in
                a + sa <= b || b + sb <= a)
              rest
            && go rest
        in
        go !live
      in
      disjoint && Heap.Freelist_malloc.check h = Ok ())

(* ---- bump allocator ---- *)

let test_bump_roundtrip () =
  let m = Machine.create () in
  let b = Heap.Bump_alloc.create m in
  let a = Heap.Bump_alloc.alloc b 64 in
  Mmu.store m a ~width:8 5;
  check_int "read" 5 (Mmu.load m a ~width:8);
  check_int "size_of" 64 (Heap.Bump_alloc.size_of b a);
  let c = Heap.Bump_alloc.alloc b 64 in
  check_bool "monotonic" true (c > a);
  Heap.Bump_alloc.dealloc b a;
  check_int "live after free" 1 (Heap.Bump_alloc.live_blocks b)

let test_bump_region_growth () =
  let m = Machine.create () in
  let b = Heap.Bump_alloc.create ~region_pages:1 m in
  (* Force several region switches. *)
  let blocks = List.init 10 (fun _ -> Heap.Bump_alloc.alloc b 1000) in
  List.iteri (fun i a -> Mmu.store m a ~width:8 i) blocks;
  List.iteri (fun i a -> check_int "region data intact" i (Mmu.load m a ~width:8)) blocks

let test_allocator_interfaces () =
  let m = Machine.create () in
  let fl = Heap.Freelist_malloc.as_allocator (Heap.Freelist_malloc.create m) in
  let bp = Heap.Bump_alloc.as_allocator (Heap.Bump_alloc.create m) in
  List.iter
    (fun (alloc : Heap.Allocator_intf.t) ->
      let a = alloc.Heap.Allocator_intf.alloc 100 in
      check_bool "size >= requested" true (alloc.Heap.Allocator_intf.size_of a >= 100);
      check_int "one live" 1 (alloc.Heap.Allocator_intf.live_blocks ());
      alloc.Heap.Allocator_intf.dealloc a;
      check_int "none live" 0 (alloc.Heap.Allocator_intf.live_blocks ()))
    [ fl; bp ]

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "heap"
    [
      ( "freelist",
        [
          Alcotest.test_case "roundtrip" `Quick test_alloc_roundtrip;
          Alcotest.test_case "size classes" `Quick test_size_class_rounding;
          Alcotest.test_case "reuse after free" `Quick test_reuse_after_free;
          Alcotest.test_case "no overlap" `Quick test_no_overlap;
          Alcotest.test_case "live accounting" `Quick test_live_accounting;
          Alcotest.test_case "double free" `Quick
            test_double_free_detected_by_allocator;
          Alcotest.test_case "large blocks" `Quick test_large_alloc;
          Alcotest.test_case "is_live" `Quick test_is_live;
          Alcotest.test_case "heap check" `Quick test_heap_check;
          Alcotest.test_case "header corruption" `Quick
            test_header_corruption_detected;
          Alcotest.test_case "page source" `Quick test_page_source_plumbing;
          Alcotest.test_case "invalid requests" `Quick test_invalid_requests;
        ]
        @ qcheck [ prop_random_trace ] );
      ( "bump",
        [
          Alcotest.test_case "roundtrip" `Quick test_bump_roundtrip;
          Alcotest.test_case "region growth" `Quick test_bump_region_growth;
          Alcotest.test_case "uniform interface" `Quick
            test_allocator_interfaces;
        ] );
    ]
