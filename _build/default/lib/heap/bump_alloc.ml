open Vmm

(* A deliberately different allocator from Freelist_malloc: pure bump
   pointer, 8-byte size prefix, frees only counted (memory is reclaimed
   when the whole region is dropped).  Exists to demonstrate the paper's
   claim that the shadow-page wrapper is allocator-agnostic. *)

type t = {
  machine : Machine.t;
  region_pages : int;
  mutable regions : (Addr.t * int) list;
  mutable cursor : Addr.t; (* next free byte in head region; 0 = none *)
  mutable limit : Addr.t;
  mutable live_blocks : int;
  mutable live_bytes : int;
}

let prefix = 8

let create ?(region_pages = 256) machine =
  {
    machine;
    region_pages;
    regions = [];
    cursor = 0;
    limit = 0;
    live_blocks = 0;
    live_bytes = 0;
  }

let align16 n = (n + 15) land lnot 15

let alloc t size =
  if size <= 0 then invalid_arg "Bump_alloc.alloc: size <= 0";
  let need = align16 (prefix + size) in
  if t.cursor = 0 || t.cursor + need > t.limit then begin
    let pages = max t.region_pages (Addr.pages_spanning 0 need) in
    let base = Kernel.mmap t.machine ~pages in
    t.regions <- (base, pages) :: t.regions;
    t.cursor <- base;
    t.limit <- base + (pages * Addr.page_size)
  end;
  let payload = t.cursor + prefix in
  Mmu.store t.machine t.cursor ~width:8 size;
  t.cursor <- t.cursor + need;
  t.live_blocks <- t.live_blocks + 1;
  t.live_bytes <- t.live_bytes + size;
  payload

let size_of t a = Mmu.load t.machine (a - prefix) ~width:8

let dealloc t a =
  let size = size_of t a in
  t.live_blocks <- t.live_blocks - 1;
  t.live_bytes <- t.live_bytes - size

let live_blocks t = t.live_blocks
let live_bytes t = t.live_bytes

let as_allocator t =
  {
    Allocator_intf.name = "bump-alloc";
    alloc = alloc t;
    dealloc = dealloc t;
    size_of = size_of t;
    live_blocks = (fun () -> live_blocks t);
    live_bytes = (fun () -> live_bytes t);
  }
