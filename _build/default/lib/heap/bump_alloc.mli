(** A bump-pointer allocator with an 8-byte size prefix and no-op frees.

    Exists as a second, structurally different allocator behind
    {!Allocator_intf.t}: the paper claims the shadow-page scheme requires
    {e no change to the allocation algorithm}, and our tests run the
    wrapper over both this and {!Freelist_malloc} to demonstrate it. *)

type t

val create : ?region_pages:int -> Vmm.Machine.t -> t
val alloc : t -> int -> Vmm.Addr.t
val dealloc : t -> Vmm.Addr.t -> unit
val size_of : t -> Vmm.Addr.t -> int
val live_blocks : t -> int
val live_bytes : t -> int
val as_allocator : t -> Allocator_intf.t
