lib/heap/freelist_malloc.mli: Allocator_intf Vmm
