lib/heap/allocator_intf.mli: Vmm
