lib/heap/bump_alloc.mli: Allocator_intf Vmm
