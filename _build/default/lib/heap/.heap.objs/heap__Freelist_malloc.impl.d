lib/heap/freelist_malloc.ml: Addr Allocator_intf Array Fault Hashtbl Kernel Machine Mmu Printf Vmm
