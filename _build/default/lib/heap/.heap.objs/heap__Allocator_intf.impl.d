lib/heap/allocator_intf.ml: Vmm
