lib/heap/bump_alloc.ml: Addr Allocator_intf Kernel Machine Mmu Vmm
