(** The interface every heap allocator exposes.

    The paper stresses that the shadow-page scheme works over an
    {e arbitrary} allocator with no change to the allocation algorithm;
    {!Shadow.Shadow_heap} consumes exactly this record, and we provide two
    unrelated implementations ({!Freelist_malloc}, {!Bump_alloc}) to
    demonstrate the claim. *)

type t = {
  name : string;
  alloc : int -> Vmm.Addr.t;
      (** [alloc size] returns the address of a block of at least [size]
          usable bytes ([size > 0]). *)
  dealloc : Vmm.Addr.t -> unit;
      (** Release a block previously returned by [alloc]. *)
  size_of : Vmm.Addr.t -> int;
      (** Usable size of a live block — the paper reads this from the
          allocator's own header metadata. *)
  live_blocks : unit -> int;
  live_bytes : unit -> int;
}
