type t = {
  name : string;
  alloc : int -> Vmm.Addr.t;
  dealloc : Vmm.Addr.t -> unit;
  size_of : Vmm.Addr.t -> int;
  live_blocks : unit -> int;
  live_bytes : unit -> int;
}
