(** A segregated-fit malloc/free in the dlmalloc tradition, running
    entirely on simulated memory.

    Small requests are rounded up to a size class and served from
    per-class free lists carved out of mmap'd arenas; requests larger
    than the biggest class get their own page-granular mmap region.
    Every block carries a 16-byte header (size word + status/magic word)
    just before the payload, and free blocks thread their free-list link
    through the first payload word — all of it read and written through
    the {!Vmm.Mmu} so that allocator work shows up in the cost model like
    the user-level library code it is. *)

type t

exception Heap_corruption of string
(** Raised when a block header fails validation — e.g. a double free
    reaching the allocator, or a trampled header.  (Under the shadow-page
    scheme these conditions trap at the MMU before the allocator can see
    them.) *)

val header_bytes : int
(** Bytes of per-block header (16). *)

val create :
  ?arena_pages:int -> ?page_source:(int -> Vmm.Addr.t) -> Vmm.Machine.t -> t
(** [arena_pages] is the size of each mmap'd small-object arena (default
    64 pages).  [page_source] supplies mapped read-write pages when the
    allocator needs more memory (default: [Kernel.mmap]); the pool
    run-time passes a source that draws on recycled virtual ranges. *)

val alloc : t -> int -> Vmm.Addr.t
val dealloc : t -> Vmm.Addr.t -> unit

val size_of : t -> Vmm.Addr.t -> int
(** Usable size of a live block, read from its header.  Raises
    {!Heap_corruption} on a freed block or a trampled header, and
    [Vmm.Fault.Trap] if the header page is protected. *)

val is_live : t -> Vmm.Addr.t -> bool
(** Whether the header marks the block allocated (no fault risk: uses a
    kernel-mode read). *)

val live_blocks : t -> int
val live_bytes : t -> int

val check : t -> (unit, string) result
(** Heap-walk validation: every arena must parse into a sequence of
    well-formed blocks with valid magics and no overlap.  Used by tests
    and by {!Heap_check}. *)

val as_allocator : t -> Allocator_intf.t
