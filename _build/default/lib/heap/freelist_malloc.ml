open Vmm

exception Heap_corruption of string

let header_bytes = 16
let word = 8

(* Status word layout: high bits a magic constant, low bit = allocated. *)
let magic = 0xA110C000
let status_allocated = magic lor 1
let status_free = magic

let size_classes =
  [| 16; 32; 48; 64; 96; 128; 192; 256; 384; 512; 768; 1024; 1536; 2048 |]

let max_small = size_classes.(Array.length size_classes - 1)

type arena = { base : Addr.t; pages : int; mutable bump : int }

type t = {
  machine : Machine.t;
  page_source : int -> Addr.t;
  arena_pages : int;
  mutable arenas : arena list; (* head is the arena currently carved *)
  free_heads : Addr.t array;   (* 0 = empty, per size class *)
  large_free : (int, Addr.t list ref) Hashtbl.t; (* page count -> bases *)
  mutable live_blocks : int;
  mutable live_bytes : int;
  mutable wasted_slack : int;
}

let create ?(arena_pages = 64) ?page_source machine =
  let page_source =
    match page_source with
    | Some f -> f
    | None -> fun pages -> Kernel.mmap machine ~pages
  in
  {
    machine;
    page_source;
    arena_pages;
    arenas = [];
    free_heads = Array.make (Array.length size_classes) 0;
    large_free = Hashtbl.create 16;
    live_blocks = 0;
    live_bytes = 0;
    wasted_slack = 0;
  }

let class_index size =
  let rec find i =
    if i >= Array.length size_classes then
      invalid_arg "Freelist_malloc.class_index: size too large"
    else if size <= size_classes.(i) then i
    else find (i + 1)
  in
  find 0

(* Header accessors.  These are normal user-level memory operations: the
   allocator's bookkeeping work is part of the program's cost. *)
let read_size t a = Mmu.load t.machine (a - 16) ~width:word
let write_size t a v = Mmu.store t.machine (a - 16) ~width:word v
let read_status t a = Mmu.load t.machine (a - 8) ~width:word
let write_status t a v = Mmu.store t.machine (a - 8) ~width:word v

(* Free-list links live in the first payload word of free blocks. *)
let read_link t a = Mmu.load t.machine a ~width:word
let write_link t a v = Mmu.store t.machine a ~width:word v

let carve t block_bytes =
  let fits arena = arena.bump + block_bytes <= arena.pages * Addr.page_size in
  let arena =
    match t.arenas with
    | arena :: _ when fits arena -> arena
    | rest ->
      (match rest with
       | arena :: _ ->
         t.wasted_slack <-
           t.wasted_slack + ((arena.pages * Addr.page_size) - arena.bump)
       | [] -> ());
      let pages = max t.arena_pages (Addr.pages_spanning 0 block_bytes) in
      let base = t.page_source pages in
      let arena = { base; pages; bump = 0 } in
      t.arenas <- arena :: t.arenas;
      arena
  in
  let a = arena.base + arena.bump + header_bytes in
  arena.bump <- arena.bump + block_bytes;
  a

let alloc_small t idx =
  let payload =
    let head = t.free_heads.(idx) in
    if head <> 0 then begin
      t.free_heads.(idx) <- read_link t head;
      head
    end
    else carve t (header_bytes + size_classes.(idx))
  in
  write_size t payload size_classes.(idx);
  write_status t payload status_allocated;
  payload

let alloc_large t size =
  let pages = Addr.pages_spanning 0 (header_bytes + size) in
  let base =
    match Hashtbl.find_opt t.large_free pages with
    | Some ({ contents = base :: rest } as cell) ->
      cell := rest;
      base
    | Some { contents = [] } | None -> t.page_source pages
  in
  let payload = base + header_bytes in
  write_size t payload ((pages * Addr.page_size) - header_bytes);
  write_status t payload status_allocated;
  payload

let alloc t size =
  if size <= 0 then invalid_arg "Freelist_malloc.alloc: size <= 0";
  let payload =
    if size <= max_small then alloc_small t (class_index size)
    else alloc_large t size
  in
  t.live_blocks <- t.live_blocks + 1;
  t.live_bytes <- t.live_bytes + size;
  payload

let checked_status t a =
  let status = read_status t a in
  if status land lnot 1 <> magic then
    raise
      (Heap_corruption
         (Printf.sprintf "bad block magic at 0x%x (status 0x%x)" a status));
  status

let dealloc t a =
  let status = checked_status t a in
  if status <> status_allocated then
    raise (Heap_corruption (Printf.sprintf "double free of block at 0x%x" a));
  let size = read_size t a in
  write_status t a status_free;
  t.live_blocks <- t.live_blocks - 1;
  t.live_bytes <- t.live_bytes - size;
  if size <= max_small then begin
    let idx = class_index size in
    write_link t a t.free_heads.(idx);
    t.free_heads.(idx) <- a
  end
  else begin
    let pages = Addr.pages_spanning 0 (header_bytes + size) in
    let cell =
      match Hashtbl.find_opt t.large_free pages with
      | Some cell -> cell
      | None ->
        let cell = ref [] in
        Hashtbl.replace t.large_free pages cell;
        cell
    in
    cell := (a - header_bytes) :: !cell
  end

let size_of t a =
  let status = checked_status t a in
  if status <> status_allocated then
    raise (Heap_corruption (Printf.sprintf "size_of freed block at 0x%x" a));
  read_size t a

let is_live t a =
  match Mmu.load_exempt t.machine (a - 8) ~width:word with
  | status -> status = status_allocated
  | exception Fault.Trap _ -> false

let live_blocks t = t.live_blocks
let live_bytes t = t.live_bytes

let check t =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let check_arena arena =
    let rec walk off =
      if off >= arena.bump then Ok ()
      else begin
        let payload = arena.base + off + header_bytes in
        let status = Mmu.load_exempt t.machine (payload - 8) ~width:word in
        if status land lnot 1 <> magic then
          fail "arena 0x%x: bad magic at offset %d" arena.base off
        else
          let size = Mmu.load_exempt t.machine (payload - 16) ~width:word in
          if size <= 0 || size > max_small then
            fail "arena 0x%x: bad size %d at offset %d" arena.base size off
          else walk (off + header_bytes + size)
      end
    in
    walk 0
  in
  let rec check_all = function
    | [] -> Ok ()
    | arena :: rest ->
      (match check_arena arena with
       | Ok () -> check_all rest
       | Error _ as e -> e)
  in
  check_all t.arenas

let as_allocator t =
  {
    Allocator_intf.name = "freelist-malloc";
    alloc = alloc t;
    dealloc = dealloc t;
    size_of = size_of t;
    live_blocks = (fun () -> live_blocks t);
    live_bytes = (fun () -> live_bytes t);
  }
