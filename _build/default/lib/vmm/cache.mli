(** A physically-indexed, physically-tagged data-cache model.

    The paper argues a key practical advantage over Electric Fence: the
    shadow scheme leaves the {e physical} layout of objects untouched, so
    a physically-indexed cache behaves exactly as in the unprotected
    program, while one-object-per-physical-page schemes destroy spatial
    locality.  This model makes that claim measurable: the MMU drives it
    with physical line addresses and the hit/miss counts land in
    {!Stats}.

    By default the cost model charges nothing per miss (the paper's
    cycle calibration keeps cache effects inside the code-quality
    factor); the cache ablation bench uses
    {!Cost_model.with_cache_penalty} to expose them. *)

type t

val create : ?sets:int -> ?ways:int -> ?line_bytes:int -> unit -> t
(** Default: 256 sets x 4 ways x 64-byte lines = 64 KiB, LRU. *)

val access : t -> Stats.t -> phys_addr:int -> unit
(** Look up the line containing the physical byte address; counts a
    cache hit or miss and fills on miss. *)

val flush : t -> unit
val capacity_bytes : t -> int
