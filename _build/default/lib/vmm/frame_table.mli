(** Physical memory: a growable set of reference-counted page frames.

    Each frame is one page of byte storage.  Frames are reference-counted
    because the whole point of the paper's scheme is that several virtual
    pages (one canonical, many shadow) alias one physical frame; a frame
    is released only when its last mapping is removed. *)

type t
type frame = int (** Physical frame number. *)

val create : unit -> t

val allocate : t -> Stats.t -> frame
(** Allocate a zeroed frame with reference count 0 (the caller maps it,
    which takes the first reference). *)

val incr_ref : t -> frame -> unit
val decr_ref : t -> frame -> unit
(** Release one mapping reference.  The frame's storage is reclaimed when
    the count drops to zero. *)

val ref_count : t -> frame -> int
val live_frames : t -> int
(** Number of frames currently allocated — the program's physical memory
    footprint in pages. *)

val peak_frames : t -> int
(** High-water mark of {!live_frames}. *)

val read_byte : t -> frame -> int -> int
val write_byte : t -> frame -> int -> int -> unit
(** [read_byte t f off] / [write_byte t f off v]: byte access within a
    frame; [off] in [\[0, page_size)], [v] in [\[0, 256)]. *)

val exists : t -> frame -> bool
