(** Virtual and physical address arithmetic.

    Addresses are plain [int]s (the simulator targets a 64-bit virtual
    address space; OCaml's 63-bit ints are ample).  Pages are
    [page_size]-byte aligned ranges; a page index is an address divided by
    [page_size]. *)

type t = int
(** A virtual (or, in {!Frame_table}, physical) byte address. *)

val page_size : int
(** Bytes per page (4096, as in the paper's x86/Linux setting). *)

val page_shift : int
(** [log2 page_size]. *)

val page_index : t -> int
(** Page number containing the address ([Page(a)] in the paper). *)

val page_base : t -> t
(** Start address of the page containing the address. *)

val offset : t -> int
(** Offset of the address within its page ([Offset(a)] in the paper). *)

val of_page : int -> t
(** Base address of a page index. *)

val is_page_aligned : t -> bool

val align_up : t -> t
(** Smallest page-aligned address [>=] the argument. *)

val pages_spanning : t -> int -> int
(** [pages_spanning a size] is the number of distinct pages touched by the
    byte range [\[a, a+size)].  [size] must be positive. *)

val pp : Format.formatter -> t -> unit
(** Hexadecimal rendering, e.g. [0x10003f8]. *)
