(** Page protection bits, the moral equivalent of [PROT_NONE] /
    [PROT_READ] / [PROT_READ|PROT_WRITE]. *)

type t =
  | No_access  (** [PROT_NONE]: every access traps. *)
  | Read_only  (** [PROT_READ]: stores trap. *)
  | Read_write (** [PROT_READ|PROT_WRITE]. *)

type access =
  | Read
  | Write

val allows : t -> access -> bool
val pp : Format.formatter -> t -> unit
val pp_access : Format.formatter -> access -> unit
val equal : t -> t -> bool
