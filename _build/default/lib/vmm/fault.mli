(** Hardware memory faults raised by the {!Mmu}.

    A fault carries enough context for a run-time system (the paper's
    SIGSEGV handler) to classify the event — e.g. as a dangling pointer
    use — by consulting its own object registry. *)

type t =
  | Unmapped of { addr : Addr.t; access : Perm.access }
      (** Access to a virtual page with no page-table entry. *)
  | Protection of { addr : Addr.t; access : Perm.access; perm : Perm.t }
      (** Access denied by the page's protection bits ([perm] is the
          page's current protection). *)

exception Trap of t
(** Raised by {!Mmu.load} / {!Mmu.store} on a faulting access. *)

val addr : t -> Addr.t
val access : t -> Perm.access
val pp : Format.formatter -> t -> unit
val to_string : t -> string
