(* Set-associative, LRU per set.  Each set is a small array of slots; the
   LRU order is tracked with a monotonically increasing use stamp. *)

type slot = { mutable page : int; mutable frame : int; mutable stamp : int }

type t = {
  sets : slot array array;
  n_sets : int;
  mutable clock : int;
}

let invalid_page = -1

let create ?(entries = 64) ?(ways = 4) () =
  if entries mod ways <> 0 then invalid_arg "Tlb.create: entries mod ways <> 0";
  let n_sets = entries / ways in
  let make_slot _ = { page = invalid_page; frame = 0; stamp = 0 } in
  {
    sets = Array.init n_sets (fun _ -> Array.init ways make_slot);
    n_sets;
    clock = 0;
  }

let set_of t page = t.sets.(page mod t.n_sets)

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let lookup t stats ~page =
  let set = set_of t page in
  let rec find i =
    if i >= Array.length set then None
    else if set.(i).page = page then begin
      set.(i).stamp <- tick t;
      Some set.(i).frame
    end
    else find (i + 1)
  in
  match find 0 with
  | Some frame ->
    Stats.count_tlb_hit stats;
    Some frame
  | None ->
    Stats.count_tlb_miss stats;
    None

let insert t ~page ~frame =
  let set = set_of t page in
  (* Reuse an existing slot for this page if present, else evict LRU. *)
  let victim = ref set.(0) in
  Array.iter
    (fun s ->
      if s.page = page then victim := s
      else if !victim.page <> page && s.stamp < !victim.stamp then victim := s)
    set;
  let v = !victim in
  v.page <- page;
  v.frame <- frame;
  v.stamp <- tick t

let invalidate_page t ~page =
  let set = set_of t page in
  Array.iter (fun s -> if s.page = page then s.page <- invalid_page) set

let flush t stats =
  Array.iter (fun set -> Array.iter (fun s -> s.page <- invalid_page) set) t.sets;
  Stats.count_tlb_flush stats

let capacity t = t.n_sets * Array.length t.sets.(0)
