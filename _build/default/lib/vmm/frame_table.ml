type frame = int

type slot = { storage : Bytes.t; mutable refs : int }

type t = {
  frames : (frame, slot) Hashtbl.t;
  mutable next : frame;
  mutable peak : int;
}

let create () = { frames = Hashtbl.create 1024; next = 0; peak = 0 }

let allocate t stats =
  let f = t.next in
  t.next <- t.next + 1;
  Hashtbl.replace t.frames f { storage = Bytes.make Addr.page_size '\000'; refs = 0 };
  Stats.count_frame_allocated stats;
  let live = Hashtbl.length t.frames in
  if live > t.peak then t.peak <- live;
  f

let slot t f =
  match Hashtbl.find_opt t.frames f with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Frame_table: unknown frame %d" f)

let incr_ref t f =
  let s = slot t f in
  s.refs <- s.refs + 1

let decr_ref t f =
  let s = slot t f in
  s.refs <- s.refs - 1;
  assert (s.refs >= 0);
  if s.refs = 0 then Hashtbl.remove t.frames f

let ref_count t f = (slot t f).refs
let live_frames t = Hashtbl.length t.frames
let peak_frames t = t.peak

let read_byte t f off = Char.code (Bytes.get (slot t f).storage off)
let write_byte t f off v = Bytes.set (slot t f).storage off (Char.chr (v land 0xff))
let exists t f = Hashtbl.mem t.frames f
