lib/vmm/stats.ml: Format
