lib/vmm/perm.ml: Format
