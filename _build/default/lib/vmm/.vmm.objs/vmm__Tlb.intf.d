lib/vmm/tlb.mli: Frame_table Stats
