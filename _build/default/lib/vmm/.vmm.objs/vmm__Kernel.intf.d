lib/vmm/kernel.mli: Addr Machine Perm
