lib/vmm/mmu.mli: Addr Fault Machine Perm
