lib/vmm/machine.ml: Addr Cache Cost_model Frame_table Page_table Stats Tlb
