lib/vmm/addr.mli: Format
