lib/vmm/cache.mli: Stats
