lib/vmm/page_table.ml: Frame_table Hashtbl Perm Printf Stats
