lib/vmm/frame_table.mli: Stats
