lib/vmm/frame_table.ml: Addr Bytes Char Hashtbl Printf Stats
