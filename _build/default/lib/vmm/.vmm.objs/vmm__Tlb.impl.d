lib/vmm/tlb.ml: Array Stats
