lib/vmm/fault.ml: Addr Format Perm
