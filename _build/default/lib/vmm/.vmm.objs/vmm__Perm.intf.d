lib/vmm/perm.mli: Format
