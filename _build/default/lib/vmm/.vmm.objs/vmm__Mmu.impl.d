lib/vmm/mmu.ml: Addr Cache Fault Frame_table Machine Page_table Perm Printf Stats Tlb
