lib/vmm/page_table.mli: Frame_table Perm Stats
