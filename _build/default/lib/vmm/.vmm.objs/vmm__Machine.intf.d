lib/vmm/machine.mli: Addr Cache Cost_model Frame_table Page_table Stats Tlb
