lib/vmm/kernel.ml: Addr Array Frame_table Machine Page_table Perm Printf Stats Tlb
