lib/vmm/addr.ml: Format
