lib/vmm/cost_model.ml: Format Stats
