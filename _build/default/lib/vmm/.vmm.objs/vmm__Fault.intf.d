lib/vmm/fault.mli: Addr Format Perm
