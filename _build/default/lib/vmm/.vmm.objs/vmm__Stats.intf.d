lib/vmm/stats.mli: Format
