lib/vmm/cost_model.mli: Format Stats
