lib/vmm/cache.ml: Array Stats
