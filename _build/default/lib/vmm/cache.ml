type slot = { mutable line : int; mutable stamp : int }

type t = {
  sets : slot array array;
  n_sets : int;
  line_shift : int;
  line_bytes : int;
  mutable clock : int;
}

let invalid_line = -1

let log2 n =
  let rec go k v = if v >= n then k else go (k + 1) (v * 2) in
  go 0 1

let create ?(sets = 256) ?(ways = 4) ?(line_bytes = 64) () =
  let make_slot _ = { line = invalid_line; stamp = 0 } in
  {
    sets = Array.init sets (fun _ -> Array.init ways make_slot);
    n_sets = sets;
    line_shift = log2 line_bytes;
    line_bytes;
    clock = 0;
  }

let access t stats ~phys_addr =
  let line = phys_addr lsr t.line_shift in
  let set = t.sets.(line mod t.n_sets) in
  t.clock <- t.clock + 1;
  let rec find i =
    if i >= Array.length set then None
    else if set.(i).line = line then Some set.(i)
    else find (i + 1)
  in
  match find 0 with
  | Some slot ->
    slot.stamp <- t.clock;
    Stats.count_cache_hit stats
  | None ->
    Stats.count_cache_miss stats;
    let victim = ref set.(0) in
    Array.iter (fun s -> if s.stamp < !victim.stamp then victim := s) set;
    !victim.line <- line;
    !victim.stamp <- t.clock

let flush t =
  Array.iter (fun set -> Array.iter (fun s -> s.line <- invalid_line) set) t.sets

let capacity_bytes t = t.n_sets * Array.length t.sets.(0) * t.line_bytes
