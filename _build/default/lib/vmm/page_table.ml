type entry = { frame : Frame_table.frame; perm : Perm.t }
type t = (int, entry) Hashtbl.t

let create () = Hashtbl.create 4096

let map t stats ~page ~frame ~perm =
  if Hashtbl.mem t page then
    invalid_arg (Printf.sprintf "Page_table.map: page %d already mapped" page);
  Hashtbl.replace t page { frame; perm };
  Stats.count_page_mapped stats

let unmap t ~page =
  match Hashtbl.find_opt t page with
  | Some e ->
    Hashtbl.remove t page;
    e
  | None -> invalid_arg (Printf.sprintf "Page_table.unmap: page %d not mapped" page)

let lookup t ~page = Hashtbl.find_opt t page

let set_perm t ~page perm =
  match Hashtbl.find_opt t page with
  | Some e -> Hashtbl.replace t page { e with perm }
  | None ->
    invalid_arg (Printf.sprintf "Page_table.set_perm: page %d not mapped" page)

let is_mapped t ~page = Hashtbl.mem t page
let mapped_pages t = Hashtbl.length t
let iter t f = Hashtbl.iter f t
