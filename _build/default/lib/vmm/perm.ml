type t =
  | No_access
  | Read_only
  | Read_write

type access =
  | Read
  | Write

let allows perm access =
  match perm, access with
  | No_access, (Read | Write) -> false
  | Read_only, Read -> true
  | Read_only, Write -> false
  | Read_write, (Read | Write) -> true

let pp ppf = function
  | No_access -> Format.pp_print_string ppf "---"
  | Read_only -> Format.pp_print_string ppf "r--"
  | Read_write -> Format.pp_print_string ppf "rw-"

let pp_access ppf = function
  | Read -> Format.pp_print_string ppf "read"
  | Write -> Format.pp_print_string ppf "write"

let equal a b =
  match a, b with
  | No_access, No_access | Read_only, Read_only | Read_write, Read_write ->
    true
  | (No_access | Read_only | Read_write), _ -> false
