type t =
  | Unmapped of { addr : Addr.t; access : Perm.access }
  | Protection of { addr : Addr.t; access : Perm.access; perm : Perm.t }

exception Trap of t

let addr = function
  | Unmapped { addr; _ } | Protection { addr; _ } -> addr

let access = function
  | Unmapped { access; _ } | Protection { access; _ } -> access

let pp ppf = function
  | Unmapped { addr; access } ->
    Format.fprintf ppf "unmapped %a at %a" Perm.pp_access access Addr.pp addr
  | Protection { addr; access; perm } ->
    Format.fprintf ppf "protection fault: %a at %a (page is %a)"
      Perm.pp_access access Addr.pp addr Perm.pp perm

let to_string t = Format.asprintf "%a" pp t
