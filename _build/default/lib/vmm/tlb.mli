(** A set-associative translation lookaside buffer model.

    The paper's second overhead source is TLB pressure: every live object
    sits on its own virtual page, so programs touch far more distinct
    pages than their native versions.  We model a small data TLB
    (default: 64 entries, 4-way, LRU within a set) and charge
    {!Cost_model.t.tlb_miss_penalty} per miss.

    Cached entries are translations only; permissions are re-checked in
    the page table on every access (hardware TLBs cache protection bits
    too, but OSes shoot them down on [mprotect] — invalidation on
    permission change is modeled by {!invalidate_page}). *)

type t

val create : ?entries:int -> ?ways:int -> unit -> t
(** Default: 64 entries, 4 ways. [entries] must be a multiple of [ways]. *)

val lookup : t -> Stats.t -> page:int -> Frame_table.frame option
(** Probe the TLB; counts a hit or a miss. *)

val insert : t -> page:int -> frame:Frame_table.frame -> unit
(** Fill after a page-table walk (evicts LRU way of the set). *)

val invalidate_page : t -> page:int -> unit
(** Single-page shootdown (on [mprotect]/[munmap]/remap). *)

val flush : t -> Stats.t -> unit
(** Full flush (e.g. on simulated [fork]/context switch). *)

val capacity : t -> int
