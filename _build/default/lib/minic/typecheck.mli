(** Lightweight type checker for MiniC: struct and field existence,
    variable scoping, call arity, and pointer/integer well-formedness —
    the checks a C front end would have done before the pool transform
    runs. *)

exception Type_error of string

val check : Ast.program -> unit
(** Raises {!Type_error} with a descriptive message. *)

val expr_type :
  Ast.program -> (string * Ast.typ) list -> Ast.expr -> Ast.typ option
(** Type of an expression under a variable environment ([None] = void
    call result).  Shared with the points-to analysis. *)
