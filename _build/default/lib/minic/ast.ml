(** Abstract syntax for MiniC, the C-like language the Automatic Pool
    Allocation transform operates on.

    The surface language (see {!Parser}) has structs, pointers, ints,
    functions, [malloc]/[free] and the usual control flow.  The pool
    constructors ([Pool_init] … [Pool_free]) never appear in parsed
    programs; {!Pool_transform} introduces them, exactly as the paper's
    compiler rewrites [malloc]/[free] into [poolalloc]/[poolfree] against
    inserted or inherited pool descriptors. *)

type typ =
  | Tint
  | Tptr of string  (** pointer to a named struct *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or

type unop =
  | Neg
  | Not

type expr =
  | Int of int
  | Null
  | Var of string
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Field of expr * string          (** [e->f] *)
  | Malloc of string                (** [malloc(struct s)] *)
  | Malloc_array of string * expr   (** [malloc(struct s, n)]: n contiguous elements *)
  | Pool_malloc of string * string  (** [poolalloc(pd, struct s)] — transform output *)
  | Pool_malloc_array of string * string * expr
      (** [poolalloc(pd, struct s, n)] — transform output *)
  | Index of expr * expr
      (** [e[i]]: pointer to the i-th element of an array allocation *)
  | Call of string * expr list

type stmt =
  | Decl of typ * string * expr option
  | Assign of string * expr
  | Store of expr * string * expr   (** [e1->f = e2] *)
  | Free of expr
  | Pool_free of string * expr      (** [poolfree(pd, e)] — transform output *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Return of expr option
  | Print of expr
  | Expr of expr
  | Pool_init of string * string    (** [pool pd = poolinit(struct s)] *)
  | Pool_destroy of string

type func = {
  name : string;
  ret : typ option;                 (** [None] = void *)
  params : (typ * string) list;
  pool_params : string list;        (** extra descriptors, transform output *)
  body : stmt list;
}

type program = {
  structs : (string * (typ * string) list) list;
  globals : (typ * string) list;
  funcs : func list;
}

let struct_fields program name =
  match List.assoc_opt name program.structs with
  | Some fields -> fields
  | None -> invalid_arg (Printf.sprintf "unknown struct %s" name)

let struct_size program name = 8 * List.length (struct_fields program name)

let field_index program sname fname =
  let fields = struct_fields program sname in
  let rec go i = function
    | [] ->
      invalid_arg (Printf.sprintf "struct %s has no field %s" sname fname)
    | (_, f) :: rest -> if f = fname then i else go (i + 1) rest
  in
  go 0 fields

let find_func program name =
  List.find_opt (fun f -> f.name = name) program.funcs
