(** Recursive-descent parser for MiniC.

    Grammar sketch:
    {v
    program    := (struct_def | global_def | fun_def)*
    struct_def := "struct" ID "{" (type ID ";")* "}"
    global_def := type ID ";"
    fun_def    := ("void" | type) ID "(" params ")" block
    type       := "int" | "struct" ID "*"
    stmt       := type ID ("=" expr)? ";"
                | ID "=" expr ";"
                | postfix "->" ID "=" expr ";"
                | "free" "(" expr ")" ";"  | "print" "(" expr ")" ";"
                | "if" "(" expr ")" block ("else" block)?
                | "while" "(" expr ")" block
                | "return" expr? ";"  | expr ";"
    expr       := usual C precedence over || && == != < <= > >= + - * / %
    postfix    := primary ("->" ID)*
    primary    := INT | ID | "null" | "(" expr ")"
                | "malloc" "(" "struct" ID ")" | ID "(" args ")"
    v} *)

exception Parse_error of { line : int; message : string }

val parse : string -> Ast.program
(** Raises {!Parse_error} or {!Lexer.Lex_error}. *)
