let closure pt seeds =
  let seen = Hashtbl.create 16 in
  let rec visit c =
    if not (Hashtbl.mem seen c) then begin
      Hashtbl.replace seen c ();
      Option.iter visit (Points_to.pointee pt c);
      Option.iter visit (Points_to.field_class pt c)
    end
  in
  List.iter visit seeds;
  Hashtbl.fold (fun c () acc -> c :: acc) seen []

let reachable_from_globals pt (program : Ast.program) =
  let seeds =
    List.filter_map
      (fun (_, name) -> Points_to.var_class pt ~fname:"" name)
      program.globals
  in
  closure pt seeds

let escapes pt (f : Ast.func) c =
  let seeds =
    List.filter_map
      (fun (_, p) -> Points_to.var_class pt ~fname:f.name p)
      f.params
    @ (match Points_to.ret_class pt f.name with
       | Some c -> [ c ]
       | None -> [])
  in
  List.mem c (closure pt seeds)
