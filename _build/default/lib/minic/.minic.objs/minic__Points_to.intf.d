lib/minic/points_to.mli: Ast
