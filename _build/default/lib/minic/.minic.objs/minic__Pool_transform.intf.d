lib/minic/pool_transform.mli: Ast Points_to
