lib/minic/interp.mli: Ast Runtime
