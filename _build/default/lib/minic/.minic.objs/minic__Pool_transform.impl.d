lib/minic/pool_transform.ml: Ast Escape Hashtbl Int List Option Points_to Printf Set String Typecheck
