lib/minic/lexer.mli:
