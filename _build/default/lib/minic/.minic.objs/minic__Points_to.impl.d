lib/minic/points_to.ml: Ast Hashtbl List Option Printf
