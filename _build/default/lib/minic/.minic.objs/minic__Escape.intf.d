lib/minic/escape.mli: Ast Points_to
