lib/minic/pretty.ml: Ast List Printf String
