lib/minic/interp.ml: Ast Hashtbl List Option Printf Runtime
