lib/minic/escape.ml: Ast Hashtbl List Option Points_to
