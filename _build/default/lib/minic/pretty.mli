(** Source rendering of MiniC programs — used to show the before/after of
    the pool transform (the paper's Figures 1 and 2) and in parser
    round-trip tests. *)

val expr_to_string : Ast.expr -> string
val program_to_string : Ast.program -> string
val func_to_string : Ast.func -> string
