(** Escape analysis over the points-to classes: reachability from a
    function's formals, its return value, and the globals — the paper's
    "standard compiler analysis … much simpler, but can be less precise,
    than that required for static detection of dangling pointer
    references".  A pool can be created and destroyed inside a function
    exactly when its class does not escape that function. *)

val reachable_from_globals : Points_to.t -> Ast.program -> Points_to.class_id list
(** Classes reachable from any global variable: these data structures
    must live in global (long-lived) pools. *)

val escapes : Points_to.t -> Ast.func -> Points_to.class_id -> bool
(** Whether the class is reachable from the function's parameters or
    return value (globals are handled separately by
    {!reachable_from_globals}). *)

val closure : Points_to.t -> Points_to.class_id list -> Points_to.class_id list
(** Transitive closure of classes over pointee and field edges,
    including the seeds. *)
