lib/runtime/process.mli: Scheme Shadow
