lib/runtime/workload_api.ml: Fun Scheme
