lib/runtime/schemes.ml: Apa Heap Kernel Lazy List Machine Mmu Option Perm Scheme Shadow Stats Vmm
