lib/runtime/workload_api.mli: Scheme Vmm
