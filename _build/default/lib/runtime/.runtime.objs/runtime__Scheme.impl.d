lib/runtime/scheme.ml: Vmm
