lib/runtime/scheme.mli: Vmm
