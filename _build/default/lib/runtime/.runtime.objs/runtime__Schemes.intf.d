lib/runtime/schemes.mli: Apa Scheme Shadow Vmm
