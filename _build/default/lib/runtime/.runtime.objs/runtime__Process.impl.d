lib/runtime/process.ml: Scheme Shadow Vmm
