(** Convenience layer workloads are written against: word-sized field
    access, pool scoping, and bulk touch/fill loops, all in terms of a
    {!Scheme.t} so a single workload source runs under every scheme. *)

val word : int
(** Bytes per field/word (8). *)

val with_pool :
  Scheme.t -> ?elem_size:int -> (Scheme.pool_handle -> 'a) -> 'a
(** [poolinit]/[pooldestroy] bracket.  The pool is destroyed even if the
    body raises. *)

val load_field : Scheme.t -> Vmm.Addr.t -> int -> int
(** [load_field s p i] reads the [i]-th word of the object at [p]. *)

val store_field : Scheme.t -> Vmm.Addr.t -> int -> int -> unit
val load_byte : Scheme.t -> Vmm.Addr.t -> int
val store_byte : Scheme.t -> Vmm.Addr.t -> int -> unit

val fill_words : Scheme.t -> Vmm.Addr.t -> words:int -> value:int -> unit
(** Store [value] into [words] consecutive words. *)

val sum_words : Scheme.t -> Vmm.Addr.t -> words:int -> int
(** Load and sum [words] consecutive words. *)

val touch_bytes : Scheme.t -> Vmm.Addr.t -> len:int -> stride:int -> unit
(** Read one byte every [stride] bytes across [len] bytes — the cheap
    way to model streaming passes over buffers. *)
