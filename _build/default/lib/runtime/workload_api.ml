let word = 8

let with_pool (s : Scheme.t) ?elem_size body =
  let pool = s.Scheme.pool_create ?elem_size () in
  Fun.protect ~finally:(fun () -> pool.Scheme.pool_destroy ()) (fun () ->
      body pool)

let load_field (s : Scheme.t) p i = s.Scheme.load (p + (i * word)) ~width:word
let store_field (s : Scheme.t) p i v = s.Scheme.store (p + (i * word)) ~width:word v
let load_byte (s : Scheme.t) p = s.Scheme.load p ~width:1
let store_byte (s : Scheme.t) p v = s.Scheme.store p ~width:1 v

let fill_words s p ~words ~value =
  for i = 0 to words - 1 do
    store_field s p i value
  done

let sum_words s p ~words =
  let rec go i acc = if i >= words then acc else go (i + 1) (acc + load_field s p i) in
  go 0 0

let touch_bytes s p ~len ~stride =
  assert (stride > 0);
  let rec go off = if off < len then begin ignore (load_byte s (p + off)); go (off + stride) end in
  go 0
