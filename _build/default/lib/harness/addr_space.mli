(** §4.3 of the paper: virtual-address-space usage within individual
    server connections under the full scheme.

    Because every server forks per connection, wastage never outlives a
    connection; the interesting number is the shadow pages retained by
    {e global} pools at the moment the child exits — the paper reports
    ~0 pages/connection for ghttpd, 5–6 pages per ftp command, and 45
    pages per telnet session. *)

type row = {
  name : string;
  connections : int;
  wasted_pages_per_connection : float;
      (** shadow pages still held by the global pool at child exit *)
  recycled_pages_per_connection : float;
      (** pages returned to the free list by pool destroys within the
          connection (e.g. ftpd's fb_realpath pool) *)
  va_bytes_per_connection : int;
  note : string;
}

val measure : ?connections:int -> Workload.Spec.server -> row
val rows : ?connections:int -> unit -> row list
val render : row list -> string
