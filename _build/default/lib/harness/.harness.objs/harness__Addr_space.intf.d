lib/harness/addr_space.mli: Workload
