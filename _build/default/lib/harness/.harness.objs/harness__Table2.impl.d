lib/harness/table2.ml: Experiment List Table Workload
