lib/harness/table3.ml: Experiment List Table Workload
