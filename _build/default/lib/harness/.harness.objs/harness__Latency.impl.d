lib/harness/latency.ml: Array Experiment List Runtime Table Workload
