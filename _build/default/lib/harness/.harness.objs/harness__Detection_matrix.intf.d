lib/harness/detection_matrix.mli: Experiment Workload
