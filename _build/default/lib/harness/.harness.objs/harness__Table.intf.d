lib/harness/table.mli:
