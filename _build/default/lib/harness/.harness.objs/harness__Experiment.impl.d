lib/harness/experiment.ml: Baseline Option Runtime Vmm Workload
