lib/harness/detection_matrix.ml: Experiment List Table Workload
