lib/harness/table1.ml: Experiment List Runtime Table Workload
