lib/harness/addr_space.ml: Apa Experiment List Option Printf Runtime Shadow Table Vmm Workload
