lib/harness/experiment.mli: Runtime Vmm Workload
