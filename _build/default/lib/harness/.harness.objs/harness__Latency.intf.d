lib/harness/latency.mli: Experiment
