lib/harness/table3.mli:
