(** The detection-guarantee matrix: every injected temporal-error
    scenario run under every scheme.  This is the experimental form of
    the paper's related-work argument (§5): the shadow-page scheme,
    Electric Fence and capability checking catch everything; the plain
    allocator misses (or corrupts) silently; quarantine heuristics catch
    an immediate use-after-free but miss it once the memory has been
    re-allocated. *)

type cell = {
  config : Experiment.config;
  scenario : string;
  outcome : Workload.Fault_injection.outcome;
}

val configs : Experiment.config list
(** Native, Ours, Ours_basic, Efence, Valgrind, Capability. *)

val run : unit -> cell list

val spatial_configs : Experiment.config list
(** Native, Ours, Ours_spatial, Efence, Valgrind. *)

val run_spatial : unit -> cell list
(** Buffer-overflow scenarios: only the combined spatial+temporal
    configuration (and, for page-crossing cases, Electric Fence's guard
    pages) catches them. *)

val render : cell list -> string

val guaranteed_configs : cell list -> Experiment.config list
(** Configurations that detected every injected scenario. *)
