lib/baseline/efence.mli: Runtime Vmm
