lib/baseline/valgrind_sim.ml: Addr Hashtbl Heap Lazy List Machine Mmu Option Perm Queue Runtime Shadow Stats Vmm
