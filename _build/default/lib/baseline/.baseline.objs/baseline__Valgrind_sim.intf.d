lib/baseline/valgrind_sim.mli: Runtime Vmm
