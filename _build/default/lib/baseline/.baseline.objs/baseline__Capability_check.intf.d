lib/baseline/capability_check.mli: Runtime Vmm
