lib/baseline/efence.ml: Addr Kernel Lazy Machine Mmu Perm Runtime Shadow Stats Vmm
