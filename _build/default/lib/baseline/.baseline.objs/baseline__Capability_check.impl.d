lib/baseline/capability_check.ml: Addr Hashtbl Heap Lazy Machine Mmu Option Perm Runtime Shadow Stats Vmm
