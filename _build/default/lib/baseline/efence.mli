(** Electric Fence (Perens) / PageHeap model: one object per virtual
    {e and physical} page (or pages), protected on free and never reused.

    Detects every dangling use, like the paper's scheme — but each
    allocation consumes at least one whole physical frame, so memory
    blows up by orders of magnitude on small-object workloads (the paper
    notes enscript runs out of physical memory under Electric Fence).
    An optional guard page after each object also catches overruns. *)

val scheme : ?guard_pages:bool -> Vmm.Machine.t -> Runtime.Scheme.t
(** [guard_pages] defaults to true. *)
