(** SafeC / FisherPatil / Xu-et-al-style capability checking.

    Every allocation mints a fresh capability in a Global Capability
    Store; pointers carry the capability (we emulate the fat pointer /
    side metadata by tagging the returned address with the capability id
    in its high bits, which survives ordinary pointer arithmetic).  Every
    access checks membership in the store; [free] retires the
    capability, so {e all} dangling uses are detected even after the
    memory is re-allocated — at the price of a software check on every
    single access and a capability store that grows with the heap
    (the 1.6x–4x memory overhead the paper cites for this family). *)

type config = {
  check_cost : int;   (** instructions per access check *)
  update_cost : int;  (** instructions per capability insert/remove *)
}

val default_config : config
(** 10-instruction checks, 15-instruction updates. *)

val scheme : ?config:config -> Vmm.Machine.t -> Runtime.Scheme.t
