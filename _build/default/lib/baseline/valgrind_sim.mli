(** A Valgrind/memcheck-style checker model: dynamic binary translation
    plus software validity checks on every access, with freed blocks held
    in a bounded quarantine to {e delay} (not prevent) reuse.

    Two properties matter for the paper's comparison and both are
    modeled: the overhead is orders of magnitude above the paper's
    scheme (every access pays an instrumented check, and all computation
    runs under translation), and detection is only {e heuristic} — once a
    freed block leaves the quarantine and its memory is re-allocated, a
    dangling use of the old pointer reads the new object silently. *)

type config = {
  quarantine_blocks : int;  (** freed blocks retained before real free *)
  access_check_cost : int;  (** instrumentation instructions per access *)
  dbt_factor : float;       (** translation slowdown on plain computation *)
}

val default_config : config
(** 1000-block quarantine, 60 instructions per access check, 12x DBT. *)

val scheme : ?config:config -> Vmm.Machine.t -> Runtime.Scheme.t
