(** The paper's core mechanism (§3.2): one {e shadow} virtual page range
    per allocation, aliased onto the canonical physical pages of an
    unmodified underlying allocator.

    Allocation: the request is grown by one word; the underlying
    allocator places the object at canonical address [a]; a fresh virtual
    range aliasing [a]'s page(s) is created with one [mremap]; the
    canonical address is recorded in the extra word just before the
    returned pointer; the caller receives the {e shadow} address (same
    page offset, different page).

    Deallocation: the header word is read back (this read itself traps on
    a double free), the shadow range is [mprotect]ed to [PROT_NONE], and
    the canonical address is passed to the underlying [free] — so the
    physical memory is reused exactly as in the original program while
    every stale pointer keeps pointing at a protected page forever.

    The underlying allocator never learns any of this happened. *)

type t

val header_bytes : int
(** Extra bytes prepended per allocation (one word = 8). *)

val create :
  ?shadow_placer:(int -> Vmm.Addr.t option) ->
  ?on_shadow_range:(base:Vmm.Addr.t -> pages:int -> unit) ->
  registry:Object_registry.t ->
  allocator:Heap.Allocator_intf.t ->
  Vmm.Machine.t ->
  t
(** [shadow_placer pages] may supply a recycled virtual address at which
    to place the next shadow range ([None] = take fresh address space);
    [on_shadow_range] is told about every shadow range created, so a pool
    layer can track it for destroy-time recycling. *)

val malloc : t -> ?site:string -> int -> Vmm.Addr.t
(** Allocate [size] usable bytes; returns the shadow address.  [site] is
    a free-form call-site label kept for diagnostics. *)

val free : t -> ?site:string -> Vmm.Addr.t -> unit
(** Free a shadow address.  Raises {!Report.Violation} with
    [Double_free] / [Invalid_free] diagnostics on misuse. *)

val registry : t -> Object_registry.t
val machine : t -> Vmm.Machine.t

val shadow_pages_created : t -> int
(** Total shadow pages ever created by this heap. *)

val size_of : t -> Vmm.Addr.t -> int
(** Usable size of a live object, by shadow address. *)
