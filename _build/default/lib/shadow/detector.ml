let object_info (obj : Object_registry.obj) =
  {
    Report.object_id = obj.id;
    size = obj.size;
    offset = 0;
    alloc_site = obj.alloc_site;
    free_site =
      (match obj.state with
       | Object_registry.Live -> None
       | Object_registry.Freed { free_site } -> Some free_site);
  }

let classify registry ~in_free fault =
  let addr = Vmm.Fault.addr fault in
  let access = Vmm.Fault.access fault in
  match Object_registry.find_by_addr registry addr with
  | Some obj ->
    let info = { (object_info obj) with offset = addr - obj.user_addr } in
    let kind =
      match obj.state, in_free with
      | Object_registry.Freed _, true -> Report.Double_free
      | Object_registry.Freed _, false -> Report.Use_after_free access
      | Object_registry.Live, true -> Report.Invalid_free
      | Object_registry.Live, false ->
        (* A protected page of a live object cannot arise in our scheme;
           report it as wild rather than mask a simulator bug. *)
        Report.Wild_access access
    in
    { Report.kind; fault_addr = addr; object_info = Some info }
  | None ->
    let kind =
      if in_free then Report.Invalid_free else Report.Wild_access access
    in
    { Report.kind; fault_addr = addr; object_info = None }

let guard registry ~in_free thunk =
  try thunk () with
  | Vmm.Fault.Trap fault ->
    raise (Report.Violation (classify registry ~in_free fault))
