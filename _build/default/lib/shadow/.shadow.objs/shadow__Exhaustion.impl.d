lib/shadow/exhaustion.ml:
