lib/shadow/reuse_policy.ml: Printf Shadow_pool Vmm
