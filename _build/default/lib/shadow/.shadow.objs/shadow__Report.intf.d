lib/shadow/report.mli: Format Vmm
