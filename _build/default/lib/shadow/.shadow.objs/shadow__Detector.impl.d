lib/shadow/detector.ml: Object_registry Report Vmm
