lib/shadow/detector.mli: Object_registry Report Vmm
