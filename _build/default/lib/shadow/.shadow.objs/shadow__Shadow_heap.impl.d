lib/shadow/shadow_heap.ml: Addr Detector Heap Kernel Machine Mmu Object_registry Perm Report Vmm
