lib/shadow/shadow_heap.mli: Heap Object_registry Vmm
