lib/shadow/object_registry.ml: Addr Hashtbl Vmm
