lib/shadow/shadow_pool.ml: Addr Apa Hashtbl Kernel List Machine Object_registry Printf Shadow_heap Vmm
