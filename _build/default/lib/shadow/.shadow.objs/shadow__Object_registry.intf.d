lib/shadow/object_registry.mli: Vmm
