lib/shadow/reuse_policy.mli: Shadow_pool
