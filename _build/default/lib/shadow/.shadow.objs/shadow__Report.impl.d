lib/shadow/report.ml: Format Vmm
