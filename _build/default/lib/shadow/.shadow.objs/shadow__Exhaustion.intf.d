lib/shadow/exhaustion.mli:
