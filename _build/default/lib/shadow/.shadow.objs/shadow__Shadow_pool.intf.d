lib/shadow/shadow_pool.mli: Apa Object_registry Vmm
