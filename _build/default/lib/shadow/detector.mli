(** The trap handler: turns a raw MMU fault into a diagnosed temporal
    memory error, using the {!Object_registry}. *)

val object_info : Object_registry.obj -> Report.object_info
(** Diagnostic fields for an object (offset left 0). *)

val classify :
  Object_registry.t -> in_free:bool -> Vmm.Fault.t -> Report.t
(** Map a fault to a report.  [in_free] marks faults taken while reading
    a header inside [free] — those are double/invalid frees rather than
    use-after-free loads. *)

val guard : Object_registry.t -> in_free:bool -> (unit -> 'a) -> 'a
(** Run a thunk, converting any {!Vmm.Fault.Trap} it raises into a
    {!Report.Violation} with full diagnostics. *)
