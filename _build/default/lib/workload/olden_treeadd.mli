(** Olden [treeadd]: build a complete binary tree of 2^scale - 1 nodes on
    the simulated heap, then sum it by recursive traversal.  Pure
    allocation + pointer chasing; the lightest Olden kernel. *)

val batch : Spec.batch
