open Runtime.Workload_api

(* node = { val; left; right } *)
let node_size = 3 * word

let rec build scheme (pool : Runtime.Scheme.pool_handle) depth =
  if depth = 0 then 0
  else begin
    let n = pool.pool_alloc ~site:"treeadd:node" node_size in
    (scheme : Runtime.Scheme.t).compute 380;
    store_field scheme n 0 1;
    store_field scheme n 1 (build scheme pool (depth - 1));
    store_field scheme n 2 (build scheme pool (depth - 1));
    n
  end

let rec sum scheme n =
  if n = 0 then 0
  else begin
    (scheme : Runtime.Scheme.t).compute 260;
    load_field scheme n 0
    + sum scheme (load_field scheme n 1)
    + sum scheme (load_field scheme n 2)
  end

let run scheme ~scale =
  with_pool scheme ~elem_size:node_size (fun pool ->
      let root = build scheme pool scale in
      let total = sum scheme root in
      assert (total = (1 lsl scale) - 1))

let batch =
  {
    Spec.name = "treeadd";
    category = Spec.Olden;
    description = "recursive sum over a freshly built binary tree";
    paper = { Spec.loc = None; ratio1 = Some 4.84; valgrind_ratio = None };
    pa_quality_gain = 1.0;
    default_scale = 13;
    run;
  }
