(** Olden [mst]: minimum spanning tree with Prim's algorithm over a
    dense synthetic graph whose adjacency lists are heap-allocated hash
    nodes — many small allocations followed by repeated scans. *)

val batch : Spec.batch
