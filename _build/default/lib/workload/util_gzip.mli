(** Behavioural model of [gzip]: a handful of large up-front buffer
    allocations (window, hash chains), then pure streaming compression —
    LZ77 window scans dominate.  Essentially zero allocation during the
    run; the paper even measures a small {e speedup} under pool
    allocation from improved locality, which [pa_quality_gain < 1]
    reproduces. *)

val batch : Spec.batch
