open Runtime.Workload_api

let config_entries = 24
let scan_work_per_query = 120_000

let run scheme ~scale =
  with_pool scheme (fun pool ->
      let rng = Prng.create ~seed:103 in
      (* Startup: parse whois.conf into a linked list of entries. *)
      let entries = ref 0 in
      for _ = 1 to config_entries do
        let e = pool.Runtime.Scheme.pool_alloc ~site:"jwhois:conf" 96 in
        fill_words scheme e ~words:10 ~value:(Prng.below rng 1024);
        store_field scheme e 11 !entries;
        entries := e
      done;
      (* Per query: pick a config entry by scanning, then scan the
         response buffer for patterns. *)
      let response = pool.Runtime.Scheme.pool_alloc ~site:"jwhois:resp" 2048 in
      fill_words scheme response ~words:256 ~value:7;
      for _ = 1 to scale do
        let rec pick e n =
          if e <> 0 && n > 0 then begin
            ignore (load_field scheme e 0);
            pick (load_field scheme e 11) (n - 1)
          end
        in
        pick !entries (Prng.below rng config_entries);
        ignore (sum_words scheme response ~words:256);
        (scheme : Runtime.Scheme.t).compute scan_work_per_query
      done)

let batch =
  {
    Spec.name = "jwhois";
    category = Spec.Utility;
    description = "whois client: startup config allocs, then response scans";
    paper = { Spec.loc = Some 9607; ratio1 = Some 1.02; valgrind_ratio = Some 24.21 };
    pa_quality_gain = 1.0;
    default_scale = 600;
    run;
  }
