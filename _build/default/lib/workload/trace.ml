type event =
  | Alloc of { obj : int; size : int; pool : int option }
  | Free of { obj : int }
  | Read of { obj : int; offset : int; width : int }
  | Write of { obj : int; offset : int; width : int; value : int }
  | Pool_begin of { pool : int }
  | Pool_end of { pool : int }
  | Compute of { instructions : int }

type t = event list

(* ---- generation ---- *)

type gen_obj = {
  index : int;
  size : int;
  pool : int option;
  mutable written : int list; (* offsets holding defined values *)
}

let generate ?(allow_pools = true) ~seed ~length () =
  let rng = Prng.create ~seed in
  let events = ref [] in
  let emit e = events := e :: !events in
  let live = ref [] in (* live objects, any pool depth *)
  let pool_stack = ref [] in
  let next_obj = ref 0 in
  let next_pool = ref 0 in
  let alloc () =
    let size = 8 * (1 + Prng.below rng 32) in
    let pool =
      match !pool_stack with
      | p :: _ -> Some p
      | [] -> None
    in
    let obj = { index = !next_obj; size; pool; written = [] } in
    incr next_obj;
    live := obj :: !live;
    emit (Alloc { obj = obj.index; size; pool })
  in
  let pick_live () =
    match !live with
    | [] -> None
    | objs -> Some (List.nth objs (Prng.below rng (List.length objs)))
  in
  let free_one () =
    match pick_live () with
    | Some obj ->
      live := List.filter (fun o -> o.index <> obj.index) !live;
      emit (Free { obj = obj.index })
    | None -> alloc ()
  in
  let touch write =
    match pick_live () with
    | Some obj ->
      if write then begin
        let offset = 8 * Prng.below rng (obj.size / 8) in
        if not (List.mem offset obj.written) then
          obj.written <- offset :: obj.written;
        emit
          (Write { obj = obj.index; offset; width = 8; value = Prng.below rng 100000 })
      end
      else begin
        (* Only read offsets that hold defined values: uninitialised
           memory contents are allocator-specific, and the differential
           tests require scheme-independent results. *)
        match obj.written with
        | [] ->
          let offset = 8 * Prng.below rng (obj.size / 8) in
          obj.written <- offset :: obj.written;
          emit
            (Write
               { obj = obj.index; offset; width = 8; value = Prng.below rng 100000 })
        | offsets ->
          let offset = List.nth offsets (Prng.below rng (List.length offsets)) in
          emit (Read { obj = obj.index; offset; width = 8 })
      end
    | None -> alloc ()
  in
  let open_pool () =
    if allow_pools && List.length !pool_stack < 2 then begin
      let p = !next_pool in
      incr next_pool;
      pool_stack := p :: !pool_stack;
      emit (Pool_begin { pool = p })
    end
    else alloc ()
  in
  let close_pool () =
    match !pool_stack with
    | p :: rest ->
      (* Everything allocated in this pool dies with it. *)
      live := List.filter (fun o -> o.pool <> Some p) !live;
      pool_stack := rest;
      emit (Pool_end { pool = p })
    | [] -> touch false
  in
  for _ = 1 to length do
    match Prng.below rng 20 with
    | 0 | 1 | 2 | 3 | 4 -> alloc ()
    | 5 | 6 -> free_one ()
    | 7 -> open_pool ()
    | 8 -> close_pool ()
    | 9 -> emit (Compute { instructions = 10 * (1 + Prng.below rng 100) })
    | 10 | 11 | 12 | 13 -> touch true
    | _ -> touch false
  done;
  (* Close any pools still open so replay ends clean. *)
  List.iter
    (fun p ->
      live := List.filter (fun o -> o.pool <> Some p) !live;
      emit (Pool_end { pool = p }))
    !pool_stack;
  List.rev !events

(* ---- replay ---- *)

type replay_result = {
  reads : (int * int) list;
  violations : int;
}

type replay_obj = {
  addr : Vmm.Addr.t;
  owner : Runtime.Scheme.pool_handle option;
}

let replay trace (scheme : Runtime.Scheme.t) =
  let objects : (int, replay_obj) Hashtbl.t = Hashtbl.create 64 in
  let pools : (int, Runtime.Scheme.pool_handle) Hashtbl.t = Hashtbl.create 8 in
  let reads = ref [] in
  let violations = ref 0 in
  let guard f = try f () with Shadow.Report.Violation _ -> incr violations in
  List.iteri
    (fun i event ->
      match event with
      | Alloc { obj; size; pool } ->
        let owner = Option.map (Hashtbl.find pools) pool in
        let site = Printf.sprintf "trace:%d" i in
        let addr =
          match owner with
          | Some handle -> handle.Runtime.Scheme.pool_alloc ~site size
          | None -> scheme.Runtime.Scheme.malloc ~site size
        in
        Hashtbl.replace objects obj { addr; owner }
      | Free { obj } ->
        let o = Hashtbl.find objects obj in
        guard (fun () ->
            match o.owner with
            | Some handle -> handle.Runtime.Scheme.pool_free o.addr
            | None -> scheme.Runtime.Scheme.free o.addr)
      | Read { obj; offset; width } ->
        let o = Hashtbl.find objects obj in
        guard (fun () ->
            reads :=
              (i, scheme.Runtime.Scheme.load (o.addr + offset) ~width) :: !reads)
      | Write { obj; offset; width; value } ->
        let o = Hashtbl.find objects obj in
        guard (fun () ->
            scheme.Runtime.Scheme.store (o.addr + offset) ~width value)
      | Pool_begin { pool } ->
        Hashtbl.replace pools pool (scheme.Runtime.Scheme.pool_create ())
      | Pool_end { pool } ->
        (Hashtbl.find pools pool).Runtime.Scheme.pool_destroy ()
      | Compute { instructions } -> scheme.Runtime.Scheme.compute instructions)
    trace;
  { reads = List.rev !reads; violations = !violations }

(* ---- recording ---- *)

(* Address -> object resolution for interior accesses, via a page index
   (the same structure the Valgrind model uses). *)
type rec_obj = { r_index : int; r_base : Vmm.Addr.t; r_size : int }

type recorder = {
  mutable events : event list;
  by_page : (int, rec_obj list ref) Hashtbl.t;
  mutable next_obj : int;
  mutable next_pool : int;
}

let rec_emit r e = r.events <- e :: r.events

let rec_register r base size =
  let obj = { r_index = r.next_obj; r_base = base; r_size = size } in
  r.next_obj <- r.next_obj + 1;
  for page = Vmm.Addr.page_index base
      to Vmm.Addr.page_index (base + size - 1) do
    let cell =
      match Hashtbl.find_opt r.by_page page with
      | Some cell -> cell
      | None ->
        let cell = ref [] in
        Hashtbl.replace r.by_page page cell;
        cell
    in
    cell := obj :: !cell
  done;
  obj

let rec_find r addr =
  match Hashtbl.find_opt r.by_page (Vmm.Addr.page_index addr) with
  | None -> None
  | Some cell ->
    List.find_opt
      (fun o -> addr >= o.r_base && addr < o.r_base + o.r_size)
      !cell

let record (scheme : Runtime.Scheme.t) =
  let r =
    { events = []; by_page = Hashtbl.create 256; next_obj = 0; next_pool = 0 }
  in
  let recorded_malloc pool_id alloc ?site size =
    let addr = alloc ?site size in
    let obj = rec_register r addr size in
    rec_emit r (Alloc { obj = obj.r_index; size; pool = pool_id });
    addr
  in
  let recorded_free free_ ?site addr =
    (match rec_find r addr with
     | Some o when o.r_base = addr -> rec_emit r (Free { obj = o.r_index })
     | Some _ | None -> ());
    free_ ?site addr
  in
  let wrap_pool_handle (handle : Runtime.Scheme.pool_handle) =
    let pool_id = r.next_pool in
    r.next_pool <- r.next_pool + 1;
    rec_emit r (Pool_begin { pool = pool_id });
    {
      Runtime.Scheme.pool_alloc =
        (fun ?site size ->
          recorded_malloc (Some pool_id) handle.Runtime.Scheme.pool_alloc ?site
            size);
      pool_free =
        (fun ?site addr ->
          recorded_free handle.Runtime.Scheme.pool_free ?site addr);
      pool_destroy =
        (fun () ->
          rec_emit r (Pool_end { pool = pool_id });
          handle.Runtime.Scheme.pool_destroy ());
    }
  in
  let wrapper =
    {
      scheme with
      Runtime.Scheme.name = scheme.Runtime.Scheme.name ^ "+recorder";
      malloc =
        (fun ?site size ->
          recorded_malloc None scheme.Runtime.Scheme.malloc ?site size);
      free = (fun ?site addr -> recorded_free scheme.Runtime.Scheme.free ?site addr);
      load =
        (fun addr ~width ->
          let v = scheme.Runtime.Scheme.load addr ~width in
          (match rec_find r addr with
           | Some o ->
             rec_emit r (Read { obj = o.r_index; offset = addr - o.r_base; width })
           | None -> ());
          v);
      store =
        (fun addr ~width value ->
          scheme.Runtime.Scheme.store addr ~width value;
          match rec_find r addr with
          | Some o ->
            rec_emit r
              (Write { obj = o.r_index; offset = addr - o.r_base; width; value })
          | None -> ());
      pool_create =
        (fun ?elem_size () ->
          wrap_pool_handle (scheme.Runtime.Scheme.pool_create ?elem_size ()));
      compute =
        (fun n ->
          rec_emit r (Compute { instructions = n });
          scheme.Runtime.Scheme.compute n);
    }
  in
  (wrapper, fun () -> List.rev r.events)

(* ---- text format ---- *)

let event_to_string = function
  | Alloc { obj; size; pool = None } -> Printf.sprintf "alloc %d %d -" obj size
  | Alloc { obj; size; pool = Some p } -> Printf.sprintf "alloc %d %d %d" obj size p
  | Free { obj } -> Printf.sprintf "free %d" obj
  | Read { obj; offset; width } -> Printf.sprintf "read %d %d %d" obj offset width
  | Write { obj; offset; width; value } ->
    Printf.sprintf "write %d %d %d %d" obj offset width value
  | Pool_begin { pool } -> Printf.sprintf "pool-begin %d" pool
  | Pool_end { pool } -> Printf.sprintf "pool-end %d" pool
  | Compute { instructions } -> Printf.sprintf "compute %d" instructions

let to_string t = String.concat "\n" (List.map event_to_string t) ^ "\n"

let parse_line line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "alloc"; obj; size; "-" ] ->
    Ok
      (Some
         (Alloc { obj = int_of_string obj; size = int_of_string size; pool = None }))
  | [ "alloc"; obj; size; pool ] ->
    Ok
      (Some
         (Alloc
            {
              obj = int_of_string obj;
              size = int_of_string size;
              pool = Some (int_of_string pool);
            }))
  | [ "free"; obj ] -> Ok (Some (Free { obj = int_of_string obj }))
  | [ "read"; obj; offset; width ] ->
    Ok
      (Some
         (Read
            {
              obj = int_of_string obj;
              offset = int_of_string offset;
              width = int_of_string width;
            }))
  | [ "write"; obj; offset; width; value ] ->
    Ok
      (Some
         (Write
            {
              obj = int_of_string obj;
              offset = int_of_string offset;
              width = int_of_string width;
              value = int_of_string value;
            }))
  | [ "pool-begin"; pool ] -> Ok (Some (Pool_begin { pool = int_of_string pool }))
  | [ "pool-end"; pool ] -> Ok (Some (Pool_end { pool = int_of_string pool }))
  | [ "compute"; n ] -> Ok (Some (Compute { instructions = int_of_string n }))
  | [ "" ] -> Ok None
  | word :: _ when String.length word > 0 && word.[0] = '#' -> Ok None
  | _ -> Error (Printf.sprintf "unparseable trace line: %S" line)

let of_string s =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      (match parse_line line with
       | Ok (Some e) -> go (e :: acc) rest
       | Ok None -> go acc rest
       | Error _ as e -> e
       | exception Failure _ ->
         Error (Printf.sprintf "bad integer in trace line: %S" line))
  in
  go [] (String.split_on_char '\n' s)

let length = List.length

let live_objects_at_end t =
  let live = Hashtbl.create 64 in
  let pool_of_obj = Hashtbl.create 64 in
  List.iter
    (function
      | Alloc { obj; pool; _ } ->
        Hashtbl.replace live obj ();
        (match pool with
         | Some p -> Hashtbl.replace pool_of_obj obj p
         | None -> ())
      | Free { obj } -> Hashtbl.remove live obj
      | Pool_end { pool } ->
        Hashtbl.iter
          (fun obj p -> if p = pool then Hashtbl.remove live obj)
          (Hashtbl.copy pool_of_obj)
      | Pool_begin _ | Read _ | Write _ | Compute _ -> ())
    t;
  Hashtbl.length live
