(** Olden [em3d]: electromagnetic wave propagation on an irregular
    bipartite graph.  E-nodes update from H-node neighbours and vice
    versa for several timesteps — few allocations, many irregular
    reads, the access pattern that stresses the TLB under one-page-per-
    object schemes. *)

val batch : Spec.batch
