(** Allocation-trace record and replay.

    A trace is a scheme-independent script of heap events — allocations
    (by object index), frees, reads and writes (by object index and
    offset), pool scopes, and bulk compute — that can be replayed
    verbatim against any {!Runtime.Scheme.t}.  This is how we compare
    schemes on {e identical} workloads: same objects, same order, same
    access pattern, only the protection mechanism differs.

    Traces can be generated randomly (seeded, correct-by-construction:
    no temporal errors), written to / parsed from a simple line format,
    and replayed with full result capture for differential testing. *)

type event =
  | Alloc of { obj : int; size : int; pool : int option }
      (** allocate object [obj] (indices are dense, increasing) from the
          given pool, or from the top-level heap *)
  | Free of { obj : int }
  | Read of { obj : int; offset : int; width : int }
  | Write of { obj : int; offset : int; width : int; value : int }
  | Pool_begin of { pool : int }  (** poolinit *)
  | Pool_end of { pool : int }
      (** pooldestroy (the pool's live objects become unusable) *)
  | Compute of { instructions : int }

type t = event list

val generate :
  ?allow_pools:bool -> seed:int -> length:int -> unit -> t
(** A random, temporally-correct trace: reads/writes target live
    objects, frees are unique, pool scopes nest, and objects allocated
    inside a pool are not touched after its [Pool_end]. *)

type replay_result = {
  reads : (int * int) list;  (** (event index, value read) in order *)
  violations : int;          (** violations raised (0 for correct traces) *)
}

val replay : t -> Runtime.Scheme.t -> replay_result
(** Execute the trace.  Detected violations are counted and the
    offending event skipped (so replay is total); for the correct traces
    {!generate} produces, [violations] must be 0 under every scheme. *)

val to_string : t -> string
(** One event per line, e.g. [alloc 0 48 -], [write 0 8 8 42], [free 0]. *)

val of_string : string -> (t, string) result
(** Parse the {!to_string} format (blank lines and [#] comments ok). *)

val length : t -> int
val live_objects_at_end : t -> int

val record : Runtime.Scheme.t -> Runtime.Scheme.t * (unit -> t)
(** [record scheme] wraps a scheme so that every heap event performed
    through the wrapper is captured; the returned thunk yields the trace
    so far.  Accesses to addresses outside recorded objects (e.g. raw
    mmap regions) are performed but not recorded.  Run any workload
    against the wrapper and replay its exact heap behaviour under any
    other scheme. *)
