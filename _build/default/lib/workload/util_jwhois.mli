(** Behavioural model of [jwhois]: a handful of configuration
    allocations at startup, then pattern scanning over the server
    response — accesses vastly outnumber allocations, so the paper
    measures essentially zero overhead. *)

val batch : Spec.batch
