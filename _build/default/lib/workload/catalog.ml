let utilities =
  [ Util_enscript.batch; Util_jwhois.batch; Util_patch.batch; Util_gzip.batch ]

let olden =
  [
    Olden_bh.batch;
    Olden_bisort.batch;
    Olden_em3d.batch;
    Olden_health.batch;
    Olden_mst.batch;
    Olden_perimeter.batch;
    Olden_power.batch;
    Olden_treeadd.batch;
    Olden_tsp.batch;
  ]

let batches = utilities @ olden
let servers = Servers.all

let find_batch name =
  List.find_opt (fun b -> b.Spec.name = name) batches

let find_server name =
  List.find_opt (fun s -> s.Spec.s_name = name) servers
