(** Behavioural model of [patch]: read the target file into a line
    table (one allocation per line, up front), apply hunks by copying
    and splicing lines, write the result, free everything.  Allocation
    happens once; the work is line copying. *)

val batch : Spec.batch
