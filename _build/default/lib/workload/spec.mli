(** Workload descriptors: what the harness needs to run, label, and
    calibrate each benchmark, including the paper-reported numbers we
    compare shapes against in EXPERIMENTS.md. *)

type category =
  | Utility     (** Table 1 top half: enscript, jwhois, patch, gzip *)
  | Server      (** Table 1 bottom half: fork-per-connection daemons *)
  | Olden       (** Table 3: allocation-intensive kernels *)

type paper_numbers = {
  loc : int option;          (** the paper's LOC column, where given *)
  ratio1 : float option;     (** paper's slowdown vs LLVM base *)
  valgrind_ratio : float option;  (** paper's Table 2 slowdown, if listed *)
}

type batch = {
  name : string;
  category : category;
  description : string;
  paper : paper_numbers;
  pa_quality_gain : float;
      (** multiplier on compiled-work cost under pool allocation,
          modeling APA's cache-locality effect (< 1.0 = speedup, e.g.
          gzip; 1.0 = neutral) *)
  default_scale : int;
  run : Runtime.Scheme.t -> scale:int -> unit;
}
(** A run-to-completion workload (utilities and Olden kernels). *)

type server = {
  s_name : string;
  s_description : string;
  s_paper : paper_numbers;
  s_default_connections : int;
  handler : int -> Runtime.Scheme.t -> unit;
      (** per-connection handler, given the connection index and the
          child's fresh scheme *)
}

val no_paper_numbers : paper_numbers
