open Runtime.Workload_api

(* city = { x; y; next; visited } *)
let city_size = 4 * word

let run scheme ~scale =
  let n = scale in
  with_pool scheme ~elem_size:city_size (fun pool ->
      let rng = Prng.create ~seed:17 in
      (* Build the city list. *)
      let head = ref 0 in
      for _ = 1 to n do
        let c = pool.Runtime.Scheme.pool_alloc ~site:"tsp:city" city_size in
        store_field scheme c 0 (Prng.below rng 10_000);
        store_field scheme c 1 (Prng.below rng 10_000);
        store_field scheme c 2 !head;
        store_field scheme c 3 0;
        head := c
      done;
      (* Nearest-neighbour tour: O(n^2) scans of the list. *)
      let dist2 ax ay c =
        let dx = ax - load_field scheme c 0 in
        let dy = ay - load_field scheme c 1 in
        (dx * dx) + (dy * dy)
      in
      let current = ref !head in
      store_field scheme !current 3 1;
      let tour_len = ref 0 in
      for _ = 2 to n do
        let cx = load_field scheme !current 0 in
        let cy = load_field scheme !current 1 in
        let best = ref 0 in
        let best_d = ref max_int in
        let rec scan c =
          if c <> 0 then begin
            (scheme : Runtime.Scheme.t).compute 55;
            if load_field scheme c 3 = 0 then begin
              let d = dist2 cx cy c in
              if d < !best_d then begin
                best_d := d;
                best := c
              end
            end;
            scan (load_field scheme c 2)
          end
        in
        scan !head;
        if !best <> 0 then begin
          store_field scheme !best 3 1;
          tour_len := !tour_len + !best_d;
          current := !best
        end
      done;
      assert (!tour_len > 0))

let batch =
  {
    Spec.name = "tsp";
    category = Spec.Olden;
    description = "nearest-neighbour TSP tour over a linked city list";
    paper = { Spec.loc = None; ratio1 = Some 1.64; valgrind_ratio = None };
    pa_quality_gain = 1.0;
    default_scale = 280;
    run;
  }
