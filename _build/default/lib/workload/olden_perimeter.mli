(** Olden [perimeter]: build a quadtree over a synthetic binary image
    and compute the total perimeter of the black region by recursive
    traversal.  Build-once, traverse-once; allocation proportional to
    image complexity. *)

val batch : Spec.batch
