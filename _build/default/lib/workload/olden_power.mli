(** Olden [power]: power-system pricing optimization over a fixed
    four-level tree (root -> feeders -> laterals -> branches -> leaves),
    iterating downward price propagation and upward demand summation.
    Allocation up front, then pure traversal passes. *)

val batch : Spec.batch
