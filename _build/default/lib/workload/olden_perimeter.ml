open Runtime.Workload_api

(* node = { color; child0..3 }   color: 0 white, 1 black, 2 grey *)
let node_size = 5 * word
let white = 0
let black = 1
let grey = 2

(* Synthetic image: a disc centred in the image.  A square is black when
   all four corners are inside (the disc is convex), white when the
   square does not intersect the disc at all (nearest point of the
   square to the centre is outside), grey otherwise. *)
let classify cx cy half size =
  let r = size / 2 in
  let dist2 x y =
    let dx = x - r and dy = y - r in
    (dx * dx) + (dy * dy)
  in
  let radius2 = r * r * 9 / 16 in
  let corners =
    [ (cx - half, cy - half); (cx + half, cy - half);
      (cx - half, cy + half); (cx + half, cy + half) ]
  in
  if List.for_all (fun (x, y) -> dist2 x y <= radius2) corners then black
  else begin
    let clamp v lo hi = max lo (min hi v) in
    let nx = clamp r (cx - half) (cx + half) in
    let ny = clamp r (cy - half) (cy + half) in
    if dist2 nx ny > radius2 then white else grey
  end

(* [build cx cy half] covers the square [cx-half, cx+half) squared. *)
let rec build scheme (pool : Runtime.Scheme.pool_handle) cx cy half size =
  let n = pool.pool_alloc ~site:"perimeter:node" node_size in
  (scheme : Runtime.Scheme.t).compute 290;
  let color = classify cx cy half size in
  if color = grey && half >= 2 then begin
    store_field scheme n 0 grey;
    let q = half / 2 in
    store_field scheme n 1 (build scheme pool (cx - q) (cy - q) q size);
    store_field scheme n 2 (build scheme pool (cx + q) (cy - q) q size);
    store_field scheme n 3 (build scheme pool (cx - q) (cy + q) q size);
    store_field scheme n 4 (build scheme pool (cx + q) (cy + q) q size)
  end
  else begin
    store_field scheme n 0 (if color = grey then black else color);
    for c = 1 to 4 do
      store_field scheme n c 0
    done
  end;
  n

(* Point query: is (x, y) inside the black region?  Descends from the
   root — the quadtree neighbour-finding pattern of the real benchmark. *)
let is_black scheme root size x y =
  if x < 0 || y < 0 || x >= size || y >= size then false
  else begin
    let rec go n cx cy half =
      if n = 0 then false
      else
        match load_field scheme n 0 with
        | c when c = white -> false
        | c when c = black -> true
        | _ ->
          let q = half / 2 in
          if x < cx then
            if y < cy then go (load_field scheme n 1) (cx - q) (cy - q) q
            else go (load_field scheme n 3) (cx - q) (cy + q) q
          else if y < cy then go (load_field scheme n 2) (cx + q) (cy - q) q
          else go (load_field scheme n 4) (cx + q) (cy + q) q
    in
    go root (size / 2) (size / 2) (size / 2)
  end

(* Perimeter: every black leaf contributes its side length on each of its
   four sides whose adjacent cell (probed through the tree) is not black. *)
let rec measure scheme root size n cx cy half =
  if n = 0 then 0
  else
    match load_field scheme n 0 with
    | c when c = white -> 0
    | c when c = black ->
      let side = 2 * half in
      let exposed probe_x probe_y =
        if is_black scheme root size probe_x probe_y then 0 else side
      in
      exposed (cx - half - 1) cy
      + exposed (cx + half) cy
      + exposed cx (cy - half - 1)
      + exposed cx (cy + half)
    | _ ->
      let q = half / 2 in
      measure scheme root size (load_field scheme n 1) (cx - q) (cy - q) q
      + measure scheme root size (load_field scheme n 2) (cx + q) (cy - q) q
      + measure scheme root size (load_field scheme n 3) (cx - q) (cy + q) q
      + measure scheme root size (load_field scheme n 4) (cx + q) (cy + q) q

let run scheme ~scale =
  let size = 1 lsl scale in
  with_pool scheme ~elem_size:node_size (fun pool ->
      let root = build scheme pool (size / 2) (size / 2) (size / 2) size in
      let p = measure scheme root size root (size / 2) (size / 2) (size / 2) in
      assert (p > 0))

let batch =
  {
    Spec.name = "perimeter";
    category = Spec.Olden;
    description = "perimeter of a disc image via a quadtree";
    paper = { Spec.loc = None; ratio1 = Some 7.12; valgrind_ratio = None };
    pa_quality_gain = 1.0;
    default_scale = 9;
    run;
  }
