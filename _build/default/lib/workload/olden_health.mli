(** Olden [health]: the Colombian health-care simulation.  A 4-ary tree
    of villages, each with a waiting list of patients; every timestep
    generates new patients (allocations), advances treatment, and
    discharges finished ones (frees).  The steady alloc/free churn makes
    it one of the worst cases for per-allocation syscall overhead. *)

val batch : Spec.batch
