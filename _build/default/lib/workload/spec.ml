type category =
  | Utility
  | Server
  | Olden

type paper_numbers = {
  loc : int option;
  ratio1 : float option;
  valgrind_ratio : float option;
}

type batch = {
  name : string;
  category : category;
  description : string;
  paper : paper_numbers;
  pa_quality_gain : float;
  default_scale : int;
  run : Runtime.Scheme.t -> scale:int -> unit;
}

type server = {
  s_name : string;
  s_description : string;
  s_paper : paper_numbers;
  s_default_connections : int;
  handler : int -> Runtime.Scheme.t -> unit;
}

let no_paper_numbers = { loc = None; ratio1 = None; valgrind_ratio = None }
