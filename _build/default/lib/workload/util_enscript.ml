open Runtime.Workload_api

(* Formatting work (font metrics, escapes, page layout) per line, in
   instructions; calibrated so the syscall-per-alloc overhead lands near
   the paper's ~15% for this workload. *)
let format_work_per_line = 100_000

let process_line scheme (pool : Runtime.Scheme.pool_handle) rng =
  let token_buf = pool.pool_alloc ~site:"enscript:token" 64 in
  let fmt_buf = pool.pool_alloc ~site:"enscript:fmt" 128 in
  let out_buf = pool.pool_alloc ~site:"enscript:out" 256 in
  fill_words scheme token_buf ~words:8 ~value:(Prng.below rng 256);
  (* Tokenise: read the token buffer while building the format buffer. *)
  for i = 0 to 15 do
    let b = load_field scheme token_buf (i mod 8) in
    store_field scheme fmt_buf i (b + i)
  done;
  (scheme : Runtime.Scheme.t).compute format_work_per_line;
  for i = 0 to 31 do
    store_field scheme out_buf i (load_field scheme fmt_buf (i mod 16))
  done;
  ignore (sum_words scheme out_buf ~words:32);
  pool.pool_free ~site:"enscript:token" token_buf;
  pool.pool_free ~site:"enscript:fmt" fmt_buf;
  pool.pool_free ~site:"enscript:out" out_buf

let run scheme ~scale =
  with_pool scheme (fun pool ->
      let rng = Prng.create ~seed:101 in
      for _ = 1 to scale do
        process_line scheme pool rng
      done)

let batch =
  {
    Spec.name = "enscript";
    category = Spec.Utility;
    description = "text-to-PostScript conversion, buffer churn per line";
    paper = { Spec.loc = Some 14093; ratio1 = Some 1.15; valgrind_ratio = Some 25.37 };
    pa_quality_gain = 1.0;
    default_scale = 1200;
    run;
  }
