(** Behavioural models of the paper's five daemons, all following the
    fork-per-connection structure §4.3 documents (tftpd even forks per
    command).  Handlers are written against a fresh per-connection
    {!Runtime.Scheme.t}, which is how {!Runtime.Process} models fork:
    address-space wastage dies with the child.

    Allocation counts follow the paper's measurements: ghttpd performs
    one dynamic allocation per connection; ftpd about 5–6 global-pool
    allocations per command plus a short-lived pool inside its
    [fb_realpath]; telnetd 45 small allocations per session before
    handing off to the shell. *)

val ghttpd : Spec.server
val ftpd : Spec.server
val fingerd : Spec.server
val tftpd : Spec.server
val telnetd : Spec.server

val all : Spec.server list

val ftpd_commands_per_connection : int
val telnetd_setup_allocations : int
