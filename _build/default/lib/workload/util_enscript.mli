(** Behavioural model of [enscript] (text -> PostScript): the most
    allocation-intensive of the paper's utilities (the one with the 15%
    overhead, and the one Electric Fence runs out of memory on).  Per
    input line it allocates and frees token/format/output buffers and
    does a burst of formatting work. *)

val batch : Spec.batch
