open Runtime.Workload_api

(* body = { x; y; vx; vy }  cell = { mass; cx; cy; child0..3; is_leaf; body } *)
let body_size = 4 * word
let cell_size = 9 * word
let space = 1 lsl 16
let child_field i = 3 + i

let quadrant x y cx cy =
  (if x >= cx then 1 else 0) lor if y >= cy then 2 else 0

let new_cell scheme (pool : Runtime.Scheme.pool_handle) =
  let c = pool.pool_alloc ~site:"bh:cell" cell_size in
  for i = 0 to 8 do
    store_field scheme c i 0
  done;
  c

(* Insert a body into the quadtree rooted at [cell] covering the square
   centred (cx, cy) with half-size [half]. *)
let rec insert scheme pool cell body cx cy half =
  let bx = load_field scheme body 0 in
  let by = load_field scheme body 1 in
  (* Update aggregate mass / centre (fixed point, mass 1 per body). *)
  let m = load_field scheme cell 0 in
  store_field scheme cell 0 (m + 1);
  store_field scheme cell 1 (((load_field scheme cell 1 * m) + bx) / (m + 1));
  store_field scheme cell 2 (((load_field scheme cell 2 * m) + by) / (m + 1));
  if load_field scheme cell 7 = 1 then begin
    (* Leaf holding one body: split. *)
    let old = load_field scheme cell 8 in
    store_field scheme cell 7 0;
    store_field scheme cell 8 0;
    push_down scheme pool cell old cx cy half;
    push_down scheme pool cell body cx cy half
  end
  else if load_field scheme cell 0 = 1 then begin
    (* Fresh empty cell: become a leaf. *)
    store_field scheme cell 7 1;
    store_field scheme cell 8 body
  end
  else push_down scheme pool cell body cx cy half

and push_down scheme pool cell body cx cy half =
  let bx = load_field scheme body 0 in
  let by = load_field scheme body 1 in
  let q = quadrant bx by cx cy in
  let child =
    match load_field scheme cell (child_field q) with
    | 0 ->
      let c = new_cell scheme pool in
      store_field scheme cell (child_field q) c;
      c
    | c -> c
  in
  let h = max 1 (half / 2) in
  let ncx = cx + if q land 1 = 1 then h else -h in
  let ncy = cy + if q land 2 = 2 then h else -h in
  insert scheme pool child body ncx ncy h

(* Approximate force on (x, y) from the tree: descend until the cell is
   far enough (half/dist below threshold) or a leaf. *)
let rec force scheme cell x y half =
  if cell = 0 || load_field scheme cell 0 = 0 then (0, 0)
  else begin
    (scheme : Runtime.Scheme.t).compute 48;
    let cx = load_field scheme cell 1 in
    let cy = load_field scheme cell 2 in
    let dx = cx - x and dy = cy - y in
    let dist2 = (dx * dx) + (dy * dy) + 1 in
    let m = load_field scheme cell 0 in
    if load_field scheme cell 7 = 1 || half * half * 4 < dist2 then
      (m * dx * 64 / dist2, m * dy * 64 / dist2)
    else begin
      let fx = ref 0 and fy = ref 0 in
      for q = 0 to 3 do
        let gx, gy =
          force scheme (load_field scheme cell (child_field q)) x y (half / 2)
        in
        fx := !fx + gx;
        fy := !fy + gy
      done;
      (!fx, !fy)
    end
  end

let run scheme ~scale =
  let n = scale in
  let steps = 4 in
  with_pool scheme ~elem_size:body_size (fun bodies_pool ->
      let rng = Prng.create ~seed:3 in
      let bodies = Array.make n 0 in
      for i = 0 to n - 1 do
        let b = bodies_pool.Runtime.Scheme.pool_alloc ~site:"bh:body" body_size in
        store_field scheme b 0 (Prng.below rng space);
        store_field scheme b 1 (Prng.below rng space);
        store_field scheme b 2 0;
        store_field scheme b 3 0;
        bodies.(i) <- b
      done;
      for _ = 1 to steps do
        (* Fresh tree pool per step: destroyed (and its pages recycled)
           when the step ends. *)
        with_pool scheme ~elem_size:cell_size (fun tree_pool ->
            let root = new_cell scheme tree_pool in
            Array.iter
              (fun b ->
                insert scheme tree_pool root b (space / 2) (space / 2)
                  (space / 2))
              bodies;
            Array.iter
              (fun b ->
                let x = load_field scheme b 0 in
                let y = load_field scheme b 1 in
                let fx, fy = force scheme root x y (space / 2) in
                let clamp v = max 0 (min (space - 1) v) in
                let vx = load_field scheme b 2 + fx in
                let vy = load_field scheme b 3 + fy in
                store_field scheme b 2 vx;
                store_field scheme b 3 vy;
                store_field scheme b 0 (clamp (x + (vx / 16)));
                store_field scheme b 1 (clamp (y + (vy / 16))))
              bodies)
      done)

let batch =
  {
    Spec.name = "bh";
    category = Spec.Olden;
    description = "Barnes-Hut N-body with a fresh quadtree pool per step";
    paper = { Spec.loc = None; ratio1 = Some 3.70; valgrind_ratio = None };
    pa_quality_gain = 1.0;
    default_scale = 220;
    run;
  }
