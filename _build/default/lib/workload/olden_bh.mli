(** Olden [bh]: Barnes-Hut N-body simulation in fixed-point arithmetic.
    Each timestep builds a fresh quadtree over the bodies (a burst of
    allocations), computes approximate forces by tree traversal, moves
    the bodies, and discards the tree — the canonical per-iteration-pool
    pattern Automatic Pool Allocation shines on. *)

val batch : Spec.batch
