type t = { mutable state : int64 }

let create ~seed =
  let s = if seed = 0 then 0x9E3779B97F4A7C15L else Int64.of_int seed in
  { state = s }

let next t =
  let x = t.state in
  let x = Int64.logxor x (Int64.shift_right_logical x 12) in
  let x = Int64.logxor x (Int64.shift_left x 25) in
  let x = Int64.logxor x (Int64.shift_right_logical x 27) in
  t.state <- x;
  let r = Int64.mul x 0x2545F4914F6CDD1DL in
  Int64.to_int (Int64.shift_right_logical r 2)

let below t bound =
  if bound <= 0 then invalid_arg "Prng.below: bound <= 0";
  next t mod bound

let float t = float_of_int (next t) /. float_of_int (1 lsl 61)
