(** Olden [tsp]: a travelling-salesman tour over randomly placed cities
    using the nearest-neighbour heuristic — quadratic scanning over a
    linked list of heap-allocated city records. *)

val batch : Spec.batch
