open Runtime.Workload_api

(* village = { child0..3; patients_head; seed }  patient = { time; next } *)
let village_size = 6 * word
let patient_size = 2 * word
let treatment_time = 3

let rec build_villages scheme (pool : Runtime.Scheme.pool_handle) depth seed =
  if depth = 0 then 0
  else begin
    let v = pool.pool_alloc ~site:"health:village" village_size in
    for c = 0 to 3 do
      store_field scheme v c (build_villages scheme pool (depth - 1) ((seed * 5) + c))
    done;
    store_field scheme v 4 0;
    store_field scheme v 5 seed;
    v
  end

let rec step scheme (patients : Runtime.Scheme.pool_handle) rng v =
  if v <> 0 then begin
    (scheme : Runtime.Scheme.t).compute 230;
    for c = 0 to 3 do
      step scheme patients rng (load_field scheme v c)
    done;
    (* Admit a new patient with probability 1/2. *)
    if Prng.below rng 2 = 0 then begin
      let p = patients.pool_alloc ~site:"health:patient" patient_size in
      store_field scheme p 0 0;
      store_field scheme p 1 (load_field scheme v 4);
      store_field scheme v 4 p
    end;
    (* Treat the waiting list; discharge (free) finished patients. *)
    let rec treat prev p =
      if p <> 0 then begin
        let time = load_field scheme p 0 + 1 in
        let next = load_field scheme p 1 in
        if time >= treatment_time then begin
          (if prev = 0 then store_field scheme v 4 next
           else store_field scheme prev 1 next);
          patients.pool_free ~site:"health:discharge" p;
          treat prev next
        end
        else begin
          store_field scheme p 0 time;
          treat p next
        end
      end
    in
    treat 0 (load_field scheme v 4)
  end

let run scheme ~scale =
  with_pool scheme ~elem_size:village_size (fun villages ->
      with_pool scheme ~elem_size:patient_size (fun patients ->
          let rng = Prng.create ~seed:11 in
          let root = build_villages scheme villages 5 1 in
          for _ = 1 to scale do
            step scheme patients rng root
          done))

let batch =
  {
    Spec.name = "health";
    category = Spec.Olden;
    description = "hospital simulation with per-step patient alloc/free churn";
    paper = { Spec.loc = None; ratio1 = Some 11.24; valgrind_ratio = None };
    pa_quality_gain = 1.0;
    default_scale = 40;
    run;
  }
