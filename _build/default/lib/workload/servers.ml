open Runtime.Workload_api

let ftpd_commands_per_connection = 5
let telnetd_setup_allocations = 45

(* ghttpd: "designed for small memory footprint and performs only one
   dynamic allocation per connection". *)
let ghttpd_handler conn scheme =
  let req = (scheme : Runtime.Scheme.t).malloc ~site:"ghttpd:request" 512 in
  (* Parse the request line. *)
  fill_words scheme req ~words:32 ~value:(conn + 1);
  ignore (sum_words scheme req ~words:32);
  (* Locate and send the file: mostly static buffers + syscalls. *)
  scheme.compute 900_000;
  touch_bytes scheme req ~len:512 ~stride:8;
  scheme.free ~site:"ghttpd:request" req

let ghttpd =
  {
    Spec.s_name = "ghttpd";
    s_description = "small-footprint web server, 1 allocation/connection";
    s_paper = { Spec.loc = Some 837; ratio1 = Some 1.02; valgrind_ratio = None };
    s_default_connections = 40;
    handler = ghttpd_handler;
  }

(* ftpd: per command, 5-6 allocations from global pools, plus
   fb_realpath's create/alloc/free/destroy pool (the paper's example of
   pool allocation enabling address-space reuse within a connection). *)
let ftpd_command conn cmd scheme =
  (* Global-pool allocations for the command: argument vector, reply
     buffer, transfer state, two path strings. *)
  let live = ref [] in
  for i = 0 to 4 do
    let a =
      (scheme : Runtime.Scheme.t).malloc ~site:"ftpd:cmd-state" (64 + (i * 16))
    in
    fill_words scheme a ~words:6 ~value:(conn + cmd + i);
    live := a :: !live
  done;
  (* fb_realpath: a pool created, used and destroyed inside the call. *)
  with_pool scheme (fun pool ->
      let buf = pool.Runtime.Scheme.pool_alloc ~site:"ftpd:realpath" 1024 in
      fill_words scheme buf ~words:64 ~value:cmd;
      ignore (sum_words scheme buf ~words:64);
      pool.Runtime.Scheme.pool_free ~site:"ftpd:realpath" buf);
  (* Transfer a file chunk. *)
  scheme.compute 700_000;
  List.iter (fun a -> ignore (sum_words scheme a ~words:6)) !live;
  (* Command state is freed when the command completes. *)
  List.iter (fun a -> scheme.free ~site:"ftpd:cmd-done" a) !live

let ftpd_handler conn scheme =
  for cmd = 1 to ftpd_commands_per_connection do
    ftpd_command conn cmd scheme
  done

let ftpd =
  {
    Spec.s_name = "ftpd";
    s_description = "wu-ftpd model: 5-6 global-pool allocations per command";
    s_paper = { Spec.loc = Some 28055; ratio1 = Some 1.01; valgrind_ratio = None };
    s_default_connections = 30;
    handler = ftpd_handler;
  }

let fingerd_handler conn scheme =
  let query = (scheme : Runtime.Scheme.t).malloc ~site:"fingerd:query" 128 in
  let reply = scheme.malloc ~site:"fingerd:reply" 512 in
  fill_words scheme query ~words:8 ~value:conn;
  (* utmp / passwd lookup. *)
  scheme.compute 500_000;
  for i = 0 to 31 do
    store_field scheme reply i (load_field scheme query (i mod 8) + i)
  done;
  scheme.free query;
  scheme.free reply

let fingerd =
  {
    Spec.s_name = "fingerd";
    s_description = "finger daemon: two allocations, directory lookups";
    s_paper = { Spec.loc = Some 563; ratio1 = Some 1.01; valgrind_ratio = None };
    s_default_connections = 40;
    handler = fingerd_handler;
  }

(* tftpd forks per command; each "connection" here is one get/put. *)
let tftpd_handler conn scheme =
  let pkt = (scheme : Runtime.Scheme.t).malloc ~site:"tftpd:packet" 516 in
  let fname = scheme.malloc ~site:"tftpd:filename" 64 in
  fill_words scheme fname ~words:8 ~value:conn;
  (* Block transfer loop: 32 data blocks of 512 bytes. *)
  for block = 1 to 32 do
    for w = 0 to 63 do
      store_field scheme pkt w (block + w)
    done;
    ignore (sum_words scheme pkt ~words:64);
    scheme.compute 12_000
  done;
  scheme.compute 300_000;
  scheme.free pkt;
  scheme.free fname

let tftpd =
  {
    Spec.s_name = "tftpd";
    s_description = "TFTP daemon: fork per command, block transfer loop";
    s_paper = { Spec.loc = Some 1019; ratio1 = Some 1.03; valgrind_ratio = None };
    s_default_connections = 40;
    handler = tftpd_handler;
  }

(* telnetd: 45 small allocations before giving control to the shell,
   then no further allocation for the whole session. *)
let telnetd_handler conn scheme =
  let setup = ref [] in
  for i = 1 to telnetd_setup_allocations do
    let a =
      (scheme : Runtime.Scheme.t).malloc ~site:"telnetd:setup" (32 + (i mod 4 * 16))
    in
    store_field scheme a 0 (conn + i);
    setup := a :: !setup
  done;
  (* Session: pty byte shuffling, no allocation. *)
  for _ = 1 to 20 do
    List.iteri
      (fun i a -> if i < 8 then ignore (load_field scheme a 0))
      !setup;
    scheme.compute 80_000
  done;
  List.iter (fun a -> scheme.free ~site:"telnetd:teardown" a) !setup

let telnetd =
  {
    Spec.s_name = "telnetd";
    s_description = "telnet daemon: 45 setup allocations, then pty shuffling";
    s_paper = { Spec.loc = Some 11543; ratio1 = None; valgrind_ratio = None };
    s_default_connections = 25;
    handler = telnetd_handler;
  }

let all = [ ghttpd; ftpd; fingerd; tftpd; telnetd ]
