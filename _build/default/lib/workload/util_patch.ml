open Runtime.Workload_api

let line_words = 10 (* 80-column line *)
let splice_work_per_hunk = 900_000

let run scheme ~scale =
  let n_lines = scale in
  let n_hunks = max 1 (scale / 8) in
  with_pool scheme (fun pool ->
      let rng = Prng.create ~seed:107 in
      let table = pool.Runtime.Scheme.pool_alloc ~site:"patch:table" (n_lines * word) in
      for i = 0 to n_lines - 1 do
        let line = pool.Runtime.Scheme.pool_alloc ~site:"patch:line" (line_words * word) in
        fill_words scheme line ~words:line_words ~value:(i + 1);
        store_field scheme table i line
      done;
      (* Apply hunks: locate context (reads), rewrite a window of lines. *)
      for _ = 1 to n_hunks do
        let at = Prng.below rng (max 1 (n_lines - 40)) in
        for i = at to min (n_lines - 1) (at + 29) do
          let line = load_field scheme table i in
          for w = 0 to line_words - 1 do
            store_field scheme line w (load_field scheme line w + 1)
          done
        done;
        (scheme : Runtime.Scheme.t).compute splice_work_per_hunk
      done;
      (* Write out and release the line table. *)
      for i = 0 to n_lines - 1 do
        let line = load_field scheme table i in
        ignore (sum_words scheme line ~words:line_words);
        pool.Runtime.Scheme.pool_free ~site:"patch:line" line
      done;
      pool.Runtime.Scheme.pool_free ~site:"patch:table" table)

let batch =
  {
    Spec.name = "patch";
    category = Spec.Utility;
    description = "apply hunks to a line table read up front";
    paper = { Spec.loc = Some 5303; ratio1 = Some 1.01; valgrind_ratio = Some 11.14 };
    pa_quality_gain = 1.0;
    default_scale = 200;
    run;
  }
