lib/workload/olden_bisort.ml: Prng Runtime Spec
