lib/workload/olden_mst.ml: Prng Runtime Spec
