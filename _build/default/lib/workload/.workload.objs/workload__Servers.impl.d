lib/workload/servers.ml: List Runtime Spec
