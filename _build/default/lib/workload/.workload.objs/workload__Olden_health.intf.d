lib/workload/olden_health.mli: Spec
