lib/workload/fault_injection.mli: Runtime Shadow
