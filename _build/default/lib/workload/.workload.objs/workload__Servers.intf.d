lib/workload/servers.mli: Spec
