lib/workload/util_jwhois.mli: Spec
