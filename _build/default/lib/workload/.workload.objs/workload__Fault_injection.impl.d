lib/workload/fault_injection.ml: Heap Printf Runtime Shadow Vmm
