lib/workload/catalog.ml: List Olden_bh Olden_bisort Olden_em3d Olden_health Olden_mst Olden_perimeter Olden_power Olden_treeadd Olden_tsp Servers Spec Util_enscript Util_gzip Util_jwhois Util_patch
