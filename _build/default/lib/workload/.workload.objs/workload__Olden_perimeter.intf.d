lib/workload/olden_perimeter.mli: Spec
