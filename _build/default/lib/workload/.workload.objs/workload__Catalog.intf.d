lib/workload/catalog.mli: Spec
