lib/workload/olden_power.mli: Spec
