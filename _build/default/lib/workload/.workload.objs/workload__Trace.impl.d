lib/workload/trace.ml: Hashtbl List Option Printf Prng Runtime Shadow String Vmm
