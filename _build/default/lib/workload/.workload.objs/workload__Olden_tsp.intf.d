lib/workload/olden_tsp.mli: Spec
