lib/workload/olden_treeadd.mli: Spec
