lib/workload/spec.ml: Runtime
