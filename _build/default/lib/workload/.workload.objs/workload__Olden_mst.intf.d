lib/workload/olden_mst.mli: Spec
