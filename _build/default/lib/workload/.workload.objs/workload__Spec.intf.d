lib/workload/spec.mli: Runtime
