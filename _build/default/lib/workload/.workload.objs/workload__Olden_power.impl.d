lib/workload/olden_power.ml: Prng Runtime Spec
