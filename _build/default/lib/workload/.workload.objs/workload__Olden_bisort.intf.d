lib/workload/olden_bisort.mli: Spec
