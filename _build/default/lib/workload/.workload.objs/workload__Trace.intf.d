lib/workload/trace.mli: Runtime
