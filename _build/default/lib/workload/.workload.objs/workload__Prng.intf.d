lib/workload/prng.mli:
