lib/workload/util_patch.ml: Prng Runtime Spec
