lib/workload/olden_treeadd.ml: Runtime Spec
