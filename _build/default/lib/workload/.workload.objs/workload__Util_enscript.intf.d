lib/workload/util_enscript.mli: Spec
