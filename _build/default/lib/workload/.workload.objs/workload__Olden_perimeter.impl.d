lib/workload/olden_perimeter.ml: List Runtime Spec
