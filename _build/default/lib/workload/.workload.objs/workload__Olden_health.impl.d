lib/workload/olden_health.ml: Prng Runtime Spec
