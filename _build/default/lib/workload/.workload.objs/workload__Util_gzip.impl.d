lib/workload/util_gzip.ml: Prng Runtime Spec
