lib/workload/util_patch.mli: Spec
