lib/workload/olden_em3d.ml: Prng Runtime Spec
