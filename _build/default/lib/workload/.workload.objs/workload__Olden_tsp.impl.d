lib/workload/olden_tsp.ml: Prng Runtime Spec
