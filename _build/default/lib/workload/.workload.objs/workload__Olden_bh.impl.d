lib/workload/olden_bh.ml: Array Prng Runtime Spec
