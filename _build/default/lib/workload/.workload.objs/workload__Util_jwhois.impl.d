lib/workload/util_jwhois.ml: Prng Runtime Spec
