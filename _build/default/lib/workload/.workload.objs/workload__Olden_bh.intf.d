lib/workload/olden_bh.mli: Spec
