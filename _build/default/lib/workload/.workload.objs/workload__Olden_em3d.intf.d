lib/workload/olden_em3d.mli: Spec
