lib/workload/util_gzip.mli: Spec
