lib/workload/util_enscript.ml: Prng Runtime Spec
