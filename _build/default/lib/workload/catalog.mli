(** The full workload catalogue, in the order the paper's tables list
    them. *)

val utilities : Spec.batch list
(** Table 1 top half: enscript, jwhois, patch, gzip. *)

val olden : Spec.batch list
(** Table 3: bh, bisort, em3d, health, mst, perimeter, power, treeadd,
    tsp. *)

val batches : Spec.batch list
(** [utilities @ olden]. *)

val servers : Spec.server list
(** Table 1 bottom half + §4.3: ghttpd, ftpd, fingerd, tftpd, telnetd. *)

val find_batch : string -> Spec.batch option
val find_server : string -> Spec.server option
