open Runtime.Workload_api

(* vertex = { mindist; in_tree; adj_head }  edge = { to; weight; next } *)
let vertex_size = 3 * word
let edge_size = 3 * word
let degree = 6
let infinity_dist = max_int / 2

let weight_of rng = 1 + Prng.below rng 1024

let run scheme ~scale =
  let n = scale in
  with_pool scheme ~elem_size:vertex_size (fun pool ->
      let rng = Prng.create ~seed:23 in
      let table = pool.Runtime.Scheme.pool_alloc ~site:"mst:table" (n * word) in
      for i = 0 to n - 1 do
        let v = pool.Runtime.Scheme.pool_alloc ~site:"mst:vertex" vertex_size in
        store_field scheme v 0 infinity_dist;
        store_field scheme v 1 0;
        store_field scheme v 2 0;
        store_field scheme table i v
      done;
      (* Hash-node adjacency: [degree] out-edges per vertex. *)
      for i = 0 to n - 1 do
        let v = load_field scheme table i in
        for _ = 1 to degree do
          let e = pool.Runtime.Scheme.pool_alloc ~site:"mst:edge" edge_size in
          store_field scheme e 0 (load_field scheme table (Prng.below rng n));
          store_field scheme e 1 (weight_of rng);
          store_field scheme e 2 (load_field scheme v 2);
          store_field scheme v 2 e
        done
      done;
      (* Prim: n-1 extractions with linear scans (Olden's blocked list). *)
      let start = load_field scheme table 0 in
      store_field scheme start 0 0;
      let total = ref 0 in
      for _ = 1 to n do
        let best = ref 0 in
        let best_dist = ref infinity_dist in
        for i = 0 to n - 1 do
          (scheme : Runtime.Scheme.t).compute 14;
          let v = load_field scheme table i in
          if load_field scheme v 1 = 0 && load_field scheme v 0 < !best_dist
          then begin
            best := v;
            best_dist := load_field scheme v 0
          end
        done;
        if !best <> 0 then begin
          store_field scheme !best 1 1;
          if !best_dist < infinity_dist then total := !total + !best_dist;
          let rec relax e =
            if e <> 0 then begin
              let u = load_field scheme e 0 in
              let w = load_field scheme e 1 in
              if load_field scheme u 1 = 0 && w < load_field scheme u 0 then
                store_field scheme u 0 w;
              relax (load_field scheme e 2)
            end
          in
          relax (load_field scheme !best 2)
        end
      done;
      assert (!total >= 0))

let batch =
  {
    Spec.name = "mst";
    category = Spec.Olden;
    description = "Prim's MST over hash-node adjacency lists";
    paper = { Spec.loc = None; ratio1 = Some 6.14; valgrind_ratio = None };
    pa_quality_gain = 1.0;
    default_scale = 300;
    run;
  }
