(** Olden [bisort]: bitonic-style sorting over a complete binary tree of
    random values, by repeated value-swapping merge passes.  Heavy
    read-modify-write traffic over freshly allocated nodes. *)

val batch : Spec.batch
