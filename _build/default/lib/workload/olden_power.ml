open Runtime.Workload_api

(* node = { price; demand; nchildren; child0..child9 } *)
let max_children = 10
let node_size = (3 + max_children) * word
let child_field i = 3 + i

let alloc_node scheme (pool : Runtime.Scheme.pool_handle) nchildren =
  let n = pool.pool_alloc ~site:"power:node" node_size in
  store_field scheme n 0 100;
  store_field scheme n 1 0;
  store_field scheme n 2 nchildren;
  n

let rec build scheme pool rng level =
  let fanout =
    match level with
    | 0 -> 8  (* feeders *)
    | 1 -> 5  (* laterals *)
    | 2 -> 4  (* branches *)
    | _ -> 0  (* leaves *)
  in
  let n = alloc_node scheme pool fanout in
  if fanout = 0 then store_field scheme n 1 (1 + Prng.below rng 10)
  else
    for c = 0 to fanout - 1 do
      store_field scheme n (child_field c) (build scheme pool rng (level + 1))
    done;
  n

let rec set_prices scheme n price =
  (scheme : Runtime.Scheme.t).compute 620;
  store_field scheme n 0 price;
  let k = load_field scheme n 2 in
  for c = 0 to k - 1 do
    set_prices scheme (load_field scheme n (child_field c)) (price + 1)
  done

let rec sum_demand scheme n =
  (scheme : Runtime.Scheme.t).compute 620;
  let k = load_field scheme n 2 in
  if k = 0 then begin
    (* Leaves adjust demand against price. *)
    let price = load_field scheme n 0 in
    let demand = load_field scheme n 1 in
    let adjusted = max 1 (demand + ((100 - price) / 10)) in
    store_field scheme n 1 adjusted;
    adjusted
  end
  else begin
    let total = ref 0 in
    for c = 0 to k - 1 do
      total := !total + sum_demand scheme (load_field scheme n (child_field c))
    done;
    store_field scheme n 1 !total;
    !total
  end

let run scheme ~scale =
  with_pool scheme ~elem_size:node_size (fun pool ->
      let rng = Prng.create ~seed:31 in
      let root = build scheme pool rng 0 in
      for pass = 1 to scale do
        set_prices scheme root (90 + (pass mod 20));
        ignore (sum_demand scheme root)
      done)

let batch =
  {
    Spec.name = "power";
    category = Spec.Olden;
    description = "price/demand optimization passes over a utility tree";
    paper = { Spec.loc = None; ratio1 = Some 1.11; valgrind_ratio = None };
    pa_quality_gain = 1.0;
    default_scale = 40;
    run;
  }
