open Runtime.Workload_api

(* node = { val; left; right } *)
let node_size = 3 * word

let rec build scheme (pool : Runtime.Scheme.pool_handle) rng depth =
  if depth = 0 then 0
  else begin
    let n = pool.pool_alloc ~site:"bisort:node" node_size in
    store_field scheme n 0 (Prng.below rng 1_000_000);
    store_field scheme n 1 (build scheme pool rng (depth - 1));
    store_field scheme n 2 (build scheme pool rng (depth - 1));
    n
  end

(* Bitonic-flavoured merge: push the larger (or smaller, per [up]) value
   toward the root, recursively; several passes approach sortedness.  The
   point is the Olden access pattern — value compares and swaps over a
   pointer tree — not a proof of full sortedness. *)
let rec merge_pass scheme up n =
  if n <> 0 then begin
    (scheme : Runtime.Scheme.t).compute 95;
    let l = load_field scheme n 1 in
    let r = load_field scheme n 2 in
    let swap_with child =
      let v = load_field scheme n 0 in
      let c = load_field scheme child 0 in
      let keep, push = if up = (v > c) then (c, v) else (v, c) in
      store_field scheme n 0 keep;
      store_field scheme child 0 push
    in
    if l <> 0 then swap_with l;
    if r <> 0 then swap_with r;
    merge_pass scheme up l;
    merge_pass scheme (not up) r
  end

let rec tree_sum scheme n =
  if n = 0 then 0
  else
    load_field scheme n 0
    + tree_sum scheme (load_field scheme n 1)
    + tree_sum scheme (load_field scheme n 2)

let run scheme ~scale =
  with_pool scheme ~elem_size:node_size (fun pool ->
      let rng = Prng.create ~seed:42 in
      let root = build scheme pool rng scale in
      let before = tree_sum scheme root in
      for pass = 0 to scale - 1 do
        merge_pass scheme (pass mod 2 = 0) root
      done;
      (* Swapping permutes values; the multiset (hence sum) is invariant. *)
      assert (tree_sum scheme root = before))

let batch =
  {
    Spec.name = "bisort";
    category = Spec.Olden;
    description = "bitonic-style value merges over a random binary tree";
    paper = { Spec.loc = None; ratio1 = Some 3.22; valgrind_ratio = None };
    pa_quality_gain = 1.0;
    default_scale = 12;
    run;
  }
