(** A small deterministic PRNG (xorshift64-star) so every workload run is
    exactly reproducible across schemes — essential when comparing cycle
    counts between configurations. *)

type t

val create : seed:int -> t
val next : t -> int
(** Uniform non-negative int (62 bits). *)

val below : t -> int -> int
(** Uniform in [\[0, bound)]; [bound > 0]. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)
