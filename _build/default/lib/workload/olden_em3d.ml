open Runtime.Workload_api

let degree = 4
let timesteps = 12

(* node = { value; neighbor_0..d-1; coeff_0..d-1 } *)
let node_size = (1 + (2 * degree)) * word
let neighbor_field i = 1 + i
let coeff_field i = 1 + degree + i

(* A side table object holding the addresses of all n nodes of one kind,
   so we can pick random neighbours; large enough to span pages. *)
let table_alloc (pool : Runtime.Scheme.pool_handle) n =
  pool.pool_alloc ~site:"em3d:table" (n * word)

let build_side scheme pool rng n =
  let table = table_alloc pool n in
  for i = 0 to n - 1 do
    let node = pool.Runtime.Scheme.pool_alloc ~site:"em3d:node" node_size in
    store_field scheme node 0 (Prng.below rng 1000);
    store_field scheme table i node
  done;
  table

let wire scheme rng n from_table to_table =
  for i = 0 to n - 1 do
    let node = load_field scheme from_table i in
    for d = 0 to degree - 1 do
      let other = load_field scheme to_table (Prng.below rng n) in
      store_field scheme node (neighbor_field d) other;
      store_field scheme node (coeff_field d) (1 + Prng.below rng 7)
    done
  done

let propagate scheme n table =
  for i = 0 to n - 1 do
    (scheme : Runtime.Scheme.t).compute 1500;
    let node = load_field scheme table i in
    let v = ref (load_field scheme node 0) in
    for d = 0 to degree - 1 do
      let other = load_field scheme node (neighbor_field d) in
      let coeff = load_field scheme node (coeff_field d) in
      v := !v - (coeff * load_field scheme other 0 / 8)
    done;
    store_field scheme node 0 !v
  done

let run scheme ~scale =
  let n = scale in
  with_pool scheme ~elem_size:node_size (fun pool ->
      let rng = Prng.create ~seed:7 in
      let e_table = build_side scheme pool rng n in
      let h_table = build_side scheme pool rng n in
      wire scheme rng n e_table h_table;
      wire scheme rng n h_table e_table;
      for _ = 1 to timesteps do
        propagate scheme n e_table;
        propagate scheme n h_table
      done)

let batch =
  {
    Spec.name = "em3d";
    category = Spec.Olden;
    description = "wave propagation over an irregular bipartite graph";
    paper = { Spec.loc = None; ratio1 = Some 1.23; valgrind_ratio = None };
    pa_quality_gain = 1.0;
    default_scale = 600;
    run;
  }
