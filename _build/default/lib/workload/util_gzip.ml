open Runtime.Workload_api

let window_bytes = 16384
let hash_words = 512
let deflate_work_per_block = 90_000

let run scheme ~scale =
  with_pool scheme (fun pool ->
      let rng = Prng.create ~seed:109 in
      let window = pool.Runtime.Scheme.pool_alloc ~site:"gzip:window" window_bytes in
      let hash = pool.Runtime.Scheme.pool_alloc ~site:"gzip:hash" (hash_words * word) in
      let out = pool.Runtime.Scheme.pool_alloc ~site:"gzip:out" 4096 in
      fill_words scheme hash ~words:hash_words ~value:0;
      for block = 1 to scale do
        (* Fill a stretch of the window with "input". *)
        let base = block * 256 mod (window_bytes - 512) in
        for i = 0 to 63 do
          store_byte scheme (window + base + (i * 4)) (Prng.below rng 256)
        done;
        (* Match scan: probe the hash head, walk back through the window. *)
        for probe = 0 to 47 do
          let h = (base + (probe * 7)) mod hash_words in
          let prev = load_field scheme hash h in
          store_field scheme hash h (base + probe);
          let start = prev mod (window_bytes - 64) in
          touch_bytes scheme (window + start) ~len:48 ~stride:4
        done;
        (scheme : Runtime.Scheme.t).compute deflate_work_per_block;
        for i = 0 to 31 do
          store_field scheme out (i mod 512) (base + i)
        done
      done;
      pool.Runtime.Scheme.pool_free window;
      pool.Runtime.Scheme.pool_free hash;
      pool.Runtime.Scheme.pool_free out)

let batch =
  {
    Spec.name = "gzip";
    category = Spec.Utility;
    description = "streaming LZ77 compression over fixed buffers";
    paper = { Spec.loc = Some 8163; ratio1 = Some 0.99; valgrind_ratio = Some 2.48 };
    pa_quality_gain = 0.97;
    default_scale = 400;
    run;
  }
