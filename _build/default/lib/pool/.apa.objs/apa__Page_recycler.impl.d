lib/pool/page_recycler.ml: Addr List Vmm
