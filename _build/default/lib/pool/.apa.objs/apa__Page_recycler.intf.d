lib/pool/page_recycler.mli: Vmm
