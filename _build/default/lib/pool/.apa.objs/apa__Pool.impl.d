lib/pool/pool.ml: Addr Heap Kernel List Machine Page_recycler Printf Vmm
