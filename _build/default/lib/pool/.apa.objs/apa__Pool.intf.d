lib/pool/pool.mli: Heap Page_recycler Vmm
