(** The shared free list of virtual pages (paper §3.3).

    At [pooldestroy], every canonical and shadow virtual range owned by
    the pool is pushed here instead of being [munmap]ed; future pools
    draw canonical pages from this list before asking the kernel for
    fresh address space.  This is what bounds virtual-address-space
    growth for pool-bounded data.

    The recycler stores {e address ranges} only; when a range is taken
    for reuse, the pool run-time re-maps it with fresh physical backing
    (a single [mmap_fixed] per range), which simultaneously clears any
    stale [PROT_NONE] protections and severs any stale physical aliases
    left over from the range's previous life. *)

type t

val create : unit -> t

val put : t -> base:Vmm.Addr.t -> pages:int -> unit
(** Add a page-aligned range to the free list. *)

val take : t -> pages:int -> Vmm.Addr.t option
(** Remove and return a range of exactly [pages] pages, splitting a
    larger stored range if needed; [None] if nothing large enough is
    stored. *)

val available_pages : t -> int
(** Pages currently on the free list. *)

val total_recycled_pages : t -> int
(** Cumulative pages ever pushed — the address space that pool
    allocation saved from being wasted. *)

val total_reused_pages : t -> int
(** Cumulative pages ever taken back out for reuse. *)
