let () =
  let t0 = Unix.gettimeofday () in
  print_endline "== Table 1 ==";
  print_endline (Harness.Table1.render (Harness.Table1.rows ()));
  Printf.printf "[t1: %.1fs]\n%!" (Unix.gettimeofday () -. t0);
  let t1 = Unix.gettimeofday () in
  print_endline "== Table 3 ==";
  print_endline (Harness.Table3.render (Harness.Table3.rows ()));
  Printf.printf "[t3: %.1fs]\n%!" (Unix.gettimeofday () -. t1);
  let t2 = Unix.gettimeofday () in
  print_endline "== Table 2 ==";
  print_endline (Harness.Table2.render (Harness.Table2.rows ()));
  Printf.printf "[t2: %.1fs]\n%!" (Unix.gettimeofday () -. t2);
  print_endline "== 4.3 ==";
  print_endline (Harness.Addr_space.render (Harness.Addr_space.rows ()));
  print_endline "== detection ==";
  print_endline (Harness.Detection_matrix.render (Harness.Detection_matrix.run ()))
