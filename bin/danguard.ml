(* danguard: command-line front end to the reproduction.  Run
   `danguard help` for the generated subcommand index. *)

open Cmdliner
module J = Telemetry.Json

(* Every subcommand registers through [cmd], so the group and the
   generated `danguard help` index can never drift apart. *)
let command_index : (string * string) list ref = ref []

let cmd name ~doc term =
  command_index := !command_index @ [ (name, doc) ];
  Cmd.v (Cmd.info name ~doc) term

(* ---- shared flag specs ----
   One definition per recurring flag, so spelling, docv and defaults are
   identical across subcommands. *)

(* The scheme vocabulary is the spec catalogue — names, parsing and the
   help listing all come from [Runtime.Scheme_spec], so the CLI can
   never drift from the library: any catalogue name parses, and any of
   them takes a "+recover" suffix. *)
let scheme_conv =
  let parse s =
    match Runtime.Scheme_spec.of_string s with
    | Some spec -> Ok spec
    | None ->
      Error
        (`Msg
           (Printf.sprintf
              "invalid scheme %S, expected one of %s (each also takes a \
               +recover suffix)"
              s
              (String.concat ", " (Runtime.Scheme_spec.names ()))))
  in
  Arg.conv (parse, fun fmt spec ->
      Format.pp_print_string fmt (Runtime.Scheme_spec.to_string spec))

let config_arg =
  let doc =
    Printf.sprintf
      "Protection scheme: %s (any name also takes a $(b,+recover) suffix to \
       log violations instead of aborting)."
      (String.concat ", " (Runtime.Scheme_spec.names ()))
  in
  Arg.(
    value
    & opt scheme_conv Harness.Experiment.ours
    & info [ "s"; "scheme" ] ~docv:"SCHEME" ~doc)

let scale_divisor_arg =
  let doc = "Divide workload sizes by this factor (quick runs)." in
  Arg.(value & opt int 1 & info [ "d"; "scale-divisor" ] ~docv:"N" ~doc)

let json_arg =
  let doc = "Emit machine-readable JSON instead of table text." in
  Arg.(value & flag & info [ "json" ] ~doc)

let seed_arg ~default ~doc =
  Arg.(value & opt int default & info [ "seed" ] ~docv:"S" ~doc)

let scale_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "scale" ] ~docv:"N" ~doc:"Override the workload scale.")

(* ---- table ---- *)

let table_cmd =
  let which =
    Arg.(required & pos 0 (some int) None & info [] ~docv:"TABLE"
           ~doc:"Table number (1, 2 or 3).")
  in
  let run which divisor json =
    let envelope n rows_json =
      J.to_string
        (J.Obj
           [
             ("table", J.Int n);
             ("scale_divisor", J.Int divisor);
             ("rows", rows_json);
           ])
    in
    match which with
    | 1 ->
      let rows = Harness.Table1.rows ~scale_divisor:divisor () in
      print_endline
        (if json then envelope 1 (Harness.Table1.to_json rows)
         else Harness.Table1.render rows);
      `Ok ()
    | 2 ->
      let rows = Harness.Table2.rows ~scale_divisor:divisor () in
      print_endline
        (if json then envelope 2 (Harness.Table2.to_json rows)
         else Harness.Table2.render rows);
      `Ok ()
    | 3 ->
      let rows = Harness.Table3.rows ~scale_divisor:divisor () in
      print_endline
        (if json then envelope 3 (Harness.Table3.to_json rows)
         else Harness.Table3.render rows);
      `Ok ()
    | n -> `Error (false, Printf.sprintf "no table %d (expected 1, 2 or 3)" n)
  in
  cmd "table" ~doc:"Regenerate a table from the paper's evaluation."
    Term.(ret (const run $ which $ scale_divisor_arg $ json_arg))

(* ---- addr-space ---- *)

let addr_space_cmd =
  let connections =
    Arg.(value & opt (some int) None
         & info [ "c"; "connections" ] ~docv:"N" ~doc:"Connections per server.")
  in
  let run connections =
    print_endline (Harness.Addr_space.render (Harness.Addr_space.rows ?connections ()))
  in
  cmd "addr-space" ~doc:"Per-connection virtual-address usage of the five servers (§4.3)."
    Term.(const run $ connections)

(* ---- detect ---- *)

let detect_cmd =
  let run () =
    let cells = Harness.Detection_matrix.run () in
    print_endline (Harness.Detection_matrix.render cells);
    print_endline "";
    List.iter
      (fun (c : Harness.Detection_matrix.cell) ->
        match c.Harness.Detection_matrix.outcome with
        | Workload.Fault_injection.Detected r ->
          Printf.printf "%-24s %-22s %s\n"
            (Harness.Experiment.config_label c.Harness.Detection_matrix.config)
            c.Harness.Detection_matrix.scenario
            (Shadow.Report.to_string r)
        | Workload.Fault_injection.Silent _
        | Workload.Fault_injection.Crashed _
        | Workload.Fault_injection.Crashed_degraded _ ->
          ())
      cells
  in
  cmd "detect" ~doc:"Run every injected temporal-error scenario under every scheme."
    Term.(const run $ const ())

(* ---- faults ---- *)

let faults_cmd =
  let target =
    Arg.(value & pos 0 string "all"
         & info [] ~docv:"WORKLOAD"
             ~doc:"Olden workload name, or $(b,all) for the whole campaign.")
  in
  let seed = seed_arg ~default:0x5eed ~doc:"Fault-plan PRNG seed." in
  let run target divisor seed json =
    let workloads =
      if target = "all" then Some Workload.Catalog.olden
      else
        match Workload.Catalog.find_batch target with
        | Some b -> Some [ b ]
        | None -> None
    in
    match workloads with
    | None -> `Error (false, "unknown workload " ^ target)
    | Some workloads ->
      let rows =
        Harness.Resilience.campaign ~scale_divisor:divisor ~seed ~workloads ()
      in
      if json then
        print_endline (J.to_string (Harness.Resilience.to_json rows))
      else print_string (Harness.Resilience.render rows);
      if Harness.Resilience.ok rows then `Ok ()
      else
        `Error
          ( false,
            "resilience invariants violated (undiagnosed crash or \
             unattributed detection miss)" )
  in
  cmd "faults" ~doc:"Syscall fault-injection campaign against the governed \
             shadow-page runtime: sweeps deterministic fault plans over the \
             Olden workloads and checks that no failure is undiagnosed and \
             every detection miss is attributable to a recorded degradation \
             window."
    Term.(ret (const run $ target $ scale_divisor_arg $ seed $ json_arg))

(* ---- exhaustion ---- *)

let exhaustion_cmd =
  let allocs_per_sec =
    Arg.(value & opt float 1e6
         & info [ "allocs-per-sec" ] ~docv:"R" ~doc:"Allocation rate.")
  in
  let va_bits =
    Arg.(value & opt int 47 & info [ "va-bits" ] ~docv:"B"
           ~doc:"User address-space bits.")
  in
  let run rate bits =
    Printf.printf
      "with 2^%d bytes of address space, 4K pages and %.0f allocations/s:\n\
       %.2f hours until virtual addresses run out with no reuse at all\n"
      bits rate
      (Shadow.Exhaustion.hours_until_exhaustion
         ~va_bytes:(2. ** float_of_int bits)
         ~page_bytes:4096 ~pages_per_second:rate)
  in
  cmd "exhaustion" ~doc:"The §3.4 address-space exhaustion model."
    Term.(const run $ allocs_per_sec $ va_bits)

(* ---- run ---- *)

let run_cmd =
  let workload_name =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"WORKLOAD"
             ~doc:"Workload name (see $(b,danguard list)).")
  in
  let run name config scale json =
    let label = Harness.Experiment.config_label config in
    match Workload.Catalog.find_batch name with
    | Some batch ->
      let r = Harness.Experiment.run_batch ?scale batch config in
      if json then
        print_endline
          (J.to_string
             (J.Obj
                [
                  ("workload", J.String name);
                  ("scheme", J.String label);
                  ("cycles", J.Float r.Harness.Experiment.cycles);
                  ("peak_frames", J.Int r.Harness.Experiment.peak_frames);
                  ("va_bytes", J.Int r.Harness.Experiment.va_bytes);
                  ( "extra_memory_bytes",
                    J.Int r.Harness.Experiment.extra_memory_bytes );
                  ( "total_syscalls",
                    J.Int (Vmm.Stats.total_syscalls r.Harness.Experiment.stats)
                  );
                  ("stats", Vmm.Stats.snapshot_to_json r.Harness.Experiment.stats);
                ]))
      else begin
        Printf.printf "%s under %s:\n  cycles: %sM\n  peak frames: %d\n  VA: %s\n  checker memory: %s\n"
          name label
          (Harness.Table.fmt_cycles r.Harness.Experiment.cycles)
          r.Harness.Experiment.peak_frames
          (Harness.Table.fmt_bytes r.Harness.Experiment.va_bytes)
          (Harness.Table.fmt_bytes r.Harness.Experiment.extra_memory_bytes);
        Printf.printf "  %s\n"
          (Format.asprintf "%a" Vmm.Stats.pp r.Harness.Experiment.stats)
      end;
      `Ok ()
    | None ->
      (match Workload.Catalog.find_server name with
       | Some server ->
         let r = Harness.Experiment.run_server server config in
         if json then
           print_endline
             (J.to_string
                (J.Obj
                   [
                     ("workload", J.String name);
                     ("scheme", J.String label);
                     ("connections", J.Int r.Runtime.Process.connections);
                     ( "mean_cycles_per_connection",
                       J.Float r.Runtime.Process.mean_cycles_per_connection );
                     ("total_cycles", J.Float r.Runtime.Process.total_cycles);
                     ( "max_va_bytes_per_connection",
                       J.Int r.Runtime.Process.max_va_bytes_per_connection );
                     ("detections", J.Int r.Runtime.Process.detections);
                     ( "stats",
                       Vmm.Stats.snapshot_to_json r.Runtime.Process.total_stats );
                   ]))
         else
           Printf.printf
             "%s under %s: %d connections, mean %sM cycles/connection, max VA %s\n"
             name label
             r.Runtime.Process.connections
             (Harness.Table.fmt_cycles r.Runtime.Process.mean_cycles_per_connection)
             (Harness.Table.fmt_bytes r.Runtime.Process.max_va_bytes_per_connection);
         `Ok ()
       | None -> `Error (false, "unknown workload " ^ name))
  in
  cmd "run" ~doc:"Run one workload under one scheme and print stats."
    Term.(ret (const run $ workload_name $ config_arg $ scale_arg $ json_arg))

(* ---- list ---- *)

let list_cmd =
  let run () =
    print_endline "utilities:";
    List.iter
      (fun (b : Workload.Spec.batch) ->
        Printf.printf "  %-10s %s\n" b.Workload.Spec.name
          b.Workload.Spec.description)
      Workload.Catalog.utilities;
    print_endline "olden:";
    List.iter
      (fun (b : Workload.Spec.batch) ->
        Printf.printf "  %-10s %s\n" b.Workload.Spec.name
          b.Workload.Spec.description)
      Workload.Catalog.olden;
    print_endline "servers:";
    List.iter
      (fun (s : Workload.Spec.server) ->
        Printf.printf "  %-10s %s\n" s.Workload.Spec.s_name
          s.Workload.Spec.s_description)
      Workload.Catalog.servers
  in
  cmd "list" ~doc:"List all workloads."
    Term.(const run $ const ())

(* ---- compile ---- *)

let compile_cmd =
  let file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FILE.mc" ~doc:"MiniC source file.")
  in
  let emit =
    Arg.(value & flag
         & info [ "emit" ] ~doc:"Print the pool-transformed program.")
  in
  let execute =
    Arg.(value & flag & info [ "run" ] ~doc:"Run the transformed program.")
  in
  let run file emit execute config =
    let source = In_channel.with_open_text file In_channel.input_all in
    match Minic.Parser.parse source with
    | exception Minic.Parser.Parse_error { line; message } ->
      `Error (false, Printf.sprintf "%s:%d: %s" file line message)
    | exception Minic.Lexer.Lex_error { line; message } ->
      `Error (false, Printf.sprintf "%s:%d: %s" file line message)
    | program ->
      (match Minic.Pool_transform.transform program with
       | exception Minic.Typecheck.Type_error msg -> `Error (false, msg)
       | exception Minic.Pool_transform.Transform_error msg ->
         `Error (false, msg)
       | transformed, summary ->
         Printf.printf "pools inferred (%d sites, %d frees rewritten):\n"
           summary.Minic.Pool_transform.sites_rewritten
           summary.Minic.Pool_transform.frees_rewritten;
         List.iter
           (fun (d : Minic.Pool_transform.pool_desc) ->
             Printf.printf "  %-10s owner=%-12s struct=%-8s %s\n"
               d.Minic.Pool_transform.pool_var d.Minic.Pool_transform.owner
               (Option.value ~default:"?" d.Minic.Pool_transform.struct_name)
               (if d.Minic.Pool_transform.global then "(global, long-lived)"
                else ""))
           summary.Minic.Pool_transform.pools;
         if emit then begin
           print_endline "";
           print_endline (Minic.Pretty.program_to_string transformed)
         end;
         if execute then begin
           let scheme = Harness.Experiment.make_scheme config () in
           match Minic.Interp.run transformed scheme with
           | outcome ->
             List.iter (Printf.printf "print: %d\n") outcome.Minic.Interp.prints;
             Printf.printf "steps: %d, cycles: %sM\n" outcome.Minic.Interp.steps
               (Harness.Table.fmt_cycles
                  (Runtime.Scheme.cycles scheme))
           | exception Shadow.Report.Violation r ->
             Printf.printf "TEMPORAL ERROR DETECTED: %s\n"
               (Shadow.Report.to_string r)
         end;
         `Ok ())
  in
  cmd "compile" ~doc:"Parse, pool-transform and optionally run a MiniC program."
    Term.(ret (const run $ file $ emit $ execute $ config_arg))

(* ---- lint ---- *)

let lint_cmd =
  let file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FILE.mc" ~doc:"MiniC source file.")
  in
  let sarif =
    Arg.(
      value & flag
      & info [ "sarif" ]
          ~doc:"Emit a SARIF 2.1.0 document (one result per flagged \
                finding); takes precedence over $(b,--json).")
  in
  (* Exit codes are part of the contract (pinned by make lint-smoke):
     0 clean / may-only, 2 malformed input, 3 at least one Must-UAF. *)
  let run file json sarif =
    let fail msg =
      prerr_endline msg;
      Stdlib.exit 2
    in
    let source = In_channel.with_open_text file In_channel.input_all in
    match Minic.Parser.parse source with
    | exception Minic.Parser.Parse_error { line; message } ->
      fail (Printf.sprintf "%s:%d: error: %s" file line message)
    | exception Minic.Lexer.Lex_error { line; message } ->
      fail (Printf.sprintf "%s:%d: error: %s" file line message)
    | program ->
      (match Minic.Dangling.analyze program with
       | exception Minic.Typecheck.Type_error msg ->
         fail (Printf.sprintf "%s: error: %s" file msg)
       | exception Minic.Ast.Semantic_error msg ->
         fail (Printf.sprintf "%s: error: %s" file msg)
       | result ->
         let d = Minic.Diagnostics.make ~file result in
         if sarif then
           print_endline (J.to_string_pretty (Minic.Diagnostics.to_sarif d))
         else if json then
           print_endline (J.to_string_pretty (Minic.Diagnostics.to_json d))
         else print_string (Minic.Diagnostics.render d);
         Stdlib.exit (Minic.Diagnostics.exit_code d))
  in
  cmd "lint" ~doc:"Static dangling-pointer analysis of a MiniC program: every \
             free and dereference gets a Safe / may-UAF / must-UAF verdict \
             and every malloc site a protection-elision verdict.  Exits 3 \
             if a must-UAF is found, 2 on malformed input."
    Term.(const run $ file $ json_arg $ sarif)

(* ---- pools ---- *)

let pools_cmd =
  let file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FILE.mc" ~doc:"MiniC source file.")
  in
  let run file json =
    let fail msg =
      prerr_endline msg;
      Stdlib.exit 2
    in
    let source = In_channel.with_open_text file In_channel.input_all in
    match Minic.Parser.parse source with
    | exception Minic.Parser.Parse_error { line; message } ->
      fail (Printf.sprintf "%s:%d: error: %s" file line message)
    | exception Minic.Lexer.Lex_error { line; message } ->
      fail (Printf.sprintf "%s:%d: error: %s" file line message)
    | program ->
      (match Minic.Poolify.analyze program with
       | exception Minic.Typecheck.Type_error msg ->
         fail (Printf.sprintf "%s: error: %s" file msg)
       | exception Minic.Ast.Semantic_error msg ->
         fail (Printf.sprintf "%s: error: %s" file msg)
       | exception Minic.Pool_transform.Transform_error msg ->
         fail (Printf.sprintf "%s: error: %s" file msg)
       | result ->
         if json then
           print_endline
             (J.to_string_pretty (Minic.Poolify.to_json ~file result))
         else print_string (Minic.Poolify.render ~file result))
  in
  cmd "pools"
    ~doc:"Static pool inference over the field-sensitive DSA partition: \
          the pool each allocation site lands in, the function whose \
          scope owns the pool's create/destroy, type homogeneity, and a \
          per-site dangling-risk score.  Output is canonically ordered \
          (byte-identical across runs).  Exits 2 on malformed input."
    Term.(const run $ file $ json_arg)

(* ---- trace ---- *)

let trace_cmd =
  let record_workload =
    Arg.(value & opt (some string) None
         & info [ "record" ] ~docv:"WORKLOAD"
             ~doc:"Record the named workload's heap trace to stdout.")
  in
  let record_scale =
    Arg.(value & opt (some int) None
         & info [ "record-scale" ] ~docv:"N"
             ~doc:"Scale for --record (default: the workload's).")
  in
  let gen_length =
    Arg.(value & opt (some int) None
         & info [ "generate" ] ~docv:"N"
             ~doc:"Generate a random N-event trace to stdout instead of \
                   replaying one.")
  in
  let seed = seed_arg ~default:1 ~doc:"Generator seed." in
  let target =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"WORKLOAD|TRACE"
             ~doc:"Workload name to trace through the telemetry sink, or a \
                   recorded trace file to replay.")
  in
  let out =
    Arg.(value & opt string "trace.json"
         & info [ "o"; "out" ] ~docv:"FILE"
             ~doc:"Output file for the telemetry trace.")
  in
  let format =
    let formats = [ ("chrome", `Chrome); ("jsonl", `Jsonl); ("text", `Text) ] in
    Arg.(value & opt (enum formats) `Chrome
         & info [ "format" ] ~docv:"FMT"
             ~doc:"Telemetry trace format: chrome (trace_event JSON, loads \
                   in Perfetto/about:tracing), jsonl, or text.")
  in
  let sample =
    Arg.(value & opt int 1
         & info [ "sample" ] ~docv:"N"
             ~doc:"Record every N-th samplable event (violations and pool \
                   lifecycle are always kept).")
  in
  let capacity =
    Arg.(value & opt int 65536
         & info [ "capacity" ] ~docv:"N"
             ~doc:"Ring-buffer capacity; oldest events are evicted beyond \
                   this.")
  in
  let trace_workload batch record_scale config ~out ~format ~sample ~capacity =
    let sink = Telemetry.Sink.create ~capacity ~sample_every:sample () in
    let scheme =
      Harness.Experiment.make_scheme config
        ~pa_quality_gain:batch.Workload.Spec.pa_quality_gain ~trace:sink ()
    in
    let scale =
      Option.value record_scale ~default:batch.Workload.Spec.default_scale
    in
    batch.Workload.Spec.run scheme ~scale;
    let events = Telemetry.Sink.events sink in
    let body =
      match format with
      | `Chrome -> Telemetry.Export.to_chrome_string events
      | `Jsonl -> Telemetry.Export.to_jsonl events
      | `Text -> Telemetry.Export.to_text events
    in
    Out_channel.with_open_text out (fun oc ->
        Out_channel.output_string oc body);
    Printf.printf
      "%s under %s: wrote %d events to %s (%d recorded, %d evicted by ring, \
       sample 1/%d)\n"
      batch.Workload.Spec.name
      (Harness.Experiment.config_label config)
      (List.length events) out
      (Telemetry.Sink.recorded sink)
      (Telemetry.Sink.dropped sink)
      (Telemetry.Sink.sample_every sink)
  in
  let run record_workload record_scale gen_length seed target config out format
      sample capacity =
    match record_workload, gen_length, target with
    | Some name, _, _ ->
      (match Workload.Catalog.find_batch name with
       | None -> `Error (false, "unknown workload " ^ name)
       | Some batch ->
         let wrapper, get_trace =
           Workload.Trace.record
             (Runtime.Schemes.native (Vmm.Machine.create ()))
         in
         let scale =
           Option.value record_scale
             ~default:batch.Workload.Spec.default_scale
         in
         batch.Workload.Spec.run wrapper ~scale;
         print_string (Workload.Trace.to_string (get_trace ()));
         `Ok ())
    | None, Some length, _ ->
      print_string
        (Workload.Trace.to_string (Workload.Trace.generate ~seed ~length ()));
      `Ok ()
    | None, None, Some target ->
      (match Workload.Catalog.find_batch target with
       | _ when sample < 1 -> `Error (false, "--sample must be at least 1")
       | _ when capacity < 1 -> `Error (false, "--capacity must be at least 1")
       | Some batch ->
         trace_workload batch record_scale config ~out ~format ~sample
           ~capacity;
         `Ok ()
       | None ->
         if not (Sys.file_exists target) then
           `Error
             ( false,
               Printf.sprintf "%s is neither a workload nor a trace file"
                 target )
         else
           let text = In_channel.with_open_text target In_channel.input_all in
           (match Workload.Trace.of_string text with
            | Error e -> `Error (false, e)
            | Ok trace ->
              let scheme = Harness.Experiment.make_scheme config () in
              let result = Workload.Trace.replay trace scheme in
              Printf.printf
                "replayed %d events under %s: %d reads, %d violations, %sM cycles\n"
                (Workload.Trace.length trace)
                (Harness.Experiment.config_label config)
                (List.length result.Workload.Trace.reads)
                result.Workload.Trace.violations
                (Harness.Table.fmt_cycles (Runtime.Scheme.cycles scheme));
              `Ok ()))
    | None, None, None ->
      `Error
        ( true,
          "provide a workload to trace, a trace file to replay, --generate N, \
           or --record W" )
  in
  cmd "trace" ~doc:"Trace a workload's events through the telemetry sink, or \
             generate/record/replay scheme-independent allocation traces."
    Term.(
      ret
        (const run $ record_workload $ record_scale $ gen_length $ seed
         $ target $ config_arg $ out $ format $ sample $ capacity))

(* ---- demo ---- *)

let demo_cmd =
  let run () =
    print_endline "1. allocate and use an object under the full scheme:";
    let m = Vmm.Machine.create () in
    let scheme = Runtime.Schemes.shadow_pool m in
    let p = scheme.Runtime.Scheme.malloc ~site:"demo.c:12" 48 in
    scheme.Runtime.Scheme.store p ~width:8 42;
    Printf.printf "   p = %s, *p = %d\n"
      (Format.asprintf "%a" Vmm.Addr.pp p)
      (scheme.Runtime.Scheme.load p ~width:8);
    print_endline "2. free it:";
    scheme.Runtime.Scheme.free ~site:"demo.c:19" p;
    print_endline "   freed; physical page already reusable by the allocator";
    print_endline "3. use the dangling pointer:";
    (match scheme.Runtime.Scheme.load p ~width:8 with
     | v -> Printf.printf "   BUG: read %d\n" v
     | exception Shadow.Report.Violation r ->
       Printf.printf "   trapped by the MMU -> %s\n" (Shadow.Report.to_string r));
    print_endline "4. double-free it:";
    (match scheme.Runtime.Scheme.free ~site:"demo.c:31" p with
     | () -> print_endline "   BUG: not detected"
     | exception Shadow.Report.Violation r ->
       Printf.printf "   trapped by the MMU -> %s\n" (Shadow.Report.to_string r));
    Printf.printf
      "5. cost so far: %.0f simulated cycles, %d syscalls, %d physical pages\n"
      (Vmm.Machine.cycles m)
      (Vmm.Stats.total_syscalls (Vmm.Stats.snapshot m.Vmm.Machine.stats))
      (Vmm.Frame_table.live_frames m.Vmm.Machine.frames)
  in
  cmd "demo" ~doc:"A 30-second tour of the dangling-pointer detector."
    Term.(const run $ const ())

(* ---- farm ---- *)

let farm_cmd =
  let module Farm = Danguard_farm.Farm in
  let module Scheduler = Danguard_farm.Scheduler in
  let server_name =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"SERVER"
             ~doc:"Server daemon name (see $(b,danguard list)).")
  in
  let shards =
    Arg.(value & opt int 4
         & info [ "shards" ] ~docv:"N" ~doc:"Number of shard domains.")
  in
  let connections =
    Arg.(value & opt (some int) None
         & info [ "c"; "connections" ] ~docv:"M"
             ~doc:"Total connections to serve (default: the server's).")
  in
  let probe_every =
    Arg.(value & opt int 0
         & info [ "probe-every" ] ~docv:"K"
             ~doc:"Append a dangling-use probe to every K-th connection \
                   (0 = none).")
  in
  let policy =
    let policies =
      [ ("round-robin", Scheduler.Round_robin);
        ("work-steal", Scheduler.Work_steal) ]
    in
    Arg.(value & opt (enum policies) Scheduler.Round_robin
         & info [ "policy" ] ~docv:"POLICY"
             ~doc:"Connection scheduler: round-robin or work-steal.")
  in
  let trace_file =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Write a Chrome trace of the run to $(docv), one lane \
                   per shard (open in about://tracing or Perfetto).")
  in
  let run name shards connections probe_every policy config seed json
      trace_file =
    if shards < 1 then `Error (false, "--shards must be at least 1")
    else
      match Workload.Catalog.find_server name with
      | None -> `Error (false, "unknown server " ^ name)
      | Some server ->
        let trace_capacity = if trace_file = None then 0 else 65536 in
        let r =
          Farm.run_server ~policy ~seed ~probe_every ~trace_capacity ~config
            ?connections ~shards server
        in
        (match trace_file with
         | None -> ()
         | Some path ->
           (* pid 0 renders oddly in trace viewers; lanes are 1-based *)
           let groups =
             List.map
               (fun (shard, events) -> (shard + 1, 1, events))
               r.Farm.traces
           in
           Out_channel.with_open_text path (fun oc ->
               Out_channel.output_string oc
                 (Telemetry.Export.to_chrome_string_grouped
                    ~name_of_pid:(fun pid -> Printf.sprintf "shard %d" (pid - 1))
                    groups)));
        let label = Harness.Experiment.config_label config in
        if json then
          print_endline
            (J.to_string
               (J.Obj
                  [
                    ("server", J.String name);
                    ("scheme", J.String label);
                    ("shards", J.Int r.Farm.shards);
                    ("policy", J.String (Scheduler.policy_label r.Farm.policy));
                    ("seed", J.Int r.Farm.seed);
                    ("connections", J.Int r.Farm.totals.Farm.connections);
                    ("detections", J.Int r.Farm.totals.Farm.detections);
                    ("syscalls", J.Int r.Farm.totals.Farm.syscalls);
                    ("max_va_bytes", J.Int r.Farm.totals.Farm.max_va_bytes);
                    ("makespan_cycles", J.Float r.Farm.makespan_cycles);
                    ("throughput_conn_per_mcycle", J.Float r.Farm.throughput);
                    ("latency_p50", J.Float r.Farm.latency.Harness.Latency.q50);
                    ("latency_p95", J.Float r.Farm.latency.Harness.Latency.q95);
                    ("latency_p99", J.Float r.Farm.latency.Harness.Latency.q99);
                    ( "per_shard",
                      J.List
                        (List.map
                           (fun (sh : Farm.shard_report) ->
                             J.Obj
                               [
                                 ("shard", J.Int sh.Farm.shard);
                                 ("served", J.Int sh.Farm.served);
                                 ("busy_cycles", J.Float sh.Farm.busy_cycles);
                                 ("detections", J.Int sh.Farm.shard_detections);
                               ])
                           r.Farm.per_shard) );
                    ("stats", Vmm.Stats.snapshot_to_json r.Farm.totals.Farm.stats);
                    ( "syscalls_per_op",
                      match Vmm.Stats.syscalls_per_op r.Farm.totals.Farm.stats with
                      | Some v -> J.Float v
                      | None -> J.Null );
                  ]))
        else begin
          Printf.printf
            "%s under %s: %d connections over %d shards (%s, seed 0x%x)\n"
            name label r.Farm.totals.Farm.connections r.Farm.shards
            (Scheduler.policy_label r.Farm.policy)
            r.Farm.seed;
          List.iter
            (fun (sh : Farm.shard_report) ->
              Printf.printf
                "  shard %d: %3d connections, %sM cycles, %d detections\n"
                sh.Farm.shard sh.Farm.served
                (Harness.Table.fmt_cycles sh.Farm.busy_cycles)
                sh.Farm.shard_detections)
            r.Farm.per_shard;
          Printf.printf
            "  makespan %sM cycles, throughput %.3f conn/Mcycle\n"
            (Harness.Table.fmt_cycles r.Farm.makespan_cycles)
            r.Farm.throughput;
          Printf.printf
            "  detections %d, syscalls %d, latency p50 %sM p99 %sM cycles\n"
            r.Farm.totals.Farm.detections r.Farm.totals.Farm.syscalls
            (Harness.Table.fmt_cycles r.Farm.latency.Harness.Latency.q50)
            (Harness.Table.fmt_cycles r.Farm.latency.Harness.Latency.q99)
        end;
        `Ok ()
  in
  cmd "farm"
    ~doc:"Serve one of the paper's daemons across N shard domains and \
          report merged throughput, detection and latency statistics."
    Term.(
      ret
        (const run $ server_name $ shards $ connections $ probe_every $ policy
         $ config_arg
         $ seed_arg ~default:0x5eed ~doc:"Connection-shuffle seed."
         $ json_arg $ trace_file))

(* ---- report ---- *)

let report_cmd =
  let module Farm = Danguard_farm.Farm in
  let module Scheduler = Danguard_farm.Scheduler in
  let server_name =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"SERVER"
             ~doc:"Server daemon name (see $(b,danguard list)).")
  in
  let shards =
    Arg.(value & opt int 4
         & info [ "shards" ] ~docv:"N" ~doc:"Number of shard domains.")
  in
  let connections =
    Arg.(value & opt (some int) None
         & info [ "c"; "connections" ] ~docv:"M"
             ~doc:"Total connections to serve (default: the server's).")
  in
  let probe_every =
    Arg.(value & opt int 4
         & info [ "probe-every" ] ~docv:"K"
             ~doc:"Seed a dangling-use probe on every K-th connection \
                   (0 = none).")
  in
  let probe_sites =
    Arg.(value & opt int 4
         & info [ "sites" ] ~docv:"S"
             ~doc:"Spread the probes over S distinct injection sites, \
                   each its own bug flavour.")
  in
  let policy =
    let policies =
      [ ("round-robin", Scheduler.Round_robin);
        ("work-steal", Scheduler.Work_steal) ]
    in
    Arg.(value & opt (enum policies) Scheduler.Round_robin
         & info [ "policy" ] ~docv:"POLICY"
             ~doc:"Connection scheduler: round-robin or work-steal.")
  in
  let prometheus =
    Arg.(value & flag
         & info [ "prometheus" ]
             ~doc:"Emit the merged metrics registry (including the \
                   per-signature crash counters) in Prometheus text \
                   exposition format instead of the dashboard.")
  in
  let run name shards connections probe_every probe_sites policy config seed
      json prometheus =
    if shards < 1 then `Error (false, "--shards must be at least 1")
    else if probe_sites < 1 then `Error (false, "--sites must be at least 1")
    else
      match Workload.Catalog.find_server name with
      | None -> `Error (false, "unknown server " ^ name)
      | Some server ->
        let r =
          Farm.run_server ~policy ~seed ~probe_every ~probe_sites
            ~recover:true ~config ?connections ~shards server
        in
        let served = r.Farm.totals.Farm.connections in
        let expected_probes =
          if probe_every <= 0 then 0 else (served + probe_every - 1) / probe_every
        in
        let label = Harness.Experiment.config_label config in
        let gauge name =
          int_of_float
            (Telemetry.Metrics.gauge_value
               (Telemetry.Metrics.gauge r.Farm.registry name))
        in
        let endurance_json =
          J.Obj
            [
              ("va_pages_used", J.Int (gauge "shadow.va_pages_used"));
              ("va_pages_reclaimed", J.Int (gauge "shadow.va_pages_reclaimed"));
              ("gc_pinned_ranges", J.Int (gauge "shadow.gc_pinned_ranges"));
            ]
        in
        if prometheus then
          print_string (Telemetry.Export.to_prometheus r.Farm.registry)
        else if json then
          print_endline
            (J.to_string
               (J.Obj
                  [
                    ("server", J.String name);
                    ("scheme", J.String label);
                    ("shards", J.Int r.Farm.shards);
                    ("policy", J.String (Scheduler.policy_label r.Farm.policy));
                    ("seed", J.Int r.Farm.seed);
                    ("connections", J.Int served);
                    ("probe_every", J.Int probe_every);
                    ("probe_sites", J.Int probe_sites);
                    ("detections", J.Int r.Farm.totals.Farm.detections);
                    ("endurance", endurance_json);
                    ("derived", Telemetry.Export.derived_to_json r.Farm.registry);
                    ("report", Fleet.Crash.to_json r.Farm.crashes);
                  ]))
        else begin
          Printf.printf
            "fleet crash report: %s under %s, %d connections over %d shards \
             (%s, seed 0x%x)\n\n"
            name label served r.Farm.shards
            (Scheduler.policy_label r.Farm.policy)
            r.Farm.seed;
          (match Vmm.Stats.syscalls_per_op r.Farm.totals.Farm.stats with
           | Some v ->
             Printf.printf "protection syscalls/op: %.4f\n" v
           | None -> ());
          Printf.printf
            "shadow VA: %d pages used (worst connection), %d reclaimed, %d \
             pinned\n\n"
            (gauge "shadow.va_pages_used")
            (gauge "shadow.va_pages_reclaimed")
            (gauge "shadow.gc_pinned_ranges");
          print_string (Fleet.Crash.render r.Farm.crashes)
        end;
        (* Self-checks: the recoverable wrapper must keep every child
           alive, and a seeded run must surface every probe. *)
        if r.Farm.totals.Farm.detections > 0 then
          `Error
            ( false,
              Printf.sprintf "%d violation(s) escaped recovery and killed \
                              their connection"
                r.Farm.totals.Farm.detections )
        else if
          probe_every > 0
          && r.Farm.crashes.Fleet.Crash.total_reports < expected_probes
        then
          `Error
            ( false,
              Printf.sprintf "expected %d probe report(s), got %d"
                expected_probes r.Farm.crashes.Fleet.Crash.total_reports )
        else `Ok ()
  in
  cmd "report"
    ~doc:"Run a server farm in recoverable (log-don't-abort) mode with \
          seeded dangling-use probes and print the ranked fleet crash \
          dashboard: unique stack signatures by report count."
    Term.(
      ret
        (const run $ server_name $ shards $ connections $ probe_every
         $ probe_sites $ policy $ config_arg
         $ seed_arg ~default:0x5eed ~doc:"Connection-shuffle seed."
         $ json_arg $ prometheus))

(* ---- soak ---- *)

let soak_cmd =
  let days =
    Arg.(value & opt int 3 & info [ "days" ] ~docv:"D" ~doc:"Simulated days.")
  in
  let connections =
    Arg.(value & opt int 120
         & info [ "c"; "connections" ] ~docv:"N" ~doc:"Connections per day.")
  in
  let server =
    Arg.(value & opt string "ghttpd"
         & info [ "server" ] ~docv:"S"
             ~doc:"Server daemon model (see $(b,danguard list)).")
  in
  let budget =
    Arg.(value & opt (some int) None
         & info [ "budget-pages" ] ~docv:"P"
             ~doc:"VA budget in pages (default: days x connections).")
  in
  let no_reclaim =
    Arg.(value & flag
         & info [ "no-reclaim" ]
             ~doc:"Disarm the GC and reuse policy: demonstrate the §3.4 \
                   exhaustion problem instead of the fix (the endurance \
                   gates are skipped).")
  in
  let governor =
    Arg.(value & flag
         & info [ "governor" ]
             ~doc:"Arm the degradation ladder as the last-resort response \
                   to VA pressure.")
  in
  let run days connections server budget no_reclaim governor seed json =
    let config =
      {
        Harness.Soak.default_config with
        Harness.Soak.days;
        connections_per_day = connections;
        server;
        seed;
        budget_pages =
          Option.value budget ~default:(days * connections);
        endurance = not no_reclaim;
        governor;
      }
    in
    match Harness.Soak.run ~config () with
    | exception Invalid_argument m -> `Error (false, m)
    | r ->
      if json then
        print_endline
          (J.to_string
             (J.Obj
                [
                  ("server", J.String server);
                  ("days", J.Int days);
                  ("connections_per_day", J.Int connections);
                  ("budget_pages", J.Int config.Harness.Soak.budget_pages);
                  ("endurance", J.Bool (not no_reclaim));
                  ("total_probes", J.Int r.Harness.Soak.total_probes);
                  ("missed_probes", J.Int r.Harness.Soak.missed_probes);
                  ( "reclaims_with_witness",
                    J.Int r.Harness.Soak.reclaims_with_witness );
                  ("gc_runs", J.Int r.Harness.Soak.gc_runs);
                  ("reclaimed_pages", J.Int r.Harness.Soak.reclaimed_pages);
                  ("pinned_final", J.Int r.Harness.Soak.pinned_final);
                  ("exhausted", J.Bool r.Harness.Soak.exhausted);
                  ( "projected_hours",
                    match r.Harness.Soak.projected_hours with
                    | Some h -> J.Float h
                    | None -> J.Null );
                  ( "first_day_delta_pages",
                    J.Int r.Harness.Soak.first_day_delta_pages );
                  ("tail_delta_pages", J.Int r.Harness.Soak.tail_delta_pages);
                  ( "rows",
                    J.List
                      (List.map
                         (fun (row : Harness.Soak.day_row) ->
                           J.Obj
                             [
                               ("day", J.Int row.Harness.Soak.day);
                               ( "va_pages_used",
                                 J.Int row.Harness.Soak.va_pages_used );
                               ("gc_runs", J.Int row.Harness.Soak.gc_runs);
                               ( "probes_detected",
                                 J.Int row.Harness.Soak.probes_detected );
                               ("mode", J.String row.Harness.Soak.mode);
                             ])
                         r.Harness.Soak.rows) );
                ]))
      else begin
        Printf.printf
          "soak: %s, %d day(s) x %d connections, budget %d pages%s\n"
          server days connections config.Harness.Soak.budget_pages
          (if no_reclaim then " (reclamation OFF)" else "");
        List.iter
          (fun (row : Harness.Soak.day_row) ->
            Printf.printf
              "  day %2d: va %5d pages (+%d), %d gc runs, %d/%d probes \
               caught, pinned %d, mode %s\n"
              row.Harness.Soak.day row.Harness.Soak.va_pages_used
              row.Harness.Soak.delta_pages row.Harness.Soak.gc_runs
              row.Harness.Soak.probes_detected row.Harness.Soak.probes
              row.Harness.Soak.pinned_ranges row.Harness.Soak.mode)
          r.Harness.Soak.rows;
        Printf.printf
          "  probes %d (missed %d), reclaims-with-witness %d, reclaimed %d \
           pages over %d gc runs\n"
          r.Harness.Soak.total_probes r.Harness.Soak.missed_probes
          r.Harness.Soak.reclaims_with_witness r.Harness.Soak.reclaimed_pages
          r.Harness.Soak.gc_runs;
        match (r.Harness.Soak.exhausted, r.Harness.Soak.projected_hours) with
        | true, _ -> print_endline "  VA budget EXHAUSTED"
        | false, Some h ->
          Printf.printf "  projected exhaustion in %.0f simulated hours\n" h
        | false, None -> print_endline "  flat: never exhausts at this rate"
      end;
      (* The endurance gates (CI calls this via make soak-smoke): the
         detection guarantee must be perfect, reclamation must never
         touch a rooted range, and with the GC armed the steady state
         must be much flatter than the warm-up day. *)
      if r.Harness.Soak.missed_probes > 0 then
        `Error
          ( false,
            Printf.sprintf "%d dangling probe(s) went undetected"
              r.Harness.Soak.missed_probes )
      else if r.Harness.Soak.reclaims_with_witness > 0 then
        `Error
          ( false,
            Printf.sprintf "GC reclaimed %d rooted (witnessed) range(s)"
              r.Harness.Soak.reclaims_with_witness )
      else if no_reclaim then `Ok ()
      else if r.Harness.Soak.exhausted then
        `Error (false, "VA budget exhausted despite the GC")
      else if
        (* the flatness gate needs a tail to compare against the first
           day; a 1-day run has only the warm-up delta *)
        r.Harness.Soak.cfg.Harness.Soak.days > 1
        && r.Harness.Soak.tail_delta_pages > 0
        && 2 * r.Harness.Soak.tail_delta_pages
           > r.Harness.Soak.first_day_delta_pages
      then
        `Error
          ( false,
            Printf.sprintf
              "VA not flat: final day grew %d pages (first day %d)"
              r.Harness.Soak.tail_delta_pages
              r.Harness.Soak.first_day_delta_pages )
      else `Ok ()
  in
  cmd "soak"
    ~doc:"Multi-day uptime soak over a server model (§3.4 endurance): \
          heavy-tailed session churn against a VA budget, with dangling \
          probes planted in simulated roots.  With reclamation armed \
          (default) the conservative GC must keep VA flat while every \
          probe still traps; exits nonzero if a probe is missed, a rooted \
          range is reclaimed, or VA keeps growing."
    Term.(
      ret
        (const run $ days $ connections $ server $ budget $ no_reclaim
         $ governor
         $ seed_arg ~default:42 ~doc:"Churn PRNG seed."
         $ json_arg))

(* ---- help ---- *)

let help_cmd =
  (* Squeeze the (possibly multi-line) Cmd.info doc into the one-line
     summary the index prints: first sentence, single spaces. *)
  let summary doc =
    let squeezed =
      String.concat " "
        (List.filter
           (fun w -> w <> "")
           (String.split_on_char ' '
              (String.map (function '\n' -> ' ' | c -> c) doc)))
    in
    (* cut at a sentence-ending period only (".3" in "§4.3" is not one) *)
    let n = String.length squeezed in
    let rec cut i =
      if i >= n then squeezed
      else if squeezed.[i] = '.' && (i = n - 1 || squeezed.[i + 1] = ' ') then
        String.sub squeezed 0 (i + 1)
      else cut (i + 1)
    in
    cut 0
  in
  let run () =
    print_endline "danguard subcommands:";
    List.iter
      (fun (name, doc) -> Printf.printf "  %-12s %s\n" name (summary doc))
      !command_index;
    print_endline "";
    print_endline "schemes (--scheme NAME):";
    List.iter
      (fun spec ->
        Printf.printf "  %-14s %s\n"
          (Runtime.Scheme_spec.to_string spec)
          (Runtime.Scheme_spec.description spec))
      Runtime.Scheme_spec.all
  in
  cmd "help" ~doc:"List every subcommand with a one-line summary."
    Term.(const run $ const ())

let main_cmd =
  let doc =
    "MMU-based detection of all dangling pointer uses (Dhurjati & Adve, \
     DSN 2006) on a simulated machine"
  in
  Cmd.group
    (Cmd.info "danguard" ~version:"1.0.0" ~doc)
    [
      table_cmd; addr_space_cmd; detect_cmd; faults_cmd; exhaustion_cmd;
      run_cmd; list_cmd; compile_cmd; lint_cmd; pools_cmd; trace_cmd; demo_cmd;
      farm_cmd; report_cmd; soak_cmd; help_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
