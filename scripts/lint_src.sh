#!/bin/sh
# Source-hygiene gate for the core libraries: no new bare `failwith` or
# `assert false` in lib/vmm, lib/shadow or lib/minic.  An occurrence is
# allowed only when it names the invariant it guards within three lines
# (the convention every existing call site follows); anything else
# should be a typed error the caller can handle.  Run by `make lint-src`
# and CI; exits 1 listing every offender.
set -eu

cd "$(dirname "$0")/.."

fail=0
for f in $(find lib/vmm lib/shadow lib/minic -name '*.ml' | sort); do
  bad=$(awk '
    { lines[NR] = $0 }
    /failwith|assert false/ { cand[NR] = 1 }
    END {
      for (n in cand) {
        ok = 0
        for (i = n - 3; i <= n + 3; i++)
          if (i in lines && lines[i] ~ /invariant/) ok = 1
        if (!ok)
          print FILENAME ":" n \
            ": bare failwith/assert false without a named invariant"
      }
    }' "$f")
  if [ -n "$bad" ]; then
    echo "$bad" >&2
    fail=1
  fi
done

# Scheme names are typed: only Runtime.Scheme_spec.of_string may branch
# on a scheme-name string.  Everywhere else must pattern-match the
# Scheme_spec.t constructors, so adding a scheme is one file, not a
# grep-and-pray across the tree.  Catches match arms, String.equal and
# conditional comparisons against any CLI scheme name; record
# construction (Scheme.name = "...") is deliberately not flagged.
names='native|llvm|pa-dummy|ours|ours-basic|ours-bounds|ours-static|ours-inferred|ours-epoch|tagged|ladder|efence|valgrind|capability'
scheme_match=$( {
  grep -rnE "\| +\"($names)(\+recover)?\"" \
    lib bin bench test examples --include='*.ml' || true
  grep -rnE "String\.equal[^\"]*\"($names)(\+recover)?\"" \
    lib bin bench test examples --include='*.ml' || true
  grep -rnE "if [^;\"]*(=|<>) *\"($names)(\+recover)?\"" \
    lib bin bench test examples --include='*.ml' || true
} | grep -v '^lib/runtime/scheme_spec\.ml:' || true)
if [ -n "$scheme_match" ]; then
  echo "lint-src: scheme-name string matching outside Scheme_spec.of_string:" >&2
  echo "$scheme_match" >&2
  fail=1
fi

if [ "$fail" -eq 0 ]; then
  echo "lint-src: core libraries clean"
fi
exit "$fail"
