#!/bin/sh
# Source-hygiene gate for the core libraries: no new bare `failwith` or
# `assert false` in lib/vmm, lib/shadow or lib/minic.  An occurrence is
# allowed only when it names the invariant it guards within three lines
# (the convention every existing call site follows); anything else
# should be a typed error the caller can handle.  Run by `make lint-src`
# and CI; exits 1 listing every offender.
set -eu

cd "$(dirname "$0")/.."

fail=0
for f in $(find lib/vmm lib/shadow lib/minic -name '*.ml' | sort); do
  bad=$(awk '
    { lines[NR] = $0 }
    /failwith|assert false/ { cand[NR] = 1 }
    END {
      for (n in cand) {
        ok = 0
        for (i = n - 3; i <= n + 3; i++)
          if (i in lines && lines[i] ~ /invariant/) ok = 1
        if (!ok)
          print FILENAME ":" n \
            ": bare failwith/assert false without a named invariant"
      }
    }' "$f")
  if [ -n "$bad" ]; then
    echo "$bad" >&2
    fail=1
  fi
done

if [ "$fail" -eq 0 ]; then
  echo "lint-src: core libraries clean"
fi
exit "$fail"
