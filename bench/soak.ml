(* Multi-day soak (§3.4 endurance): the same server-uptime simulation
   run three ways.

   1. no-reclaim — the reuse policy disarmed: shadow VA burns linearly
      and the run either exhausts its page budget or projects a finite
      time-to-exhaustion at the observed burn rate.
   2. with-gc — the conservative GC armed through the reuse policy and
      the watermark escalation: steady-state VA is flat, and the
      differential oracle holds — every dangling probe still traps
      (missed_probes = 0) and no rooted range was ever reclaimed
      (reclaims_with_witness = 0).
   3. ladder — a deliberately tiny budget with the governor wired in,
      demonstrating the ordered §3.4 response: GC first, then reuse
      tightening, then (only then) ladder degradation, all visible in
      the endurance action log and the governor's va-pressure
      transition.

   The validator pins all three: oracle zeros on run 2, flatness of
   run 2 against run 1, exhaustion-or-projection on run 1, and strict
   gc < tighten < degrade ordering on run 3. *)

module J = Telemetry.Json

let row_json (r : Harness.Soak.day_row) =
  J.Obj
    [
      ("day", J.Int r.Harness.Soak.day);
      ("va_pages_used", J.Int r.Harness.Soak.va_pages_used);
      ("delta_pages", J.Int r.Harness.Soak.delta_pages);
      ("freed_shadow_pages", J.Int r.Harness.Soak.freed_shadow_pages);
      ("pinned_ranges", J.Int r.Harness.Soak.pinned_ranges);
      ("gc_runs", J.Int r.Harness.Soak.gc_runs);
      ("reclaimed_pages", J.Int r.Harness.Soak.reclaimed_pages);
      ("probes", J.Int r.Harness.Soak.probes);
      ("probes_detected", J.Int r.Harness.Soak.probes_detected);
      ("mode", J.String r.Harness.Soak.mode);
    ]

let result_json (r : Harness.Soak.result) =
  J.Obj
    [
      ("days", J.Int r.Harness.Soak.cfg.Harness.Soak.days);
      ( "connections",
        J.Int
          (r.Harness.Soak.cfg.Harness.Soak.days
          * r.Harness.Soak.cfg.Harness.Soak.connections_per_day) );
      ("budget_pages", J.Int r.Harness.Soak.cfg.Harness.Soak.budget_pages);
      ("rows", J.List (List.map row_json r.Harness.Soak.rows));
      ("total_probes", J.Int r.Harness.Soak.total_probes);
      ("missed_probes", J.Int r.Harness.Soak.missed_probes);
      ("reclaims_with_witness", J.Int r.Harness.Soak.reclaims_with_witness);
      ("gc_runs", J.Int r.Harness.Soak.gc_runs);
      ("reclaimed_pages", J.Int r.Harness.Soak.reclaimed_pages);
      ("scanned_words", J.Int r.Harness.Soak.scanned_words);
      ("pinned_final", J.Int r.Harness.Soak.pinned_final);
      ("exhausted", J.Bool r.Harness.Soak.exhausted);
      ( "projected_hours",
        match r.Harness.Soak.projected_hours with
        | Some h -> J.Float h
        | None -> J.Null );
      ("first_day_delta_pages", J.Int r.Harness.Soak.first_day_delta_pages);
      ("tail_delta_pages", J.Int r.Harness.Soak.tail_delta_pages);
      ( "actions",
        J.List
          (List.map
             (fun (action, level, pages) ->
               J.Obj
                 [
                   ("action", J.String action);
                   ("level", J.String level);
                   ("pages_used", J.Int pages);
                 ])
             r.Harness.Soak.actions) );
      ( "governor_transitions",
        J.List
          (List.map
             (fun (from_mode, to_mode, reason) ->
               J.Obj
                 [
                   ("from", J.String from_mode);
                   ("to", J.String to_mode);
                   ("reason", J.String reason);
                 ])
             r.Harness.Soak.governor_transitions) );
      ( "pressure_levels",
        J.List
          (List.map (fun l -> J.String l) r.Harness.Soak.pressure_levels) );
    ]

let print_result name (r : Harness.Soak.result) =
  Printf.printf "  %s:\n" name;
  Printf.printf
    "    day | va pages |  +day | freed | pinned | gc | reclaimed | probes \
     (ok) | mode\n";
  List.iter
    (fun (row : Harness.Soak.day_row) ->
      Printf.printf "    %3d | %8d | %5d | %5d | %6d | %2d | %9d | %6d (%d) | %s\n"
        row.Harness.Soak.day row.Harness.Soak.va_pages_used
        row.Harness.Soak.delta_pages row.Harness.Soak.freed_shadow_pages
        row.Harness.Soak.pinned_ranges row.Harness.Soak.gc_runs
        row.Harness.Soak.reclaimed_pages row.Harness.Soak.probes
        row.Harness.Soak.probes_detected row.Harness.Soak.mode)
    r.Harness.Soak.rows;
  Printf.printf
    "    probes %d (missed %d)  reclaims-with-witness %d  gc runs %d  \
     reclaimed %d pages  pinned %d\n"
    r.Harness.Soak.total_probes r.Harness.Soak.missed_probes
    r.Harness.Soak.reclaims_with_witness r.Harness.Soak.gc_runs
    r.Harness.Soak.reclaimed_pages r.Harness.Soak.pinned_final;
  (match (r.Harness.Soak.exhausted, r.Harness.Soak.projected_hours) with
  | true, _ -> Printf.printf "    VA budget EXHAUSTED\n"
  | false, Some h ->
    Printf.printf "    projected exhaustion in %.1f simulated hours\n" h
  | false, None -> Printf.printf "    flat: never exhausts at this rate\n");
  (if r.Harness.Soak.actions <> [] then
     (* the log is mostly repeated gc ticks: print each action's first
        firing (in log order) plus its count *)
     let seen = Hashtbl.create 4 in
     List.iter
       (fun (action, level, pages) ->
         match Hashtbl.find_opt seen action with
         | Some (first, n) -> Hashtbl.replace seen action (first, n + 1)
         | None -> Hashtbl.replace seen action ((level, pages), 1))
       r.Harness.Soak.actions;
     let order =
       List.filter_map
         (fun a -> Option.map (fun v -> (a, v)) (Hashtbl.find_opt seen a))
         [ "gc"; "tighten"; "degrade" ]
     in
     Printf.printf "    actions: %s\n"
       (String.concat " -> "
          (List.map
             (fun (action, ((level, pages), n)) ->
               Printf.sprintf "%s x%d (first @%s, %dp)" action n level pages)
             order)));
  if r.Harness.Soak.governor_transitions <> [] then
    Printf.printf "    governor: %s\n"
      (String.concat ", "
         (List.map
            (fun (from_mode, to_mode, reason) ->
              Printf.sprintf "%s->%s (%s)" from_mode to_mode reason)
            r.Harness.Soak.governor_transitions))

let run ~smoke () =
  print_endline "\n== Multi-day soak: VA endurance with and without the GC ==";
  let days = if smoke then 3 else 6 in
  let connections_per_day = if smoke then 120 else 400 in
  let base =
    {
      Harness.Soak.default_config with
      Harness.Soak.days;
      connections_per_day;
      (* sized so the unreclaimed run hits the wall mid-run *)
      budget_pages = days * connections_per_day;
    }
  in
  let without_gc =
    Harness.Soak.run
      ~config:{ base with Harness.Soak.endurance = false }
      ()
  in
  print_result "no-reclaim" without_gc;
  let with_gc = Harness.Soak.run ~config:base () in
  print_result "with-gc" with_gc;
  (* The ladder demo: a budget small enough that the monotone VA counter
     walks through every watermark during day one, with the governor
     armed so the degrade stage is real. *)
  let ladder =
    Harness.Soak.run
      ~config:
        {
          base with
          Harness.Soak.days = 1;
          connections_per_day = 120;
          budget_pages = 40;
          governor = true;
        }
      ()
  in
  print_result "ladder" ladder;
  J.Obj
    [
      ("without_gc", result_json without_gc);
      ("with_gc", result_json with_gc);
      ("ladder", result_json ladder);
    ]
