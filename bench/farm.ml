(* Farm scaling study: the same connection set served at 1/2/4/8 shards.
   Time is simulated cycles (makespan = busiest shard), so the speedup
   column measures the sharding itself and is exactly reproducible on
   any host.  The determinism contract is checked right here: merged
   detections and syscalls must not move as the shard count changes. *)

module J = Telemetry.Json
module F = Danguard_farm.Farm
module Scheduler = Danguard_farm.Scheduler

let shard_counts = [ 1; 2; 4; 8 ]
let seed = 0x5eed
let probe_every = 8

let run ~smoke () =
  print_endline "\n== Farm scaling (domain-sharded ghttpd, simulated cycles) ==";
  let connections = if smoke then 32 else 96 in
  let results =
    List.map
      (fun shards ->
        F.run_server ~policy:Scheduler.Round_robin ~seed ~probe_every
          ~config:Harness.Experiment.ours ~shards ~connections
          Workload.Servers.ghttpd)
      shard_counts
  in
  let base = List.hd results in
  Printf.printf "  %-7s %14s %12s %8s %11s %9s %12s\n" "shards" "makespan"
    "conn/Mcyc" "speedup" "detections" "syscalls" "p99 cycles";
  let rows =
    List.map
      (fun (r : F.result) ->
        let speedup = base.F.makespan_cycles /. r.F.makespan_cycles in
        Printf.printf "  %-7d %14.0f %12.3f %8.2fx %11d %9d %12.0f\n"
          r.F.shards r.F.makespan_cycles r.F.throughput speedup
          r.F.totals.F.detections r.F.totals.F.syscalls
          r.F.latency.Harness.Latency.q99;
        J.Obj
          [
            ("shards", J.Int r.F.shards);
            ("makespan_cycles", J.Float r.F.makespan_cycles);
            ("throughput_conn_per_mcycle", J.Float r.F.throughput);
            ("speedup", J.Float speedup);
            ("connections", J.Int r.F.totals.F.connections);
            ("detections", J.Int r.F.totals.F.detections);
            ("syscalls", J.Int r.F.totals.F.syscalls);
            ("latency_p50", J.Float r.F.latency.Harness.Latency.q50);
            ("latency_p99", J.Float r.F.latency.Harness.Latency.q99);
            ( "shadow_va_pages_used",
              J.Int
                (int_of_float
                   (Telemetry.Metrics.gauge_value
                      (Telemetry.Metrics.gauge r.F.registry
                         "shadow.va_pages_used"))) );
          ])
      results
  in
  (* The same farm under the epoch-batched scheme, kept as a separate
     row list: detections must match the eager rows above connection
     for connection, while protection batching cuts the syscall totals
     — the validator pins both. *)
  print_endline "  -- epoch-batched scheme (shadow-pool+epoch) --";
  let epoch_rows =
    List.map
      (fun shards ->
        let r =
          F.run_server ~policy:Scheduler.Round_robin ~seed ~probe_every
            ~config:Harness.Experiment.ours_epoch ~shards ~connections
            Workload.Servers.ghttpd
        in
        Printf.printf "  %-7d %14.0f %12.3f %8s %11d %9d %12.0f\n" r.F.shards
          r.F.makespan_cycles r.F.throughput "-" r.F.totals.F.detections
          r.F.totals.F.syscalls r.F.latency.Harness.Latency.q99;
        J.Obj
          [
            ("shards", J.Int r.F.shards);
            ("makespan_cycles", J.Float r.F.makespan_cycles);
            ("throughput_conn_per_mcycle", J.Float r.F.throughput);
            ("connections", J.Int r.F.totals.F.connections);
            ("detections", J.Int r.F.totals.F.detections);
            ("syscalls", J.Int r.F.totals.F.syscalls);
            ("latency_p50", J.Float r.F.latency.Harness.Latency.q50);
            ("latency_p99", J.Float r.F.latency.Harness.Latency.q99);
          ])
      shard_counts
  in
  J.Obj
    [
      ("server", J.String "ghttpd");
      ("config", J.String "our-approach");
      ("connections", J.Int connections);
      ("probe_every", J.Int probe_every);
      ("seed", J.Int seed);
      ("rows", J.List rows);
      ("epoch_rows", J.List epoch_rows);
    ]
