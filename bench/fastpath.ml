(* Microbenchmarks for the MMU translation fast path.

   Seven scenarios cover the hot operations the TLB-first rewrite
   targets: hit/miss translation, word-wide load/store, the exempt
   accessors, and the two pooldestroy-shaped bulk syscalls.  Each run
   reports ns/op next to the hardcoded pre-rewrite baseline (measured on
   the seed implementation, commit dc4a5a5, same container, 2026-08-06)
   so the before/after ratio is visible in every BENCH_results.json.

   Alongside wall time we record *structural* counts that cannot drift
   with machine load: page-table walks per TLB-hit access (must be 0)
   and frame lookups per 8-byte load (must be 1). *)

open Vmm
module J = Telemetry.Json

(* ns/op for the seed (hashtbl page table, per-byte access, per-page
   shootdowns), captured with this same timing loop before the rewrite.
   These are the fallback of last resort: when a BENCH_results.json
   from a previous run is present, its recorded after_ns become the
   baselines instead (see [baselines_for]), so adding a scenario never
   requires editing constants here. *)
let seed_baseline_ns =
  [
    ("translate+load8/tlb-hit", 336.0);
    ("translate+load8/tlb-miss", 458.7);
    ("store8/tlb-hit", 336.3);
    ("load1/tlb-hit", 94.3);
    ("load8/exempt", 426.2);
    ("mprotect/64-pages", 4751.2);
    ("munmap+mmap_fixed/64-pages", 69916.0);
  ]

(* Per-scenario after_ns from the last recorded run, keyed by name.
   Any parse trouble (missing file, foreign schema) degrades to the
   empty history rather than failing the bench. *)
let history_baselines file =
  match In_channel.with_open_text file In_channel.input_all with
  | exception Sys_error _ -> []
  | text ->
    (match J.of_string text with
     | Error _ -> []
     | Ok doc ->
       (match Option.bind (J.member "fastpath" doc) (J.member "rows") with
        | Some (J.List rows) ->
          List.filter_map
            (fun row ->
              match (J.member "name" row, J.member "after_ns" row) with
              | Some (J.String name), Some (J.Float ns) -> Some (name, ns)
              | Some (J.String name), Some (J.Int ns) ->
                Some (name, float_of_int ns)
              | _ -> None)
            rows
        | _ -> []))

(* Baseline for one scenario: history first, seed constant second, and
   for a scenario new enough to have neither, its own measurement (ratio
   1.0) — so a fresh scenario passes validation without anyone editing
   baselines by hand. *)
let baseline_for ~history name ~after =
  match List.assoc_opt name history with
  | Some ns -> ns
  | None ->
    (match List.assoc_opt name seed_baseline_ns with
     | Some ns -> ns
     | None -> after)

let time_ns_per_op ~budget f =
  (* Warm up, then calibrate the iteration count to ~[budget] seconds. *)
  for _ = 1 to 1_000 do f () done;
  let calibrate =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to 10_000 do f () done;
    (Unix.gettimeofday () -. t0) /. 10_000.
  in
  let n = max 10_000 (int_of_float (budget /. calibrate)) in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to n do f () done;
  (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int n

let scenarios =
  [
    ( "translate+load8/tlb-hit",
      fun () ->
        let m = Machine.create () in
        let a = Kernel.mmap m ~pages:1 in
        Mmu.store m a ~width:8 42;
        fun () -> ignore (Mmu.load m a ~width:8) );
    ( "translate+load8/tlb-miss",
      fun () ->
        (* Walk 256 pages with a 64-entry TLB: ~every access misses. *)
        let m = Machine.create () in
        let a = Kernel.mmap m ~pages:256 in
        let i = ref 0 in
        fun () ->
          ignore (Mmu.load m (a + (!i * Addr.page_size)) ~width:8);
          i := (!i + 41) land 255 );
    ( "store8/tlb-hit",
      fun () ->
        let m = Machine.create () in
        let a = Kernel.mmap m ~pages:1 in
        fun () -> Mmu.store m a ~width:8 7 );
    ( "load1/tlb-hit",
      fun () ->
        let m = Machine.create () in
        let a = Kernel.mmap m ~pages:1 in
        fun () -> ignore (Mmu.load m a ~width:1) );
    ( "load8/exempt",
      fun () ->
        let m = Machine.create () in
        let a = Kernel.mmap m ~pages:1 in
        fun () -> ignore (Mmu.load_exempt m a ~width:8) );
    ( "mprotect/64-pages",
      fun () ->
        (* Pooldestroy-shaped: flip a 64-page run's protection. *)
        let m = Machine.create () in
        let a = Kernel.mmap m ~pages:64 in
        let rw = ref false in
        fun () ->
          rw := not !rw;
          Kernel.mprotect m ~addr:a ~pages:64
            (if !rw then Perm.Read_write else Perm.No_access) );
    ( "munmap+mmap_fixed/64-pages",
      fun () ->
        let m = Machine.create () in
        let a = Kernel.mmap m ~pages:64 in
        fun () ->
          Kernel.munmap m ~addr:a ~pages:64;
          Kernel.mmap_fixed m ~addr:a ~pages:64 );
  ]

(* Structural counters: machine-load-proof evidence that the fast path
   does what the design says.  Returned as (name, value) pairs; the
   validator and tests pin the expected values. *)
let structural () =
  let m = Machine.create () in
  let a = Kernel.mmap m ~pages:1 in
  ignore (Mmu.load m a ~width:8);
  (* warm *)
  let walks0 = Page_table.walk_count m.Machine.page_table in
  let frames0 = Frame_table.lookup_count m.Machine.frames in
  ignore (Mmu.load m a ~width:8);
  let walks_per_hit_load = Page_table.walk_count m.Machine.page_table - walks0 in
  let frames_per_load8 = Frame_table.lookup_count m.Machine.frames - frames0 in
  let frames1 = Frame_table.lookup_count m.Machine.frames in
  Mmu.store m a ~width:8 7;
  let frames_per_store8 = Frame_table.lookup_count m.Machine.frames - frames1 in
  [
    ("page_table_walks_per_tlb_hit_load", walks_per_hit_load);
    ("frame_lookups_per_load8", frames_per_load8);
    ("frame_lookups_per_store8", frames_per_store8);
  ]

(* Run everything: prints a section to stdout, returns the JSON block
   that [write_results] embeds under the "fastpath" key. *)
let run ?(history_file = "BENCH_results.json") ~smoke () =
  let history = history_baselines history_file in
  if history = [] then
    print_endline "\n== MMU fast path (ns/op, before = seed implementation) =="
  else
    Printf.printf "\n== MMU fast path (ns/op, before = last %s) ==\n"
      history_file;
  let budget = if smoke then 0.02 else 0.15 in
  let rows =
    List.map
      (fun (name, setup) ->
        let after = time_ns_per_op ~budget (setup ()) in
        let before = baseline_for ~history name ~after in
        Printf.printf "  %-28s %8.1f -> %7.1f   (%.1fx)\n%!" name before after
          (before /. after);
        J.Obj
          [
            ("name", J.String name);
            ("before_ns", J.Float before);
            ("after_ns", J.Float after);
            ("speedup", J.Float (before /. after));
          ])
      scenarios
  in
  let s = structural () in
  List.iter (fun (k, v) -> Printf.printf "  %-34s %d\n" k v) s;
  J.Obj
    [
      ("rows", J.List rows);
      ("structural", J.Obj (List.map (fun (k, v) -> (k, J.Int v)) s));
    ]
