(* Fleet crash-report study: the same seeded probe population served in
   recoverable (log-don't-abort) mode at 1/2/4/8 shards under both
   scheduler policies.  The contract validated downstream: the ranked
   report — its canonical string — is byte-identical across all eight
   runs, every run completes with zero unhandled detections, and every
   seeded injection site surfaces as exactly one signature whose count
   matches the seeded probe population. *)

module J = Telemetry.Json
module F = Danguard_farm.Farm
module Scheduler = Danguard_farm.Scheduler

let shard_counts = [ 1; 2; 4; 8 ]
let seed = 0x5eed
let probe_every = 4
let probe_sites = 4

(* The exact site population a run seeds, from the same pure function
   the farm probes with. *)
let expected_site_counts ~connections =
  let counts = Array.make probe_sites 0 in
  let conn = ref 0 in
  while !conn < connections do
    if !conn mod probe_every = 0 then begin
      let s = F.probe_site ~probe_sites ~probe_every !conn in
      counts.(s) <- counts.(s) + 1
    end;
    incr conn
  done;
  counts

let run ~smoke () =
  print_endline
    "\n== Fleet crash reports (recoverable mode, ranked by signature) ==";
  let connections = if smoke then 48 else 96 in
  let site_counts = expected_site_counts ~connections in
  let expected_probes = Array.fold_left ( + ) 0 site_counts in
  let runs =
    List.concat_map
      (fun policy ->
        List.map
          (fun shards ->
            ( policy,
              shards,
              F.run_server ~policy ~seed ~probe_every ~probe_sites
                ~recover:true ~config:Harness.Experiment.ours ~shards
                ~connections Workload.Servers.ghttpd ))
          shard_counts)
      [ Scheduler.Round_robin; Scheduler.Work_steal ]
  in
  let _, _, first = List.hd runs in
  print_string (Fleet.Crash.render first.F.crashes);
  Printf.printf "  (%d probes seeded over %d sites; %d runs compared)\n"
    expected_probes probe_sites (List.length runs);
  let rows =
    List.map
      (fun (policy, shards, (r : F.result)) ->
        J.Obj
          [
            ("policy", J.String (Scheduler.policy_label policy));
            ("shards", J.Int shards);
            ("detections", J.Int r.F.totals.F.detections);
            ( "total_reports",
              J.Int r.F.crashes.Fleet.Crash.total_reports );
            ( "signatures",
              J.Int (List.length r.F.crashes.Fleet.Crash.entries) );
            ("canonical", J.String (Fleet.Crash.canonical_string r.F.crashes));
          ])
      runs
  in
  let entries =
    List.map
      (fun (e : Fleet.Crash.entry) ->
        J.Obj
          [
            ("signature", J.String (Fleet.Crash.signature_hex e.Fleet.Crash.e_signature));
            ("kind", J.String e.Fleet.Crash.e_kind);
            ("alloc_site", J.String e.Fleet.Crash.e_alloc_site);
            ("free_site", J.String e.Fleet.Crash.e_free_site);
            ("count", J.Int e.Fleet.Crash.count);
          ])
      first.F.crashes.Fleet.Crash.entries
  in
  let expected_sites =
    List.filter_map
      (fun site ->
        if site_counts.(site) = 0 then None
        else
          Some
            (J.Obj
               [
                 ("alloc_site", J.String (Printf.sprintf "farm.c:1%02d" site));
                 ("count", J.Int site_counts.(site));
               ]))
      (List.init probe_sites Fun.id)
  in
  J.Obj
    [
      ("server", J.String "ghttpd");
      ("config", J.String "our-approach");
      ("connections", J.Int connections);
      ("probe_every", J.Int probe_every);
      ("probe_sites", J.Int probe_sites);
      ("seed", J.Int seed);
      ("expected_probes", J.Int expected_probes);
      ("expected_sites", J.List expected_sites);
      ("entries", J.List entries);
      ("rows", J.List rows);
    ]
