(* The benchmark harness: regenerates every table and study from the
   paper's evaluation section at full scale, then runs bechamel
   micro/macro benchmarks (one Test.make per table plus the core
   allocator micro-operations).

   Output sections:
     1. Table 1  — utilities + servers, all five configurations
     2. Table 2  — comparison with the Valgrind-style checker
     3. Table 3  — allocation-intensive Olden benchmarks
     4. Sec 4.3  — address-space usage per server connection
     5. Sec 3.4  — exhaustion model and long-lived-pool policies
     6. Sec 5    — detection-guarantee matrix
     7. Ablations — design choices DESIGN.md calls out
     8. Bechamel — wall-clock cost of the simulator itself

   Besides the text report, the run writes BENCH_results.json (path
   overridable with --out): tables 1-3 row data, an our-approach
   cycles/syscalls/faults row per workload, and the bechamel ns/op
   figures.  --smoke (scale divisor 16) keeps CI runs short;
   --scale-divisor N picks any other divisor. *)

module J = Telemetry.Json

let section title =
  Printf.printf "\n================ %s ================\n%!" title

let timed name f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  Printf.printf "[%s took %.1fs wall-clock]\n%!" name (Unix.gettimeofday () -. t0);
  r

(* ---- 1-3: the paper's tables ---- *)

let run_table1 ~scale_divisor () =
  section "Table 1: run-time overhead on Unix utilities and servers";
  print_endline
    "(cycles in millions; utilities = whole run, servers = mean response\n\
     per forked connection; Ratio1 = ours/LLVM-base, Ratio2 = ours/native)";
  timed "table 1" (fun () ->
      let rows = Harness.Table1.rows ~scale_divisor () in
      print_endline (Harness.Table1.render rows);
      rows)

let run_table2 ~scale_divisor () =
  section "Table 2: comparison with the Valgrind-class checker";
  let rows =
    timed "table 2" (fun () ->
        let rows = Harness.Table2.rows ~scale_divisor () in
        print_endline (Harness.Table2.render rows);
        rows)
  in
  print_endline
    "(the model charges a uniform DBT factor, so the per-program spread of\n\
     real memcheck [2.5x-25x] collapses to ~12x; the orders-of-magnitude\n\
     gap vs. our approach is the property under test)";
  rows

let run_table3 ~scale_divisor () =
  section "Table 3: allocation-intensive Olden benchmarks";
  timed "table 3" (fun () ->
      let rows = Harness.Table3.rows ~scale_divisor () in
      print_endline (Harness.Table3.render rows);
      rows)

(* Per-workload cost rows for BENCH_results.json: one our-approach run
   per workload harvesting the counters the tables summarize away. *)

let cost_row ~table ~workload ~scale ~cycles (stats : Vmm.Stats.snapshot) =
  J.Obj
    [
      ("table", J.Int table);
      ("workload", J.String workload);
      ("config", J.String (Harness.Experiment.config_label Harness.Experiment.ours));
      ("scale", J.Int scale);
      ("cycles", J.Float cycles);
      ("syscalls", J.Int (Vmm.Stats.total_syscalls stats));
      ("faults", J.Int stats.Vmm.Stats.faults);
    ]

let cost_rows ~scale_divisor () =
  let batch_row table (b : Workload.Spec.batch) =
    let scale = max 1 (b.Workload.Spec.default_scale / scale_divisor) in
    let r = Harness.Experiment.run_batch ~scale b Harness.Experiment.ours in
    cost_row ~table ~workload:b.Workload.Spec.name ~scale
      ~cycles:r.Harness.Experiment.cycles r.Harness.Experiment.stats
  in
  let server_row (s : Workload.Spec.server) =
    let connections =
      max 2 (s.Workload.Spec.s_default_connections / scale_divisor)
    in
    let r =
      Harness.Experiment.run_server ~connections s Harness.Experiment.ours
    in
    cost_row ~table:1 ~workload:s.Workload.Spec.s_name ~scale:connections
      ~cycles:r.Runtime.Process.total_cycles r.Runtime.Process.total_stats
  in
  timed "cost rows" (fun () ->
      List.map (batch_row 1) Workload.Catalog.utilities
      @ List.map server_row Workload.Catalog.servers
      @ List.map (batch_row 3) Workload.Catalog.olden)

(* ---- 4: section 4.3 ---- *)

let run_addr_space () =
  section "Section 4.3: address-space usage per server connection";
  timed "4.3 study" (fun () ->
      print_endline (Harness.Addr_space.render (Harness.Addr_space.rows ())));
  Printf.printf
    "paper: ghttpd ~0 wasted pages/connection, ftpd 5-6 pages/command\n\
     (= %d commands here), telnetd 45 pages/session.\n"
    Workload.Servers.ftpd_commands_per_connection

(* ---- 4b: response-time distribution ---- *)

let run_latency () =
  section "Server response-time distribution (heavy-tailed requests)";
  timed "latency study" (fun () ->
      print_endline (Harness.Latency.render (Harness.Latency.study ())));
  print_endline
    "(the scheme's per-connection cost is a constant few syscalls, so the\n\
     overhead shrinks toward the tail: production p99 latency is barely\n\
     affected — the server-friendliness argument in distribution form)"

(* ---- 5: section 3.4 ---- *)

let run_exhaustion () =
  section "Section 3.4: virtual-address exhaustion and long-lived pools";
  Printf.printf
    "analytic model: 2^47 VA bytes / (4K page x 1M allocs/s) = %.2f hours\n\
     (the paper's 'at least 9 hours before running out')\n\n"
    (Shadow.Exhaustion.paper_example_hours ());
  let run_policy strategy =
    let m = Vmm.Machine.create () in
    let scheme = Runtime.Schemes.shadow_pool m in
    let pool =
      match Runtime.Schemes.introspect scheme with
      | Runtime.Schemes.Shadow_pool { global; _ } -> global
      | _ -> assert false
    in
    let policy = Shadow.Reuse_policy.create strategy pool in
    for i = 1 to 2_000 do
      let a = scheme.Runtime.Scheme.malloc ~site:"request" 64 in
      Runtime.Workload_api.store_field scheme a 0 i;
      scheme.Runtime.Scheme.free ~site:"done" a;
      Shadow.Reuse_policy.after_free policy
    done;
    Printf.printf "%-28s VA used: %9s   reclaimed: %5d pages   gc runs: %d\n"
      (Shadow.Reuse_policy.strategy_label strategy)
      (Harness.Table.fmt_bytes (Vmm.Machine.va_bytes_used m))
      (Shadow.Reuse_policy.reclaimed_pages policy)
      (Shadow.Reuse_policy.gc_runs policy)
  in
  print_endline "2000 allocations from an immortal global pool:";
  run_policy Shadow.Reuse_policy.Manual;
  run_policy (Shadow.Reuse_policy.Interval_reuse { trigger_pages = 128 });
  run_policy
    (Shadow.Reuse_policy.Conservative_gc
       { trigger_pages = 128; scan_cost_per_object = 40 })

(* ---- 6: detection matrix ---- *)

let run_detection () =
  section "Detection-guarantee matrix (injected temporal errors)";
  let cells = timed "matrix" (fun () -> Harness.Detection_matrix.run ()) in
  print_endline (Harness.Detection_matrix.render cells);
  let guaranteed =
    Harness.Detection_matrix.guaranteed_configs cells
    |> List.map Harness.Experiment.config_label
    |> String.concat ", "
  in
  Printf.printf "schemes detecting every scenario: %s\n" guaranteed;
  print_endline "";
  print_endline
    "spatial scenarios (buffer overflow) — future-work combination:";
  print_endline
    (Harness.Detection_matrix.render (Harness.Detection_matrix.run_spatial ()))

(* ---- 6b: resilience campaign ---- *)

let run_resilience ~scale_divisor () =
  section "Resilience: syscall fault injection vs. the governed runtime";
  let rows =
    timed "resilience" (fun () ->
        Harness.Resilience.campaign ~scale_divisor ())
  in
  print_string (Harness.Resilience.render rows);
  if not (Harness.Resilience.ok rows) then
    print_endline
      "WARNING: resilience invariants violated (see rows above)";
  rows

(* ---- 7: ablations ---- *)

(* 7a. Shadow-VA reuse (our extension of the paper's free list to shadow
   placement): VA footprint of a pool-churning workload with and without
   it. *)
let ablation_shadow_va_reuse () =
  print_endline "-- shadow-page VA reuse (bh, fresh tree pool per step) --";
  let run reuse =
    let m = Vmm.Machine.create () in
    let scheme = Runtime.Schemes.shadow_pool ~config:{ Runtime.Schemes.reuse_shadow_va = reuse } m in
    (match Workload.Catalog.find_batch "bh" with
     | Some b -> b.Workload.Spec.run scheme ~scale:100
     | None -> failwith "bh missing");
    Vmm.Machine.va_bytes_used m
  in
  Printf.printf "  reuse on : %9s of address space\n"
    (Harness.Table.fmt_bytes (run true));
  Printf.printf "  reuse off: %9s of address space\n"
    (Harness.Table.fmt_bytes (run false))

(* 7b. Pool page reclamation policy: recycle vs munmap vs leak. *)
let ablation_reclaim_policy () =
  print_endline "-- pool page reclamation (200 pool generations) --";
  let run name reclaim_of =
    let m = Vmm.Machine.create () in
    let recycler = Apa.Page_recycler.create () in
    for _ = 1 to 200 do
      let pool =
        Apa.Pool.create ~arena_pages:4 ~reclaim:(reclaim_of recycler) m
      in
      for i = 1 to 25 do
        let a = Apa.Pool.alloc pool 48 in
        Vmm.Mmu.store m a ~width:8 i
      done;
      Apa.Pool.destroy pool
    done;
    let s = Vmm.Stats.snapshot m.Vmm.Machine.stats in
    Printf.printf "  %-8s VA %9s  syscalls %5d  cycles %sM\n" name
      (Harness.Table.fmt_bytes (Vmm.Machine.va_bytes_used m))
      (Vmm.Stats.total_syscalls s)
      (Harness.Table.fmt_cycles (Vmm.Machine.cycles m))
  in
  run "recycle" (fun r -> Apa.Pool.Recycle r);
  run "munmap" (fun _ -> Apa.Pool.Unmap);
  run "leak" (fun _ -> Apa.Pool.Leak)

(* 7c. TLB size: the second overhead source of the paper. *)
let ablation_tlb_size () =
  print_endline "-- TLB size sweep (em3d under our approach) --";
  List.iter
    (fun entries ->
      let m = Vmm.Machine.create ~tlb_entries:entries () in
      let scheme = Runtime.Schemes.shadow_pool m in
      (match Workload.Catalog.find_batch "em3d" with
       | Some b -> b.Workload.Spec.run scheme ~scale:300
       | None -> failwith "em3d missing");
      let s = Vmm.Stats.snapshot m.Vmm.Machine.stats in
      Printf.printf "  %4d entries: %sM cycles, %7d TLB misses\n" entries
        (Harness.Table.fmt_cycles (Vmm.Machine.cycles m))
        s.Vmm.Stats.tlb_misses)
    [ 16; 64; 256; 1024 ]

(* 7d'. The paper's future work: "simple OS and architectural
   enhancements" to cut the syscall cost of allocation/deallocation.
   Sweep the kernel-entry cost on the worst-case Olden benchmark. *)
let ablation_syscall_cost () =
  print_endline
    "-- future-work OS enhancement: cheaper aliasing syscalls (health) --";
  let b =
    match Workload.Catalog.find_batch "health" with
    | Some b -> b
    | None -> failwith "health missing"
  in
  let base =
    (Harness.Experiment.run_batch ~scale:20 b Harness.Experiment.llvm_base)
      .Harness.Experiment.cycles
  in
  List.iter
    (fun syscall_cost ->
      let machine =
        Vmm.Machine.create
          ~cost:{ Vmm.Cost_model.llvm_base with Vmm.Cost_model.syscall_cost }
          ()
      in
      let scheme = Runtime.Schemes.shadow_pool machine in
      b.Workload.Spec.run scheme ~scale:20;
      Printf.printf "  syscall = %4.0f cycles: slowdown %.2fx\n" syscall_cost
        (Vmm.Machine.cycles machine /. base))
    [ 2500.; 1000.; 250.; 50. ]

(* 7d. Cache behaviour: the paper's claim that the scheme keeps the
   physical layout (and therefore physically-indexed cache behaviour)
   of the original program, while Electric Fence destroys it. *)
let ablation_cache_behaviour () =
  print_endline "-- physically-indexed cache (enscript trace) --";
  let b =
    match Workload.Catalog.find_batch "enscript" with
    | Some b -> b
    | None -> failwith "enscript missing"
  in
  List.iter
    (fun config ->
      let r = Harness.Experiment.run_batch ~scale:200 b config in
      let s = r.Harness.Experiment.stats in
      let accesses = s.Vmm.Stats.loads + s.Vmm.Stats.stores in
      Printf.printf "  %-16s cache misses %6d (%.2f%% of %d accesses)\n"
        (Harness.Experiment.config_label config)
        s.Vmm.Stats.cache_misses
        (100. *. float_of_int s.Vmm.Stats.cache_misses
         /. float_of_int (max 1 accesses))
        accesses)
    [
      Harness.Experiment.native; Harness.Experiment.ours;
      Harness.Experiment.efence;
    ]

(* 7e. Allocator-agnosticism: identical detection over two allocators. *)
let ablation_allocator_agnostic () =
  print_endline "-- shadow wrapper over two unrelated allocators --";
  let run name (allocator : Vmm.Machine.t -> Heap.Allocator_intf.t) =
    let m = Vmm.Machine.create () in
    let registry = Shadow.Object_registry.create () in
    let heap = Shadow.Shadow_heap.create ~registry ~allocator:(allocator m) m in
    let p = Shadow.Shadow_heap.malloc heap 64 in
    Shadow.Shadow_heap.free heap p;
    let detected =
      match
        Shadow.Detector.guard registry ~in_free:false (fun () ->
            Vmm.Mmu.load m p ~width:8)
      with
      | _ -> false
      | exception Shadow.Report.Violation _ -> true
    in
    Printf.printf "  %-16s dangling use detected: %b\n" name detected
  in
  run "freelist-malloc" (fun m ->
      Heap.Freelist_malloc.as_allocator (Heap.Freelist_malloc.create m));
  run "bump-alloc" (fun m -> Heap.Bump_alloc.as_allocator (Heap.Bump_alloc.create m))

let run_ablations () =
  section "Ablations";
  timed "ablations" (fun () ->
      ablation_shadow_va_reuse ();
      ablation_reclaim_policy ();
      ablation_tlb_size ();
      ablation_syscall_cost ();
      ablation_cache_behaviour ();
      ablation_allocator_agnostic ())

(* ---- 8: bechamel ---- *)

open Bechamel
open Toolkit

let micro_tests =
  (* Steady-state cost of one alloc+free pair: the scheme is created once
     and reused across runs (all of these recycle memory, so state stays
     bounded).  Electric Fence never reuses pages, so it is measured
     with per-run setup instead — its figure includes machine creation. *)
  let steady name make =
    Test.make ~name
      (Staged.stage
         (let scheme = make (Vmm.Machine.create ()) in
          fun () ->
            let a = scheme.Runtime.Scheme.malloc 48 in
            scheme.Runtime.Scheme.free a))
  in
  [
    steady "malloc+free/native" Runtime.Schemes.native;
    steady "malloc+free/shadow-pool" (fun m -> Runtime.Schemes.shadow_pool m);
    steady "malloc+free/capability" (fun m ->
        Baseline.Capability_check.scheme m);
    Test.make ~name:"malloc+free/efence-with-setup"
      (Staged.stage (fun () ->
           let scheme = Baseline.Efence.scheme (Vmm.Machine.create ()) in
           let a = scheme.Runtime.Scheme.malloc 48 in
           scheme.Runtime.Scheme.free a));
    Test.make ~name:"mmu-load/hot"
      (Staged.stage
         (let m = Vmm.Machine.create () in
          let a = Vmm.Kernel.mmap m ~pages:1 in
          fun () -> ignore (Vmm.Mmu.load m a ~width:8)));
    Test.make ~name:"pool-create+destroy"
      (Staged.stage
         (let m = Vmm.Machine.create () in
          let r = Apa.Page_recycler.create () in
          fun () ->
            let p = Apa.Pool.create ~reclaim:(Apa.Pool.Recycle r) m in
            ignore (Apa.Pool.alloc p 32);
            Apa.Pool.destroy p));
  ]

(* One macro bench per paper table, at reduced scale so bechamel can
   sample them a few times. *)
let table_tests =
  [
    Test.make ~name:"table1/utilities+servers"
      (Staged.stage (fun () -> ignore (Harness.Table1.rows ~scale_divisor:16 ())));
    Test.make ~name:"table2/valgrind-comparison"
      (Staged.stage (fun () -> ignore (Harness.Table2.rows ~scale_divisor:16 ())));
    Test.make ~name:"table3/olden"
      (Staged.stage (fun () -> ignore (Harness.Table3.rows ~scale_divisor:16 ())));
    Test.make ~name:"sec4.3/addr-space"
      (Staged.stage (fun () ->
           ignore (Harness.Addr_space.rows ~connections:3 ())));
    Test.make ~name:"sec5/detection-matrix"
      (Staged.stage (fun () -> ignore (Harness.Detection_matrix.run ())));
  ]

let run_bechamel () =
  section "Bechamel: simulator wall-clock (ns per operation)";
  let tests = micro_tests @ table_tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second 0.4) ~stabilize:false ()
  in
  let grouped = Test.make_grouped ~name:"bench" ~fmt:"%s/%s" tests in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let estimated =
    List.filter_map
      (fun (name, ols) ->
        match Analyze.OLS.estimates ols with
        | Some [ ns ] -> Some (name, ns)
        | Some _ | None -> None)
      rows
  in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ ns ] ->
        if ns > 1e6 then Printf.printf "  %-36s %10.2f ms/run\n" name (ns /. 1e6)
        else Printf.printf "  %-36s %10.0f ns/run\n" name ns
      | Some _ | None -> Printf.printf "  %-36s (no estimate)\n" name)
    (List.sort compare rows);
  List.sort compare estimated

(* ---- JSON results file ---- *)

let write_results ~out ~scale_divisor ~smoke ~tables ~costs ~bechamel ~fastpath
    ~static_elision ~pool_inference ~epoch_batching ~tag_backend ~resilience
    ~farm ~fleet ~soak =
  let doc =
    J.Obj
      [
        ("schema", J.Int 1);
        ("scale_divisor", J.Int scale_divisor);
        ("smoke", J.Bool smoke);
        ("tables", J.Obj tables);
        ("cost_rows", J.List costs);
        ( "bechamel",
          J.List
            (List.map
               (fun (name, ns) ->
                 J.Obj [ ("name", J.String name); ("ns_per_run", J.Float ns) ])
               bechamel) );
        ("fastpath", fastpath);
        ("static_elision", static_elision);
        ("pool_inference", pool_inference);
        ("epoch_batching", epoch_batching);
        ("tag_backend", tag_backend);
        ("resilience", resilience);
        ("farm", farm);
        ("fleet_report", fleet);
        ("soak", soak);
      ]
  in
  Out_channel.with_open_text out (fun oc ->
      Out_channel.output_string oc (J.to_string_pretty doc);
      Out_channel.output_char oc '\n');
  Printf.printf "\nwrote %s\n" out

let () =
  let smoke = ref false in
  let divisor = ref 0 in
  let out = ref "BENCH_results.json" in
  Arg.parse
    [
      ("--smoke", Arg.Set smoke, " quick run: scale divisor 16");
      ( "--scale-divisor",
        Arg.Set_int divisor,
        "N divide workload scales by N (default 1)" );
      ( "--out",
        Arg.Set_string out,
        "FILE results file (default BENCH_results.json)" );
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "bench [--smoke] [--scale-divisor N] [--out FILE]";
  if !divisor < 0 then (
    prerr_endline "bench: --scale-divisor must be positive";
    exit 2);
  let scale_divisor =
    if !divisor > 0 then !divisor else if !smoke then 16 else 1
  in
  print_endline
    "Reproduction harness: 'Efficiently Detecting All Dangling Pointer Uses\n\
     in Production Servers' (Dhurjati & Adve, DSN 2006)";
  if scale_divisor > 1 then
    Printf.printf "(workload scales divided by %d)\n" scale_divisor;
  let t1 = run_table1 ~scale_divisor () in
  let t2 = run_table2 ~scale_divisor () in
  let t3 = run_table3 ~scale_divisor () in
  let costs = cost_rows ~scale_divisor () in
  run_addr_space ();
  run_latency ();
  run_exhaustion ();
  run_detection ();
  let resilience = run_resilience ~scale_divisor () in
  run_ablations ();
  let fastpath = Fastpath.run ~smoke:!smoke () in
  let static_elision = Static_elision.run () in
  let pool_inference = Pool_inference.run () in
  let epoch_batching = Epoch_batching.run ~smoke:!smoke () in
  let tag_backend = Tag_backend.run ~smoke:!smoke () in
  let farm = Farm.run ~smoke:!smoke () in
  let fleet = Fleet_report.run ~smoke:!smoke () in
  let soak = Soak.run ~smoke:!smoke () in
  let bechamel =
    match Sys.getenv_opt "SKIP_BECHAMEL" with
    | Some _ ->
      print_endline "\n(bechamel section skipped)";
      []
    | None -> run_bechamel ()
  in
  write_results ~out:!out ~scale_divisor ~smoke:!smoke
    ~tables:
      [
        ("table1", Harness.Table1.to_json t1);
        ("table2", Harness.Table2.to_json t2);
        ("table3", Harness.Table3.to_json t3);
      ]
    ~costs ~bechamel ~fastpath ~static_elision ~pool_inference
    ~epoch_batching ~tag_backend
    ~resilience:(Harness.Resilience.to_json resilience)
    ~farm ~fleet ~soak;
  print_endline "\nAll sections complete."
