(* Static pool inference, measured end to end: each MiniC workload is
   analysed by Minic.Poolify (DSA-driven pool partitioning) and run
   twice under Runtime.Schemes.shadow_pool_inferred — once transformed,
   so every inferred pool is a separate shadow pool whose destroy
   bulk-unmaps its shadow VA, and once untransformed, so every object
   lands in the single global pool and no VA is ever released (the
   scheme has no recycler on purpose: live shadow VA tracks inferred
   lifetimes and nothing else).

   The row records the peak live shadow pages under both placements —
   the inferred peak must come in strictly lower on workloads with
   scoped lifetimes — plus syscall totals and pool create/destroy
   counts, with a differential check that both runs print the same
   values and that two independent analyses emit a byte-identical
   canonical pool map.

   The probes re-run seeded-bug programs both ways and assert the
   violation lists are identical: pool inference must not move, add or
   lose a detection.  The validator (validate_results.ml) pins all of
   this in BENCH_results.json. *)

module J = Telemetry.Json

(* Allocator churn with a per-call scratch object: the scratch class
   never escapes [handle], so its inferred pool is created and
   destroyed inside the call and the shadow VA of every iteration is
   returned immediately.  The global placement keeps all 200 scratch
   ranges mapped until exit. *)
let src_churn =
  {|
struct scratch { int a; int b; }

int handle(int req) {
  struct scratch *s = malloc(struct scratch);
  s->a = req * 3;
  s->b = req + 1;
  int out = s->a + s->b;
  free(s);
  return out;
}

void main() {
  int acc = 0;
  int i = 0;
  while (i < 200) {
    acc = acc + handle(i);
    i = i + 1;
  }
  print(acc);
}
|}

(* Server shape: a long-lived request log (its pool is main-owned and
   lives for the whole run) plus per-request scratch buffers (pool
   scoped to the handler).  Inferred peak ~ the log; global peak ~ the
   log plus every scratch object ever allocated. *)
let src_server =
  {|
struct node { int v; struct node *next; }
struct scratch { int a; int b; }

struct node *log_request(struct node *log, int v) {
  struct node *entry = malloc(struct node);
  entry->v = v;
  entry->next = log;
  return entry;
}

int handle(int req) {
  struct scratch *s = malloc(struct scratch);
  s->a = req * 3;
  s->b = req + 1;
  int out = s->a + s->b;
  free(s);
  return out;
}

void main() {
  struct node *log = null;
  int i = 0;
  int acc = 0;
  while (i < 120) {
    acc = acc + handle(i);
    log = log_request(log, i);
    i = i + 1;
  }
  print(acc);
  struct node *cur = log;
  while (cur != null) {
    struct node *nxt = cur->next;
    free(cur);
    cur = nxt;
  }
}
|}

(* Heap-carried list released before exit: one class, one main-owned
   pool — the conservative case where inference cannot beat the global
   placement (both peaks equal the full list).  Kept as the honesty
   row. *)
let src_list =
  {|
struct node { int v; struct node *next; }

struct node *build(int n) {
  struct node *head = null;
  int i = 0;
  while (i < n) {
    struct node *fresh = malloc(struct node);
    fresh->v = i;
    fresh->next = head;
    head = fresh;
    i = i + 1;
  }
  return head;
}

int total(struct node *head) {
  int acc = 0;
  struct node *cur = head;
  while (cur != null) { acc = acc + cur->v; cur = cur->next; }
  return acc;
}

void release(struct node *head) {
  struct node *cur = head;
  while (cur != null) {
    struct node *nxt = cur->next;
    free(cur);
    cur = nxt;
  }
}

void main() {
  struct node *l = build(50);
  print(total(l));
  release(l);
}
|}

let workloads =
  [ ("churn", src_churn); ("server", src_server); ("list", src_list) ]

(* Seeded-bug probes: detection must be identical under the inferred
   and the global placement — same sites, same order. *)
let probe_uaf =
  {|
struct scratch { int a; int b; }

int handle(int req) {
  struct scratch *s = malloc(struct scratch);
  s->a = req * 3;
  s->b = req + 1;
  int out = s->a + s->b;
  free(s);
  return out;
}

void main() {
  int acc = 0;
  int i = 0;
  while (i < 10) {
    acc = acc + handle(i);
    i = i + 1;
  }
  struct scratch *victim = malloc(struct scratch);
  victim->a = acc;
  free(victim);
  print(victim->a);
}
|}

let probe_double_free =
  {|
struct scratch { int a; int b; }

void main() {
  struct scratch *victim = malloc(struct scratch);
  victim->a = 1;
  free(victim);
  free(victim);
}
|}

let probes =
  [ ("use-after-free", probe_uaf); ("double-free", probe_double_free) ]

type run_stats = {
  prints : int list option; (* None = stopped by a violation *)
  total_syscalls : int;
  munmap : int;
  violations : (string * Minic.Ast.pos) list;
  inferred : Runtime.Schemes.inferred_stats;
}

let run_under program =
  let machine = Vmm.Machine.create () in
  let scheme = Runtime.Schemes.shadow_pool_inferred machine in
  let violations = ref [] in
  let hook ~fname ~pos (_ : Shadow.Report.t) =
    violations := (fname, pos) :: !violations
  in
  let prints =
    match Minic.Interp.run ~on_violation:hook program scheme with
    | o -> Some o.Minic.Interp.prints
    | exception Shadow.Report.Violation _ -> None
  in
  let s = Vmm.Stats.snapshot machine.Vmm.Machine.stats in
  let inferred =
    match Runtime.Schemes.introspect scheme with
    | Runtime.Schemes.Shadow_pool_inferred { inferred; _ } -> inferred ()
    | _ -> assert false
  in
  {
    prints;
    total_syscalls = Vmm.Stats.total_syscalls s;
    munmap = s.Vmm.Stats.syscalls_munmap;
    violations = List.rev !violations;
    inferred;
  }

let canonical_map source =
  Telemetry.Json.to_string
    (Minic.Poolify.to_json (Minic.Poolify.analyze (Minic.Parser.parse source)))

let run () =
  print_endline
    "\n== Pool inference (inferred scoped pools vs one global pool) ==";
  let rows =
    List.map
      (fun (name, source) ->
        let program = Minic.Parser.parse source in
        let result = Minic.Poolify.analyze program in
        let transformed, _ = Minic.Poolify.transform program in
        let inferred = run_under transformed in
        let global = run_under program in
        let outputs_equal = inferred.prints = global.prints in
        (* determinism gate: two independent analyses over the same
           source must serialise to the same canonical document *)
        let deterministic = canonical_map source = canonical_map source in
        let destroyable =
          List.length
            (List.filter
               (fun (p : Minic.Poolify.pool) -> p.destroyable)
               result.Minic.Poolify.pools)
        in
        let i = inferred.inferred in
        Printf.printf
          "  %-8s pools %d (%d destroyable); peak shadow pages %d -> %d; \
           destroys %d released %d pages; syscalls %d -> %d (munmap %d -> %d)%s\n"
          name
          (List.length result.Minic.Poolify.pools)
          destroyable global.inferred.Runtime.Schemes.peak_shadow_pages
          i.Runtime.Schemes.peak_shadow_pages
          i.Runtime.Schemes.inferred_pools_destroyed
          i.Runtime.Schemes.destroy_unmapped_pages global.total_syscalls
          inferred.total_syscalls global.munmap inferred.munmap
          (if outputs_equal then "" else "  OUTPUT MISMATCH");
        J.Obj
          [
            ("name", J.String name);
            ("pools", J.Int (List.length result.Minic.Poolify.pools));
            ("destroyable_pools", J.Int destroyable);
            ("sites", J.Int (List.length result.Minic.Poolify.sites));
            ( "global_peak_pages",
              J.Int global.inferred.Runtime.Schemes.peak_shadow_pages );
            ("inferred_peak_pages", J.Int i.Runtime.Schemes.peak_shadow_pages);
            ( "pools_created",
              J.Int i.Runtime.Schemes.inferred_pools_created );
            ( "pools_destroyed",
              J.Int i.Runtime.Schemes.inferred_pools_destroyed );
            ( "destroy_unmapped_pages",
              J.Int i.Runtime.Schemes.destroy_unmapped_pages );
            ("global_syscalls", J.Int global.total_syscalls);
            ("inferred_syscalls", J.Int inferred.total_syscalls);
            ("global_munmap", J.Int global.munmap);
            ("inferred_munmap", J.Int inferred.munmap);
            ("outputs_equal", J.Bool outputs_equal);
            ("deterministic", J.Bool deterministic);
          ])
      workloads
  in
  let probe_rows =
    List.map
      (fun (name, source) ->
        let program = Minic.Parser.parse source in
        let transformed, _ = Minic.Poolify.transform program in
        let inferred = run_under transformed in
        let global = run_under program in
        let detected = inferred.violations <> [] in
        let identical = inferred.violations = global.violations in
        Printf.printf "  probe %-16s detected=%b identical-to-global=%b\n" name
          detected identical;
        J.Obj
          [
            ("name", J.String name);
            ("detected", J.Bool detected);
            ("detections_identical", J.Bool identical);
          ])
      probes
  in
  J.Obj [ ("rows", J.List rows); ("probes", J.List probe_rows) ]
