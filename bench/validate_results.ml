(* Sanity-checks a BENCH_results.json produced by bench/main.exe: the
   file must parse as JSON and carry every section the docs promise
   (tables 1-3, cost rows, bechamel, the fast-path microbench).  Run by
   [make bench-smoke] so a malformed results file fails CI instead of
   silently shipping. *)

module J = Telemetry.Json

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("validate: " ^ m); exit 1) fmt

let member path doc key =
  match J.member key doc with
  | Some v -> v
  | None -> fail "missing key %s.%s" path key

let non_empty_list path = function
  | J.List (_ :: _ as l) -> l
  | J.List [] -> fail "%s is empty" path
  | _ -> fail "%s is not a list" path

let () =
  let file = if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_results.json" in
  let text =
    try In_channel.with_open_text file In_channel.input_all
    with Sys_error e -> fail "cannot read %s: %s" file e
  in
  let doc =
    match J.of_string text with
    | Ok d -> d
    | Error e -> fail "%s does not parse: %s" file e
  in
  (match member "" doc "schema" with
   | J.Int 1 -> ()
   | _ -> fail "schema must be 1");
  let tables = member "" doc "tables" in
  List.iter
    (fun t -> ignore (member "tables" tables t))
    [ "table1"; "table2"; "table3" ];
  ignore (non_empty_list "cost_rows" (member "" doc "cost_rows"));
  (match member "" doc "bechamel" with
   | J.List _ -> () (* may be empty under SKIP_BECHAMEL *)
   | _ -> fail "bechamel is not a list");
  let fastpath = member "" doc "fastpath" in
  let rows = non_empty_list "fastpath.rows" (member "fastpath" fastpath "rows") in
  List.iter
    (fun row ->
      List.iter
        (fun k -> ignore (member "fastpath.rows[]" row k))
        [ "name"; "before_ns"; "after_ns"; "speedup" ])
    rows;
  let structural = member "fastpath" fastpath "structural" in
  let structural_int k =
    match member "fastpath.structural" structural k with
    | J.Int n -> n
    | _ -> fail "fastpath.structural.%s is not an int" k
  in
  (* The design's structural invariants, re-checked at validation time:
     a TLB hit must not walk the page table, and a word access must do
     exactly one frame lookup. *)
  if structural_int "page_table_walks_per_tlb_hit_load" <> 0 then
    fail "TLB-hit load walked the page table";
  if structural_int "frame_lookups_per_load8" <> 1 then
    fail "8-byte load did not do exactly one frame lookup";
  if structural_int "frame_lookups_per_store8" <> 1 then
    fail "8-byte store did not do exactly one frame lookup";
  (* Static elision: the analysis-driven scheme must have skipped real
     syscalls on at least two workloads, kept outputs identical, and —
     the soundness half — every seeded-bug probe must still be detected
     at a site the analysis flagged. *)
  let static_elision = member "" doc "static_elision" in
  let se_rows =
    non_empty_list "static_elision.rows"
      (member "static_elision" static_elision "rows")
  in
  let row_int row k =
    match member "static_elision.rows[]" row k with
    | J.Int n -> n
    | _ -> fail "static_elision.rows[].%s is not an int" k
  in
  let elided_workloads =
    List.filter
      (fun row -> row_int row "elided_allocs" > 0 && row_int row "saved_syscalls" > 0)
      se_rows
  in
  if List.length elided_workloads < 2 then
    fail "static elision saved syscalls on %d workloads (need >= 2)"
      (List.length elided_workloads);
  List.iter
    (fun row ->
      (match member "static_elision.rows[]" row "outputs_equal" with
       | J.Bool true -> ()
       | _ -> fail "static elision changed a workload's output");
      if row_int row "static_syscalls" > row_int row "full_syscalls" then
        fail "static elision increased syscalls on a workload")
    se_rows;
  let se_probes =
    non_empty_list "static_elision.probes"
      (member "static_elision" static_elision "probes")
  in
  List.iter
    (fun probe ->
      let pname =
        match member "static_elision.probes[]" probe "name" with
        | J.String s -> s
        | _ -> "?"
      in
      (match member "static_elision.probes[]" probe "detected" with
       | J.Bool true -> ()
       | _ -> fail "probe %s not detected under static elision" pname);
      match member "static_elision.probes[]" probe "at_flagged_site" with
      | J.Bool true -> ()
      | _ -> fail "probe %s trapped at a site the analysis marked Safe" pname)
    se_probes;
  (* Pool inference: on the workloads with scoped lifetimes (churn and
     server) the inferred-pool placement must hold peak shadow VA
     strictly below the single-global-pool baseline, with identical
     outputs and a byte-deterministic canonical pool map; and the
     seeded-bug probes must produce exactly the same violation list
     under both placements — inference moves VA lifetimes, never
     detections. *)
  let pool_inference = member "" doc "pool_inference" in
  let pi_rows =
    non_empty_list "pool_inference.rows"
      (member "pool_inference" pool_inference "rows")
  in
  let pi_int row k =
    match member "pool_inference.rows[]" row k with
    | J.Int n -> n
    | _ -> fail "pool_inference.rows[].%s is not an int" k
  in
  let pi_str row k =
    match member "pool_inference.rows[]" row k with
    | J.String s -> s
    | _ -> fail "pool_inference.rows[].%s is not a string" k
  in
  List.iter
    (fun row ->
      let name = pi_str row "name" in
      (match member "pool_inference.rows[]" row "outputs_equal" with
       | J.Bool true -> ()
       | _ -> fail "pool inference changed %s's output" name);
      (match member "pool_inference.rows[]" row "deterministic" with
       | J.Bool true -> ()
       | _ -> fail "pool map for %s is not deterministic" name);
      if pi_int row "pools" <= 0 then
        fail "pool inference found no pools on %s" name;
      if name = "churn" || name = "server" then begin
        if pi_int row "inferred_peak_pages" >= pi_int row "global_peak_pages"
        then
          fail
            "inferred pools did not lower peak shadow VA on %s (%d vs %d)"
            name
            (pi_int row "inferred_peak_pages")
            (pi_int row "global_peak_pages");
        if pi_int row "pools_destroyed" <= 0 then
          fail "pool inference never destroyed a pool on %s" name;
        if pi_int row "destroy_unmapped_pages" <= 0 then
          fail "pool destroys released no shadow pages on %s" name
      end)
    pi_rows;
  List.iter
    (fun name ->
      if not (List.exists (fun row -> pi_str row "name" = name) pi_rows) then
        fail "pool_inference has no %s row" name)
    [ "churn"; "server" ];
  let pi_probes =
    non_empty_list "pool_inference.probes"
      (member "pool_inference" pool_inference "probes")
  in
  List.iter
    (fun probe ->
      let pname =
        match member "pool_inference.probes[]" probe "name" with
        | J.String s -> s
        | _ -> "?"
      in
      (match member "pool_inference.probes[]" probe "detected" with
       | J.Bool true -> ()
       | _ -> fail "probe %s not detected under inferred pools" pname);
      match member "pool_inference.probes[]" probe "detections_identical" with
      | J.Bool true -> ()
      | _ ->
        fail "probe %s detections differ between inferred and global pools"
          pname)
    pi_probes;
  (* Resilience campaign: every row must have completed without an
     undiagnosed crash, and every detection miss must be attributed to a
     recorded degradation window. *)
  let resilience = member "" doc "resilience" in
  let res_rows =
    non_empty_list "resilience.rows" (member "resilience" resilience "rows")
  in
  List.iter
    (fun row ->
      let str k =
        match member "resilience.rows[]" row k with
        | J.String s -> s
        | _ -> fail "resilience.rows[].%s is not a string" k
      in
      let where = str "plan" ^ "/" ^ str "scheme" ^ "/" ^ str "workload" in
      (match member "resilience.rows[]" row "completed" with
      | J.Bool true -> ()
      | _ -> fail "resilience row %s did not complete" where);
      (match member "resilience.rows[]" row "crash" with
      | J.Null -> ()
      | J.String c -> fail "resilience row %s crashed: %s" where c
      | _ -> fail "resilience.rows[].crash has the wrong type");
      match member "resilience.rows[]" row "probes_missed_unattributed" with
      | J.Int 0 -> ()
      | J.Int n -> fail "resilience row %s: %d unattributed misses" where n
      | _ -> fail "resilience.rows[].probes_missed_unattributed not an int")
    res_rows;
  let summary = member "resilience" resilience "summary" in
  let summary_int k =
    match member "resilience.summary" summary k with
    | J.Int n -> n
    | _ -> fail "resilience.summary.%s is not an int" k
  in
  if summary_int "undiagnosed_crashes" <> 0 then
    fail "resilience campaign had undiagnosed crashes";
  if summary_int "unattributed_misses" <> 0 then
    fail "resilience campaign had unattributed detection misses";
  (match member "resilience.summary" summary "ok" with
  | J.Bool true -> ()
  | _ -> fail "resilience.summary.ok is not true");
  (* Farm scaling: rows for 1/2/4/8 shards; sharding must pay (>= 2x
     simulated throughput at 4 shards) without perturbing the merged
     totals — detections and syscalls are the determinism contract. *)
  let farm = member "" doc "farm" in
  let farm_rows = non_empty_list "farm.rows" (member "farm" farm "rows") in
  let farm_int row k =
    match member "farm.rows[]" row k with
    | J.Int n -> n
    | _ -> fail "farm.rows[].%s is not an int" k
  in
  let farm_float row k =
    match member "farm.rows[]" row k with
    | J.Float f -> f
    | J.Int n -> float_of_int n
    | _ -> fail "farm.rows[].%s is not a number" k
  in
  let throughput_at shards =
    match
      List.find_opt (fun row -> farm_int row "shards" = shards) farm_rows
    with
    | Some row -> farm_float row "throughput_conn_per_mcycle"
    | None -> fail "farm has no row for %d shards" shards
  in
  let t1 = throughput_at 1 in
  List.iter (fun s -> ignore (throughput_at s)) [ 2; 4; 8 ];
  if throughput_at 4 < 2.0 *. t1 then
    fail "farm at 4 shards is under 2x single-shard throughput (%.3f vs %.3f)"
      (throughput_at 4) t1;
  (match farm_rows with
   | base :: rest ->
     let d0 = farm_int base "detections" and s0 = farm_int base "syscalls" in
     if d0 <= 0 then fail "farm recorded no detections (probes missing?)";
     List.iter
       (fun row ->
         if farm_int row "detections" <> d0 then
           fail "farm detections differ across shard counts (%d vs %d)"
             (farm_int row "detections") d0;
         if farm_int row "syscalls" <> s0 then
           fail "farm syscalls differ across shard counts (%d vs %d)"
             (farm_int row "syscalls") s0)
       rest
   | [] -> ());
  (* Epoch-batched farm rows: the same server set under the epoch
     scheme must keep the eager rows' detections (batching never costs
     a detection) while doing strictly fewer syscalls, and must be just
     as deterministic across shard counts. *)
  let epoch_farm_rows =
    non_empty_list "farm.epoch_rows" (member "farm" farm "epoch_rows")
  in
  (match (farm_rows, epoch_farm_rows) with
   | base :: _, ebase :: erest ->
     let d0 = farm_int base "detections" and s0 = farm_int base "syscalls" in
     let ed0 = farm_int ebase "detections" in
     let es0 = farm_int ebase "syscalls" in
     if ed0 <> d0 then
       fail "epoch farm detections %d differ from eager %d" ed0 d0;
     if es0 >= s0 then
       fail "epoch farm did not cut syscalls (%d vs eager %d)" es0 s0;
     List.iter
       (fun row ->
         if farm_int row "detections" <> ed0 then
           fail "epoch farm detections differ across shard counts (%d vs %d)"
             (farm_int row "detections") ed0;
         if farm_int row "syscalls" <> es0 then
           fail "epoch farm syscalls differ across shard counts (%d vs %d)"
             (farm_int row "syscalls") es0)
       erest
   | _ -> ());
  (* Epoch batching: the headline perf invariant — on the churn
     workload the epoch scheme must spend at most a tenth of the eager
     scheme's protection syscalls per heap op (the design target), and
     no workload may exceed a quarter.  The soundness half: every
     quarantine-window probe detected through its expected path, no
     protect ever silently dropped. *)
  let epoch = member "" doc "epoch_batching" in
  let epoch_rows =
    non_empty_list "epoch_batching.rows" (member "epoch_batching" epoch "rows")
  in
  let erow_str row k =
    match member "epoch_batching.rows[]" row k with
    | J.String s -> s
    | _ -> fail "epoch_batching.rows[].%s is not a string" k
  in
  let erow_num row k =
    match member "epoch_batching.rows[]" row k with
    | J.Float f -> f
    | J.Int n -> float_of_int n
    | _ -> fail "epoch_batching.rows[].%s is not a number" k
  in
  List.iter
    (fun row ->
      let w = erow_str row "workload" in
      let ratio = erow_num row "ratio" in
      if ratio > 0.25 then
        fail "epoch batching on %s saved too little (ratio %.3f > 0.25)" w ratio;
      if w = "churn" && ratio > 0.1 then
        fail "epoch batching on churn is under 10x (ratio %.3f > 0.1)" ratio;
      if erow_num row "failed_protects" > 0.0 then
        fail "epoch batching on %s dropped a protection" w)
    epoch_rows;
  if not (List.exists (fun row -> erow_str row "workload" = "churn") epoch_rows)
  then fail "epoch_batching has no churn row";
  ignore
    (non_empty_list "epoch_batching.sweep" (member "epoch_batching" epoch "sweep"));
  let epoch_probes =
    non_empty_list "epoch_batching.probes"
      (member "epoch_batching" epoch "probes")
  in
  List.iter
    (fun probe ->
      let pname =
        match member "epoch_batching.probes[]" probe "name" with
        | J.String s -> s
        | _ -> "?"
      in
      (match member "epoch_batching.probes[]" probe "detected" with
       | J.Bool true -> ()
       | _ -> fail "epoch probe %s not detected" pname);
      let via = erow_str probe "via" in
      let want = erow_str probe "expected_via" in
      if via <> want then
        fail "epoch probe %s detected via %s (expected %s)" pname via want)
    epoch_probes;
  (match member "epoch_batching" epoch "missed_probes" with
   | J.Int 0 -> ()
   | J.Int n -> fail "epoch batching missed %d quarantine-window probes" n
   | _ -> fail "epoch_batching.missed_probes is not an int");
  (* Tagged backend: the point of the scheme is trading shadow's VA and
     protection syscalls for a per-access software check — so the churn
     row must show tagged VA well under shadow's (at least 4x) with zero
     protection syscalls per op, every seeded probe must fault in Full
     mode, the tag_bits=2 wrap demo must record the wrap AND attribute
     the masked pass, and the tagged farm must merge deterministically
     across shard counts like every other backend. *)
  let tag = member "" doc "tag_backend" in
  let tag_rows =
    non_empty_list "tag_backend.rows" (member "tag_backend" tag "rows")
  in
  let trow_int path row k =
    match member path row k with
    | J.Int n -> n
    | _ -> fail "%s.%s is not an int" path k
  in
  let trow_num path row k =
    match member path row k with
    | J.Float f -> f
    | J.Int n -> float_of_int n
    | _ -> fail "%s.%s is not a number" path k
  in
  List.iter
    (fun row ->
      let w = erow_str row "workload" in
      let p = "tag_backend.rows[]" in
      let shadow_va = trow_int p row "shadow_va_pages" in
      let tagged_va = trow_int p row "tagged_va_pages" in
      if tagged_va * 4 > shadow_va then
        fail "tagged VA on %s is not well under shadow's (%d vs %d pages)" w
          tagged_va shadow_va;
      if trow_num p row "tagged_syscalls_per_op" > 0.0 then
        fail "tagged backend on %s issued protection syscalls" w;
      if trow_int p row "tag_checks" <= 0 then
        fail "tagged backend on %s recorded no tag checks" w;
      if trow_int p row "tag_faults" <> 0 then
        fail "tagged backend on %s faulted on a correct workload" w;
      List.iter
        (fun k ->
          if trow_int p row k < 0 then fail "tag_backend.rows[].%s negative" k)
        [ "generation_wraps"; "wrap_masked_passes"; "table_bytes" ])
    tag_rows;
  if not (List.exists (fun row -> erow_str row "workload" = "churn") tag_rows)
  then fail "tag_backend has no churn row";
  let tag_probes =
    non_empty_list "tag_backend.probes" (member "tag_backend" tag "probes")
  in
  List.iter
    (fun probe ->
      let pname =
        match member "tag_backend.probes[]" probe "name" with
        | J.String s -> s
        | _ -> "?"
      in
      match member "tag_backend.probes[]" probe "detected" with
      | J.Bool true -> ()
      | _ -> fail "tagged probe %s not detected" pname)
    tag_probes;
  (match member "tag_backend" tag "missed_probes" with
   | J.Int 0 -> ()
   | J.Int n -> fail "tagged backend missed %d seeded probes" n
   | _ -> fail "tag_backend.missed_probes is not an int");
  let wrap = member "tag_backend" tag "wrap" in
  if trow_int "tag_backend.wrap" wrap "generation_wraps" <= 0 then
    fail "wrap demo recorded no generation wrap";
  if trow_int "tag_backend.wrap" wrap "wrap_masked_passes" <= 0 then
    fail "wrap demo recorded no attributed masked pass";
  (match member "tag_backend.wrap" wrap "masked_pass_observed" with
   | J.Bool true -> ()
   | _ -> fail "wrap demo masked pass not observed at the access site");
  let tag_server = member "tag_backend" tag "server" in
  let server_va k = trow_int "tag_backend.server" tag_server k in
  if
    server_va "tagged_max_va_bytes_per_connection"
    > server_va "shadow_max_va_bytes_per_connection"
  then fail "tagged server burns more VA per connection than shadow";
  let tag_farm =
    non_empty_list "tag_backend.farm_rows" (member "tag_backend" tag "farm_rows")
  in
  (match tag_farm with
   | first :: rest ->
     let p = "tag_backend.farm_rows[]" in
     let d0 = trow_int p first "detections" in
     let s0 = trow_int p first "syscalls" in
     if d0 <= 0 then fail "tagged farm recorded no detections";
     List.iter
       (fun row ->
         if trow_int p row "detections" <> d0 then
           fail "tagged farm detections differ across shard counts (%d vs %d)"
             (trow_int p row "detections") d0;
         if trow_int p row "syscalls" <> s0 then
           fail "tagged farm syscalls differ across shard counts (%d vs %d)"
             (trow_int p row "syscalls") s0)
       rest
   | [] -> ());
  (* Fleet crash reports: eight runs (2 policies x 4 shard counts) in
     recoverable mode.  The determinism contract is byte-level — every
     run's canonical ranked report must be identical — and the seeded
     probes must all surface, deduped to exactly one signature per
     injection site with the seeded count. *)
  let fleet = member "" doc "fleet_report" in
  let fleet_rows =
    non_empty_list "fleet_report.rows" (member "fleet_report" fleet "rows")
  in
  if List.length fleet_rows <> 8 then
    fail "fleet_report has %d rows (want 2 policies x 4 shard counts = 8)"
      (List.length fleet_rows);
  let fleet_int path row k =
    match member path row k with
    | J.Int n -> n
    | _ -> fail "%s.%s is not an int" path k
  in
  let fleet_str path row k =
    match member path row k with
    | J.String s -> s
    | _ -> fail "%s.%s is not a string" path k
  in
  let expected_probes = fleet_int "fleet_report" fleet "expected_probes" in
  let expected_sites =
    non_empty_list "fleet_report.expected_sites"
      (member "fleet_report" fleet "expected_sites")
  in
  let canonical0 = fleet_str "fleet_report.rows[]" (List.hd fleet_rows) "canonical" in
  List.iter
    (fun row ->
      let where =
        Printf.sprintf "%s/%d shards"
          (fleet_str "fleet_report.rows[]" row "policy")
          (fleet_int "fleet_report.rows[]" row "shards")
      in
      if fleet_int "fleet_report.rows[]" row "detections" <> 0 then
        fail "fleet run %s: a violation escaped recovery" where;
      if fleet_int "fleet_report.rows[]" row "total_reports" <> expected_probes
      then
        fail "fleet run %s reported %d of %d seeded probes" where
          (fleet_int "fleet_report.rows[]" row "total_reports")
          expected_probes;
      if fleet_str "fleet_report.rows[]" row "canonical" <> canonical0 then
        fail "fleet run %s: ranked report differs from the first run's" where)
    fleet_rows;
  let fleet_entries =
    non_empty_list "fleet_report.entries" (member "fleet_report" fleet "entries")
  in
  if List.length fleet_entries <> List.length expected_sites then
    fail "fleet report has %d signatures for %d seeded sites"
      (List.length fleet_entries)
      (List.length expected_sites);
  List.iter
    (fun site ->
      let alloc = fleet_str "fleet_report.expected_sites[]" site "alloc_site" in
      let want = fleet_int "fleet_report.expected_sites[]" site "count" in
      match
        List.filter
          (fun e ->
            fleet_str "fleet_report.entries[]" e "alloc_site" = alloc)
          fleet_entries
      with
      | [ e ] ->
        if fleet_int "fleet_report.entries[]" e "count" <> want then
          fail "fleet site %s has count %d (seeded %d)" alloc
            (fleet_int "fleet_report.entries[]" e "count")
            want
      | [] -> fail "seeded site %s missing from the fleet report" alloc
      | _ -> fail "seeded site %s appears under several signatures" alloc)
    expected_sites;
  (* Multi-day soak: the endurance contract.  The GC'd run must keep
     the detection guarantee perfectly (no missed probe, no reclaim of
     a rooted range) while staying flat against the unreclaimed run,
     which in turn must demonstrate the §3.4 problem — exhaustion, or
     at least a finite projection.  The ladder run must show the
     ordered response: gc strictly before tighten strictly before
     degrade, with the governor transition attributed to va-pressure. *)
  let soak = member "" doc "soak" in
  let soak_run k = member "soak" soak k in
  let soak_int path run k =
    match member path run k with
    | J.Int n -> n
    | _ -> fail "%s.%s is not an int" path k
  in
  let without_gc = soak_run "without_gc" in
  let with_gc = soak_run "with_gc" in
  let ladder = soak_run "ladder" in
  List.iter
    (fun (name, run) ->
      if soak_int ("soak." ^ name) run "total_probes" <= 0 then
        fail "soak %s ran no dangling probes" name;
      if soak_int ("soak." ^ name) run "missed_probes" <> 0 then
        fail "soak %s missed %d dangling probes" name
          (soak_int ("soak." ^ name) run "missed_probes");
      if soak_int ("soak." ^ name) run "reclaims_with_witness" <> 0 then
        fail "soak %s reclaimed %d witnessed (rooted) ranges" name
          (soak_int ("soak." ^ name) run "reclaims_with_witness"))
    [ ("without_gc", without_gc); ("with_gc", with_gc); ("ladder", ladder) ];
  (match member "soak.without_gc" without_gc "exhausted" with
   | J.Bool true -> ()
   | J.Bool false ->
     (match member "soak.without_gc" without_gc "projected_hours" with
      | J.Float h when h > 0.0 -> ()
      | J.Int h when h > 0 -> ()
      | _ ->
        fail
          "soak without reclamation neither exhausted its budget nor \
           projected a finite exhaustion time")
   | _ -> fail "soak.without_gc.exhausted is not a bool");
  if soak_int "soak.with_gc" with_gc "gc_runs" <= 0 then
    fail "soak with_gc never ran the GC";
  if soak_int "soak.with_gc" with_gc "reclaimed_pages" <= 0 then
    fail "soak with_gc reclaimed nothing";
  (match member "soak.with_gc" with_gc "exhausted" with
   | J.Bool false -> ()
   | _ -> fail "soak with_gc exhausted its VA budget despite the GC");
  let gc_tail = soak_int "soak.with_gc" with_gc "tail_delta_pages" in
  let raw_tail = soak_int "soak.without_gc" without_gc "tail_delta_pages" in
  if raw_tail <= 0 then fail "soak without_gc shows no steady-state VA growth";
  if 4 * gc_tail > raw_tail then
    fail "soak with_gc is not flat (tail %d pages/day vs %d unreclaimed)"
      gc_tail raw_tail;
  let ladder_actions =
    non_empty_list "soak.ladder.actions" (member "soak.ladder" ladder "actions")
  in
  let first_index want =
    let rec go i = function
      | [] -> None
      | a :: rest ->
        (match member "soak.ladder.actions[]" a "action" with
         | J.String s when s = want -> Some i
         | _ -> go (i + 1) rest)
    in
    go 0 ladder_actions
  in
  (match (first_index "gc", first_index "tighten", first_index "degrade") with
   | Some g, Some t, Some d when g < t && t < d -> ()
   | Some _, Some _, Some _ ->
     fail "soak ladder actions are out of order (want gc < tighten < degrade)"
   | g, t, d ->
     fail "soak ladder is missing actions (gc %b, tighten %b, degrade %b)"
       (g <> None) (t <> None) (d <> None));
  let ladder_governor =
    non_empty_list "soak.ladder.governor_transitions"
      (member "soak.ladder" ladder "governor_transitions")
  in
  if
    not
      (List.exists
         (fun tr ->
           match member "soak.ladder.governor_transitions[]" tr "reason" with
           | J.String "va-pressure" -> true
           | _ -> false)
         ladder_governor)
  then fail "soak ladder's governor transition is not attributed to va-pressure";
  Printf.printf
    "validate: %s OK (%d fastpath rows, %d elision rows, %d pool-inference \
     rows, %d epoch rows, %d tag-backend rows, %d resilience rows, %d farm \
     rows, %d fleet runs, %d soak probes)\n"
    file (List.length rows) (List.length se_rows) (List.length pi_rows)
    (List.length epoch_rows) (List.length tag_rows) (List.length res_rows)
    (List.length farm_rows) (List.length fleet_rows)
    (soak_int "soak.with_gc" with_gc "total_probes")
