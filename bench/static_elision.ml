(* Static protection elision, measured end to end: each MiniC workload
   is analysed by Minic.Dangling, pool-transformed, then run twice on
   fresh machines — once under the full shadow-pool scheme and once
   under Runtime.Schemes.shadow_pool_static with the analysis's
   elide_policy.  The row records how many allocations skipped the
   shadow alias and how many mremap/mprotect syscalls that saved, plus a
   differential check that both runs print the same values.

   Sources are embedded (not read from examples/) so the bench binary
   has no working-directory dependence.

   The probes then re-run seeded-bug programs under the *static* scheme
   and assert the violation still fires at a position the analysis
   flagged May/Must: elision must never cost a detection.  The validator
   (validate_results.ml) pins all of this in BENCH_results.json. *)

module J = Telemetry.Json

(* Per-iteration array rows, used and freed before the next allocation:
   the whole class is provably Safe, so every alloc/free is elided. *)
let src_matrix =
  {|
struct cell { int v; struct cell *link; }

int row_sum(struct cell *row, int n) {
  int acc = 0;
  int i = 0;
  while (i < n) {
    acc = acc + row[i]->v;
    i = i + 1;
  }
  return acc;
}

void main() {
  int n = 1;
  int total = 0;
  while (n <= 24) {
    struct cell *row = malloc(struct cell, n);
    int i = 0;
    while (i < n) {
      row[i]->v = n * 10 + i;
      row[i]->link = null;
      i = i + 1;
    }
    total = total + row_sum(row, n);
    free(row);
    n = n + 1;
  }
  print(total);
}
|}

(* Allocator churn: one short-lived object per iteration. *)
let src_churn =
  {|
struct box { int v; struct box *pad; }

void main() {
  int acc = 0;
  int i = 0;
  while (i < 200) {
    struct box *tmp = malloc(struct box);
    tmp->v = i;
    acc = acc + tmp->v;
    free(tmp);
    i = i + 1;
  }
  print(acc);
}
|}

(* Heap-carried list with a release loop: the analysis cannot prove the
   nodes Safe (loads of possibly-freed neighbours), so nothing is
   elided and the run is identical to the full scheme — the row shows
   the conservative side of the policy. *)
let src_list =
  {|
struct node { int v; struct node *next; }

struct node *build(int n) {
  struct node *head = null;
  int i = 0;
  while (i < n) {
    struct node *fresh = malloc(struct node);
    fresh->v = i;
    fresh->next = head;
    head = fresh;
    i = i + 1;
  }
  return head;
}

int total(struct node *head) {
  int acc = 0;
  struct node *cur = head;
  while (cur != null) { acc = acc + cur->v; cur = cur->next; }
  return acc;
}

void release(struct node *head) {
  struct node *cur = head;
  while (cur != null) {
    struct node *nxt = cur->next;
    free(cur);
    cur = nxt;
  }
}

void main() {
  struct node *l = build(50);
  print(total(l));
  release(l);
}
|}

(* Mixed: a long-lived list (protected) plus per-request scratch
   buffers (elided) — the shape the paper's servers have. *)
let src_mixed =
  {|
struct node { int v; struct node *next; }
struct scratch { int a; int b; }

struct node *log_request(struct node *log, int v) {
  struct node *entry = malloc(struct node);
  entry->v = v;
  entry->next = log;
  return entry;
}

int handle(int req) {
  struct scratch *s = malloc(struct scratch);
  s->a = req * 3;
  s->b = req + 1;
  int out = s->a + s->b;
  free(s);
  return out;
}

void main() {
  struct node *log = null;
  int i = 0;
  int acc = 0;
  while (i < 60) {
    acc = acc + handle(i);
    log = log_request(log, i);
    i = i + 1;
  }
  print(acc);
  struct node *cur = log;
  while (cur != null) {
    struct node *nxt = cur->next;
    free(cur);
    cur = nxt;
  }
}
|}

let workloads =
  [
    ("matrix", src_matrix);
    ("churn", src_churn);
    ("list", src_list);
    ("mixed", src_mixed);
  ]

(* Seeded-bug probes, run only under the static scheme: detection at
   non-Safe sites must survive elision. *)
let probe_uaf =
  {|
struct box { int v; struct box *pad; }

void main() {
  int acc = 0;
  int i = 0;
  while (i < 10) {
    struct box *tmp = malloc(struct box);
    tmp->v = i;
    acc = acc + tmp->v;
    free(tmp);
    i = i + 1;
  }
  struct box *victim = malloc(struct box);
  victim->v = acc;
  free(victim);
  print(victim->v);
}
|}

let probe_double_free =
  {|
struct box { int v; struct box *pad; }

void main() {
  struct box *victim = malloc(struct box);
  victim->v = 1;
  free(victim);
  free(victim);
}
|}

let probes = [ ("use-after-free", probe_uaf); ("double-free", probe_double_free) ]

type run_stats = {
  prints : int list option; (* None = stopped by a violation *)
  mremap : int;
  mprotect : int;
  total_syscalls : int;
  violations : (string * Minic.Ast.pos) list;
}

let run_under program scheme_of_machine =
  let machine = Vmm.Machine.create () in
  let scheme, finish = scheme_of_machine machine in
  let violations = ref [] in
  let hook ~fname ~pos (_ : Shadow.Report.t) =
    violations := (fname, pos) :: !violations
  in
  let prints =
    match Minic.Interp.run ~on_violation:hook program scheme with
    | o -> Some o.Minic.Interp.prints
    | exception Shadow.Report.Violation _ -> None
  in
  let s = Vmm.Stats.snapshot machine.Vmm.Machine.stats in
  finish ();
  {
    prints;
    mremap = s.Vmm.Stats.syscalls_mremap;
    mprotect = s.Vmm.Stats.syscalls_mprotect;
    total_syscalls = Vmm.Stats.total_syscalls s;
    violations = List.rev !violations;
  }

let full_scheme machine = (Runtime.Schemes.shadow_pool machine, fun () -> ())

let analyze_and_transform source =
  let program = Minic.Parser.parse source in
  let result = Minic.Dangling.analyze program in
  let transformed, _ = Minic.Pool_transform.transform program in
  (result, transformed)

let flagged (result : Minic.Dangling.result) (fname, pos) =
  List.exists
    (fun (fd : Minic.Dangling.finding) ->
      fd.Minic.Dangling.fname = fname
      && fd.Minic.Dangling.pos = pos
      && fd.Minic.Dangling.verdict <> Minic.Dangling.Safe)
    result.Minic.Dangling.findings

let run () =
  print_endline
    "\n== Static protection elision (Safe sites skip mremap/mprotect) ==";
  let rows =
    List.map
      (fun (name, source) ->
        let result, transformed = analyze_and_transform source in
        let stats_box = ref None in
        let static_scheme machine =
          let scheme =
            Runtime.Schemes.shadow_pool_static
              ~config:{ Runtime.Schemes.elide = Minic.Dangling.elide_policy result }
              machine
          in
          let finish () =
            match Runtime.Schemes.introspect scheme with
            | Runtime.Schemes.Shadow_pool_static { elision; _ } ->
              stats_box := Some (elision ())
            | _ -> assert false
          in
          (scheme, finish)
        in
        let full = run_under transformed full_scheme in
        let static = run_under transformed static_scheme in
        let es =
          match !stats_box with
          | Some s -> s
          | None -> assert false (* finish always runs *)
        in
        let sites = List.length result.Minic.Dangling.sites in
        let elidable =
          List.length
            (List.filter
               (fun (s : Minic.Dangling.site) ->
                 s.Minic.Dangling.verdict = Minic.Dangling.Safe)
               result.Minic.Dangling.sites)
        in
        let saved = full.total_syscalls - static.total_syscalls in
        let outputs_equal = full.prints = static.prints in
        Printf.printf
          "  %-8s sites %d/%d elidable; elided %d allocs, %d frees; \
           syscalls %d -> %d (saved %d, mremap %d -> %d, mprotect %d -> %d)%s\n"
          name elidable sites es.Runtime.Schemes.elided_allocs
          es.Runtime.Schemes.elided_frees full.total_syscalls
          static.total_syscalls saved full.mremap static.mremap full.mprotect
          static.mprotect
          (if outputs_equal then "" else "  OUTPUT MISMATCH");
        J.Obj
          [
            ("name", J.String name);
            ("sites", J.Int sites);
            ("elidable_sites", J.Int elidable);
            ("elided_allocs", J.Int es.Runtime.Schemes.elided_allocs);
            ("elided_frees", J.Int es.Runtime.Schemes.elided_frees);
            ("protected_allocs", J.Int es.Runtime.Schemes.protected_allocs);
            ("full_mremap", J.Int full.mremap);
            ("full_mprotect", J.Int full.mprotect);
            ("full_syscalls", J.Int full.total_syscalls);
            ("static_mremap", J.Int static.mremap);
            ("static_mprotect", J.Int static.mprotect);
            ("static_syscalls", J.Int static.total_syscalls);
            ("saved_syscalls", J.Int saved);
            ("outputs_equal", J.Bool outputs_equal);
          ])
      workloads
  in
  let probe_rows =
    List.map
      (fun (name, source) ->
        let result, transformed = analyze_and_transform source in
        let stats_box = ref None in
        let static_scheme machine =
          let scheme =
            Runtime.Schemes.shadow_pool_static
              ~config:{ Runtime.Schemes.elide = Minic.Dangling.elide_policy result }
              machine
          in
          let finish () =
            match Runtime.Schemes.introspect scheme with
            | Runtime.Schemes.Shadow_pool_static { elision; _ } ->
              stats_box := Some (elision ())
            | _ -> assert false
          in
          (scheme, finish)
        in
        let static = run_under transformed static_scheme in
        let detected = static.violations <> [] in
        let at_flagged_site =
          detected && List.for_all (flagged result) static.violations
        in
        let elided =
          match !stats_box with
          | Some s -> s.Runtime.Schemes.elided_allocs
          | None -> 0
        in
        Printf.printf "  probe %-16s detected=%b at-flagged-site=%b (%d elided)\n"
          name detected at_flagged_site elided;
        J.Obj
          [
            ("name", J.String name);
            ("detected", J.Bool detected);
            ("at_flagged_site", J.Bool at_flagged_site);
            ("elided_allocs", J.Int elided);
          ])
      probes
  in
  J.Obj [ ("rows", J.List rows); ("probes", J.List probe_rows) ]
