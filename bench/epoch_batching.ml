(* Epoch-batched deferred protection, measured head to head: the same
   allocator-driving workloads run under the eager shadow-pool scheme
   and under [Runtime.Schemes.shadow_pool_epoch], and the row records
   protection syscalls (mremap + mprotect + munmap) per heap operation
   for both, plus the ratio the validator pins (epoch must cut churn
   syscalls/op to at most a quarter of eager; the design target is a
   tenth).

   A second table sweeps the epoch size on churn for EXPERIMENTS.md —
   syscalls/op and simulated throughput against max_frees — and a probe
   set proves the batching never costs a detection: a use inside the
   open epoch is caught by the software backstop, a use at the exact
   retirement boundary and a use after retirement both trap in the MMU.
   [missed_probes] must be 0. *)

module J = Telemetry.Json

let churn_site_alloc = "epoch_bench.c:10"
let churn_site_free = "epoch_bench.c:11"

(* Same-size alloc/free pairs: the pathological case for eager
   protection (one mremap + one mprotect per pair) and the best case
   for slab reuse + coalesced retirement. *)
let churn (scheme : Runtime.Scheme.t) ~ops =
  for i = 1 to ops do
    let a = scheme.Runtime.Scheme.malloc ~site:churn_site_alloc 48 in
    scheme.Runtime.Scheme.store a ~width:8 i;
    ignore (scheme.Runtime.Scheme.load a ~width:8);
    scheme.Runtime.Scheme.free ~site:churn_site_free a
  done

(* A ring of live objects with two size classes: frees are delayed 32
   allocations, so quarantined and live objects interleave and the
   coalescer sees fragmented runs — the honest middle ground. *)
let mixed (scheme : Runtime.Scheme.t) ~ops =
  let ring = Array.make 32 None in
  for i = 0 to ops - 1 do
    let size = if i land 1 = 0 then 48 else 112 in
    let a = scheme.Runtime.Scheme.malloc ~site:"epoch_bench.c:20" size in
    scheme.Runtime.Scheme.store a ~width:8 i;
    (match ring.(i mod 32) with
     | Some old ->
       ignore (scheme.Runtime.Scheme.load old ~width:8);
       scheme.Runtime.Scheme.free ~site:"epoch_bench.c:21" old
     | None -> ());
    ring.(i mod 32) <- Some a
  done;
  Array.iter
    (function
      | Some a -> scheme.Runtime.Scheme.free ~site:"epoch_bench.c:22" a
      | None -> ())
    ring

let workloads = [ ("churn", churn); ("mixed", mixed) ]

type run_stats = {
  protection : int;
  heap_ops : int;
  per_op : float;
  cycles : float;
}

(* Run one workload on a fresh machine; [finish] drains pending epochs
   before the snapshot so the epoch scheme is charged for every protect
   it owes, not just the ones that happened to retire in-window. *)
let measure make_scheme workload ~ops =
  let machine = Vmm.Machine.create () in
  let scheme : Runtime.Scheme.t = make_scheme machine in
  workload scheme ~ops;
  (match Runtime.Schemes.introspect scheme with
   | Runtime.Schemes.Shadow_pool_epoch { drain; _ } -> drain ()
   | _ -> ());
  let s = Vmm.Stats.snapshot machine.Vmm.Machine.stats in
  let heap_ops = Vmm.Stats.heap_ops s in
  {
    protection = Vmm.Stats.protection_syscalls s;
    heap_ops;
    per_op = Option.value (Vmm.Stats.syscalls_per_op s) ~default:0.0;
    cycles = Vmm.Machine.cycles machine;
  }

let epoch_stats_of scheme =
  match Runtime.Schemes.introspect scheme with
  | Runtime.Schemes.Shadow_pool_epoch { epoch; _ } -> epoch ()
  | _ -> assert false

(* ---- probes: the quarantine window must never hide a dangling use ---- *)

type probe_outcome = { detected : bool; via : string }

let classify_detection ~backstop_before scheme =
  let es = epoch_stats_of scheme in
  if es.Runtime.Schemes.backstop_hits > backstop_before then "backstop"
  else "mmu"

(* Use inside the open epoch: the page is still read-write, so only the
   software backstop can see it. *)
let probe_in_window () =
  let machine = Vmm.Machine.create () in
  let scheme = Runtime.Schemes.shadow_pool_epoch machine in
  let a = scheme.Runtime.Scheme.malloc ~site:"probe.c:1" 48 in
  scheme.Runtime.Scheme.store a ~width:8 7;
  scheme.Runtime.Scheme.free ~site:"probe.c:2" a;
  match scheme.Runtime.Scheme.load a ~width:8 with
  | _ -> { detected = false; via = "none" }
  | exception Shadow.Report.Violation _ ->
    { detected = true; via = classify_detection ~backstop_before:0 scheme }

(* Use at the exact retirement boundary: the free that fills the epoch
   triggers retirement, so by the time the probe runs the page is
   already PROT_NONE — the MMU path, not the backstop, must fire. *)
let probe_at_retirement () =
  let machine = Vmm.Machine.create () in
  let scheme = Runtime.Schemes.shadow_pool_epoch
      ~config:{ Runtime.Schemes.default_epoch_config with max_frees = 4 } machine in
  let victims =
    List.init 4 (fun i ->
        let a =
          scheme.Runtime.Scheme.malloc ~site:(Printf.sprintf "probe.c:%d" i) 48
        in
        scheme.Runtime.Scheme.store a ~width:8 i;
        a)
  in
  List.iter (fun a -> scheme.Runtime.Scheme.free ~site:"probe.c:9" a) victims;
  let last = List.nth victims 3 in
  match scheme.Runtime.Scheme.load last ~width:8 with
  | _ -> { detected = false; via = "none" }
  | exception Shadow.Report.Violation _ ->
    { detected = true; via = classify_detection ~backstop_before:0 scheme }

(* Use after an explicit drain: indistinguishable from the eager
   scheme's post-free state. *)
let probe_post_retirement () =
  let machine = Vmm.Machine.create () in
  let scheme = Runtime.Schemes.shadow_pool_epoch machine in
  let a = scheme.Runtime.Scheme.malloc ~site:"probe.c:1" 48 in
  scheme.Runtime.Scheme.store a ~width:8 7;
  scheme.Runtime.Scheme.free ~site:"probe.c:2" a;
  (match Runtime.Schemes.introspect scheme with
   | Runtime.Schemes.Shadow_pool_epoch { drain; _ } -> drain ()
   | _ -> assert false);
  match scheme.Runtime.Scheme.load a ~width:8 with
  | _ -> { detected = false; via = "none" }
  | exception Shadow.Report.Violation _ ->
    { detected = true; via = classify_detection ~backstop_before:0 scheme }

let probes =
  [
    ("in-window", probe_in_window, "backstop");
    ("at-retirement", probe_at_retirement, "mmu");
    ("post-retirement", probe_post_retirement, "mmu");
  ]

let run ~smoke () =
  print_endline
    "\n== Epoch batching (protection syscalls per heap op, eager vs epoch) ==";
  let ops = if smoke then 1_024 else 8_192 in
  let rows =
    List.map
      (fun (name, workload) ->
        let base =
          measure (fun m -> Runtime.Schemes.shadow_pool m) workload ~ops
        in
        let epoch_scheme = ref None in
        let epoch =
          measure
            (fun m ->
              let s = Runtime.Schemes.shadow_pool_epoch m in
              epoch_scheme := Some s;
              s)
            workload ~ops
        in
        let es =
          match !epoch_scheme with
          | Some s -> epoch_stats_of s
          | None -> assert false
        in
        let ratio =
          if base.per_op > 0.0 then epoch.per_op /. base.per_op else 1.0
        in
        Printf.printf
          "  %-6s ops %5d  syscalls/op %6.3f -> %6.3f  (%.1fx fewer; %d \
           epochs, %d coalesced protects, slab %d calls / %d hits)\n"
          name base.heap_ops base.per_op epoch.per_op
          (if epoch.per_op > 0.0 then base.per_op /. epoch.per_op else 0.0)
          es.Runtime.Schemes.epochs_retired es.Runtime.Schemes.coalesced_protects
          es.Runtime.Schemes.slab_calls es.Runtime.Schemes.slab_hits;
        J.Obj
          [
            ("workload", J.String name);
            ("heap_ops", J.Int base.heap_ops);
            ("base_protection_syscalls", J.Int base.protection);
            ("base_syscalls_per_op", J.Float base.per_op);
            ("epoch_protection_syscalls", J.Int epoch.protection);
            ("epoch_syscalls_per_op", J.Float epoch.per_op);
            ("ratio", J.Float ratio);
            ("epochs_retired", J.Int es.Runtime.Schemes.epochs_retired);
            ("coalesced_protects", J.Int es.Runtime.Schemes.coalesced_protects);
            ("split_retries", J.Int es.Runtime.Schemes.epoch_split_retries);
            ("failed_protects", J.Int es.Runtime.Schemes.epoch_failed_protects);
            ("slab_calls", J.Int es.Runtime.Schemes.slab_calls);
            ("slab_hits", J.Int es.Runtime.Schemes.slab_hits);
            ("backstop_hits", J.Int es.Runtime.Schemes.backstop_hits);
          ])
      workloads
  in
  (* Epoch-size sweep on churn: the EXPERIMENTS.md table. *)
  let sweep =
    List.map
      (fun max_frees ->
        let r =
          measure
            (fun m ->
              Runtime.Schemes.shadow_pool_epoch
                ~config:
                  { Runtime.Schemes.default_epoch_config with max_frees }
                m)
            churn ~ops
        in
        let throughput = float_of_int r.heap_ops /. (r.cycles /. 1e6) in
        Printf.printf
          "  max_frees %4d: syscalls/op %6.3f  throughput %8.1f ops/Mcycle\n"
          max_frees r.per_op throughput;
        J.Obj
          [
            ("max_frees", J.Int max_frees);
            ("syscalls_per_op", J.Float r.per_op);
            ("throughput_ops_per_mcycle", J.Float throughput);
          ])
      [ 8; 64; 256 ]
  in
  let outcomes =
    List.map (fun (name, probe, expect_via) -> (name, probe (), expect_via)) probes
  in
  let probe_rows =
    List.map
      (fun (name, o, expect_via) ->
        Printf.printf "  probe %-16s detected=%b via=%s (expected %s)\n" name
          o.detected o.via expect_via;
        J.Obj
          [
            ("name", J.String name);
            ("detected", J.Bool o.detected);
            ("via", J.String o.via);
            ("expected_via", J.String expect_via);
          ])
      outcomes
  in
  let missed =
    List.length
      (List.filter
         (fun (_, o, expect_via) -> (not o.detected) || o.via <> expect_via)
         outcomes)
  in
  J.Obj
    [
      ("ops", J.Int ops);
      ("rows", J.List rows);
      ("sweep", J.List sweep);
      ("probes", J.List probe_rows);
      ("missed_probes", J.Int missed);
    ]
