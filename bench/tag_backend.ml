(* The shadow-vs-tagging frontier, measured head to head: the same
   allocator-driving workloads run under the eager shadow-pool scheme
   and under [Runtime.Schemes.tagged], and each row records where the
   cost moved — shadow pays protection syscalls per heap op and burns
   VA for aliases; tagging pays a software check on every access and
   burns neither.

   The section also proves the backend's detection story at bench
   scale: seeded dangling probes (UAF load, UAF store, double free,
   use after pool destroy) must all fault under the plain (Full-mode)
   tagged scheme; a tag_bits=2 wrap demo must record both the
   generation wraps and the attributed masked passes; and a 1/2/4/8
   shard farm run under the tagged backend must keep merged detections
   and syscalls invariant across shard counts, like every other
   scheme.  validate_results pins all of it. *)

module J = Telemetry.Json
module F = Danguard_farm.Farm
module Scheduler = Danguard_farm.Scheduler

(* Same workload shapes as the epoch section, so the two frontier rows
   (epoch vs tagged) are comparable against the same eager baseline. *)
let churn (scheme : Runtime.Scheme.t) ~ops =
  for i = 1 to ops do
    let a = scheme.Runtime.Scheme.malloc ~site:"tag_bench.c:10" 48 in
    scheme.Runtime.Scheme.store a ~width:8 i;
    ignore (scheme.Runtime.Scheme.load a ~width:8);
    scheme.Runtime.Scheme.free ~site:"tag_bench.c:11" a
  done

let mixed (scheme : Runtime.Scheme.t) ~ops =
  let ring = Array.make 32 None in
  for i = 0 to ops - 1 do
    let size = if i land 1 = 0 then 48 else 112 in
    let a = scheme.Runtime.Scheme.malloc ~site:"tag_bench.c:20" size in
    scheme.Runtime.Scheme.store a ~width:8 i;
    (match ring.(i mod 32) with
     | Some old ->
       ignore (scheme.Runtime.Scheme.load old ~width:8);
       scheme.Runtime.Scheme.free ~site:"tag_bench.c:21" old
     | None -> ());
    ring.(i mod 32) <- Some a
  done;
  Array.iter
    (function
      | Some a -> scheme.Runtime.Scheme.free ~site:"tag_bench.c:22" a
      | None -> ())
    ring

let workloads = [ ("churn", churn); ("mixed", mixed) ]

type run_stats = {
  per_op : float;
  heap_ops : int;
  accesses : int;
  va_pages : int;
  cycles : float;
}

let measure make_scheme workload ~ops =
  let machine = Vmm.Machine.create () in
  let scheme : Runtime.Scheme.t = make_scheme machine in
  workload scheme ~ops;
  let s = Vmm.Stats.snapshot machine.Vmm.Machine.stats in
  ( {
      per_op = Option.value (Vmm.Stats.syscalls_per_op s) ~default:0.0;
      heap_ops = Vmm.Stats.heap_ops s;
      accesses = s.Vmm.Stats.loads + s.Vmm.Stats.stores;
      va_pages = Vmm.Machine.va_bytes_used machine / Vmm.Addr.page_size;
      cycles = Vmm.Machine.cycles machine;
    },
    scheme )

let tag_stats_of scheme =
  match Runtime.Schemes.introspect scheme with
  | Runtime.Schemes.Tagged { table; _ } -> Tagging.Tag_table.stats table
  | _ -> assert false

(* ---- seeded probes: Full-mode tagged detection must be total ---- *)

type probe_outcome = { detected : bool }

let with_tagged f =
  let scheme = Runtime.Schemes.tagged (Vmm.Machine.create ()) in
  f scheme

let probe_uaf_load () =
  with_tagged (fun s ->
      let a = s.Runtime.Scheme.malloc ~site:"probe.c:1" 48 in
      s.Runtime.Scheme.store a ~width:8 7;
      s.Runtime.Scheme.free ~site:"probe.c:2" a;
      match s.Runtime.Scheme.load a ~width:8 with
      | _ -> { detected = false }
      | exception Shadow.Report.Violation _ -> { detected = true })

let probe_uaf_store () =
  with_tagged (fun s ->
      let a = s.Runtime.Scheme.malloc ~site:"probe.c:3" 48 in
      s.Runtime.Scheme.free ~site:"probe.c:4" a;
      match s.Runtime.Scheme.store a ~width:8 1 with
      | _ -> { detected = false }
      | exception Shadow.Report.Violation _ -> { detected = true })

let probe_double_free () =
  with_tagged (fun s ->
      let a = s.Runtime.Scheme.malloc ~site:"probe.c:5" 48 in
      s.Runtime.Scheme.free ~site:"probe.c:6" a;
      match s.Runtime.Scheme.free ~site:"probe.c:7" a with
      | _ -> { detected = false }
      | exception Shadow.Report.Violation _ -> { detected = true })

let probe_pool_destroy () =
  with_tagged (fun s ->
      let h = s.Runtime.Scheme.pool_create () in
      let a = h.Runtime.Scheme.pool_alloc ~site:"probe.c:8" 32 in
      s.Runtime.Scheme.store a ~width:8 3;
      h.Runtime.Scheme.pool_destroy ();
      match s.Runtime.Scheme.load a ~width:8 with
      | _ -> { detected = false }
      | exception Shadow.Report.Violation _ -> { detected = true })

let probes =
  [
    ("uaf-load", probe_uaf_load);
    ("uaf-store", probe_uaf_store);
    ("double-free", probe_double_free);
    ("use-after-pool-destroy", probe_pool_destroy);
  ]

(* ---- the wraparound demo the validator pins ---- *)

let wrap_demo () =
  (* tag_bits=2 makes the wrap reachable in 4 frees; the wide
     generation attributes the resulting masked pass exactly. *)
  let machine = Vmm.Machine.create () in
  let table = Tagging.Tag_table.create ~tag_bits:2 machine in
  let base = Vmm.Kernel.mmap machine ~pages:1 in
  let p0 = Tagging.Tag_table.register table ~base ~size:16 ~site:"wrap.c:1" in
  ignore (Tagging.Tag_table.free table p0 ~site:"wrap.c:2");
  for _ = 2 to 4 do
    let p = Tagging.Tag_table.register table ~base ~size:16 ~site:"wrap.c:1" in
    ignore (Tagging.Tag_table.free table p ~site:"wrap.c:2")
  done;
  ignore (Tagging.Tag_table.register table ~base ~size:16 ~site:"wrap.c:3");
  let passed =
    match Tagging.Tag_table.check_access table p0 ~access:Vmm.Perm.Read with
    | Some _ -> true
    | None -> false
    | exception Shadow.Report.Violation _ -> false
  in
  (Tagging.Tag_table.stats table, passed)

(* ---- farm rows under the tagged backend ---- *)

let shard_counts = [ 1; 2; 4; 8 ]
let seed = 0x5eed
let probe_every = 8

let run ~smoke () =
  print_endline
    "\n== Tagged backend (per-access checks vs shadow's syscalls and VA) ==";
  let ops = if smoke then 1_024 else 8_192 in
  let rows =
    List.map
      (fun (name, workload) ->
        let shadow, _ =
          measure (fun m -> Runtime.Schemes.shadow_pool m) workload ~ops
        in
        let tagged, tagged_scheme =
          measure (fun m -> Runtime.Schemes.tagged m) workload ~ops
        in
        let ts = tag_stats_of tagged_scheme in
        let checks_per_access =
          float_of_int ts.Tagging.Tag_table.tag_checks
          /. float_of_int (max 1 tagged.accesses)
        in
        Printf.printf
          "  %-6s shadow: %6.3f syscalls/op %6d VA pages | tagged: %6.3f \
           syscalls/op %6d VA pages, %.2f checks/access, table %d B\n"
          name shadow.per_op shadow.va_pages tagged.per_op tagged.va_pages
          checks_per_access ts.Tagging.Tag_table.table_bytes;
        J.Obj
          [
            ("workload", J.String name);
            ("heap_ops", J.Int tagged.heap_ops);
            ("shadow_syscalls_per_op", J.Float shadow.per_op);
            ("shadow_va_pages", J.Int shadow.va_pages);
            ("shadow_cycles", J.Float shadow.cycles);
            ("tagged_syscalls_per_op", J.Float tagged.per_op);
            ("tagged_va_pages", J.Int tagged.va_pages);
            ("tagged_cycles", J.Float tagged.cycles);
            ("tag_checks", J.Int ts.Tagging.Tag_table.tag_checks);
            ("tag_faults", J.Int ts.Tagging.Tag_table.tag_faults);
            ("generation_wraps", J.Int ts.Tagging.Tag_table.generation_wraps);
            ( "wrap_masked_passes",
              J.Int ts.Tagging.Tag_table.wrap_masked_passes );
            ("table_bytes", J.Int ts.Tagging.Tag_table.table_bytes);
            ("checks_per_access", J.Float checks_per_access);
          ])
      workloads
  in
  (* server row: the per-connection VA appetite of both backends *)
  let server_row =
    let run config =
      Harness.Experiment.run_server ~connections:(if smoke then 8 else 24)
        Workload.Servers.ghttpd config
    in
    let shadow = run Harness.Experiment.ours in
    let tagged = run Harness.Experiment.tagged in
    Printf.printf
      "  ghttpd shadow: %6d VA bytes/conn | tagged: %6d VA bytes/conn\n"
      shadow.Runtime.Process.max_va_bytes_per_connection
      tagged.Runtime.Process.max_va_bytes_per_connection;
    J.Obj
      [
        ("server", J.String "ghttpd");
        ( "shadow_max_va_bytes_per_connection",
          J.Int shadow.Runtime.Process.max_va_bytes_per_connection );
        ( "tagged_max_va_bytes_per_connection",
          J.Int tagged.Runtime.Process.max_va_bytes_per_connection );
        ("shadow_detections", J.Int shadow.Runtime.Process.detections);
        ("tagged_detections", J.Int tagged.Runtime.Process.detections);
      ]
  in
  let probe_outcomes =
    List.map
      (fun (name, probe) ->
        let o = probe () in
        Printf.printf "  probe %-24s detected=%b\n" name o.detected;
        (name, o))
      probes
  in
  let probe_rows =
    List.map
      (fun (name, o) ->
        J.Obj [ ("name", J.String name); ("detected", J.Bool o.detected) ])
      probe_outcomes
  in
  let missed =
    List.length (List.filter (fun (_, o) -> not o.detected) probe_outcomes)
  in
  let wrap_stats, wrap_passed = wrap_demo () in
  Printf.printf
    "  wrap demo (tag_bits=2): %d wraps, %d attributed masked passes\n"
    wrap_stats.Tagging.Tag_table.generation_wraps
    wrap_stats.Tagging.Tag_table.wrap_masked_passes;
  let farm_rows =
    print_endline "  -- tagged backend farm (ghttpd, 1/2/4/8 shards) --";
    List.map
      (fun shards ->
        let r =
          F.run_server ~policy:Scheduler.Round_robin ~seed ~probe_every
            ~config:Harness.Experiment.tagged ~shards
            ~connections:(if smoke then 32 else 96)
            Workload.Servers.ghttpd
        in
        Printf.printf "  %-7d %14.0f %12.3f %11d %9d\n" r.F.shards
          r.F.makespan_cycles r.F.throughput r.F.totals.F.detections
          r.F.totals.F.syscalls;
        J.Obj
          [
            ("shards", J.Int r.F.shards);
            ("makespan_cycles", J.Float r.F.makespan_cycles);
            ("throughput_conn_per_mcycle", J.Float r.F.throughput);
            ("connections", J.Int r.F.totals.F.connections);
            ("detections", J.Int r.F.totals.F.detections);
            ("syscalls", J.Int r.F.totals.F.syscalls);
          ])
      shard_counts
  in
  J.Obj
    [
      ("ops", J.Int ops);
      ("rows", J.List rows);
      ("server", server_row);
      ("probes", J.List probe_rows);
      ("missed_probes", J.Int missed);
      ( "wrap",
        J.Obj
          [
            ("tag_bits", J.Int 2);
            ( "generation_wraps",
              J.Int wrap_stats.Tagging.Tag_table.generation_wraps );
            ( "wrap_masked_passes",
              J.Int wrap_stats.Tagging.Tag_table.wrap_masked_passes );
            ("masked_pass_observed", J.Bool wrap_passed);
          ] );
      ("farm_rows", J.List farm_rows);
    ]
