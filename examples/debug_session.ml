(* debug_session: the binary-only debugging mode and the long-lived-pool
   escape hatches.

     dune exec examples/debug_session.exe

   Part 1 — §3's observation that without address-space reuse the scheme
   needs no compiler at all: wrap malloc/free of an existing binary
   (here: a workload that knows nothing about pools) and get full
   detection, Electric-Fence-style but without the physical blow-up.

   Part 2 — §3.4's strategies for long-lived pools, driving the
   interval-reuse and conservative-GC policies on an immortal global
   pool and watching address space stay bounded. *)

let part title = Printf.printf "\n==== %s ====\n" title

let () =
  part "1. binary-only mode: shadow_basic over an unmodified allocator";
  let m = Vmm.Machine.create () in
  let scheme = Runtime.Schemes.shadow_basic m in
  (* A "legacy binary": plain malloc/free calls, no pool structure. *)
  let nodes = Array.init 64 (fun i ->
      let p = scheme.Runtime.Scheme.malloc ~site:"legacy.c:load_config" 40 in
      Runtime.Workload_api.store_field scheme p 0 i;
      p)
  in
  Array.iteri
    (fun i p -> if i mod 2 = 0 then scheme.Runtime.Scheme.free ~site:"legacy.c:prune" p)
    nodes;
  (* The bug a debugger is hunting: iterating the array after pruning. *)
  let caught = ref 0 in
  Array.iter
    (fun p ->
      match scheme.Runtime.Scheme.load p ~width:8 with
      | _ -> ()
      | exception Shadow.Report.Violation r ->
        incr caught;
        if !caught = 1 then
          Printf.printf "first trap: %s\n" (Shadow.Report.to_string r))
    nodes;
  Printf.printf "caught %d stale reads out of 64 (32 were freed)\n" !caught;
  Printf.printf "physical frames: %d (Electric Fence would need ~64 + guards)\n"
    (Vmm.Frame_table.peak_frames m.Vmm.Machine.frames);
  Printf.printf "virtual pages consumed, never reused: %d (the debugging-mode cost)\n"
    (Vmm.Machine.va_bytes_used m / Vmm.Addr.page_size);

  part "2. long-lived pools: §3.4 mitigation strategies";
  Printf.printf
    "with no reuse at all, a 1M-allocs/s server exhausts 2^47 bytes in %.1f h\n"
    (Shadow.Exhaustion.paper_example_hours ());
  let run label strategy =
    let m = Vmm.Machine.create () in
    let scheme = Runtime.Schemes.shadow_pool m in
    let pool =
      match Runtime.Schemes.introspect scheme with
      | Runtime.Schemes.Shadow_pool { global; _ } -> global
      | _ -> assert false
    in
    let policy = Shadow.Reuse_policy.create strategy pool in
    for i = 1 to 3_000 do
      let a = scheme.Runtime.Scheme.malloc ~site:"immortal" 64 in
      Runtime.Workload_api.store_field scheme a 0 i;
      scheme.Runtime.Scheme.free ~site:"immortal-free" a;
      Shadow.Reuse_policy.after_free policy
    done;
    Printf.printf "  %-30s VA %9s, %4d pages reclaimed, %d gc runs\n" label
      (Harness.Table.fmt_bytes (Vmm.Machine.va_bytes_used m))
      (Shadow.Reuse_policy.reclaimed_pages policy)
      (Shadow.Reuse_policy.gc_runs policy)
  in
  print_endline "3000 allocations from an immortal (global) pool:";
  run "no mitigation" Shadow.Reuse_policy.Manual;
  run "interval reuse @ 256 pages"
    (Shadow.Reuse_policy.Interval_reuse { trigger_pages = 256 });
  run "conservative GC @ 256 pages"
    (Shadow.Reuse_policy.Conservative_gc
       { trigger_pages = 256; scan_cost_per_object = 40 });
  print_endline
    "\n(interval reuse gives up the guarantee for reclaimed pages; the GC\n\
     variant first verifies no stale pointers remain, at scan cost)"
