(* olden_demo: the worst case, quantified.

     dune exec examples/olden_demo.exe [benchmark] [scale]

   Runs one Olden kernel (default: health, the paper's 11x worst case)
   under every configuration and prints the overhead decomposition the
   paper's Table 3 is built from: how much of the slowdown is the
   per-allocation syscalls (visible in the PA+dummy column) and how much
   is extra TLB pressure (the gap between PA+dummy and ours). *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "health" in
  let batch =
    match Workload.Catalog.find_batch name with
    | Some b -> b
    | None ->
      Printf.eprintf "unknown benchmark %s\n" name;
      exit 1
  in
  let scale =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2)
    else batch.Workload.Spec.default_scale
  in
  Printf.printf "%s (scale %d): %s\n\n" name scale
    batch.Workload.Spec.description;
  let measure config =
    let r = Harness.Experiment.run_batch ~scale batch config in
    (r.Harness.Experiment.cycles, r.Harness.Experiment.stats)
  in
  let base_cycles, _ = measure Harness.Experiment.llvm_base in
  List.iter
    (fun config ->
      let cycles, stats = measure config in
      Printf.printf
        "%-24s %9sM cycles  (%.2fx)   syscalls %6d   TLB misses %7d\n"
        (Harness.Experiment.config_label config)
        (Harness.Table.fmt_cycles cycles)
        (cycles /. base_cycles)
        (Vmm.Stats.total_syscalls stats)
        stats.Vmm.Stats.tlb_misses)
    [
      Harness.Experiment.native;
      Harness.Experiment.llvm_base;
      Harness.Experiment.pa;
      Harness.Experiment.pa_dummy;
      Harness.Experiment.ours;
      Harness.Experiment.ours_basic;
      Harness.Experiment.valgrind;
    ];
  print_endline
    "\nreading the decomposition (paper §4.4): the PA+dummy column isolates\n\
     the syscall-per-allocation cost; the remaining gap to 'our-approach'\n\
     is TLB pressure from one-object-per-virtual-page placement.  For\n\
     allocation-intensive code both are large — the paper recommends the\n\
     scheme for servers, and debugging-only use for programs like these."
