(** Injection of the baseline scheme constructors into
    {!Runtime.Scheme_spec}.

    The [baseline] library depends on [runtime], so the spec catalogue
    cannot reference these constructors directly; anything that builds
    schemes from specs (the harness, the CLI, tests walking
    [Scheme_spec.all]) calls {!install} first. *)

val install : unit -> unit
(** Register Electric Fence, the Valgrind-style simulator and the
    capability checker as [Scheme_spec]'s baseline builders.
    Idempotent. *)
