let install () =
  Runtime.Scheme_spec.set_baseline_builders ~efence:Efence.scheme
    ~valgrind:Valgrind_sim.scheme ~capability:Capability_check.scheme
