open Vmm

type config = {
  quarantine_blocks : int;
  access_check_cost : int;
  dbt_factor : float;
}

let default_config =
  { quarantine_blocks = 1000; access_check_cost = 60; dbt_factor = 12.0 }

type block_state =
  | V_live
  | V_quarantined
  | V_evicted  (** really freed; memory may be re-allocated any time *)

type block = {
  base : Addr.t;
  size : int;
  alloc_site : string;
  mutable free_site : string option;
  mutable state : block_state;
}

type state = {
  config : config;
  heap : Heap.Freelist_malloc.t;
  by_page : (int, block list ref) Hashtbl.t;
  quarantine : block Queue.t;
  mutable quarantined_bytes : int;
  mutable next_id : int;
}

let index_block st block =
  for page = Addr.page_index block.base
      to Addr.page_index (block.base + block.size - 1) do
    let cell =
      match Hashtbl.find_opt st.by_page page with
      | Some cell -> cell
      | None ->
        let cell = ref [] in
        Hashtbl.replace st.by_page page cell;
        cell
    in
    (* Most recent first: a re-allocation of reused memory shadows any
       stale freed block — which is precisely the heuristic's blind spot. *)
    cell := block :: !cell
  done

(* Most recently indexed block containing the address. *)
let find_block st addr =
  match Hashtbl.find_opt st.by_page (Addr.page_index addr) with
  | None -> None
  | Some cell ->
    List.find_opt (fun b -> addr >= b.base && addr < b.base + b.size) !cell

let violation kind addr block =
  let object_info =
    Option.map
      (fun b ->
        {
          Shadow.Report.object_id = 0;
          size = b.size;
          offset = addr - b.base;
          alloc_site = b.alloc_site;
          free_site = b.free_site;
        })
      block
  in
  raise (Shadow.Report.Violation { Shadow.Report.kind; fault_addr = addr; object_info })

let charge machine n = Stats.count_instructions machine.Machine.stats n

let malloc st machine ?(site = "<unknown>") size =
  charge machine 50; (* intercept + red-zone painting *)
  let base = Heap.Freelist_malloc.alloc st.heap size in
  let block =
    { base; size; alloc_site = site; free_site = None; state = V_live }
  in
  index_block st block;
  base

let drain_quarantine st =
  while Queue.length st.quarantine > st.config.quarantine_blocks do
    let victim = Queue.pop st.quarantine in
    st.quarantined_bytes <- st.quarantined_bytes - victim.size;
    victim.state <- V_evicted;
    Heap.Freelist_malloc.dealloc st.heap victim.base
  done

let free st machine ?(site = "<unknown>") addr =
  charge machine 50;
  match find_block st addr with
  | Some ({ state = V_live; _ } as block) when block.base = addr ->
    block.state <- V_quarantined;
    block.free_site <- Some site;
    Queue.push block st.quarantine;
    st.quarantined_bytes <- st.quarantined_bytes + block.size;
    drain_quarantine st
  | Some ({ state = V_quarantined | V_evicted; _ } as block) ->
    violation Shadow.Report.Double_free addr (Some block)
  | Some block -> violation Shadow.Report.Invalid_free addr (Some block)
  | None -> violation Shadow.Report.Invalid_free addr None

let checked_access st machine addr =
  charge machine st.config.access_check_cost;
  match find_block st addr with
  | Some { state = V_live; _ } -> ()
  | Some ({ state = V_quarantined | V_evicted; _ } as block) ->
    violation (Shadow.Report.Use_after_free Perm.Read) addr (Some block)
  | None -> violation (Shadow.Report.Wild_access Perm.Read) addr None

let scheme ?(config = default_config) machine =
  let st =
    {
      config;
      heap = Heap.Freelist_malloc.create machine;
      by_page = Hashtbl.create 4096;
      quarantine = Queue.create ();
      quarantined_bytes = 0;
      next_id = 0;
    }
  in
  ignore st.next_id;
  let rec scheme =
    lazy
      {
        Runtime.Scheme.name = "valgrind-sim";
        machine;
        malloc = (fun ?site size -> malloc st machine ?site size);
        free = (fun ?site a -> free st machine ?site a);
        load =
          (fun addr ~width ->
            checked_access st machine addr;
            Mmu.load machine addr ~width);
        store =
          (fun addr ~width v ->
            checked_access st machine addr;
            Mmu.store machine addr ~width v);
        pool_create =
          (fun ?elem_size:_ () ->
            Runtime.Scheme.direct_pool (Lazy.force scheme));
        compute =
          (fun n ->
            charge machine (int_of_float (float_of_int n *. config.dbt_factor)));
        extra_memory_bytes =
          (fun () ->
            (* Shadow validity bits (~1/8 of heap) plus the quarantine. *)
            (Heap.Freelist_malloc.live_bytes st.heap / 8) + st.quarantined_bytes);
        guarantees_detection = false;
        introspection = Runtime.Scheme.No_introspection;
      }
  in
  Lazy.force scheme
