open Vmm

type state = { registry : Shadow.Object_registry.t; guard_pages : bool }

let malloc st machine ?(site = "<unknown>") size =
  if size <= 0 then invalid_arg "Efence.malloc: size <= 0";
  let data_pages = Addr.pages_spanning 0 size in
  let total_pages = data_pages + if st.guard_pages then 1 else 0 in
  (* Unlike the shadow scheme there is no canonical/shadow split: the one
     mapping owns its frames outright — that is exactly the flaw. *)
  let base = Kernel.mmap machine ~pages:total_pages in
  if st.guard_pages then
    Kernel.mprotect machine
      ~addr:(base + (data_pages * Addr.page_size))
      ~pages:1 Perm.No_access;
  (* Real Electric Fence places the object flush against the end of its
     page(s), so even a one-byte overrun lands on the guard page (at the
     price of leaving underruns uncaught). *)
  let user =
    if st.guard_pages then
      base + (data_pages * Addr.page_size) - ((size + 7) land lnot 7)
    else base
  in
  ignore
    (Shadow.Object_registry.register st.registry ~canonical:base
       ~shadow_base:base ~pages:data_pages ~user_addr:user ~size
       ~alloc_site:site);
  user

let free st machine ?(site = "<unknown>") addr =
  match Shadow.Object_registry.find_by_addr st.registry addr with
  | Some obj
    when obj.Shadow.Object_registry.user_addr = addr
         && obj.Shadow.Object_registry.state = Shadow.Object_registry.Live ->
    Kernel.mprotect machine ~addr:obj.Shadow.Object_registry.shadow_base
      ~pages:obj.Shadow.Object_registry.pages Perm.No_access;
    Shadow.Object_registry.mark_freed st.registry obj ~free_site:site
  | Some obj ->
    let kind =
      match obj.Shadow.Object_registry.state with
      | Shadow.Object_registry.Freed _ -> Shadow.Report.Double_free
      | Shadow.Object_registry.Live -> Shadow.Report.Invalid_free
    in
    raise
      (Shadow.Report.Violation
         {
           Shadow.Report.kind;
           fault_addr = addr;
           object_info = Some (Shadow.Detector.object_info obj);
         })
  | None ->
    raise
      (Shadow.Report.Violation
         {
           Shadow.Report.kind = Shadow.Report.Invalid_free;
           fault_addr = addr;
           object_info = None;
         })

let scheme ?(guard_pages = true) machine =
  let st = { registry = Shadow.Object_registry.create (); guard_pages } in
  let guard f = Shadow.Detector.guard st.registry ~in_free:false f in
  let rec scheme =
    lazy
      {
        Runtime.Scheme.name = "electric-fence";
        machine;
        malloc = (fun ?site size -> malloc st machine ?site size);
        free = (fun ?site a -> free st machine ?site a);
        load = (fun addr ~width -> guard (fun () -> Mmu.load machine addr ~width));
        store =
          (fun addr ~width v -> guard (fun () -> Mmu.store machine addr ~width v));
        pool_create =
          (fun ?elem_size:_ () ->
            Runtime.Scheme.direct_pool (Lazy.force scheme));
        compute = (fun n -> Stats.count_instructions machine.Machine.stats n);
        extra_memory_bytes = (fun () -> 0);
        guarantees_detection = true;
        introspection = Runtime.Scheme.No_introspection;
      }
  in
  Lazy.force scheme
