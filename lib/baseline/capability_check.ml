open Vmm

type config = { check_cost : int; update_cost : int }

let default_config = { check_cost = 10; update_cost = 15 }

(* Tagged pointers: capability id in the bits above bit 38.  Simulated
   virtual addresses stay far below 2^38, and offsets added by workloads
   never carry into the tag. *)
let tag_shift = 38
let addr_mask = (1 lsl tag_shift) - 1
let untag p = p land addr_mask
let cap_of p = p lsr tag_shift
let tag addr cap = addr lor (cap lsl tag_shift)

type cap_info = { base : Addr.t; size : int; alloc_site : string; mutable free_site : string option }

type state = {
  config : config;
  heap : Heap.Freelist_malloc.t;
  gcs : (int, cap_info) Hashtbl.t;          (** live capabilities *)
  retired : (int, cap_info) Hashtbl.t;      (** for diagnostics *)
  mutable next_cap : int;
}

let charge machine n = Stats.count_instructions machine.Machine.stats n

let violation kind fault_addr info =
  let object_info =
    Option.map
      (fun (cap, i) ->
        {
          Shadow.Report.object_id = cap;
          size = i.size;
          offset = untag fault_addr - i.base;
          alloc_site = i.alloc_site;
          free_site = i.free_site;
        })
      info
  in
  raise (Shadow.Report.Violation { Shadow.Report.kind; fault_addr; object_info })

let malloc st machine ?(site = "<unknown>") size =
  charge machine st.config.update_cost;
  let base = Heap.Freelist_malloc.alloc st.heap size in
  let cap = st.next_cap in
  st.next_cap <- st.next_cap + 1;
  Hashtbl.replace st.gcs cap { base; size; alloc_site = site; free_site = None };
  tag base cap

let check st machine access p =
  charge machine st.config.check_cost;
  let cap = cap_of p in
  if not (Hashtbl.mem st.gcs cap) then begin
    let info =
      Option.map (fun i -> (cap, i)) (Hashtbl.find_opt st.retired cap)
    in
    match info with
    | Some _ -> violation (Shadow.Report.Use_after_free access) p info
    | None -> violation (Shadow.Report.Wild_access access) p None
  end

let free st machine ?(site = "<unknown>") p =
  charge machine st.config.update_cost;
  let cap = cap_of p in
  match Hashtbl.find_opt st.gcs cap with
  | Some info when info.base = untag p ->
    info.free_site <- Some site;
    Hashtbl.remove st.gcs cap;
    Hashtbl.replace st.retired cap info;
    Heap.Freelist_malloc.dealloc st.heap info.base
  | Some info -> violation Shadow.Report.Invalid_free p (Some (cap, info))
  | None ->
    (match Hashtbl.find_opt st.retired cap with
     | Some info -> violation Shadow.Report.Double_free p (Some (cap, info))
     | None -> violation Shadow.Report.Invalid_free p None)

let scheme ?(config = default_config) machine =
  let st =
    {
      config;
      heap = Heap.Freelist_malloc.create machine;
      gcs = Hashtbl.create 4096;
      retired = Hashtbl.create 4096;
      next_cap = 1;
    }
  in
  let rec scheme =
    lazy
      {
        Runtime.Scheme.name = "capability";
        machine;
        malloc = (fun ?site size -> malloc st machine ?site size);
        free = (fun ?site p -> free st machine ?site p);
        load =
          (fun p ~width ->
            check st machine Perm.Read p;
            Mmu.load machine (untag p) ~width);
        store =
          (fun p ~width v ->
            check st machine Perm.Write p;
            Mmu.store machine (untag p) ~width v);
        pool_create =
          (fun ?elem_size:_ () ->
            Runtime.Scheme.direct_pool (Lazy.force scheme));
        compute = (fun n -> charge machine n);
        extra_memory_bytes =
          (fun () ->
            (* GCS entry + side metadata per live capability, plus the
               retired set retained for diagnosis. *)
            (Hashtbl.length st.gcs * 48) + (Hashtbl.length st.retired * 16));
        guarantees_detection = true;
        introspection = Runtime.Scheme.No_introspection;
      }
  in
  Lazy.force scheme
