(** Typed trace events.

    One constructor per thing the simulated stack can do that is worth
    seeing on a timeline: heap traffic, pool lifecycle, kernel
    crossings, MMU faults, TLB shootdowns, and detected violations.
    Addresses and sites are plain ints/strings so the telemetry library
    stays dependency-free (the VMM depends on it, not vice versa). *)

type kind =
  | Malloc of { site : string; size : int; addr : int }
  | Free of { site : string; addr : int }
  | Pool_create of { pool : int; elem_size : int option }
  | Pool_destroy of { pool : int }
  | Syscall of { name : string; pages : int }
  | Syscall_fault of { name : string; errno : string; transient : bool }
  | Page_fault of { addr : int; access : string; fault : string }
  | Tlb_flush of { pages : int }
  | Violation of { kind : string; addr : int }
  | Mode_change of { from_mode : string; to_mode : string; reason : string }
  | Gc_run of {
      scanned_words : int;  (** root + heap words the mark phase visited *)
      freed_ranges : int;  (** candidate freed-but-protected ranges *)
      pinned : int;  (** ranges kept because a witness was found *)
      reclaimed_pages : int;  (** shadow pages released this run *)
    }  (** one conservative-GC cycle over a long-lived pool (§3.4) *)
  | Va_pressure of { level : string; pages_used : int; budget_pages : int }
      (** a VA-budget watermark crossing ([Shadow.Va_budget]) *)

type t = {
  seq : int;  (** recording order, a tiebreak for equal timestamps *)
  at : float;  (** logical-cycle timestamp from the machine's cost model *)
  kind : kind;
}

val name : kind -> string
(** Short stable label: ["malloc"], ["syscall:mmap"], ... *)

val category : kind -> string
(** Coarse grouping for trace viewers: ["heap"], ["pool"], ["kernel"],
    ["mmu"], ["detector"]. *)

val args : kind -> (string * Json.t) list
(** The constructor's payload as JSON fields. *)

val pp : Format.formatter -> t -> unit
