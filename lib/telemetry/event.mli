(** Typed trace events.

    One constructor per thing the simulated stack can do that is worth
    seeing on a timeline: heap traffic, pool lifecycle, kernel
    crossings, MMU faults, TLB shootdowns, and detected violations.
    Addresses and sites are plain ints/strings so the telemetry library
    stays dependency-free (the VMM depends on it, not vice versa). *)

type kind =
  | Malloc of { site : string; size : int; addr : int }
  | Free of { site : string; addr : int }
  | Pool_create of { pool : int; elem_size : int option }
  | Pool_destroy of { pool : int }
  | Syscall of { name : string; pages : int }
  | Syscall_fault of { name : string; errno : string; transient : bool }
  | Page_fault of { addr : int; access : string; fault : string }
  | Tlb_flush of { pages : int }
  | Violation of { kind : string; addr : int }
  | Mode_change of { from_mode : string; to_mode : string; reason : string }

type t = {
  seq : int;  (** recording order, a tiebreak for equal timestamps *)
  at : float;  (** logical-cycle timestamp from the machine's cost model *)
  kind : kind;
}

val name : kind -> string
(** Short stable label: ["malloc"], ["syscall:mmap"], ... *)

val category : kind -> string
(** Coarse grouping for trace viewers: ["heap"], ["pool"], ["kernel"],
    ["mmu"], ["detector"]. *)

val args : kind -> (string * Json.t) list
(** The constructor's payload as JSON fields. *)

val pp : Format.formatter -> t -> unit
