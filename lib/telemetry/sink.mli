(** The per-machine trace attachment point.

    Every {!Vmm.Machine.t} carries a sink; instrumentation sites call
    {!emit} with a thunk, so a disabled sink costs one branch and no
    allocation — the always-on budget that keeps the Table-1 numbers
    honest.  An enabled sink stamps events with the machine's
    logical-cycle clock and stores them in a bounded ring.

    Sampling: [sample_every = n] records every n-th {!emit} event.
    {!emit_always} bypasses sampling (but not the enabled check) — used
    for rare, load-bearing events such as violations and pool
    lifecycle. *)

type t

val disabled : unit -> t
(** A sink that records nothing.  The default for every machine. *)

val create : ?capacity:int -> ?sample_every:int -> unit -> t
(** An enabled sink.  [capacity] bounds the ring (default 65536 events);
    [sample_every] is the sampling period (default 1 = record all). *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val set_clock : t -> (unit -> float) -> unit
(** Installed by [Vmm.Machine.create]: returns the machine's simulated
    cycle count. *)

val emit : t -> (unit -> Event.kind) -> unit
(** Record one samplable event; the thunk only runs if the event is
    actually recorded. *)

val emit_always : t -> (unit -> Event.kind) -> unit
(** Record regardless of the sampling period (still a no-op when
    disabled). *)

val events : t -> Event.t list
(** Retained events, oldest first. *)

val recorded : t -> int
(** Events ever recorded (including those the ring later dropped). *)

val seen : t -> int
(** Samplable emits observed while enabled (recorded or sampled away). *)

val dropped : t -> int
(** Recorded events evicted by ring wraparound. *)

val sample_every : t -> int
val clear : t -> unit
