type 'a t = {
  buf : 'a option array;
  cap : int;
  mutable total : int; (* items ever pushed *)
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity <= 0";
  { buf = Array.make capacity None; cap = capacity; total = 0 }

let push t x =
  t.buf.(t.total mod t.cap) <- Some x;
  t.total <- t.total + 1

let length t = min t.total t.cap
let capacity t = t.cap
let pushed t = t.total
let dropped t = max 0 (t.total - t.cap)

let to_list t =
  let len = length t in
  let first = t.total - len in
  List.init len (fun i ->
      match t.buf.((first + i) mod t.cap) with
      | Some x -> x
      | None -> assert false)

let clear t =
  Array.fill t.buf 0 t.cap None;
  t.total <- 0
