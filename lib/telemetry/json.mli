(** A minimal JSON value type with a printer and a parser.

    The telemetry exporters hand-roll their JSON so the library carries
    no external dependency; the parser exists chiefly so tests (and
    tools) can check exporter output for well-formedness and read it
    back. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering.  Non-finite floats render as [null]
    (JSON has no representation for them). *)

val to_string_pretty : t -> string
(** Two-space-indented rendering, for humans. *)

val pp : Format.formatter -> t -> unit

val of_string : string -> (t, string) result
(** Parse one JSON document; trailing garbage is an error.  Numbers with
    a fraction or exponent parse as [Float], others as [Int]. *)

val member : string -> t -> t option
(** [member key (Obj _)] looks up a field; [None] on missing key or
    non-object. *)
