type t = {
  mutable enabled : bool;
  mutable period : int;
  ring : Event.t Ring.t;
  mutable clock : unit -> float;
  mutable seen : int;
  mutable recorded : int;
}

let make ~enabled ~capacity ~sample_every =
  if sample_every <= 0 then invalid_arg "Sink: sample_every <= 0";
  {
    enabled;
    period = sample_every;
    ring = Ring.create ~capacity;
    clock = (fun () -> 0.);
    seen = 0;
    recorded = 0;
  }

let disabled () = make ~enabled:false ~capacity:1 ~sample_every:1

let create ?(capacity = 65536) ?(sample_every = 1) () =
  make ~enabled:true ~capacity ~sample_every

let enabled t = t.enabled
let set_enabled t b = t.enabled <- b
let set_clock t f = t.clock <- f

let record t kind =
  t.recorded <- t.recorded + 1;
  Ring.push t.ring { Event.seq = t.recorded; at = t.clock (); kind }

let emit t f =
  if t.enabled then begin
    t.seen <- t.seen + 1;
    if t.period = 1 || (t.seen - 1) mod t.period = 0 then record t (f ())
  end

let emit_always t f = if t.enabled then record t (f ())

let events t = Ring.to_list t.ring
let recorded t = t.recorded
let seen t = t.seen
let dropped t = Ring.dropped t.ring
let sample_every t = t.period

let clear t =
  Ring.clear t.ring;
  t.seen <- 0;
  t.recorded <- 0
