(** A bounded ring buffer: keeps the most recent [capacity] items and
    counts what it had to drop.  This is the storage behind the event
    trace — memory use is fixed no matter how long the run. *)

type 'a t

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] if [capacity <= 0]. *)

val push : 'a t -> 'a -> unit
(** Appends, evicting the oldest item when full. *)

val to_list : 'a t -> 'a list
(** Retained items, oldest first. *)

val length : 'a t -> int
val capacity : 'a t -> int

val pushed : 'a t -> int
(** Total items ever pushed. *)

val dropped : 'a t -> int
(** [pushed - length]: items evicted by wraparound. *)

val clear : 'a t -> unit
