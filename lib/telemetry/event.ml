type kind =
  | Malloc of { site : string; size : int; addr : int }
  | Free of { site : string; addr : int }
  | Pool_create of { pool : int; elem_size : int option }
  | Pool_destroy of { pool : int }
  | Syscall of { name : string; pages : int }
  | Syscall_fault of { name : string; errno : string; transient : bool }
  | Page_fault of { addr : int; access : string; fault : string }
  | Tlb_flush of { pages : int }
  | Violation of { kind : string; addr : int }
  | Mode_change of { from_mode : string; to_mode : string; reason : string }
  | Gc_run of {
      scanned_words : int;
      freed_ranges : int;
      pinned : int;
      reclaimed_pages : int;
    }
  | Va_pressure of { level : string; pages_used : int; budget_pages : int }

type t = {
  seq : int;
  at : float;
  kind : kind;
}

let name = function
  | Malloc _ -> "malloc"
  | Free _ -> "free"
  | Pool_create _ -> "pool-create"
  | Pool_destroy _ -> "pool-destroy"
  | Syscall { name; _ } -> "syscall:" ^ name
  | Syscall_fault { name; _ } -> "syscall-fault:" ^ name
  | Page_fault _ -> "page-fault"
  | Tlb_flush _ -> "tlb-flush"
  | Violation { kind; _ } -> "violation:" ^ kind
  | Mode_change _ -> "mode-change"
  | Gc_run _ -> "gc-run"
  | Va_pressure { level; _ } -> "va-pressure:" ^ level

let category = function
  | Malloc _ | Free _ -> "heap"
  | Pool_create _ | Pool_destroy _ -> "pool"
  | Syscall _ | Syscall_fault _ -> "kernel"
  | Page_fault _ | Tlb_flush _ -> "mmu"
  | Violation _ -> "detector"
  | Mode_change _ -> "governor"
  | Gc_run _ | Va_pressure _ -> "endurance"

let hex addr = Printf.sprintf "0x%x" addr

let args = function
  | Malloc { site; size; addr } ->
    [
      ("site", Json.String site);
      ("size", Json.Int size);
      ("addr", Json.String (hex addr));
    ]
  | Free { site; addr } ->
    [ ("site", Json.String site); ("addr", Json.String (hex addr)) ]
  | Pool_create { pool; elem_size } ->
    [
      ("pool", Json.Int pool);
      ( "elem_size",
        match elem_size with Some n -> Json.Int n | None -> Json.Null );
    ]
  | Pool_destroy { pool } -> [ ("pool", Json.Int pool) ]
  | Syscall { name; pages } ->
    [ ("name", Json.String name); ("pages", Json.Int pages) ]
  | Syscall_fault { name; errno; transient } ->
    [
      ("name", Json.String name);
      ("errno", Json.String errno);
      ("transient", Json.Bool transient);
    ]
  | Page_fault { addr; access; fault } ->
    [
      ("addr", Json.String (hex addr));
      ("access", Json.String access);
      ("fault", Json.String fault);
    ]
  | Tlb_flush { pages } -> [ ("pages", Json.Int pages) ]
  | Violation { kind; addr } ->
    [ ("kind", Json.String kind); ("addr", Json.String (hex addr)) ]
  | Mode_change { from_mode; to_mode; reason } ->
    [
      ("from", Json.String from_mode);
      ("to", Json.String to_mode);
      ("reason", Json.String reason);
    ]
  | Gc_run { scanned_words; freed_ranges; pinned; reclaimed_pages } ->
    [
      ("scanned_words", Json.Int scanned_words);
      ("freed_ranges", Json.Int freed_ranges);
      ("pinned", Json.Int pinned);
      ("reclaimed_pages", Json.Int reclaimed_pages);
    ]
  | Va_pressure { level; pages_used; budget_pages } ->
    [
      ("level", Json.String level);
      ("pages_used", Json.Int pages_used);
      ("budget_pages", Json.Int budget_pages);
    ]

let pp ppf t =
  Format.fprintf ppf "[%12.0fcy] #%-6d %-18s" t.at t.seq (name t.kind);
  List.iter
    (fun (k, v) -> Format.fprintf ppf " %s=%s" k (Json.to_string v))
    (args t.kind)
