type counter = { mutable c_value : int }
type gauge = { mutable g_value : float }

type metric =
  | Counter of counter
  | Gauge of gauge
  | Hist of Histogram.t

type t = {
  tbl : (string, metric) Hashtbl.t;
  mutable rev_names : string list;
}

let create () = { tbl = Hashtbl.create 32; rev_names = [] }

let register t name metric =
  Hashtbl.add t.tbl name metric;
  t.rev_names <- name :: t.rev_names;
  metric

let kind_label = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Hist _ -> "histogram"

let lookup t name make wanted =
  let m =
    match Hashtbl.find_opt t.tbl name with
    | Some m -> m
    | None -> register t name (make ())
  in
  match m with
  | m when kind_label m = wanted -> m
  | m ->
    invalid_arg
      (Printf.sprintf "Metrics: %S is a %s, not a %s" name (kind_label m)
         wanted)

let counter t name =
  match lookup t name (fun () -> Counter { c_value = 0 }) "counter" with
  | Counter c -> c
  | _ -> assert false

let incr ?(by = 1) c = c.c_value <- c.c_value + by
let set_counter c v = c.c_value <- v
let counter_value c = c.c_value

let gauge t name =
  match lookup t name (fun () -> Gauge { g_value = 0. }) "gauge" with
  | Gauge g -> g
  | _ -> assert false

let set_gauge g v = g.g_value <- v
let gauge_value g = g.g_value

let histogram ?buckets_per_octave t name =
  match
    lookup t name
      (fun () -> Hist (Histogram.create ?buckets_per_octave ()))
      "histogram"
  with
  | Hist h -> h
  | _ -> assert false

let names t = List.rev t.rev_names

type value = Counter_v of int | Gauge_v of float | Hist_v of Histogram.t

let value t name =
  match Hashtbl.find_opt t.tbl name with
  | None -> None
  | Some (Counter c) -> Some (Counter_v c.c_value)
  | Some (Gauge g) -> Some (Gauge_v g.g_value)
  | Some (Hist h) -> Some (Hist_v h)

let merge ~into src =
  List.iter
    (fun name ->
      match Hashtbl.find_opt src.tbl name with
      | None -> ()
      | Some (Counter c) -> incr ~by:c.c_value (counter into name)
      | Some (Gauge g) ->
        let dst = gauge into name in
        (* Gauges record levels (peaks, watermarks): max is the only
           merge that is order-independent and agrees with "the level
           the union of runs reached". *)
        set_gauge dst (Float.max (gauge_value dst) g.g_value)
      | Some (Hist h) ->
        let dst =
          histogram ~buckets_per_octave:(Histogram.buckets_per_octave h) into
            name
        in
        Histogram.merge_into ~into:dst h)
    (names src)

let hist_summary h =
  Json.Obj
    [
      ("count", Json.Int (Histogram.count h));
      ("mean", Json.Float (Histogram.mean h));
      ("p50", Json.Float (Histogram.percentile h 0.50));
      ("p90", Json.Float (Histogram.percentile h 0.90));
      ("p99", Json.Float (Histogram.percentile h 0.99));
      ("max", Json.Float (Histogram.max_value h));
    ]

let to_json t =
  let bucket wanted field =
    List.filter_map
      (fun name ->
        match Hashtbl.find_opt t.tbl name with
        | Some m when kind_label m = wanted -> Some (name, field m)
        | _ -> None)
      (names t)
  in
  Json.Obj
    [
      ( "counters",
        Json.Obj
          (bucket "counter" (function
            | Counter c -> Json.Int c.c_value
            | _ -> assert false)) );
      ( "gauges",
        Json.Obj
          (bucket "gauge" (function
            | Gauge g -> Json.Float g.g_value
            | _ -> assert false)) );
      ( "histograms",
        Json.Obj
          (bucket "histogram" (function
            | Hist h -> hist_summary h
            | _ -> assert false)) );
    ]

let pp ppf t =
  Format.pp_open_vbox ppf 0;
  List.iteri
    (fun i name ->
      if i > 0 then Format.pp_print_cut ppf ();
      match Hashtbl.find_opt t.tbl name with
      | Some (Counter c) -> Format.fprintf ppf "%s: %d" name c.c_value
      | Some (Gauge g) -> Format.fprintf ppf "%s: %g" name g.g_value
      | Some (Hist h) ->
        Format.fprintf ppf "%s: count=%d mean=%.1f p50=%.1f p90=%.1f p99=%.1f max=%.1f"
          name (Histogram.count h) (Histogram.mean h)
          (Histogram.percentile h 0.50)
          (Histogram.percentile h 0.90)
          (Histogram.percentile h 0.99)
          (Histogram.max_value h)
      | None -> ())
    (names t);
  Format.pp_close_box ppf ()
