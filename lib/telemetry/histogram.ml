type t = {
  bpo : int;
  counts : (int, int ref) Hashtbl.t; (* bucket index -> samples *)
  mutable zeros : int; (* samples <= 0, kept exact *)
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

let create ?(buckets_per_octave = 16) () =
  if buckets_per_octave <= 0 then
    invalid_arg "Histogram.create: buckets_per_octave <= 0";
  {
    bpo = buckets_per_octave;
    counts = Hashtbl.create 64;
    zeros = 0;
    count = 0;
    sum = 0.;
    min_v = 0.;
    max_v = 0.;
  }

let bucket_of t v =
  (* floor (log2 v * bpo): every bucket spans a 2^(1/bpo) ratio. *)
  int_of_float (Float.floor (Float.log2 v *. float_of_int t.bpo))

let observe t v =
  let v = Float.max v 0. in
  if t.count = 0 then begin
    t.min_v <- v;
    t.max_v <- v
  end
  else begin
    if v < t.min_v then t.min_v <- v;
    if v > t.max_v then t.max_v <- v
  end;
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v = 0. then t.zeros <- t.zeros + 1
  else
    let idx = bucket_of t v in
    match Hashtbl.find_opt t.counts idx with
    | Some r -> incr r
    | None -> Hashtbl.add t.counts idx (ref 1)

let buckets_per_octave t = t.bpo

let merge_into ~into src =
  if into.bpo <> src.bpo then
    invalid_arg
      (Printf.sprintf
         "Histogram.merge_into: buckets_per_octave mismatch (%d vs %d)"
         into.bpo src.bpo);
  if src.count > 0 then begin
    if into.count = 0 then begin
      into.min_v <- src.min_v;
      into.max_v <- src.max_v
    end
    else begin
      if src.min_v < into.min_v then into.min_v <- src.min_v;
      if src.max_v > into.max_v then into.max_v <- src.max_v
    end;
    into.count <- into.count + src.count;
    into.sum <- into.sum +. src.sum;
    into.zeros <- into.zeros + src.zeros;
    Hashtbl.iter
      (fun idx r ->
        match Hashtbl.find_opt into.counts idx with
        | Some r' -> r' := !r' + !r
        | None -> Hashtbl.add into.counts idx (ref !r))
      src.counts
  end

let merge a b =
  let t = create ~buckets_per_octave:a.bpo () in
  merge_into ~into:t a;
  merge_into ~into:t b;
  t

let count t = t.count
let sum t = t.sum
let mean t = if t.count = 0 then 0. else t.sum /. float_of_int t.count
let min_value t = t.min_v
let max_value t = t.max_v
let bucket_ratio t = Float.pow 2. (1. /. float_of_int t.bpo)

let representative t idx =
  (* Geometric midpoint of [2^(idx/bpo), 2^((idx+1)/bpo)). *)
  Float.pow 2. ((float_of_int idx +. 0.5) /. float_of_int t.bpo)

let percentile t q =
  if t.count = 0 then 0.
  else if q <= 0. then t.min_v
  else if q >= 1. then t.max_v
  else begin
    let rank =
      max 1 (int_of_float (Float.ceil (q *. float_of_int t.count)))
    in
    if rank <= t.zeros then 0.
    else begin
      let buckets =
        Hashtbl.fold (fun idx r acc -> (idx, !r) :: acc) t.counts []
        |> List.sort compare
      in
      let rec walk cum = function
        | [] -> t.max_v
        | (idx, c) :: rest ->
          let cum = cum + c in
          if rank <= cum then
            Float.min t.max_v (Float.max t.min_v (representative t idx))
          else walk cum rest
      in
      walk t.zeros buckets
    end
  end
