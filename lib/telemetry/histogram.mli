(** A log-bucketed histogram of non-negative samples.

    Buckets are geometric: [buckets_per_octave] buckets per doubling of
    the value, so a bucket spans a ratio of [2 ** (1 /
    buckets_per_octave)] and a percentile estimate is within half that
    ratio of the true sample.  Memory is proportional to the number of
    distinct occupied buckets, not to the number of samples — this is
    what lets latency percentiles stay always-on. *)

type t

val create : ?buckets_per_octave:int -> unit -> t
(** Default 16 buckets per octave (~2.2% worst-case relative error). *)

val observe : t -> float -> unit
(** Record one sample.  Negative samples are clamped to zero; zeros are
    tracked exactly in a dedicated bucket. *)

val buckets_per_octave : t -> int

val merge_into : into:t -> t -> unit
(** Fold [src]'s samples into [into]: bucket counts, zeros, count, sum
    add; extrema combine by min/max.  The result is exactly the
    histogram of the union of both sample multisets, so merging is
    associative and order-independent — the property the farm relies on
    when per-shard histograms join into one registry.  Raises
    [Invalid_argument] when the two histograms use different
    [buckets_per_octave]. *)

val merge : t -> t -> t
(** Fresh histogram holding both inputs' samples (see {!merge_into}). *)

val count : t -> int
val sum : t -> float
val mean : t -> float
(** 0 when empty. *)

val min_value : t -> float
val max_value : t -> float
(** Exact observed extrema; 0 when empty. *)

val percentile : t -> float -> float
(** [percentile t q] for [q] in [0,1]: the value at rank [ceil (q *
    count)], estimated as the geometric midpoint of its bucket and
    clamped to the observed extrema.  [q <= 0] gives the minimum, [q >=
    1] the maximum, and an empty histogram gives 0. *)

val bucket_ratio : t -> float
(** The ratio spanned by one bucket, [2 ** (1 / buckets_per_octave)]:
    the worst-case multiplicative error bound of {!percentile}. *)
