type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---- printing ---- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec emit ~indent ~level buf t =
  let nl pad =
    match indent with
    | None -> ()
    | Some step ->
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (step * pad) ' ')
  in
  let seq open_c close_c items each =
    Buffer.add_char buf open_c;
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        nl (level + 1);
        each x)
      items;
    if items <> [] then nl level;
    Buffer.add_char buf close_c
  in
  match t with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape buf s
  | List items ->
    seq '[' ']' items (fun x -> emit ~indent ~level:(level + 1) buf x)
  | Obj fields ->
    seq '{' '}' fields (fun (k, v) ->
        escape buf k;
        Buffer.add_string buf (if indent = None then ":" else ": ");
        emit ~indent ~level:(level + 1) buf v)

let render indent t =
  let buf = Buffer.create 256 in
  emit ~indent ~level:0 buf t;
  Buffer.contents buf

let to_string t = render None t
let to_string_pretty t = render (Some 2) t
let pp ppf t = Format.pp_print_string ppf (to_string t)

(* ---- parsing ---- *)

exception Bad of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let add_utf8 buf code =
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        (if !pos >= n then fail "unterminated escape");
        let e = s.[!pos] in
        advance ();
        (match e with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'u' ->
           if !pos + 4 > n then fail "truncated \\u escape";
           let hex = String.sub s !pos 4 in
           pos := !pos + 4;
           (match int_of_string_opt ("0x" ^ hex) with
            | Some code -> add_utf8 buf code
            | None -> fail "bad \\u escape")
         | _ -> fail "bad escape");
        go ()
      end
      else begin
        Buffer.add_char buf c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    let has_frac =
      String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text
    in
    if has_frac then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields (kv :: acc)
          | Some '}' ->
            advance ();
            List.rev (kv :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None
