(** Exporters for recorded events: pretty text, JSON-lines, and the
    Chrome [trace_event] format (loadable in [about://tracing] and
    Perfetto).

    Chrome timestamps are microseconds; logical cycles are converted at
    1 GHz (1000 cycles = 1 us), which keeps traces readable without
    pretending to wall-clock accuracy. *)

val event_to_json : Event.t -> Json.t
(** One flat object: [{"seq", "cycles", "type", "cat", ...args}]. *)

val to_jsonl : Event.t list -> string
(** One {!event_to_json} object per line. *)

val chrome_trace : ?pid:int -> ?tid:int -> Event.t list -> Json.t
(** The [{"traceEvents": [...]}] envelope; every event becomes an
    instant event (["ph": "i"]). *)

val to_chrome_string : ?pid:int -> ?tid:int -> Event.t list -> string

val chrome_trace_grouped :
  ?name_of_pid:(int -> string) -> (int * int * Event.t list) list -> Json.t
(** Multi-lane trace: each [(pid, tid, events)] group renders as its
    own process/thread lane — the farm passes one group per shard, so
    a trace of an 8-shard run shows 8 labelled lanes instead of one
    merged pile.  [name_of_pid] names the process lanes (default
    ["shard %d"]) via [process_name] metadata records. *)

val to_chrome_string_grouped :
  ?name_of_pid:(int -> string) -> (int * int * Event.t list) list -> string

val derived_metrics : Metrics.t -> (string * float) list
(** Ratios derived from the registry's raw counters, addressed by
    name: currently ["vmm.syscalls_per_op"] — protection syscalls
    (mremap + mprotect + munmap) per heap operation (alloc + free) —
    present only when the registry saw allocator traffic
    ([vmm.alloc_ops + vmm.free_ops > 0]). *)

val derived_to_json : Metrics.t -> Json.t
(** {!derived_metrics} as a flat [{"name": value}] object. *)

val to_prometheus : Metrics.t -> string
(** Prometheus text exposition of a registry: counters (name suffixed
    [_total] when missing), gauges, and histograms as summaries
    (quantiles 0.5/0.9/0.99 plus [_sum]/[_count]).  A metric name may
    carry a literal label block — [crash_total{signature="..."}] — the
    block passes through verbatim and only the base name is sanitised
    to the metric-name grammar; one [# TYPE] line is emitted per base
    family.  {!derived_metrics} are appended as gauges. *)

val to_text : Event.t list -> string
(** One pretty line per event. *)
