(** Exporters for recorded events: pretty text, JSON-lines, and the
    Chrome [trace_event] format (loadable in [about://tracing] and
    Perfetto).

    Chrome timestamps are microseconds; logical cycles are converted at
    1 GHz (1000 cycles = 1 us), which keeps traces readable without
    pretending to wall-clock accuracy. *)

val event_to_json : Event.t -> Json.t
(** One flat object: [{"seq", "cycles", "type", "cat", ...args}]. *)

val to_jsonl : Event.t list -> string
(** One {!event_to_json} object per line. *)

val chrome_trace : ?pid:int -> ?tid:int -> Event.t list -> Json.t
(** The [{"traceEvents": [...]}] envelope; every event becomes an
    instant event (["ph": "i"]). *)

val to_chrome_string : ?pid:int -> ?tid:int -> Event.t list -> string

val to_text : Event.t list -> string
(** One pretty line per event. *)
