(** A metrics registry: named counters, gauges, and histograms.

    Handles are get-or-create — [counter t "vmm.faults"] returns the
    same counter every time — so instrumentation sites need no setup
    order.  Registration order is preserved for stable export. *)

type t

type counter
type gauge

val create : unit -> t

val counter : t -> string -> counter
(** Raises [Invalid_argument] if the name is registered as another
    metric kind. *)

val incr : ?by:int -> counter -> unit
val set_counter : counter -> int -> unit
val counter_value : counter -> int

val gauge : t -> string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram : ?buckets_per_octave:int -> t -> string -> Histogram.t
(** [buckets_per_octave] only applies on first creation. *)

val names : t -> string list
(** Registered metric names, in registration order. *)

(** A metric's current value, for exporters that walk a registry
    generically ({!Export.to_prometheus}). *)
type value = Counter_v of int | Gauge_v of float | Hist_v of Histogram.t

val value : t -> string -> value option
(** The value registered under [name], if any.  The histogram is the
    live handle, not a copy. *)

val merge : into:t -> t -> unit
(** Fold every metric of the source registry into [into], get-or-create
    by name: counters add, gauges take the max, histograms merge sample
    multisets ({!Histogram.merge_into}).  All three operations are
    commutative and associative, so merging shard registries is
    order-independent and equal to one registry fed all the samples —
    the farm's join-time contract.  Raises [Invalid_argument] if a name
    is registered with different metric kinds in the two registries, or
    if two histograms disagree on [buckets_per_octave]. *)

val to_json : t -> Json.t
(** [{"counters": {...}, "gauges": {...}, "histograms": {name:
    {count, mean, p50, p90, p99, max}}}]. *)

val pp : Format.formatter -> t -> unit
(** One metric per line, for humans. *)
