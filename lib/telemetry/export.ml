let event_to_json (e : Event.t) =
  Json.Obj
    ([
       ("seq", Json.Int e.seq);
       ("cycles", Json.Float e.at);
       ("type", Json.String (Event.name e.kind));
       ("cat", Json.String (Event.category e.kind));
     ]
    @ Event.args e.kind)

let to_jsonl events =
  let buf = Buffer.create 1024 in
  List.iter
    (fun e ->
      Buffer.add_string buf (Json.to_string (event_to_json e));
      Buffer.add_char buf '\n')
    events;
  Buffer.contents buf

let cycles_per_us = 1000.

let chrome_event ~pid ~tid (e : Event.t) =
  Json.Obj
    [
      ("name", Json.String (Event.name e.kind));
      ("cat", Json.String (Event.category e.kind));
      ("ph", Json.String "i");
      ("s", Json.String "t");
      ("ts", Json.Float (e.at /. cycles_per_us));
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("args", Json.Obj (Event.args e.kind));
    ]

let chrome_trace ?(pid = 1) ?(tid = 1) events =
  Json.Obj
    [
      ("traceEvents", Json.List (List.map (chrome_event ~pid ~tid) events));
      ("displayTimeUnit", Json.String "ms");
    ]

let to_chrome_string ?pid ?tid events =
  Json.to_string (chrome_trace ?pid ?tid events)

(* Farm traces: one (pid, tid, events) group per shard so the viewer
   renders one lane per shard instead of piling every domain's events
   onto pid 1/tid 1.  A ["ph": "M"] process_name metadata record per
   distinct pid gives the lanes their labels. *)
let chrome_trace_grouped ?(name_of_pid = Printf.sprintf "shard %d") groups =
  let pids = List.sort_uniq compare (List.map (fun (pid, _, _) -> pid) groups) in
  let meta =
    List.map
      (fun pid ->
        Json.Obj
          [
            ("name", Json.String "process_name");
            ("ph", Json.String "M");
            ("pid", Json.Int pid);
            ("tid", Json.Int 0);
            ("args", Json.Obj [ ("name", Json.String (name_of_pid pid)) ]);
          ])
      pids
  in
  let events =
    List.concat_map
      (fun (pid, tid, events) -> List.map (chrome_event ~pid ~tid) events)
      groups
  in
  Json.Obj
    [
      ("traceEvents", Json.List (meta @ events));
      ("displayTimeUnit", Json.String "ms");
    ]

let to_chrome_string_grouped ?name_of_pid groups =
  Json.to_string (chrome_trace_grouped ?name_of_pid groups)

(* Prometheus text exposition.  Registry names may carry a label block
   verbatim — [fleet.crash_total{signature="...",kind="..."}] — which
   passes through untouched; only the base name is sanitised to the
   [a-zA-Z_:][a-zA-Z0-9_:]* grammar. *)
let prom_sanitize name =
  let mapped =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
        | _ -> '_')
      name
  in
  match mapped.[0] with
  | '0' .. '9' -> "_" ^ mapped
  | _ -> mapped
  | exception Invalid_argument _ -> "_"

let prom_float v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

(* Derived metrics: ratios computed from the registry's raw counters at
   export time, so readers of `danguard report` and BENCH_results.json
   do not divide two counters by hand.  Telemetry knows nothing of the
   vmm layer, so the inputs are addressed purely by counter name; a
   registry without them (or with no allocator traffic) simply derives
   nothing. *)
let counter_value metrics name =
  match Metrics.value metrics name with
  | Some (Metrics.Counter_v v) -> v
  | Some (Metrics.Gauge_v _ | Metrics.Hist_v _) | None -> 0

let derived_metrics metrics =
  let c = counter_value metrics in
  let protection =
    c "vmm.syscalls_mremap" + c "vmm.syscalls_mprotect" + c "vmm.syscalls_munmap"
  in
  let ops = c "vmm.alloc_ops" + c "vmm.free_ops" in
  if ops = 0 then []
  else
    [ ("vmm.syscalls_per_op", float_of_int protection /. float_of_int ops) ]

let derived_to_json metrics =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) (derived_metrics metrics))

let to_prometheus metrics =
  let buf = Buffer.create 1024 in
  let typed = Hashtbl.create 16 in
  let type_line base kind =
    if not (Hashtbl.mem typed base) then begin
      Hashtbl.replace typed base ();
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" base kind)
    end
  in
  (* Splice extra labels (e.g. quantile) into an existing label block. *)
  let with_label labels extra =
    match labels with
    | "" -> "{" ^ extra ^ "}"
    | l -> String.sub l 0 (String.length l - 1) ^ "," ^ extra ^ "}"
  in
  List.iter
    (fun name ->
      let base, labels =
        match String.index_opt name '{' with
        | Some i ->
          ( prom_sanitize (String.sub name 0 i),
            String.sub name i (String.length name - i) )
        | None -> (prom_sanitize name, "")
      in
      match Metrics.value metrics name with
      | None -> ()
      | Some (Metrics.Counter_v v) ->
        let base =
          if
            String.length base >= 6
            && String.sub base (String.length base - 6) 6 = "_total"
          then base
          else base ^ "_total"
        in
        type_line base "counter";
        Buffer.add_string buf (Printf.sprintf "%s%s %d\n" base labels v)
      | Some (Metrics.Gauge_v v) ->
        type_line base "gauge";
        Buffer.add_string buf
          (Printf.sprintf "%s%s %s\n" base labels (prom_float v))
      | Some (Metrics.Hist_v h) ->
        type_line base "summary";
        List.iter
          (fun q ->
            Buffer.add_string buf
              (Printf.sprintf "%s%s %s\n" base
                 (with_label labels (Printf.sprintf "quantile=\"%g\"" q))
                 (prom_float (Histogram.percentile h q))))
          [ 0.5; 0.9; 0.99 ];
        Buffer.add_string buf
          (Printf.sprintf "%s_sum%s %s\n" base labels
             (prom_float
                (Histogram.mean h *. float_of_int (Histogram.count h))));
        Buffer.add_string buf
          (Printf.sprintf "%s_count%s %d\n" base labels (Histogram.count h)))
    (Metrics.names metrics);
  List.iter
    (fun (name, v) ->
      let base = prom_sanitize name in
      type_line base "gauge";
      Buffer.add_string buf (Printf.sprintf "%s %s\n" base (prom_float v)))
    (derived_metrics metrics);
  Buffer.contents buf

let to_text events =
  let buf = Buffer.create 1024 in
  List.iter
    (fun e -> Buffer.add_string buf (Format.asprintf "%a\n" Event.pp e))
    events;
  Buffer.contents buf
