let event_to_json (e : Event.t) =
  Json.Obj
    ([
       ("seq", Json.Int e.seq);
       ("cycles", Json.Float e.at);
       ("type", Json.String (Event.name e.kind));
       ("cat", Json.String (Event.category e.kind));
     ]
    @ Event.args e.kind)

let to_jsonl events =
  let buf = Buffer.create 1024 in
  List.iter
    (fun e ->
      Buffer.add_string buf (Json.to_string (event_to_json e));
      Buffer.add_char buf '\n')
    events;
  Buffer.contents buf

let cycles_per_us = 1000.

let chrome_event ~pid ~tid (e : Event.t) =
  Json.Obj
    [
      ("name", Json.String (Event.name e.kind));
      ("cat", Json.String (Event.category e.kind));
      ("ph", Json.String "i");
      ("s", Json.String "t");
      ("ts", Json.Float (e.at /. cycles_per_us));
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("args", Json.Obj (Event.args e.kind));
    ]

let chrome_trace ?(pid = 1) ?(tid = 1) events =
  Json.Obj
    [
      ("traceEvents", Json.List (List.map (chrome_event ~pid ~tid) events));
      ("displayTimeUnit", Json.String "ms");
    ]

let to_chrome_string ?pid ?tid events =
  Json.to_string (chrome_trace ?pid ?tid events)

let to_text events =
  let buf = Buffer.create 1024 in
  List.iter
    (fun e -> Buffer.add_string buf (Format.asprintf "%a\n" Event.pp e))
    events;
  Buffer.contents buf
