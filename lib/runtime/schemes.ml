open Vmm

let raw_load machine addr ~width = Mmu.load machine addr ~width
let raw_store machine addr ~width v = Mmu.store machine addr ~width v
let compute_direct machine n = Stats.count_instructions machine.Machine.stats n

(* The enabled check lives at the call site so the disabled path never
   allocates the event thunk (closures capture site/size/addr). *)
let trace_malloc machine site size addr =
  if Telemetry.Sink.enabled machine.Machine.trace then
    Telemetry.Sink.emit machine.Machine.trace (fun () ->
        Telemetry.Event.Malloc { site; size; addr })

let trace_free machine site addr =
  if Telemetry.Sink.enabled machine.Machine.trace then
    Telemetry.Sink.emit machine.Machine.trace (fun () ->
        Telemetry.Event.Free { site; addr })

type pa_config = { dummy_syscalls : bool }

let default_pa_config = { dummy_syscalls = false }

type pool_config = { reuse_shadow_va : bool }

let default_pool_config = { reuse_shadow_va = true }

type spatial_config = { bounds_check_cost : int }

let default_spatial_config = { bounds_check_cost = 6 }

type static_config = { elide : string -> bool }

type epoch_config = {
  max_frees : int;
  max_pages : int;
  slab_copies : int;
  backstop_check_cost : int;
}

let default_epoch_config =
  { max_frees = 64; max_pages = 256; slab_copies = 16; backstop_check_cost = 2 }

type tagged_config = { tag_bits : int; tag_check_cost : int }

let default_tagged_config = { tag_bits = 8; tag_check_cost = 4 }

type elision_stats = {
  elided_allocs : int;
  elided_frees : int;
  protected_allocs : int;
  protected_frees : int;
}

type recovery_stats = {
  recovered_loads : int;
  recovered_stores : int;
  recovered_frees : int;
  pages_unprotected : int;
}

type epoch_stats = {
  epochs_retired : int;
  epoch_retired_frees : int;
  epoch_pending_frees : int;
  coalesced_protects : int;
  epoch_split_retries : int;
  epoch_failed_protects : int;
  backstop_hits : int;
  slab_calls : int;
  slab_hits : int;
  slab_misses : int;
}

type inferred_stats = {
  inferred_pools_created : int;
  inferred_pools_destroyed : int;
  live_shadow_pages : int;
  peak_shadow_pages : int;
  destroy_unmapped_pages : int;
}

type info =
  | Opaque
  | Shadow_pool of {
      global : Shadow.Shadow_pool.t;
      recycler : Apa.Page_recycler.t;
    }
  | Shadow_pool_static of {
      global : Shadow.Shadow_pool.t;
      recycler : Apa.Page_recycler.t;
      elision : unit -> elision_stats;
    }
  | Shadow_pool_epoch of {
      global : Shadow.Shadow_pool.t;
      recycler : Apa.Page_recycler.t;
      epoch : unit -> epoch_stats;
      drain : unit -> unit;
    }
  | Shadow_pool_inferred of {
      global : Shadow.Shadow_pool.t;
      inferred : unit -> inferred_stats;
    }
  | Recoverable of {
      base : Scheme.t;
      recovery : unit -> recovery_stats;
    }
  | Tagged of {
      table : Tagging.Tag_table.t;
      recycler : Apa.Page_recycler.t;
    }

(* The private carrier on the scheme record; [introspect] is the only
   reader, so the constructor never leaks. *)
type Scheme.introspection += Info of info

let introspect (scheme : Scheme.t) =
  match scheme.Scheme.introspection with
  | Info i -> i
  | _ -> Opaque

let native machine =
  let malloc_heap = Heap.Freelist_malloc.create machine in
  let rec scheme =
    lazy
      {
        Scheme.name = "native";
        machine;
        malloc =
          (fun ?(site = "<unknown>") size ->
            let a = Heap.Freelist_malloc.alloc malloc_heap size in
            Stats.count_alloc_op machine.Machine.stats;
            trace_malloc machine site size a;
            a);
        free =
          (fun ?(site = "<unknown>") a ->
            Heap.Freelist_malloc.dealloc malloc_heap a;
            Stats.count_free_op machine.Machine.stats;
            trace_free machine site a);
        load = raw_load machine;
        store = raw_store machine;
        pool_create =
          (fun ?elem_size:_ () -> Scheme.direct_pool (Lazy.force scheme));
        compute = compute_direct machine;
        extra_memory_bytes = (fun () -> 0);
        guarantees_detection = false;
        introspection = Scheme.No_introspection;
      }
  in
  Lazy.force scheme

let pool_syscall_pair machine dummy =
  if dummy then begin
    Kernel.dummy_syscall machine
  end

let pa ?(config = default_pa_config) machine =
  let { dummy_syscalls } = config in
  let recycler = Apa.Page_recycler.create () in
  let make_pool ?elem_size () =
    Apa.Pool.create ?elem_size ~reclaim:(Apa.Pool.Recycle recycler) machine
  in
  let global = make_pool () in
  let wrap_pool pool =
    {
      Scheme.pool_alloc =
        (fun ?(site = "<unknown>") size ->
          pool_syscall_pair machine dummy_syscalls;
          let a = Apa.Pool.alloc pool size in
          Stats.count_alloc_op machine.Machine.stats;
          trace_malloc machine site size a;
          a);
      pool_free =
        (fun ?(site = "<unknown>") a ->
          pool_syscall_pair machine dummy_syscalls;
          Apa.Pool.dealloc pool a;
          Stats.count_free_op machine.Machine.stats;
          trace_free machine site a);
      pool_destroy = (fun () -> Apa.Pool.destroy pool);
    }
  in
  let global_handle = wrap_pool global in
  {
    Scheme.name = (if dummy_syscalls then "pa+dummy-syscalls" else "pa");
    machine;
    malloc = (fun ?site size -> global_handle.Scheme.pool_alloc ?site size);
    free = (fun ?site a -> global_handle.Scheme.pool_free ?site a);
    load = raw_load machine;
    store = raw_store machine;
    pool_create = (fun ?elem_size () -> wrap_pool (make_pool ?elem_size ()));
    compute = compute_direct machine;
    extra_memory_bytes = (fun () -> 0);
    guarantees_detection = false;
    introspection = Scheme.No_introspection;
  }

(* The batched reclaim-path unmap every shadow pool gets: coalesced by
   [Shadow_pool.reclaim_ranges], retried here — the same injection shape
   as the epoch's [protect]. *)
let retrying_unmap machine ~addr ~pages =
  Retry.attempt machine (fun () -> Syscalls.munmap machine ~addr ~pages)

let trace_violation machine (r : Shadow.Report.t) =
  Telemetry.Sink.emit_always machine.Machine.trace (fun () ->
      Shadow.Report.to_event r)

let guarded_load machine registry addr ~width =
  try
    Shadow.Detector.guard registry ~in_free:false (fun () ->
        Mmu.load machine addr ~width)
  with Shadow.Report.Violation r as exn ->
    trace_violation machine r;
    raise exn

let guarded_store machine registry addr ~width v =
  try
    Shadow.Detector.guard registry ~in_free:false (fun () ->
        Mmu.store machine addr ~width v)
  with Shadow.Report.Violation r as exn ->
    trace_violation machine r;
    raise exn

let shadow_basic machine =
  let registry = Shadow.Object_registry.create () in
  let malloc_heap = Heap.Freelist_malloc.create machine in
  let heap =
    Shadow.Shadow_heap.create ~registry
      ~allocator:(Heap.Freelist_malloc.as_allocator malloc_heap)
      machine
  in
  let rec scheme =
    lazy
      {
        Scheme.name = "shadow-basic";
        machine;
        malloc = (fun ?site size -> Shadow.Shadow_heap.malloc heap ?site size);
        free = (fun ?site a -> Shadow.Shadow_heap.free heap ?site a);
        load = guarded_load machine registry;
        store = guarded_store machine registry;
        pool_create =
          (fun ?elem_size:_ () -> Scheme.direct_pool (Lazy.force scheme));
        compute = compute_direct machine;
        extra_memory_bytes = (fun () -> 0);
        guarantees_detection = true;
        introspection = Scheme.No_introspection;
      }
  in
  Lazy.force scheme

let shadow_pool_with_registry ?(config = default_pool_config) machine =
  let { reuse_shadow_va } = config in
  let registry = Shadow.Object_registry.create () in
  let recycler = Apa.Page_recycler.create () in
  let make_pool ?elem_size () =
    Shadow.Shadow_pool.create ?elem_size ~reuse_shadow_va ~recycler
      ~unmap:(retrying_unmap machine) ~registry machine
  in
  let global = make_pool () in
  let wrap_pool pool =
    {
      Scheme.pool_alloc =
        (fun ?site size -> Shadow.Shadow_pool.alloc pool ?site size);
      pool_free = (fun ?site a -> Shadow.Shadow_pool.free pool ?site a);
      pool_destroy = (fun () -> Shadow.Shadow_pool.destroy pool);
    }
  in
  let global_handle = wrap_pool global in
  ( {
      Scheme.name = "shadow-pool";
      machine;
      malloc = (fun ?site size -> global_handle.Scheme.pool_alloc ?site size);
      free = (fun ?site a -> global_handle.Scheme.pool_free ?site a);
      load = guarded_load machine registry;
      store = guarded_store machine registry;
      pool_create = (fun ?elem_size () -> wrap_pool (make_pool ?elem_size ()));
      compute = compute_direct machine;
      extra_memory_bytes = (fun () -> 0);
      guarantees_detection = true;
      introspection = Info (Shadow_pool { global; recycler });
    },
    registry )

let shadow_pool ?config machine = fst (shadow_pool_with_registry ?config machine)

(* Shadow-pool plus per-access software bounds checks: a spatial error
   that stays within the object's shadow page is invisible to the MMU
   (the alias covers the whole physical frame), so the combined checker
   validates the offset against the object registry before letting the
   access through — the paper's future-work "comprehensive safety
   checking tool" built from its two complementary halves. *)
let shadow_pool_spatial ?(config = default_spatial_config) machine =
  let { bounds_check_cost } = config in
  let base, registry = shadow_pool_with_registry machine in
  let bounds_violation access addr obj =
    let info =
      {
        (Shadow.Detector.object_info obj) with
        Shadow.Report.offset = addr - obj.Shadow.Object_registry.user_addr;
      }
    in
    raise
      (Shadow.Report.Violation
         {
           Shadow.Report.kind = Shadow.Report.Out_of_bounds access;
           fault_addr = addr;
           object_info = Some info;
         })
  in
  let check access addr width =
    Stats.count_instructions machine.Machine.stats bounds_check_cost;
    match Shadow.Object_registry.find_by_addr registry addr with
    | Some obj ->
      let start = obj.Shadow.Object_registry.user_addr in
      if addr < start || addr + width > start + obj.Shadow.Object_registry.size
      then bounds_violation access addr obj
    | None -> ()
  in
  {
    base with
    Scheme.name = "shadow-pool+bounds";
    load =
      (fun addr ~width ->
        check Perm.Read addr width;
        base.Scheme.load addr ~width);
    store =
      (fun addr ~width v ->
        check Perm.Write addr width;
        base.Scheme.store addr ~width v);
  }

(* The paper's "log in production" variant: a violation is reported to
   the caller's sink instead of tearing the worker down.  Recovery
   mirrors what a SEGV handler can actually do — lift the protection on
   the faulting page and restart the instruction — so a recovered read
   returns the (stale) bytes still sitting on the shared physical page.
   Violations raised by software checks (spatial bounds, free-path
   registry checks) have nothing to unprotect: the access or free is
   simply dropped, with loads yielding 0. *)
let recoverable ?(on_report = fun (_ : Shadow.Report.t) -> ())
    (base : Scheme.t) =
  let machine = base.Scheme.machine in
  let recovered_loads = ref 0 in
  let recovered_stores = ref 0 in
  let recovered_frees = ref 0 in
  let pages_unprotected = ref 0 in
  (* True when a retry of the faulting access can now succeed. *)
  let unprotect_fault fault_addr =
    match Kernel.page_perm machine fault_addr with
    | Some Perm.No_access ->
      Kernel.mprotect machine ~addr:(Addr.page_base fault_addr) ~pages:1
        Perm.Read_write;
      incr pages_unprotected;
      true
    | Some _ -> true (* software check fired; page was never protected *)
    | None -> false (* wild access: nothing is mapped there *)
  in
  let load addr ~width =
    try base.Scheme.load addr ~width
    with Shadow.Report.Violation r ->
      on_report r;
      incr recovered_loads;
      if unprotect_fault r.Shadow.Report.fault_addr then
        (* A software re-raise (e.g. the spatial bounds check) fires
           again on retry; it was already reported, so drop it. *)
        try base.Scheme.load addr ~width
        with Shadow.Report.Violation _ -> 0
      else 0
  in
  let store addr ~width v =
    try base.Scheme.store addr ~width v
    with Shadow.Report.Violation r ->
      on_report r;
      incr recovered_stores;
      if unprotect_fault r.Shadow.Report.fault_addr then (
        try base.Scheme.store addr ~width v
        with Shadow.Report.Violation _ -> ())
  in
  (* A trapping free (double or invalid) leaves the heap untouched, so
     recovery is simply to skip it. *)
  let wrap_free free ?site a =
    try free ?site a
    with Shadow.Report.Violation r ->
      on_report r;
      incr recovered_frees
  in
  let wrap_handle (h : Scheme.pool_handle) =
    { h with Scheme.pool_free = wrap_free h.Scheme.pool_free }
  in
  let recovery () =
    {
      recovered_loads = !recovered_loads;
      recovered_stores = !recovered_stores;
      recovered_frees = !recovered_frees;
      pages_unprotected = !pages_unprotected;
    }
  in
  {
    base with
    Scheme.name = base.Scheme.name ^ "+recover";
    load;
    store;
    free = wrap_free base.Scheme.free;
    pool_create =
      (fun ?elem_size () -> wrap_handle (base.Scheme.pool_create ?elem_size ()));
    introspection = Info (Recoverable { base; recovery });
  }

(* Shadow-pool with a per-malloc-site protection policy from the static
   analysis: sites whose every use is provably Safe take the canonical
   allocation path (no shadow alias, no mremap/mprotect), everything
   else — including position-less sites the policy cannot vouch for —
   keeps the full scheme, so detection at May/Must sites is unchanged. *)
let shadow_pool_static ~config machine =
  let { elide } = config in
  let reuse_shadow_va = true in
  let registry = Shadow.Object_registry.create () in
  let recycler = Apa.Page_recycler.create () in
  let make_pool ?elem_size () =
    Shadow.Shadow_pool.create ?elem_size ~reuse_shadow_va ~recycler
      ~unmap:(retrying_unmap machine) ~registry machine
  in
  let elided_allocs = ref 0 in
  let elided_frees = ref 0 in
  let protected_allocs = ref 0 in
  let protected_frees = ref 0 in
  let wrap_pool pool =
    {
      Scheme.pool_alloc =
        (fun ?(site = "<unknown>") size ->
          if elide site then begin
            let a = Shadow.Shadow_pool.alloc_elided pool size in
            incr elided_allocs;
            trace_malloc machine site size a;
            a
          end
          else begin
            incr protected_allocs;
            Shadow.Shadow_pool.alloc pool ~site size
          end);
      pool_free =
        (fun ?site a ->
          if Shadow.Shadow_pool.free_elided pool a then begin
            incr elided_frees;
            trace_free machine (Option.value site ~default:"<unknown>") a
          end
          else begin
            incr protected_frees;
            Shadow.Shadow_pool.free pool ?site a
          end);
      pool_destroy = (fun () -> Shadow.Shadow_pool.destroy pool);
    }
  in
  let global = make_pool () in
  let global_handle = wrap_pool global in
  let elision () =
    {
      elided_allocs = !elided_allocs;
      elided_frees = !elided_frees;
      protected_allocs = !protected_allocs;
      protected_frees = !protected_frees;
    }
  in
  {
    Scheme.name = "shadow-pool+static";
    machine;
    malloc = (fun ?site size -> global_handle.Scheme.pool_alloc ?site size);
    free = (fun ?site a -> global_handle.Scheme.pool_free ?site a);
    load = guarded_load machine registry;
    store = guarded_store machine registry;
    pool_create = (fun ?elem_size () -> wrap_pool (make_pool ?elem_size ()));
    compute = compute_direct machine;
    extra_memory_bytes = (fun () -> 0);
    guarantees_detection = true;
    introspection = Info (Shadow_pool_static { global; recycler; elision });
  }

(* Shadow-pool for statically inferred pool scopes (Minic.Poolify):
   every pool_create is one inferred pool, and its pool_destroy —
   placed by the analysis at the tightest non-escaping scope — releases
   the pool's entire VA footprint back to the OS.  No page recycler on
   purpose: recycling keeps ranges mapped for reuse, which is the right
   trade for the steady-state schemes but hides exactly the signal this
   scheme exists to show, that inferred scoped pools bound peak shadow
   VA (destroy issues real coalesced munmaps, counted in the stats).
   Detection is byte-for-byte [shadow_pool]'s: same registry, same
   guarded accesses, same per-object shadow protection. *)
let shadow_pool_inferred machine =
  let registry = Shadow.Object_registry.create () in
  let make_pool ?elem_size () =
    Shadow.Shadow_pool.create ?elem_size ~unmap:(retrying_unmap machine)
      ~registry machine
  in
  let pools = ref [] in
  let created = ref 0 in
  let destroyed = ref 0 in
  let unmapped = ref 0 in
  let peak = ref 0 in
  let live () =
    List.fold_left
      (fun acc p ->
        if Shadow.Shadow_pool.is_destroyed p then acc
        else acc + Shadow.Shadow_pool.shadow_pages_live p)
      0 !pools
  in
  let bump () =
    let l = live () in
    if l > !peak then peak := l
  in
  let wrap_pool pool =
    {
      Scheme.pool_alloc =
        (fun ?site size ->
          let a = Shadow.Shadow_pool.alloc pool ?site size in
          bump ();
          a);
      pool_free = (fun ?site a -> Shadow.Shadow_pool.free pool ?site a);
      pool_destroy =
        (fun () ->
          if not (Shadow.Shadow_pool.is_destroyed pool) then begin
            unmapped := !unmapped + Shadow.Shadow_pool.shadow_pages_live pool;
            incr destroyed;
            Shadow.Shadow_pool.destroy pool
          end);
    }
  in
  let global = make_pool () in
  pools := [ global ];
  let global_handle = wrap_pool global in
  let inferred () =
    {
      inferred_pools_created = !created;
      inferred_pools_destroyed = !destroyed;
      live_shadow_pages = live ();
      peak_shadow_pages = !peak;
      destroy_unmapped_pages = !unmapped;
    }
  in
  {
    Scheme.name = "shadow-pool+inferred";
    machine;
    malloc = (fun ?site size -> global_handle.Scheme.pool_alloc ?site size);
    free = (fun ?site a -> global_handle.Scheme.pool_free ?site a);
    load = guarded_load machine registry;
    store = guarded_store machine registry;
    pool_create =
      (fun ?elem_size () ->
        incr created;
        let p = make_pool ?elem_size () in
        pools := p :: !pools;
        wrap_pool p);
    compute = compute_direct machine;
    extra_memory_bytes = (fun () -> 0);
    guarantees_detection = true;
    introspection = Info (Shadow_pool_inferred { global; inferred });
  }

(* Epoch-batched shadow-pool: frees are quarantined per pool and
   retired with coalesced mprotects; shadow aliases come from slab
   pre-aliasing.  Detection inside the quarantine window is carried by
   a software backstop (the epoch's quarantine table, consulted before
   every access); after retirement the MMU path is exactly
   [shadow_pool]'s.  The batched protect goes through [Retry], and a
   run that still fails is split per object by the epoch — protection
   is never silently dropped. *)
let shadow_pool_epoch ?(config = default_epoch_config) machine =
  let { max_frees; max_pages; slab_copies; backstop_check_cost } = config in
  let registry = Shadow.Object_registry.create () in
  let recycler = Apa.Page_recycler.create () in
  let backstop_hits = ref 0 in
  let units : (Shadow.Epoch.t * Shadow.Slab.t) list ref = ref [] in
  let protect ~addr ~pages =
    Retry.attempt machine (fun () ->
        Syscalls.mprotect machine ~addr ~pages Perm.No_access)
  in
  let make_pool ?elem_size () =
    let slab = Shadow.Slab.create ~copies:slab_copies machine in
    let epoch = Shadow.Epoch.create ~max_frees ~max_pages ~protect () in
    units := (epoch, slab) :: !units;
    let pool =
      (* Slab placement supplies the shadow VA, so recycled-VA reuse for
         shadow ranges is off; canonical pages still recycle normally. *)
      Shadow.Shadow_pool.create ?elem_size ~reuse_shadow_va:false ~recycler
        ~slab ~unmap:(retrying_unmap machine) ~registry machine
    in
    (pool, epoch)
  in
  let wrap_pool (pool, epoch) =
    {
      Scheme.pool_alloc =
        (fun ?site size ->
          Syscalls.ok_or_raise ~name:"Schemes.shadow_pool_epoch.alloc"
            (Retry.attempt machine (fun () ->
                 Shadow.Shadow_pool.try_alloc pool ?site size)));
      pool_free =
        (fun ?site a ->
          let obj = Shadow.Shadow_pool.free_deferred pool ?site a in
          Shadow.Epoch.enqueue epoch obj ~release:(fun () ->
              Shadow.Shadow_pool.retire_object pool obj);
          if Shadow.Epoch.should_retire epoch then Shadow.Epoch.retire epoch);
      pool_destroy =
        (fun () ->
          (* Retire, never abandon: recycling is VA bookkeeping only, so
             an abandoned quarantine would leave in-window freed pages
             read-write after the backstop stops watching them — weaker
             than the eager scheme's post-destroy state. *)
          Shadow.Epoch.retire epoch;
          Shadow.Shadow_pool.destroy pool);
    }
  in
  (* The quarantine-window backstop: while any epoch holds pending
     frees, an access to a quarantined page is a use-after-free the MMU
     cannot see (the page is still read-write), so it is raised in
     software with the same diagnostics the trap handler would build. *)
  let backstop access addr =
    List.iter
      (fun ((epoch : Shadow.Epoch.t), _) ->
        if Shadow.Epoch.pending_frees epoch > 0 then begin
          Stats.count_instructions machine.Machine.stats backstop_check_cost;
          match Shadow.Epoch.quarantined_obj epoch addr with
          | Some obj ->
            incr backstop_hits;
            let info =
              {
                (Shadow.Detector.object_info obj) with
                Shadow.Report.offset =
                  addr - obj.Shadow.Object_registry.user_addr;
              }
            in
            let r =
              {
                Shadow.Report.kind = Shadow.Report.Use_after_free access;
                fault_addr = addr;
                object_info = Some info;
              }
            in
            trace_violation machine r;
            raise (Shadow.Report.Violation r)
          | None -> ()
        end)
      !units
  in
  let epoch_totals () =
    List.fold_left
      (fun acc (e, s) ->
        {
          epochs_retired = acc.epochs_retired + Shadow.Epoch.retirements e;
          epoch_retired_frees =
            acc.epoch_retired_frees + Shadow.Epoch.retired_frees e;
          epoch_pending_frees =
            acc.epoch_pending_frees + Shadow.Epoch.pending_frees e;
          coalesced_protects =
            acc.coalesced_protects + Shadow.Epoch.protect_calls e;
          epoch_split_retries =
            acc.epoch_split_retries + Shadow.Epoch.split_retries e;
          epoch_failed_protects =
            acc.epoch_failed_protects + Shadow.Epoch.failed_protects e;
          backstop_hits = acc.backstop_hits;
          slab_calls = acc.slab_calls + Shadow.Slab.slab_calls s;
          slab_hits = acc.slab_hits + Shadow.Slab.hits s;
          slab_misses = acc.slab_misses + Shadow.Slab.misses s;
        })
      {
        epochs_retired = 0;
        epoch_retired_frees = 0;
        epoch_pending_frees = 0;
        coalesced_protects = 0;
        epoch_split_retries = 0;
        epoch_failed_protects = 0;
        backstop_hits = !backstop_hits;
        slab_calls = 0;
        slab_hits = 0;
        slab_misses = 0;
      }
      !units
  in
  let drain () =
    List.iter (fun (e, _) -> Shadow.Epoch.retire e) !units
  in
  let ((global, _) as global_unit) = make_pool () in
  let global_handle = wrap_pool global_unit in
  {
    Scheme.name = "shadow-pool+epoch";
    machine;
    malloc = (fun ?site size -> global_handle.Scheme.pool_alloc ?site size);
    free = (fun ?site a -> global_handle.Scheme.pool_free ?site a);
    load =
      (fun addr ~width ->
        backstop Perm.Read addr;
        guarded_load machine registry addr ~width);
    store =
      (fun addr ~width v ->
        backstop Perm.Write addr;
        guarded_store machine registry addr ~width v);
    pool_create = (fun ?elem_size () -> wrap_pool (make_pool ?elem_size ()));
    compute = compute_direct machine;
    extra_memory_bytes = (fun () -> 0);
    guarantees_detection = true;
    introspection =
      Info (Shadow_pool_epoch { global; recycler; epoch = epoch_totals; drain });
  }

(* The pointer-tagging backend (xTag/LightDE): a generation tag in the
   pointer's high bits, checked in software against a per-granule
   generation table on every access.  No shadow aliasing and no
   protection syscalls — memory and VA recycle immediately — at the
   price of a few instructions per access and a bounded wraparound
   window, every pass through which the table counts for attribution.
   Allocator bookkeeping (headers, free-list links) goes through the
   MMU directly and is never tag-checked, exactly as the shadow schemes
   exempt it from guarded access. *)
let tagged ?(config = default_tagged_config) machine =
  let { tag_bits; tag_check_cost } = config in
  let table = Tagging.Tag_table.create ~tag_bits ~check_cost:tag_check_cost machine in
  let recycler = Apa.Page_recycler.create () in
  let make_pool ?elem_size () =
    Apa.Pool.create ?elem_size ~reclaim:(Apa.Pool.Recycle recycler) machine
  in
  (* An address the table never saw is wild; the raw MMU access decides
     (and a trap is classified just as [Shadow.Detector] would). *)
  let wild_wrap thunk =
    try thunk ()
    with Fault.Trap fault ->
      let r =
        {
          Shadow.Report.kind = Shadow.Report.Wild_access (Fault.access fault);
          fault_addr = Fault.addr fault;
          object_info = None;
        }
      in
      trace_violation machine r;
      raise (Shadow.Report.Violation r)
  in
  let checked access addr k =
    match Tagging.Tag_table.check_access table addr ~access with
    | Some raw -> wild_wrap (fun () -> k raw)
    | None -> wild_wrap (fun () -> k (Tagging.Tag_table.untag addr))
    | exception (Shadow.Report.Violation r as exn) ->
      trace_violation machine r;
      raise exn
  in
  let wrap_pool pool =
    (* untagged base -> (tagged pointer, size): the pool's live set, so
       destroy can retire every chunk the program never freed. *)
    let live = Hashtbl.create 64 in
    {
      Scheme.pool_alloc =
        (fun ?(site = "<unknown>") size ->
          let base = Apa.Pool.alloc pool size in
          let tp = Tagging.Tag_table.register table ~base ~size ~site in
          Hashtbl.replace live base tp;
          Stats.count_alloc_op machine.Machine.stats;
          trace_malloc machine site size tp;
          tp);
      pool_free =
        (fun ?(site = "<unknown>") a ->
          match Tagging.Tag_table.free table a ~site with
          | base ->
            Hashtbl.remove live base;
            Apa.Pool.dealloc pool base;
            Stats.count_free_op machine.Machine.stats;
            trace_free machine site base
          | exception (Shadow.Report.Violation r as exn) ->
            trace_violation machine r;
            raise exn);
      pool_destroy =
        (fun () ->
          Hashtbl.iter
            (fun _ tp ->
              ignore
                (Tagging.Tag_table.free table tp ~site:"<pool-destroy>"))
            live;
          Hashtbl.reset live;
          Apa.Pool.destroy pool);
    }
  in
  let global_handle = wrap_pool (make_pool ()) in
  {
    Scheme.name = "tagged";
    machine;
    malloc = (fun ?site size -> global_handle.Scheme.pool_alloc ?site size);
    free = (fun ?site a -> global_handle.Scheme.pool_free ?site a);
    load = (fun addr ~width -> checked Perm.Read addr (Mmu.load machine ~width));
    store =
      (fun addr ~width v ->
        checked Perm.Write addr (fun raw -> Mmu.store machine raw ~width v));
    pool_create = (fun ?elem_size () -> wrap_pool (make_pool ?elem_size ()));
    compute = compute_direct machine;
    extra_memory_bytes =
      (fun () -> (Tagging.Tag_table.stats table).Tagging.Tag_table.table_bytes);
    guarantees_detection = true;
    introspection = Info (Tagged { table; recycler });
  }
