(** Graceful-degradation governor for the shadow-page runtime.

    The detection guarantee depends on three syscalls per object
    lifetime ([mremap] at malloc, [mprotect] at free, [munmap]/recycle
    at pooldestroy).  When the kernel starts refusing them, a server
    that treats every failure as fatal turns a transient resource blip
    into an outage.  The governor instead steps the scheme down a
    configurable ladder of rungs, by default

    {v Full  -->  Sampled (1-in-N, GWP-ASan-style)  -->  Passthrough v}

    and — when the runtime wires in the pointer-tagging backend — a
    {e backend} ladder such as

    {v Full (shadow)  -->  Tagged (software checks)  -->  Passthrough v}

    and back up when the syscalls recover.  Every transition is
    recorded (cycle clock + allocation sequence number) and emitted as
    a telemetry [Mode_change], so any detection miss can be attributed
    to a specific degradation window — the scheme never {e silently}
    loses its guarantee.

    Down-shifts trigger on failure density: at least
    [failure_threshold] failures among the last [window] protected
    operations.  Up-shifts need [recover_after] consecutive successes
    {e and} [cooldown] allocations since the last transition (so a
    bursty fault pattern cannot make the ladder oscillate).
    Passive rungs ([Passthrough], [Tagged]) perform no protected
    syscalls at all, so they recover via an explicit probe every
    [probe_every] allocations; each failed
    probe (one that slides straight back to a passive rung) doubles the
    next probe interval, so a persistent fault storm cannot make the
    ladder flap at a fixed frequency.  Crossing
    [va_soft_budget] bytes of mapped address space permanently clamps
    the ladder below [Full] — address space never shrinks, so
    unconditional shadowing must not resume. *)

type mode =
  | Full  (** every object shadowed and protected *)
  | Sampled of int  (** 1 in [n] objects shadowed *)
  | Tagged
      (** the pointer-tagging backend carries detection: software tag
          checks, no shadow syscalls, no VA growth.  A {e passive} rung
          from the governor's perspective — it generates no protected
          syscall traffic, so recovery is probe-driven. *)
  | Passthrough  (** no shadowing at all *)

val mode_label : mode -> string

val is_passive : mode -> bool
(** Rungs that perform no protected shadow operations ([Tagged],
    [Passthrough]) and therefore recover only via probes. *)

type config = {
  sample_period : int;  (** [N] of [Sampled]'s 1-in-N *)
  failure_threshold : int;  (** failures in the window that trip a shift *)
  window : int;  (** sliding window length, in protected ops *)
  recover_after : int;  (** consecutive successes to step back up *)
  probe_every : int;  (** allocs between passive-rung recovery probes *)
  cooldown : int;  (** min allocs between transitions (up-shifts) *)
  va_soft_budget : int;  (** mapped-bytes ceiling for [Full] mode *)
  ladder : mode list;
      (** explicit rung order, most- to least-protected; must start at
          [Full] and contain no duplicates.  [[]] (the default) means
          the classic [Full; Sampled sample_period; Passthrough]. *)
}

val default_config : config

val classic_ladder : sample_period:int -> mode list
(** [[Full; Sampled sample_period; Passthrough]] — the pre-backend
    ladder, and what an empty [config.ladder] resolves to. *)

val backend_ladder : mode list
(** [[Full; Tagged; Passthrough]] — step {e backends}, not sample
    rates: shadow paging while syscalls are healthy, pointer tagging
    when they are not, raw only as the last resort. *)

type transition = {
  at_cycles : float;
  alloc_seq : int;
  from_mode : mode;
  to_mode : mode;
  reason : string;
}

type t

val create : ?config:config -> Vmm.Machine.t -> t
(** Starts in [Full].  Raises [Invalid_argument] on a config that could
    never trip or never recover. *)

val mode : t -> mode

val ladder : t -> mode list
(** The resolved rung order this governor walks. *)

val backend : t -> [ `Shadow | `Tagged | `Raw ]
(** Which detection backend the current rung routes allocations to:
    [Full]/[Sampled] are shadow paging (sampling decided per-alloc by
    {!should_protect}), [Tagged] is the tag table, [Passthrough] is
    raw. *)

val alloc_seq : t -> int

val on_alloc : t -> unit
(** Advance the allocation clock: checks the VA budget and, on passive
    rungs, the recovery probe. Call once per allocation before
    {!should_protect}. *)

val should_protect : t -> bool
(** Whether the current allocation should get a shadow alias. *)

val record_success : t -> unit
(** A protected operation's syscalls all succeeded. *)

val record_failure : t -> reason:string -> unit
(** A protected operation failed (after retries); may step the ladder
    down. *)

val step_down : t -> reason:string -> unit
(** External trip input: force one step down the ladder (no-op in
    [Passthrough]).  Used by the endurance controller when VA pressure
    reaches its degrade watermark — after GC and threshold tightening
    have already been tried — with [reason] (e.g. ["va-pressure"])
    recorded on the transition and in the [Mode_change] event like any
    internal trip. *)

val record_unprotected_free : t -> unit
(** A free had to skip page protection (kept for attribution). *)

val transitions : t -> transition list
(** All mode changes, oldest first. *)

val degraded_windows : t -> (int * int option) list
(** Allocation-sequence intervals during which the mode was not [Full];
    [None] end = still degraded. *)

val was_degraded_at : t -> alloc_seq:int -> bool

val unprotected_free_count : t -> int
val failure_count : t -> int
