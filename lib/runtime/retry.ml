open Vmm

type policy = {
  max_attempts : int;
  backoff_instructions : int;
  backoff_multiplier : int;
  max_backoff_instructions : int;
}

let default =
  {
    max_attempts = 4;
    backoff_instructions = 200;
    backoff_multiplier = 4;
    max_backoff_instructions = 20_000;
  }

let check policy =
  if policy.max_attempts < 1 then
    invalid_arg "Retry: max_attempts < 1 (at least the initial attempt runs)";
  if policy.backoff_instructions < 0 || policy.max_backoff_instructions < 0
  then invalid_arg "Retry: negative backoff";
  if policy.backoff_multiplier < 1 then
    invalid_arg "Retry: backoff_multiplier < 1 (backoff must not shrink)"

let attempt ?(policy = default) machine f =
  check policy;
  let stats = machine.Machine.stats in
  let rec go attempt_no backoff =
    match f () with
    | Ok _ as ok -> ok
    | Error (Fault_plan.Fatal _) as e -> e
    | Error (Fault_plan.Transient _) as e ->
      if attempt_no >= policy.max_attempts then e
      else begin
        (* The wait is simulated by charging instructions: the retried
           program really pays for its spinning. *)
        Stats.count_instructions stats backoff;
        Stats.count_syscall_retry stats;
        let next =
          min policy.max_backoff_instructions
            (backoff * policy.backoff_multiplier)
        in
        go (attempt_no + 1) next
      end
  in
  go 1 policy.backoff_instructions
