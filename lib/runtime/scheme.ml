type pool_handle = {
  pool_alloc : ?site:string -> int -> Vmm.Addr.t;
  pool_free : ?site:string -> Vmm.Addr.t -> unit;
  pool_destroy : unit -> unit;
}

type introspection = ..
type introspection += No_introspection

type t = {
  name : string;
  machine : Vmm.Machine.t;
  malloc : ?site:string -> int -> Vmm.Addr.t;
  free : ?site:string -> Vmm.Addr.t -> unit;
  load : Vmm.Addr.t -> width:int -> int;
  store : Vmm.Addr.t -> width:int -> int -> unit;
  pool_create : ?elem_size:int -> unit -> pool_handle;
  compute : int -> unit;
  extra_memory_bytes : unit -> int;
  guarantees_detection : bool;
  introspection : introspection;
}

let direct_pool t =
  {
    pool_alloc = t.malloc;
    pool_free = t.free;
    pool_destroy = (fun () -> ());
  }

let cycles t = Vmm.Machine.cycles t.machine
