type connection_result = {
  cycles : float;
  va_bytes : int;
  peak_frames : int;
  stats : Vmm.Stats.snapshot;
  detection : Shadow.Report.t option;
}

let fork_cost_instructions = 100_000

let run_connection ~make_scheme ~handler =
  let scheme = make_scheme () in
  let machine = scheme.Scheme.machine in
  scheme.Scheme.compute fork_cost_instructions;
  let detection =
    match handler scheme with
    | () -> None
    | exception Shadow.Report.Violation report -> Some report
  in
  {
    cycles = Vmm.Machine.cycles machine;
    va_bytes = Vmm.Machine.va_bytes_used machine;
    peak_frames = Vmm.Frame_table.peak_frames machine.Vmm.Machine.frames;
    stats = Vmm.Stats.snapshot machine.Vmm.Machine.stats;
    detection;
  }

type server_run = {
  connections : int;
  total_cycles : float;
  mean_cycles_per_connection : float;
  max_va_bytes_per_connection : int;
  total_stats : Vmm.Stats.snapshot;
  detections : int;
}

let serve ~make_scheme ~handler ~connections =
  let total_cycles = ref 0. in
  let max_va = ref 0 in
  let detections = ref 0 in
  let total_stats = ref Vmm.Stats.zero in
  for i = 0 to connections - 1 do
    let result = run_connection ~make_scheme ~handler:(handler i) in
    total_cycles := !total_cycles +. result.cycles;
    if result.va_bytes > !max_va then max_va := result.va_bytes;
    total_stats := Vmm.Stats.sum !total_stats result.stats;
    if result.detection <> None then incr detections
  done;
  {
    connections;
    total_cycles = !total_cycles;
    mean_cycles_per_connection = !total_cycles /. float_of_int (max 1 connections);
    max_va_bytes_per_connection = !max_va;
    total_stats = !total_stats;
    detections = !detections;
  }
