(** Constructors for the paper's own configurations (Table 1 columns)
    plus the pointer-tagging backend.  Related-work baselines (Electric
    Fence, Valgrind-style, capability checking) live in the [baseline]
    library.

    Every tunable lives in a per-backend config record with a documented
    default value, so adding a knob extends one record instead of
    rippling an optional argument through every call site.  The typed
    scheme catalogue over these constructors is {!Scheme_spec}. *)

(** {1 Per-backend configuration} *)

type pa_config = {
  dummy_syscalls : bool;
      (** each alloc/free performs one no-op [mremap]/[mprotect]-shaped
          syscall — the paper's "PA + dummy syscalls" column, isolating
          syscall overhead from TLB effects.  Default [false]. *)
}

val default_pa_config : pa_config

type pool_config = {
  reuse_shadow_va : bool;
      (** place new shadow ranges on recycled addresses when available,
          so steady-state VA consumption is flat; [false] reproduces the
          stricter reading of the paper in which only canonical pages
          recycle (the ablation bench measures the difference).
          Default [true]. *)
}

val default_pool_config : pool_config

type spatial_config = {
  bounds_check_cost : int;
      (** instructions charged per software bounds check.  Default 6,
          matching the few-percent overhead of the authors' companion
          spatial checker. *)
}

val default_spatial_config : spatial_config

type static_config = {
  elide : string -> bool;
      (** per-malloc-site protection policy (see
          [Minic.Dangling.elide_policy]): [true] means every use of the
          site's points-to class was proved Safe, so the allocation
          skips its shadow alias.  No default — the policy is the
          scheme's reason to exist. *)
}

type epoch_config = {
  max_frees : int;   (** quarantined frees that force retirement; 64 *)
  max_pages : int;   (** quarantined pages that force retirement; 256 *)
  slab_copies : int; (** shadow aliases per vectored slab mremap; 16 *)
  backstop_check_cost : int;
      (** instructions per access for the quarantine-window software
          check, charged only while an epoch is non-empty; 2 *)
}

val default_epoch_config : epoch_config

type tagged_config = {
  tag_bits : int;
      (** width of the hardware-checked generation tag (1..15).
          Default 8 — one tag byte per 16-byte granule, the xTag
          operating point; smaller widths wrap sooner (the differential
          harness uses 2 to provoke attributable wraparound). *)
  tag_check_cost : int;
      (** instructions charged per tag check (mask, shift, tag-byte
          load, compare).  Default 4. *)
}

val default_tagged_config : tagged_config

(** {1 Schemes} *)

val native : Vmm.Machine.t -> Scheme.t
(** The unmodified program: plain {!Heap.Freelist_malloc}, raw loads and
    stores, no pools.  A dangling use silently reads whatever the reused
    memory holds — or segfaults undiagnosed if it strays off the map. *)

val pa : ?config:pa_config -> Vmm.Machine.t -> Scheme.t
(** Automatic Pool Allocation alone (the "PA" column): allocations are
    segregated into pools with virtual-page recycling at pool destroy,
    but no shadow pages and no protection — so no detection. *)

val shadow_basic : Vmm.Machine.t -> Scheme.t
(** The basic scheme of §3.2, applicable to unmodified binaries: shadow
    pages over the ordinary allocator, full detection, but no virtual
    address reuse (pool operations degrade to plain malloc/free). *)

val shadow_pool : ?config:pool_config -> Vmm.Machine.t -> Scheme.t
(** The full approach (§3.3): shadow pages + Automatic Pool Allocation.
    Top-level [malloc]/[free] go through a global pool; [pool_create]
    makes compiler-inferred pools whose destroy recycles all pages. *)

val tagged : ?config:tagged_config -> Vmm.Machine.t -> Scheme.t
(** The pointer-tagging backend ({!Tagging.Tag_table}; xTag/LightDE in
    PAPERS.md) — the opposite point on the overhead-vs-coverage
    frontier from shadow paging.  Allocation embeds a generation tag in
    the pointer's unused high bits; every load and store pays a
    [tag_check_cost]-instruction software check of the tag against the
    per-granule generation table; free validates the tag and bumps the
    generation, so a stale pointer faults deterministically (raised as
    {!Shadow.Report.Tag_mismatch} with full alloc/free-site
    diagnostics) while the memory and its address are reused
    immediately.  No shadow aliasing, no [mremap]/[mprotect] traffic,
    no VA growth; the one coverage hole is a stale pointer whose
    generation distance is an exact multiple of [2^tag_bits], which
    passes the masked check — counted and bounded in the table's
    [wrap_masked_passes], so the differential harness can attribute
    every asymmetry against the shadow schemes.  Pool destroy retires
    every chunk still live in the pool (their granule generations bump,
    matching [pooldestroy] semantics).  Table stats are available via
    {!introspect}. *)

type elision_stats = {
  elided_allocs : int;  (** allocations served without a shadow alias *)
  elided_frees : int;   (** frees that skipped [mprotect] *)
  protected_allocs : int;
  protected_frees : int;
}

type recovery_stats = {
  recovered_loads : int;   (** loads that trapped and were resumed *)
  recovered_stores : int;  (** stores that trapped and were resumed *)
  recovered_frees : int;   (** double/invalid frees that were skipped *)
  pages_unprotected : int; (** pages whose protection was lifted *)
}

type epoch_stats = {
  epochs_retired : int;       (** retirements across all of the scheme's pools *)
  epoch_retired_frees : int;  (** frees fully completed by retirement *)
  epoch_pending_frees : int;  (** frees still quarantined right now *)
  coalesced_protects : int;   (** ranged mprotects issued at retirement *)
  epoch_split_retries : int;  (** per-object protects after a failed batch *)
  epoch_failed_protects : int;
      (** objects still unprotected after the split retry (re-quarantined) *)
  backstop_hits : int;  (** in-window UAFs caught by the software check *)
  slab_calls : int;     (** vectored slab-alias syscalls issued *)
  slab_hits : int;      (** allocations served from the slab cache *)
  slab_misses : int;    (** allocations that had to issue a slab call *)
}

type inferred_stats = {
  inferred_pools_created : int;   (** pools made by [pool_create] *)
  inferred_pools_destroyed : int; (** pools torn down (incl. global) *)
  live_shadow_pages : int;        (** shadow pages held right now *)
  peak_shadow_pages : int;        (** high-water mark of the above *)
  destroy_unmapped_pages : int;   (** shadow pages munmapped by destroys *)
}

(** What {!introspect} reveals about a scheme's internals. *)
type info =
  | Opaque  (** nothing beyond the {!Scheme.t} record's own fields *)
  | Shadow_pool of {
      global : Shadow.Shadow_pool.t;
          (** the global pool (for the §3.4 long-lived-pool experiments) *)
      recycler : Apa.Page_recycler.t;
          (** the shared page free list (for §4.3 address-space
              measurements) *)
    }
  | Shadow_pool_static of {
      global : Shadow.Shadow_pool.t;
      recycler : Apa.Page_recycler.t;
      elision : unit -> elision_stats;
          (** aggregate elision counts so far *)
    }
  | Shadow_pool_epoch of {
      global : Shadow.Shadow_pool.t;
      recycler : Apa.Page_recycler.t;
      epoch : unit -> epoch_stats;  (** aggregate batching counts so far *)
      drain : unit -> unit;
          (** force-retire every open epoch — a measurement boundary
              (bench sections) or orderly shutdown, not part of the
              steady-state protocol *)
    }
  | Shadow_pool_inferred of {
      global : Shadow.Shadow_pool.t;
      inferred : unit -> inferred_stats;
          (** pool lifecycle and shadow-VA counts so far *)
    }
  | Recoverable of {
      base : Scheme.t;
      recovery : unit -> recovery_stats;
          (** aggregate recovery counts so far *)
    }
  | Tagged of {
      table : Tagging.Tag_table.t;
          (** the generation-tag table — checks, faults, wraps and
              modeled byte overhead via [Tagging.Tag_table.stats] *)
      recycler : Apa.Page_recycler.t;
          (** the canonical-page free list (tagging recycles VA
              immediately; this is where it goes) *)
    }

val introspect : Scheme.t -> info
(** The single entry point for scheme internals.  Reads the
    [introspection] field carried on the scheme record itself — no
    global side table, so it is safe when schemes are built concurrently
    on many domains — and returns [Opaque] for schemes built by other
    libraries (baselines, governed wrappers). *)

val shadow_pool_static : config:static_config -> Vmm.Machine.t -> Scheme.t
(** {!shadow_pool} driven by a static per-malloc-site protection policy
    (see [Minic.Dangling.elide_policy]): when [elide site] is true the
    allocation is served from the canonical pages with no shadow alias —
    no [mremap] at alloc, no [mprotect] at free — because the analysis
    proved every use of that site's class Safe.  All other sites,
    including any the policy does not recognise, keep the full scheme,
    so detection at May/Must sites is exactly as in {!shadow_pool}.
    Elision counts are available via {!introspect}. *)

val shadow_pool_inferred : Vmm.Machine.t -> Scheme.t
(** {!shadow_pool} for statically inferred pool scopes ([Minic.Poolify]):
    each [pool_create] is one inferred pool and its [pool_destroy] —
    placed by the analysis at the tightest scope the class does not
    escape — returns the pool's whole VA footprint to the OS with real
    coalesced [munmap]s (no page recycler), so peak shadow VA tracks
    the inferred lifetimes instead of growing monotonically.  Detection
    is exactly {!shadow_pool}'s.  Lifecycle and page counts are
    available via {!introspect}. *)

val shadow_pool_epoch : ?config:epoch_config -> Vmm.Machine.t -> Scheme.t
(** {!shadow_pool} with epoch-batched deferred protection
    ({!Shadow.Epoch}) and slab-preallocated shadow aliases
    ({!Shadow.Slab}): a free is validated and quarantined instead of
    mprotected, and when the per-pool epoch fills ([max_frees] frees,
    default 64, or [max_pages] pages, default 256) retirement issues
    one coalesced mprotect per merged page run and only then recycles
    the canonical blocks.  Shadow aliases are drawn [slab_copies]
    (default 16) at a time from one vectored mremap.  Inside the
    quarantine window detection is software: every access pays
    [backstop_check_cost] instructions (default 2, only while an epoch
    is non-empty) to consult the quarantine table, and a hit raises the
    same {!Shadow.Report.Violation} the trap handler would.  After
    retirement detection is byte-for-byte {!shadow_pool}'s.  Batched
    protects go through {!Retry}; a run that still fails is split and
    retried per object, and objects that still fail stay quarantined.
    Batching counters are available via {!introspect}. *)

val recoverable :
  ?on_report:(Shadow.Report.t -> unit) -> Scheme.t -> Scheme.t
(** The paper's "log in production" deployment: wraps any detecting
    scheme so a {!Shadow.Report.Violation} is passed to [on_report] and
    the workload {e continues} instead of unwinding — what a production
    SEGV handler does when configured to log rather than abort.  A
    trapping access lifts the protection on the faulting page (the
    stale bytes on the shared physical page become readable again) and
    retries once; a wild access yields 0 on load and drops the store; a
    double or invalid free is skipped.  The base scheme's own violation
    trace event has already been emitted when [on_report] runs, so the
    wrapper never re-traces.  Recovery counts are available via
    {!introspect}. *)

val shadow_pool_spatial : ?config:spatial_config -> Vmm.Machine.t -> Scheme.t
(** The paper's future-work "comprehensive safety checking tool":
    {!shadow_pool} (all temporal errors, by hardware) plus a software
    bounds check per access against the object registry (spatial errors
    within the shadow page, which the MMU cannot see).  The bounds check
    costs [bounds_check_cost] instructions per access (default 6,
    matching the few-percent overhead of the authors' companion spatial
    checker). *)
