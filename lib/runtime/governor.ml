open Vmm

type mode =
  | Full
  | Sampled of int
  | Tagged
  | Passthrough

let mode_label = function
  | Full -> "full"
  | Sampled n -> Printf.sprintf "sampled-1-in-%d" n
  | Tagged -> "tagged"
  | Passthrough -> "passthrough"

(* Modes that perform no protected (shadow) operations: no
   success/failure signal can accumulate there, so recovery needs the
   periodic probe instead of [record_success] streaks. *)
let is_passive = function
  | Tagged | Passthrough -> true
  | Full | Sampled _ -> false

type config = {
  sample_period : int;
  failure_threshold : int;
  window : int;
  recover_after : int;
  probe_every : int;
  cooldown : int;
  va_soft_budget : int;
  ladder : mode list;
}

let classic_ladder ~sample_period = [ Full; Sampled sample_period; Passthrough ]
let backend_ladder = [ Full; Tagged; Passthrough ]

let default_config =
  {
    sample_period = 8;
    failure_threshold = 4;
    window = 32;
    recover_after = 16;
    probe_every = 64;
    cooldown = 32;
    va_soft_budget = max_int;
    ladder = [];
  }

type transition = {
  at_cycles : float;
  alloc_seq : int;
  from_mode : mode;
  to_mode : mode;
  reason : string;
}

type t = {
  machine : Machine.t;
  config : config;
  ladder : mode list;  (* resolved rung order, most- to least-protected *)
  mutable mode : mode;
  mutable alloc_seq : int;
  (* Sliding window of recent protected-operation outcomes
     (true = failure), capped at [config.window]. *)
  recent : bool Queue.t;
  mutable recent_failures : int;
  mutable consecutive_successes : int;
  mutable last_transition_seq : int;
  mutable va_clamped : bool;
  (* Failed recovery probes (probe up-shift followed by another
     down-shift before reaching Full) double the next probe interval, so
     a persistent fault storm cannot make the ladder flap at a fixed
     frequency; reaching Full resets the backoff. *)
  mutable probe_scale : int;
  mutable last_up_was_probe : bool;
  mutable transitions_rev : transition list;
  mutable unprotected_frees : int;
  mutable failures_total : int;
}

let check config =
  if config.sample_period < 2 then
    invalid_arg "Governor: sample_period < 2 (Sampled must skip something)";
  if config.failure_threshold < 1 then
    invalid_arg "Governor: failure_threshold < 1";
  if config.window < config.failure_threshold then
    invalid_arg "Governor: window < failure_threshold (could never trip)";
  if config.recover_after < 1 then invalid_arg "Governor: recover_after < 1";
  if config.probe_every < 1 then invalid_arg "Governor: probe_every < 1";
  if config.cooldown < 0 then invalid_arg "Governor: cooldown < 0";
  if config.va_soft_budget < 0 then invalid_arg "Governor: va_soft_budget < 0"

let resolve_ladder (config : config) =
  let ladder =
    match config.ladder with
    | [] -> classic_ladder ~sample_period:config.sample_period
    | l -> l
  in
  (match ladder with
  | Full :: _ -> ()
  | _ -> invalid_arg "Governor: ladder must start at Full");
  List.iter
    (function
      | Sampled n when n < 2 ->
        invalid_arg "Governor: ladder Sampled period < 2"
      | _ -> ())
    ladder;
  let rec dup = function
    | [] -> false
    | m :: rest -> List.mem m rest || dup rest
  in
  if dup ladder then invalid_arg "Governor: ladder has a duplicate rung";
  ladder

let create ?(config = default_config) machine =
  check config;
  {
    machine;
    config;
    ladder = resolve_ladder config;
    mode = Full;
    alloc_seq = 0;
    recent = Queue.create ();
    recent_failures = 0;
    consecutive_successes = 0;
    last_transition_seq = 0;
    va_clamped = false;
    probe_scale = 1;
    last_up_was_probe = false;
    transitions_rev = [];
    unprotected_frees = 0;
    failures_total = 0;
  }

let mode t = t.mode
let ladder t = t.ladder

let backend t =
  match t.mode with
  | Full | Sampled _ -> `Shadow
  | Tagged -> `Tagged
  | Passthrough -> `Raw

let alloc_seq t = t.alloc_seq
let transitions t = List.rev t.transitions_rev
let unprotected_free_count t = t.unprotected_frees
let failure_count t = t.failures_total

let reset_window t =
  Queue.clear t.recent;
  t.recent_failures <- 0;
  t.consecutive_successes <- 0

let shift t to_mode ~reason =
  let from_mode = t.mode in
  if to_mode <> from_mode then begin
    (match to_mode with
    | (Passthrough | Tagged) when t.last_up_was_probe ->
      (* A probe up-shift bounced straight back down to a passive rung:
         exponential backoff so a persistent fault storm cannot make the
         ladder flap at a fixed frequency. *)
      t.probe_scale <- t.probe_scale * 2
    | Full -> t.probe_scale <- 1
    | Passthrough | Tagged | Sampled _ -> ());
    t.last_up_was_probe <- reason = "probe";
    t.mode <- to_mode;
    t.last_transition_seq <- t.alloc_seq;
    reset_window t;
    t.transitions_rev <-
      {
        at_cycles = Machine.cycles t.machine;
        alloc_seq = t.alloc_seq;
        from_mode;
        to_mode;
        reason;
      }
      :: t.transitions_rev;
    Telemetry.Sink.emit_always t.machine.Machine.trace (fun () ->
        Telemetry.Event.Mode_change
          {
            from_mode = mode_label from_mode;
            to_mode = mode_label to_mode;
            reason;
          })
  end

let next_down t =
  let rec go = function
    | a :: (b :: _) when a = t.mode -> Some b
    | _ :: rest -> go rest
    | [] -> None
  in
  go t.ladder

let next_up t =
  let rec go = function
    | a :: b :: _ when b = t.mode ->
      (* VA never shrinks, so once the soft budget is crossed the
         always-protect rung stays off-limits. *)
      if a = Full && t.va_clamped then None else Some a
    | _ :: rest -> go rest
    | [] -> None
  in
  go t.ladder

let cooled_down t = t.alloc_seq - t.last_transition_seq >= t.config.cooldown

let step_down t ~reason =
  match next_down t with
  | Some m -> shift t m ~reason
  | None -> ()

let on_alloc t =
  t.alloc_seq <- t.alloc_seq + 1;
  (* Address space never shrinks, so once the soft budget is crossed the
     always-protect mode stays off-limits for the rest of the run. *)
  if (not t.va_clamped) && Machine.va_bytes_used t.machine > t.config.va_soft_budget
  then begin
    t.va_clamped <- true;
    if t.mode = Full then step_down t ~reason:"va-budget"
  end;
  (* Passive rungs (Passthrough, Tagged) perform no protected shadow
     operations, so no success signal can accumulate; recovery needs an
     explicit periodic probe. *)
  if
    is_passive t.mode
    && t.alloc_seq - t.last_transition_seq
       >= t.config.probe_every * t.probe_scale
    && cooled_down t
  then
    match next_up t with Some m -> shift t m ~reason:"probe" | None -> ()

let should_protect t =
  match t.mode with
  | Full -> true
  | Sampled n -> t.alloc_seq mod n = 0
  | Tagged | Passthrough -> false

let push_outcome t failed =
  Queue.push failed t.recent;
  if failed then t.recent_failures <- t.recent_failures + 1;
  if Queue.length t.recent > t.config.window then
    if Queue.pop t.recent then t.recent_failures <- t.recent_failures - 1

let record_success t =
  push_outcome t false;
  t.consecutive_successes <- t.consecutive_successes + 1;
  if t.consecutive_successes >= t.config.recover_after && cooled_down t then
    match next_up t with
    | Some m -> shift t m ~reason:"recovered"
    | None -> ()

let record_failure t ~reason =
  push_outcome t true;
  t.consecutive_successes <- 0;
  t.failures_total <- t.failures_total + 1;
  if t.recent_failures >= t.config.failure_threshold then
    step_down t ~reason

let record_unprotected_free t =
  t.unprotected_frees <- t.unprotected_frees + 1

(* Intervals (in alloc sequence numbers) during which the mode was not
   Full — the periods to which any detection miss must be attributed. *)
let degraded_windows t =
  let close until = function
    | Some start -> Some (start, Some until)
    | None -> None
  in
  let rec go open_window acc = function
    | [] ->
      let acc =
        match open_window with
        | Some start when t.mode <> Full -> (start, None) :: acc
        | Some start ->
          (* Shouldn't happen (a Full mode closes the window below), but
             keep the record rather than drop it. *)
          (start, None) :: acc
        | None -> acc
      in
      List.rev acc
    | tr :: rest ->
      (match (open_window, tr.to_mode) with
      | None, Full -> go None acc rest
      | None, (Sampled _ | Tagged | Passthrough) ->
        go (Some tr.alloc_seq) acc rest
      | Some _, (Sampled _ | Tagged | Passthrough) -> go open_window acc rest
      | (Some _ as w), Full ->
        (match close tr.alloc_seq w with
        | Some interval -> go None (interval :: acc) rest
        | None -> go None acc rest))
  in
  go None [] (transitions t)

let was_degraded_at t ~alloc_seq =
  List.exists
    (fun (start, stop) ->
      alloc_seq >= start
      && match stop with Some e -> alloc_seq < e | None -> true)
    (degraded_windows t)
