(** The fork-per-connection server model (§4.3).

    All five servers the paper studies fork a fresh process per client
    connection (tftpd even per command), so any virtual-address wastage
    within a connection dies with the child.  We model each connection
    as a fresh machine + scheme: the handler runs, and we harvest the
    child's cycles, its virtual-address consumption, and any detections.
    A fixed fork cost is charged to every connection. *)

type connection_result = {
  cycles : float;          (** simulated cycles spent by the child *)
  va_bytes : int;          (** virtual address space the child consumed *)
  peak_frames : int;       (** child's peak physical footprint, pages *)
  stats : Vmm.Stats.snapshot;  (** the child's full event counters *)
  detection : Shadow.Report.t option;
      (** the report, if the handler tripped a violation *)
}

val fork_cost_instructions : int
(** Instructions charged per fork (~100us of 2006-era fork+exec work). *)

val run_connection :
  make_scheme:(unit -> Scheme.t) ->
  handler:(Scheme.t -> unit) ->
  connection_result
(** Fork: build a fresh child scheme, run the handler, reap the stats.
    A {!Shadow.Report.Violation} from the handler is caught and recorded
    (the child dies; the server lives on).  Other exceptions propagate. *)

type server_run = {
  connections : int;
  total_cycles : float;
  mean_cycles_per_connection : float;
  max_va_bytes_per_connection : int;
  total_stats : Vmm.Stats.snapshot;
      (** per-child counters summed over all connections *)
  detections : int;
}

val serve :
  make_scheme:(unit -> Scheme.t) ->
  handler:(int -> Scheme.t -> unit) ->
  connections:int ->
  server_run
(** Run [connections] sequential forked connections, passing each
    handler its connection index. *)
