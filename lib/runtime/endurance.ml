type action =
  | Ran_gc
  | Tightened
  | Degraded

let action_label = function
  | Ran_gc -> "gc"
  | Tightened -> "tighten"
  | Degraded -> "degrade"

type entry = {
  action : action;
  at_level : Shadow.Va_budget.level;
  at_pages_used : int;
}

type t = {
  budget : Shadow.Va_budget.t;
  gc : Shadow.Gc.t;
  policy : Shadow.Reuse_policy.t option;
  governor : Governor.t option;
  tighten_divisor : int;
  min_trigger_pages : int;
  mutable prev_level : Shadow.Va_budget.level;
  mutable actions_rev : entry list;
  mutable last_report : Shadow.Gc.report option;
}

let create ?policy ?governor ?(tighten_divisor = 4) ?(min_trigger_pages = 1)
    ~budget gc =
  if tighten_divisor < 2 then
    invalid_arg "Endurance.create: tighten_divisor < 2";
  if min_trigger_pages < 1 then
    invalid_arg "Endurance.create: min_trigger_pages < 1";
  {
    budget;
    gc;
    policy;
    governor;
    tighten_divisor;
    min_trigger_pages;
    prev_level = Shadow.Va_budget.L_ok;
    actions_rev = [];
    last_report = None;
  }

let note t action =
  t.actions_rev <-
    {
      action;
      at_level = Shadow.Va_budget.level t.budget;
      at_pages_used = Shadow.Va_budget.used_pages t.budget;
    }
    :: t.actions_rev

let run_gc t =
  let pool = Shadow.Gc.pool t.gc in
  if Shadow.Shadow_pool.freed_shadow_pages pool > 0 then begin
    let report = Shadow.Gc.run t.gc in
    t.last_report <- Some report;
    note t Ran_gc;
    Some report
  end
  else None

let tighten t =
  match t.policy with
  | Some policy ->
    (match Shadow.Reuse_policy.trigger_pages policy with
    | Some trigger when trigger > t.min_trigger_pages ->
      Shadow.Reuse_policy.set_trigger_pages policy
        (max t.min_trigger_pages (trigger / t.tighten_divisor));
      note t Tightened
    | Some _ | None -> ())
  | None -> ()

let degrade t =
  match t.governor with
  | Some g ->
    Governor.step_down g ~reason:"va-pressure";
    note t Degraded
  | None -> ()

(* The ordered §3.4 response.  GC runs at every level at or above L_gc;
   tightening and degradation fire once per upward crossing of their
   watermark, so sustained pressure does not hammer the ladder — and the
   action log provably shows gc-first, tighten-second, degrade-last. *)
let tick t =
  let open Shadow.Va_budget in
  let prev = t.prev_level in
  let level = poll t.budget in
  t.prev_level <- level;
  let crossed l = level_rank level >= level_rank l && level_rank prev < level_rank l in
  let report =
    if level_rank level >= level_rank L_gc then run_gc t else None
  in
  if crossed L_tighten then tighten t;
  if crossed L_degrade then degrade t;
  report

let actions t = List.rev t.actions_rev
let last_report t = t.last_report
let budget t = t.budget
let gc t = t.gc
