(** Shadow-page schemes wrapped in the {!Governor}'s degradation ladder.

    Allocation: the governor decides whether this object gets a shadow
    alias ({!Governor.should_protect}); protected attempts go through
    {!Retry.attempt} over the typed [try_*] operations, and a final
    failure falls back to a {e raw} allocation from the same backing
    allocator — the program keeps running, the object just is not
    guarded.  Free: raw blocks go straight back to the backing
    allocator; protected objects retry the protecting [mprotect] and
    fall back to {!Shadow.Shadow_pool.free_unprotected} when it cannot
    be made to stick.

    Every object that ever lived unguarded is recorded, so a detection
    miss observed later is either attributable (its address is in the
    record, or it was allocated while the ladder was degraded) or a
    genuine bug in the scheme.  The resilience harness asserts exactly
    this invariant. *)

type t

val shadow_basic :
  ?retry:Retry.policy -> ?config:Governor.config -> Vmm.Machine.t -> t
(** Governed {!Schemes.shadow_basic}: freelist allocator + shadow heap. *)

val shadow_pool :
  ?retry:Retry.policy ->
  ?config:Governor.config ->
  ?pool:Schemes.pool_config ->
  Vmm.Machine.t ->
  t
(** Governed {!Schemes.shadow_pool}: the full pool-based scheme, with
    governed sub-pools sharing one governor, registry and recycler. *)

val backend_ladder :
  ?retry:Retry.policy ->
  ?config:Governor.config ->
  ?tagged:Schemes.tagged_config ->
  Vmm.Machine.t ->
  t
(** The governor stepping {e backends}, not sample rates: shadow paging
    in [Full], the pointer-tagging backend ({!Tagging.Tag_table}) on
    the [Tagged] rung, raw passthrough at the bottom.  [config]
    defaults to {!Governor.default_config} with
    {!Governor.backend_ladder} as the rung order.  A shadow allocation
    whose syscalls fail after retries falls back to a {e tagged}
    allocation — still guarded, unlike the classic ladder's raw
    fallback — so [unprotected_allocs] counts only sampled-out and
    [Passthrough]/raw blocks.  A raw allocation that reuses granules of
    retired tagged chunks evicts their tag-table entries (a legitimate
    access must never trip a stale tag); dangling tagged pointers into
    such a range stop faulting, which is precisely the attributed
    coverage loss of the raw rung. *)

val scheme : t -> Scheme.t
(** The runnable scheme record (note [guarantees_detection] is false
    for the pool variant: the guarantee is conditional on the ladder
    staying in [Full]). *)

val governor : t -> Governor.t
val registry : t -> Shadow.Object_registry.t

val tag_table : t -> Tagging.Tag_table.t option
(** The tag table of a {!backend_ladder} (its checks/faults/wrap stats
    and modeled byte overhead); [None] for the classic ladders. *)

val was_unprotected : t -> Vmm.Addr.t -> bool
(** Whether this address (block base or any interior address of a
    registered object) ever lived without page protection — the
    attribution check for a detection miss. *)

val unprotected_allocs : t -> int
(** Allocations that never got a shadow alias (sampled-out, passthrough,
    or fallback after syscall failure). *)

val unprotected_frees : t -> int
(** Frees that could not protect their shadow range. *)
