(** The endurance controller: couples {!Shadow.Va_budget} pressure to
    the ordered §3.4 response.

    Rising VA pressure is answered in escalation order, cheapest and
    least lossy first:

    + {b GC} ([L_gc] and above): run the conservative {!Shadow.Gc} —
      reclamation that provably preserves the detection guarantee.
    + {b Tighten} (crossing [L_tighten]): divide the reuse policy's
      trigger threshold, so reclamation fires earlier from now on.
    + {b Degrade} (crossing [L_degrade]): trip the {!Governor} one step
      down (reason ["va-pressure"]) — detection coverage is traded away
      only after both recycling levers are exhausted.

    Tightening and degradation fire once per upward watermark crossing;
    GC runs on every {!tick} while pressure persists (it is the lever
    that actually relieves it).  Every action is recorded in an ordered
    log — the bench's ladder row asserts gc-first → tighten → degrade
    from it — and the underlying budget/GC/governor each emit their own
    telemetry ([Va_pressure], [Gc_run], [Mode_change]). *)

type action =
  | Ran_gc
  | Tightened
  | Degraded

val action_label : action -> string
(** ["gc"], ["tighten"], ["degrade"]. *)

type entry = {
  action : action;
  at_level : Shadow.Va_budget.level;
  at_pages_used : int;
}

type t

val create :
  ?policy:Shadow.Reuse_policy.t ->
  ?governor:Governor.t ->
  ?tighten_divisor:int ->
  ?min_trigger_pages:int ->
  budget:Shadow.Va_budget.t ->
  Shadow.Gc.t ->
  t
(** [policy] is the reuse policy to tighten (omitted: the tighten stage
    is a no-op); [governor] the ladder to trip (omitted: the degrade
    stage is a no-op).  Each tightening divides the current trigger by
    [tighten_divisor] (default 4), floored at [min_trigger_pages]. *)

val tick : t -> Shadow.Gc.report option
(** Poll the budget and run the escalation; returns the GC report if a
    collection ran.  Call periodically — per connection, per epoch
    retirement, or per [n] frees. *)

val actions : t -> entry list
(** Ordered action log, oldest first. *)

val last_report : t -> Shadow.Gc.report option
val budget : t -> Shadow.Va_budget.t
val gc : t -> Shadow.Gc.t
