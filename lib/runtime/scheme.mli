(** A protection scheme: the uniform interface workloads are written
    against, so the same workload code runs under the paper's approach,
    the plain allocator, and every related-work baseline.

    All schemes signal a {e detected} temporal error by raising
    {!Shadow.Report.Violation}; an undetected dangling use simply reads
    or writes whatever the memory now holds, exactly as on real hardware.
    A scheme with no mapping for an address lets {!Vmm.Fault.Trap}
    escape — the undiagnosed segfault. *)

type pool_handle = {
  pool_alloc : ?site:string -> int -> Vmm.Addr.t;
  pool_free : ?site:string -> Vmm.Addr.t -> unit;
  pool_destroy : unit -> unit;
}
(** What [poolinit] hands back.  Non-pool schemes map these to their
    plain malloc/free with a no-op destroy, which is how the same
    workload source runs un-pool-transformed. *)

type introspection = ..
(** Scheme-private internals a constructor may choose to expose, carried
    on the scheme record itself so lookup needs no global side table
    (and is therefore safe when schemes are built concurrently on many
    domains).  Constructors extend this type; consumers go through
    {!Schemes.introspect}, which maps it to a closed [info] variant. *)

type introspection += No_introspection
(** The default: nothing beyond the record's own fields. *)

type t = {
  name : string;
  machine : Vmm.Machine.t;
  malloc : ?site:string -> int -> Vmm.Addr.t;
  free : ?site:string -> Vmm.Addr.t -> unit;
  load : Vmm.Addr.t -> width:int -> int;
  store : Vmm.Addr.t -> width:int -> int -> unit;
  pool_create : ?elem_size:int -> unit -> pool_handle;
  compute : int -> unit;
      (** Account [n] instructions of non-memory work (scaled by schemes
          that instrument computation, e.g. the Valgrind model). *)
  extra_memory_bytes : unit -> int;
      (** Checker-private memory (capability stores, shadow maps) beyond
          the program's own heap. *)
  guarantees_detection : bool;
      (** Whether the scheme detects {e all} dangling pointer uses, per
          the paper's taxonomy (ours, Electric Fence, capability-based:
          yes; Valgrind-style heuristics: no). *)
  introspection : introspection;
      (** Constructor-private internals; read via {!Schemes.introspect}. *)
}

val direct_pool : t -> pool_handle
(** The pass-through pool handle non-pool schemes use. *)

val cycles : t -> float
(** Simulated cycles consumed so far on this scheme's machine. *)
