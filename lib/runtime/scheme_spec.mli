(** The typed scheme catalogue: one value per runnable configuration.

    Every consumer that used to re-parse scheme names by string matching
    — the CLI, the farm, the harness tables, the bench sections — now
    carries a [Scheme_spec.t] and lets {!of_string}/{!to_string} be the
    {e only} place the spelling of a scheme name lives.  A spec bundles
    the constructor variant with its per-backend config record
    ({!Schemes.pool_config} and friends), so the catalogue, the CLI
    listing ([danguard help]), the README table and the round-trip tests
    all enumerate the same {!all}.

    Baselines live in the [baseline] library, which depends on this one;
    their builders are injected via {!set_baseline_builders}
    ([Baseline.Register.install ()]) before {!build} can construct
    [Efence]/[Valgrind]/[Capability]. *)

type t =
  | Native  (** unmodified program, native code quality *)
  | Llvm_base  (** unmodified program, LLVM C back-end code quality *)
  | Pa of Schemes.pa_config  (** pool allocation alone (no detection) *)
  | Shadow_basic  (** shadow pages, no pools (binary-only mode, §3.2) *)
  | Shadow_pool of Schemes.pool_config  (** the paper's full scheme (§3.3) *)
  | Shadow_pool_spatial of Schemes.spatial_config
      (** shadow pages + software bounds checks *)
  | Shadow_pool_static
      (** the static-elision scheme with the empty policy (elide
          nothing) — behaviourally {!Shadow_pool} plus elision counters.
          Real analysis-driven policies carry a function and are built
          directly via {!Schemes.shadow_pool_static}. *)
  | Shadow_pool_inferred  (** one shadow pool per inferred pool scope *)
  | Shadow_pool_epoch of Schemes.epoch_config
      (** epoch-batched deferred protection *)
  | Tagged of Schemes.tagged_config
      (** pointer-tagging backend: per-access software tag check,
          instant VA reuse *)
  | Backend_ladder
      (** {!Governed.backend_ladder}: shadow → tagged → raw under the
          governor *)
  | Efence  (** Electric Fence baseline *)
  | Valgrind  (** Valgrind-style interpretation baseline *)
  | Capability  (** capability/fat-pointer checking baseline *)
  | Recover of t
      (** [Schemes.recoverable] over the base spec: violations are
          logged and the workload continues *)

(** {1 Default-config shortcuts}

    One value per family with its default config — the spelling
    consumers use ([Scheme_spec.ours], [Scheme_spec.tagged], ...). *)

val native : t
val llvm_base : t
val pa : t
val pa_dummy : t
val ours_basic : t
val ours : t
val ours_bounds : t
val ours_static : t
val ours_inferred : t
val ours_epoch : t
val tagged : t
val ladder : t
val efence : t
val valgrind : t
val capability : t

val all : t list
(** One entry per family, each with its default config (plus
    ["ours+recover"] as the wrapper's representative).  This is the
    list [danguard help] prints, the README table is generated from,
    and the round-trip test walks. *)

val to_string : t -> string
(** Canonical CLI name (["native"], ["ours"], ["tagged"],
    ["ours+recover"], ...).  Configs do not print: a non-default config
    renders as its family name, so [to_string] round-trips through
    {!of_string} exactly for {!all}'s (default-config) entries. *)

val of_string : string -> t option
(** Inverse of {!to_string} over default configs; [None] for an unknown
    name.  The {e only} scheme-name string matching in the tree
    (grep-gated by [scripts/lint_src.sh]). *)

val names : unit -> string list
(** [List.map to_string all]. *)

val label : t -> string
(** Human table label, preserved from the paper harness:
    ["our-approach"], ["pa+dummy-syscalls"], ["ours+bounds"], ... *)

val description : t -> string
(** One-line description for [danguard help] and the README table. *)

val detects : t -> bool
(** Whether the scheme guarantees detection of dangling uses (modulo
    documented bounds: tag-width wraparound for [Tagged], ladder state
    for [Backend_ladder] — which reports [false]). *)

val cost_profile : t -> pa_quality_gain:float -> Vmm.Cost_model.t
(** The cost-model profile this configuration compiles under: native
    for [Native], LLVM-base otherwise, with [pa_quality_gain] scaling
    code quality for the pool-based configs (APA's locality effect). *)

val set_baseline_builders :
  efence:(Vmm.Machine.t -> Scheme.t) ->
  valgrind:(Vmm.Machine.t -> Scheme.t) ->
  capability:(Vmm.Machine.t -> Scheme.t) ->
  unit
(** Inject the baseline constructors (the [baseline] library sits above
    this one).  Idempotent; [Baseline.Register.install ()] is the one
    caller. *)

val build : t -> Vmm.Machine.t -> Scheme.t
(** Construct the scheme on the given machine.  Raises
    [Invalid_argument] for a baseline spec before
    {!set_baseline_builders} was called. *)
