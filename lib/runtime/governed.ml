open Vmm

type t = {
  scheme : Scheme.t;
  governor : Governor.t;
  registry : Shadow.Object_registry.t;
  unprotected_allocs : int ref;
  (* Every address that ever lived without page protection — raw
     (sampled-out / fallback) allocations by their block address,
     unprotected frees by the object's user address.  Never cleared:
     this is the attribution record for detection misses.  Tagged
     fallback allocations are NOT recorded here: the tag table still
     guards them. *)
  ever_unprotected : (Addr.t, unit) Hashtbl.t;
  (* The tag table when this is a backend ladder; None for the classic
     sample-rate ladders. *)
  table : Tagging.Tag_table.t option;
}

let scheme t = t.scheme
let governor t = t.governor
let registry t = t.registry
let tag_table t = t.table
let unprotected_allocs t = !(t.unprotected_allocs)
let unprotected_frees t = Governor.unprotected_free_count t.governor

let was_unprotected t addr =
  Hashtbl.mem t.ever_unprotected addr
  ||
  match Shadow.Object_registry.find_by_addr t.registry addr with
  | Some obj ->
    Hashtbl.mem t.ever_unprotected obj.Shadow.Object_registry.user_addr
  | None -> false

let trace_malloc machine site size addr =
  if Telemetry.Sink.enabled machine.Machine.trace then
    Telemetry.Sink.emit machine.Machine.trace (fun () ->
        Telemetry.Event.Malloc { site; size; addr })

let trace_free machine site addr =
  if Telemetry.Sink.enabled machine.Machine.trace then
    Telemetry.Sink.emit machine.Machine.trace (fun () ->
        Telemetry.Event.Free { site; addr })

let trace_violation machine (r : Shadow.Report.t) =
  Telemetry.Sink.emit_always machine.Machine.trace (fun () ->
      Shadow.Report.to_event r)

let guarded_load machine registry addr ~width =
  try
    Shadow.Detector.guard registry ~in_free:false (fun () ->
        Mmu.load machine addr ~width)
  with Shadow.Report.Violation r as exn ->
    trace_violation machine r;
    raise exn

let guarded_store machine registry addr ~width v =
  try
    Shadow.Detector.guard registry ~in_free:false (fun () ->
        Mmu.store machine addr ~width v)
  with Shadow.Report.Violation r as exn ->
    trace_violation machine r;
    raise exn

(* Shared alloc/free decision logic, parameterised over one backing
   pool/heap's four primitive operations.  [raw_live] tracks the blocks
   this particular backing currently holds without a registry record, so
   their frees can be routed back to the raw deallocator. *)
let governed_ops ~machine ~retry ~governor ~ever_unprotected
    ~unprotected_allocs ~try_alloc ~try_free_protected ~free_unprotected
    ~alloc_raw ~dealloc_raw =
  let raw_live : (Addr.t, unit) Hashtbl.t = Hashtbl.create 64 in
  let take_raw site size =
    let a = alloc_raw size in
    Hashtbl.replace raw_live a ();
    Hashtbl.replace ever_unprotected a ();
    incr unprotected_allocs;
    trace_malloc machine site size a;
    a
  in
  let alloc ?(site = "<unknown>") size =
    Governor.on_alloc governor;
    if Governor.should_protect governor then
      match
        Retry.attempt ?policy:retry machine (fun () -> try_alloc ~site size)
      with
      | Ok a ->
        Governor.record_success governor;
        a
      | Error e ->
        Governor.record_failure governor
          ~reason:("malloc:" ^ Fault_plan.error_label e);
        take_raw site size
    else take_raw site size
  in
  let free ?(site = "<unknown>") a =
    if Hashtbl.mem raw_live a then begin
      Hashtbl.remove raw_live a;
      dealloc_raw a;
      trace_free machine site a
    end
    else
      match
        Retry.attempt ?policy:retry machine (fun () ->
            try_free_protected ~site a)
      with
      | Ok () -> Governor.record_success governor
      | Error e ->
        Governor.record_failure governor
          ~reason:("free:" ^ Fault_plan.error_label e);
        let obj = free_unprotected ~site a in
        Governor.record_unprotected_free governor;
        Hashtbl.replace ever_unprotected obj.Shadow.Object_registry.user_addr
          ()
  in
  (alloc, free)

let shadow_basic ?retry ?config machine =
  let registry = Shadow.Object_registry.create () in
  let governor = Governor.create ?config machine in
  let ever_unprotected = Hashtbl.create 64 in
  let unprotected_allocs = ref 0 in
  let malloc_heap = Heap.Freelist_malloc.create machine in
  let heap =
    Shadow.Shadow_heap.create ~registry
      ~allocator:(Heap.Freelist_malloc.as_allocator malloc_heap)
      machine
  in
  let alloc, free =
    governed_ops ~machine ~retry ~governor ~ever_unprotected
      ~unprotected_allocs
      ~try_alloc:(fun ~site size -> Shadow.Shadow_heap.try_malloc heap ~site size)
      ~try_free_protected:(fun ~site a -> Shadow.Shadow_heap.try_free heap ~site a)
      ~free_unprotected:(fun ~site a ->
        Shadow.Shadow_heap.free_unprotected heap ~site a)
      ~alloc_raw:(fun size -> Heap.Freelist_malloc.alloc malloc_heap size)
      ~dealloc_raw:(fun a -> Heap.Freelist_malloc.dealloc malloc_heap a)
  in
  let rec scheme =
    lazy
      {
        Scheme.name = "governed-shadow-basic";
        machine;
        malloc = (fun ?site size -> alloc ?site size);
        free = (fun ?site a -> free ?site a);
        load = guarded_load machine registry;
        store = guarded_store machine registry;
        pool_create =
          (fun ?elem_size:_ () -> Scheme.direct_pool (Lazy.force scheme));
        compute = (fun n -> Stats.count_instructions machine.Machine.stats n);
        extra_memory_bytes = (fun () -> 0);
        guarantees_detection = true;
        introspection = Scheme.No_introspection;
      }
  in
  {
    scheme = Lazy.force scheme;
    governor;
    registry;
    unprotected_allocs;
    ever_unprotected;
    table = None;
  }

let shadow_pool ?retry ?config ?(pool = Schemes.default_pool_config) machine =
  let { Schemes.reuse_shadow_va } = pool in
  let registry = Shadow.Object_registry.create () in
  let recycler = Apa.Page_recycler.create () in
  let governor = Governor.create ?config machine in
  let ever_unprotected = Hashtbl.create 64 in
  let unprotected_allocs = ref 0 in
  let make_pool ?elem_size () =
    Shadow.Shadow_pool.create ?elem_size ~reuse_shadow_va ~recycler ~registry
      machine
  in
  let wrap_pool pool =
    let alloc, free =
      governed_ops ~machine ~retry ~governor ~ever_unprotected
        ~unprotected_allocs
        ~try_alloc:(fun ~site size ->
          Shadow.Shadow_pool.try_alloc pool ~site size)
        ~try_free_protected:(fun ~site a ->
          Shadow.Shadow_pool.try_free pool ~site a)
        ~free_unprotected:(fun ~site a ->
          Shadow.Shadow_pool.free_unprotected pool ~site a)
        ~alloc_raw:(fun size -> Shadow.Shadow_pool.alloc_raw pool size)
        ~dealloc_raw:(fun a -> Shadow.Shadow_pool.dealloc_raw pool a)
    in
    {
      Scheme.pool_alloc = alloc;
      pool_free = free;
      pool_destroy = (fun () -> Shadow.Shadow_pool.destroy pool);
    }
  in
  let global_handle = wrap_pool (make_pool ()) in
  let scheme =
    {
      Scheme.name = "governed-shadow-pool";
      machine;
      malloc = (fun ?site size -> global_handle.Scheme.pool_alloc ?site size);
      free = (fun ?site a -> global_handle.Scheme.pool_free ?site a);
      load = guarded_load machine registry;
      store = guarded_store machine registry;
      pool_create = (fun ?elem_size () -> wrap_pool (make_pool ?elem_size ()));
      compute = (fun n -> Stats.count_instructions machine.Machine.stats n);
      extra_memory_bytes = (fun () -> 0);
      guarantees_detection = false;
      introspection = Scheme.No_introspection;
    }
  in
  { scheme; governor; registry; unprotected_allocs; ever_unprotected;
    table = None }

(* The backend ladder: one machine, three detection backends, the
   governor choosing per-allocation which one guards the object.
   Shadow paging while the protection syscalls are healthy; the tag
   table — still a detecting backend, but one that needs no syscalls
   and no fresh VA — when they are not (including as the fallback for a
   shadow allocation whose syscalls failed after retries, which the
   classic ladder could only leave raw); raw passthrough as the last
   resort.  Frees route by ownership: the tag table knows its chunks,
   raw blocks are tracked per pool, everything else is a shadow free. *)
let backend_ladder ?retry ?config ?tagged:(tcfg = Schemes.default_tagged_config)
    machine =
  let config =
    match config with
    | Some c -> c
    | None -> { Governor.default_config with ladder = Governor.backend_ladder }
  in
  let registry = Shadow.Object_registry.create () in
  let recycler = Apa.Page_recycler.create () in
  let governor = Governor.create ~config machine in
  let table =
    Tagging.Tag_table.create ~tag_bits:tcfg.Schemes.tag_bits
      ~check_cost:tcfg.Schemes.tag_check_cost machine
  in
  let ever_unprotected = Hashtbl.create 64 in
  let unprotected_allocs = ref 0 in
  let make_pool ?elem_size () =
    Shadow.Shadow_pool.create ?elem_size ~recycler ~registry machine
  in
  let wrap_pool pool =
    let raw_live : (Addr.t, unit) Hashtbl.t = Hashtbl.create 64 in
    (* untagged base -> tagged pointer, for free routing and destroy *)
    let tagged_live : (Addr.t, Addr.t) Hashtbl.t = Hashtbl.create 64 in
    let take_raw site size =
      let a = Shadow.Shadow_pool.alloc_raw pool size in
      (* The block may reuse granules of retired tagged chunks; drop
         their table entries so a legitimate raw access can never trip
         a stale tag.  Dangling tagged pointers into the range stop
         faulting — exactly the attributed coverage loss raw mode is. *)
      Tagging.Tag_table.release table ~base:a ~size;
      Hashtbl.replace raw_live a ();
      Hashtbl.replace ever_unprotected a ();
      incr unprotected_allocs;
      trace_malloc machine site size a;
      a
    in
    let take_tagged site size =
      let base = Shadow.Shadow_pool.alloc_raw pool size in
      let tp = Tagging.Tag_table.register table ~base ~size ~site in
      Hashtbl.replace tagged_live base tp;
      trace_malloc machine site size tp;
      tp
    in
    let alloc ?(site = "<unknown>") size =
      Governor.on_alloc governor;
      match Governor.backend governor with
      | `Shadow when Governor.should_protect governor -> (
        match
          Retry.attempt ?policy:retry machine (fun () ->
              Shadow.Shadow_pool.try_alloc pool ~site size)
        with
        | Ok a ->
          Governor.record_success governor;
          a
        | Error e ->
          Governor.record_failure governor
            ~reason:("malloc:" ^ Fault_plan.error_label e);
          (* Unlike the classic ladder's raw fallback, the object stays
             guarded — by the backend that needs no syscalls. *)
          take_tagged site size)
      | `Shadow -> take_raw site size (* sampled out *)
      | `Tagged -> take_tagged site size
      | `Raw -> take_raw site size
    in
    let free ?(site = "<unknown>") a =
      let base = Tagging.Tag_table.untag a in
      if Hashtbl.mem tagged_live base && Tagging.Tag_table.owns table base
      then begin
        match Tagging.Tag_table.free table a ~site with
        | b ->
          Hashtbl.remove tagged_live b;
          Shadow.Shadow_pool.dealloc_raw pool b;
          trace_free machine site b
        | exception (Shadow.Report.Violation r as exn) ->
          trace_violation machine r;
          raise exn
      end
      else if Hashtbl.mem raw_live a then begin
        Hashtbl.remove raw_live a;
        Shadow.Shadow_pool.dealloc_raw pool a;
        trace_free machine site a
      end
      else
        match
          Retry.attempt ?policy:retry machine (fun () ->
              Shadow.Shadow_pool.try_free pool ~site a)
        with
        | Ok () -> Governor.record_success governor
        | Error e ->
          Governor.record_failure governor
            ~reason:("free:" ^ Fault_plan.error_label e);
          let obj = Shadow.Shadow_pool.free_unprotected pool ~site a in
          Governor.record_unprotected_free governor;
          Hashtbl.replace ever_unprotected
            obj.Shadow.Object_registry.user_addr ()
    in
    {
      Scheme.pool_alloc = alloc;
      pool_free = free;
      pool_destroy =
        (fun () ->
          Hashtbl.iter
            (fun _ tp ->
              ignore (Tagging.Tag_table.free table tp ~site:"<pool-destroy>"))
            tagged_live;
          Hashtbl.reset tagged_live;
          Shadow.Shadow_pool.destroy pool);
    }
  in
  let global_handle = wrap_pool (make_pool ()) in
  (* Tag check first (it owns the granule or it doesn't), then the
     guarded MMU path for shadow and raw addresses. *)
  let load addr ~width =
    match Tagging.Tag_table.check_access table addr ~access:Perm.Read with
    | Some raw -> guarded_load machine registry raw ~width
    | None ->
      guarded_load machine registry (Tagging.Tag_table.untag addr) ~width
    | exception (Shadow.Report.Violation r as exn) ->
      trace_violation machine r;
      raise exn
  in
  let store addr ~width v =
    match Tagging.Tag_table.check_access table addr ~access:Perm.Write with
    | Some raw -> guarded_store machine registry raw ~width v
    | None ->
      guarded_store machine registry (Tagging.Tag_table.untag addr) ~width v
    | exception (Shadow.Report.Violation r as exn) ->
      trace_violation machine r;
      raise exn
  in
  let scheme =
    {
      Scheme.name = "governed-backend-ladder";
      machine;
      malloc = (fun ?site size -> global_handle.Scheme.pool_alloc ?site size);
      free = (fun ?site a -> global_handle.Scheme.pool_free ?site a);
      load;
      store;
      pool_create = (fun ?elem_size () -> wrap_pool (make_pool ?elem_size ()));
      compute = (fun n -> Stats.count_instructions machine.Machine.stats n);
      extra_memory_bytes =
        (fun () ->
          (Tagging.Tag_table.stats table).Tagging.Tag_table.table_bytes);
      guarantees_detection = false;
      introspection = Scheme.No_introspection;
    }
  in
  { scheme; governor; registry; unprotected_allocs; ever_unprotected;
    table = Some table }
