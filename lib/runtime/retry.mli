(** Bounded retry with exponential backoff for the typed syscall
    boundary ({!Vmm.Syscalls}).

    Transient errors ([EAGAIN]-shaped) are retried up to a cap; each
    wait is charged to the simulated machine as instructions, so the
    cost model sees what a real spinning server would pay, and every
    retry increments the [syscall_retries] stat.  Fatal errors are
    returned immediately — retrying an [ENOMEM] that models exhausted
    address space only digs the hole deeper; that is the
    {!Governor}'s problem. *)

type policy = {
  max_attempts : int;  (** total attempts, including the first *)
  backoff_instructions : int;  (** charge before the first retry *)
  backoff_multiplier : int;  (** growth factor per retry *)
  max_backoff_instructions : int;  (** backoff ceiling *)
}

val default : policy
(** 4 attempts, 200-instruction initial backoff, x4 growth, 20k cap. *)

val attempt :
  ?policy:policy ->
  Vmm.Machine.t ->
  (unit -> ('a, Vmm.Fault_plan.error) result) ->
  ('a, Vmm.Fault_plan.error) result
(** [attempt machine f] runs [f] until it returns [Ok], a [Fatal]
    error, or the attempt budget is spent (the last error is
    returned).  [f] must be safe to re-run after an [Error] — the
    [try_*] operations of {!Shadow.Shadow_heap} / {!Shadow.Shadow_pool}
    guarantee this. *)
