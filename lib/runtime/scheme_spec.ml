type t =
  | Native
  | Llvm_base
  | Pa of Schemes.pa_config
  | Shadow_basic
  | Shadow_pool of Schemes.pool_config
  | Shadow_pool_spatial of Schemes.spatial_config
  | Shadow_pool_static
  | Shadow_pool_inferred
  | Shadow_pool_epoch of Schemes.epoch_config
  | Tagged of Schemes.tagged_config
  | Backend_ladder
  | Efence
  | Valgrind
  | Capability
  | Recover of t

(* Default-config shortcuts: the spelling consumers use. *)
let native = Native
let llvm_base = Llvm_base
let pa = Pa Schemes.default_pa_config
let pa_dummy = Pa { Schemes.dummy_syscalls = true }
let ours_basic = Shadow_basic
let ours = Shadow_pool Schemes.default_pool_config
let ours_bounds = Shadow_pool_spatial Schemes.default_spatial_config
let ours_static = Shadow_pool_static
let ours_inferred = Shadow_pool_inferred
let ours_epoch = Shadow_pool_epoch Schemes.default_epoch_config
let tagged = Tagged Schemes.default_tagged_config
let ladder = Backend_ladder
let efence = Efence
let valgrind = Valgrind
let capability = Capability

let all =
  [
    Native;
    Llvm_base;
    Pa Schemes.default_pa_config;
    Pa { dummy_syscalls = true };
    Shadow_basic;
    Shadow_pool Schemes.default_pool_config;
    Shadow_pool_spatial Schemes.default_spatial_config;
    Shadow_pool_static;
    Shadow_pool_inferred;
    Shadow_pool_epoch Schemes.default_epoch_config;
    Tagged Schemes.default_tagged_config;
    Backend_ladder;
    Efence;
    Valgrind;
    Capability;
    Recover (Shadow_pool Schemes.default_pool_config);
  ]

let rec to_string = function
  | Native -> "native"
  | Llvm_base -> "llvm"
  | Pa { Schemes.dummy_syscalls = false } -> "pa"
  | Pa { Schemes.dummy_syscalls = true } -> "pa-dummy"
  | Shadow_basic -> "ours-basic"
  | Shadow_pool _ -> "ours"
  | Shadow_pool_spatial _ -> "ours-bounds"
  | Shadow_pool_static -> "ours-static"
  | Shadow_pool_inferred -> "ours-inferred"
  | Shadow_pool_epoch _ -> "ours-epoch"
  | Tagged _ -> "tagged"
  | Backend_ladder -> "ladder"
  | Efence -> "efence"
  | Valgrind -> "valgrind"
  | Capability -> "capability"
  | Recover base -> to_string base ^ "+recover"

let recover_suffix = "+recover"

let rec of_string name =
  match
    if String.length name > String.length recover_suffix then
      let cut = String.length name - String.length recover_suffix in
      if String.sub name cut (String.length recover_suffix) = recover_suffix
      then Some (String.sub name 0 cut)
      else None
    else None
  with
  | Some base -> Option.map (fun b -> Recover b) (of_string base)
  | None -> (
    match name with
    | "native" -> Some Native
    | "llvm" -> Some Llvm_base
    | "pa" -> Some (Pa Schemes.default_pa_config)
    | "pa-dummy" -> Some (Pa { dummy_syscalls = true })
    | "ours-basic" -> Some Shadow_basic
    | "ours" -> Some (Shadow_pool Schemes.default_pool_config)
    | "ours-bounds" -> Some (Shadow_pool_spatial Schemes.default_spatial_config)
    | "ours-static" -> Some Shadow_pool_static
    | "ours-inferred" -> Some Shadow_pool_inferred
    | "ours-epoch" -> Some (Shadow_pool_epoch Schemes.default_epoch_config)
    | "tagged" -> Some (Tagged Schemes.default_tagged_config)
    | "ladder" -> Some Backend_ladder
    | "efence" -> Some Efence
    | "valgrind" -> Some Valgrind
    | "capability" -> Some Capability
    | _ -> None)

let names () = List.map to_string all

let rec label = function
  | Native -> "native"
  | Llvm_base -> "llvm-base"
  | Pa { Schemes.dummy_syscalls = false } -> "pa"
  | Pa { Schemes.dummy_syscalls = true } -> "pa+dummy-syscalls"
  | Shadow_basic -> "our-approach (no pools)"
  | Shadow_pool _ -> "our-approach"
  | Shadow_pool_spatial _ -> "ours+bounds"
  | Shadow_pool_static -> "our-approach+static"
  | Shadow_pool_inferred -> "our-approach+inferred"
  | Shadow_pool_epoch _ -> "our-approach+epoch"
  | Tagged _ -> "tagged"
  | Backend_ladder -> "backend-ladder"
  | Efence -> "electric-fence"
  | Valgrind -> "valgrind-sim"
  | Capability -> "capability"
  | Recover base -> label base ^ "+recover"

let rec description = function
  | Native -> "unmodified program, native code quality, no detection"
  | Llvm_base -> "unmodified program, LLVM C back-end code quality"
  | Pa { Schemes.dummy_syscalls = false } ->
    "automatic pool allocation alone: VA recycling, no detection"
  | Pa { Schemes.dummy_syscalls = true } ->
    "pools plus one no-op syscall per alloc/free (syscall-cost control)"
  | Shadow_basic -> "shadow pages over the plain allocator (binary-only mode)"
  | Shadow_pool _ -> "the paper's full scheme: shadow pages + pool allocation"
  | Shadow_pool_spatial _ ->
    "shadow pages plus per-access software bounds checks"
  | Shadow_pool_static ->
    "shadow pool with static protection elision (empty policy here)"
  | Shadow_pool_inferred ->
    "one shadow pool per statically inferred pool scope; destroy unmaps"
  | Shadow_pool_epoch _ ->
    "epoch-batched deferred protection with slab pre-aliasing"
  | Tagged _ ->
    "pointer tagging: per-access generation-tag check, instant VA reuse"
  | Backend_ladder ->
    "governor steps backends: shadow -> tagged -> raw, probe-recovered"
  | Efence -> "Electric Fence baseline: one object per page"
  | Valgrind -> "Valgrind-style interpretation baseline"
  | Capability -> "capability/fat-pointer checking baseline"
  | Recover base -> description base ^ "; violations logged, not fatal"

let rec detects = function
  | Native | Llvm_base | Pa _ -> false
  | Shadow_basic | Shadow_pool _ | Shadow_pool_spatial _ | Shadow_pool_static
  | Shadow_pool_inferred | Shadow_pool_epoch _ | Tagged _ ->
    true
  | Backend_ladder -> false (* conditional on the ladder staying in Full *)
  | Efence | Valgrind | Capability -> true
  | Recover base -> detects base

let rec uses_pa_profile = function
  | Pa _ | Shadow_pool _ | Shadow_pool_static | Shadow_pool_inferred
  | Shadow_pool_epoch _ | Tagged _ | Backend_ladder ->
    true
  | Native | Llvm_base | Shadow_basic | Shadow_pool_spatial _ | Efence
  | Valgrind | Capability ->
    false
  | Recover base -> uses_pa_profile base

let cost_profile spec ~pa_quality_gain =
  match spec with
  | Native -> Vmm.Cost_model.native
  | _ when uses_pa_profile spec ->
    (* Pool allocation changes data layout; the per-workload gain factor
       scales the compiled work (paper: gzip speeds up under PA).  The
       tagged and ladder backends allocate through the same pools. *)
    let base = Vmm.Cost_model.llvm_base in
    Vmm.Cost_model.with_code_quality base
      (base.Vmm.Cost_model.code_quality *. pa_quality_gain)
  | _ -> Vmm.Cost_model.llvm_base

(* Baselines live a library above this one; their constructors arrive by
   injection (Baseline.Register.install) before [build] can use them. *)
type baseline_builders = {
  efence : Vmm.Machine.t -> Scheme.t;
  valgrind : Vmm.Machine.t -> Scheme.t;
  capability : Vmm.Machine.t -> Scheme.t;
}

let baselines : baseline_builders option ref = ref None

let set_baseline_builders ~efence ~valgrind ~capability =
  baselines := Some { efence; valgrind; capability }

let baseline which =
  match !baselines with
  | Some b -> (
    match which with
    | `Efence -> b.efence
    | `Valgrind -> b.valgrind
    | `Capability -> b.capability)
  | None ->
    invalid_arg
      "Scheme_spec.build: baseline builders not installed (call \
       Baseline.Register.install ())"

let rec build spec machine =
  match spec with
  | Native | Llvm_base -> Schemes.native machine
  | Pa config -> Schemes.pa ~config machine
  | Shadow_basic -> Schemes.shadow_basic machine
  | Shadow_pool config -> Schemes.shadow_pool ~config machine
  | Shadow_pool_spatial config -> Schemes.shadow_pool_spatial ~config machine
  | Shadow_pool_static ->
    Schemes.shadow_pool_static ~config:{ Schemes.elide = (fun _ -> false) }
      machine
  | Shadow_pool_inferred -> Schemes.shadow_pool_inferred machine
  | Shadow_pool_epoch config -> Schemes.shadow_pool_epoch ~config machine
  | Tagged config -> Schemes.tagged ~config machine
  | Backend_ladder -> Governed.scheme (Governed.backend_ladder machine)
  | Efence -> baseline `Efence machine
  | Valgrind -> baseline `Valgrind machine
  | Capability -> baseline `Capability machine
  | Recover base -> Schemes.recoverable (build base machine)
