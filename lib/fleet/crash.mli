(** Fleet-wide crash reports: the observability layer over
    {!Shadow.Report.Violation}.

    A production deployment of the paper's detector does not get to
    inspect a debugger — it gets a stream of trap reports from many
    worker processes.  This module turns each violation into a
    structured {!report}, dedups reports by a stable {e stack
    signature} (a hash of allocation site × free site × violation
    kind, the identity of the {e bug} rather than of the individual
    trap), and merges per-shard report sinks into one ranked fleet
    view: which bugs fire most, on how many shards, and when they were
    first and last seen. *)

type report = {
  kind : string;  (** {!Shadow.Report.kind_label} of the violation *)
  fault_addr : Vmm.Addr.t;
  offset : int option;  (** byte offset in the object, when known *)
  object_size : int option;
  alloc_site : string;  (** ["<unknown>"] for wild accesses *)
  free_site : string;  (** ["<none>"] when the object was never freed *)
  scheme : string;  (** detecting scheme's [Scheme.name] *)
  shard : int;  (** farm shard that observed the trap *)
  at_cycles : int;
      (** logical timestamp: the observing connection's machine-cycle
          clock, which depends only on the connection's own work — so
          timestamps are identical however connections land on shards *)
}

val of_violation :
  scheme:string -> shard:int -> at_cycles:int -> Shadow.Report.t -> report

val signature : report -> int64
(** Stable stack signature: FNV-1a 64-bit hash of
    [kind ^ "|" ^ alloc_site ^ "|" ^ free_site].  Two traps from the
    same (bug site, violation kind) always collide; the fault address,
    shard, and timing never enter the hash. *)

val signature_hex : int64 -> string
(** 16-digit lower-case hex, the signature's external spelling. *)

(** {1 Per-shard sinks} *)

type sink
(** An append-only crash-report sink.  Not thread-safe: the farm gives
    each shard its own sink and merges after join. *)

val create_sink : unit -> sink
val record : sink -> report -> unit

val sink_reports : sink -> report list
(** In recording order. *)

val sink_count : sink -> int

(** {1 Fleet merge} *)

type entry = {
  e_signature : int64;
  e_kind : string;
  e_alloc_site : string;
  e_free_site : string;
  count : int;  (** total reports with this signature *)
  shards : int list;  (** distinct shards that saw it, ascending *)
  first_seen : int;  (** min [at_cycles] over the signature's reports *)
  last_seen : int;  (** max [at_cycles] *)
  sample : report;  (** deterministic exemplar: minimal [(at_cycles, fault_addr)] *)
}

type fleet_report = {
  entries : entry list;  (** ranked: by [count] desc, then by
                             [(kind, alloc_site, free_site)] asc *)
  total_reports : int;
}

val merge : sink list -> fleet_report
(** Deterministic: the result depends only on the multiset of reports,
    not on sink order or how reports were distributed across sinks. *)

val impact : entry -> int
(** [count × distinct shards] — the dashboard's "blast radius" column.
    Display-only: shard placement under work stealing is racy, so
    impact is {e not} part of the ranking or of {!canonical_string}. *)

val canonical_string : fleet_report -> string
(** The byte-identical-across-shard-counts artifact: one header line
    plus one line per ranked entry
    ([rank|signature|count|first|last|kind|alloc_site|free_site]).
    Deliberately excludes shard lists, impact, and sample addresses'
    shard field — everything whose value depends on scheduling. *)

val render : fleet_report -> string
(** Human dashboard table (includes shards and impact). *)

val to_json : fleet_report -> Telemetry.Json.t

val register_metrics : Telemetry.Metrics.t -> fleet_report -> unit
(** Publish the report into a metrics registry: one
    [fleet.crash_total{signature=...,kind=...,alloc_site=...}] counter
    per entry, plus [fleet.reports_total] and the [fleet.signatures]
    gauge.  Idempotent ([set_counter], not [incr]): re-registering the
    same report leaves the registry unchanged. *)
