type report = {
  kind : string;
  fault_addr : Vmm.Addr.t;
  offset : int option;
  object_size : int option;
  alloc_site : string;
  free_site : string;
  scheme : string;
  shard : int;
  at_cycles : int;
}

let of_violation ~scheme ~shard ~at_cycles (v : Shadow.Report.t) =
  let kind = Shadow.Report.kind_label v.Shadow.Report.kind in
  match v.Shadow.Report.object_info with
  | Some info ->
    {
      kind;
      fault_addr = v.Shadow.Report.fault_addr;
      offset = Some info.Shadow.Report.offset;
      object_size = Some info.Shadow.Report.size;
      alloc_site = info.Shadow.Report.alloc_site;
      free_site = Option.value info.Shadow.Report.free_site ~default:"<none>";
      scheme;
      shard;
      at_cycles;
    }
  | None ->
    {
      kind;
      fault_addr = v.Shadow.Report.fault_addr;
      offset = None;
      object_size = None;
      alloc_site = "<unknown>";
      free_site = "<none>";
      scheme;
      shard;
      at_cycles;
    }

(* FNV-1a, 64-bit.  Stable across runs and OCaml versions — unlike
   [Hashtbl.hash] — because crash signatures outlive the process: they
   are dashboard keys and dedup identities in stored reports. *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv1a acc s =
  String.fold_left
    (fun h c -> Int64.mul (Int64.logxor h (Int64.of_int (Char.code c))) fnv_prime)
    acc s

let signature r =
  fnv1a fnv_offset (r.kind ^ "|" ^ r.alloc_site ^ "|" ^ r.free_site)

let signature_hex s = Printf.sprintf "%016Lx" s

type sink = { mutable rev_reports : report list; mutable n : int }

let create_sink () = { rev_reports = []; n = 0 }

let record t r =
  t.rev_reports <- r :: t.rev_reports;
  t.n <- t.n + 1

let sink_reports t = List.rev t.rev_reports
let sink_count t = t.n

type entry = {
  e_signature : int64;
  e_kind : string;
  e_alloc_site : string;
  e_free_site : string;
  count : int;
  shards : int list;
  first_seen : int;
  last_seen : int;
  sample : report;
}

type fleet_report = { entries : entry list; total_reports : int }

(* Accumulator per signature while folding over the report multiset. *)
type acc = {
  mutable a_count : int;
  mutable a_shards : (int, unit) Hashtbl.t;
  mutable a_first : int;
  mutable a_last : int;
  mutable a_sample : report;
}

(* The exemplar must not depend on sink order, so pick by a
   shard-invariant key; fall back to shard only on a full tie, where
   every canonical field of the two candidates already agrees. *)
let sample_key r = (r.at_cycles, r.fault_addr, r.shard)

let merge sinks =
  let by_sig : (int64, acc) Hashtbl.t = Hashtbl.create 16 in
  let total = ref 0 in
  List.iter
    (fun sink ->
      List.iter
        (fun r ->
          incr total;
          let s = signature r in
          match Hashtbl.find_opt by_sig s with
          | None ->
            let shards = Hashtbl.create 4 in
            Hashtbl.replace shards r.shard ();
            Hashtbl.replace by_sig s
              {
                a_count = 1;
                a_shards = shards;
                a_first = r.at_cycles;
                a_last = r.at_cycles;
                a_sample = r;
              }
          | Some a ->
            a.a_count <- a.a_count + 1;
            Hashtbl.replace a.a_shards r.shard ();
            if r.at_cycles < a.a_first then a.a_first <- r.at_cycles;
            if r.at_cycles > a.a_last then a.a_last <- r.at_cycles;
            if compare (sample_key r) (sample_key a.a_sample) < 0 then
              a.a_sample <- r)
        (sink_reports sink))
    sinks;
  let entries =
    Hashtbl.fold
      (fun s a es ->
        {
          e_signature = s;
          e_kind = a.a_sample.kind;
          e_alloc_site = a.a_sample.alloc_site;
          e_free_site = a.a_sample.free_site;
          count = a.a_count;
          shards =
            List.sort compare
              (Hashtbl.fold (fun sh () l -> sh :: l) a.a_shards []);
          first_seen = a.a_first;
          last_seen = a.a_last;
          sample = a.a_sample;
        }
        :: es)
      by_sig []
  in
  let entries =
    (* Rank by count, then by bug identity — never by anything shard
       placement can perturb (see [impact]). *)
    List.sort
      (fun a b ->
        match compare b.count a.count with
        | 0 ->
          compare
            (a.e_kind, a.e_alloc_site, a.e_free_site)
            (b.e_kind, b.e_alloc_site, b.e_free_site)
        | c -> c)
      entries
  in
  { entries; total_reports = !total }

let impact e = e.count * List.length e.shards

let canonical_string t =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "fleet-report v1 signatures=%d reports=%d\n"
       (List.length t.entries) t.total_reports);
  List.iteri
    (fun i e ->
      Buffer.add_string b
        (Printf.sprintf "%d|%s|%d|%d|%d|%s|%s|%s\n" (i + 1)
           (signature_hex e.e_signature)
           e.count e.first_seen e.last_seen e.e_kind e.e_alloc_site
           e.e_free_site))
    t.entries;
  Buffer.contents b

let render t =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "%-4s %-16s %6s %6s %6s  %-23s %-14s %-14s %10s %10s\n"
       "rank" "signature" "count" "shards" "impact" "kind" "alloc site"
       "free site" "first" "last");
  List.iteri
    (fun i e ->
      Buffer.add_string b
        (Printf.sprintf "%-4d %-16s %6d %6d %6d  %-23s %-14s %-14s %10d %10d\n"
           (i + 1)
           (signature_hex e.e_signature)
           e.count (List.length e.shards) (impact e) e.e_kind e.e_alloc_site
           e.e_free_site e.first_seen e.last_seen))
    t.entries;
  Buffer.add_string b
    (Printf.sprintf "%d report(s), %d unique signature(s)\n" t.total_reports
       (List.length t.entries));
  Buffer.contents b

let report_to_json (r : report) =
  let opt = function None -> Telemetry.Json.Null | Some i -> Telemetry.Json.Int i in
  Telemetry.Json.Obj
    [
      ("kind", Telemetry.Json.String r.kind);
      ("fault_addr", Telemetry.Json.Int r.fault_addr);
      ("offset", opt r.offset);
      ("object_size", opt r.object_size);
      ("alloc_site", Telemetry.Json.String r.alloc_site);
      ("free_site", Telemetry.Json.String r.free_site);
      ("scheme", Telemetry.Json.String r.scheme);
      ("shard", Telemetry.Json.Int r.shard);
      ("at_cycles", Telemetry.Json.Int r.at_cycles);
    ]

let to_json t =
  Telemetry.Json.Obj
    [
      ("total_reports", Telemetry.Json.Int t.total_reports);
      ("signatures", Telemetry.Json.Int (List.length t.entries));
      ( "entries",
        Telemetry.Json.List
          (List.mapi
             (fun i e ->
               Telemetry.Json.Obj
                 [
                   ("rank", Telemetry.Json.Int (i + 1));
                   ( "signature",
                     Telemetry.Json.String (signature_hex e.e_signature) );
                   ("kind", Telemetry.Json.String e.e_kind);
                   ("alloc_site", Telemetry.Json.String e.e_alloc_site);
                   ("free_site", Telemetry.Json.String e.e_free_site);
                   ("count", Telemetry.Json.Int e.count);
                   ( "shards",
                     Telemetry.Json.List
                       (List.map (fun s -> Telemetry.Json.Int s) e.shards) );
                   ("impact", Telemetry.Json.Int (impact e));
                   ("first_seen", Telemetry.Json.Int e.first_seen);
                   ("last_seen", Telemetry.Json.Int e.last_seen);
                   ("sample", report_to_json e.sample);
                 ])
             t.entries) );
    ]

let register_metrics registry t =
  List.iter
    (fun e ->
      let name =
        Printf.sprintf
          "fleet.crash_total{signature=\"%s\",kind=\"%s\",alloc_site=\"%s\"}"
          (signature_hex e.e_signature)
          e.e_kind e.e_alloc_site
      in
      Telemetry.Metrics.set_counter
        (Telemetry.Metrics.counter registry name)
        e.count)
    t.entries;
  Telemetry.Metrics.set_counter
    (Telemetry.Metrics.counter registry "fleet.reports_total")
    t.total_reports;
  Telemetry.Metrics.set_gauge
    (Telemetry.Metrics.gauge registry "fleet.signatures")
    (float_of_int (List.length t.entries))
