(** Flow-sensitive, interprocedural dangling-pointer analysis.

    Every [free], dereference ([Field]/[Index]/[Store]) and double-free
    candidate gets a verdict over the {Alive, MaybeFreed, MustFreed}
    lattice, with Steensgaard points-to classes providing the aliasing
    and per-site freshness providing the "provably a different object"
    escape hatch.  Function behaviour is summarised (transitive may-free
    class set, joined entry/return states) and the whole program is
    iterated to a fixpoint.

    Soundness contract (enforced by the differential oracle in
    test/test_dangling.ml): a dynamic temporal violation can only occur
    at a site marked {!May_uaf} or {!Must_uaf}; allocation sites whose
    class has only {!Safe} uses may therefore skip runtime shadow
    protection without losing detections — see {!elide_policy} and
    [Runtime.Schemes.shadow_pool_static]. *)

type verdict = Safe | May_uaf | Must_uaf

val verdict_label : verdict -> string
(** ["safe"], ["may-uaf"], ["must-uaf"]. *)

val verdict_max : verdict -> verdict -> verdict
(** Severity join: [Must_uaf > May_uaf > Safe]. *)

type use_kind = Deref | Free_op

val kind_label : use_kind -> string

type finding = {
  fname : string;       (** enclosing function *)
  pos : Ast.pos;        (** source position of the use *)
  kind : use_kind;
  verdict : verdict;
  class_id : int option;  (** object class dereferenced / freed *)
  witness : string;     (** for May/Must: the path evidence, e.g.
                            ["value freed at main@6:3"] *)
}

type site = {
  ordinal : int;        (** {!Points_to.iter_malloc_sites} numbering *)
  fname : string;
  struct_name : string;
  pos : Ast.pos;
  class_id : int;
  verdict : verdict;    (** the class verdict; [Safe] means every use of
                            every object of the class is Safe, so the
                            site may skip shadow protection *)
}

type result = {
  findings : finding list;  (** sorted by position *)
  sites : site list;        (** every malloc site, in program order *)
  class_verdicts : (int * verdict) list;  (** heap classes only *)
}

val analyze : ?engine:[ `Dsa | `Steensgaard ] -> Ast.program -> result
(** Runs {!Typecheck.check} first; raises {!Typecheck.Type_error} or
    {!Ast.Semantic_error} on malformed input.  [engine] selects the
    aliasing partition: the default [`Dsa] is field-sensitive
    ({!Dsa}), so freeing [p->a] no longer poisons [p->b];
    [`Steensgaard] keeps the original collapsed-field classes (kept for
    differential testing — its verdicts are a sound coarsening of
    [`Dsa]'s). *)

val analyze_with : Pt_query.t -> Ast.program -> result
(** {!analyze} over an explicit partition (must have been computed on
    this exact program, so the positional site numbering agrees). *)

val elide_policy : result -> string -> bool
(** [elide_policy r site] is [true] iff the runtime allocation-site
    string [site] (ending in ["@line:col"], see {!Interp}) corresponds
    to a malloc site whose class verdict is [Safe].  Position-less or
    unknown sites always answer [false] (keep protection). *)

val count_findings : result -> int * int * int
(** (safe, may, must) finding counts. *)

val has_must : result -> bool
