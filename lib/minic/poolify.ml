(* Static pool inference: partition allocation sites into scoped pools
   using the field-sensitive DSA partition, infer each pool's lifetime
   (the owner function where pool_create/pool_destroy land, from
   {!Pool_transform.plan}'s escape-based owner selection), check
   per-pool type homogeneity, and attach a static risk score to every
   allocation site.

   The risk score folds three signals into [0,1]:

     risk = 0.55 * V * (0.5 + 0.5 * D) + 0.30 * E + 0.15 * Z

   - V: the site's class verdict from {!Dangling} (Must_uaf 1.0,
     May_uaf 0.5, Safe 0.0) — the dominant term; a Safe class
     contributes nothing however big or long-lived its pool is;
   - D: May/Must finding density on the class (flagged findings /
     all findings touching the class) — scales V by how much of the
     class's use surface is suspect;
   - E: escape depth pressure, ed/(ed+1), where ed is how many call
     levels the object outlives its allocating function (0 for
     objects owned by their allocator, depth+1 for global-pool
     classes) — deeper escapes mean longer windows for dangling uses;
   - Z: pool size pressure, (nsites-1)/nsites — multi-site pools
     aggregate more frees into one class, so a single use has more
     chances to trip over another site's free.

   Everything is emitted in a canonical order (pools by id = heap-class
   order, sites by ordinal), so two runs over one program render
   byte-identical output — the determinism gate in the bench validator
   and `make pools-smoke` diffs exactly this. *)

type pool = {
  id : int;
  class_id : int;
  pool_var : string;
  owner : string;
  owner_depth : int;
  global : bool;
  destroyable : bool;
  struct_names : string list;
  homogeneous : bool;
  sites : int list;
}

type site_score = {
  ordinal : int;
  fname : string;
  struct_name : string;
  pos : Ast.pos;
  pool_id : int;
  class_id : int;
  verdict : Dangling.verdict;
  escape_depth : int;
  risk : float;
}

type result = { pools : pool list; sites : site_score list }

(* Call-graph depth from main: BFS over direct callees.  Functions not
   reachable from main sit at depth 0 (their pools cannot outlive main
   anyway). *)
let depth_from_main (program : Ast.program) =
  let depth = Hashtbl.create 16 in
  (match Ast.find_func program "main" with
   | None -> ()
   | Some main ->
     let q = Queue.create () in
     Hashtbl.replace depth "main" 0;
     Queue.add main q;
     while not (Queue.is_empty q) do
       let f = Queue.pop q in
       let d = Hashtbl.find depth f.Ast.name in
       List.iter
         (fun g ->
           if not (Hashtbl.mem depth g) then
             match Ast.find_func program g with
             | Some callee ->
               Hashtbl.replace depth g (d + 1);
               Queue.add callee q
             | None -> ())
         (Pool_transform.callee_names f)
     done);
  fun fname -> match Hashtbl.find_opt depth fname with Some d -> d | None -> 0

let verdict_weight = function
  | Dangling.Must_uaf -> 1.0
  | Dangling.May_uaf -> 0.5
  | Dangling.Safe -> 0.0

let risk_score ~verdict ~density ~escape_depth ~pool_sites =
  let v = verdict_weight verdict in
  let e =
    let ed = float_of_int escape_depth in
    ed /. (ed +. 1.0)
  in
  let z =
    let n = float_of_int (max 1 pool_sites) in
    (n -. 1.0) /. n
  in
  (0.55 *. v *. (0.5 +. (0.5 *. density))) +. (0.30 *. e) +. (0.15 *. z)

let analyze (program : Ast.program) =
  Typecheck.check program;
  let q = Dsa.query (Dsa.analyze program) in
  let dang = Dangling.analyze_with q program in
  let owners = Pool_transform.plan q program in
  let depth = depth_from_main program in
  let sites_of_class c =
    List.filter_map
      (fun (s : Dangling.site) ->
        if s.Dangling.class_id = c then Some s.Dangling.ordinal else None)
      dang.Dangling.sites
  in
  let pools =
    List.mapi
      (fun id (c, owner, global) ->
        let struct_names = q.Pt_query.struct_names c in
        {
          id;
          class_id = c;
          pool_var = Pool_transform.pool_var_name c;
          owner;
          owner_depth = depth owner;
          global;
          destroyable = not global;
          struct_names;
          homogeneous = List.length struct_names <= 1;
          sites = sites_of_class c;
        })
      owners
  in
  let pool_of_class c = List.find (fun (p : pool) -> p.class_id = c) pools in
  let density c =
    let total, flagged =
      List.fold_left
        (fun (t, f) (fd : Dangling.finding) ->
          if fd.Dangling.class_id = Some c then
            (t + 1, if fd.Dangling.verdict <> Dangling.Safe then f + 1 else f)
          else (t, f))
        (0, 0) dang.Dangling.findings
    in
    float_of_int flagged /. float_of_int (max 1 total)
  in
  let sites =
    List.map
      (fun (s : Dangling.site) ->
        let p = pool_of_class s.Dangling.class_id in
        let alloc_depth = depth s.Dangling.fname in
        let escape_depth =
          if p.global then alloc_depth + 1
          else max 0 (alloc_depth - p.owner_depth)
        in
        {
          ordinal = s.Dangling.ordinal;
          fname = s.Dangling.fname;
          struct_name = s.Dangling.struct_name;
          pos = s.Dangling.pos;
          pool_id = p.id;
          class_id = s.Dangling.class_id;
          verdict = s.Dangling.verdict;
          escape_depth;
          risk =
            risk_score ~verdict:s.Dangling.verdict
              ~density:(density s.Dangling.class_id)
              ~escape_depth ~pool_sites:(List.length p.sites);
        })
      dang.Dangling.sites
  in
  { pools; sites }

let transform (program : Ast.program) =
  Typecheck.check program;
  Pool_transform.transform_with (Dsa.query (Dsa.analyze program)) program

(* ---- output ----------------------------------------------------------- *)

let round4 f = Float.round (f *. 10000.) /. 10000.

let to_json ?file (r : result) =
  let module J = Telemetry.Json in
  let pool_json (p : pool) =
    J.Obj
      [
        ("id", J.Int p.id);
        ("class", J.Int p.class_id);
        ("pool_var", J.String p.pool_var);
        ("owner", J.String p.owner);
        ("owner_depth", J.Int p.owner_depth);
        ("global", J.Bool p.global);
        ("destroyable", J.Bool p.destroyable);
        ("structs", J.List (List.map (fun s -> J.String s) p.struct_names));
        ("homogeneous", J.Bool p.homogeneous);
        ("sites", J.List (List.map (fun s -> J.Int s) p.sites));
      ]
  in
  let site_json (s : site_score) =
    J.Obj
      [
        ("site", J.Int s.ordinal);
        ("func", J.String s.fname);
        ("struct", J.String s.struct_name);
        ("line", J.Int s.pos.Ast.line);
        ("col", J.Int s.pos.Ast.col);
        ("pool", J.Int s.pool_id);
        ("class", J.Int s.class_id);
        ("verdict", J.String (Dangling.verdict_label s.verdict));
        ("escape_depth", J.Int s.escape_depth);
        ("risk", J.Float (round4 s.risk));
      ]
  in
  let count f l = List.length (List.filter f l) in
  J.Obj
    ((match file with Some f -> [ ("file", J.String f) ] | None -> [])
    @ [
        ( "summary",
          J.Obj
            [
              ("pools", J.Int (List.length r.pools));
              ("destroyable", J.Int (count (fun (p : pool) -> p.destroyable) r.pools));
              ("homogeneous", J.Int (count (fun (p : pool) -> p.homogeneous) r.pools));
              ("sites", J.Int (List.length r.sites));
            ] );
        ( "pools",
          J.List
            (List.map pool_json
               (List.sort (fun (a : pool) b -> compare a.id b.id) r.pools)) );
        ( "sites",
          J.List
            (List.map site_json
               (List.sort
                  (fun (a : site_score) b -> compare a.ordinal b.ordinal)
                  r.sites)) );
      ])

let render ?file (r : result) =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  (match file with Some f -> add "%s:" f | None -> ());
  List.iter
    (fun (p : pool) ->
      add "pool %d (%s): owner=%s depth=%d %s %s [%s] sites=[%s]" p.id
        p.pool_var p.owner p.owner_depth
        (if p.global then "global,kept-until-exit"
         else "scoped,destroyed-at-owner-exit")
        (if p.homogeneous then "homogeneous" else "MIXED-TYPES")
        (String.concat "," p.struct_names)
        (String.concat "," (List.map string_of_int p.sites)))
    (List.sort (fun (a : pool) b -> compare a.id b.id) r.pools);
  List.iter
    (fun (s : site_score) ->
      add "site %d: malloc(struct %s) in %s@%s -> pool %d verdict=%s \
           escape_depth=%d risk=%.4f"
        s.ordinal s.struct_name s.fname (Ast.pos_label s.pos) s.pool_id
        (Dangling.verdict_label s.verdict)
        s.escape_depth (round4 s.risk))
    (List.sort (fun (a : site_score) b -> compare a.ordinal b.ordinal) r.sites);
  Buffer.contents b
