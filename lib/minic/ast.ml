(** Abstract syntax for MiniC, the C-like language the Automatic Pool
    Allocation transform operates on.

    The surface language (see {!Parser}) has structs, pointers, ints,
    functions, [malloc]/[free] and the usual control flow.  The pool
    constructors ([Pool_init] … [Pool_free]) never appear in parsed
    programs; {!Pool_transform} introduces them, exactly as the paper's
    compiler rewrites [malloc]/[free] into [poolalloc]/[poolfree] against
    inserted or inherited pool descriptors.

    Allocation, free and dereference nodes carry a source {!pos} so the
    static analysis ({!Dangling}) and the runtime can talk about the same
    sites: diagnostics print [file:line:col] and the interpreter appends
    ["@line:col"] to allocation-site strings, which is what the per-site
    protection policy in [Runtime.Schemes] keys on. *)

type pos = { line : int; col : int }

(** Position for programmatically built ASTs.  Sites carrying [no_pos]
    are never elided by a protection policy. *)
let no_pos = { line = 0; col = 0 }

let pos_label p =
  if p = no_pos then "?" else Printf.sprintf "%d:%d" p.line p.col

(** Suffix appended to runtime allocation/free site strings; the
    per-site protection policy parses it back out. *)
let pos_suffix p =
  if p = no_pos then "" else Printf.sprintf "@%d:%d" p.line p.col

type typ =
  | Tint
  | Tptr of string  (** pointer to a named struct *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or

type unop =
  | Neg
  | Not

type expr =
  | Int of int
  | Null
  | Var of string
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Field of expr * string * pos          (** [e->f] *)
  | Malloc of string * pos                (** [malloc(struct s)] *)
  | Malloc_array of string * expr * pos
      (** [malloc(struct s, n)]: n contiguous elements *)
  | Pool_malloc of string * string * pos
      (** [poolalloc(pd, struct s)] — transform output *)
  | Pool_malloc_array of string * string * expr * pos
      (** [poolalloc(pd, struct s, n)] — transform output *)
  | Index of expr * expr * pos
      (** [e[i]]: pointer to the i-th element of an array allocation *)
  | Call of string * expr list

type stmt =
  | Decl of typ * string * expr option
  | Assign of string * expr
  | Store of expr * string * expr * pos   (** [e1->f = e2] *)
  | Free of expr * pos
  | Pool_free of string * expr * pos      (** [poolfree(pd, e)] — transform output *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Return of expr option
  | Print of expr
  | Expr of expr
  | Pool_init of string * string    (** [pool pd = poolinit(struct s)] *)
  | Pool_destroy of string

type func = {
  name : string;
  ret : typ option;                 (** [None] = void *)
  params : (typ * string) list;
  pool_params : string list;        (** extra descriptors, transform output *)
  body : stmt list;
}

type program = {
  structs : (string * (typ * string) list) list;
  globals : (typ * string) list;
  funcs : func list;
}

(** Raised by the struct-layout helpers on malformed programs (unknown
    struct or field).  A typed error so the lint/compile CLIs can turn it
    into a diagnostic instead of crashing on [Invalid_argument]. *)
exception Semantic_error of string

let semantic_error fmt = Printf.ksprintf (fun m -> raise (Semantic_error m)) fmt

let struct_fields program name =
  match List.assoc_opt name program.structs with
  | Some fields -> fields
  | None -> semantic_error "unknown struct %s" name

let struct_size program name = 8 * List.length (struct_fields program name)

let field_index program sname fname =
  let fields = struct_fields program sname in
  let rec go i = function
    | [] -> semantic_error "struct %s has no field %s" sname fname
    | (_, f) :: rest -> if f = fname then i else go (i + 1) rest
  in
  go 0 fields

let find_func program name =
  List.find_opt (fun f -> f.name = name) program.funcs

(** Erase all source positions (to [no_pos]); used by the pretty-printer
    round-trip test, which compares ASTs modulo positions. *)
let rec strip_expr = function
  | (Int _ | Null | Var _) as e -> e
  | Binop (op, a, b) -> Binop (op, strip_expr a, strip_expr b)
  | Unop (op, a) -> Unop (op, strip_expr a)
  | Field (e, f, _) -> Field (strip_expr e, f, no_pos)
  | Malloc (s, _) -> Malloc (s, no_pos)
  | Malloc_array (s, n, _) -> Malloc_array (s, strip_expr n, no_pos)
  | Pool_malloc (pd, s, _) -> Pool_malloc (pd, s, no_pos)
  | Pool_malloc_array (pd, s, n, _) ->
    Pool_malloc_array (pd, s, strip_expr n, no_pos)
  | Index (e, i, _) -> Index (strip_expr e, strip_expr i, no_pos)
  | Call (f, args) -> Call (f, List.map strip_expr args)

let rec strip_stmt = function
  | Decl (t, x, init) -> Decl (t, x, Option.map strip_expr init)
  | Assign (x, e) -> Assign (x, strip_expr e)
  | Store (e1, f, e2, _) -> Store (strip_expr e1, f, strip_expr e2, no_pos)
  | Free (e, _) -> Free (strip_expr e, no_pos)
  | Pool_free (pd, e, _) -> Pool_free (pd, strip_expr e, no_pos)
  | If (c, t, f) ->
    If (strip_expr c, List.map strip_stmt t, List.map strip_stmt f)
  | While (c, body) -> While (strip_expr c, List.map strip_stmt body)
  | Return e -> Return (Option.map strip_expr e)
  | Print e -> Print (strip_expr e)
  | Expr e -> Expr (strip_expr e)
  | (Pool_init _ | Pool_destroy _) as s -> s

let strip_positions program =
  { program with
    funcs =
      List.map
        (fun f -> { f with body = List.map strip_stmt f.body })
        program.funcs }
