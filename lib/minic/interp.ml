exception Null_dereference of string
exception Runtime_error of string

type outcome = { prints : int list; steps : int }

exception Return_value of int option

type frame = {
  vars : (string, int) Hashtbl.t;
  pools : (string, Runtime.Scheme.pool_handle) Hashtbl.t;
}

type state = {
  program : Ast.program;
  scheme : Runtime.Scheme.t;
  globals : (string, int) Hashtbl.t;
  global_pools : (string, Runtime.Scheme.pool_handle) Hashtbl.t;
  mutable steps : int;
  max_steps : int;
  mutable prints : int list;
  on_violation : (fname:string -> pos:Ast.pos -> Shadow.Report.t -> unit) option;
}

let fail fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

let step st =
  st.steps <- st.steps + 1;
  st.scheme.Runtime.Scheme.compute 1;
  if st.steps > st.max_steps then fail "exceeded %d interpreter steps" st.max_steps

let lookup_var st frame name =
  match Hashtbl.find_opt frame.vars name with
  | Some v -> v
  | None ->
    (match Hashtbl.find_opt st.globals name with
     | Some v -> v
     | None -> fail "unbound variable %s" name)

let set_var st frame name v =
  if Hashtbl.mem frame.vars name then Hashtbl.replace frame.vars name v
  else if Hashtbl.mem st.globals name then Hashtbl.replace st.globals name v
  else fail "assignment to unbound variable %s" name

let lookup_pool st frame name =
  match Hashtbl.find_opt frame.pools name with
  | Some p -> p
  | None ->
    (match Hashtbl.find_opt st.global_pools name with
     | Some p -> p
     | None -> fail "unbound pool descriptor %s" name)

let truthy v = v <> 0
let of_bool b = if b then 1 else 0

(* Run a guarded memory operation; a detected violation is reported to
   the differential-oracle hook (with the syntactic use site) before
   propagating, so tests can match dynamic violations against static
   verdicts per source position. *)
let guarded st ~fname ~pos f =
  match st.on_violation with
  | None -> f ()
  | Some hook ->
    (try f ()
     with Shadow.Report.Violation r ->
       hook ~fname ~pos r;
       raise (Shadow.Report.Violation r))

let rec eval st frame fname expr =
  step st;
  match expr with
  | Ast.Int n -> n
  | Ast.Null -> 0
  | Ast.Var x -> lookup_var st frame x
  | Ast.Binop (op, a, b) -> eval_binop st frame fname op a b
  | Ast.Unop (Ast.Neg, a) -> -eval st frame fname a
  | Ast.Unop (Ast.Not, a) -> of_bool (not (truthy (eval st frame fname a)))
  | Ast.Field (base, f, pos) ->
    let addr, off = field_addr st frame fname base f in
    guarded st ~fname ~pos (fun () ->
        st.scheme.Runtime.Scheme.load (addr + off) ~width:8)
  | Ast.Malloc (s, pos) ->
    st.scheme.Runtime.Scheme.malloc
      ~site:
        (Printf.sprintf "%s:malloc(struct %s)%s" fname s (Ast.pos_suffix pos))
      (Ast.struct_size st.program s)
  | Ast.Malloc_array (s, count, pos) ->
    let n = eval st frame fname count in
    if n <= 0 then fail "%s: malloc(struct %s, %d): count must be positive" fname s n;
    st.scheme.Runtime.Scheme.malloc
      ~site:
        (Printf.sprintf "%s:malloc(struct %s, %d)%s" fname s n
           (Ast.pos_suffix pos))
      (n * Ast.struct_size st.program s)
  | Ast.Pool_malloc_array (pv, s, count, pos) ->
    let n = eval st frame fname count in
    if n <= 0 then fail "%s: poolalloc(struct %s, %d): count must be positive" fname s n;
    let pool = lookup_pool st frame pv in
    pool.Runtime.Scheme.pool_alloc
      ~site:
        (Printf.sprintf "%s:poolalloc(%s, struct %s, %d)%s" fname pv s n
           (Ast.pos_suffix pos))
      (n * Ast.struct_size st.program s)
  | Ast.Index (base, idx, _) ->
    let addr = eval st frame fname base in
    if addr = 0 then
      raise (Null_dereference (Printf.sprintf "%s: null[...]" fname));
    let i = eval st frame fname idx in
    let sname =
      match struct_of_expr st fname frame base with
      | Some s -> s
      | None -> fail "%s: cannot type base of [...]" fname
    in
    addr + (i * Ast.struct_size st.program sname)
  | Ast.Pool_malloc (pv, s, pos) ->
    let pool = lookup_pool st frame pv in
    pool.Runtime.Scheme.pool_alloc
      ~site:
        (Printf.sprintf "%s:poolalloc(%s, struct %s)%s" fname pv s
           (Ast.pos_suffix pos))
      (Ast.struct_size st.program s)
  | Ast.Call (g, args) ->
    (match call st fname g args frame with
     | Some v -> v
     | None -> fail "void result of %s used as a value" g)

and eval_binop st frame fname op a b =
  match op with
  | Ast.And ->
    if truthy (eval st frame fname a) then
      of_bool (truthy (eval st frame fname b))
    else 0
  | Ast.Or ->
    if truthy (eval st frame fname a) then 1
    else of_bool (truthy (eval st frame fname b))
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod | Ast.Eq | Ast.Ne
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
    let x = eval st frame fname a in
    let y = eval st frame fname b in
    (match op with
     | Ast.Add -> x + y
     | Ast.Sub -> x - y
     | Ast.Mul -> x * y
     | Ast.Div -> if y = 0 then fail "division by zero" else x / y
     | Ast.Mod -> if y = 0 then fail "modulo by zero" else x mod y
     | Ast.Eq -> of_bool (x = y)
     | Ast.Ne -> of_bool (x <> y)
     | Ast.Lt -> of_bool (x < y)
     | Ast.Le -> of_bool (x <= y)
     | Ast.Gt -> of_bool (x > y)
     | Ast.Ge -> of_bool (x >= y)
     | Ast.And | Ast.Or ->
       (* invariant: short-circuit ops are handled by the arms above *)
       assert false)

and field_addr st frame fname base f =
  let addr = eval st frame fname base in
  if addr = 0 then
    raise (Null_dereference (Printf.sprintf "%s: null->%s" fname f));
  (* Field offsets need the struct type of the base expression. *)
  let sname =
    match struct_of_expr st fname frame base with
    | Some s -> s
    | None -> fail "%s: cannot type base of ->%s" fname f
  in
  (addr, 8 * Ast.field_index st.program sname f)

(* Static struct type of a pointer expression; the per-frame declared
   types recorded at Decl/param-bind time make this a cheap lookup. *)
and struct_of_expr st fname frame = function
  | Ast.Var x ->
    (match Hashtbl.find_opt frame.vars ("%type:" ^ x) with
     | Some id -> Some (List.nth (List.map fst st.program.Ast.structs) id)
     | None ->
       (match Hashtbl.find_opt st.globals ("%type:" ^ x) with
        | Some id -> Some (List.nth (List.map fst st.program.Ast.structs) id)
        | None -> None))
  | Ast.Field (base, f, _) ->
    Option.bind (struct_of_expr st fname frame base) (fun sname ->
        match
          List.assoc_opt f
            (List.map (fun (t, n) -> (n, t)) (Ast.struct_fields st.program sname))
        with
        | Some (Ast.Tptr s) -> Some s
        | Some Ast.Tint | None -> None)
  | Ast.Malloc (s, _)
  | Ast.Pool_malloc (_, s, _)
  | Ast.Malloc_array (s, _, _)
  | Ast.Pool_malloc_array (_, s, _, _) ->
    Some s
  | Ast.Index (base, _, _) -> struct_of_expr st fname frame base
  | Ast.Call (g, _) ->
    Option.bind (Ast.find_func st.program g) (fun fn ->
        match fn.Ast.ret with
        | Some (Ast.Tptr s) -> Some s
        | Some Ast.Tint | None -> None)
  | Ast.Int _ | Ast.Null | Ast.Binop _ | Ast.Unop _ -> None

and struct_id st sname =
  let rec go i = function
    | [] -> fail "unknown struct %s" sname
    | (n, _) :: rest -> if n = sname then i else go (i + 1) rest
  in
  go 0 st.program.Ast.structs

and bind_typed st frame name typ value =
  Hashtbl.replace frame.vars name value;
  match typ with
  | Ast.Tptr s -> Hashtbl.replace frame.vars ("%type:" ^ name) (struct_id st s)
  | Ast.Tint -> ()

and call st caller g args caller_frame =
  match Ast.find_func st.program g with
  | None -> fail "%s: call to undefined function %s" caller g
  | Some callee ->
    let n_params = List.length callee.Ast.params in
    let value_args, pool_args =
      let rec split i = function
        | [] -> ([], [])
        | arg :: rest ->
          let vs, ps = split (i + 1) rest in
          if i < n_params then (arg :: vs, ps) else (vs, arg :: ps)
      in
      split 0 args
    in
    let frame = { vars = Hashtbl.create 16; pools = Hashtbl.create 4 } in
    List.iter2
      (fun (typ, p) arg ->
        bind_typed st frame p typ (eval st caller_frame caller arg))
      callee.Ast.params value_args;
    List.iter2
      (fun pv arg ->
        match arg with
        | Ast.Var name ->
          Hashtbl.replace frame.pools pv (lookup_pool st caller_frame name)
        | _ -> fail "pool argument of %s is not a descriptor variable" g)
      callee.Ast.pool_params pool_args;
    (try
       exec_stmts st frame callee.Ast.name callee.Ast.body;
       None
     with Return_value v -> v)

and exec_stmts st frame fname stmts = List.iter (exec_stmt st frame fname) stmts

and exec_stmt st frame fname stmt =
  step st;
  match stmt with
  | Ast.Decl (typ, x, init) ->
    let v =
      match init with
      | Some e -> eval st frame fname e
      | None -> 0
    in
    bind_typed st frame x typ v
  | Ast.Assign (x, e) -> set_var st frame x (eval st frame fname e)
  | Ast.Store (base, f, e, pos) ->
    let addr, off = field_addr st frame fname base f in
    let v = eval st frame fname e in
    guarded st ~fname ~pos (fun () ->
        st.scheme.Runtime.Scheme.store (addr + off) ~width:8 v)
  | Ast.Free (e, pos) ->
    let v = eval st frame fname e in
    if v <> 0 then
      guarded st ~fname ~pos (fun () ->
          st.scheme.Runtime.Scheme.free
            ~site:(Printf.sprintf "%s:free%s" fname (Ast.pos_suffix pos))
            v)
  | Ast.Pool_free (pv, e, pos) ->
    let v = eval st frame fname e in
    if v <> 0 then begin
      let pool = lookup_pool st frame pv in
      guarded st ~fname ~pos (fun () ->
          pool.Runtime.Scheme.pool_free
            ~site:
              (Printf.sprintf "%s:poolfree(%s)%s" fname pv (Ast.pos_suffix pos))
            v)
    end
  | Ast.If (c, t, f) ->
    if truthy (eval st frame fname c) then exec_stmts st frame fname t
    else exec_stmts st frame fname f
  | Ast.While (c, body) ->
    let rec loop () =
      if truthy (eval st frame fname c) then begin
        exec_stmts st frame fname body;
        loop ()
      end
    in
    loop ()
  | Ast.Return e ->
    raise (Return_value (Option.map (eval st frame fname) e))
  | Ast.Print e -> st.prints <- eval st frame fname e :: st.prints
  | Ast.Expr e ->
    (match e with
     | Ast.Call (g, args) -> ignore (call st fname g args frame)
     | _ -> ignore (eval st frame fname e))
  | Ast.Pool_init (pv, sname) ->
    let elem_size =
      if sname = "" then None else Some (Ast.struct_size st.program sname)
    in
    let handle = st.scheme.Runtime.Scheme.pool_create ?elem_size () in
    if fname = "main" then Hashtbl.replace st.global_pools pv handle;
    Hashtbl.replace frame.pools pv handle
  | Ast.Pool_destroy pv ->
    let pool = lookup_pool st frame pv in
    pool.Runtime.Scheme.pool_destroy ()

let run ?(entry = "main") ?(max_steps = 50_000_000) ?on_violation program scheme =
  let st =
    {
      program;
      scheme;
      globals = Hashtbl.create 16;
      global_pools = Hashtbl.create 4;
      steps = 0;
      max_steps;
      prints = [];
      on_violation;
    }
  in
  List.iter
    (fun (typ, name) ->
      Hashtbl.replace st.globals name 0;
      match typ with
      | Ast.Tptr s -> Hashtbl.replace st.globals ("%type:" ^ name) (struct_id st s)
      | Ast.Tint -> ())
    program.Ast.globals;
  (match Ast.find_func program entry with
   | None -> fail "no %s function" entry
   | Some f ->
     if f.Ast.params <> [] then fail "%s must take no parameters" entry;
     ignore (call st "<top>" entry [] { vars = Hashtbl.create 1; pools = Hashtbl.create 1 }));
  { prints = List.rev st.prints; steps = st.steps }
