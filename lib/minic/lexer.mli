(** Hand-written lexer for MiniC.  Produces the token stream the
    recursive-descent {!Parser} consumes; every token carries its source
    line for error reporting. *)

type token =
  | INT_LIT of int
  | IDENT of string
  | KW_STRUCT | KW_INT | KW_VOID | KW_IF | KW_ELSE | KW_WHILE | KW_RETURN
  | KW_MALLOC | KW_FREE | KW_NULL | KW_PRINT
  | LBRACE | RBRACE | LPAREN | RPAREN | LBRACKET | RBRACKET | SEMI | COMMA | STAR
  | ARROW | ASSIGN
  | PLUS | MINUS | SLASH | PERCENT
  | EQ | NE | LT | LE | GT | GE | ANDAND | OROR | BANG
  | EOF

exception Lex_error of { line : int; message : string }

val tokenize : string -> (token * int) list
(** Token plus its 1-based source line.  Comments ([// …] and [/* … */])
    and whitespace are skipped.  Raises {!Lex_error} on junk. *)

val tokenize_pos : string -> (token * Ast.pos) list
(** Like {!tokenize}, but each token carries its full 1-based
    line/column position — what the parser threads into AST nodes so
    lint diagnostics and runtime allocation sites can name
    [file:line:col]. *)

val token_label : token -> string
