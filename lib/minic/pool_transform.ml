type pool_desc = {
  class_id : Points_to.class_id;
  pool_var : string;
  owner : string;
  struct_name : string option;
  global : bool;
}

type summary = {
  pools : pool_desc list;
  sites_rewritten : int;
  frees_rewritten : int;
}

exception Transform_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Transform_error s)) fmt
let pool_var_name c = Printf.sprintf "__pool%d" c

module S = Set.Make (String)
module C = Set.Make (Int)

(* ---- call graph ------------------------------------------------------ *)

let rec calls_in_expr acc = function
  | Ast.Int _ | Ast.Null | Ast.Var _ | Ast.Malloc _ | Ast.Pool_malloc _ -> acc
  | Ast.Binop (_, a, b) | Ast.Index (a, b, _) ->
    calls_in_expr (calls_in_expr acc a) b
  | Ast.Unop (_, a) | Ast.Field (a, _, _) | Ast.Malloc_array (_, a, _)
  | Ast.Pool_malloc_array (_, _, a, _) ->
    calls_in_expr acc a
  | Ast.Call (g, args) -> List.fold_left calls_in_expr (S.add g acc) args

let rec calls_in_stmt acc = function
  | Ast.Decl (_, _, Some e)
  | Ast.Assign (_, e)
  | Ast.Free (e, _)
  | Ast.Pool_free (_, e, _)
  | Ast.Print e
  | Ast.Expr e
  | Ast.Return (Some e) ->
    calls_in_expr acc e
  | Ast.Store (a, _, b, _) -> calls_in_expr (calls_in_expr acc a) b
  | Ast.If (c, t, f) ->
    let acc = calls_in_expr acc c in
    List.fold_left calls_in_stmt (List.fold_left calls_in_stmt acc t) f
  | Ast.While (c, body) ->
    List.fold_left calls_in_stmt (calls_in_expr acc c) body
  | Ast.Decl (_, _, None) | Ast.Return None | Ast.Pool_init _ | Ast.Pool_destroy _
    ->
    acc

let callees (f : Ast.func) = List.fold_left calls_in_stmt S.empty f.body

(* Functions reachable from [f] in the call graph, including [f]. *)
let reach_table (program : Ast.program) =
  let direct = Hashtbl.create 16 in
  List.iter
    (fun (f : Ast.func) -> Hashtbl.replace direct f.Ast.name (callees f))
    program.funcs;
  let memo = Hashtbl.create 16 in
  let rec go name visited =
    match Hashtbl.find_opt memo name with
    | Some set -> set
    | None ->
      if S.mem name visited then S.singleton name
      else begin
        let visited = S.add name visited in
        let children =
          match Hashtbl.find_opt direct name with
          | Some cs -> cs
          | None -> S.empty
        in
        let set =
          S.fold (fun c acc -> S.union acc (go c visited)) children
            (S.singleton name)
        in
        Hashtbl.replace memo name set;
        set
      end
  in
  fun name -> go name S.empty

(* ---- class usage ------------------------------------------------------ *)

(* Which functions touch each heap class: malloc sites, frees, and any
   field access (the last so that pooldestroy postdominates all uses). *)
let users_of_classes (q : Pt_query.t) (program : Ast.program) =
  let users : (Points_to.class_id, S.t ref) Hashtbl.t = Hashtbl.create 16 in
  let add c fname =
    let cell =
      match Hashtbl.find_opt users c with
      | Some cell -> cell
      | None ->
        let cell = ref S.empty in
        Hashtbl.replace users c cell;
        cell
    in
    cell := S.add fname !cell
  in
  Points_to.iter_malloc_sites program (fun ~site ~fname ~struct_name:_ ~pos:_ ->
      add (q.Pt_query.site_class site) fname);
  let note_field fname base =
    match q.Pt_query.expr_pointee_class ~fname base with
    | Some c -> add c fname
    | None -> ()
  in
  let rec expr fname = function
    | Ast.Int _ | Ast.Null | Ast.Var _ | Ast.Malloc _ | Ast.Pool_malloc _ -> ()
    | Ast.Binop (_, a, b) ->
      expr fname a;
      expr fname b
    | Ast.Unop (_, a)
    | Ast.Malloc_array (_, a, _)
    | Ast.Pool_malloc_array (_, _, a, _) ->
      expr fname a
    | Ast.Index (base, idx, _) ->
      (* Element access keeps the object class in use. *)
      (match q.Pt_query.expr_pointee_class ~fname base with
       | Some c -> add c fname
       | None -> ());
      expr fname base;
      expr fname idx
    | Ast.Field (base, _, _) ->
      note_field fname base;
      expr fname base
    | Ast.Call (_, args) -> List.iter (expr fname) args
  in
  let rec stmt fname = function
    | Ast.Decl (_, _, Some e)
    | Ast.Assign (_, e)
    | Ast.Print e
    | Ast.Expr e
    | Ast.Return (Some e) ->
      expr fname e
    | Ast.Free (e, _) | Ast.Pool_free (_, e, _) ->
      (match q.Pt_query.expr_pointee_class ~fname e with
       | Some c -> add c fname
       | None -> ());
      expr fname e
    | Ast.Store (base, _, e, _) ->
      note_field fname base;
      expr fname base;
      expr fname e
    | Ast.If (c, t, f) ->
      expr fname c;
      List.iter (stmt fname) t;
      List.iter (stmt fname) f
    | Ast.While (c, body) ->
      expr fname c;
      List.iter (stmt fname) body
    | Ast.Decl (_, _, None) | Ast.Return None | Ast.Pool_init _
    | Ast.Pool_destroy _ ->
      ()
  in
  List.iter
    (fun (f : Ast.func) -> List.iter (stmt f.name) f.body)
    program.funcs;
  fun c ->
    match Hashtbl.find_opt users c with
    | Some cell -> !cell
    | None -> S.empty

(* ---- owner selection --------------------------------------------------- *)

let choose_owners (q : Pt_query.t) program =
  let reach = reach_table program in
  let users = users_of_classes q program in
  let global_set = C.of_list (Escape.reachable_from_globals q program) in
  let main_name =
    match Ast.find_func program "main" with
    | Some f -> f.Ast.name
    | None -> fail "pool transform requires a main function"
  in
  List.map
    (fun c ->
      let us = users c in
      let global_owner () = (c, main_name, true) in
      if C.mem c global_set then global_owner ()
      else begin
        let candidates =
          List.filter
            (fun (f : Ast.func) ->
              (not (Escape.escapes q f c)) && S.subset us (reach f.Ast.name))
            program.Ast.funcs
        in
        match candidates with
        | [] -> global_owner ()
        | _ ->
          (* Deepest viable owner = the one with the smallest call
             subtree; ties broken by name for determinism. *)
          let best =
            List.fold_left
              (fun best (f : Ast.func) ->
                let size = S.cardinal (reach f.Ast.name) in
                match best with
                | None -> Some (f.Ast.name, size)
                | Some (bname, bsize) ->
                  if size < bsize || (size = bsize && f.Ast.name < bname) then
                    Some (f.Ast.name, size)
                  else best)
              None candidates
          in
          (match best with
           | Some (owner, _) -> (c, owner, false)
           | None -> global_owner ())
      end)
    q.Pt_query.heap

(* ---- descriptor flow --------------------------------------------------- *)

(* needed f c: f allocates/frees from c, or calls someone who needs the
   descriptor and is not its owner. *)
let compute_needed (q : Pt_query.t) (program : Ast.program) owners =
  let owner_of c =
    let rec find = function
      | [] -> fail "class %d has no owner" c
      | (c', o, _) :: rest -> if c = c' then o else find rest
    in
    find owners
  in
  (* Only classes that actually contain malloc sites have pools; a [free]
     whose pointer class never received an allocation (dead code, or a
     pointer provably always null) stays a plain free. *)
  let pool_classes = C.of_list q.Pt_query.heap in
  let direct = Hashtbl.create 16 in
  let add fname c =
    if C.mem c pool_classes then begin
      let cur =
        match Hashtbl.find_opt direct fname with
        | Some s -> s
        | None -> C.empty
      in
      Hashtbl.replace direct fname (C.add c cur)
    end
  in
  Points_to.iter_malloc_sites program (fun ~site ~fname ~struct_name:_ ~pos:_ ->
      add fname (q.Pt_query.site_class site));
  let rec frees fname = function
    | Ast.Free (e, _) | Ast.Pool_free (_, e, _) ->
      (match q.Pt_query.expr_pointee_class ~fname e with
       | Some c -> add fname c
       | None -> ())
    | Ast.If (_, t, f) ->
      List.iter (frees fname) t;
      List.iter (frees fname) f
    | Ast.While (_, body) -> List.iter (frees fname) body
    | Ast.Decl _ | Ast.Assign _ | Ast.Store _ | Ast.Print _ | Ast.Expr _
    | Ast.Return _ | Ast.Pool_init _ | Ast.Pool_destroy _ ->
      ()
  in
  List.iter
    (fun (f : Ast.func) -> List.iter (frees f.name) f.body)
    program.funcs;
  let needed = Hashtbl.create 16 in
  List.iter
    (fun (f : Ast.func) ->
      Hashtbl.replace needed f.Ast.name
        (match Hashtbl.find_opt direct f.Ast.name with
         | Some s -> s
         | None -> C.empty))
    program.funcs;
  let get tbl name =
    match Hashtbl.find_opt tbl name with
    | Some s -> s
    | None -> C.empty
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (f : Ast.func) ->
        let mine = get needed f.Ast.name in
        let wanted =
          S.fold
            (fun g acc ->
              C.union acc (C.filter (fun c -> owner_of c <> g) (get needed g)))
            (callees f) mine
        in
        if not (C.equal wanted mine) then begin
          Hashtbl.replace needed f.Ast.name wanted;
          changed := true
        end)
      program.funcs
  done;
  fun fname -> get needed fname

(* ---- rewriting --------------------------------------------------------- *)

let transform_with (q : Pt_query.t) (program : Ast.program) =
  let pool_classes = C.of_list q.Pt_query.heap in
  let owners = choose_owners q program in
  let needed = compute_needed q program owners in
  let owner_of c =
    List.filter_map (fun (c', o, _) -> if c = c' then Some o else None) owners
    |> function
    | [ o ] -> o
    | _ -> fail "class %d has no unique owner" c
  in
  (* Pool parameters of each function, in deterministic class order. *)
  let pool_params_of fname =
    C.elements (needed fname)
    |> List.filter (fun c -> owner_of c <> fname)
    |> List.map pool_var_name
  in
  let site_counter = ref 0 in
  let sites_rewritten = ref 0 in
  let frees_rewritten = ref 0 in
  let rec rewrite_expr fname e =
    match e with
    | Ast.Int _ | Ast.Null | Ast.Var _ -> e
    | Ast.Binop (op, a, b) ->
      let a = rewrite_expr fname a in
      let b = rewrite_expr fname b in
      Ast.Binop (op, a, b)
    | Ast.Unop (op, a) -> Ast.Unop (op, rewrite_expr fname a)
    | Ast.Field (base, f, p) -> Ast.Field (rewrite_expr fname base, f, p)
    | Ast.Index (base, idx, p) ->
      let base = rewrite_expr fname base in
      let idx = rewrite_expr fname idx in
      Ast.Index (base, idx, p)
    | Ast.Malloc_array (s, count, p) | Ast.Pool_malloc_array (_, s, count, p) ->
      (* Site numbering: the count subexpression is visited first, then
         this site — mirroring the analysis traversal. *)
      let count = rewrite_expr fname count in
      let site = !site_counter in
      incr site_counter;
      incr sites_rewritten;
      Ast.Pool_malloc_array
        (pool_var_name (q.Pt_query.site_class site), s, count, p)
    | Ast.Malloc (s, p) | Ast.Pool_malloc (_, s, p) ->
      let site = !site_counter in
      incr site_counter;
      incr sites_rewritten;
      Ast.Pool_malloc (pool_var_name (q.Pt_query.site_class site), s, p)
    | Ast.Call (g, args) ->
      let args = List.map (rewrite_expr fname) args in
      let extra = List.map (fun pv -> Ast.Var pv) (pool_params_of g) in
      Ast.Call (g, args @ extra)
  in
  let rec rewrite_stmt fname destroys stmt =
    match stmt with
    | Ast.Decl (t, x, init) ->
      [ Ast.Decl (t, x, Option.map (rewrite_expr fname) init) ]
    | Ast.Assign (x, e) -> [ Ast.Assign (x, rewrite_expr fname e) ]
    | Ast.Store (base, f, e, p) ->
      let base = rewrite_expr fname base in
      let e = rewrite_expr fname e in
      [ Ast.Store (base, f, e, p) ]
    | Ast.Free (e, p) | Ast.Pool_free (_, e, p) ->
      let e = rewrite_expr fname e in
      (match q.Pt_query.expr_pointee_class ~fname e with
       | Some c when C.mem c pool_classes ->
         incr frees_rewritten;
         [ Ast.Pool_free (pool_var_name c, e, p) ]
       | Some _ | None -> [ Ast.Free (e, p) ])
    | Ast.Print e -> [ Ast.Print (rewrite_expr fname e) ]
    | Ast.Expr e -> [ Ast.Expr (rewrite_expr fname e) ]
    | Ast.Return e ->
      let e = Option.map (rewrite_expr fname) e in
      List.map (fun pv -> Ast.Pool_destroy pv) destroys @ [ Ast.Return e ]
    | Ast.If (c, t, f) ->
      let c = rewrite_expr fname c in
      let t = List.concat_map (rewrite_stmt fname destroys) t in
      let f = List.concat_map (rewrite_stmt fname destroys) f in
      [ Ast.If (c, t, f) ]
    | Ast.While (c, body) ->
      let c = rewrite_expr fname c in
      [ Ast.While (c, List.concat_map (rewrite_stmt fname destroys) body) ]
    | Ast.Pool_init _ | Ast.Pool_destroy _ -> [ stmt ]
  in
  let ends_with_return body =
    match List.rev body with
    | Ast.Return _ :: _ -> true
    | _ -> false
  in
  (* Functions must be rewritten in program order so the site counter
     matches the analysis numbering. *)
  let funcs =
    List.map
      (fun (f : Ast.func) ->
        let fname = f.Ast.name in
        let owned =
          List.filter_map
            (fun (c, o, _) -> if o = fname then Some c else None)
            owners
          |> List.sort compare
        in
        let destroys = List.map pool_var_name owned in
        let inits =
          List.map
            (fun c ->
              let hint =
                match q.Pt_query.struct_hint c with
                | Some s -> s
                | None -> ""
              in
              Ast.Pool_init (pool_var_name c, hint))
            owned
        in
        let body = List.concat_map (rewrite_stmt fname destroys) f.Ast.body in
        let body =
          if ends_with_return body then inits @ body
          else
            inits @ body
            @ List.map (fun pv -> Ast.Pool_destroy pv) destroys
        in
        { f with Ast.body; pool_params = pool_params_of fname })
      program.funcs
  in
  let transformed = { program with Ast.funcs } in
  let pools =
    List.map
      (fun (c, owner, global) ->
        {
          class_id = c;
          pool_var = pool_var_name c;
          owner;
          struct_name = q.Pt_query.struct_hint c;
          global;
        })
      owners
  in
  ( transformed,
    {
      pools;
      sites_rewritten = !sites_rewritten;
      frees_rewritten = !frees_rewritten;
    } )

let transform (program : Ast.program) =
  Typecheck.check program;
  transform_with (Points_to.query (Points_to.analyze program)) program

let plan = choose_owners

let callee_names f = S.elements (callees f)
