let typ_to_string = function
  | Ast.Tint -> "int"
  | Ast.Tptr s -> Printf.sprintf "struct %s *" s

let binop_to_string = function
  | Ast.Add -> "+" | Ast.Sub -> "-" | Ast.Mul -> "*" | Ast.Div -> "/"
  | Ast.Mod -> "%" | Ast.Eq -> "==" | Ast.Ne -> "!=" | Ast.Lt -> "<"
  | Ast.Le -> "<=" | Ast.Gt -> ">" | Ast.Ge -> ">=" | Ast.And -> "&&"
  | Ast.Or -> "||"

let rec expr_to_string = function
  | Ast.Int n -> string_of_int n
  | Ast.Null -> "null"
  | Ast.Var x -> x
  | Ast.Binop (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (expr_to_string a) (binop_to_string op)
      (expr_to_string b)
  | Ast.Unop (Ast.Neg, a) -> Printf.sprintf "(-%s)" (expr_to_string a)
  | Ast.Unop (Ast.Not, a) -> Printf.sprintf "(!%s)" (expr_to_string a)
  | Ast.Field (e, f, _) -> Printf.sprintf "%s->%s" (expr_to_string e) f
  | Ast.Malloc (s, _) -> Printf.sprintf "malloc(struct %s)" s
  | Ast.Malloc_array (s, n, _) ->
    Printf.sprintf "malloc(struct %s, %s)" s (expr_to_string n)
  | Ast.Pool_malloc (pv, s, _) -> Printf.sprintf "poolalloc(%s, struct %s)" pv s
  | Ast.Pool_malloc_array (pv, s, n, _) ->
    Printf.sprintf "poolalloc(%s, struct %s, %s)" pv s (expr_to_string n)
  | Ast.Index (e, i, _) ->
    Printf.sprintf "%s[%s]" (expr_to_string e) (expr_to_string i)
  | Ast.Call (g, args) ->
    Printf.sprintf "%s(%s)" g (String.concat ", " (List.map expr_to_string args))

let rec stmt_lines indent stmt =
  let pad = String.make indent ' ' in
  match stmt with
  | Ast.Decl (t, x, None) -> [ Printf.sprintf "%s%s %s;" pad (typ_to_string t) x ]
  | Ast.Decl (t, x, Some e) ->
    [ Printf.sprintf "%s%s %s = %s;" pad (typ_to_string t) x (expr_to_string e) ]
  | Ast.Assign (x, e) -> [ Printf.sprintf "%s%s = %s;" pad x (expr_to_string e) ]
  | Ast.Store (b, f, e, _) ->
    [ Printf.sprintf "%s%s->%s = %s;" pad (expr_to_string b) f (expr_to_string e) ]
  | Ast.Free (e, _) -> [ Printf.sprintf "%sfree(%s);" pad (expr_to_string e) ]
  | Ast.Pool_free (pv, e, _) ->
    [ Printf.sprintf "%spoolfree(%s, %s);" pad pv (expr_to_string e) ]
  | Ast.Print e -> [ Printf.sprintf "%sprint(%s);" pad (expr_to_string e) ]
  | Ast.Expr e -> [ Printf.sprintf "%s%s;" pad (expr_to_string e) ]
  | Ast.Return None -> [ pad ^ "return;" ]
  | Ast.Return (Some e) -> [ Printf.sprintf "%sreturn %s;" pad (expr_to_string e) ]
  | Ast.Pool_init (pv, s) ->
    [ Printf.sprintf "%spool %s = poolinit(%s);" pad pv
        (if s = "" then "?" else "struct " ^ s) ]
  | Ast.Pool_destroy pv -> [ Printf.sprintf "%spooldestroy(%s);" pad pv ]
  | Ast.If (c, t, []) ->
    (Printf.sprintf "%sif (%s) {" pad (expr_to_string c)
     :: List.concat_map (stmt_lines (indent + 2)) t)
    @ [ pad ^ "}" ]
  | Ast.If (c, t, f) ->
    (Printf.sprintf "%sif (%s) {" pad (expr_to_string c)
     :: List.concat_map (stmt_lines (indent + 2)) t)
    @ [ pad ^ "} else {" ]
    @ List.concat_map (stmt_lines (indent + 2)) f
    @ [ pad ^ "}" ]
  | Ast.While (c, body) ->
    (Printf.sprintf "%swhile (%s) {" pad (expr_to_string c)
     :: List.concat_map (stmt_lines (indent + 2)) body)
    @ [ pad ^ "}" ]

let func_to_string (f : Ast.func) =
  let ret =
    match f.ret with
    | None -> "void"
    | Some t -> typ_to_string t
  in
  let params =
    List.map (fun (t, x) -> Printf.sprintf "%s %s" (typ_to_string t) x) f.params
    @ List.map (fun pv -> Printf.sprintf "pool %s" pv) f.pool_params
  in
  String.concat "\n"
    ((Printf.sprintf "%s %s(%s) {" ret f.name (String.concat ", " params)
      :: List.concat_map (stmt_lines 2) f.body)
    @ [ "}" ])

let program_to_string (p : Ast.program) =
  let structs =
    List.map
      (fun (name, fields) ->
        String.concat "\n"
          ((Printf.sprintf "struct %s {" name
            :: List.map
                 (fun (t, f) -> Printf.sprintf "  %s %s;" (typ_to_string t) f)
                 fields)
          @ [ "}" ]))
      p.structs
  in
  let globals =
    List.map
      (fun (t, n) -> Printf.sprintf "%s %s;" (typ_to_string t) n)
      p.globals
  in
  String.concat "\n\n" (structs @ globals @ List.map func_to_string p.funcs)
