(** Static pool inference over the field-sensitive {!Dsa} partition.

    Partitions allocation sites into pools (one per DSA heap class),
    infers each pool's lifetime — the owner function where
    [pool_init]/[pool_destroy] are placed, from
    {!Pool_transform.plan}'s escape-based owner selection; classes
    reachable from globals get a [main]-owned, non-destroyable pool —
    checks per-pool type homogeneity, and scores every allocation site
    with a static dangling-risk estimate in [0,1]:

    {v risk = 0.55*V*(0.5 + 0.5*D) + 0.30*E + 0.15*Z v}

    with V the class verdict weight (Must 1.0 / May 0.5 / Safe 0.0),
    D the flagged-finding density on the class, E = ed/(ed+1) the
    escape-depth pressure and Z = (n-1)/n the pool-size pressure.

    Output (both {!to_json} and {!render}) is canonically ordered —
    pools by id, sites by ordinal — so repeated runs over one program
    are byte-identical; the bench validator and [make pools-smoke]
    gate on exactly this. *)

type pool = {
  id : int;                  (** index in heap-class order *)
  class_id : int;            (** the DSA class *)
  pool_var : string;         (** descriptor name, e.g. [__pool3] *)
  owner : string;            (** function holding init/destroy *)
  owner_depth : int;         (** call-graph depth of owner from main *)
  global : bool;             (** reachable from globals: main-owned *)
  destroyable : bool;        (** [not global] *)
  struct_names : string list;(** element types allocated, sorted *)
  homogeneous : bool;        (** single element type *)
  sites : int list;          (** member allocation-site ordinals *)
}

type site_score = {
  ordinal : int;             (** {!Points_to.iter_malloc_sites} number *)
  fname : string;
  struct_name : string;
  pos : Ast.pos;
  pool_id : int;
  class_id : int;
  verdict : Dangling.verdict;
  escape_depth : int;        (** call levels the object outlives its
                                 allocating function *)
  risk : float;
}

type result = { pools : pool list; sites : site_score list }

val analyze : Ast.program -> result
(** Runs {!Typecheck.check}, {!Dsa.analyze}, {!Dangling.analyze_with}
    and {!Pool_transform.plan}; raises the usual parse/type errors on
    malformed input. *)

val transform : Ast.program -> Ast.program * Pool_transform.summary
(** The pool transform driven by the field-sensitive DSA partition
    (same rewriting as {!Pool_transform.transform}, finer classes). *)

val risk_score :
  verdict:Dangling.verdict ->
  density:float ->
  escape_depth:int ->
  pool_sites:int ->
  float
(** The raw formula (exposed for tests). *)

val to_json : ?file:string -> result -> Telemetry.Json.t
val render : ?file:string -> result -> string
