(* Flow-sensitive, interprocedural dangling-pointer analysis for MiniC.

   Abstract state, per program point:
   - every tracked variable (param or local) carries a [vinfo]: which
     allocation site its value came from ([Vfresh n] — provably a fresh
     object from site n, [Vnull], or [Vtop]) and a freed status in the
     {Alive < MaybeFreed, MustFreed < MaybeFreed} lattice;
   - every points-to class carries Alive/MaybeFreed: once any object of
     the class may have been freed, values loaded from the heap (whose
     identity we do not track) conservatively inherit MaybeFreed.

   Aliasing comes from the Steensgaard classes: a [free e] weakens every
   variable of the same object class unless its abstract value is
   provably a different object (distinct allocation sites, or null).
   Interprocedural flow is summary-based and context-insensitive: each
   function gets (a) the join of class states and argument states over
   all call sites as its entry, (b) a transitive may-free class set
   applied at its call sites, and (c) a joined return-value state.  The
   whole thing iterates to a global fixpoint — all lattices are finite
   and the updates monotone — and a final pass re-runs the transfer
   functions with the fixed block-entry states to collect findings.

   Verdicts are sound in one direction by construction: an execution can
   only trap on a use the analysis marked May/Must, never on a
   Safe-marked one — which is exactly what lets the runtime skip shadow
   protection for allocation sites whose class has only Safe uses (see
   [Runtime.Schemes.shadow_pool_static]).  The differential oracle in
   test/test_dangling.ml enforces this against the interpreter. *)

module VMap = Map.Make (String)
module S = Set.Make (String)
module C = Set.Make (Int)

type verdict = Safe | May_uaf | Must_uaf

let verdict_label = function
  | Safe -> "safe"
  | May_uaf -> "may-uaf"
  | Must_uaf -> "must-uaf"

let verdict_max a b =
  match (a, b) with
  | Must_uaf, _ | _, Must_uaf -> Must_uaf
  | May_uaf, _ | _, May_uaf -> May_uaf
  | Safe, Safe -> Safe

type use_kind = Deref | Free_op

let kind_label = function Deref -> "deref" | Free_op -> "free"

type finding = {
  fname : string;
  pos : Ast.pos;
  kind : use_kind;
  verdict : verdict;
  class_id : int option;  (* object class being dereferenced / freed *)
  witness : string;       (* for May/Must: why, e.g. "freed at main@6:3" *)
}

type site = {
  ordinal : int;        (* Points_to.iter_malloc_sites numbering *)
  fname : string;
  struct_name : string;
  pos : Ast.pos;
  class_id : int;
  verdict : verdict;    (* class verdict; [Safe] = protection elidable *)
}

type result = {
  findings : finding list;
  sites : site list;
  class_verdicts : (int * verdict) list;  (* heap classes only *)
}

(* ---- lattices --------------------------------------------------------- *)

type freed = Alive | MaybeFreed | MustFreed

let freed_join a b = if a = b then a else MaybeFreed

(* Weak update after a free that may (but need not) cover this value. *)
let weaken = function Alive -> MaybeFreed | f -> f

type aval = Vnull | Vfresh of int | Vtop

let aval_join a b =
  match (a, b) with
  | x, y when x = y -> x
  (* null ⊔ v = v: freeing/dereferencing null is never a temporal
     violation, so folding null into the other side stays sound for both
     the distinctness argument and the verdicts. *)
  | Vnull, v | v, Vnull -> v
  | _ -> Vtop

(* Values that cannot denote the same live object. *)
let provably_distinct a b =
  match (a, b) with
  | Vnull, _ | _, Vnull -> true
  | Vfresh n, Vfresh m -> n <> m
  | _ -> false

type vinfo = { value : aval; freed : freed; freed_at : string option }

let vinfo_join a b =
  {
    value = aval_join a.value b.value;
    freed = freed_join a.freed b.freed;
    freed_at = (match a.freed_at with Some _ -> a.freed_at | None -> b.freed_at);
  }

let vinfo_top = { value = Vtop; freed = Alive; freed_at = None }
let vinfo_null = { value = Vnull; freed = Alive; freed_at = None }

let vinfo_opt_join a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (vinfo_join a b)

type astate = { vars : vinfo VMap.t; classes : freed array }

let state_join a b =
  {
    vars =
      VMap.union (fun _ va vb -> Some (vinfo_join va vb)) a.vars b.vars;
    classes = Array.map2 freed_join a.classes b.classes;
  }

let state_equal a b =
  VMap.equal ( = ) a.vars b.vars && a.classes = b.classes

let clone st = { st with classes = Array.copy st.classes }

(* ---- summaries -------------------------------------------------------- *)

type summary = {
  mutable may_free : C.t;              (* classes freed, transitively *)
  mutable entry_classes : freed array; (* join of class states at calls *)
  mutable entry_params : vinfo option array;
  mutable ret : vinfo option;          (* joined returned-value state *)
}

type ctx = {
  program : Ast.program;
  pt : Pt_query.t;
  nclasses : int;
  heap : C.t;
  site_of_pos : (Ast.pos, int) Hashtbl.t;
  summaries : (string, summary) Hashtbl.t;
  mutable changed : bool;
}

let summary ctx fname =
  match Hashtbl.find_opt ctx.summaries fname with
  | Some s -> s
  | None ->
    let s =
      {
        may_free = C.empty;
        entry_classes = Array.make ctx.nclasses Alive;
        entry_params = [||];
        ret = None;
      }
    in
    Hashtbl.replace ctx.summaries fname s;
    s

(* ---- per-function analysis -------------------------------------------- *)

type fctx = {
  fname : string;
  tracked : S.t;  (* params and locals: variables we track strongly *)
  record : (finding -> unit) option;
}

let rec locals_of_stmts acc stmts =
  List.fold_left
    (fun acc s ->
      match s with
      | Ast.Decl (_, x, _) -> S.add x acc
      | Ast.If (_, t, f) -> locals_of_stmts (locals_of_stmts acc t) f
      | Ast.While (_, body) -> locals_of_stmts acc body
      | _ -> acc)
    acc stmts

(* Object class an expression's value points into.  Malloc expressions
   are resolved positionally through the shared site numbering. *)
let obj_class ctx ~fname e =
  match e with
  | Ast.Malloc (_, p)
  | Ast.Malloc_array (_, _, p)
  | Ast.Pool_malloc (_, _, p)
  | Ast.Pool_malloc_array (_, _, _, p) ->
    Option.map ctx.pt.Pt_query.site_class (Hashtbl.find_opt ctx.site_of_pos p)
  | e -> ctx.pt.Pt_query.expr_pointee_class ~fname e

(* Status of a pointer value we do not track by identity (heap loads,
   globals, unknown call results): alive unless its object class may
   have been freed. *)
let vinfo_of_class ctx st = function
  | Some c when C.mem c ctx.heap ->
    {
      value = Vtop;
      freed = (match st.classes.(c) with Alive -> Alive | _ -> MaybeFreed);
      freed_at = None;
    }
  | _ -> vinfo_top

let record fc finding =
  match fc.record with Some f -> f finding | None -> ()

let use_finding ctx fc st ~kind ~pos base_expr (v : vinfo) =
  let verdict =
    match v.freed with
    | MustFreed -> Must_uaf
    | MaybeFreed -> May_uaf
    | Alive -> Safe
  in
  let class_id = obj_class ctx ~fname:fc.fname base_expr in
  let witness =
    match verdict with
    | Safe -> ""
    | _ ->
      (match v.freed_at with
       | Some w -> "value freed at " ^ w
       | None ->
         (match class_id with
          | Some c -> Printf.sprintf "an object of class #%d may have been freed" c
          | None -> "value may alias a freed object"))
  in
  record fc { fname = fc.fname; pos; kind; verdict; class_id; witness };
  ignore st

(* Apply a callee's may-free effect: weaken the freed classes and every
   variable that could alias an object in them. *)
let apply_may_free ctx ~fname st freed_classes =
  if C.is_empty freed_classes then st
  else begin
    let st = clone st in
    C.iter
      (fun c -> if c < ctx.nclasses then st.classes.(c) <- weaken st.classes.(c))
      freed_classes;
    let vars =
      VMap.mapi
        (fun x v ->
          if v.value = Vnull then v
          else
            match ctx.pt.Pt_query.var_class ~fname x with
            | Some vc ->
              (match ctx.pt.Pt_query.pointee vc with
               | Some oc when C.mem oc freed_classes ->
                 { v with freed = weaken v.freed }
               | _ -> v)
            | None -> v)
        st.vars
    in
    { st with vars }
  end

let rec eval ctx fc st e : vinfo * astate =
  match e with
  | Ast.Int _ -> (vinfo_top, st)
  | Ast.Null -> (vinfo_null, st)
  | Ast.Var x ->
    let v =
      if S.mem x fc.tracked then
        match VMap.find_opt x st.vars with
        | Some v -> v
        | None ->
          (* Bound on no path reaching here (use-before-decl is a type
             error); any sound default works. *)
          vinfo_of_class ctx st
            (Option.bind
               (ctx.pt.Pt_query.var_class ~fname:fc.fname x)
               ctx.pt.Pt_query.pointee)
      else
        (* Global: identity not tracked, fall back to its class. *)
        vinfo_of_class ctx st
          (Option.bind
             (ctx.pt.Pt_query.var_class ~fname:fc.fname x)
             ctx.pt.Pt_query.pointee)
    in
    (v, st)
  | Ast.Binop (_, a, b) ->
    let _, st = eval ctx fc st a in
    let _, st = eval ctx fc st b in
    (vinfo_top, st)
  | Ast.Unop (_, a) ->
    let _, st = eval ctx fc st a in
    (vinfo_top, st)
  | Ast.Field (base, _, pos) ->
    let bv, st = eval ctx fc st base in
    use_finding ctx fc st ~kind:Deref ~pos base bv;
    (* The loaded value: identity unknown, status from the class of the
       objects this field points to. *)
    (vinfo_of_class ctx st (obj_class ctx ~fname:fc.fname e), st)
  | Ast.Index (base, idx, pos) ->
    let bv, st = eval ctx fc st base in
    let _, st = eval ctx fc st idx in
    use_finding ctx fc st ~kind:Deref ~pos base bv;
    (* Pointer arithmetic within the same allocation. *)
    (bv, st)
  | Ast.Malloc _ ->
    (fresh_vinfo ctx e, st)
  | Ast.Malloc_array (_, count, _) | Ast.Pool_malloc_array (_, _, count, _) ->
    let _, st = eval ctx fc st count in
    (fresh_vinfo ctx e, st)
  | Ast.Pool_malloc _ -> (fresh_vinfo ctx e, st)
  | Ast.Call (g, args) ->
    let argvs, st =
      List.fold_left
        (fun (acc, st) a ->
          let v, st = eval ctx fc st a in
          (v :: acc, st))
        ([], st) args
    in
    let argvs = List.rev argvs in
    let st =
      match Ast.find_func ctx.program g with
      | None -> st
      | Some callee ->
        let sm = summary ctx g in
        (* Join this call site into the callee's entry. *)
        let ec = Array.map2 freed_join sm.entry_classes st.classes in
        if ec <> sm.entry_classes then begin
          sm.entry_classes <- ec;
          ctx.changed <- true
        end;
        let nparams = List.length callee.Ast.params in
        if Array.length sm.entry_params < nparams then begin
          let a = Array.make nparams None in
          Array.blit sm.entry_params 0 a 0 (Array.length sm.entry_params);
          sm.entry_params <- a
        end;
        List.iteri
          (fun i v ->
            if i < nparams then begin
              let j = vinfo_opt_join sm.entry_params.(i) (Some v) in
              if j <> sm.entry_params.(i) then begin
                sm.entry_params.(i) <- j;
                ctx.changed <- true
              end
            end)
          argvs;
        (* Callee frees are also frees of this function: union them into
           our own summary so the effect propagates through arbitrarily
           deep call chains. *)
        let own = summary ctx fc.fname in
        let merged = C.union own.may_free sm.may_free in
        if not (C.equal merged own.may_free) then begin
          own.may_free <- merged;
          ctx.changed <- true
        end;
        apply_may_free ctx ~fname:fc.fname st sm.may_free
    in
    let ret =
      match Ast.find_func ctx.program g with
      | Some _ ->
        (match (summary ctx g).ret with
         | Some rv -> rv
         | None ->
           vinfo_of_class ctx st
             (Option.bind (ctx.pt.Pt_query.ret_class g) ctx.pt.Pt_query.pointee))
      | None -> vinfo_top
    in
    (ret, st)

and fresh_vinfo ctx e =
  let p =
    match e with
    | Ast.Malloc (_, p)
    | Ast.Malloc_array (_, _, p)
    | Ast.Pool_malloc (_, _, p)
    | Ast.Pool_malloc_array (_, _, _, p) ->
      p
    | _ -> Ast.no_pos
  in
  match Hashtbl.find_opt ctx.site_of_pos p with
  | Some site -> { value = Vfresh site; freed = Alive; freed_at = None }
  | None -> vinfo_top

(* free e / poolfree e: verdict on double free, then weak updates. *)
let exec_free ctx fc st ~pos e =
  let v, st = eval ctx fc st e in
  let verdict =
    match v.freed with
    | MustFreed -> Must_uaf
    | MaybeFreed -> May_uaf
    | Alive -> Safe
  in
  let class_id = obj_class ctx ~fname:fc.fname e in
  let witness =
    match verdict with
    | Safe -> ""
    | _ ->
      (match v.freed_at with
       | Some w -> "already freed at " ^ w
       | None -> "value may alias an already-freed object")
  in
  record fc
    { fname = fc.fname; pos; kind = Free_op; verdict; class_id; witness };
  let st = clone st in
  (match class_id with
   | Some c when C.mem c ctx.heap ->
     st.classes.(c) <- weaken st.classes.(c);
     (* Record the effect in this function's transitive summary. *)
     let sm = summary ctx fc.fname in
     if not (C.mem c sm.may_free) then begin
       sm.may_free <- C.add c sm.may_free;
       ctx.changed <- true
     end
   | _ -> ());
  let here = Printf.sprintf "%s@%s" fc.fname (Ast.pos_label pos) in
  let vars =
    VMap.mapi
      (fun x vx ->
        match class_id with
        | Some c
          when (match
                  Option.bind
                    (ctx.pt.Pt_query.var_class ~fname:fc.fname x)
                    ctx.pt.Pt_query.pointee
                with
               | Some oc -> oc = c
               | None -> false)
               && not (provably_distinct vx.value v.value) ->
          { vx with
            freed = weaken vx.freed;
            freed_at =
              (match vx.freed_at with Some _ -> vx.freed_at | None -> Some here)
          }
        | _ -> vx)
      st.vars
  in
  let vars =
    (* Strong update for [free(x)]: x itself is now definitely freed. *)
    match e with
    | Ast.Var x when S.mem x fc.tracked ->
      VMap.add x { v with freed = MustFreed; freed_at = Some here } vars
    | _ -> vars
  in
  { st with vars }

let exec_stmt ctx fc st (s : Ast.stmt) =
  match s with
  | Ast.Decl (_, x, init) ->
    let v, st =
      match init with
      | Some e -> eval ctx fc st e
      | None -> (vinfo_null, st)
    in
    { st with vars = VMap.add x v st.vars }
  | Ast.Assign (x, e) ->
    let v, st = eval ctx fc st e in
    if S.mem x fc.tracked then { st with vars = VMap.add x v st.vars } else st
  | Ast.Store (base, _, rhs, pos) ->
    let bv, st = eval ctx fc st base in
    let _, st = eval ctx fc st rhs in
    use_finding ctx fc st ~kind:Deref ~pos base bv;
    st
  | Ast.Free (e, pos) | Ast.Pool_free (_, e, pos) -> exec_free ctx fc st ~pos e
  | Ast.Return (Some e) ->
    let v, st = eval ctx fc st e in
    let sm = summary ctx fc.fname in
    let j = vinfo_opt_join sm.ret (Some v) in
    if j <> sm.ret then begin
      sm.ret <- j;
      ctx.changed <- true
    end;
    st
  | Ast.Return None -> st
  | Ast.Print e | Ast.Expr e ->
    let _, st = eval ctx fc st e in
    st
  | Ast.Pool_init _ | Ast.Pool_destroy _ -> st
  | Ast.If _ | Ast.While _ ->
    (* invariant: Cfg.build flattens structured control flow *)
    failwith "Dangling.exec_stmt: structured statement in CFG block"

let exec_instr ctx fc st = function
  | Cfg.Simple s -> exec_stmt ctx fc st s
  | Cfg.Cond e ->
    let _, st = eval ctx fc st e in
    st

let exec_block ctx fc st (b : Cfg.block) =
  List.fold_left (exec_instr ctx fc) st b.Cfg.instrs

(* Entry state of a function from its summary. *)
let entry_state ctx (f : Ast.func) =
  let sm = summary ctx f.Ast.name in
  let vars =
    List.fold_left
      (fun (i, vars) (_, p) ->
        let v =
          if i < Array.length sm.entry_params then
            match sm.entry_params.(i) with
            | Some v -> v
            | None -> vinfo_top
          else vinfo_top
        in
        (i + 1, VMap.add p v vars))
      (0, VMap.empty) f.Ast.params
    |> snd
  in
  { vars; classes = Array.copy sm.entry_classes }

(* Intra-procedural fixpoint; returns per-block entry states (None for
   unreachable blocks). *)
let analyze_func ctx (f : Ast.func) cfg =
  let fc =
    { fname = f.Ast.name; tracked = locals_of_stmts (S.of_list (List.map snd f.Ast.params)) f.Ast.body; record = None }
  in
  let n = Cfg.block_count cfg in
  let inputs = Array.make n None in
  inputs.(cfg.Cfg.entry) <- Some (entry_state ctx f);
  let order = Cfg.rpo cfg in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed do
    changed := false;
    incr rounds;
    if !rounds > 10_000 then
      (* invariant: all lattices are finite and transfer is monotone *)
      failwith "Dangling.analyze_func: fixpoint did not converge";
    List.iter
      (fun id ->
        match inputs.(id) with
        | None -> ()
        | Some st ->
          let out = exec_block ctx fc (clone st) cfg.Cfg.blocks.(id) in
          List.iter
            (fun succ ->
              let joined =
                match inputs.(succ) with
                | None -> out
                | Some prev -> state_join prev out
              in
              match inputs.(succ) with
              | Some prev when state_equal prev joined -> ()
              | _ ->
                inputs.(succ) <- Some joined;
                changed := true)
            cfg.Cfg.blocks.(id).Cfg.succs)
      order
  done;
  (fc, inputs)

let positions_of_sites program =
  let tbl = Hashtbl.create 64 in
  let rev = Hashtbl.create 64 in
  Points_to.iter_malloc_sites program (fun ~site ~fname:_ ~struct_name:_ ~pos ->
      if pos <> Ast.no_pos && not (Hashtbl.mem tbl pos) then begin
        Hashtbl.replace tbl pos site;
        Hashtbl.replace rev site pos
      end);
  (tbl, rev)

let analyze_with (q : Pt_query.t) (program : Ast.program) =
  Typecheck.check program;
  let site_of_pos, pos_of_site = positions_of_sites program in
  let ctx =
    {
      program;
      pt = q;
      nclasses = q.Pt_query.nclasses;
      heap = C.of_list q.Pt_query.heap;
      site_of_pos;
      summaries = Hashtbl.create 16;
      changed = true;
    }
  in
  let cfgs =
    List.map (fun (f : Ast.func) -> (f, Cfg.build f)) program.Ast.funcs
  in
  (* Global fixpoint over function summaries. *)
  let rounds = ref 0 in
  while ctx.changed do
    ctx.changed <- false;
    incr rounds;
    if !rounds > 10_000 then
      (* invariant: summary growth is monotone over finite lattices *)
      failwith "Dangling.analyze: summary fixpoint did not converge";
    List.iter (fun (f, cfg) -> ignore (analyze_func ctx f cfg)) cfgs
  done;
  (* Final pass: re-run the transfer functions on the converged states,
     now recording findings. *)
  let findings = ref [] in
  List.iter
    (fun (f, cfg) ->
      let fc, inputs = analyze_func ctx f cfg in
      let fc = { fc with record = Some (fun fd -> findings := fd :: !findings) } in
      Array.iteri
        (fun id input ->
          match input with
          | None -> ()
          | Some st -> ignore (exec_block ctx fc (clone st) cfg.Cfg.blocks.(id)))
        inputs)
    cfgs;
  let findings =
    List.sort
      (fun (a : finding) (b : finding) ->
        compare
          (a.pos.Ast.line, a.pos.Ast.col, a.kind, a.fname)
          (b.pos.Ast.line, b.pos.Ast.col, b.kind, b.fname))
      !findings
  in
  (* Class verdict: the worst finding touching the class.  Classes with
     no May/Must finding are Safe — their allocation sites can skip
     shadow protection without weakening detection anywhere else. *)
  let class_verdict = Hashtbl.create 16 in
  C.iter (fun c -> Hashtbl.replace class_verdict c Safe) ctx.heap;
  List.iter
    (fun (fd : finding) ->
      match fd.class_id with
      | Some c when Hashtbl.mem class_verdict c ->
        Hashtbl.replace class_verdict c
          (verdict_max (Hashtbl.find class_verdict c) fd.verdict)
      | _ -> ())
    findings;
  let sites = ref [] in
  Points_to.iter_malloc_sites program (fun ~site ~fname ~struct_name ~pos ->
      let c = q.Pt_query.site_class site in
      let verdict =
        match Hashtbl.find_opt class_verdict c with
        | Some v -> v
        | None -> May_uaf
      in
      let pos =
        match Hashtbl.find_opt pos_of_site site with
        | Some p -> p
        | None -> pos
      in
      sites :=
        { ordinal = site; fname; struct_name; pos; class_id = c; verdict }
        :: !sites);
  {
    findings;
    sites = List.rev !sites;
    class_verdicts =
      Hashtbl.fold (fun c v acc -> (c, v) :: acc) class_verdict []
      |> List.sort compare;
  }

(* Default engine: the field-sensitive DSA partition — strictly finer
   classes than Steensgaard's, so fewer May-UAF false positives (freeing
   [p->a] no longer poisons [p->b]) while every soundness argument above
   carries over unchanged (it only relies on the partition being a sound
   may-alias over-approximation, which both are). *)
let analyze ?(engine = `Dsa) (program : Ast.program) =
  Typecheck.check program;
  let q =
    match engine with
    | `Dsa -> Dsa.query (Dsa.analyze program)
    | `Steensgaard -> Points_to.query (Points_to.analyze program)
  in
  analyze_with q program

(* ---- elision policy ---------------------------------------------------- *)

(* Runtime site strings end in "@line:col" (see Interp); a site may skip
   shadow protection iff the analysis proved its whole class Safe.
   Unknown or position-less sites always keep protection. *)
let parse_site_pos s =
  match String.rindex_opt s '@' with
  | None -> None
  | Some i ->
    let suffix = String.sub s (i + 1) (String.length s - i - 1) in
    (match String.index_opt suffix ':' with
     | None -> None
     | Some j ->
       let line = String.sub suffix 0 j in
       let col = String.sub suffix (j + 1) (String.length suffix - j - 1) in
       (match (int_of_string_opt line, int_of_string_opt col) with
        | Some l, Some c -> Some { Ast.line = l; col = c }
        | _ -> None))

let elide_policy result =
  let safe = Hashtbl.create 16 in
  List.iter
    (fun s ->
      if s.verdict = Safe && s.pos <> Ast.no_pos then
        Hashtbl.replace safe s.pos ())
    result.sites;
  fun site_string ->
    match parse_site_pos site_string with
    | Some p -> Hashtbl.mem safe p
    | None -> false

let count_findings result =
  List.fold_left
    (fun (s, may, must) (fd : finding) ->
      match fd.verdict with
      | Safe -> (s + 1, may, must)
      | May_uaf -> (s, may + 1, must)
      | Must_uaf -> (s, may, must + 1))
    (0, 0, 0) result.findings

let has_must result =
  List.exists (fun (fd : finding) -> fd.verdict = Must_uaf) result.findings
