(** Per-function control-flow graphs for MiniC.

    {!Dangling} runs its flow-sensitive dataflow over these: structured
    [If]/[While] statements are flattened into basic blocks whose last
    instruction is the branch condition, loops get a head block with a
    back edge, and [Return] blocks have no successors. *)

type instr =
  | Simple of Ast.stmt
      (** A straight-line statement; never [If] or [While]. *)
  | Cond of Ast.expr
      (** A branch/loop condition evaluated at the end of its block (the
          block's successors are the two branch targets). *)

type block = {
  id : int;
  mutable instrs : instr list;  (** execution order *)
  mutable succs : int list;
  mutable preds : int list;
}

type t = { fname : string; blocks : block array; entry : int }

val build : Ast.func -> t

val rpo : t -> int list
(** Block ids in reverse postorder from the entry.  Unreachable blocks
    (e.g. statements after a [return]) are omitted. *)

val block_count : t -> int
