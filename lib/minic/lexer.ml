type token =
  | INT_LIT of int
  | IDENT of string
  | KW_STRUCT | KW_INT | KW_VOID | KW_IF | KW_ELSE | KW_WHILE | KW_RETURN
  | KW_MALLOC | KW_FREE | KW_NULL | KW_PRINT
  | LBRACE | RBRACE | LPAREN | RPAREN | LBRACKET | RBRACKET | SEMI | COMMA | STAR
  | ARROW | ASSIGN
  | PLUS | MINUS | SLASH | PERCENT
  | EQ | NE | LT | LE | GT | GE | ANDAND | OROR | BANG
  | EOF

exception Lex_error of { line : int; message : string }

let keyword = function
  | "struct" -> Some KW_STRUCT
  | "int" -> Some KW_INT
  | "void" -> Some KW_VOID
  | "if" -> Some KW_IF
  | "else" -> Some KW_ELSE
  | "while" -> Some KW_WHILE
  | "return" -> Some KW_RETURN
  | "malloc" -> Some KW_MALLOC
  | "free" -> Some KW_FREE
  | "null" | "NULL" -> Some KW_NULL
  | "print" -> Some KW_PRINT
  | _ -> None

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

(* Tokenize with full source positions: each token carries the 1-based
   line and column of its first character. *)
let tokenize_pos src =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 in
  (* Index of the first character of the current line; columns are
     [i - bol + 1]. *)
  let bol = ref 0 in
  let newline i = incr line; bol := i + 1 in
  let emit_at i tok =
    tokens := (tok, { Ast.line = !line; col = i - !bol + 1 }) :: !tokens
  in
  let error message = raise (Lex_error { line = !line; message }) in
  let rec go i =
    if i >= n then ()
    else
      match src.[i] with
      | '\n' ->
        newline i;
        go (i + 1)
      | ' ' | '\t' | '\r' -> go (i + 1)
      | '/' when i + 1 < n && src.[i + 1] = '/' ->
        let rec skip j = if j < n && src.[j] <> '\n' then skip (j + 1) else j in
        go (skip (i + 2))
      | '/' when i + 1 < n && src.[i + 1] = '*' ->
        let rec skip j =
          if j + 1 >= n then error "unterminated comment"
          else if src.[j] = '*' && src.[j + 1] = '/' then j + 2
          else begin
            if src.[j] = '\n' then newline j;
            skip (j + 1)
          end
        in
        go (skip (i + 2))
      | c when is_digit c ->
        let rec scan j = if j < n && is_digit src.[j] then scan (j + 1) else j in
        let j = scan i in
        emit_at i (INT_LIT (int_of_string (String.sub src i (j - i))));
        go j
      | c when is_ident_start c ->
        let rec scan j = if j < n && is_ident_char src.[j] then scan (j + 1) else j in
        let j = scan i in
        let word = String.sub src i (j - i) in
        emit_at i (match keyword word with Some kw -> kw | None -> IDENT word);
        go j
      | '{' -> emit_at i LBRACE; go (i + 1)
      | '}' -> emit_at i RBRACE; go (i + 1)
      | '(' -> emit_at i LPAREN; go (i + 1)
      | ')' -> emit_at i RPAREN; go (i + 1)
      | '[' -> emit_at i LBRACKET; go (i + 1)
      | ']' -> emit_at i RBRACKET; go (i + 1)
      | ';' -> emit_at i SEMI; go (i + 1)
      | ',' -> emit_at i COMMA; go (i + 1)
      | '*' -> emit_at i STAR; go (i + 1)
      | '+' -> emit_at i PLUS; go (i + 1)
      | '%' -> emit_at i PERCENT; go (i + 1)
      | '/' -> emit_at i SLASH; go (i + 1)
      | '-' ->
        if i + 1 < n && src.[i + 1] = '>' then begin emit_at i ARROW; go (i + 2) end
        else begin emit_at i MINUS; go (i + 1) end
      | '=' ->
        if i + 1 < n && src.[i + 1] = '=' then begin emit_at i EQ; go (i + 2) end
        else begin emit_at i ASSIGN; go (i + 1) end
      | '!' ->
        if i + 1 < n && src.[i + 1] = '=' then begin emit_at i NE; go (i + 2) end
        else begin emit_at i BANG; go (i + 1) end
      | '<' ->
        if i + 1 < n && src.[i + 1] = '=' then begin emit_at i LE; go (i + 2) end
        else begin emit_at i LT; go (i + 1) end
      | '>' ->
        if i + 1 < n && src.[i + 1] = '=' then begin emit_at i GE; go (i + 2) end
        else begin emit_at i GT; go (i + 1) end
      | '&' ->
        if i + 1 < n && src.[i + 1] = '&' then begin emit_at i ANDAND; go (i + 2) end
        else error "expected '&&'"
      | '|' ->
        if i + 1 < n && src.[i + 1] = '|' then begin emit_at i OROR; go (i + 2) end
        else error "expected '||'"
      | c -> error (Printf.sprintf "unexpected character %C" c)
  in
  go 0;
  emit_at n EOF;
  List.rev !tokens

let tokenize src =
  List.map (fun (tok, p) -> (tok, p.Ast.line)) (tokenize_pos src)

let token_label = function
  | INT_LIT n -> string_of_int n
  | IDENT s -> Printf.sprintf "identifier %S" s
  | KW_STRUCT -> "'struct'" | KW_INT -> "'int'" | KW_VOID -> "'void'"
  | KW_IF -> "'if'" | KW_ELSE -> "'else'" | KW_WHILE -> "'while'"
  | KW_RETURN -> "'return'" | KW_MALLOC -> "'malloc'" | KW_FREE -> "'free'"
  | KW_NULL -> "'null'" | KW_PRINT -> "'print'"
  | LBRACE -> "'{'" | RBRACE -> "'}'" | LPAREN -> "'('" | RPAREN -> "')'"
  | LBRACKET -> "'['" | RBRACKET -> "']'"
  | SEMI -> "';'" | COMMA -> "','" | STAR -> "'*'"
  | ARROW -> "'->'" | ASSIGN -> "'='"
  | PLUS -> "'+'" | MINUS -> "'-'" | SLASH -> "'/'" | PERCENT -> "'%'"
  | EQ -> "'=='" | NE -> "'!='" | LT -> "'<'" | LE -> "'<='"
  | GT -> "'>'" | GE -> "'>='" | ANDAND -> "'&&'" | OROR -> "'||'"
  | BANG -> "'!'"
  | EOF -> "end of input"
