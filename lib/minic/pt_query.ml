(** A points-to analysis behind a uniform query interface.

    Both {!Points_to} (Steensgaard, field-collapsed) and {!Dsa}
    (DSA-lite, field-sensitive) freeze into this record, so every
    consumer — {!Dangling}, {!Escape}, {!Pool_transform}, {!Poolify} —
    is written once against the queries and can run over either
    partition.  Class ids are dense in [0, nclasses).

    The [site_class] numbering is positional: the [n]-th malloc site in
    the {!Points_to.iter_malloc_sites} program order. *)

type class_id = int

type t = {
  nclasses : int;
  heap : class_id list;
      (** classes containing at least one malloc site, sorted *)
  site_class : int -> class_id;
  var_class : fname:string -> string -> class_id option;
      (** locals/params of [fname], falling back to globals *)
  ret_class : string -> class_id option;
  pointee : class_id -> class_id option;
      (** class an element of this class points to *)
  succ : class_id -> class_id list;
      (** all outgoing edges (pointee + every field target), for
          reachability closures; deterministic order *)
  struct_hint : class_id -> string option;
      (** one struct name allocated into the class (poolinit hints) *)
  struct_names : class_id -> string list;
      (** every struct name allocated into the class, sorted — the
          type-homogeneity check reads this *)
  expr_value_class : fname:string -> Ast.expr -> class_id option;
  expr_pointee_class : fname:string -> Ast.expr -> class_id option;
}
