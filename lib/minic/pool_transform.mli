(** The Automatic Pool Allocation transform (Lattner & Adve, PLDI'05, as
    used by the paper):

    - every heap points-to class becomes a pool;
    - the pool is created ([Pool_init]) and destroyed ([Pool_destroy]) in
      the outermost function the class does not escape — or in [main]
      for classes reachable from globals (the long-lived pools of §3.4);
    - [malloc]/[free] become [Pool_malloc]/[Pool_free] against the right
      descriptor;
    - functions through which a descriptor must flow gain extra pool
      parameters, and every call site passes them. *)

type pool_desc = {
  class_id : Points_to.class_id;
  pool_var : string;           (** descriptor variable name, e.g. [__pool3] *)
  owner : string;              (** function holding poolinit/pooldestroy *)
  struct_name : string option; (** element-type hint *)
  global : bool;               (** owned by [main] because it escapes to
                                   globals or no bounded owner exists *)
}

type summary = {
  pools : pool_desc list;
  sites_rewritten : int;
  frees_rewritten : int;
}

exception Transform_error of string

val transform : Ast.program -> Ast.program * summary
(** The input must typecheck and contain a [main] function.  The output
    program typechecks and has the same observable behaviour, with every
    allocation routed through a pool.  Uses the Steensgaard partition
    ({!Points_to}); see {!transform_with} / [Minic.Poolify] for the
    field-sensitive DSA-driven variant. *)

val transform_with : Pt_query.t -> Ast.program -> Ast.program * summary
(** {!transform} over an explicit points-to partition.  The caller is
    responsible for typechecking the program first and for passing a
    partition computed {e on this exact program} (the positional site
    numbering must agree). *)

val plan :
  Pt_query.t -> Ast.program -> (Points_to.class_id * string * bool) list
(** Owner selection only: for every heap class, [(class, owner
    function, global?)] — [global] meaning the class is reachable from
    globals (or has no bounded owner) and must live in a [main]-owned,
    effectively undestroyable pool.  Requires a [main] function. *)

val callee_names : Ast.func -> string list
(** Direct callees of a function, sorted — the call graph edge list
    used for owner placement (exported for [Minic.Poolify]'s
    escape-depth metric). *)

val pool_var_name : Points_to.class_id -> string
