(** Escape analysis over points-to classes: reachability from a
    function's formals, its return value, and the globals — the paper's
    "standard compiler analysis … much simpler, but can be less precise,
    than that required for static detection of dangling pointer
    references".  A pool can be created and destroyed inside a function
    exactly when its class does not escape that function.

    Written against {!Pt_query}, so it runs over either the Steensgaard
    partition ({!Points_to.query}) or the field-sensitive DSA one
    ({!Dsa.query}). *)

val reachable_from_globals : Pt_query.t -> Ast.program -> Pt_query.class_id list
(** Classes reachable from any global variable: these data structures
    must live in global (long-lived) pools. *)

val escapes : Pt_query.t -> Ast.func -> Pt_query.class_id -> bool
(** Whether the class is reachable from the function's parameters or
    return value (globals are handled separately by
    {!reachable_from_globals}). *)

val closure : Pt_query.t -> Pt_query.class_id list -> Pt_query.class_id list
(** Transitive closure of classes over all outgoing edges (pointee and
    fields), including the seeds. *)
