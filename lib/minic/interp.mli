(** The MiniC interpreter: executes a (possibly pool-transformed) program
    against any {!Runtime.Scheme.t}, so the same source runs over the
    plain allocator, the shadow-page scheme, or a baseline checker.

    Every field load/store goes through the scheme (and hence the
    simulated MMU); [malloc]/[free] use the scheme's heap;
    [Pool_init]/[Pool_destroy] drive the scheme's pool interface.
    Detected temporal errors surface as {!Shadow.Report.Violation}. *)

exception Null_dereference of string
(** [e->f] on a null pointer, with context. *)

exception Runtime_error of string
(** Division by zero, missing function, unbound variable, etc. *)

type outcome = {
  prints : int list;   (** values printed by [print(e)], in order *)
  steps : int;         (** AST evaluation steps executed *)
}

val run :
  ?entry:string ->
  ?max_steps:int ->
  ?on_violation:(fname:string -> pos:Ast.pos -> Shadow.Report.t -> unit) ->
  Ast.program ->
  Runtime.Scheme.t ->
  outcome
(** Execute [entry] (default ["main"]) with no arguments.  Raises
    {!Runtime_error} if [max_steps] (default 50 million) is exceeded —
    the brake for accidentally non-terminating test programs.

    [on_violation] is called (then the violation re-raised) whenever a
    guarded load/store/free traps, with the enclosing function and the
    source position of the dereference or free — the bridge that lets
    the differential soundness oracle match each dynamic violation
    against the static verdict for that site. *)
