(* DSA-lite: a unification-based, field-SENSITIVE points-to analysis in
   the tradition of Lattner & Adve's Data Structure Analysis — the
   analysis Automatic Pool Allocation is actually built on.

   The one structural difference from the Steensgaard pass in
   {!Points_to}: an object node carries one target edge per field
   *name* instead of a single collapsed field node, so [p->a] and
   [p->b] stay in distinct classes unless the program itself aliases
   them.  This is what removes the "freeing [p->a] poisons [p->b]"
   false positive in {!Dangling}, and what splits one coarse
   all-fields pool into several smaller, shorter-lived ones in
   {!Poolify}.

   Heap nodes are keyed by allocation site (the shared positional
   numbering of {!Points_to.iter_malloc_sites}) and live in one global
   graph, so the allocation-site partition is a single sound global
   partition — exactly what pool assignment needs.  Function graphs are
   built per function over qualified variable nodes ("fn::x") and
   connected at call sites by unifying actuals with formals and the
   call result with the callee's return node: the callee's summary
   graph is inlined into the global graph at its call sites.  We keep
   this call handling context-INsensitive (no per-call-site cloning) on
   purpose: {!Dangling}'s interprocedural effect summaries (may-free
   class sets, entry class states) are indexed by global class id, and
   a cloned callee subgraph would break the callee-class/caller-class
   correspondence those summaries rely on — a callee freeing its
   argument would free a class no caller maps to.  Unification is
   monotone and order-independent, so one bottom-up pass over the
   functions reaches the fixpoint; the finite-lattice argument is the
   same as Steensgaard's. *)

type class_id = int

type node = {
  id : int;
  mutable parent : node option;
  mutable pointee : node option;
  mutable fields : (string * node) list; (* one target per field name *)
  mutable sites : int list;
  mutable structs : string list;
}

let rec find n =
  match n.parent with
  | None -> n
  | Some p ->
    let root = find p in
    n.parent <- Some root;
    root

type builder = {
  mutable next_id : int;
  vars : (string, node) Hashtbl.t; (* qualified "fn::x" or "::g" *)
  rets : (string, node) Hashtbl.t;
  site_nodes : (int, node) Hashtbl.t;
}

let fresh b =
  let n =
    {
      id = b.next_id;
      parent = None;
      pointee = None;
      fields = [];
      sites = [];
      structs = [];
    }
  in
  b.next_id <- b.next_id + 1;
  n

let rec unify b a c =
  let a = find a and c = find c in
  if a != c then begin
    c.parent <- Some a;
    a.sites <- List.rev_append c.sites a.sites;
    a.structs <- List.rev_append c.structs a.structs;
    (match (a.pointee, c.pointee) with
     | None, other -> a.pointee <- other
     | Some _, None -> ()
     | Some x, Some y -> unify b x y);
    let cfields = c.fields in
    c.fields <- [];
    List.iter
      (fun (f, t) ->
        (* Recursive unifications may have merged [a] under a new root;
           always consult the current one. *)
        let ra = find a in
        match List.assoc_opt f ra.fields with
        | Some t' -> unify b t' t
        | None -> ra.fields <- (f, t) :: ra.fields)
      cfields
  end

let target b n =
  let n = find n in
  match n.pointee with
  | Some p -> find p
  | None ->
    let p = fresh b in
    n.pointee <- Some p;
    p

let field_node b n f =
  let n = find n in
  match List.assoc_opt f n.fields with
  | Some t -> find t
  | None ->
    let t = fresh b in
    n.fields <- (f, t) :: n.fields;
    t

let qualified fname var = fname ^ "::" ^ var

let var_node b ~fname name =
  match Hashtbl.find_opt b.vars (qualified fname name) with
  | Some n -> n
  | None ->
    (match Hashtbl.find_opt b.vars (qualified "" name) with
     | Some n -> n
     | None ->
       let n = fresh b in
       Hashtbl.replace b.vars (qualified fname name) n;
       n)

let ret_node b fname =
  match Hashtbl.find_opt b.rets fname with
  | Some n -> n
  | None ->
    let n = fresh b in
    Hashtbl.replace b.rets fname n;
    n

let heap_node b ~site ~struct_name =
  let n =
    match Hashtbl.find_opt b.site_nodes site with
    | Some n -> n
    | None ->
      let n = fresh b in
      Hashtbl.replace b.site_nodes site n;
      n
  in
  let r = find n in
  if not (List.mem site r.sites) then r.sites <- site :: r.sites;
  if not (List.mem struct_name r.structs) then
    r.structs <- struct_name :: r.structs;
  r

(* ---- frozen result ---------------------------------------------------- *)

type t = {
  site_classes : (int, class_id) Hashtbl.t;
  var_classes : (string, class_id) Hashtbl.t; (* "fn::x" / "::g" *)
  ret_classes : (string, class_id) Hashtbl.t;
  pointees : (class_id, class_id) Hashtbl.t;
  fields : (class_id * string, class_id) Hashtbl.t;
  field_names : (class_id, string list) Hashtbl.t; (* sorted *)
  hints : (class_id, string) Hashtbl.t;
  struct_lists : (class_id, string list) Hashtbl.t; (* sorted, uniq *)
  heap : class_id list;
  count : int;
}

(* Deterministic class numbering: heap sites in positional order, then
   variables by qualified name, then returns by name, then a
   breadth-first closure over the edges (pointee before fields, fields
   by name) — so two runs over the same program freeze to identical
   tables, which the pool-map determinism gate relies on. *)
let freeze b =
  let class_of_node = Hashtbl.create 64 in
  let counter = ref 0 in
  let pending = Queue.create () in
  let class_of n =
    let root = find n in
    match Hashtbl.find_opt class_of_node root.id with
    | Some c -> c
    | None ->
      let c = !counter in
      incr counter;
      Hashtbl.replace class_of_node root.id c;
      Queue.add root pending;
      c
  in
  let site_classes = Hashtbl.create 64 in
  let hints = Hashtbl.create 16 in
  let struct_lists = Hashtbl.create 16 in
  let heap = ref [] in
  let nsites = Hashtbl.fold (fun s _ acc -> max acc (s + 1)) b.site_nodes 0 in
  for site = 0 to nsites - 1 do
    match Hashtbl.find_opt b.site_nodes site with
    | None -> ()
    | Some n ->
      let c = class_of n in
      Hashtbl.replace site_classes site c;
      if not (List.mem c !heap) then heap := c :: !heap;
      let structs = List.sort_uniq compare (find n).structs in
      Hashtbl.replace struct_lists c structs;
      (match structs with
       | s :: _ -> Hashtbl.replace hints c s
       | [] -> ())
  done;
  let var_classes = Hashtbl.create 64 in
  Hashtbl.fold (fun q n acc -> (q, n) :: acc) b.vars []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.iter (fun (q, n) -> Hashtbl.replace var_classes q (class_of n));
  let ret_classes = Hashtbl.create 16 in
  Hashtbl.fold (fun f n acc -> (f, n) :: acc) b.rets []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.iter (fun (f, n) -> Hashtbl.replace ret_classes f (class_of n));
  let pointees = Hashtbl.create 64 in
  let fields = Hashtbl.create 64 in
  let field_names = Hashtbl.create 64 in
  while not (Queue.is_empty pending) do
    let root = find (Queue.pop pending) in
    let c = class_of root in
    (match root.pointee with
     | Some p ->
       if not (Hashtbl.mem pointees c) then
         Hashtbl.replace pointees c (class_of p)
     | None -> ());
    let fs = List.sort_uniq compare (List.map fst root.fields) in
    if fs <> [] && not (Hashtbl.mem field_names c) then
      Hashtbl.replace field_names c fs;
    List.iter
      (fun f ->
        match List.assoc_opt f root.fields with
        | Some t ->
          if not (Hashtbl.mem fields (c, f)) then
            Hashtbl.replace fields (c, f) (class_of t)
        | None -> ())
      fs
  done;
  {
    site_classes;
    var_classes;
    ret_classes;
    pointees;
    fields;
    field_names;
    hints;
    struct_lists;
    heap = List.sort compare !heap;
    count = !counter;
  }

let analyze (program : Ast.program) =
  let b =
    {
      next_id = 0;
      vars = Hashtbl.create 64;
      rets = Hashtbl.create 16;
      site_nodes = Hashtbl.create 64;
    }
  in
  List.iter
    (fun (_, name) -> Hashtbl.replace b.vars (qualified "" name) (fresh b))
    program.Ast.globals;
  List.iter
    (fun (f : Ast.func) ->
      List.iter
        (fun (_, p) -> Hashtbl.replace b.vars (qualified f.name p) (fresh b))
        f.params)
    program.Ast.funcs;
  let site_counter = ref 0 in
  (* Evaluate an expression to the node of its pointer value.  The
     traversal order matches {!Points_to.iter_malloc_sites} exactly so
     the positional site numbering agrees. *)
  let rec eval fname e =
    match e with
    | Ast.Int _ | Ast.Null -> fresh b
    | Ast.Var x -> var_node b ~fname x
    | Ast.Binop (_, a, c) ->
      ignore (eval fname a);
      ignore (eval fname c);
      fresh b
    | Ast.Unop (_, a) ->
      ignore (eval fname a);
      fresh b
    | Ast.Field (base, fld, _) ->
      let obj = target b (eval fname base) in
      field_node b obj fld
    | Ast.Index (base, idx, _) ->
      (* Pointer arithmetic within the array: same value class. *)
      let v = eval fname base in
      ignore (eval fname idx);
      v
    | Ast.Malloc_array (s, count, p) | Ast.Pool_malloc_array (_, s, count, p)
      ->
      ignore (eval fname count);
      eval fname (Ast.Malloc (s, p))
    | Ast.Malloc (s, _) | Ast.Pool_malloc (_, s, _) ->
      let site = !site_counter in
      incr site_counter;
      let heap = heap_node b ~site ~struct_name:s in
      let value = fresh b in
      unify b (target b value) heap;
      value
    | Ast.Call (g, args) ->
      (match Ast.find_func program g with
       | Some callee ->
         List.iteri
           (fun i arg ->
             let arg_node = eval fname arg in
             match List.nth_opt callee.Ast.params i with
             | Some (_, p) -> unify b (var_node b ~fname:g p) arg_node
             | None -> ())
           args
       | None -> List.iter (fun arg -> ignore (eval fname arg)) args);
      ret_node b g
  in
  let rec stmt fname = function
    | Ast.Decl (_, x, init) ->
      let n =
        match Hashtbl.find_opt b.vars (qualified fname x) with
        | Some n -> n
        | None ->
          let n = fresh b in
          Hashtbl.replace b.vars (qualified fname x) n;
          n
      in
      (match init with
       | Some e -> unify b n (eval fname e)
       | None -> ())
    | Ast.Assign (x, e) -> unify b (var_node b ~fname x) (eval fname e)
    | Ast.Store (base, fld, e, _) ->
      let obj = target b (eval fname base) in
      unify b (field_node b obj fld) (eval fname e)
    | Ast.Free (e, _) | Ast.Pool_free (_, e, _) -> ignore (eval fname e)
    | Ast.Print e | Ast.Expr e -> ignore (eval fname e)
    | Ast.Return (Some e) -> unify b (ret_node b fname) (eval fname e)
    | Ast.Return None | Ast.Pool_init _ | Ast.Pool_destroy _ -> ()
    | Ast.If (cond, t, f) ->
      ignore (eval fname cond);
      List.iter (stmt fname) t;
      List.iter (stmt fname) f
    | Ast.While (cond, body) ->
      ignore (eval fname cond);
      List.iter (stmt fname) body
  in
  List.iter
    (fun (f : Ast.func) -> List.iter (stmt f.name) f.body)
    program.Ast.funcs;
  freeze b

(* ---- queries ---------------------------------------------------------- *)

let heap_classes t = t.heap
let class_count t = t.count

let site_class t site =
  match Hashtbl.find_opt t.site_classes site with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Dsa.site_class: unknown site %d" site)

let var_class t ~fname name =
  match Hashtbl.find_opt t.var_classes (qualified fname name) with
  | Some c -> Some c
  | None -> Hashtbl.find_opt t.var_classes (qualified "" name)

let ret_class t fname = Hashtbl.find_opt t.ret_classes fname
let pointee t c = Hashtbl.find_opt t.pointees c
let field_class t c f = Hashtbl.find_opt t.fields (c, f)
let struct_hint t c = Hashtbl.find_opt t.hints c

let struct_names t c =
  match Hashtbl.find_opt t.struct_lists c with Some l -> l | None -> []

let field_names t c =
  match Hashtbl.find_opt t.field_names c with Some l -> l | None -> []

let succ t c =
  (match pointee t c with Some p -> [ p ] | None -> [])
  @ List.filter_map (fun f -> field_class t c f) (field_names t c)

let rec expr_value_class t ~fname = function
  | Ast.Int _ | Ast.Null | Ast.Binop _ | Ast.Unop _ | Ast.Malloc _
  | Ast.Pool_malloc _ | Ast.Malloc_array _ | Ast.Pool_malloc_array _ ->
    None
  | Ast.Var x -> var_class t ~fname x
  | Ast.Index (base, _, _) -> expr_value_class t ~fname base
  | Ast.Field (base, f, _) ->
    Option.bind (expr_pointee_class t ~fname base) (fun c ->
        field_class t c f)
  | Ast.Call (g, _) -> ret_class t g

and expr_pointee_class t ~fname = function
  | Ast.Malloc _ | Ast.Malloc_array _ ->
    (* Handled positionally by consumers (they know the site). *)
    None
  | e -> Option.bind (expr_value_class t ~fname e) (pointee t)

let query t =
  {
    Pt_query.nclasses = class_count t;
    heap = heap_classes t;
    site_class = site_class t;
    var_class = (fun ~fname x -> var_class t ~fname x);
    ret_class = ret_class t;
    pointee = pointee t;
    succ = succ t;
    struct_hint = struct_hint t;
    struct_names = struct_names t;
    expr_value_class = (fun ~fname e -> expr_value_class t ~fname e);
    expr_pointee_class = (fun ~fname e -> expr_pointee_class t ~fname e);
  }
