exception Type_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Type_error s)) fmt

let field_type program sname fname =
  match List.assoc_opt sname program.Ast.structs with
  | None -> fail "unknown struct %s" sname
  | Some fields ->
    (match List.assoc_opt fname (List.map (fun (t, f) -> (f, t)) fields) with
     | Some t -> t
     | None -> fail "struct %s has no field %s" sname fname)

let rec expr_type program env expr =
  match expr with
  | Ast.Int _ -> Some Ast.Tint
  | Ast.Null -> None (* null is compatible with any pointer *)
  | Ast.Var name ->
    (match List.assoc_opt name env with
     | Some t -> Some t
     | None -> fail "undeclared variable %s" name)
  | Ast.Binop (_, a, b) ->
    ignore (expr_type program env a);
    ignore (expr_type program env b);
    Some Ast.Tint
  | Ast.Unop (_, a) ->
    ignore (expr_type program env a);
    Some Ast.Tint
  | Ast.Field (base, fname, _) ->
    (match expr_type program env base with
     | Some (Ast.Tptr sname) -> Some (field_type program sname fname)
     | Some Ast.Tint -> fail "-> applied to an int (field %s)" fname
     | None -> fail "-> applied to a void/null expression (field %s)" fname)
  | Ast.Malloc (sname, _) | Ast.Pool_malloc (_, sname, _) ->
    if not (List.mem_assoc sname program.Ast.structs) then
      fail "malloc of unknown struct %s" sname;
    Some (Ast.Tptr sname)
  | Ast.Malloc_array (sname, count, _)
  | Ast.Pool_malloc_array (_, sname, count, _) ->
    if not (List.mem_assoc sname program.Ast.structs) then
      fail "malloc of unknown struct %s" sname;
    (match expr_type program env count with
     | Some Ast.Tint -> ()
     | Some (Ast.Tptr _) | None -> fail "array count must be an int");
    Some (Ast.Tptr sname)
  | Ast.Index (base, idx, _) ->
    (match expr_type program env idx with
     | Some Ast.Tint -> ()
     | Some (Ast.Tptr _) | None -> fail "array index must be an int");
    (match expr_type program env base with
     | Some (Ast.Tptr sname) -> Some (Ast.Tptr sname)
     | Some Ast.Tint | None -> fail "indexing a non-pointer")
  | Ast.Call (fname, args) ->
    (match Ast.find_func program fname with
     | None -> fail "call to undefined function %s" fname
     | Some f ->
       let expected =
         List.length f.Ast.params + List.length f.Ast.pool_params
       in
       if List.length args <> expected then
         fail "call to %s with %d arguments (expected %d)" fname
           (List.length args) expected;
       (* Pool-descriptor arguments are bare variables introduced by the
          transform; they are not value expressions to type. *)
       List.filteri (fun i _ -> i < List.length f.Ast.params) args
       |> List.iter (fun a -> ignore (expr_type program env a));
       f.Ast.ret)

let rec check_stmts program ret_typ env stmts =
  match stmts with
  | [] -> ()
  | stmt :: rest ->
    let env' = check_stmt program ret_typ env stmt in
    check_stmts program ret_typ env' rest

and check_stmt program ret_typ env stmt =
  match stmt with
  | Ast.Decl (typ, name, init) ->
    (match init with
     | Some e -> ignore (expr_type program env e)
     | None -> ());
    (name, typ) :: env
  | Ast.Assign (name, e) ->
    if not (List.mem_assoc name env) then fail "assignment to undeclared %s" name;
    ignore (expr_type program env e);
    env
  | Ast.Store (base, fname, e, _) ->
    (match expr_type program env base with
     | Some (Ast.Tptr sname) -> ignore (field_type program sname fname)
     | Some Ast.Tint | None -> fail "field store through non-pointer");
    ignore (expr_type program env e);
    env
  | Ast.Free (e, _) | Ast.Pool_free (_, e, _) ->
    (match expr_type program env e with
     | Some (Ast.Tptr _) | None -> ()
     | Some Ast.Tint -> fail "free of an int expression");
    env
  | Ast.If (cond, then_body, else_body) ->
    ignore (expr_type program env cond);
    check_stmts program ret_typ env then_body;
    check_stmts program ret_typ env else_body;
    env
  | Ast.While (cond, body) ->
    ignore (expr_type program env cond);
    check_stmts program ret_typ env body;
    env
  | Ast.Return None ->
    if ret_typ <> None then fail "return without a value in a non-void function";
    env
  | Ast.Return (Some e) ->
    if ret_typ = None then fail "return with a value in a void function";
    ignore (expr_type program env e);
    env
  | Ast.Print e ->
    ignore (expr_type program env e);
    env
  | Ast.Expr e ->
    ignore (expr_type program env e);
    env
  | Ast.Pool_init _ | Ast.Pool_destroy _ -> env

let check_struct program (sname, fields) =
  List.iter
    (fun (typ, fname) ->
      match typ with
      | Ast.Tint -> ()
      | Ast.Tptr target ->
        if not (List.mem_assoc target program.Ast.structs) then
          fail "struct %s: field %s points to unknown struct %s" sname fname
            target)
    fields

let check program =
  List.iter (check_struct program) program.Ast.structs;
  let global_env = List.map (fun (t, n) -> (n, t)) program.Ast.globals in
  List.iter
    (fun f ->
      let env =
        List.map (fun (t, n) -> (n, t)) f.Ast.params @ global_env
      in
      check_stmts program f.Ast.ret env f.Ast.body)
    program.Ast.funcs
