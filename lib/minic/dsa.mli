(** DSA-lite: field-sensitive unification points-to analysis.

    Same lattice family as {!Points_to} (Steensgaard unification over a
    finite node graph, allocation-site-keyed heap nodes, positional
    site numbering shared with {!Points_to.iter_malloc_sites}) with one
    structural refinement: object nodes keep one points-to edge {e per
    field name} instead of a single collapsed field node.  [p->a] and
    [p->b] therefore land in distinct classes unless the program itself
    aliases them, which removes the collapsed-field false positives in
    {!Dangling} and splits coarse all-fields pools into finer ones for
    {!Poolify}.

    Call sites unify actuals with the callee's formals and the call
    result with the callee's return node — the callee's summary graph
    is inlined into the one global graph, context-insensitively.  This
    is deliberate: {!Dangling}'s interprocedural effect summaries
    (may-free sets, entry states) are indexed by global class id, and
    per-call-site cloning would break the callee-class/caller-class
    correspondence those summaries need to stay sound.

    Freezing assigns deterministic class ids (sites in program order,
    then variables and returns by name, then a breadth-first edge
    closure), so repeated runs over the same program produce identical
    partitions — the pool-map determinism gate depends on this. *)

type class_id = int

type t
(** Frozen analysis result. *)

val analyze : Ast.program -> t
(** Build and freeze the points-to partition.  The program should
    already typecheck; behaviour on ill-typed programs is unspecified
    (no exception guarantees). *)

val heap_classes : t -> class_id list
(** Classes containing at least one allocation site, sorted. *)

val class_count : t -> int

val site_class : t -> int -> class_id
(** Class allocated into by the [n]-th malloc site in program order
    (the {!Points_to.iter_malloc_sites} numbering).
    @raise Invalid_argument on unknown sites. *)

val var_class : t -> fname:string -> string -> class_id option
(** Class of variable [name] in function [fname] (falls back to the
    global scope). *)

val ret_class : t -> string -> class_id option
val pointee : t -> class_id -> class_id option

val field_class : t -> class_id -> string -> class_id option
(** Class of pointer values stored in the named field of this (object)
    class — per field, unlike {!Points_to.field_class}. *)

val field_names : t -> class_id -> string list
(** Field names with outgoing edges, sorted. *)

val succ : t -> class_id -> class_id list
(** All outgoing edges: pointee (if any) then field targets in
    field-name order. *)

val struct_hint : t -> class_id -> string option

val struct_names : t -> class_id -> string list
(** Every struct name allocated into the class, sorted: a singleton
    means the class is type-homogeneous (the paper's type-safe-pool
    condition). *)

val expr_value_class : t -> fname:string -> Ast.expr -> class_id option
val expr_pointee_class : t -> fname:string -> Ast.expr -> class_id option

val query : t -> Pt_query.t
(** Freeze behind the analysis-agnostic interface shared with
    {!Points_to.query}. *)
