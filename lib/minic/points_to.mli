(** Unification-based (Steensgaard-style) points-to analysis, collapsed
    over fields — the flow-insensitive partitioning Automatic Pool
    Allocation needs.  Every pointer value in the program gets an
    equivalence class; heap classes (those containing at least one
    [malloc] site) become candidate pools.

    The frozen result answers, for the transform and for escape
    analysis: which class does a malloc site allocate into, which class
    does a variable's pointee belong to, and how do classes reach each
    other (pointee / field edges). *)

type class_id = int

type t

val analyze : Ast.program -> t

val heap_classes : t -> class_id list
(** Classes containing at least one malloc site, i.e. candidate pools. *)

val site_class : t -> int -> class_id
(** Class allocated into by the [n]-th malloc site in program order (the
    order {!iter_malloc_sites} visits). *)

val var_class : t -> fname:string -> string -> class_id option
(** Class of the pointer value held by a variable (locals and parameters
    of [fname], falling back to globals); [None] if unknown. *)

val ret_class : t -> string -> class_id option
val pointee : t -> class_id -> class_id option
(** Class an element of this class points to, if any. *)

val field_class : t -> class_id -> class_id option
(** Class of pointer values stored in fields of this (object) class. *)

val struct_hint : t -> class_id -> string option
(** A struct name allocated into the class (for [poolinit] element-size
    hints and diagnostics). *)

val class_count : t -> int

val iter_malloc_sites :
  Ast.program ->
  (site:int -> fname:string -> struct_name:string -> pos:Ast.pos -> unit) ->
  unit
(** Visit every malloc site in deterministic program order, assigning
    the site numbering shared between analysis and transform: functions
    in program order, statements in order, expressions left-to-right.
    [pos] is the source position the site carries ({!Ast.no_pos} for
    programmatically built ASTs). *)

val expr_value_class : t -> fname:string -> Ast.expr -> class_id option
(** Class of the pointer {e value} an expression evaluates to
    ([Var] / [Field] / [Call] chains; [None] for literals and fresh
    [Malloc] results). *)

val expr_pointee_class : t -> fname:string -> Ast.expr -> class_id option
(** Class of the {e object} an expression points to:
    [pointee (expr_value_class e)]. *)

val query : t -> Pt_query.t
(** The frozen result behind the analysis-agnostic query interface
    consumers are written against (see {!Dsa.query} for the
    field-sensitive counterpart). *)
