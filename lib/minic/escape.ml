let closure (q : Pt_query.t) seeds =
  let seen = Hashtbl.create 16 in
  let rec visit c =
    if not (Hashtbl.mem seen c) then begin
      Hashtbl.replace seen c ();
      List.iter visit (q.Pt_query.succ c)
    end
  in
  List.iter visit seeds;
  Hashtbl.fold (fun c () acc -> c :: acc) seen []

let reachable_from_globals (q : Pt_query.t) (program : Ast.program) =
  let seeds =
    List.filter_map
      (fun (_, name) -> q.Pt_query.var_class ~fname:"" name)
      program.globals
  in
  closure q seeds

let escapes (q : Pt_query.t) (f : Ast.func) c =
  let seeds =
    List.filter_map
      (fun (_, p) -> q.Pt_query.var_class ~fname:f.name p)
      f.params
    @ (match q.Pt_query.ret_class f.name with
       | Some c -> [ c ]
       | None -> [])
  in
  List.mem c (closure q seeds)
