open Lexer

exception Parse_error of { line : int; message : string }

type state = { mutable toks : (token * Ast.pos) list }

let peek st =
  match st.toks with
  | (tok, pos) :: _ -> (tok, pos)
  | [] -> (EOF, Ast.no_pos)

let advance st =
  match st.toks with
  | _ :: rest -> st.toks <- rest
  | [] -> ()

let error st message =
  let _, pos = peek st in
  raise (Parse_error { line = pos.Ast.line; message })

let expect st tok =
  let got, pos = peek st in
  if got = tok then advance st
  else
    raise
      (Parse_error
         {
           line = pos.Ast.line;
           message =
             Printf.sprintf "expected %s but found %s" (token_label tok)
               (token_label got);
         })

let expect_ident st =
  match peek st with
  | IDENT name, _ ->
    advance st;
    name
  | tok, pos ->
    raise
      (Parse_error
         {
           line = pos.Ast.line;
           message = Printf.sprintf "expected identifier, found %s" (token_label tok);
         })

(* type := "int" | "struct" ID "*" *)
let parse_type st =
  match peek st with
  | KW_INT, _ ->
    advance st;
    Ast.Tint
  | KW_STRUCT, _ ->
    advance st;
    let name = expect_ident st in
    expect st STAR;
    Ast.Tptr name
  | tok, pos ->
    raise
      (Parse_error
         {
           line = pos.Ast.line;
           message = Printf.sprintf "expected a type, found %s" (token_label tok);
         })

let rec parse_expr st = parse_or st

and parse_or st =
  let lhs = parse_and st in
  match peek st with
  | OROR, _ ->
    advance st;
    Ast.Binop (Ast.Or, lhs, parse_or st)
  | _ -> lhs

and parse_and st =
  let lhs = parse_equality st in
  match peek st with
  | ANDAND, _ ->
    advance st;
    Ast.Binop (Ast.And, lhs, parse_and st)
  | _ -> lhs

and parse_equality st =
  let lhs = parse_relational st in
  match peek st with
  | EQ, _ -> advance st; Ast.Binop (Ast.Eq, lhs, parse_relational st)
  | NE, _ -> advance st; Ast.Binop (Ast.Ne, lhs, parse_relational st)
  | _ -> lhs

and parse_relational st =
  let lhs = parse_additive st in
  match peek st with
  | LT, _ -> advance st; Ast.Binop (Ast.Lt, lhs, parse_additive st)
  | LE, _ -> advance st; Ast.Binop (Ast.Le, lhs, parse_additive st)
  | GT, _ -> advance st; Ast.Binop (Ast.Gt, lhs, parse_additive st)
  | GE, _ -> advance st; Ast.Binop (Ast.Ge, lhs, parse_additive st)
  | _ -> lhs

and parse_additive st =
  let rec loop lhs =
    match peek st with
    | PLUS, _ -> advance st; loop (Ast.Binop (Ast.Add, lhs, parse_multiplicative st))
    | MINUS, _ -> advance st; loop (Ast.Binop (Ast.Sub, lhs, parse_multiplicative st))
    | _ -> lhs
  in
  loop (parse_multiplicative st)

and parse_multiplicative st =
  let rec loop lhs =
    match peek st with
    | STAR, _ -> advance st; loop (Ast.Binop (Ast.Mul, lhs, parse_unary st))
    | SLASH, _ -> advance st; loop (Ast.Binop (Ast.Div, lhs, parse_unary st))
    | PERCENT, _ -> advance st; loop (Ast.Binop (Ast.Mod, lhs, parse_unary st))
    | _ -> lhs
  in
  loop (parse_unary st)

and parse_unary st =
  match peek st with
  | MINUS, _ -> advance st; Ast.Unop (Ast.Neg, parse_unary st)
  | BANG, _ -> advance st; Ast.Unop (Ast.Not, parse_unary st)
  | _ -> parse_postfix st

and parse_postfix st =
  let rec fields e =
    match peek st with
    | ARROW, pos ->
      advance st;
      let f = expect_ident st in
      fields (Ast.Field (e, f, pos))
    | LBRACKET, pos ->
      advance st;
      let i = parse_expr st in
      expect st RBRACKET;
      fields (Ast.Index (e, i, pos))
    | _ -> e
  in
  fields (parse_primary st)

and parse_primary st =
  match peek st with
  | INT_LIT n, _ -> advance st; Ast.Int n
  | KW_NULL, _ -> advance st; Ast.Null
  | KW_MALLOC, pos ->
    advance st;
    expect st LPAREN;
    expect st KW_STRUCT;
    let name = expect_ident st in
    (match peek st with
     | COMMA, _ ->
       advance st;
       let count = parse_expr st in
       expect st RPAREN;
       Ast.Malloc_array (name, count, pos)
     | _ ->
       expect st RPAREN;
       Ast.Malloc (name, pos))
  | LPAREN, _ ->
    advance st;
    let e = parse_expr st in
    expect st RPAREN;
    e
  | IDENT name, _ ->
    advance st;
    (match peek st with
     | LPAREN, _ ->
       advance st;
       let args = parse_args st in
       expect st RPAREN;
       Ast.Call (name, args)
     | _ -> Ast.Var name)
  | tok, pos ->
    raise
      (Parse_error
         {
           line = pos.Ast.line;
           message = Printf.sprintf "expected expression, found %s" (token_label tok);
         })

and parse_args st =
  match peek st with
  | RPAREN, _ -> []
  | _ ->
    let rec more acc =
      match peek st with
      | COMMA, _ ->
        advance st;
        more (parse_expr st :: acc)
      | _ -> List.rev acc
    in
    more [ parse_expr st ]

let rec parse_block st =
  expect st LBRACE;
  let rec stmts acc =
    match peek st with
    | RBRACE, _ ->
      advance st;
      List.rev acc
    | _ -> stmts (parse_stmt st :: acc)
  in
  stmts []

and parse_stmt st =
  match peek st with
  | KW_INT, _ | KW_STRUCT, _ ->
    let typ = parse_type st in
    let name = expect_ident st in
    let init =
      match peek st with
      | ASSIGN, _ ->
        advance st;
        Some (parse_expr st)
      | _ -> None
    in
    expect st SEMI;
    Ast.Decl (typ, name, init)
  | KW_FREE, pos ->
    advance st;
    expect st LPAREN;
    let e = parse_expr st in
    expect st RPAREN;
    expect st SEMI;
    Ast.Free (e, pos)
  | KW_PRINT, _ ->
    advance st;
    expect st LPAREN;
    let e = parse_expr st in
    expect st RPAREN;
    expect st SEMI;
    Ast.Print e
  | KW_IF, _ ->
    advance st;
    expect st LPAREN;
    let cond = parse_expr st in
    expect st RPAREN;
    let then_body = parse_block st in
    let else_body =
      match peek st with
      | KW_ELSE, _ ->
        advance st;
        parse_block st
      | _ -> []
    in
    Ast.If (cond, then_body, else_body)
  | KW_WHILE, _ ->
    advance st;
    expect st LPAREN;
    let cond = parse_expr st in
    expect st RPAREN;
    Ast.While (cond, parse_block st)
  | KW_RETURN, _ ->
    advance st;
    (match peek st with
     | SEMI, _ ->
       advance st;
       Ast.Return None
     | _ ->
       let e = parse_expr st in
       expect st SEMI;
       Ast.Return (Some e))
  | _ ->
    (* assignment, field store, call statement, or bare expression *)
    let e = parse_expr st in
    (match e, peek st with
     | Ast.Var name, (ASSIGN, _) ->
       advance st;
       let rhs = parse_expr st in
       expect st SEMI;
       Ast.Assign (name, rhs)
     | Ast.Field (base, field, pos), (ASSIGN, _) ->
       advance st;
       let rhs = parse_expr st in
       expect st SEMI;
       Ast.Store (base, field, rhs, pos)
     | _, (SEMI, _) ->
       advance st;
       Ast.Expr e
     | _, (tok, pos) ->
       raise
         (Parse_error
            {
              line = pos.Ast.line;
              message =
                Printf.sprintf "expected ';' or '=', found %s" (token_label tok);
            }))

let parse_struct_def st =
  expect st KW_STRUCT;
  let name = expect_ident st in
  expect st LBRACE;
  let rec fields acc =
    match peek st with
    | RBRACE, _ ->
      advance st;
      List.rev acc
    | _ ->
      let typ = parse_type st in
      let fname = expect_ident st in
      expect st SEMI;
      fields ((typ, fname) :: acc)
  in
  let fields = fields [] in
  (match peek st with
   | SEMI, _ -> advance st (* tolerate C-style trailing semicolon *)
   | _ -> ());
  (name, fields)

let parse_params st =
  match peek st with
  | RPAREN, _ -> []
  | _ ->
    let param () =
      let typ = parse_type st in
      let name = expect_ident st in
      (typ, name)
    in
    let rec more acc =
      match peek st with
      | COMMA, _ ->
        advance st;
        more (param () :: acc)
      | _ -> List.rev acc
    in
    more [ param () ]

let parse source =
  let st = { toks = Lexer.tokenize_pos source } in
  let structs = ref [] in
  let globals = ref [] in
  let funcs = ref [] in
  let parse_fun ret =
    let name = expect_ident st in
    expect st LPAREN;
    let params = parse_params st in
    expect st RPAREN;
    let body = parse_block st in
    funcs := { Ast.name; ret; params; pool_params = []; body } :: !funcs
  in
  let rec items () =
    match peek st with
    | EOF, _ -> ()
    | KW_VOID, _ ->
      advance st;
      parse_fun None;
      items ()
    | KW_STRUCT, _ ->
      (* struct definition, global of struct-pointer type, or a function
         returning a struct pointer: disambiguate on the token after the
         struct name. *)
      (match st.toks with
       | (KW_STRUCT, _) :: (IDENT _, _) :: (LBRACE, _) :: _ ->
         structs := parse_struct_def st :: !structs
       | _ ->
         let typ = parse_type st in
         let name = expect_ident st in
         (match peek st with
          | LPAREN, _ ->
            advance st;
            let params = parse_params st in
            expect st RPAREN;
            let body = parse_block st in
            funcs :=
              { Ast.name; ret = Some typ; params; pool_params = []; body }
              :: !funcs
          | SEMI, _ ->
            advance st;
            globals := (typ, name) :: !globals
          | tok, pos ->
            raise
              (Parse_error
                 {
                   line = pos.Ast.line;
                   message =
                     Printf.sprintf "expected '(' or ';', found %s"
                       (token_label tok);
                 })));
      items ()
    | KW_INT, _ ->
      let typ = parse_type st in
      let name = expect_ident st in
      (match peek st with
       | LPAREN, _ ->
         advance st;
         let params = parse_params st in
         expect st RPAREN;
         let body = parse_block st in
         funcs :=
           { Ast.name; ret = Some typ; params; pool_params = []; body }
           :: !funcs
       | SEMI, _ ->
         advance st;
         globals := (typ, name) :: !globals
       | tok, pos ->
         raise
           (Parse_error
              {
                line = pos.Ast.line;
                message =
                  Printf.sprintf "expected '(' or ';', found %s"
                    (token_label tok);
              }));
       items ()
    | tok, _ ->
      error st (Printf.sprintf "unexpected %s at top level" (token_label tok))
  in
  items ();
  {
    Ast.structs = List.rev !structs;
    globals = List.rev !globals;
    funcs = List.rev !funcs;
  }
