(* Rendering for `danguard lint`: the human report and the stable JSON
   document the golden-file tests under examples/lint/ pin down. *)

module J = Telemetry.Json

type t = { file : string; result : Dangling.result }

let make ~file result = { file; result }

let summary t =
  let safe, may, must = Dangling.count_findings t.result in
  let elidable =
    List.length
      (List.filter
         (fun (s : Dangling.site) -> s.verdict = Dangling.Safe)
         t.result.Dangling.sites)
  in
  (safe, may, must, elidable)

let has_must t = Dangling.has_must t.result

(* Exit status for the CLI: nonzero on a Must-UAF so CI can gate on it. *)
let exit_code t = if has_must t then 3 else 0

let pos_str t (p : Ast.pos) =
  Printf.sprintf "%s:%d:%d" t.file p.Ast.line p.Ast.col

let render t =
  let buf = Buffer.create 1024 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun (fd : Dangling.finding) ->
      match fd.verdict with
      | Dangling.Safe -> ()
      | v ->
        addf "%s: %s: %s of a %s pointer in %s%s\n" (pos_str t fd.pos)
          (Dangling.verdict_label v)
          (Dangling.kind_label fd.kind)
          (match v with
           | Dangling.Must_uaf -> "freed"
           | _ -> "possibly-freed")
          fd.fname
          (if fd.witness = "" then "" else Printf.sprintf " (%s)" fd.witness))
    t.result.Dangling.findings;
  List.iter
    (fun (s : Dangling.site) ->
      addf "%s: note: malloc(struct %s) in %s is %s%s\n" (pos_str t s.pos)
        s.struct_name s.fname
        (Dangling.verdict_label s.verdict)
        (if s.verdict = Dangling.Safe then
           " — shadow protection elidable"
         else ""))
    t.result.Dangling.sites;
  let safe, may, must, elidable = summary t in
  addf "%s: %d safe, %d may-uaf, %d must-uaf uses; %d of %d malloc sites elidable\n"
    t.file safe may must elidable
    (List.length t.result.Dangling.sites);
  Buffer.contents buf

let to_json t =
  let safe, may, must, elidable = summary t in
  let finding_json (fd : Dangling.finding) =
    J.Obj
      [
        ("func", J.String fd.fname);
        ("line", J.Int fd.pos.Ast.line);
        ("col", J.Int fd.pos.Ast.col);
        ("kind", J.String (Dangling.kind_label fd.kind));
        ("verdict", J.String (Dangling.verdict_label fd.verdict));
        ( "class",
          match fd.class_id with Some c -> J.Int c | None -> J.Null );
        ("witness", J.String fd.witness);
      ]
  in
  let site_json (s : Dangling.site) =
    J.Obj
      [
        ("site", J.Int s.ordinal);
        ("func", J.String s.fname);
        ("struct", J.String s.struct_name);
        ("line", J.Int s.pos.Ast.line);
        ("col", J.Int s.pos.Ast.col);
        ("class", J.Int s.class_id);
        ("verdict", J.String (Dangling.verdict_label s.verdict));
        ("elidable", J.Bool (s.verdict = Dangling.Safe));
      ]
  in
  J.Obj
    [
      ("file", J.String t.file);
      ( "summary",
        J.Obj
          [
            ("safe", J.Int safe);
            ("may_uaf", J.Int may);
            ("must_uaf", J.Int must);
            ("sites", J.Int (List.length t.result.Dangling.sites));
            ("elidable_sites", J.Int elidable);
          ] );
      ("findings", J.List (List.map finding_json t.result.Dangling.findings));
      ("sites", J.List (List.map site_json t.result.Dangling.sites));
    ]

(* SARIF 2.1.0 (the static-analysis interchange format editors and code
   hosts ingest): one run, one driver, two rules, a result per May/Must
   finding.  Safe findings and the per-site notes stay JSON/human-only —
   SARIF consumers only want actionable results. *)
let to_sarif t =
  let rule_id (v : Dangling.verdict) =
    match v with
    | Dangling.Must_uaf -> "must-uaf"
    | Dangling.May_uaf -> "may-uaf"
    (* invariant: Safe findings are filtered out before rule lookup *)
    | Dangling.Safe -> assert false
  in
  let level (v : Dangling.verdict) =
    match v with
    | Dangling.Must_uaf -> "error"
    | Dangling.May_uaf -> "warning"
    (* invariant: Safe findings are filtered out before rule lookup *)
    | Dangling.Safe -> assert false
  in
  let rule id desc =
    J.Obj
      [
        ("id", J.String id);
        ("name", J.String id);
        ("shortDescription", J.Obj [ ("text", J.String desc) ]);
      ]
  in
  let result_json (fd : Dangling.finding) =
    let message =
      Printf.sprintf "%s of a %s pointer in %s%s"
        (Dangling.kind_label fd.kind)
        (match fd.verdict with
         | Dangling.Must_uaf -> "freed"
         | _ -> "possibly-freed")
        fd.fname
        (if fd.witness = "" then "" else Printf.sprintf " (%s)" fd.witness)
    in
    J.Obj
      [
        ("ruleId", J.String (rule_id fd.verdict));
        ("level", J.String (level fd.verdict));
        ("message", J.Obj [ ("text", J.String message) ]);
        ( "locations",
          J.List
            [
              J.Obj
                [
                  ( "physicalLocation",
                    J.Obj
                      [
                        ( "artifactLocation",
                          J.Obj [ ("uri", J.String t.file) ] );
                        ( "region",
                          J.Obj
                            [
                              ("startLine", J.Int fd.pos.Ast.line);
                              ("startColumn", J.Int fd.pos.Ast.col);
                            ] );
                      ] );
                ];
            ] );
      ]
  in
  let results =
    List.filter_map
      (fun (fd : Dangling.finding) ->
        match fd.verdict with
        | Dangling.Safe -> None
        | Dangling.May_uaf | Dangling.Must_uaf -> Some (result_json fd))
      t.result.Dangling.findings
  in
  J.Obj
    [
      ( "$schema",
        J.String "https://json.schemastore.org/sarif-2.1.0.json" );
      ("version", J.String "2.1.0");
      ( "runs",
        J.List
          [
            J.Obj
              [
                ( "tool",
                  J.Obj
                    [
                      ( "driver",
                        J.Obj
                          [
                            ("name", J.String "danguard-lint");
                            ( "rules",
                              J.List
                                [
                                  rule "may-uaf"
                                    "Possible use of a dangling pointer";
                                  rule "must-uaf"
                                    "Definite use of a dangling pointer";
                                ] );
                          ] );
                    ] );
                ("results", J.List results);
              ];
          ] );
    ]
