(* Per-function control-flow graph over the MiniC AST.

   Structured control flow is flattened into basic blocks of "simple"
   instructions: an [If] contributes its condition to the current block
   and branches to then/else blocks that re-join; a [While] gets a
   dedicated head block (condition) with a back edge from the body and an
   exit edge past the loop.  [Return] terminates its block with no
   successors; statements after it land in a fresh block with no
   predecessors, which the dataflow pass (see {!Dangling}) simply never
   reaches. *)

type instr =
  | Simple of Ast.stmt  (* Decl/Assign/Store/Free/…, never If/While *)
  | Cond of Ast.expr    (* branch or loop condition, evaluated here *)

type block = {
  id : int;
  mutable instrs : instr list;  (* in execution order once built *)
  mutable succs : int list;
  mutable preds : int list;
}

type t = { fname : string; blocks : block array; entry : int }

let build (f : Ast.func) =
  let blocks = ref [] in
  let n = ref 0 in
  let new_block () =
    let b = { id = !n; instrs = []; succs = []; preds = [] } in
    incr n;
    blocks := b :: !blocks;
    b
  in
  let add_instr b i = b.instrs <- i :: b.instrs in
  let add_edge a b =
    a.succs <- b.id :: a.succs;
    b.preds <- a.id :: b.preds
  in
  (* Lay out [stmts] starting in block [b]; returns the (open) block
     control falls out of. *)
  let rec layout b = function
    | [] -> b
    | s :: rest ->
      (match s with
       | Ast.If (c, t, e) ->
         add_instr b (Cond c);
         let tb = new_block () and eb = new_block () in
         add_edge b tb;
         add_edge b eb;
         let tend = layout tb t in
         let eend = layout eb e in
         let join = new_block () in
         add_edge tend join;
         add_edge eend join;
         layout join rest
       | Ast.While (c, body) ->
         let head = new_block () in
         add_edge b head;
         add_instr head (Cond c);
         let bb = new_block () and exit = new_block () in
         add_edge head bb;
         add_edge head exit;
         let bend = layout bb body in
         add_edge bend head;
         layout exit rest
       | Ast.Return _ ->
         add_instr b (Simple s);
         (* No successors: the rest is unreachable. *)
         layout (new_block ()) rest
       | _ ->
         add_instr b (Simple s);
         layout b rest)
  in
  let entry = new_block () in
  ignore (layout entry f.Ast.body);
  let arr = Array.make !n entry in
  List.iter (fun b -> arr.(b.id) <- b) !blocks;
  Array.iter
    (fun b ->
      b.instrs <- List.rev b.instrs;
      b.succs <- List.rev b.succs;
      b.preds <- List.rev b.preds)
    arr;
  { fname = f.Ast.name; blocks = arr; entry = entry.id }

(* Reverse postorder from the entry; unreachable blocks are omitted. *)
let rpo t =
  let seen = Array.make (Array.length t.blocks) false in
  let order = ref [] in
  let rec dfs id =
    if not seen.(id) then begin
      seen.(id) <- true;
      List.iter dfs t.blocks.(id).succs;
      order := id :: !order
    end
  in
  dfs t.entry;
  !order

let block_count t = Array.length t.blocks
