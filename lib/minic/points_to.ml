type class_id = int

(* Union-find nodes.  [pointee] is the single Steensgaard target edge;
   [field] is the collapsed "value stored in any pointer field of an
   object of this class" node. *)
type node = {
  id : int;
  mutable parent : node option;
  mutable pointee : node option;
  mutable field : node option;
  mutable sites : int list;
  mutable structs : string list;
}

let rec find n =
  match n.parent with
  | None -> n
  | Some p ->
    let root = find p in
    n.parent <- Some root;
    root

type builder = {
  mutable next_id : int;
  vars : (string, node) Hashtbl.t; (* qualified "fn::x" or "::g" *)
  rets : (string, node) Hashtbl.t;
  site_nodes : (int, node) Hashtbl.t;
}

let fresh b =
  let n =
    { id = b.next_id; parent = None; pointee = None; field = None; sites = []; structs = [] }
  in
  b.next_id <- b.next_id + 1;
  n

let rec unify b a c =
  let a = find a and c = find c in
  if a != c then begin
    c.parent <- Some a;
    a.sites <- List.rev_append c.sites a.sites;
    a.structs <- List.rev_append c.structs a.structs;
    let merge get set =
      match get a, get c with
      | None, other -> set a other
      | Some _, None -> ()
      | Some x, Some y -> unify b x y
    in
    merge (fun n -> n.pointee) (fun n v -> n.pointee <- v);
    merge (fun n -> n.field) (fun n v -> n.field <- v)
  end

let target b n =
  let n = find n in
  match n.pointee with
  | Some p -> find p
  | None ->
    let p = fresh b in
    n.pointee <- Some p;
    p

let field_node b n =
  let n = find n in
  match n.field with
  | Some f -> find f
  | None ->
    let f = fresh b in
    n.field <- Some f;
    f

let qualified fname var = fname ^ "::" ^ var

(* Variable lookup: a function-local binding if one was created, else the
   global.  Bindings are created eagerly for params/globals and lazily at
   Decl, so scoping comes out right for our single-scope functions. *)
let var_node b ~fname name =
  match Hashtbl.find_opt b.vars (qualified fname name) with
  | Some n -> n
  | None ->
    (match Hashtbl.find_opt b.vars (qualified "" name) with
     | Some n -> n
     | None ->
       let n = fresh b in
       Hashtbl.replace b.vars (qualified fname name) n;
       n)

let ret_node b fname =
  match Hashtbl.find_opt b.rets fname with
  | Some n -> n
  | None ->
    let n = fresh b in
    Hashtbl.replace b.rets fname n;
    n

let iter_malloc_sites (program : Ast.program) visit =
  let counter = ref 0 in
  let rec expr fname = function
    | Ast.Int _ | Ast.Null | Ast.Var _ -> ()
    | Ast.Binop (_, a, c) ->
      expr fname a;
      expr fname c
    | Ast.Unop (_, a) -> expr fname a
    | Ast.Field (e, _, _) -> expr fname e
    | Ast.Index (e, i, _) ->
      expr fname e;
      expr fname i
    | Ast.Malloc (s, p) | Ast.Pool_malloc (_, s, p) ->
      let site = !counter in
      incr counter;
      visit ~site ~fname ~struct_name:s ~pos:p
    | Ast.Malloc_array (s, count, p) | Ast.Pool_malloc_array (_, s, count, p) ->
      expr fname count;
      let site = !counter in
      incr counter;
      visit ~site ~fname ~struct_name:s ~pos:p
    | Ast.Call (_, args) -> List.iter (expr fname) args
  in
  let rec stmt fname = function
    | Ast.Decl (_, _, init) -> Option.iter (expr fname) init
    | Ast.Assign (_, e) | Ast.Print e | Ast.Expr e | Ast.Free (e, _)
    | Ast.Pool_free (_, e, _)
    | Ast.Return (Some e) ->
      expr fname e
    | Ast.Store (e1, _, e2, _) ->
      expr fname e1;
      expr fname e2
    | Ast.If (cond, t, f) ->
      expr fname cond;
      List.iter (stmt fname) t;
      List.iter (stmt fname) f
    | Ast.While (cond, body) ->
      expr fname cond;
      List.iter (stmt fname) body
    | Ast.Return None | Ast.Pool_init _ | Ast.Pool_destroy _ -> ()
  in
  List.iter
    (fun (f : Ast.func) -> List.iter (stmt f.name) f.body)
    program.funcs

type t = {
  class_of_node : (int, class_id) Hashtbl.t; (* root node id -> class *)
  site_classes : (int, class_id) Hashtbl.t;
  var_classes : (string, class_id) Hashtbl.t;
  ret_classes : (string, class_id) Hashtbl.t;
  pointees : (class_id, class_id) Hashtbl.t;
  fields : (class_id, class_id) Hashtbl.t;
  hints : (class_id, string) Hashtbl.t;
  heap : class_id list;
  count : int;
}

let analyze (program : Ast.program) =
  let b =
    {
      next_id = 0;
      vars = Hashtbl.create 64;
      rets = Hashtbl.create 16;
      site_nodes = Hashtbl.create 64;
    }
  in
  List.iter
    (fun (_, name) -> Hashtbl.replace b.vars (qualified "" name) (fresh b))
    program.globals;
  List.iter
    (fun (f : Ast.func) ->
      List.iter
        (fun (_, p) -> Hashtbl.replace b.vars (qualified f.name p) (fresh b))
        f.params)
    program.funcs;
  let site_counter = ref 0 in
  (* Evaluate an expression to the node of its pointer value. *)
  let rec eval fname e =
    match e with
    | Ast.Int _ | Ast.Null -> fresh b
    | Ast.Var x -> var_node b ~fname x
    | Ast.Binop (_, a, c) ->
      ignore (eval fname a);
      ignore (eval fname c);
      fresh b
    | Ast.Unop (_, a) ->
      ignore (eval fname a);
      fresh b
    | Ast.Field (base, _, _) ->
      let obj = target b (eval fname base) in
      field_node b obj
    | Ast.Index (base, idx, _) ->
      (* Pointer arithmetic within the array: same value class. *)
      let v = eval fname base in
      ignore (eval fname idx);
      v
    | Ast.Malloc_array (s, count, p) ->
      ignore (eval fname count);
      eval fname (Ast.Malloc (s, p))
    | Ast.Pool_malloc_array (_, s, count, p) ->
      ignore (eval fname count);
      eval fname (Ast.Malloc (s, p))
    | Ast.Malloc (s, _) | Ast.Pool_malloc (_, s, _) ->
      let site = !site_counter in
      incr site_counter;
      let heap_node =
        match Hashtbl.find_opt b.site_nodes site with
        | Some n -> n
        | None ->
          let n = fresh b in
          Hashtbl.replace b.site_nodes site n;
          n
      in
      heap_node.sites <- site :: heap_node.sites;
      heap_node.structs <- s :: heap_node.structs;
      let value = fresh b in
      unify b (target b value) heap_node;
      value
    | Ast.Call (g, args) ->
      (match Ast.find_func program g with
       | Some callee ->
         List.iteri
           (fun i arg ->
             let arg_node = eval fname arg in
             match List.nth_opt callee.Ast.params i with
             | Some (_, p) -> unify b (var_node b ~fname:g p) arg_node
             | None -> ())
           args
       | None -> List.iter (fun arg -> ignore (eval fname arg)) args);
      ret_node b g
  in
  let rec stmt fname = function
    | Ast.Decl (_, x, init) ->
      let n =
        match Hashtbl.find_opt b.vars (qualified fname x) with
        | Some n -> n
        | None ->
          let n = fresh b in
          Hashtbl.replace b.vars (qualified fname x) n;
          n
      in
      (match init with
       | Some e -> unify b n (eval fname e)
       | None -> ())
    | Ast.Assign (x, e) -> unify b (var_node b ~fname x) (eval fname e)
    | Ast.Store (base, _, e, _) ->
      let obj = target b (eval fname base) in
      unify b (field_node b obj) (eval fname e)
    | Ast.Free (e, _) | Ast.Pool_free (_, e, _) -> ignore (eval fname e)
    | Ast.Print e | Ast.Expr e -> ignore (eval fname e)
    | Ast.Return (Some e) -> unify b (ret_node b fname) (eval fname e)
    | Ast.Return None | Ast.Pool_init _ | Ast.Pool_destroy _ -> ()
    | Ast.If (cond, t, f) ->
      ignore (eval fname cond);
      List.iter (stmt fname) t;
      List.iter (stmt fname) f
    | Ast.While (cond, body) ->
      ignore (eval fname cond);
      List.iter (stmt fname) body
  in
  List.iter
    (fun (f : Ast.func) -> List.iter (stmt f.name) f.body)
    program.funcs;
  (* Freeze: number the root nodes as classes and export edge tables. *)
  let class_of_node = Hashtbl.create 64 in
  let counter = ref 0 in
  let class_of n =
    let root = find n in
    match Hashtbl.find_opt class_of_node root.id with
    | Some c -> c
    | None ->
      let c = !counter in
      incr counter;
      Hashtbl.replace class_of_node root.id c;
      c
  in
  let site_classes = Hashtbl.create 64 in
  let hints = Hashtbl.create 16 in
  let heap = ref [] in
  Hashtbl.iter
    (fun site n ->
      let c = class_of n in
      Hashtbl.replace site_classes site c;
      if not (List.mem c !heap) then heap := c :: !heap;
      match (find n).structs with
      | s :: _ -> Hashtbl.replace hints c s
      | [] -> ())
    b.site_nodes;
  let var_classes = Hashtbl.create 64 in
  Hashtbl.iter (fun q n -> Hashtbl.replace var_classes q (class_of n)) b.vars;
  let ret_classes = Hashtbl.create 16 in
  Hashtbl.iter (fun f n -> Hashtbl.replace ret_classes f (class_of n)) b.rets;
  let pointees = Hashtbl.create 64 in
  let fields = Hashtbl.create 64 in
  (* Chase edges from every root, recording each visited node's edges
     exactly once.  (A previous version only recorded edges of root
     nodes, so a field node's pointee went missing and frees through
     field reads — free(s->a) — came back unclassified.) *)
  let visited = Hashtbl.create 64 in
  let rec visit n =
    let root = find n in
    if not (Hashtbl.mem visited root.id) then begin
      Hashtbl.replace visited root.id ();
      let c = class_of root in
      (match root.pointee with
       | Some p ->
         if not (Hashtbl.mem pointees c) then
           Hashtbl.replace pointees c (class_of p);
         visit p
       | None -> ());
      match root.field with
      | Some f ->
        if not (Hashtbl.mem fields c) then
          Hashtbl.replace fields c (class_of f);
        visit f
      | None -> ()
    end
  in
  Hashtbl.iter (fun _ n -> visit n) b.vars;
  Hashtbl.iter (fun _ n -> visit n) b.rets;
  Hashtbl.iter (fun _ n -> visit n) b.site_nodes;
  {
    class_of_node;
    site_classes;
    var_classes;
    ret_classes;
    pointees;
    fields;
    hints;
    heap = !heap;
    count = !counter;
  }

let heap_classes t = List.sort compare t.heap

let site_class t site =
  match Hashtbl.find_opt t.site_classes site with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Points_to.site_class: unknown site %d" site)

let var_class t ~fname name =
  match Hashtbl.find_opt t.var_classes (qualified fname name) with
  | Some c -> Some c
  | None -> Hashtbl.find_opt t.var_classes (qualified "" name)

let ret_class t fname = Hashtbl.find_opt t.ret_classes fname
let pointee t c = Hashtbl.find_opt t.pointees c
let field_class t c = Hashtbl.find_opt t.fields c
let struct_hint t c = Hashtbl.find_opt t.hints c
let class_count t = t.count

let rec expr_value_class t ~fname = function
  | Ast.Int _ | Ast.Null | Ast.Binop _ | Ast.Unop _ | Ast.Malloc _
  | Ast.Pool_malloc _ | Ast.Malloc_array _ | Ast.Pool_malloc_array _ ->
    None
  | Ast.Var x -> var_class t ~fname x
  | Ast.Index (base, _, _) -> expr_value_class t ~fname base
  | Ast.Field (base, _, _) ->
    Option.bind (expr_pointee_class t ~fname base) (field_class t)
  | Ast.Call (g, _) -> ret_class t g

and expr_pointee_class t ~fname = function
  | Ast.Malloc _ | Ast.Malloc_array _ ->
    (* Handled positionally by the transform (it knows the site). *)
    None
  | e -> Option.bind (expr_value_class t ~fname e) (pointee t)

let query t =
  {
    Pt_query.nclasses = class_count t;
    heap = heap_classes t;
    site_class = site_class t;
    var_class = (fun ~fname x -> var_class t ~fname x);
    ret_class = ret_class t;
    pointee = pointee t;
    succ =
      (fun c ->
        (match pointee t c with Some p -> [ p ] | None -> [])
        @ (match field_class t c with Some f -> [ f ] | None -> []));
    struct_hint = struct_hint t;
    struct_names =
      (fun c -> match struct_hint t c with Some s -> [ s ] | None -> []);
    expr_value_class = (fun ~fname e -> expr_value_class t ~fname e);
    expr_pointee_class = (fun ~fname e -> expr_pointee_class t ~fname e);
  }
