(** Human and JSON rendering of {!Dangling} results for `danguard lint`.

    The JSON shape is pinned by golden files under examples/lint/ — keep
    it stable (fields are emitted in a fixed order, findings sorted by
    source position). *)

type t

val make : file:string -> Dangling.result -> t
(** [file] is the label used in diagnostics ([file:line:col]) and the
    JSON document; pass the path the user named. *)

val render : t -> string
(** Human-readable report: one line per May/Must finding, a note per
    malloc site with its class verdict, and a summary line. *)

val to_json : t -> Telemetry.Json.t

val to_sarif : t -> Telemetry.Json.t
(** SARIF 2.1.0 document: one run with driver [danguard-lint] and rules
    [may-uaf] (level warning) / [must-uaf] (level error), one result
    per flagged finding with its physical location.  Safe findings and
    per-site notes are not emitted — SARIF carries actionable results
    only.  Shape pinned by examples/lint/must_uaf.expected.sarif. *)

val has_must : t -> bool

val exit_code : t -> int
(** [3] when any Must-UAF finding is present, else [0]. *)

val summary : t -> int * int * int * int
(** (safe, may, must, elidable-site) counts. *)
