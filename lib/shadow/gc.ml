open Vmm

type witness = {
  w_source : string;
  w_word_addr : Addr.t option;
  w_value : Addr.t;
}

type pinned = {
  p_base : Addr.t;
  p_pages : int;
  p_witness : witness;
}

type report = {
  freed_ranges : int;
  scanned_words : int;
  pinned : pinned list;
  reclaimed : (Addr.t * int) list;
  reclaimed_pages : int;
  pause_instructions : int;
}

type t = {
  pool : Shadow_pool.t;
  roots : Roots.t;
  cost_per_word : int;
  va_pages_used : Telemetry.Metrics.gauge;
  va_pages_reclaimed : Telemetry.Metrics.gauge;
  gc_pinned_ranges : Telemetry.Metrics.gauge;
  pause_hist : Telemetry.Histogram.t;
  mutable runs : int;
  mutable total_reclaimed_pages : int;
  mutable total_scanned_words : int;
  mutable last_pinned : pinned list;
}

let metrics_registry machine = Stats.registry machine.Machine.stats

(* Zero-initialise the endurance gauges so exporters (danguard report,
   farm JSON) always carry them, GC traffic or not. *)
let register_metrics machine =
  let reg = metrics_registry machine in
  let used = Telemetry.Metrics.gauge reg "shadow.va_pages_used" in
  let pages = Machine.va_bytes_used machine / Addr.page_size in
  if Telemetry.Metrics.gauge_value used < float_of_int pages then
    Telemetry.Metrics.set_gauge used (float_of_int pages);
  ignore (Telemetry.Metrics.gauge reg "shadow.va_pages_reclaimed");
  ignore (Telemetry.Metrics.gauge reg "shadow.gc_pinned_ranges");
  ignore (Telemetry.Metrics.histogram reg "shadow.gc_pause_instructions")

let create ?(cost_per_word = 2) ~roots pool =
  if cost_per_word < 0 then invalid_arg "Gc.create: cost_per_word < 0";
  let machine = Shadow_pool.machine pool in
  let reg = metrics_registry machine in
  register_metrics machine;
  {
    pool;
    roots;
    cost_per_word;
    va_pages_used = Telemetry.Metrics.gauge reg "shadow.va_pages_used";
    va_pages_reclaimed = Telemetry.Metrics.gauge reg "shadow.va_pages_reclaimed";
    gc_pinned_ranges = Telemetry.Metrics.gauge reg "shadow.gc_pinned_ranges";
    pause_hist = Telemetry.Metrics.histogram reg "shadow.gc_pause_instructions";
    runs = 0;
    total_reclaimed_pages = 0;
    total_scanned_words = 0;
    last_pinned = [];
  }

(* Conservative membership: any word value landing anywhere inside a
   freed range — interior pointers included — counts as a reference to
   it.  Binary search over the sorted candidate array. *)
let find_range ranges v =
  let n = Array.length ranges in
  let lo = ref 0 and hi = ref (n - 1) and found = ref None in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let base, pages = ranges.(mid) in
    if v < base then hi := mid - 1
    else if v >= base + Addr.of_page pages then lo := mid + 1
    else begin
      found := Some (base, pages);
      lo := !hi + 1
    end
  done;
  !found

let run t =
  let machine = Shadow_pool.machine t.pool in
  let registry = Shadow_pool.registry t.pool in
  t.runs <- t.runs + 1;
  let freed = Shadow_pool.freed_ranges t.pool in
  let candidates = Array.of_list freed in
  let witnesses : (Addr.t, witness) Hashtbl.t = Hashtbl.create 16 in
  let scanned = ref 0 in
  let note ~source ~word_addr v =
    match find_range candidates v with
    | Some (base, _) ->
      if not (Hashtbl.mem witnesses base) then
        Hashtbl.replace witnesses base
          { w_source = source; w_word_addr = word_addr; w_value = v }
    | None -> ()
  in
  if freed <> [] then begin
    (* Roots: registers, stack words, globals. *)
    scanned := Roots.word_count t.roots;
    Roots.iter_words t.roots (fun src v ->
        note ~source:(Roots.source_label src) ~word_addr:None v);
    (* Heap words of every live object in the pool's registry.  The
       freed objects' own words need no scan: their pages are protected
       and their contents unreachable without first tripping a trap. *)
    Object_registry.iter_live registry (fun (o : Object_registry.obj) ->
        scanned :=
          !scanned
          + Roots.heap_word_count ~addr:o.Object_registry.user_addr
              ~bytes:o.Object_registry.size;
        Roots.iter_heap_words machine ~addr:o.Object_registry.user_addr
          ~bytes:o.Object_registry.size (fun word_addr v ->
            note
              ~source:
                (Printf.sprintf "heap:%s#%d" o.Object_registry.alloc_site
                   o.Object_registry.id)
              ~word_addr:(Some word_addr) v))
  end;
  (* The scan is real work on the simulated machine: charge it. *)
  let pause = !scanned * t.cost_per_word in
  if pause > 0 then Stats.count_instructions machine.Machine.stats pause;
  let pinned, reclaimable =
    List.partition_map
      (fun (base, pages) ->
        match Hashtbl.find_opt witnesses base with
        | Some w ->
          Either.Left { p_base = base; p_pages = pages; p_witness = w }
        | None -> Either.Right (base, pages))
      freed
  in
  let reclaimed_pages = Shadow_pool.reclaim_ranges t.pool reclaimable in
  (* A range whose merged unmap failed stays protected; report only what
     was actually released. *)
  let reclaimed =
    List.filter
      (fun (base, _) ->
        not (List.mem_assoc base (Shadow_pool.freed_ranges t.pool)))
      reclaimable
  in
  t.total_reclaimed_pages <- t.total_reclaimed_pages + reclaimed_pages;
  t.total_scanned_words <- t.total_scanned_words + !scanned;
  t.last_pinned <- pinned;
  Telemetry.Metrics.set_gauge t.va_pages_used
    (float_of_int (Machine.va_bytes_used machine / Addr.page_size));
  Telemetry.Metrics.set_gauge t.va_pages_reclaimed
    (float_of_int t.total_reclaimed_pages);
  Telemetry.Metrics.set_gauge t.gc_pinned_ranges
    (float_of_int (List.length pinned));
  Telemetry.Histogram.observe t.pause_hist (float_of_int pause);
  let report =
    {
      freed_ranges = List.length freed;
      scanned_words = !scanned;
      pinned;
      reclaimed;
      reclaimed_pages;
      pause_instructions = pause;
    }
  in
  Telemetry.Sink.emit_always machine.Machine.trace (fun () ->
      Telemetry.Event.Gc_run
        {
          scanned_words = report.scanned_words;
          freed_ranges = report.freed_ranges;
          pinned = List.length report.pinned;
          reclaimed_pages = report.reclaimed_pages;
        });
  report

let runs t = t.runs
let total_reclaimed_pages t = t.total_reclaimed_pages
let total_scanned_words t = t.total_scanned_words
let last_pinned t = t.last_pinned
let pool t = t.pool
let roots t = t.roots

let witness_label w =
  match w.w_word_addr with
  | Some a -> Printf.sprintf "%s@0x%x=0x%x" w.w_source a w.w_value
  | None -> Printf.sprintf "%s=0x%x" w.w_source w.w_value
