(** Conservative mark phase over a long-lived pool's freed shadow
    ranges — the paper's §3.4 "infrequent garbage collection applied
    only to the long-lived pools", made real.

    A freed-but-still-protected shadow range may only be recycled once
    no reachable word could still name it; otherwise the recycling
    silently converts a guaranteed trap into a wild access.  {!run}
    scans the simulated root set ({!Vmm.Roots}: registers, stack,
    globals) and the heap words of every live object in the pool's
    registry, conservatively treating {e any} word whose value lands
    inside a freed range — interior pointers included — as a witness.

    Ranges with a witness stay {b pinned}: still protected, still
    trapping, witness recorded, re-scanned on the next run.  Only
    proven-unreferenced ranges are released, through
    {!Shadow_pool.reclaim_ranges}, whose [munmap]s are coalesced the
    way epoch retirement coalesces [mprotect]s.  The detection
    guarantee is therefore never traded away by a GC cycle — exactly
    the property the soak bench's differential oracle enforces.

    Scan cost is charged to the simulated machine ([cost_per_word]
    instructions per word looked at), and every run updates the
    endurance gauges ([shadow.va_pages_used],
    [shadow.va_pages_reclaimed], [shadow.gc_pinned_ranges]), observes
    the pause-duration histogram ([shadow.gc_pause_instructions]) and
    emits a [Gc_run] trace event. *)

type witness = {
  w_source : string;  (** root slot or ["heap:<site>#<id>"] *)
  w_word_addr : Vmm.Addr.t option;  (** heap word's address; [None] for roots *)
  w_value : Vmm.Addr.t;  (** the word value that landed in the range *)
}

type pinned = {
  p_base : Vmm.Addr.t;
  p_pages : int;
  p_witness : witness;  (** first witness found (one suffices to pin) *)
}

type report = {
  freed_ranges : int;  (** candidate ranges examined *)
  scanned_words : int;  (** root + heap words visited *)
  pinned : pinned list;
  reclaimed : (Vmm.Addr.t * int) list;  (** ranges actually released *)
  reclaimed_pages : int;
  pause_instructions : int;  (** scan cost charged to the machine *)
}

type t

val create : ?cost_per_word:int -> roots:Vmm.Roots.t -> Shadow_pool.t -> t
(** A collector over one long-lived pool.  [cost_per_word] (default 2)
    is the instructions charged per word the mark phase examines. *)

val run : t -> report
(** One full cycle: mark, pin, reclaim.  Cheap when the pool holds no
    freed ranges (nothing is scanned). *)

val runs : t -> int
val total_reclaimed_pages : t -> int
val total_scanned_words : t -> int

val last_pinned : t -> pinned list
(** The ranges the most recent run kept; they remain in the pool's
    freed set and are re-examined by the next {!run}. *)

val pool : t -> Shadow_pool.t
val roots : t -> Vmm.Roots.t

val witness_label : witness -> string
(** Human-readable witness, e.g. ["register[3]=0x51000"] or
    ["heap:conn#12@0x42010=0x51000"]. *)

val register_metrics : Vmm.Machine.t -> unit
(** Ensure the endurance gauges and pause histogram exist (zeroed, with
    [shadow.va_pages_used] set from the machine) in the machine's
    metrics registry — so exporters show them even before any GC ran. *)
