open Vmm

type range_state =
  | Rs_live
  | Rs_freed

type t = {
  machine : Machine.t;
  registry : Object_registry.t;
  pool : Apa.Pool.t;
  heap : Shadow_heap.t;
  recycler : Apa.Page_recycler.t option;
  slab : Slab.t option;
  shadow_ranges : (Addr.t, int * range_state) Hashtbl.t; (* base -> pages, state *)
  elided_live : (Addr.t, int) Hashtbl.t; (* addr -> size, statically-safe blocks *)
  unmap : addr:Addr.t -> pages:int -> (unit, Fault_plan.error) result;
  mutable after_free_hook : (unit -> unit) option;
  mutable in_after_free_hook : bool;
  mutable elided_allocs : int;
  mutable elided_frees : int;
  mutable destroyed : bool;
}

let create ?(arena_pages = 16) ?elem_size ?(reuse_shadow_va = true) ?recycler
    ?slab ?unmap ~registry machine =
  let reclaim =
    match recycler with
    | Some r -> Apa.Pool.Recycle r
    | None -> Apa.Pool.Unmap
  in
  let pool = Apa.Pool.create ~arena_pages ?elem_size ~reclaim machine in
  let shadow_ranges = Hashtbl.create 64 in
  let shadow_placer pages =
    match recycler with
    | Some r when reuse_shadow_va -> Apa.Page_recycler.take r ~pages
    | Some _ | None -> None
  in
  let shadow_unplace ~base ~pages =
    match recycler with
    | Some r when reuse_shadow_va -> Apa.Page_recycler.put r ~base ~pages
    | Some _ | None -> ()
  in
  let on_shadow_range ~base ~pages =
    Hashtbl.replace shadow_ranges base (pages, Rs_live)
  in
  let shadow_alias =
    Option.map (fun s ~src ~pages -> Slab.take s ~src ~pages) slab
  in
  let heap =
    Shadow_heap.create ~shadow_placer ~shadow_unplace ~on_shadow_range
      ?shadow_alias ~registry
      ~allocator:(Apa.Pool.as_allocator pool)
      machine
  in
  let unmap =
    match unmap with
    | Some f -> f
    | None -> fun ~addr ~pages -> Syscalls.munmap machine ~addr ~pages
  in
  {
    machine;
    registry;
    pool;
    heap;
    recycler;
    slab;
    shadow_ranges;
    elided_live = Hashtbl.create 64;
    unmap;
    after_free_hook = None;
    in_after_free_hook = false;
    elided_allocs = 0;
    elided_frees = 0;
    destroyed = false;
  }

let check_usable t name =
  if t.destroyed then
    invalid_arg (Printf.sprintf "Shadow_pool.%s: pool already destroyed" name)

let set_after_free_hook t f = t.after_free_hook <- Some f

(* The hook may itself reclaim (that is its purpose), but a reclamation
   must not re-enter the hook through the frees it performs. *)
let run_after_free_hook t =
  match t.after_free_hook with
  | Some f when not t.in_after_free_hook ->
    t.in_after_free_hook <- true;
    Fun.protect ~finally:(fun () -> t.in_after_free_hook <- false) f
  | Some _ | None -> ()

let alloc t ?site size =
  check_usable t "alloc";
  Shadow_heap.malloc t.heap ?site size

let try_alloc t ?site size =
  check_usable t "alloc";
  Shadow_heap.try_malloc t.heap ?site size

let mark_range_freed t (o : Object_registry.obj) =
  Hashtbl.replace t.shadow_ranges o.Object_registry.shadow_base
    (o.Object_registry.pages, Rs_freed)

let free t ?site user =
  check_usable t "free";
  (* Look the object up first so we can flip its range state after the
     underlying free protects it. *)
  let obj = Object_registry.find_by_addr t.registry user in
  Shadow_heap.free t.heap ?site user;
  (match obj with Some o -> mark_range_freed t o | None -> ());
  run_after_free_hook t

let try_free t ?site user =
  check_usable t "free";
  let obj = Object_registry.find_by_addr t.registry user in
  match Shadow_heap.try_free t.heap ?site user with
  | Error _ as e -> e
  | Ok () ->
    (match obj with Some o -> mark_range_freed t o | None -> ());
    run_after_free_hook t;
    Ok ()

let free_unprotected t ?site user =
  check_usable t "free";
  let obj = Shadow_heap.free_unprotected t.heap ?site user in
  mark_range_freed t obj;
  run_after_free_hook t;
  obj

(* Epoch-mode free: validate + mark now, defer protection and canonical
   reuse.  The range is NOT marked Rs_freed yet — [reclaim_freed_shadow]
   must not recycle a quarantined range out from under its epoch. *)
let free_deferred t ?site user =
  check_usable t "free";
  Shadow_heap.free_deferred t.heap ?site user

(* The release half an epoch runs at retirement, once the range is
   protected: canonical block back to the pool, range into the Rs_freed
   set the reuse policy may reclaim. *)
let retire_object t (obj : Object_registry.obj) =
  Shadow_heap.release_canonical t.heap obj;
  mark_range_freed t obj;
  (* Epoch retirement is this object's real free completion, so the
     reclamation hook fires here too — a long-lived pool under an epoch
     scheme would otherwise never trigger its reuse policy. *)
  run_after_free_hook t

(* Raw pool access for fully degraded (pass-through) operation: the
   canonical block with no shadow alias at all. *)
let alloc_raw t size =
  check_usable t "alloc";
  let addr = Apa.Pool.alloc t.pool size in
  Stats.count_alloc_op t.machine.Machine.stats;
  addr

let dealloc_raw t addr =
  check_usable t "free";
  Apa.Pool.dealloc t.pool addr;
  Stats.count_free_op t.machine.Machine.stats

(* Statically-elided allocation: the analysis proved every use of this
   site's class Safe, so the object lives on its canonical page with no
   shadow alias — no mremap on alloc, no mprotect on free.  The block is
   remembered so [free_elided] can tell these objects apart from
   protected ones and so a double free of one still trips the shadow
   path (the second free falls through and the registry rejects it). *)
let alloc_elided t size =
  check_usable t "alloc";
  let addr = Apa.Pool.alloc t.pool size in
  Hashtbl.replace t.elided_live addr size;
  t.elided_allocs <- t.elided_allocs + 1;
  Stats.count_alloc_op t.machine.Machine.stats;
  addr

let free_elided t addr =
  check_usable t "free";
  match Hashtbl.find_opt t.elided_live addr with
  | Some _ ->
    Hashtbl.remove t.elided_live addr;
    Apa.Pool.dealloc t.pool addr;
    t.elided_frees <- t.elided_frees + 1;
    Stats.count_free_op t.machine.Machine.stats;
    true
  | None -> false

let elided_allocs t = t.elided_allocs
let elided_frees t = t.elided_frees
let elided_live_blocks t = Hashtbl.length t.elided_live

let size_of t user = Shadow_heap.size_of t.heap user

let destroy t =
  check_usable t "destroy";
  t.destroyed <- true;
  (* Flush before the pool recycles canonical VA: recycled pages get
     fresh physical backing, which would invalidate cached aliases. *)
  (match t.slab with Some s -> ignore (Slab.flush s) | None -> ());
  (* Batched teardown, same shape as [reclaim_ranges]: fuse every
     shadow range and pay one recycler insertion or one [unmap] per
     merged run instead of one syscall per object range.  Destruction
     is terminal, so an unmap failure only leaks the run's pages (kept
     mapped, never reused — the registry entries are dropped either
     way). *)
  let ranges =
    Hashtbl.fold
      (fun base (pages, _state) acc -> (base, pages) :: acc)
      t.shadow_ranges []
    |> List.sort compare
  in
  (match t.recycler with
   | Some r ->
     List.iter
       (fun (base, pages) -> Apa.Page_recycler.put r ~base ~pages)
       (Syscalls.coalesce_ranges ranges)
   | None ->
     List.iter
       (fun (base, pages) -> ignore (t.unmap ~addr:base ~pages))
       (Syscalls.coalesce_ranges ranges));
  List.iter
    (fun (base, pages) -> Object_registry.forget_range t.registry ~base ~pages)
    ranges;
  Hashtbl.reset t.shadow_ranges;
  Hashtbl.reset t.elided_live;
  Apa.Pool.destroy t.pool

let freed_ranges t =
  Hashtbl.fold
    (fun base (pages, state) acc ->
      match state with
      | Rs_freed -> (base, pages) :: acc
      | Rs_live -> acc)
    t.shadow_ranges []
  |> List.sort compare

(* Release a chosen subset of the freed ranges, batching the release
   syscalls: the ranges are fused with [Syscalls.coalesce_ranges] first,
   so adjacent objects freed over time cost one [munmap] (or one merged
   recycler run), mirroring what PR 7's epoch did for [mprotect].  A
   merged run whose unmap fails is kept whole — its member ranges stay
   protected and reclaimable later — rather than half-released. *)
let reclaim_ranges t ranges =
  check_usable t "reclaim_ranges";
  (* Only ranges currently in the freed set are eligible; anything else
     (live, quarantined, already reclaimed) is skipped, so callers may
     pass stale lists safely. *)
  let eligible =
    List.filter
      (fun (base, pages) ->
        match Hashtbl.find_opt t.shadow_ranges base with
        | Some (p, Rs_freed) -> p = pages
        | Some (_, Rs_live) | None -> false)
      ranges
  in
  let merged = Syscalls.coalesce_ranges eligible in
  let released_runs =
    match t.recycler with
    | Some r ->
      (* Recycling is pure bookkeeping — no syscall can fail — and the
         free list receives the merged runs, not the per-object ones. *)
      List.iter
        (fun (base, pages) -> Apa.Page_recycler.put r ~base ~pages)
        merged;
      merged
    | None ->
      List.filter
        (fun (base, pages) ->
          match t.unmap ~addr:base ~pages with
          | Ok () -> true
          | Error _ -> false)
        merged
  in
  let run_released (base, pages) =
    let limit = base + Addr.of_page pages in
    List.exists
      (fun (rb, rp) -> base >= rb && limit <= rb + Addr.of_page rp)
      released_runs
  in
  List.fold_left
    (fun acc (base, pages) ->
      if run_released (base, pages) then begin
        Object_registry.forget_range t.registry ~base ~pages;
        Hashtbl.remove t.shadow_ranges base;
        acc + pages
      end
      else acc)
    0 eligible

let reclaim_freed_shadow t =
  check_usable t "reclaim_freed_shadow";
  reclaim_ranges t (freed_ranges t)

let machine t = t.machine
let registry t = t.registry
let is_destroyed t = t.destroyed
let live_blocks t = Apa.Pool.live_blocks t.pool

let shadow_pages_live t =
  Hashtbl.fold (fun _ (pages, _) acc -> acc + pages) t.shadow_ranges 0

let freed_shadow_pages t =
  Hashtbl.fold
    (fun _ (pages, state) acc ->
      match state with
      | Rs_freed -> acc + pages
      | Rs_live -> acc)
    t.shadow_ranges 0
