(** Slab-preallocated shadow aliases.

    The paper's per-allocation [mremap] is the alloc-side syscall tax.
    This cache pays it once per {e slab}: a single vectored
    {!Vmm.Kernel.mremap_alias_slab} call creates [copies] contiguous
    aliases of a canonical page run, one is returned immediately and the
    rest are kept for later allocations on the same run.  Because a
    freelist allocator recycles canonical pages heavily, churn-shaped
    workloads hit the cache on almost every malloc.

    The cache key is the canonical run [(page base, pages)].  Frames
    behind a canonical page only change at pool destroy (recycled VA is
    re-backed with [mmap_fixed]), so a slab cache must be {!flush}ed
    when its pool dies and never outlive it. *)

type t

val create : ?copies:int -> Vmm.Machine.t -> t
(** [copies] (default 16) aliases are created per slab call. *)

val take :
  t ->
  src:Vmm.Addr.t ->
  pages:int ->
  (Vmm.Addr.t, Vmm.Fault_plan.error) result
(** An unused shadow alias of [src .. src+pages) — from the cache when
    one is left (no syscall), otherwise via one vectored slab call that
    also restocks the cache.  [src] must be a mapped page base. *)

val flush : t -> int
(** Unmap every cached (never handed out) alias, coalescing contiguous
    spares into single [munmap] calls; returns the pages released.
    Mandatory at pool destroy: recycled canonical VA gets fresh physical
    backing, which would silently invalidate cached aliases. *)

val cached_aliases : t -> int
(** Spare aliases currently cached. *)

val slab_calls : t -> int
(** Vectored slab syscalls issued. *)

val hits : t -> int
(** Allocations served from the cache with zero syscalls. *)

val misses : t -> int
(** Allocations that had to issue a slab call. *)
