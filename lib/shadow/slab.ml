open Vmm

(* Pre-aliased shadow slabs: one vectored [mremap_alias_slab] call
   creates [copies] contiguous aliases of a canonical page run, and the
   unconsumed ones are cached keyed by that run.  A freelist-driven
   allocator reuses the same canonical pages over and over, so churn
   workloads hit the cache on almost every malloc and alias cost
   amortizes to ~1 syscall per slab instead of one per allocation. *)

type t = {
  machine : Machine.t;
  copies : int;
  cache : (Addr.t * int, Addr.t list ref) Hashtbl.t;
  mutable slab_calls : int;
  mutable hits : int;
  mutable misses : int;
}

let create ?(copies = 16) machine =
  if copies <= 0 then invalid_arg "Slab.create: copies <= 0";
  { machine; copies; cache = Hashtbl.create 64; slab_calls = 0; hits = 0; misses = 0 }

let take t ~src ~pages =
  let key = (src, pages) in
  match Hashtbl.find_opt t.cache key with
  | Some ({ contents = alias :: rest } as cell) ->
    cell := rest;
    t.hits <- t.hits + 1;
    Ok alias
  | Some { contents = [] } | None ->
    t.misses <- t.misses + 1;
    (match Syscalls.mremap_alias_slab t.machine ~src ~pages ~copies:t.copies with
     | Error _ as e -> e
     | Ok base ->
       t.slab_calls <- t.slab_calls + 1;
       let stride = pages * Addr.page_size in
       let spare =
         List.init (t.copies - 1) (fun i -> base + ((i + 1) * stride))
       in
       Hashtbl.replace t.cache key (ref spare);
       Ok base)

let flush t =
  (* Cached aliases were never handed out, so unmapping them is pure
     bookkeeping; contiguous spares from one slab coalesce into a single
     munmap.  Raw [Kernel.munmap] is deliberate — these are our own
     mappings and a failure here would be a bookkeeping bug, not an
     injectable fault. *)
  let ranges =
    Hashtbl.fold
      (fun (_, pages) cell acc ->
        List.fold_left (fun acc base -> (base, pages) :: acc) acc !cell)
      t.cache []
  in
  let runs = Syscalls.coalesce_ranges ranges in
  List.iter
    (fun (base, pages) -> Kernel.munmap t.machine ~addr:base ~pages)
    runs;
  Hashtbl.reset t.cache;
  List.fold_left (fun acc (_, pages) -> acc + pages) 0 runs

let cached_aliases t =
  Hashtbl.fold (fun _ cell acc -> acc + List.length !cell) t.cache 0

let slab_calls t = t.slab_calls
let hits t = t.hits
let misses t = t.misses
